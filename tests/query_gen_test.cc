#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/class_schemas.h"
#include "analysis/query_gen.h"
#include "xquery/ast.h"
#include "xquery/parser.h"

namespace xbench::analysis {
namespace {

class QueryGeneratorTest
    : public ::testing::TestWithParam<datagen::DbClass> {};

TEST_P(QueryGeneratorTest, DeterministicInSeed) {
  const ClassSchema& schema = CanonicalClassSchema(GetParam());
  QueryGenerator a(schema, 7);
  QueryGenerator b(schema, 7);
  for (int i = 0; i < 50; ++i) {
    const auto qa = a.Next();
    const auto qb = b.Next();
    EXPECT_EQ(qa.text, qb.text) << "iteration " << i;
    EXPECT_EQ(qa.document_decomposable, qb.document_decomposable);
  }
}

TEST_P(QueryGeneratorTest, DifferentSeedsDiverge) {
  const ClassSchema& schema = CanonicalClassSchema(GetParam());
  QueryGenerator a(schema, 1);
  QueryGenerator b(schema, 2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next().text != b.Next().text) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST_P(QueryGeneratorTest, EveryQueryParsesAndAnalyzesClean) {
  const ClassSchema& schema = CanonicalClassSchema(GetParam());
  QueryGenerator gen(schema, 42);
  for (int i = 0; i < 200; ++i) {
    const auto generated = gen.Next();
    auto parsed = xquery::ParseQuery(generated.text);
    ASSERT_TRUE(parsed.ok()) << generated.text;
    AnalysisReport report = Analyze(**parsed, schema.Context());
    EXPECT_FALSE(report.HasErrors()) << generated.text << "\n"
                                     << report.ToString();
  }
}

TEST_P(QueryGeneratorTest, GeneratedQueriesSurviveRenderRoundTrip) {
  // The oracle ships queries as text, so generated trees must round-trip
  // through ToQueryString <-> ParseQuery without changing shape.
  const ClassSchema& schema = CanonicalClassSchema(GetParam());
  QueryGenerator gen(schema, 11);
  for (int i = 0; i < 100; ++i) {
    const auto generated = gen.Next();
    auto parsed = xquery::ParseQuery(generated.text);
    ASSERT_TRUE(parsed.ok()) << generated.text;
    auto rendered = xquery::ToQueryString(**parsed);
    ASSERT_TRUE(rendered.ok()) << generated.text;
    auto reparsed = xquery::ParseQuery(*rendered);
    ASSERT_TRUE(reparsed.ok()) << *rendered;
    auto rendered_again = xquery::ToQueryString(**reparsed);
    ASSERT_TRUE(rendered_again.ok());
    EXPECT_EQ(*rendered, *rendered_again) << generated.text;
  }
}

TEST_P(QueryGeneratorTest, ProducesVariety) {
  const ClassSchema& schema = CanonicalClassSchema(GetParam());
  QueryGenerator gen(schema, 3);
  std::set<std::string> distinct;
  bool saw_decomposable = false;
  bool saw_aggregate = false;
  for (int i = 0; i < 200; ++i) {
    const auto generated = gen.Next();
    distinct.insert(generated.text);
    (generated.document_decomposable ? saw_decomposable : saw_aggregate) =
        true;
  }
  // A worthwhile fuzz driver does not loop on a handful of shapes.
  EXPECT_GT(distinct.size(), 100u);
  EXPECT_TRUE(saw_decomposable);
  EXPECT_TRUE(saw_aggregate);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, QueryGeneratorTest,
                         ::testing::Values(datagen::DbClass::kTcSd,
                                           datagen::DbClass::kTcMd,
                                           datagen::DbClass::kDcSd,
                                           datagen::DbClass::kDcMd),
                         [](const auto& info) {
                           std::string name =
                               datagen::DbClassName(info.param);
                           name.erase(name.find('/'), 1);
                           return name;
                         });

}  // namespace
}  // namespace xbench::analysis
