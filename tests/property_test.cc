// Property-style suites: invariants checked across generated databases,
// random operation sequences, and engine configurations, parameterized
// with TEST_P sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "common/strings.h"
#include "datagen/generator.h"
#include "engines/native_engine.h"
#include "engines/shred_engine.h"
#include "relational/btree.h"
#include "storage/heap_file.h"
#include "workload/classes.h"
#include "workload/queries.h"
#include "workload/runner.h"
#include "xml/parser.h"
#include "xquery/parser.h"
#include "xml/serializer.h"

namespace xbench {
namespace {

using datagen::DbClass;

std::string ClassSeedName(DbClass cls, uint64_t seed) {
  std::string name = datagen::DbClassName(cls);
  name.erase(name.find('/'), 1);
  return name + "_seed" + std::to_string(seed);
}

// --- Round-trip: parse(serialize(dom)) == dom for every generated doc ----

class RoundTripProperty
    : public ::testing::TestWithParam<std::tuple<DbClass, uint64_t>> {};

TEST_P(RoundTripProperty, SerializeParseIsIdentity) {
  const auto [cls, seed] = GetParam();
  datagen::GenConfig config;
  config.target_bytes = 48 * 1024;
  config.seed = seed;
  datagen::GeneratedDatabase db = datagen::Generate(cls, config);
  for (const datagen::GeneratedDocument& doc : db.documents) {
    auto reparsed = xml::Parse(doc.text, doc.name);
    ASSERT_TRUE(reparsed.ok()) << doc.name << ": "
                               << reparsed.status().ToString();
    EXPECT_TRUE(reparsed->root()->StructurallyEquals(*doc.dom.root()))
        << doc.name;
    // Serialization is a fixpoint after one round.
    EXPECT_EQ(xml::Serialize(*reparsed), doc.text) << doc.name;
  }
}

TEST_P(RoundTripProperty, DocumentOrderIdsAreStrictPreorder) {
  const auto [cls, seed] = GetParam();
  datagen::GenConfig config;
  config.target_bytes = 32 * 1024;
  config.seed = seed;
  datagen::GeneratedDatabase db = datagen::Generate(cls, config);
  for (const datagen::GeneratedDocument& doc : db.documents) {
    uint32_t expected = 1;
    bool ok = true;
    doc.dom.root()->Visit([&](const xml::Node& node) {
      if (node.order() != expected++) ok = false;
    });
    EXPECT_TRUE(ok) << doc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTripProperty,
    ::testing::Combine(::testing::Values(DbClass::kTcSd, DbClass::kTcMd,
                                         DbClass::kDcSd, DbClass::kDcMd),
                       ::testing::Values(1u, 7u, 42u)),
    [](const auto& info) {
      return ClassSeedName(std::get<0>(info.param), std::get<1>(info.param));
    });

// --- Native engine: indexed access must not change answers ----------------

class IndexEquivalenceProperty : public ::testing::TestWithParam<DbClass> {};

TEST_P(IndexEquivalenceProperty, IndexedAndScanAnswersAgree) {
  const DbClass cls = GetParam();
  datagen::GenConfig config;
  config.target_bytes = 96 * 1024;
  config.seed = 42;
  datagen::GeneratedDatabase db = datagen::Generate(cls, config);
  const workload::QueryParams params =
      workload::DeriveParams(cls, db.seeds);

  auto scan_engine = std::make_unique<engines::NativeEngine>();
  ASSERT_TRUE(
      scan_engine->BulkLoad(cls, workload::ToLoadDocuments(db)).ok());

  auto indexed_engine = std::make_unique<engines::NativeEngine>();
  ASSERT_TRUE(
      indexed_engine->BulkLoad(cls, workload::ToLoadDocuments(db)).ok());
  ASSERT_TRUE(workload::CreateTable3Indexes(*indexed_engine, cls).ok());

  for (workload::QueryId id : workload::BenchmarkSubset()) {
    auto scan = workload::RunQuery(*scan_engine, id, cls, params);
    auto indexed = workload::RunQuery(*indexed_engine, id, cls, params);
    ASSERT_TRUE(scan.status.ok()) << workload::QueryName(id);
    ASSERT_TRUE(indexed.status.ok()) << workload::QueryName(id);
    EXPECT_EQ(workload::CanonicalizeAnswer(id, scan.lines),
              workload::CanonicalizeAnswer(id, indexed.lines))
        << workload::QueryName(id);
  }
}

TEST_P(IndexEquivalenceProperty, ShredFlavorsAgreeOnRowCounts) {
  const DbClass cls = GetParam();
  datagen::GenConfig config;
  config.target_bytes = 64 * 1024;
  config.seed = 42;
  datagen::GeneratedDatabase db = datagen::Generate(cls, config);

  engines::ShredEngine db2(engines::EngineKind::kShredDb2);
  engines::ShredEngine mssql(engines::EngineKind::kShredMsSql);
  ASSERT_TRUE(db2.BulkLoad(cls, workload::ToLoadDocuments(db)).ok());
  ASSERT_TRUE(mssql.BulkLoad(cls, workload::ToLoadDocuments(db)).ok());

  // Identical table population regardless of flavor (content differs only
  // in mixed-content columns).
  for (const std::string& table : db2.tables().TableNames()) {
    ASSERT_NE(mssql.tables().FindTable(table), nullptr) << table;
    EXPECT_EQ(db2.tables().FindTable(table)->row_count(),
              mssql.tables().FindTable(table)->row_count())
        << table;
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, IndexEquivalenceProperty,
                         ::testing::Values(DbClass::kTcSd, DbClass::kTcMd,
                                           DbClass::kDcSd, DbClass::kDcMd),
                         [](const auto& info) {
                           return ClassSeedName(info.param, 42);
                         });

// --- B+-tree vs reference model under random operations -------------------

class BTreeModelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeModelProperty, MatchesMultimapReference) {
  Rng rng(GetParam());
  VirtualClock clock;
  relational::BTreeIndex tree(clock);
  std::multimap<int64_t, storage::RecordId> reference;

  for (int step = 0; step < 4000; ++step) {
    const int64_t key = rng.NextInt(0, 200);
    const double action = rng.NextDouble();
    if (action < 0.6) {
      const auto rid = static_cast<storage::RecordId>(step);
      tree.Insert({relational::Value::Int(key)}, rid);
      reference.emplace(key, rid);
    } else if (action < 0.8) {
      // Erase one arbitrary entry with this key, if any.
      auto it = reference.find(key);
      const bool expect = it != reference.end();
      const storage::RecordId rid = expect ? it->second : 0;
      EXPECT_EQ(tree.Erase({relational::Value::Int(key)}, rid), expect);
      if (expect) reference.erase(it);
    } else {
      auto rids = tree.Lookup({relational::Value::Int(key)});
      EXPECT_EQ(rids.size(), reference.count(key)) << "key=" << key;
    }
  }
  EXPECT_EQ(tree.entry_count(), reference.size());

  // Full range scan visits exactly the reference contents in key order.
  std::vector<int64_t> keys;
  tree.Range(nullptr, nullptr,
             [&](const relational::Key& key, storage::RecordId) {
               keys.push_back(key[0].AsInt());
               return true;
             });
  EXPECT_EQ(keys.size(), reference.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// --- Heap file round-trips for random record sizes -------------------------

class HeapFileProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapFileProperty, RandomRecordsRoundTrip) {
  Rng rng(GetParam());
  storage::SimulatedDisk disk;
  storage::BufferPool pool(disk, 8);  // deliberately tiny: force eviction
  storage::HeapFile file(disk, pool);

  std::vector<std::pair<storage::RecordId, std::string>> expected;
  for (int i = 0; i < 100; ++i) {
    // Sizes span empty → multi-page.
    const auto size = static_cast<size_t>(rng.NextBounded(3 * 8192));
    std::string payload = rng.NextAlpha(static_cast<int>(size));
    expected.emplace_back(file.Append(payload), std::move(payload));
  }
  pool.ColdRestart();
  // Random-access reads.
  rng.Shuffle(expected);
  for (const auto& [rid, payload] : expected) {
    EXPECT_EQ(file.Read(rid), payload);
  }
  // Sequential scan sees every record once.
  size_t count = 0;
  file.Scan([&](storage::RecordId, std::string_view) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, expected.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFileProperty,
                         ::testing::Values(11u, 22u, 33u));

// --- Query-level invariants over generated data ----------------------------

TEST(WorkloadInvariants, Q3GroupCountsSumToEntriesWithLocations) {
  datagen::GenConfig config;
  config.target_bytes = 96 * 1024;
  config.seed = 42;
  auto db = datagen::Generate(DbClass::kTcSd, config);
  engines::NativeEngine engine;
  ASSERT_TRUE(
      engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());

  // Each group's count is positive and groups are distinct locations.
  auto q3 = engine.Query(
      R"(for $loc in distinct-values($input//qloc)
order by $loc
return <g><l>{$loc}</l><c>{count($input//entry[.//qloc = $loc])}</c></g>)");
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  auto entries_with_loc =
      engine.Query("count($input//entry[.//qloc])");
  ASSERT_TRUE(entries_with_loc.ok());
  // Sum of per-location counts >= entries with any location (an entry can
  // appear in several groups), and every group is non-empty.
  double sum = 0;
  for (const xquery::Item& item : q3->items) {
    const xml::Node* c = item.node->FirstChild("c");
    ASSERT_NE(c, nullptr);
    const double n = ParseDouble(c->TextContent());
    EXPECT_GT(n, 0);
    sum += n;
  }
  EXPECT_GE(sum, ParseDouble(
                     xquery::AtomizeToString(entries_with_loc->items[0])));
}

TEST(WorkloadInvariants, Q10ResultsSortedByShipType) {
  datagen::GenConfig config;
  config.target_bytes = 96 * 1024;
  config.seed = 42;
  auto db = datagen::Generate(DbClass::kDcMd, config);
  engines::NativeEngine engine;
  ASSERT_TRUE(
      engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);

  auto result = workload::RunQuery(engine, workload::QueryId::kQ10,
                                   db.db_class, params);
  ASSERT_TRUE(result.status.ok());
  ASSERT_GT(result.lines.size(), 3u);
  std::vector<std::string> ship_types;
  for (const std::string& line : result.lines) {
    const size_t pos = line.find("<ship>");
    ASSERT_NE(pos, std::string::npos) << line;
    const size_t end = line.find("</ship>");
    ship_types.push_back(line.substr(pos + 6, end - pos - 6));
  }
  EXPECT_TRUE(std::is_sorted(ship_types.begin(), ship_types.end()));
}

TEST(WorkloadInvariants, Q11ResultsSortedByDate) {
  datagen::GenConfig config;
  config.target_bytes = 96 * 1024;
  config.seed = 42;
  auto db = datagen::Generate(DbClass::kTcSd, config);
  engines::NativeEngine engine;
  ASSERT_TRUE(
      engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());

  // Pick an entry known to have several quotations: scan for one.
  auto probe = engine.Query(
      "for $e in $input//entry where count($e//q) >= 2 return data($e/hw)");
  ASSERT_TRUE(probe.ok());
  ASSERT_FALSE(probe->items.empty());
  workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);
  params.headword = xquery::AtomizeToString(probe->items[0]);

  auto result = workload::RunQuery(engine, workload::QueryId::kQ11,
                                   db.db_class, params);
  ASSERT_TRUE(result.status.ok());
  ASSERT_GE(result.lines.size(), 2u);
  std::vector<std::string> dates;
  for (const std::string& line : result.lines) {
    const size_t pos = line.find("<qd>");
    ASSERT_NE(pos, std::string::npos);
    dates.push_back(line.substr(pos + 4, 10));
  }
  EXPECT_TRUE(std::is_sorted(dates.begin(), dates.end()));
}

TEST(WorkloadInvariants, Q16ReturnsTheExactStoredDocument) {
  datagen::GenConfig config;
  config.target_bytes = 64 * 1024;
  config.seed = 42;
  auto db = datagen::Generate(DbClass::kDcMd, config);
  engines::NativeEngine engine;
  ASSERT_TRUE(
      engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);

  auto result = workload::RunQuery(engine, workload::QueryId::kQ16,
                                   db.db_class, params);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.lines.size(), 1u);
  // Must match the generated file byte for byte ("preserving the
  // contents of those documents", §2.2 Q16).
  const std::string expected_name = "order" + params.order_id.substr(1) +
                                    ".xml";
  for (const datagen::GeneratedDocument& doc : db.documents) {
    if (doc.name == expected_name) {
      EXPECT_EQ(result.lines[0], doc.text);
      return;
    }
  }
  FAIL() << "target order document not found: " << expected_name;
}

// --- Robustness: mutated inputs never crash, errors are clean ---------------

class MutationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationProperty, XmlParserSurvivesMutations) {
  datagen::GenConfig config;
  config.target_bytes = 8 * 1024;
  config.seed = 42;
  auto db = datagen::Generate(DbClass::kTcMd, config);
  Rng rng(GetParam());
  const std::string& base = db.documents[0].text;

  for (int i = 0; i < 200; ++i) {
    std::string mutated = base;
    const int kind = static_cast<int>(rng.NextBounded(3));
    if (kind == 0 && !mutated.empty()) {
      // Truncate.
      mutated.resize(rng.NextBounded(mutated.size()));
    } else if (kind == 1 && !mutated.empty()) {
      // Flip a byte to a random printable character.
      mutated[rng.NextIndex(mutated.size())] =
          static_cast<char>('!' + rng.NextBounded(90));
    } else {
      // Splice a fragment of itself somewhere.
      const size_t at = rng.NextIndex(mutated.size() + 1);
      const size_t from = rng.NextIndex(mutated.size());
      mutated.insert(at, mutated.substr(from,
                                        rng.NextBounded(32)));
    }
    // Must return cleanly — success or a kCorruption error, never a crash
    // or a success with a broken tree.
    auto result = xml::Parse(mutated, "mutated.xml");
    if (result.ok()) {
      EXPECT_NE(result->root(), nullptr);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(MutationProperty, XQueryParserSurvivesMutations) {
  const std::string base =
      R"(for $a in $input where some $p in $a//p satisfies contains($p, "x")
order by $a/prolog/date descending
return <hit id="{$a/@id}">{data($a/prolog/title)}</hit>)";
  Rng rng(GetParam() ^ 0x9E37ull);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    const int kind = static_cast<int>(rng.NextBounded(2));
    if (kind == 0) {
      mutated.resize(rng.NextBounded(mutated.size()));
    } else {
      mutated[rng.NextIndex(mutated.size())] =
          static_cast<char>('!' + rng.NextBounded(90));
    }
    auto result = xquery::ParseQuery(mutated);  // must not crash
    if (result.ok()) {
      EXPECT_NE(*result, nullptr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationProperty,
                         ::testing::Values(101u, 202u, 303u));

TEST(WorkloadInvariants, ColdRunsCostMoreIoThanWarmRuns) {
  datagen::GenConfig config;
  config.target_bytes = 128 * 1024;
  config.seed = 42;
  auto db = datagen::Generate(DbClass::kTcMd, config);
  engines::NativeEngine engine;
  ASSERT_TRUE(
      engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);

  workload::RunOptions cold_run;
  cold_run.cold = true;
  workload::RunOptions warm_run;
  warm_run.cold = false;
  auto cold = workload::RunQuery(engine, workload::QueryId::kQ17,
                                 db.db_class, params, cold_run);
  auto warm = workload::RunQuery(engine, workload::QueryId::kQ17,
                                 db.db_class, params, warm_run);
  ASSERT_TRUE(cold.status.ok());
  ASSERT_TRUE(warm.status.ok());
  EXPECT_EQ(workload::CanonicalizeAnswer(workload::QueryId::kQ17, cold.lines),
            workload::CanonicalizeAnswer(workload::QueryId::kQ17,
                                         warm.lines));
  EXPECT_LT(warm.io_millis, cold.io_millis)
      << "warm=" << warm.io_millis << " cold=" << cold.io_millis;
}

}  // namespace
}  // namespace xbench
