#include <gtest/gtest.h>

#include "engines/dad.h"
#include "engines/shredder.h"
#include "xml/parser.h"

namespace xbench::engines {
namespace {

using relational::Row;
using relational::Value;

class ShredderTest : public ::testing::Test {
 protected:
  ShredderTest() : pool_(disk_, 64), db_(disk_, pool_) {}

  Status Shred(const std::string& xml_text, const Dad& dad,
               const ShredOptions& options,
               std::map<std::string, int64_t>* rows = nullptr) {
    auto doc = xml::Parse(xml_text, "t.xml");
    if (!doc.ok()) return doc.status();
    return ShredDocument(*doc->root(), "t.xml", dad, options, db_,
                         next_row_id_, rows);
  }

  storage::SimulatedDisk disk_;
  storage::BufferPool pool_;
  relational::Database db_;
  int64_t next_row_id_ = 0;
};

Dad TinyDad() {
  Dad dad;
  dad.tables.push_back(TableMap{
      "a_tab",
      "a",
      {{"id", "@id", relational::ValueType::kString, false},
       {"title", "t", relational::ValueType::kString, false},
       {"deep", "x/y", relational::ValueType::kString, false}}});
  dad.tables.push_back(TableMap{
      "b_tab",
      "b",
      {{"text", ".", relational::ValueType::kString, false},
       {"n", "@n", relational::ValueType::kInt, false}}});
  return dad;
}

TEST_F(ShredderTest, ExtractRelPathForms) {
  auto doc = xml::Parse(
      R"(<a id="A1"><t>hello</t><x><y>deep</y></x>text</a>)", "t.xml");
  ASSERT_TRUE(doc.ok());
  const xml::Node& root = *doc->root();
  EXPECT_EQ(ExtractRelPath(root, "@id"), std::make_pair(true, std::string("A1")));
  EXPECT_EQ(ExtractRelPath(root, "t"),
            std::make_pair(true, std::string("hello")));
  EXPECT_EQ(ExtractRelPath(root, "x/y"),
            std::make_pair(true, std::string("deep")));
  EXPECT_FALSE(ExtractRelPath(root, "missing").first);
  EXPECT_FALSE(ExtractRelPath(root, "@nope").first);
  EXPECT_EQ(ExtractRelPath(root, ".").second, "hellodeeptext");
}

TEST_F(ShredderTest, CreatesTablesWithImplicitColumns) {
  ASSERT_TRUE(CreateDadTables(TinyDad(), db_).ok());
  relational::Table* table = db_.FindTable("a_tab");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->schema().IndexOf("doc"), kColDoc);
  EXPECT_EQ(table->schema().IndexOf("row_id"), kColRowId);
  EXPECT_EQ(table->schema().IndexOf("parent_table"), kColParentTable);
  EXPECT_EQ(table->schema().IndexOf("parent_row"), kColParentRow);
  EXPECT_EQ(table->schema().IndexOf("seq"), kColSeq);
  EXPECT_EQ(table->schema().IndexOf("id"), kColFirstMapped);
}

TEST_F(ShredderTest, ShredsRowsWithParentLinks) {
  ASSERT_TRUE(CreateDadTables(TinyDad(), db_).ok());
  std::map<std::string, int64_t> rows;
  ASSERT_TRUE(Shred(
      R"(<root><a id="A1"><t>T1</t><b n="1">b1</b><b n="2">b2</b></a>
         <a id="A2"><t>T2</t></a></root>)",
      TinyDad(), ShredOptions{.keep_seq = true}, &rows)
                  .ok());
  EXPECT_EQ(rows["a_tab"], 2);
  EXPECT_EQ(rows["b_tab"], 2);

  relational::Table* a_tab = db_.FindTable("a_tab");
  relational::Table* b_tab = db_.FindTable("b_tab");
  std::vector<Row> a_rows;
  a_tab->Scan([&](storage::RecordId, const Row& row) {
    a_rows.push_back(row);
    return true;
  });
  ASSERT_EQ(a_rows.size(), 2u);
  // Root <root> is unmapped: a rows have no parent.
  EXPECT_TRUE(a_rows[0][kColParentTable].is_null());
  EXPECT_EQ(a_rows[0][kColFirstMapped].AsString(), "A1");

  std::vector<Row> b_rows;
  b_tab->Scan([&](storage::RecordId, const Row& row) {
    b_rows.push_back(row);
    return true;
  });
  ASSERT_EQ(b_rows.size(), 2u);
  EXPECT_EQ(b_rows[0][kColParentTable].AsString(), "a_tab");
  EXPECT_EQ(b_rows[0][kColParentRow].AsInt(), a_rows[0][kColRowId].AsInt());
  EXPECT_EQ(b_rows[0][kColSeq].AsInt(), 1);
  EXPECT_EQ(b_rows[1][kColSeq].AsInt(), 2);
  EXPECT_EQ(b_rows[0][kColFirstMapped].AsString(), "b1");
  // Typed column.
  EXPECT_EQ(b_rows[1][static_cast<size_t>(kColFirstMapped) + 1].AsInt(), 2);
}

TEST_F(ShredderTest, SeqDroppedWhenNotKept) {
  ASSERT_TRUE(CreateDadTables(TinyDad(), db_).ok());
  ASSERT_TRUE(Shred(R"(<root><a id="A1"/></root>)", TinyDad(),
                    ShredOptions{.keep_seq = false}, nullptr)
                  .ok());
  relational::Table* a_tab = db_.FindTable("a_tab");
  a_tab->Scan([&](storage::RecordId, const Row& row) {
    EXPECT_TRUE(row[kColSeq].is_null());
    return true;
  });
}

TEST_F(ShredderTest, MissingColumnsAreNull) {
  ASSERT_TRUE(CreateDadTables(TinyDad(), db_).ok());
  ASSERT_TRUE(Shred(R"(<root><a id="A1"/></root>)", TinyDad(), ShredOptions{},
                    nullptr)
                  .ok());
  relational::Table* a_tab = db_.FindTable("a_tab");
  a_tab->Scan([&](storage::RecordId, const Row& row) {
    EXPECT_TRUE(row[static_cast<size_t>(kColFirstMapped) + 1].is_null());
    EXPECT_TRUE(row[static_cast<size_t>(kColFirstMapped) + 2].is_null());
    return true;
  });
}

TEST_F(ShredderTest, MixedContentDroppedForMsSqlFlavor) {
  Dad dad;
  dad.tables.push_back(TableMap{
      "q_tab",
      "q",
      {{"qt", "qt", relational::ValueType::kString, /*mixed=*/true}}});
  ASSERT_TRUE(CreateDadTables(dad, db_).ok());
  const char* text = "<root><q><qt>before <em>word</em> after</qt></q></root>";

  ASSERT_TRUE(
      Shred(text, dad, ShredOptions{.drop_mixed_content = true}, nullptr)
          .ok());
  relational::Table* q_tab = db_.FindTable("q_tab");
  std::vector<Row> rows;
  q_tab->Scan([&](storage::RecordId, const Row& row) {
    rows.push_back(row);
    return true;
  });
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][kColFirstMapped].is_null());

  // DB2 flavor keeps the concatenated text.
  ASSERT_TRUE(Shred(text, dad, ShredOptions{.drop_mixed_content = false},
                    nullptr)
                  .ok());
  rows.clear();
  q_tab->Scan([&](storage::RecordId, const Row& row) {
    rows.push_back(row);
    return true;
  });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][kColFirstMapped].AsString(), "before word after");
}

TEST_F(ShredderTest, RecursiveElementsGetChainedParents) {
  Dad dad;
  dad.tables.push_back(TableMap{
      "sec_tab", "sec", {{"heading", "heading",
                          relational::ValueType::kString, false}}});
  ASSERT_TRUE(CreateDadTables(dad, db_).ok());
  ASSERT_TRUE(Shred(
      R"(<article><sec><heading>H1</heading><sec><heading>H1.1</heading></sec></sec></article>)",
      dad, ShredOptions{}, nullptr)
                  .ok());
  relational::Table* sec_tab = db_.FindTable("sec_tab");
  std::vector<Row> rows;
  sec_tab->Scan([&](storage::RecordId, const Row& row) {
    rows.push_back(row);
    return true;
  });
  ASSERT_EQ(rows.size(), 2u);
  // The nested sec's parent is the outer sec row (the added-id fix).
  EXPECT_EQ(rows[1][kColParentTable].AsString(), "sec_tab");
  EXPECT_EQ(rows[1][kColParentRow].AsInt(), rows[0][kColRowId].AsInt());
}

TEST(DadTest, AllClassesHaveDads) {
  for (datagen::DbClass cls :
       {datagen::DbClass::kTcSd, datagen::DbClass::kTcMd,
        datagen::DbClass::kDcSd, datagen::DbClass::kDcMd}) {
    EXPECT_FALSE(ShredDadFor(cls).tables.empty());
  }
  EXPECT_FALSE(ClobSideTablesFor(datagen::DbClass::kDcMd).tables.empty());
  EXPECT_FALSE(ClobSideTablesFor(datagen::DbClass::kTcMd).tables.empty());
  EXPECT_TRUE(ClobSideTablesFor(datagen::DbClass::kTcSd).tables.empty());
  EXPECT_TRUE(ClobSideTablesFor(datagen::DbClass::kDcSd).tables.empty());
}

TEST(DadTest, ResolveIndexPaths) {
  Dad dad = ShredDadFor(datagen::DbClass::kDcSd);
  auto item = ResolveIndexPath(dad, "item/@id");
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->first, "item_tab");
  EXPECT_EQ(item->second, "item_id");

  auto date = ResolveIndexPath(dad, "date_of_release");
  ASSERT_TRUE(date.ok());
  EXPECT_EQ(date->first, "item_tab");

  EXPECT_FALSE(ResolveIndexPath(dad, "no/such").ok());

  Dad tcsd = ShredDadFor(datagen::DbClass::kTcSd);
  auto hw = ResolveIndexPath(tcsd, "hw");
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(hw->first, "entry_tab");
}

}  // namespace
}  // namespace xbench::engines
