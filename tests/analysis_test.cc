#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/class_schemas.h"
#include "engines/native_engine.h"
#include "workload/queries.h"
#include "workload/runner.h"
#include "xml/parser.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace xbench::analysis {
namespace {

using datagen::DbClass;
using workload::QueryId;

/// Fixture over a tiny hand-written schema: documents rooted at `a`,
///   a -> b* , d?      b -> c*      c, d -> #PCDATA
/// and element `z` declared but unreachable from `a`.
class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = xml::Dtd::Parse(R"(
<!ELEMENT a (b*, d?)>
<!ELEMENT b (c*)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
<!ELEMENT z (#PCDATA)>
)");
    ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
    dtd_ = std::move(dtd).value();
    context_.dtd = &dtd_;
    context_.roots = {"a"};
  }

  /// Parses and analyzes `query`, returning the report.
  AnalysisReport Analyzed(const std::string& query) {
    auto parsed = xquery::ParseQuery(query);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    expr_ = std::move(parsed).value();
    return Analyze(*expr_, context_);
  }

  xml::Dtd dtd_;
  SchemaContext context_;
  xquery::ExprPtr expr_;
};

TEST_F(AnalyzerTest, CleanPathHasNoDiagnostics) {
  AnalysisReport report = Analyzed("$input/b/c");
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToString();
  ASSERT_EQ(report.paths.size(), 1u);
  EXPECT_EQ(report.paths[0].rendered, "$input/b/c");
  ASSERT_EQ(report.paths[0].result_types.size(), 1u);
  EXPECT_EQ(report.paths[0].result_types[0], "c");
}

TEST_F(AnalyzerTest, UnknownNameIsAnError) {
  AnalysisReport report = Analyzed("$input/zzz");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].kind, DiagnosticKind::kUnknownName);
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kError);
  EXPECT_TRUE(report.HasErrors());
}

TEST_F(AnalyzerTest, DeclaredButImpossibleChildIsAnError) {
  // `a` is declared, but `c` (a #PCDATA leaf) can never have it as a child.
  AnalysisReport report = Analyzed("$input/b/c/a");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].kind, DiagnosticKind::kImpossibleStep);
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kError);
  EXPECT_NE(report.diagnostics[0].message.find("#PCDATA"), std::string::npos)
      << report.diagnostics[0].message;
}

TEST_F(AnalyzerTest, UnreachableDescendantIsAnError) {
  // `z` is declared but lives outside the descendant closure of `a`.
  AnalysisReport report = Analyzed("$input//z");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].kind,
            DiagnosticKind::kUnreachableDescendant);
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kError);
}

TEST_F(AnalyzerTest, WrongAxisIsAnError) {
  // `d` is a child of `a`, not an attribute.
  AnalysisReport report = Analyzed("$input/@d");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].kind, DiagnosticKind::kImpossibleStep);
}

TEST_F(AnalyzerTest, AlwaysEmptyPathIsAWarning) {
  // The DTD admits a/d, but the instance statistics (one document with no
  // <d>) bound its occurrence count to zero — the Q14 situation.
  auto doc = xml::Parse("<a><b><c>x</c></b></a>", "a.xml");
  ASSERT_TRUE(doc.ok());
  xml::SchemaSummary summary;
  summary.AddDocument(*doc);
  context_.summary = &summary;

  AnalysisReport report = Analyzed("$input/d");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].kind, DiagnosticKind::kAlwaysEmptyPath);
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kWarning);
  EXPECT_FALSE(report.HasErrors());
  ASSERT_EQ(report.paths.size(), 1u);
  EXPECT_EQ(report.paths[0].cardinality, Cardinality::kEmpty);
}

TEST_F(AnalyzerTest, DescendantStepIsResolvedToChains) {
  AnalysisReport report = Analyzed("$input//c");
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToString();
  EXPECT_EQ(report.resolved_steps, 1);
  // `//c` parses as descendant-or-self::* followed by child::c; the
  // analyzer annotates the child step with the only admissible chain.
  ASSERT_EQ(expr_->steps.size(), 2u);
  const xquery::Step& step = expr_->steps[1];
  ASSERT_EQ(step.expansions.size(), 1u);
  EXPECT_EQ(step.expansions[0].context_type, "a");
  EXPECT_EQ(step.expansions[0].labels,
            (std::vector<std::string>{"b", "c"}));
}

TEST_F(AnalyzerTest, GuidedEvaluationMatchesFullScan) {
  auto doc = xml::Parse(
      "<a><b><c>1</c><c>2</c></b><b><c>3</c></b><d>t</d></a>", "a.xml");
  ASSERT_TRUE(doc.ok());
  xquery::Bindings bindings;
  bindings["input"] = xquery::Sequence{xquery::Item::Node(doc->root())};

  // Unannotated AST: the evaluator falls back to the full subtree scan.
  auto plain = xquery::ParseQuery("$input//c");
  ASSERT_TRUE(plain.ok());
  auto scan = xquery::Evaluate(**plain, bindings);
  ASSERT_TRUE(scan.ok());

  // Annotated AST: the evaluator walks only the admitted label chains.
  AnalysisReport report = Analyzed("$input//c");
  ASSERT_EQ(report.resolved_steps, 1);
  auto guided = xquery::Evaluate(*expr_, bindings);
  ASSERT_TRUE(guided.ok());

  EXPECT_EQ(guided->ToText(), scan->ToText());
  EXPECT_EQ(scan->ToText(), "<c>1</c>\n<c>2</c>\n<c>3</c>\n");
}

TEST_F(AnalyzerTest, GuidedEvaluationAppliesPredicatesPerParent) {
  // Positional predicates on a fused `//name[pred]` pair must see the
  // same per-parent candidate lists as the unfused child step: `//c[1]`
  // selects the first <c> of *every* parent, not the first <c> overall.
  auto doc = xml::Parse(
      "<a><b><c>1</c><c>2</c></b><b><c>3</c></b><d>t</d></a>", "a.xml");
  ASSERT_TRUE(doc.ok());
  xquery::Bindings bindings;
  bindings["input"] = xquery::Sequence{xquery::Item::Node(doc->root())};

  const std::vector<std::pair<std::string, std::string>> cases = {
      {"$input//c[1]", "<c>1</c>\n<c>3</c>\n"},
      {"$input//c[last()]", "<c>2</c>\n<c>3</c>\n"},
      {"$input//c[position() = 2]", "<c>2</c>\n"},
      {"$input//c[. = \"2\"]", "<c>2</c>\n"},
  };
  for (const auto& [query, expected] : cases) {
    auto plain = xquery::ParseQuery(query);
    ASSERT_TRUE(plain.ok()) << query;
    auto scan = xquery::Evaluate(**plain, bindings);
    ASSERT_TRUE(scan.ok()) << query;
    EXPECT_EQ(scan->ToText(), expected) << query;

    AnalysisReport report = Analyzed(query);
    EXPECT_TRUE(report.diagnostics.empty()) << query << report.ToString();
    EXPECT_EQ(report.resolved_steps, 1) << query;
    auto guided = xquery::Evaluate(*expr_, bindings);
    ASSERT_TRUE(guided.ok()) << query;
    EXPECT_EQ(guided->ToText(), expected) << query;
  }
}

TEST_F(AnalyzerTest, ExpansionsCanBeDisabledPerEvaluation) {
  auto doc = xml::Parse("<a><b><c>1</c></b></a>", "a.xml");
  ASSERT_TRUE(doc.ok());
  xquery::Bindings bindings;
  bindings["input"] = xquery::Sequence{xquery::Item::Node(doc->root())};

  AnalysisReport report = Analyzed("$input//c");
  ASSERT_EQ(report.resolved_steps, 1);
  xquery::EvalOptions options;
  options.use_step_expansions = false;
  auto result = xquery::Evaluate(*expr_, bindings, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToText(), "<c>1</c>\n");
}

TEST_F(AnalyzerTest, RecursiveSchemaIsNotExpanded) {
  auto dtd = xml::Dtd::Parse(R"(
<!ELEMENT doc (sec*)>
<!ELEMENT sec (title?, sec*)>
<!ELEMENT title (#PCDATA)>
)");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  dtd_ = std::move(dtd).value();
  context_.dtd = &dtd_;
  context_.roots = {"doc"};

  // `title` is reachable only through the recursive `sec` nest: the set of
  // label chains is unbounded, so the step must stay unannotated (the
  // evaluator keeps its full-scan behaviour, which is always correct).
  AnalysisReport report = Analyzed("$input//title");
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToString();
  EXPECT_EQ(report.resolved_steps, 0);
  ASSERT_EQ(expr_->steps.size(), 2u);
  EXPECT_TRUE(expr_->steps[1].expansions.empty());
}

TEST_F(AnalyzerTest, SelfPredicateNarrowsMultiRootInput) {
  // The DC/MD idiom: $input holds several root types and queries narrow
  // with [self::order]. Narrowing must not flag the other root types.
  auto dtd = xml::Dtd::Parse(R"(
<!ELEMENT order (total)>
<!ELEMENT total (#PCDATA)>
<!ELEMENT customers (name*)>
<!ELEMENT name (#PCDATA)>
)");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  dtd_ = std::move(dtd).value();
  context_.dtd = &dtd_;
  context_.roots = {"order", "customers"};

  AnalysisReport report = Analyzed("$input[self::order]/total");
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToString();

  // Without narrowing, `total` is impossible for the `customers` root but
  // fine for `order` — still no diagnostic (some context admits it).
  report = Analyzed("$input/name");
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToString();

  // A name no root admits is an error even in the multi-root case.
  report = Analyzed("$input/zz_nothing");
  EXPECT_TRUE(report.HasErrors());
}

/// Every canned query of every class must pass analysis against the
/// class's canonical schema with no diagnostics at all — the xqlint gate
/// as an in-process test.
class CannedQueryAnalysisTest : public ::testing::TestWithParam<DbClass> {};

TEST_P(CannedQueryAnalysisTest, AllQueriesAnalyzeClean) {
  const DbClass cls = GetParam();
  const ClassSchema& schema = CanonicalClassSchema(cls);
  const workload::QueryParams params =
      workload::DeriveParams(cls, schema.seeds);
  for (int i = 0; i < 20; ++i) {
    const auto id = static_cast<QueryId>(i);
    const std::string xquery = workload::XQueryFor(id, cls, params);
    if (xquery.empty()) continue;  // not defined for this class
    auto parsed = xquery::ParseQuery(xquery);
    ASSERT_TRUE(parsed.ok())
        << workload::QueryName(id) << ": " << parsed.status().ToString();
    AnalysisReport report = Analyze(**parsed, schema.Context());
    EXPECT_TRUE(report.diagnostics.empty())
        << workload::QueryName(id) << " on " << datagen::DbClassName(cls)
        << ":\n"
        << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, CannedQueryAnalysisTest,
                         ::testing::Values(DbClass::kTcSd, DbClass::kTcMd,
                                           DbClass::kDcSd, DbClass::kDcMd),
                         [](const auto& info) {
                           return std::string(
                                      datagen::DbClassName(info.param))
                                      .substr(0, 2) +
                                  (datagen::DbClassName(info.param)[3] == 'S'
                                       ? "SD"
                                       : "MD");
                         });

TEST(GuidedEvalValidationTest, AcceptsConformingAndRejectsDriftedTrees) {
  auto dtd = xml::Dtd::Parse(R"(
<!ELEMENT a (b*, d?)>
<!ELEMENT b (c*)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
)");
  ASSERT_TRUE(dtd.ok());
  ClassSchema schema;
  schema.dtd = std::move(dtd).value();
  schema.roots = {"a"};

  auto ok_doc = xml::Parse("<a><b><c>x</c></b><d>y</d></a>", "ok.xml");
  ASSERT_TRUE(ok_doc.ok());
  EXPECT_TRUE(ValidateForGuidedEval(*ok_doc->root(), schema).ok());

  // An edge the schema never saw (a -> c) must be rejected: guided
  // collection would silently skip such children.
  auto drifted = xml::Parse("<a><c>x</c></a>", "drift.xml");
  ASSERT_TRUE(drifted.ok());
  Status status = ValidateForGuidedEval(*drifted->root(), schema);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("edge"), std::string::npos)
      << status.ToString();

  // A foreign root type is also non-conforming.
  auto wrong_root = xml::Parse("<b><c>x</c></b>", "root.xml");
  ASSERT_TRUE(wrong_root.ok());
  EXPECT_FALSE(ValidateForGuidedEval(*wrong_root->root(), schema).ok());
}

TEST(GuidedEvalValidationTest, GeneratedDatabasesConform) {
  // Databases generated with a configuration other than the canonical
  // sample's must still validate (otherwise the driver path would run
  // every `//` step as a full scan).
  for (DbClass cls : {DbClass::kTcSd, DbClass::kTcMd, DbClass::kDcSd,
                      DbClass::kDcMd}) {
    datagen::GenConfig config;
    config.target_bytes = 48 * 1024;
    config.seed = 7;
    const datagen::GeneratedDatabase db = datagen::Generate(cls, config);
    EXPECT_TRUE(ValidateDatabaseForGuidedEval(db).ok())
        << datagen::DbClassName(cls) << ": "
        << ValidateDatabaseForGuidedEval(db).ToString();
  }
}

TEST(GuidedEvalValidationTest, BulkLoadGatesGuidedEvaluation) {
  datagen::GenConfig config;
  config.target_bytes = 32 * 1024;
  config.seed = 42;
  const datagen::GeneratedDatabase db =
      datagen::Generate(DbClass::kTcSd, config);
  engines::NativeEngine engine;
  EXPECT_FALSE(engine.guided_eval_enabled());
  workload::TimedStatus timed = workload::BulkLoad(engine, db);
  ASSERT_TRUE(timed.status.ok()) << timed.status.ToString();
  EXPECT_TRUE(engine.guided_eval_enabled());

  // Inserting a document invalidates the load-time conformance proof.
  ASSERT_TRUE(engine.InsertDocument({"extra.xml", "<x><y>t</y></x>"}).ok());
  EXPECT_FALSE(engine.guided_eval_enabled());
}

TEST(AnalyzeForClassTest, MisdirectedQueryIsAHardError) {
  // A query referencing an element the TC/SD dictionary DTD cannot
  // produce must fail up front, not run and return an empty answer.
  auto result =
      workload::AnalyzeForClass("$input/purchase_order/total", DbClass::kTcSd);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("schema analysis"),
            std::string::npos)
      << result.status().ToString();
}

TEST(AnalyzeForClassTest, ValidQueryReturnsAnnotatedAst) {
  const ClassSchema& schema = CanonicalClassSchema(DbClass::kDcSd);
  const workload::QueryParams params =
      workload::DeriveParams(DbClass::kDcSd, schema.seeds);
  const std::string q8 =
      workload::XQueryFor(QueryId::kQ8, DbClass::kDcSd, params);
  ASSERT_FALSE(q8.empty());
  auto result = workload::AnalyzeForClass(q8, DbClass::kDcSd);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace xbench::analysis
