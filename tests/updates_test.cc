#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "engines/clob_engine.h"
#include "engines/native_engine.h"
#include "engines/shred_engine.h"
#include "relational/exec.h"
#include "tpcw/rows.h"
#include "workload/classes.h"
#include "workload/queries.h"
#include "workload/runner.h"
#include "xml/serializer.h"

namespace xbench::engines {
namespace {

using datagen::DbClass;

datagen::GeneratedDatabase OrdersDb() {
  datagen::GenConfig config;
  config.target_bytes = 64 * 1024;
  config.seed = 42;
  return datagen::Generate(DbClass::kDcMd, config);
}

LoadDocument NewOrderDoc(const std::string& id) {
  return {"order_new_" + id + ".xml",
          "<order id=\"" + id +
              "\"><customer_id>C000001</customer_id>"
              "<order_date>2002-01-01</order_date>"
              "<sub_total>10.00</sub_total><tax>0.80</tax>"
              "<total>10.80</total>"
              "<shipping><ship_type>AIR</ship_type>"
              "<ship_date>2002-01-02</ship_date></shipping>"
              "<status>PENDING</status>"
              "<order_lines><order_line no=\"1\">"
              "<item_id>I000001</item_id><quantity>1</quantity>"
              "<discount>0.00</discount></order_line></order_lines>"
              "</order>"};
}

class UpdateWorkloadTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(UpdateWorkloadTest, InsertThenQueryFindsDocument) {
  auto db = OrdersDb();
  auto engine = workload::MakeEngine(GetParam());
  ASSERT_TRUE(
      engine->BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  ASSERT_TRUE(workload::CreateTable3Indexes(*engine, db.db_class).ok());

  ASSERT_TRUE(engine->InsertDocument(NewOrderDoc("O999999")).ok());

  workload::QueryParams params = workload::DeriveParams(db.db_class, db.seeds);
  params.order_id = "O999999";
  auto result = workload::RunQuery(*engine, workload::QueryId::kQ8,
                                   db.db_class, params);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_EQ(result.lines[0], "AIR");
}

TEST_P(UpdateWorkloadTest, DeleteRemovesFromQueries) {
  auto db = OrdersDb();
  auto engine = workload::MakeEngine(GetParam());
  ASSERT_TRUE(
      engine->BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  ASSERT_TRUE(workload::CreateTable3Indexes(*engine, db.db_class).ok());

  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);
  auto before = workload::RunQuery(*engine, workload::QueryId::kQ8,
                                   db.db_class, params);
  ASSERT_TRUE(before.status.ok());
  ASSERT_EQ(before.lines.size(), 1u);

  const std::string doc_name =
      "order" + params.order_id.substr(1) + ".xml";
  ASSERT_TRUE(engine->DeleteDocument(doc_name).ok());

  auto after = workload::RunQuery(*engine, workload::QueryId::kQ8,
                                  db.db_class, params);
  ASSERT_TRUE(after.status.ok());
  EXPECT_TRUE(after.lines.empty());

  // Deleting twice fails cleanly.
  EXPECT_EQ(engine->DeleteDocument(doc_name).code(), StatusCode::kNotFound);
}

TEST_P(UpdateWorkloadTest, InsertDeleteRoundTripPreservesOtherAnswers) {
  auto db = OrdersDb();
  auto engine = workload::MakeEngine(GetParam());
  ASSERT_TRUE(
      engine->BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  ASSERT_TRUE(workload::CreateTable3Indexes(*engine, db.db_class).ok());
  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);

  auto baseline = workload::RunQuery(*engine, workload::QueryId::kQ17,
                                     db.db_class, params);
  ASSERT_TRUE(baseline.status.ok());

  ASSERT_TRUE(engine->InsertDocument(NewOrderDoc("O888888")).ok());
  ASSERT_TRUE(engine->DeleteDocument("order_new_O888888.xml").ok());

  auto again = workload::RunQuery(*engine, workload::QueryId::kQ17,
                                  db.db_class, params);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(workload::CanonicalizeAnswer(workload::QueryId::kQ17,
                                         baseline.lines),
            workload::CanonicalizeAnswer(workload::QueryId::kQ17,
                                         again.lines));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, UpdateWorkloadTest,
    ::testing::Values(EngineKind::kNative, EngineKind::kClob,
                      EngineKind::kShredDb2, EngineKind::kShredMsSql),
    [](const auto& info) {
      switch (info.param) {
        case EngineKind::kNative:
          return "Native";
        case EngineKind::kClob:
          return "Xcolumn";
        case EngineKind::kShredDb2:
          return "Xcollection";
        case EngineKind::kShredMsSql:
          return "SqlServer";
      }
      return "Unknown";
    });

// --- Table / B-tree delete mechanics ------------------------------------------

TEST(TableDeleteTest, DeleteRemovesFromScansFetchesAndIndexes) {
  storage::SimulatedDisk disk;
  storage::BufferPool pool(disk, 64);
  relational::Database db(disk, pool);
  relational::Table* table = *db.CreateTable(
      "t", relational::Schema({{"k", relational::ValueType::kInt}}));
  ASSERT_TRUE(table->CreateIndex("by_k", {"k"}).ok());

  std::vector<storage::RecordId> rids;
  for (int i = 0; i < 10; ++i) {
    rids.push_back(*table->Insert({relational::Value::Int(i % 5)}));
  }
  EXPECT_EQ(table->row_count(), 10u);

  ASSERT_TRUE(table->Delete(rids[3]).ok());
  EXPECT_EQ(table->row_count(), 9u);
  EXPECT_FALSE(table->Fetch(rids[3]).ok());
  EXPECT_EQ(
      relational::IndexLookup(*table, "by_k", {relational::Value::Int(3)})
          .size(),
      1u);  // was 2 (rows 3 and 8)

  int visited = 0;
  table->Scan([&](storage::RecordId, const relational::Row&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 9);
}

TEST(BTreeEraseTest, ErasesSpecificDuplicate) {
  VirtualClock clock;
  relational::BTreeIndex tree(clock);
  for (int i = 0; i < 1000; ++i) {
    tree.Insert({relational::Value::Int(i % 10)},
                static_cast<storage::RecordId>(i));
  }
  EXPECT_TRUE(tree.Erase({relational::Value::Int(7)}, 507));
  EXPECT_FALSE(tree.Erase({relational::Value::Int(7)}, 507));  // gone
  EXPECT_FALSE(tree.Erase({relational::Value::Int(12)}, 1));   // no such key
  auto rids = tree.Lookup({relational::Value::Int(7)});
  EXPECT_EQ(rids.size(), 99u);
  for (storage::RecordId rid : rids) EXPECT_NE(rid, 507u);
  EXPECT_EQ(tree.entry_count(), 999u);
}

TEST(BTreeEraseTest, EraseAcrossLeavesAndReinsert) {
  VirtualClock clock;
  relational::BTreeIndex tree(clock);
  // One heavily duplicated key spanning several leaves.
  for (int i = 0; i < 600; ++i) {
    tree.Insert({relational::Value::String("dup")},
                static_cast<storage::RecordId>(i));
  }
  EXPECT_TRUE(tree.Erase({relational::Value::String("dup")}, 599));
  EXPECT_TRUE(tree.Erase({relational::Value::String("dup")}, 0));
  EXPECT_EQ(tree.Lookup({relational::Value::String("dup")}).size(), 598u);
  tree.Insert({relational::Value::String("dup")}, 9999);
  EXPECT_EQ(tree.Lookup({relational::Value::String("dup")}).size(), 599u);
}

}  // namespace
}  // namespace xbench::engines
