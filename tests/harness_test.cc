#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/driver.h"
#include "harness/report.h"
#include "common/strings.h"
#include "harness/scale.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace xbench::harness {
namespace {

TEST(ReportTest, FormatMillis) {
  EXPECT_EQ(FormatMillis(0.44), "0.4");
  EXPECT_EQ(FormatMillis(9.96), "10.0");
  EXPECT_EQ(FormatMillis(123.4), "123");
  EXPECT_EQ(FormatMillis(10000.0), "10000");
}

TEST(ReportTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(1500), "1.50");
  EXPECT_EQ(FormatSeconds(0), "0.00");
}

TEST(ReportTest, TableRendersGroupsAndRows) {
  ResultTable table("Test Table");
  std::vector<std::string> cells(12, "1.0");
  cells[3] = "-";
  table.AddRow("EngineA", cells);
  table.AddRow("EngineB", std::vector<std::string>(12, "7"));
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Test Table"), std::string::npos);
  for (const char* group : {"DC/SD", "DC/MD", "TC/SD", "TC/MD"}) {
    EXPECT_NE(out.find(group), std::string::npos) << group;
  }
  for (const char* scale : {"Small", "Normal", "Large"}) {
    EXPECT_NE(out.find(scale), std::string::npos) << scale;
  }
  EXPECT_NE(out.find("EngineA"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);
  // Every row line has the same width (alignment).
  size_t width = 0;
  for (const std::string& line : Split(out, '\n')) {
    if (line.find("Engine") != 0) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(ScaleTest, DefaultsAndEnvOverride) {
  unsetenv("XBENCH_SMALL_KB");
  EXPECT_EQ(TargetBytes(workload::Scale::kSmall), 512u * 1024);
  EXPECT_GT(TargetBytes(workload::Scale::kNormal),
            TargetBytes(workload::Scale::kSmall));
  EXPECT_GT(TargetBytes(workload::Scale::kLarge),
            TargetBytes(workload::Scale::kNormal));

  setenv("XBENCH_SMALL_KB", "64", 1);
  EXPECT_EQ(TargetBytes(workload::Scale::kSmall), 64u * 1024);
  setenv("XBENCH_SMALL_KB", "garbage", 1);
  EXPECT_EQ(TargetBytes(workload::Scale::kSmall), 512u * 1024);
  unsetenv("XBENCH_SMALL_KB");
}

TEST(ScaleTest, Seed) {
  unsetenv("XBENCH_SEED");
  EXPECT_EQ(BenchSeed(), 42u);
  setenv("XBENCH_SEED", "7", 1);
  EXPECT_EQ(BenchSeed(), 7u);
  unsetenv("XBENCH_SEED");
}

TEST(DriverTest, TinyScaleEndToEnd) {
  // Shrink every scale so the full driver path runs in test time.
  setenv("XBENCH_SMALL_KB", "24", 1);
  setenv("XBENCH_NORMAL_KB", "32", 1);
  setenv("XBENCH_LARGE_KB", "48", 1);

  Driver driver;
  const datagen::GeneratedDatabase& db =
      driver.Database(datagen::DbClass::kTcMd, workload::Scale::kSmall);
  EXPECT_GT(db.documents.size(), 0u);
  // Caching: same object back.
  EXPECT_EQ(&db, &driver.Database(datagen::DbClass::kTcMd,
                                  workload::Scale::kSmall));

  auto& loaded = driver.Loaded(engines::EngineKind::kNative,
                               datagen::DbClass::kTcMd,
                               workload::Scale::kSmall);
  EXPECT_TRUE(loaded.load_status.ok()) << loaded.load_status.ToString();
  EXPECT_GT(loaded.LoadMillis(), 0.0);

  // A full query table renders 4 rows x 12 cells.
  ResultTable table = driver.QueryTable(workload::QueryId::kQ8);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Q8"), std::string::npos);
  EXPECT_NE(out.find("X-Hive"), std::string::npos);

  EXPECT_NE(driver.IndexTable().find("order/@id"), std::string::npos);

  unsetenv("XBENCH_SMALL_KB");
  unsetenv("XBENCH_NORMAL_KB");
  unsetenv("XBENCH_LARGE_KB");
}

class TinyScaleEnv : public testing::Test {
 protected:
  void SetUp() override {
    setenv("XBENCH_SMALL_KB", "24", 1);
    setenv("XBENCH_NORMAL_KB", "32", 1);
    setenv("XBENCH_LARGE_KB", "48", 1);
  }
  void TearDown() override {
    unsetenv("XBENCH_SMALL_KB");
    unsetenv("XBENCH_NORMAL_KB");
    unsetenv("XBENCH_LARGE_KB");
  }
};

using DriverReportTest = TinyScaleEnv;

TEST_F(DriverReportTest, JsonReportCoversMatrixWithIoCounters) {
  Driver driver;
  Driver::ReportOptions options;
  options.queries = {workload::QueryId::kQ5, workload::QueryId::kQ8};
  const std::string json = driver.JsonReport(options);

  ASSERT_TRUE(obs::ValidateJson(json).ok()) << json.substr(0, 400);
  // All four engines and all four classes appear.
  for (const char* engine :
       {"X-Hive (native)", "Xcolumn", "Xcollection", "SQL Server"}) {
    EXPECT_NE(json.find(engine), std::string::npos) << engine;
  }
  for (const char* db_class : {"TC/SD", "TC/MD", "DC/SD", "DC/MD"}) {
    EXPECT_NE(json.find(db_class), std::string::npos) << db_class;
  }
  // Per-cell pool/disk counters and answer hashes are present.
  for (const char* key :
       {"\"hits\"", "\"misses\"", "\"evictions\"", "\"writebacks\"",
        "\"page_reads\"", "\"page_writes\"", "\"answer_hash\"",
        "\"answer_lines\"", "\"metrics\"", "\"cells\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"Q5\""), std::string::npos);
  EXPECT_NE(json.find("\"Q8\""), std::string::npos);
}

TEST_F(DriverReportTest, WriteJsonReportRoundTrips) {
  Driver driver;
  Driver::ReportOptions options;
  options.queries = {workload::QueryId::kQ14};
  const std::string path = testing::TempDir() + "/xbench_report.json";
  ASSERT_TRUE(driver.WriteJsonReport(path, options).ok());
  auto contents = obs::ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(obs::ValidateJson(*contents).ok());
  EXPECT_NE(contents->find("\"Q14\""), std::string::npos);
  std::remove(path.c_str());
}

using TraceDeterminismTest = TinyScaleEnv;

TEST_F(TraceDeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  auto traced_run = [] {
    obs::Tracer& tracer = obs::Tracer::Default();
    tracer.Clear();
    tracer.Enable();
    Driver driver;
    auto& loaded = driver.Loaded(engines::EngineKind::kNative,
                                 datagen::DbClass::kTcSd,
                                 workload::Scale::kSmall);
    EXPECT_TRUE(loaded.load_status.ok());
    const datagen::GeneratedDatabase& db =
        driver.Database(datagen::DbClass::kTcSd, workload::Scale::kSmall);
    workload::RunQuery(*loaded.engine, workload::QueryId::kQ5,
                       datagen::DbClass::kTcSd,
                       workload::DeriveParams(datagen::DbClass::kTcSd,
                                              db.seeds));
    std::string json = tracer.ToChromeJson();
    tracer.Disable();
    tracer.Clear();
    return json;
  };
  const std::string first = traced_run();
  const std::string second = traced_run();
  EXPECT_TRUE(obs::ValidateJson(first).ok());
  EXPECT_FALSE(first.empty());
  // Byte-identical timelines: timestamps come from the virtual clock, not
  // the wall clock.
  EXPECT_EQ(first, second);
  // The bulk-load phases and the query span made it into the trace.
  EXPECT_NE(first.find("native.bulkload"), std::string::npos);
  EXPECT_NE(first.find("parse"), std::string::npos);
  EXPECT_NE(first.find("commit"), std::string::npos);
  EXPECT_NE(first.find("query.Q5"), std::string::npos);
}

TEST_F(DriverReportTest, ColdRestartKeepsPoolCountersMonotonic) {
  Driver driver;
  auto& loaded = driver.Loaded(engines::EngineKind::kNative,
                               datagen::DbClass::kTcMd,
                               workload::Scale::kSmall);
  ASSERT_TRUE(loaded.load_status.ok());
  const datagen::GeneratedDatabase& db =
      driver.Database(datagen::DbClass::kTcMd, workload::Scale::kSmall);
  // A cold query restarts the engine first, so its pool traffic is all
  // misses/refills; it must leave nonzero counters behind.
  workload::RunQuery(*loaded.engine, workload::QueryId::kQ5,
                     datagen::DbClass::kTcMd,
                     workload::DeriveParams(datagen::DbClass::kTcMd, db.seeds));
  const uint64_t hits = loaded.engine->pool().hits();
  const uint64_t misses = loaded.engine->pool().misses();
  EXPECT_GT(hits + misses, 0u);
  // Counters are engine-lifetime totals shared by every session; a restart
  // drops the cached pages but must NOT zero the counters, or it would
  // destroy another session's in-flight before/after delta. Per-operation
  // attribution uses workload::ThreadIoSnapshot() deltas instead.
  loaded.engine->ColdRestart();
  EXPECT_EQ(loaded.engine->pool().hits(), hits);
  EXPECT_EQ(loaded.engine->pool().misses(), misses);
  // The thread-attributed counters keep working across the restart: a
  // fresh delta around a warm query still observes that query's refills.
  const workload::IoStats before = workload::ThreadIoSnapshot();
  workload::RunOptions warm;
  warm.cold = false;
  workload::RunQuery(*loaded.engine, workload::QueryId::kQ5,
                     datagen::DbClass::kTcMd,
                     workload::DeriveParams(datagen::DbClass::kTcMd, db.seeds),
                     warm);
  const workload::IoStats delta =
      workload::IoStatsDelta(before, workload::ThreadIoSnapshot());
  EXPECT_GT(delta.pool_hits + delta.pool_misses, 0u);
}

}  // namespace
}  // namespace xbench::harness
