#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/driver.h"
#include "harness/report.h"
#include "common/strings.h"
#include "harness/scale.h"

namespace xbench::harness {
namespace {

TEST(ReportTest, FormatMillis) {
  EXPECT_EQ(FormatMillis(0.44), "0.4");
  EXPECT_EQ(FormatMillis(9.96), "10.0");
  EXPECT_EQ(FormatMillis(123.4), "123");
  EXPECT_EQ(FormatMillis(10000.0), "10000");
}

TEST(ReportTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(1500), "1.50");
  EXPECT_EQ(FormatSeconds(0), "0.00");
}

TEST(ReportTest, TableRendersGroupsAndRows) {
  ResultTable table("Test Table");
  std::vector<std::string> cells(12, "1.0");
  cells[3] = "-";
  table.AddRow("EngineA", cells);
  table.AddRow("EngineB", std::vector<std::string>(12, "7"));
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Test Table"), std::string::npos);
  for (const char* group : {"DC/SD", "DC/MD", "TC/SD", "TC/MD"}) {
    EXPECT_NE(out.find(group), std::string::npos) << group;
  }
  for (const char* scale : {"Small", "Normal", "Large"}) {
    EXPECT_NE(out.find(scale), std::string::npos) << scale;
  }
  EXPECT_NE(out.find("EngineA"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);
  // Every row line has the same width (alignment).
  size_t width = 0;
  for (const std::string& line : Split(out, '\n')) {
    if (line.find("Engine") != 0) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(ScaleTest, DefaultsAndEnvOverride) {
  unsetenv("XBENCH_SMALL_KB");
  EXPECT_EQ(TargetBytes(workload::Scale::kSmall), 512u * 1024);
  EXPECT_GT(TargetBytes(workload::Scale::kNormal),
            TargetBytes(workload::Scale::kSmall));
  EXPECT_GT(TargetBytes(workload::Scale::kLarge),
            TargetBytes(workload::Scale::kNormal));

  setenv("XBENCH_SMALL_KB", "64", 1);
  EXPECT_EQ(TargetBytes(workload::Scale::kSmall), 64u * 1024);
  setenv("XBENCH_SMALL_KB", "garbage", 1);
  EXPECT_EQ(TargetBytes(workload::Scale::kSmall), 512u * 1024);
  unsetenv("XBENCH_SMALL_KB");
}

TEST(ScaleTest, Seed) {
  unsetenv("XBENCH_SEED");
  EXPECT_EQ(BenchSeed(), 42u);
  setenv("XBENCH_SEED", "7", 1);
  EXPECT_EQ(BenchSeed(), 7u);
  unsetenv("XBENCH_SEED");
}

TEST(DriverTest, TinyScaleEndToEnd) {
  // Shrink every scale so the full driver path runs in test time.
  setenv("XBENCH_SMALL_KB", "24", 1);
  setenv("XBENCH_NORMAL_KB", "32", 1);
  setenv("XBENCH_LARGE_KB", "48", 1);

  Driver driver;
  const datagen::GeneratedDatabase& db =
      driver.Database(datagen::DbClass::kTcMd, workload::Scale::kSmall);
  EXPECT_GT(db.documents.size(), 0u);
  // Caching: same object back.
  EXPECT_EQ(&db, &driver.Database(datagen::DbClass::kTcMd,
                                  workload::Scale::kSmall));

  auto& loaded = driver.Loaded(engines::EngineKind::kNative,
                               datagen::DbClass::kTcMd,
                               workload::Scale::kSmall);
  EXPECT_TRUE(loaded.load_status.ok()) << loaded.load_status.ToString();
  EXPECT_GT(loaded.LoadMillis(), 0.0);

  // A full query table renders 4 rows x 12 cells.
  ResultTable table = driver.QueryTable(workload::QueryId::kQ8);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Q8"), std::string::npos);
  EXPECT_NE(out.find("X-Hive"), std::string::npos);

  EXPECT_NE(driver.IndexTable().find("order/@id"), std::string::npos);

  unsetenv("XBENCH_SMALL_KB");
  unsetenv("XBENCH_NORMAL_KB");
  unsetenv("XBENCH_LARGE_KB");
}

}  // namespace
}  // namespace xbench::harness
