// Tests for the runtime lock-rank enforcer (common/lock_rank.h) and the
// annotated wrappers (common/sync.h). The death tests exercise the
// violation paths with enforcement enabled programmatically, so they run
// in every build configuration, not only -DXBENCH_LOCK_RANKS=ON trees.

#include <gtest/gtest.h>

#include <thread>

#include "common/lock_rank.h"
#include "common/sync.h"
#include "common/worker_pool.h"

namespace xbench {
namespace {

/// RAII enforcement toggle so one test's SetEnabled cannot leak into the
/// next (the flag is process-global).
class ScopedEnforcement {
 public:
  ScopedEnforcement() : previous_(lockrank::Enabled()) {
    lockrank::SetEnabled(true);
  }
  ~ScopedEnforcement() { lockrank::SetEnabled(previous_); }

 private:
  bool previous_;
};

TEST(LockRankTest, RankNamesMatchDesignTable) {
  EXPECT_STREQ(LockRankName(LockRank::kEngineRegistry), "engine.registry");
  EXPECT_STREQ(LockRankName(LockRank::kCollection), "collection");
  EXPECT_STREQ(LockRankName(LockRank::kDocumentCache), "doc.cache");
  EXPECT_STREQ(LockRankName(LockRank::kAstCache), "ast.cache");
  EXPECT_STREQ(LockRankName(LockRank::kPlanCache), "plan.cache");
  EXPECT_STREQ(LockRankName(LockRank::kWorkerPool), "worker.pool");
  EXPECT_STREQ(LockRankName(LockRank::kMorselTask), "exec.morsel");
  EXPECT_STREQ(LockRankName(LockRank::kPoolShard), "pool.shard");
  EXPECT_STREQ(LockRankName(LockRank::kDisk), "disk");
  EXPECT_STREQ(LockRankName(LockRank::kMetrics), "metrics");
  EXPECT_STREQ(LockRankName(LockRank::kTracer), "tracer");
}

TEST(LockRankTest, InOrderAcquisitionIsTracked) {
  ScopedEnforcement enforce;
  Mutex outer(LockRank::kCollection, "collection");
  Mutex inner(LockRank::kDisk, "disk");
  EXPECT_EQ(lockrank::HeldCount(), 0u);
  {
    MutexLock hold_outer(outer);
    EXPECT_EQ(lockrank::HeldCount(), 1u);
    MutexLock hold_inner(inner);
    EXPECT_EQ(lockrank::HeldCount(), 2u);
    EXPECT_EQ(lockrank::DescribeHeld(), "collection(20) -> disk(60)");
  }
  EXPECT_EQ(lockrank::HeldCount(), 0u);
}

TEST(LockRankTest, SharedAcquisitionsAreTrackedLikeExclusive) {
  ScopedEnforcement enforce;
  SharedMutex collection(LockRank::kCollection, "collection");
  Mutex cache(LockRank::kDocumentCache, "doc.cache");
  ReaderLock read(collection);
  MutexLock hold(cache);
  EXPECT_EQ(lockrank::DescribeHeld(), "collection(20) -> doc.cache(30)");
}

TEST(LockRankTest, DisabledEnforcementTracksNothing) {
  lockrank::SetEnabled(false);
  Mutex inner(LockRank::kDisk, "disk");
  Mutex outer(LockRank::kCollection, "collection");
  // Inverted order: harmless while disabled (no state is kept).
  MutexLock hold_inner(inner);
  MutexLock hold_outer(outer);
  EXPECT_EQ(lockrank::HeldCount(), 0u);
}

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, InvertedAcquisitionAbortsNamingBothLocks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        lockrank::SetEnabled(true);
        Mutex disk(LockRank::kDisk, "disk");
        Mutex collection(LockRank::kCollection, "collection");
        MutexLock hold_disk(disk);
        // Collection (rank 20) after disk (rank 60): out of order.
        MutexLock hold_collection(collection);
      },
      "out of rank order(.|\n)*acquiring: collection\\(20\\)(.|\n)*holds: "
      "disk\\(60\\)");
}

TEST(LockRankDeathTest, EqualRankAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two distinct locks of the same rank: the order between them is
  // undefined, so holding both is a violation in either order.
  ASSERT_DEATH(
      {
        lockrank::SetEnabled(true);
        Mutex a(LockRank::kPoolShard, "pool.shard");
        Mutex b(LockRank::kPoolShard, "pool.shard");
        MutexLock hold_a(a);
        MutexLock hold_b(b);
      },
      "out of rank order");
}

TEST(LockRankDeathTest, EngineLockInsideMorselTaskAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The pool marks every morsel with the exec.morsel pseudo-lock
  // (rank 46), so a work function reaching for an engine-level lock —
  // collection is rank 20 — dies under the rank enforcer instead of
  // deadlocking against the query caller's own collection lock.
  ASSERT_DEATH(
      {
        lockrank::SetEnabled(true);
        SharedMutex collection(LockRank::kCollection, "collection");
        WorkerPool pool(1);
        pool.ParallelFor(1, 2, [&collection](size_t) {
          ReaderLock read(collection);
          return Status::Ok();
        });
      },
      "out of rank order(.|\n)*acquiring: collection");
}

TEST(LockRankDeathTest, DoubleAcquireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        lockrank::SetEnabled(true);
        Mutex mu(LockRank::kCollection, "collection");
        mu.lock();
        mu.lock();  // self-deadlock: caught before blocking
      },
      "already held by this thread(.|\n)*acquiring: collection\\(20\\)");
}

TEST(LockRankDeathTest, WriterAfterReaderOnSameLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        lockrank::SetEnabled(true);
        SharedMutex mu(LockRank::kCollection, "collection");
        mu.lock_shared();
        mu.lock();  // upgrade attempt: self-deadlock
      },
      "already held by this thread");
}

TEST(LockRankTest, ViolationsAreThreadLocal) {
  ScopedEnforcement enforce;
  Mutex disk(LockRank::kDisk, "disk");
  Mutex collection(LockRank::kCollection, "collection");
  MutexLock hold_disk(disk);
  // Another thread holds nothing, so its collection-then-disk order is
  // fine even while this thread holds disk.
  std::thread other([&] {
    MutexLock hold_collection(collection);
    EXPECT_EQ(lockrank::DescribeHeld(), "collection(20)");
  });
  other.join();
}

}  // namespace
}  // namespace xbench
