#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xquery/evaluator.h"

namespace xbench::xquery {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = xml::Parse(R"(
<catalog>
  <item id="I1"><title>Alpha</title><size>100</size>
    <authors><author><name>Ann</name><country>CA</country></author></authors>
  </item>
  <item id="I2"><title>Beta</title><size>300</size>
    <authors>
      <author><name>Bob</name><country>US</country></author>
      <author><name>Cyd</name><country>US</country></author>
    </authors>
  </item>
  <item id="I3"><title>Gamma</title><size>200</size>
    <authors><author><name>Dee</name><country>US</country></author></authors>
    <note/>
  </item>
</catalog>)",
                             "catalog.xml");
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    doc_ = std::make_unique<xml::Document>(std::move(parsed).value());
    bindings_["input"] = Sequence{Item::Node(doc_->root())};
  }

  std::string Run(std::string_view query) {
    auto result = EvaluateQuery(query, bindings_);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    std::string text = result->ToText();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }

  std::unique_ptr<xml::Document> doc_;
  Bindings bindings_;
};

TEST_F(EvalTest, ChildPath) {
  EXPECT_EQ(Run("$input/item/title"),
            "<title>Alpha</title>\n<title>Beta</title>\n<title>Gamma</title>");
}

TEST_F(EvalTest, DescendantPath) {
  EXPECT_EQ(Run("for $n in $input//name return data($n)"), "Ann\nBob\nCyd\nDee");
}

TEST_F(EvalTest, AttributeStep) {
  EXPECT_EQ(Run("$input/item/@id"), "I1\nI2\nI3");
}

TEST_F(EvalTest, PredicateByAttribute) {
  EXPECT_EQ(Run(R"($input/item[@id = "I2"]/title)"), "<title>Beta</title>");
}

TEST_F(EvalTest, PredicateByChildValue) {
  EXPECT_EQ(Run(R"($input/item[title = "Gamma"]/@id)"), "I3");
}

TEST_F(EvalTest, PositionalPredicate) {
  EXPECT_EQ(Run("$input/item[2]/title"), "<title>Beta</title>");
  EXPECT_EQ(Run("$input/item[last()]/title"), "<title>Gamma</title>");
  EXPECT_EQ(Run("$input/item[position() >= 2]/@id"), "I2\nI3");
}

TEST_F(EvalTest, FilterExpressionIsWholeSequencePositional) {
  EXPECT_EQ(Run("($input//author)[1]/name"), "<name>Ann</name>");
  EXPECT_EQ(Run("($input//author)[3]/name"), "<name>Cyd</name>");
}

TEST_F(EvalTest, WildcardAndParent) {
  EXPECT_EQ(Run(R"(count($input/item[@id="I1"]/*))"), "3");
  EXPECT_EQ(Run(R"($input//author[name = "Cyd"]/../../title)"),
            "<title>Beta</title>");
}

TEST_F(EvalTest, DocumentOrderAndDedup) {
  // Sequence concatenation does NOT dedup (XQuery semantics)...
  EXPECT_EQ(Run("count(($input//author, $input//author))"), "8");
  // ...but path steps do: item I2's two authors share one parent.
  EXPECT_EQ(Run("count($input//author/..)"), "3");
  // And step results come back in document order even when predicates
  // reorder evaluation.
  EXPECT_EQ(Run("for $n in $input//author/name return data($n)"),
            "Ann\nBob\nCyd\nDee");
}

TEST_F(EvalTest, FlworWhereReturn) {
  EXPECT_EQ(Run(R"(for $i in $input/item where number($i/size) > 150 return data($i/title))"),
            "Beta\nGamma");
}

TEST_F(EvalTest, FlworLetAndOrderBy) {
  EXPECT_EQ(Run(R"(for $i in $input/item let $t := $i/title
order by number($i/size) descending return data($t))"),
            "Beta\nGamma\nAlpha");
}

TEST_F(EvalTest, FlworStringOrderBy) {
  EXPECT_EQ(Run(R"(for $i in $input/item order by $i/title descending return data($i/@id))"),
            "I3\nI2\nI1");
}

TEST_F(EvalTest, FlworPositionVariable) {
  EXPECT_EQ(Run("for $i at $n in $input/item return $n"), "1\n2\n3");
}

TEST_F(EvalTest, NestedForCartesian) {
  EXPECT_EQ(Run(R"(count(for $i in $input/item, $a in $i//author return $a))"),
            "4");
}

TEST_F(EvalTest, QuantifiedSome) {
  EXPECT_EQ(
      Run(R"(for $i in $input/item where some $a in $i//author satisfies $a/name = "Bob" return data($i/@id))"),
      "I2");
}

TEST_F(EvalTest, QuantifiedEvery) {
  EXPECT_EQ(
      Run(R"(for $i in $input/item where every $c in $i//country satisfies $c = "US" return data($i/@id))"),
      "I2\nI3");
}

TEST_F(EvalTest, IfThenElse) {
  EXPECT_EQ(Run(R"(if (count($input/item) > 2) then "many" else "few")"),
            "many");
}

TEST_F(EvalTest, EmptyFunctionOnMissingElement) {
  EXPECT_EQ(Run(R"(for $i in $input/item where empty($i/note) return data($i/@id))"),
            "I1\nI2");
}

TEST_F(EvalTest, GeneralComparisonIsAnyMatch) {
  EXPECT_EQ(Run(R"($input//country = "CA")"), "true");
  EXPECT_EQ(Run(R"($input//country = "FR")"), "false");
}

TEST_F(EvalTest, NumericComparisonCoercion) {
  EXPECT_EQ(Run(R"($input/item[1]/size = 100)"), "true");
  // "100" vs 100.0 compares numerically.
  EXPECT_EQ(Run(R"($input/item[1]/size = "100")"), "true");
}

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(Run("1 + 2 * 3"), "7");
  EXPECT_EQ(Run("(1 + 2) * 3"), "9");
  EXPECT_EQ(Run("10 div 4"), "2.5");
  EXPECT_EQ(Run("10 mod 4"), "2");
  EXPECT_EQ(Run("-5 + 2"), "-3");
  EXPECT_EQ(Run("sum($input//size) div count($input//size)"), "200");
}

TEST_F(EvalTest, ConstructorBasic) {
  EXPECT_EQ(Run(R"(<r total="{count($input/item)}">ok</r>)"),
            R"(<r total="3">ok</r>)");
}

TEST_F(EvalTest, ConstructorCopiesNodes) {
  EXPECT_EQ(Run(R"(<wrap>{$input/item[1]/title}</wrap>)"),
            "<wrap><title>Alpha</title></wrap>");
}

TEST_F(EvalTest, ConstructorAtomicsSpaceJoined) {
  EXPECT_EQ(Run(R"(<v>{data($input/item/@id)}</v>)"), "<v>I1 I2 I3</v>");
}

TEST_F(EvalTest, ConstructorNested) {
  EXPECT_EQ(Run(R"(<a><b>{1+1}</b><c/></a>)"), "<a><b>2</b><c/></a>");
}

TEST_F(EvalTest, PathOverConstructedNodes) {
  EXPECT_EQ(Run(R"(for $r in <x><y>1</y><y>2</y></x> return count($r/y))"),
            "2");
}

TEST_F(EvalTest, SiblingAxes) {
  EXPECT_EQ(Run(R"($input/item[@id="I1"]/following-sibling::item[1]/@id)"),
            "I2");
  EXPECT_EQ(Run(R"($input/item[@id="I3"]/preceding-sibling::item[1]/@id)"),
            "I2");
  EXPECT_EQ(Run(R"($input/item[@id="I1"]/preceding-sibling::item[1]/@id)"),
            "");
}

TEST_F(EvalTest, UnboundVariableErrors) {
  EXPECT_NE(Run("$nope").find("ERROR"), std::string::npos);
}

TEST_F(EvalTest, StepOnAtomicErrors) {
  EXPECT_NE(Run(R"("str"/a)").find("ERROR"), std::string::npos);
}

TEST_F(EvalTest, MultiDocumentBinding) {
  auto d2 = xml::Parse("<catalog><item id=\"X9\"/></catalog>", "c2.xml");
  ASSERT_TRUE(d2.ok());
  xml::Document doc2 = std::move(d2).value();
  Bindings bindings;
  bindings["input"] =
      Sequence{Item::Node(doc_->root()), Item::Node(doc2.root())};
  auto result = EvaluateQuery("count($input/item)", bindings);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToText(), "4\n");
}

TEST_F(EvalTest, TextNodeTest) {
  EXPECT_EQ(Run(R"(count($input/item[1]/title/text()))"), "1");
}

TEST_F(EvalTest, NestedFlwor) {
  EXPECT_EQ(
      Run(R"(for $i in $input/item
return count(for $a in $i//author where $a/country = "US" return $a))"),
      "0\n2\n1");
}

TEST_F(EvalTest, LetBindsFullSequence) {
  EXPECT_EQ(Run(R"(let $all := $input//author return count($all))"), "4");
  EXPECT_EQ(
      Run(R"(for $i in $input/item let $n := count($i//author) where $n > 1 return data($i/@id))"),
      "I2");
}

TEST_F(EvalTest, MultiKeyOrderBy) {
  EXPECT_EQ(
      Run(R"(for $a in $input//author
order by $a/country, $a/name descending
return data($a/name))"),
      "Ann\nDee\nCyd\nBob");
}

TEST_F(EvalTest, OrderByEmptyKeysSortFirst) {
  // item I3's note has no text; items without the key sort first.
  EXPECT_EQ(Run(R"(for $i in $input/item
order by $i/note, $i/title
return data($i/@id))"),
            "I1\nI2\nI3");
}

TEST_F(EvalTest, PredicateWithPositionFunction) {
  EXPECT_EQ(Run(R"(data($input/item[position() = last()]/@id))"), "I3");
  EXPECT_EQ(Run(R"(count($input/item[position() < 3]))"), "2");
}

TEST_F(EvalTest, DescendantWithPredicate) {
  EXPECT_EQ(Run(R"(count($input//author[country = "US"]))"), "3");
  EXPECT_EQ(Run(R"(data(($input//author[country = "US"])[2]/name))"), "Cyd");
}

TEST_F(EvalTest, ComparisonOperatorsFull) {
  EXPECT_EQ(Run("1 != 2"), "true");
  EXPECT_EQ(Run("2 <= 2"), "true");
  EXPECT_EQ(Run("3 >= 4"), "false");
  EXPECT_EQ(Run(R"("abc" < "abd")"), "true");
  // Empty sequence comparisons are false.
  EXPECT_EQ(Run("$input/item/nothing = 1"), "false");
}

TEST_F(EvalTest, ConstructorAttributeFromExpression) {
  EXPECT_EQ(Run(R"(<r n="{count($input/item)}" s="a{1+1}b"/>)"),
            R"(<r n="3" s="a2b"/>)");
}

TEST_F(EvalTest, ConstructedNodesAreCopies) {
  // Mutating nothing: constructing from a node clones it, so the source
  // is still reachable unchanged afterwards.
  EXPECT_EQ(Run(R"(count((<w>{$input/item[1]/title}</w>, $input/item[1]/title)))"),
            "2");
}

TEST_F(EvalTest, IfWithoutParensFails) {
  EXPECT_NE(Run("if $x then 1 else 2").find("ERROR"), std::string::npos);
}

TEST_F(EvalTest, WhitespaceAndCommentsTolerated) {
  EXPECT_EQ(Run("  (: c :) 1 (: d :) + 2  "), "3");
}

TEST_F(EvalTest, StringFunctionsOverNodes) {
  EXPECT_EQ(Run(R"(string-join($input/item/title, "|"))"),
            "Alpha|Beta|Gamma");
  EXPECT_EQ(Run(R"(upper-case($input/item[1]/title))"), "ALPHA");
  EXPECT_EQ(Run(R"(substring($input/item[2]/title, 1, 3))"), "Bet");
}

TEST_F(EvalTest, RangeExpression) {
  EXPECT_EQ(Run("count(1 to 5)"), "5");
  EXPECT_EQ(Run("sum(1 to 4)"), "10");
  EXPECT_EQ(Run("count(3 to 2)"), "0");  // empty when lo > hi
  EXPECT_EQ(Run("for $i in 1 to 3 return $i"), "1\n2\n3");
}

TEST_F(EvalTest, UnionOperator) {
  // Union dedups and restores document order.
  EXPECT_EQ(Run("count($input//name | $input//country)"), "8");
  EXPECT_EQ(Run("count($input//author | $input//author)"), "4");
  EXPECT_EQ(
      Run(R"(for $n in ($input/item[1]/size | $input/item[1]/title) return name($n))"),
      "title\nsize");  // document order, not operand order
  EXPECT_NE(Run(R"(("a" | "b"))").find("ERROR"), std::string::npos);
}

}  // namespace
}  // namespace xbench::xquery
