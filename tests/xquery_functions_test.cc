#include <gtest/gtest.h>

#include <cmath>

#include "xquery/functions.h"

namespace xbench::xquery {
namespace {

Sequence Strings(std::initializer_list<const char*> values) {
  Sequence seq;
  for (const char* v : values) seq.push_back(Item::String(v));
  return seq;
}

Sequence Numbers(std::initializer_list<double> values) {
  Sequence seq;
  for (double v : values) seq.push_back(Item::Number(v));
  return seq;
}

std::string One(Result<Sequence> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok() || result->empty()) return "";
  return AtomizeToString(result->front());
}

TEST(FunctionsTest, Count) {
  EXPECT_EQ(One(CallFunction("count", {Strings({"a", "b"})})), "2");
  EXPECT_EQ(One(CallFunction("count", {Sequence{}})), "0");
}

TEST(FunctionsTest, Aggregates) {
  EXPECT_EQ(One(CallFunction("sum", {Numbers({1, 2, 3})})), "6");
  EXPECT_EQ(One(CallFunction("avg", {Numbers({1, 2, 3, 4})})), "2.5");
  EXPECT_EQ(One(CallFunction("min", {Numbers({5, 1, 9})})), "1");
  EXPECT_EQ(One(CallFunction("max", {Numbers({5, 1, 9})})), "9");
}

TEST(FunctionsTest, AggregatesOnNumericStrings) {
  EXPECT_EQ(One(CallFunction("sum", {Strings({"10", "20"})})), "30");
}

TEST(FunctionsTest, SumRejectsNonNumeric) {
  EXPECT_FALSE(CallFunction("sum", {Strings({"abc"})}).ok());
}

TEST(FunctionsTest, MinMaxStrings) {
  EXPECT_EQ(One(CallFunction("min", {Strings({"pear", "apple"})})), "apple");
  EXPECT_EQ(One(CallFunction("max", {Strings({"pear", "apple"})})), "pear");
}

TEST(FunctionsTest, EmptyAggregatesReturnEmpty) {
  auto result = CallFunction("sum", {Sequence{}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(FunctionsTest, StringPredicates) {
  EXPECT_EQ(One(CallFunction("contains", {Strings({"hello world"}),
                                          Strings({"lo wo"})})),
            "true");
  EXPECT_EQ(One(CallFunction("contains-word", {Strings({"a word here"}),
                                               Strings({"word"})})),
            "true");
  EXPECT_EQ(One(CallFunction("contains-word", {Strings({"sword"}),
                                               Strings({"word"})})),
            "false");
  EXPECT_EQ(One(CallFunction("starts-with", {Strings({"abc"}), Strings({"ab"})})),
            "true");
  EXPECT_EQ(One(CallFunction("ends-with", {Strings({"abc"}), Strings({"bc"})})),
            "true");
}

TEST(FunctionsTest, StringManipulation) {
  EXPECT_EQ(One(CallFunction("string-length", {Strings({"abcd"})})), "4");
  EXPECT_EQ(One(CallFunction("substring",
                             {Strings({"hello"}), Numbers({2}), Numbers({3})})),
            "ell");
  EXPECT_EQ(One(CallFunction("substring", {Strings({"hello"}), Numbers({4})})),
            "lo");
  EXPECT_EQ(One(CallFunction("concat", {Strings({"a"}), Strings({"b"})})),
            "ab");
  EXPECT_EQ(One(CallFunction("string-join",
                             {Strings({"a", "b", "c"}), Strings({", "})})),
            "a, b, c");
  EXPECT_EQ(One(CallFunction("upper-case", {Strings({"aBc"})})), "ABC");
  EXPECT_EQ(One(CallFunction("lower-case", {Strings({"AbC"})})), "abc");
  EXPECT_EQ(One(CallFunction("normalize-space", {Strings({"  a\t b  "})})),
            "a b");
}

TEST(FunctionsTest, CastsAndNumbers) {
  EXPECT_EQ(One(CallFunction("number", {Strings({"12.5"})})), "12.5");
  EXPECT_EQ(One(CallFunction("xs:integer", {Strings({"12.9"})})), "12");
  EXPECT_FALSE(CallFunction("xs:double", {Strings({"nope"})}).ok());
  auto nan = CallFunction("number", {Strings({"nope"})});
  ASSERT_TRUE(nan.ok());
  EXPECT_TRUE(std::isnan(nan->front().num));
  EXPECT_EQ(One(CallFunction("xs:date", {Strings({"2001-05-17"})})),
            "2001-05-17");
  EXPECT_FALSE(CallFunction("xs:date", {Strings({"17/05/2001"})}).ok());
}

TEST(FunctionsTest, BooleansAndSequences) {
  EXPECT_EQ(One(CallFunction("not", {Sequence{}})), "true");
  EXPECT_EQ(One(CallFunction("boolean", {Strings({"x"})})), "true");
  EXPECT_EQ(One(CallFunction("empty", {Sequence{}})), "true");
  EXPECT_EQ(One(CallFunction("exists", {Strings({"x"})})), "true");
  EXPECT_EQ(One(CallFunction("true", {})), "true");
  EXPECT_EQ(One(CallFunction("false", {})), "false");
}

TEST(FunctionsTest, DistinctValues) {
  auto result = CallFunction("distinct-values", {Strings({"b", "a", "b"})});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(AtomizeToString((*result)[0]), "b");  // first-seen order
  EXPECT_EQ(AtomizeToString((*result)[1]), "a");
}

TEST(FunctionsTest, Rounding) {
  EXPECT_EQ(One(CallFunction("round", {Numbers({2.5})})), "3");
  EXPECT_EQ(One(CallFunction("floor", {Numbers({2.9})})), "2");
  EXPECT_EQ(One(CallFunction("ceiling", {Numbers({2.1})})), "3");
}

TEST(FunctionsTest, UnknownFunctionErrors) {
  auto result = CallFunction("no-such-fn", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FunctionsTest, ArityErrors) {
  EXPECT_FALSE(CallFunction("count", {}).ok());
  EXPECT_FALSE(CallFunction("contains", {Strings({"a"})}).ok());
}

TEST(FunctionsTest, ContextFunctionsFlagged) {
  EXPECT_TRUE(IsContextFunction("position"));
  EXPECT_TRUE(IsContextFunction("last"));
  EXPECT_FALSE(IsContextFunction("count"));
}

TEST(SequenceTest, EffectiveBooleanValue) {
  EXPECT_FALSE(*EffectiveBooleanValue(Sequence{}));
  EXPECT_TRUE(*EffectiveBooleanValue(Strings({"x"})));
  EXPECT_FALSE(*EffectiveBooleanValue(Strings({""})));
  EXPECT_TRUE(*EffectiveBooleanValue(Numbers({1})));
  EXPECT_FALSE(*EffectiveBooleanValue(Numbers({0})));
  EXPECT_FALSE(EffectiveBooleanValue(Strings({"a", "b"})).ok());
}

TEST(SequenceTest, FormatNumber) {
  EXPECT_EQ(FormatNumber(3.0), "3");
  EXPECT_EQ(FormatNumber(3.25), "3.25");
  EXPECT_EQ(FormatNumber(-2.0), "-2");
}

}  // namespace
}  // namespace xbench::xquery
