#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include <cmath>
#include <map>
#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/worker_pool.h"

namespace xbench {
namespace {

// --- Status / Result ----------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoublePositive(int v) {
  XBENCH_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValuePropagates) {
  auto result = DoublePositive(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, ErrorPropagatesThroughMacro) {
  auto result = DoublePositive(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- Rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMeanAndVariance) {
  Rng rng(11);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, BoolProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  EXPECT_EQ(fa.Next(), fb.Next());
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

// --- strings ---------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "/"), "x/y/z");
  EXPECT_EQ(Join({}, "/"), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("catalog.xml", "catalog"));
  EXPECT_FALSE(StartsWith("cat", "catalog"));
  EXPECT_TRUE(EndsWith("catalog.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", "catalog.xml"));
}

TEST(StringsTest, ContainsWordRespectsBoundaries) {
  EXPECT_TRUE(ContainsWord("the quick brown fox", "quick"));
  EXPECT_FALSE(ContainsWord("quickly done", "quick"));
  EXPECT_TRUE(ContainsWord("end word", "word"));
  EXPECT_TRUE(ContainsWord("word starts", "word"));
  EXPECT_FALSE(ContainsWord("sword", "word"));
  EXPECT_FALSE(ContainsWord("", "word"));
  EXPECT_FALSE(ContainsWord("text", ""));
  EXPECT_TRUE(ContainsWord("a.word,here", "word"));
}

TEST(StringsTest, ContainsPhrase) {
  EXPECT_TRUE(ContainsPhrase("alpha beta gamma", "beta gam"));
  EXPECT_FALSE(ContainsPhrase("alpha", "beta"));
}

TEST(StringsTest, PadNumber) {
  EXPECT_EQ(PadNumber(42, 6), "000042");
  EXPECT_EQ(PadNumber(1234567, 6), "1234567");
  EXPECT_EQ(PadNumber(0, 3), "000");
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(ParseInt("123"), 123);
  EXPECT_EQ(ParseInt("  99 "), 99);
  EXPECT_EQ(ParseInt("12x"), -1);
  EXPECT_EQ(ParseInt(""), -1);
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5"), 1.5);
  EXPECT_TRUE(std::isnan(ParseDouble("abc")));
  EXPECT_TRUE(std::isnan(ParseDouble("")));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
}

TEST(WorkerPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  WorkerPool pool(3);
  constexpr size_t kTotal = 1000;
  std::vector<std::atomic<int>> hits(kTotal);
  ParallelRunStats stats;
  Status status = pool.ParallelFor(
      kTotal, 4,
      [&hits](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        return Status::Ok();
      },
      &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(stats.parallelism, 4);
  EXPECT_GT(stats.morsels, 1u);
  EXPECT_GE(stats.busy_millis, stats.caller_busy_millis);
  // The modeled makespan schedules the measured morsel CPU onto 4 ideal
  // lanes: bounded by the serial work above and by work/4 below.
  EXPECT_LE(stats.modeled_millis, stats.busy_millis + 1e-9);
  EXPECT_GE(stats.modeled_millis, stats.busy_millis / 4.0 - 1e-9);
}

TEST(WorkerPoolTest, ParallelForZeroTotalIsANoOp) {
  WorkerPool pool(2);
  ParallelRunStats stats;
  Status status = pool.ParallelFor(
      0, 4, [](size_t) { return Status::Internal("never called"); }, &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(stats.morsels, 0u);
  EXPECT_EQ(stats.busy_millis, 0.0);
}

TEST(WorkerPoolTest, ParallelismOneRunsEverythingOnTheCaller) {
  WorkerPool pool(2);
  constexpr size_t kTotal = 64;
  std::atomic<size_t> count{0};
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  ParallelRunStats stats;
  Status status = pool.ParallelFor(
      kTotal, 1,
      [&](size_t) {
        if (std::this_thread::get_id() != caller) off_thread = true;
        count.fetch_add(1);
        return Status::Ok();
      },
      &stats);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(count.load(), kTotal);
  EXPECT_FALSE(off_thread.load());
  EXPECT_EQ(stats.parallelism, 1);
  // Every morsel ran on the caller, so the caller's CPU is all of it.
  EXPECT_DOUBLE_EQ(stats.busy_millis, stats.caller_busy_millis);
}

TEST(WorkerPoolTest, LowestFailingIndexStatusWinsDeterministically) {
  WorkerPool pool(3);
  constexpr size_t kTotal = 500;
  for (int round = 0; round < 5; ++round) {
    Status status = pool.ParallelFor(kTotal, 4, [](size_t i) {
      if (i >= 17) {
        return Status::Internal("fail at " + std::to_string(i));
      }
      return Status::Ok();
    });
    ASSERT_FALSE(status.ok());
    // Index 17 is the lowest failure; any lane may observe a higher one
    // first, but the region must still report 17.
    EXPECT_NE(status.ToString().find("fail at 17"), std::string::npos)
        << status.ToString();
  }
}

}  // namespace
}  // namespace xbench
