#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/article_generator.h"
#include "engines/native_engine.h"
#include "workload/classes.h"
#include "workload/queries.h"
#include "workload/runner.h"
#include "xquery/parser.h"

namespace xbench::workload {
namespace {

using datagen::DbClass;

QueryParams DummyParams() {
  QueryParams p;
  p.item_id = "I000001";
  p.order_id = "O000001";
  p.article_id = "A000001";
  p.headword = "word_1";
  p.author = "Alan Turing";
  p.search_word = "kala";
  p.keyword1 = "ka";
  p.keyword2 = "la";
  p.phrase = "ba be";
  p.date_lo = "2000-01-01";
  p.date_hi = "2001-01-01";
  p.country = "Country01";
  return p;
}

std::vector<QueryId> AllQueries() {
  std::vector<QueryId> out;
  for (int i = 0; i < 20; ++i) out.push_back(static_cast<QueryId>(i));
  return out;
}

TEST(QueryCatalogTest, EveryQueryDefinedSomewhereAndParses) {
  const QueryParams params = DummyParams();
  for (QueryId id : AllQueries()) {
    int defined = 0;
    for (DbClass cls : AllClasses()) {
      const std::string text = XQueryFor(id, cls, params);
      if (text.empty()) continue;
      ++defined;
      auto parsed = xquery::ParseQuery(text);
      EXPECT_TRUE(parsed.ok())
          << QueryName(id) << " " << datagen::DbClassName(cls) << ": "
          << parsed.status().ToString() << "\n"
          << text;
    }
    EXPECT_GE(defined, 1) << QueryName(id);
  }
}

TEST(QueryCatalogTest, BenchmarkSubsetDefinedForAllClasses) {
  const QueryParams params = DummyParams();
  for (QueryId id : BenchmarkSubset()) {
    for (DbClass cls : AllClasses()) {
      EXPECT_FALSE(XQueryFor(id, cls, params).empty())
          << QueryName(id) << " " << datagen::DbClassName(cls);
    }
  }
}

TEST(QueryCatalogTest, NamesAndCategories) {
  EXPECT_STREQ(QueryName(QueryId::kQ1), "Q1");
  EXPECT_STREQ(QueryName(QueryId::kQ20), "Q20");
  EXPECT_STREQ(QueryCategory(QueryId::kQ17), "Text search");
  EXPECT_STREQ(QueryCategory(QueryId::kQ5), "Ordered access");
}

TEST(QueryCatalogTest, IndexHintsOnlyForIdLookups) {
  const QueryParams params = DummyParams();
  EXPECT_TRUE(IndexHintFor(QueryId::kQ5, DbClass::kDcMd, params).has_value());
  EXPECT_FALSE(IndexHintFor(QueryId::kQ17, DbClass::kDcMd, params).has_value());
  EXPECT_FALSE(IndexHintFor(QueryId::kQ14, DbClass::kTcSd, params).has_value());
  auto hint = IndexHintFor(QueryId::kQ8, DbClass::kTcSd, params);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->index_name, "hw");
  EXPECT_EQ(hint->value, params.headword);
}

TEST(ClassesTest, Table3AndInstanceNames) {
  EXPECT_EQ(Table3Indexes(DbClass::kDcSd).size(), 2u);
  EXPECT_EQ(Table3Indexes(DbClass::kTcSd)[0].path, "hw");
  EXPECT_EQ(InstanceName(DbClass::kTcSd, Scale::kSmall), "TCSDS");
  EXPECT_EQ(InstanceName(DbClass::kDcMd, Scale::kLarge), "DCMDL");
}

// --- Full 20-query workload on the native engine -----------------------------

class NativeWorkloadTest : public ::testing::TestWithParam<DbClass> {
 protected:
  static constexpr uint64_t kBytes = 128 * 1024;

  void SetUp() override {
    datagen::GenConfig config;
    config.target_bytes = kBytes;
    config.seed = 42;
    db_ = datagen::Generate(GetParam(), config);
    engine_ = std::make_unique<engines::NativeEngine>();
    ASSERT_TRUE(
        engine_->BulkLoad(db_.db_class, ToLoadDocuments(db_)).ok());
    ASSERT_TRUE(CreateTable3Indexes(*engine_, db_.db_class).ok());
    params_ = DeriveParams(GetParam(), db_.seeds);
  }

  datagen::GeneratedDatabase db_;
  std::unique_ptr<engines::NativeEngine> engine_;
  QueryParams params_;
};

TEST_P(NativeWorkloadTest, EveryDefinedQueryExecutes) {
  for (QueryId id : AllQueries()) {
    if (XQueryFor(id, GetParam(), params_).empty()) continue;
    ExecutionResult result = RunQuery(*engine_, id, GetParam(), params_);
    EXPECT_TRUE(result.status.ok())
        << QueryName(id) << ": " << result.status.ToString();
  }
}

TEST_P(NativeWorkloadTest, TargetedQueriesReturnResults) {
  // Queries anchored at a known id/headword must return exactly the
  // expected cardinality.
  switch (GetParam()) {
    case DbClass::kDcSd: {
      auto q1 = RunQuery(*engine_, QueryId::kQ1, GetParam(), params_);
      ASSERT_TRUE(q1.status.ok());
      EXPECT_EQ(q1.lines.size(), 1u);  // one item matches the id
      auto q5 = RunQuery(*engine_, QueryId::kQ5, GetParam(), params_);
      EXPECT_EQ(q5.lines.size(), 1u);
      auto q20 = RunQuery(*engine_, QueryId::kQ20, GetParam(), params_);
      EXPECT_GT(q20.lines.size(), 0u);  // size threshold selects ~half
      EXPECT_LT(q20.lines.size(),
                static_cast<size_t>(db_.seeds.item_count));
      break;
    }
    case DbClass::kDcMd: {
      auto q16 = RunQuery(*engine_, QueryId::kQ16, GetParam(), params_);
      ASSERT_TRUE(q16.status.ok());
      ASSERT_EQ(q16.lines.size(), 1u);
      EXPECT_NE(q16.lines[0].find("<order id=\"" + params_.order_id + "\">"),
                std::string::npos);
      auto q9 = RunQuery(*engine_, QueryId::kQ9, GetParam(), params_);
      ASSERT_EQ(q9.lines.size(), 1u);  // one status per order
      auto q19 = RunQuery(*engine_, QueryId::kQ19, GetParam(), params_);
      EXPECT_EQ(q19.lines.size(), 1u);  // join finds the customer
      break;
    }
    case DbClass::kTcSd: {
      auto q8 = RunQuery(*engine_, QueryId::kQ8, GetParam(), params_);
      ASSERT_TRUE(q8.status.ok());
      auto q3 = RunQuery(*engine_, QueryId::kQ3, GetParam(), params_);
      ASSERT_TRUE(q3.status.ok());
      EXPECT_GT(q3.lines.size(), 1u);  // several qloc groups
      break;
    }
    case DbClass::kTcMd: {
      auto q2 = RunQuery(*engine_, QueryId::kQ2, GetParam(), params_);
      ASSERT_TRUE(q2.status.ok());
      EXPECT_GE(q2.lines.size(),
                static_cast<size_t>(db_.seeds.article_count /
                                    datagen::kWellKnownAuthorStride));
      auto q13 = RunQuery(*engine_, QueryId::kQ13, GetParam(), params_);
      ASSERT_EQ(q13.lines.size(), 1u);
      EXPECT_NE(q13.lines[0].find("<first_author>"), std::string::npos);
      break;
    }
  }
}

TEST_P(NativeWorkloadTest, ColdRunsAreRepeatable) {
  QueryId id = QueryId::kQ17;
  auto first = RunQuery(*engine_, id, GetParam(), params_);
  auto second = RunQuery(*engine_, id, GetParam(), params_);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.lines, second.lines);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, NativeWorkloadTest,
                         ::testing::Values(DbClass::kDcSd, DbClass::kDcMd,
                                           DbClass::kTcSd, DbClass::kTcMd),
                         [](const auto& info) {
                           std::string name =
                               datagen::DbClassName(info.param);
                           name.erase(name.find('/'), 1);
                           return name;
                         });

TEST(CanonicalizeTest, SortsValueSets) {
  // Trailing empties are trimmed, then value sets are sorted.
  auto lines = CanonicalizeAnswer(QueryId::kQ17, {"b", "a", ""});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  // Ordered shapes keep order.
  auto ordered = CanonicalizeAnswer(QueryId::kQ5, {"b", "a"});
  EXPECT_EQ(ordered[0], "b");
}

}  // namespace
}  // namespace xbench::workload
