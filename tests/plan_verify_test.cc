// Negative-path tests for the static plan verifier (DESIGN.md §14):
// hand-corrupt frozen plans the way a compiler bug would and assert each
// distinct contract violation is rejected with the expected diagnostic
// kind. The positive path (every canned plan verifies clean) is covered
// by the xqlint --verify sweep and the verify-enabled test fixtures.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "datagen/generator.h"
#include "engines/native_engine.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "workload/classes.h"
#include "workload/queries.h"
#include "workload/runner.h"
#include "xquery/plan/cache.h"
#include "xquery/verify/verifier.h"

namespace xbench {
namespace {

using datagen::DbClass;
using workload::QueryId;
using xquery::verify::DiagnosticKind;
using xquery::verify::VerifyResult;

/// A compiled plan the tests own mutably (unlike the shared-const
/// CompiledQuery), so individual pieces can be corrupted post-freeze.
struct BuiltPlan {
  xquery::ExprPtr ast;
  analysis::AnalysisReport report;
  xquery::plan::CompilationOptions options;
  xquery::plan::LogicalPlan logical;
  xquery::exec::PhysicalPlan physical;
};

class VerifyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenConfig config;
    config.target_bytes = 160 * 1024;
    config.seed = 42;
    db_ = new datagen::GeneratedDatabase(
        datagen::Generate(DbClass::kTcSd, config));
    params_ = new workload::QueryParams(
        workload::DeriveParams(DbClass::kTcSd, db_->seeds));
    engine_ = workload::MakeEngine(engines::EngineKind::kNative).release();
    ASSERT_TRUE(workload::BulkLoad(*engine_, *db_).status.ok());
    ASSERT_TRUE(
        workload::CreateTable3Indexes(*engine_, DbClass::kTcSd).ok());
    catalog_ = new xquery::plan::IndexCatalog(
        static_cast<engines::NativeEngine&>(*engine_)
            .IndexCatalogSnapshot());
  }

  /// Compiles Q5 (an `item[@id = …]` equality probe under kForceIndex)
  /// into separately owned logical + physical plans.
  static BuiltPlan BuildProbePlan() {
    BuiltPlan built;
    const std::string text =
        workload::XQueryFor(QueryId::kQ5, DbClass::kTcSd, *params_);
    EXPECT_FALSE(text.empty());
    auto analyzed = workload::AnalyzeForClassFull(text, DbClass::kTcSd);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    built.ast = std::move(analyzed->ast);
    built.report = std::move(analyzed->report);
    built.options.access_path.mode =
        xquery::plan::AccessPathMode::kForceIndex;
    built.options.access_path.allow_guided = false;
    auto logical = xquery::plan::BuildLogicalPlan(
        *built.ast, &built.report.annotations, built.options, catalog_);
    EXPECT_TRUE(logical.ok()) << logical.status().ToString();
    built.logical = std::move(*logical);
    auto physical = xquery::exec::BuildPhysicalPlan(built.logical);
    EXPECT_TRUE(physical.ok()) << physical.status().ToString();
    built.physical = std::move(*physical);
    return built;
  }

  static xquery::plan::LogicalNode* FindProbe(xquery::plan::LogicalNode* n) {
    if (n->probe.has_value()) return n;
    for (auto& input : n->inputs) {
      if (auto* probe = FindProbe(input.get())) return probe;
    }
    return nullptr;
  }

  static bool HasKind(const VerifyResult& result, DiagnosticKind kind) {
    for (const auto& diag : result.diagnostics) {
      if (diag.kind == kind) return true;
    }
    return false;
  }

  static VerifyResult Verify(const BuiltPlan& built) {
    return xquery::verify::VerifyPlan(built.logical, built.physical,
                                      built.options, catalog_);
  }

  static datagen::GeneratedDatabase* db_;
  static workload::QueryParams* params_;
  static engines::XmlDbms* engine_;
  static xquery::plan::IndexCatalog* catalog_;
};

datagen::GeneratedDatabase* VerifyFixture::db_ = nullptr;
workload::QueryParams* VerifyFixture::params_ = nullptr;
engines::XmlDbms* VerifyFixture::engine_ = nullptr;
xquery::plan::IndexCatalog* VerifyFixture::catalog_ = nullptr;

TEST_F(VerifyFixture, WellFormedProbePlanVerifiesClean) {
  const uint64_t plans0 = obs::MetricsRegistry::Default()
                              .GetCounter(obs::metric_names::kVerifyPlans)
                              .value();
  BuiltPlan built = BuildProbePlan();
  ASSERT_NE(FindProbe(built.logical.root.get()), nullptr)
      << built.logical.ToString();
  VerifyResult result = Verify(built);
  EXPECT_TRUE(result.ok()) << result.diagnostics.front().ToString();
  // One derived-property line per frozen operator, all document-ordered.
  EXPECT_EQ(result.derived.size(), built.physical.labels.size());
  for (const std::string& line : result.derived) {
    EXPECT_NE(line.find("ordering=ordered"), std::string::npos) << line;
  }
  EXPECT_GT(obs::MetricsRegistry::Default()
                .GetCounter(obs::metric_names::kVerifyPlans)
                .value(),
            plans0);
}

TEST_F(VerifyFixture, StaleCatalogEpochIsRejected) {
  BuiltPlan built = BuildProbePlan();
  xquery::plan::LogicalNode* probe = FindProbe(built.logical.root.get());
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->probe->catalog_epoch, catalog_->epoch);
  probe->probe->catalog_epoch = catalog_->epoch + 17;
  VerifyResult result = Verify(built);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasKind(result, DiagnosticKind::kEpochMismatch));
  // The rejection doubles as counter coverage.
  EXPECT_GT(
      obs::MetricsRegistry::Default()
          .GetCounter(obs::metric_names::kVerifyViolations)
          .value(),
      0u);
}

TEST_F(VerifyFixture, DroppedResidualPredicateIsRejected) {
  BuiltPlan built = BuildProbePlan();
  xquery::plan::LogicalNode* probe = FindProbe(built.logical.root.get());
  ASSERT_NE(probe, nullptr);
  ASSERT_FALSE(probe->inputs.empty());
  ASSERT_FALSE(probe->inputs[0]->predicates.empty())
      << "Q5's probe should carry the fallback's predicate as residual";
  // A buggy selector that forgets to re-check the replaced subtree's
  // predicate would let the probe widen the answer.
  probe->predicates.clear();
  VerifyResult result = Verify(built);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasKind(result, DiagnosticKind::kMissingResidualPredicate));
}

TEST_F(VerifyFixture, UnorderedChildUnderOrderRequiringParentIsRejected) {
  BuiltPlan built = BuildProbePlan();
  // Mark a non-splice-capable child operator as a parallel region: its
  // output derives ordered-per-morsel (no in-order splice exists for
  // it), which every order-requiring parent must reject.
  ASSERT_GT(built.physical.labels.size(), 1u);
  bool corrupted = false;
  for (size_t i = 1; i < built.physical.labels.size(); ++i) {
    if (built.physical.labels[i].rfind("Scan($", 0) == 0) {
      built.physical.labels[i] += " [parallel x4]";
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  VerifyResult result = Verify(built);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasKind(result, DiagnosticKind::kParallelUnsafe));
  EXPECT_TRUE(HasKind(result, DiagnosticKind::kUnorderedInput));
}

TEST_F(VerifyFixture, EstimateOutsideAnalysisBoundsIsRejected) {
  BuiltPlan built = BuildProbePlan();
  xquery::plan::LogicalNode* probe = FindProbe(built.logical.root.get());
  ASSERT_NE(probe, nullptr);
  ASSERT_GE(probe->estimated_rows, 0);
  // Claim the analyzer proved this subtree empty while the cost model
  // still estimates rows out of it — contradictory frozen statistics.
  probe->cardinality = xquery::plan::Card::kEmpty;
  probe->estimated_rows = std::max(probe->estimated_rows, 1.0);
  built.options.cost_model.trust_statistics = true;
  // Keep the physical mirror consistent so only the bound violation
  // fires, not a label mismatch.
  for (size_t i = 0; i < built.physical.estimated_rows.size(); ++i) {
    if (built.physical.estimated_rows[i] >= 0) {
      built.physical.estimated_rows[i] = probe->estimated_rows;
    }
  }
  VerifyResult result = Verify(built);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasKind(result, DiagnosticKind::kCardinalityBound));
  EXPECT_FALSE(HasKind(result, DiagnosticKind::kLabelMismatch));
}

TEST_F(VerifyFixture, WrongArityIsRejected) {
  BuiltPlan built = BuildProbePlan();
  xquery::plan::LogicalNode* probe = FindProbe(built.logical.root.get());
  ASSERT_NE(probe, nullptr);
  ASSERT_EQ(probe->inputs.size(), 2u);
  probe->inputs.pop_back();  // drop the root source the probe validates
  VerifyResult result = Verify(built);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasKind(result, DiagnosticKind::kArityMismatch));
}

TEST_F(VerifyFixture, CorruptedLabelIsRejected) {
  BuiltPlan built = BuildProbePlan();
  ASSERT_FALSE(built.physical.labels.empty());
  built.physical.labels[0] = "Scan($haxx)";
  VerifyResult result = Verify(built);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasKind(result, DiagnosticKind::kLabelMismatch));
}

TEST_F(VerifyFixture, CompileRejectsViolationsWhenVerifyIsOn) {
  // End-to-end: Compile() with the verify knob on runs the verifier and
  // surfaces a clean pass (the negative path is unreachable through the
  // real compiler — that is the point of the subsystem).
  const std::string text =
      workload::XQueryFor(QueryId::kQ5, DbClass::kTcSd, *params_);
  auto analyzed = workload::AnalyzeForClassFull(text, DbClass::kTcSd);
  ASSERT_TRUE(analyzed.ok());
  xquery::plan::CompilationOptions options;
  options.verify = true;
  auto compiled =
      xquery::plan::Compile(std::move(analyzed->ast),
                            &analyzed->report.annotations, options, catalog_);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
}

}  // namespace
}  // namespace xbench
