#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "engines/clob_engine.h"
#include "engines/native_engine.h"
#include "engines/shred_engine.h"
#include "engines/shredder.h"
#include "datagen/article_generator.h"
#include "workload/runner.h"
#include "xml/parser.h"

namespace xbench::engines {
namespace {

using datagen::DbClass;

datagen::GeneratedDatabase SmallDb(DbClass cls, uint64_t bytes = 64 * 1024) {
  datagen::GenConfig config;
  config.target_bytes = bytes;
  config.seed = 42;
  return datagen::Generate(cls, config);
}

// --- NativeEngine --------------------------------------------------------------

TEST(NativeEngineTest, LoadsAndCountsDocuments) {
  NativeEngine engine;
  auto db = SmallDb(DbClass::kTcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  EXPECT_EQ(engine.document_count(), db.documents.size());
  EXPECT_GT(engine.stored_bytes(), 0u);
}

TEST(NativeEngineTest, RejectsMalformedDocument) {
  NativeEngine engine;
  std::vector<LoadDocument> docs{{"bad.xml", "<a><b></a>"}};
  EXPECT_FALSE(engine.BulkLoad(DbClass::kTcMd, docs).ok());
}

TEST(NativeEngineTest, QueryOverCollection) {
  NativeEngine engine;
  auto db = SmallDb(DbClass::kTcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  auto result = engine.Query("count($input)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToText(), std::to_string(db.documents.size()) + "\n");
}

TEST(NativeEngineTest, IndexNarrowsCandidates) {
  NativeEngine engine;
  auto db = SmallDb(DbClass::kTcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  ASSERT_TRUE(engine.CreateIndex({"article/@id", "article/@id"}).ok());

  const std::string target = datagen::ArticleId(3);
  auto with_index = engine.QueryWithIndex("article/@id", target,
                                          "for $a in $input return $a/@id");
  ASSERT_TRUE(with_index.ok());
  EXPECT_EQ(with_index->ToText(), target + "\n");
}

TEST(NativeEngineTest, IndexLookupChargesLessIoThanScan) {
  NativeEngine engine;
  auto db = SmallDb(DbClass::kTcMd, 256 * 1024);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  ASSERT_TRUE(engine.CreateIndex({"article/@id", "article/@id"}).ok());
  const std::string query = "for $a in $input return $a/@id";
  const std::string target = datagen::ArticleId(3);

  engine.ColdRestart();
  double io0 = engine.IoMillis();
  ASSERT_TRUE(engine.QueryWithIndex("article/@id", target, query).ok());
  const double indexed_io = engine.IoMillis() - io0;

  engine.ColdRestart();
  io0 = engine.IoMillis();
  ASSERT_TRUE(engine.Query(query).ok());
  const double scan_io = engine.IoMillis() - io0;

  EXPECT_LT(indexed_io, scan_io / 2) << "indexed=" << indexed_io
                                     << " scan=" << scan_io;
}

TEST(NativeEngineTest, MissingIndexFallsBackToScan) {
  NativeEngine engine;
  auto db = SmallDb(DbClass::kTcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  auto result =
      engine.QueryWithIndex("no-such-index", "x", "count($input)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToText(), std::to_string(db.documents.size()) + "\n");
}

TEST(NativeEngineTest, ExtractIndexValues) {
  auto doc = xml::Parse(
      R"(<r><item id="I1"><hw>w1</hw></item><item id="I2"/><hw>w2</hw></r>)",
      "t.xml");
  ASSERT_TRUE(doc.ok());
  auto ids = ExtractIndexValues(*doc->root(), "item/@id");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "I1");
  auto hws = ExtractIndexValues(*doc->root(), "hw");
  ASSERT_EQ(hws.size(), 2u);
  EXPECT_EQ(hws[1], "w2");
}

TEST(NativeEngineTest, IndexDdlListsDropsAndSurvivesColdRestart) {
  NativeEngine engine;
  auto db = SmallDb(DbClass::kTcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  IndexSpec value{"article/@id", "article/@id"};
  IndexSpec path;
  path.name = "paths";
  path.kind = IndexKind::kPath;
  IndexSpec text;
  text.name = "words";
  text.kind = IndexKind::kText;
  ASSERT_TRUE(engine.CreateIndex(value).ok());
  ASSERT_TRUE(engine.CreateIndex(path).ok());
  ASSERT_TRUE(engine.CreateIndex(text).ok());
  EXPECT_EQ(engine.CreateIndex(value).code(), StatusCode::kAlreadyExists);

  std::vector<IndexInfo> infos = engine.ListIndexes();
  ASSERT_EQ(infos.size(), 3u);  // creation order
  EXPECT_EQ(infos[0].name, "article/@id");
  EXPECT_EQ(infos[0].kind, IndexKind::kValue);
  EXPECT_EQ(infos[1].name, "paths");
  EXPECT_EQ(infos[1].kind, IndexKind::kPath);
  EXPECT_EQ(infos[2].name, "words");
  EXPECT_EQ(infos[2].kind, IndexKind::kText);
  for (const IndexInfo& info : infos) {
    EXPECT_GT(info.entries, 0u) << info.name;
  }

  ASSERT_TRUE(engine.DropIndex("paths").ok());
  EXPECT_EQ(engine.DropIndex("paths").code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.ListIndexes().size(), 2u);

  // Indexes are part of the collection, not the caches: a cold restart
  // drops pool/document warmth but the catalog and postings remain.
  engine.ColdRestart();
  infos = engine.ListIndexes();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "article/@id");
  EXPECT_EQ(infos[1].name, "words");
  for (const IndexInfo& info : infos) {
    EXPECT_GT(info.entries, 0u) << info.name;
  }
}

// --- ClobEngine -----------------------------------------------------------------

TEST(ClobEngineTest, RefusesSdClasses) {
  for (DbClass cls : {DbClass::kTcSd, DbClass::kDcSd}) {
    ClobEngine engine;
    auto db = SmallDb(cls);
    Status status = engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db));
    EXPECT_EQ(status.code(), StatusCode::kUnsupported)
        << datagen::DbClassName(cls);
  }
}

TEST(ClobEngineTest, RefusesOversizedDocument) {
  ClobEngine engine(/*max_document_bytes=*/1024);
  std::string big = "<order id=\"O1\">" + std::string(4000, 'x') + "</order>";
  std::vector<LoadDocument> docs{{"order1.xml", big}};
  EXPECT_EQ(engine.BulkLoad(DbClass::kDcMd, docs).code(),
            StatusCode::kUnsupported);
}

TEST(ClobEngineTest, LoadsMdAndFetchesIntactDocuments) {
  ClobEngine engine;
  auto db = SmallDb(DbClass::kDcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());

  // The fetched document equals the original, byte for byte semantics.
  const auto& original = db.documents[0];
  auto fetched = engine.FetchDocument(original.name);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_TRUE((*fetched)->root()->StructurallyEquals(*original.dom.root()));
}

TEST(ClobEngineTest, SideTablesPopulatedWithSeqno) {
  ClobEngine engine;
  auto db = SmallDb(DbClass::kDcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  relational::Table* side = engine.side_tables().FindTable("side_order");
  ASSERT_NE(side, nullptr);
  EXPECT_EQ(side->row_count(),
            static_cast<uint64_t>(db.seeds.order_count));
  // dxx_seqno is kept.
  bool has_seq = false;
  side->Scan([&](storage::RecordId, const relational::Row& row) {
    has_seq = !row[kColSeq].is_null();
    return false;
  });
  EXPECT_TRUE(has_seq);
}

TEST(ClobEngineTest, CreateIndexOnSideTable) {
  ClobEngine engine;
  auto db = SmallDb(DbClass::kDcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  ASSERT_TRUE(engine.CreateIndex({"order/@id", "order/@id"}).ok());
  relational::Table* side = engine.side_tables().FindTable("side_order");
  EXPECT_NE(side->FindIndex("order/@id"), nullptr);
}

// --- ShredEngine -----------------------------------------------------------------

TEST(RelationalEngines, TextAndPathIndexKindsAreNativeOnly) {
  IndexSpec text;
  text.name = "words";
  text.kind = IndexKind::kText;
  IndexSpec path;
  path.name = "paths";
  path.kind = IndexKind::kPath;
  ClobEngine clob;
  ShredEngine shred(EngineKind::kShredMsSql);
  for (XmlDbms* engine : std::initializer_list<XmlDbms*>{&clob, &shred}) {
    EXPECT_EQ(engine->CreateIndex(text).code(), StatusCode::kUnsupported)
        << engine->name();
    EXPECT_EQ(engine->CreateIndex(path).code(), StatusCode::kUnsupported)
        << engine->name();
  }
}

TEST(ShredEngineTest, LoadsAllClassesAtTinyScale) {
  for (DbClass cls : {DbClass::kTcSd, DbClass::kTcMd, DbClass::kDcSd,
                      DbClass::kDcMd}) {
    for (EngineKind kind : {EngineKind::kShredDb2, EngineKind::kShredMsSql}) {
      ShredEngine engine(kind);
      auto db = SmallDb(cls);
      Status status =
          engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db));
      EXPECT_TRUE(status.ok()) << datagen::DbClassName(cls) << " "
                               << EngineKindName(kind) << ": "
                               << status.ToString();
    }
  }
}

TEST(ShredEngineTest, Db2RowLimitRejectsBigSingleDocuments) {
  ShredEngine engine(EngineKind::kShredDb2);
  // A dictionary big enough to decompose into > 2 * 1024 rows per table.
  auto db = SmallDb(DbClass::kTcSd, 3 * 1024 * 1024);
  Status status = engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db));
  EXPECT_EQ(status.code(), StatusCode::kUnsupported) << status.ToString();
}

TEST(ShredEngineTest, MsSqlHasNoRowLimit) {
  ShredEngine engine(EngineKind::kShredMsSql);
  auto db = SmallDb(DbClass::kTcSd, 3 * 1024 * 1024);
  EXPECT_TRUE(
      engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
}

TEST(ShredEngineTest, PkFkIndexesAutoCreated) {
  ShredEngine engine(EngineKind::kShredDb2);
  auto db = SmallDb(DbClass::kDcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  relational::Table* orders = engine.tables().FindTable("order_tab");
  ASSERT_NE(orders, nullptr);
  EXPECT_NE(orders->FindIndex("order_tab_pk"), nullptr);
  EXPECT_NE(orders->FindIndex("order_tab_fk"), nullptr);
}

TEST(ShredEngineTest, RowCountsMatchGeneratedData) {
  ShredEngine engine(EngineKind::kShredDb2);
  auto db = SmallDb(DbClass::kDcMd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  EXPECT_EQ(engine.tables().FindTable("order_tab")->row_count(),
            static_cast<uint64_t>(db.seeds.order_count));
  EXPECT_EQ(engine.tables().FindTable("customer_tab")->row_count(),
            static_cast<uint64_t>(db.seeds.customer_count));
}

TEST(ShredEngineTest, Table3IndexCreation) {
  ShredEngine engine(EngineKind::kShredMsSql);
  auto db = SmallDb(DbClass::kDcSd);
  ASSERT_TRUE(engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db)).ok());
  ASSERT_TRUE(workload::CreateTable3Indexes(engine, DbClass::kDcSd).ok());
  relational::Table* items = engine.tables().FindTable("item_tab");
  EXPECT_NE(items->FindIndex("item/@id"), nullptr);
  EXPECT_NE(items->FindIndex("date_of_release"), nullptr);
}

TEST(EngineFactoryTest, MakesAllKinds) {
  for (EngineKind kind : workload::AllEngines()) {
    auto engine = workload::MakeEngine(kind);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->kind(), kind);
    EXPECT_FALSE(engine->name().empty());
  }
}

}  // namespace
}  // namespace xbench::engines
