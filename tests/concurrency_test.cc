// Concurrency coverage for the multi-client execution paths: sharded
// buffer-pool latches, atomic virtual-clock / per-thread I/O attribution,
// concurrent-vs-serial differential answers on a shared engine, the plan
// cache under racing compilers, mutations racing statements, and the MPL
// throughput driver. The suite is the payload of the TSAN smoke job
// (tools/sanitize_smoke.sh with XBENCH_SANITIZE=thread).
#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/lock_rank.h"
#include "common/stopwatch.h"
#include "common/thread_io.h"
#include "obs/metrics.h"
#include "datagen/generator.h"
#include "engines/native_engine.h"
#include "engines/registry.h"
#include "harness/throughput.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "workload/runner.h"
#include "workload/session.h"

namespace xbench {
namespace {

using datagen::DbClass;
using engines::EngineKind;
using workload::QueryId;

datagen::GeneratedDatabase SmallDb(DbClass cls, uint64_t seed = 42,
                                   uint64_t bytes = 96 * 1024) {
  datagen::GenConfig config;
  config.target_bytes = bytes;
  config.seed = seed;
  return datagen::Generate(cls, config);
}

TEST(ConcurrentStorage, ShardedPoolKeepsDisjointPagesIntact) {
  storage::SimulatedDisk disk;
  constexpr int kThreads = 8;
  constexpr int kPagesPerThread = 4;
  constexpr int kRounds = 50;
  std::vector<storage::PageId> pages;
  for (int i = 0; i < kThreads * kPagesPerThread; ++i) {
    pages.push_back(disk.Allocate());
  }
  // Capacity below the working set so the threads continuously evict each
  // other's frames through the shared shards.
  storage::BufferPool pool(disk, 8);
  std::vector<std::thread> threads;
  std::atomic<int> corruptions{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int p = 0; p < kPagesPerThread; ++p) {
          const storage::PageId id = pages[t * kPagesPerThread + p];
          uint64_t stamp = (static_cast<uint64_t>(t) << 32) |
                           static_cast<uint64_t>(round);
          pool.WriteAt(id, 16, &stamp, sizeof(stamp));
          uint64_t readback = 0;
          pool.ReadAt(id, 16, &readback, sizeof(readback));
          if (readback != stamp) corruptions.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(corruptions.load(), 0);
  // Every write eventually lands on the disk image: flush and re-read the
  // final stamps through a fresh pool.
  pool.FlushAll();
  storage::BufferPool verify(disk, 8);
  for (int t = 0; t < kThreads; ++t) {
    for (int p = 0; p < kPagesPerThread; ++p) {
      uint64_t stamp = 0;
      verify.ReadAt(pages[t * kPagesPerThread + p], 16, &stamp,
                    sizeof(stamp));
      EXPECT_EQ(stamp >> 32, static_cast<uint64_t>(t));
      EXPECT_EQ(stamp & 0xffffffffull, kRounds - 1u);
    }
  }
}

TEST(ConcurrentStorage, VirtualClockAdvancesAreNotLost) {
  VirtualClock clock;
  constexpr int kThreads = 8;
  constexpr int kAdvances = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdvances; ++i) clock.AdvanceMicros(3);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(clock.ElapsedMicros(), 3ull * kThreads * kAdvances);
}

TEST(ConcurrentStorage, ThreadIoAttributionIsExactUnderConcurrency) {
  storage::SimulatedDisk disk;
  std::vector<storage::PageId> pages;
  for (int i = 0; i < 32; ++i) pages.push_back(disk.Allocate());
  storage::BufferPool pool(disk, 4);
  constexpr int kThreads = 4;
  constexpr int kReadsPerThread = 200;
  std::vector<workload::IoStats> deltas(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const workload::IoStats before = workload::ThreadIoSnapshot();
      uint64_t sink = 0;
      for (int i = 0; i < kReadsPerThread; ++i) {
        uint64_t value = 0;
        pool.ReadAt(pages[(t * 7 + i * 13) % pages.size()], 0, &value,
                    sizeof(value));
        sink += value;
      }
      deltas[t] =
          workload::IoStatsDelta(before, workload::ThreadIoSnapshot());
      ASSERT_EQ(sink, 0u);  // freshly allocated pages are zeroed
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t disk_reads = 0;
  for (const workload::IoStats& delta : deltas) {
    // Each thread accounts exactly its own page accesses, no more.
    EXPECT_EQ(delta.pool_hits + delta.pool_misses, kReadsPerThread);
    EXPECT_EQ(delta.disk_page_reads, delta.pool_misses);
    hits += delta.pool_hits;
    misses += delta.pool_misses;
    disk_reads += delta.disk_page_reads;
  }
  // And the per-thread deltas partition the engine-lifetime totals.
  EXPECT_EQ(pool.hits(), hits);
  EXPECT_EQ(pool.misses(), misses);
  EXPECT_EQ(disk.reads(), disk_reads);
}

TEST(ConcurrentSessions, AnswersMatchSerialBaselineOnEveryEngine) {
  const std::vector<QueryId> candidates = {QueryId::kQ5, QueryId::kQ8,
                                           QueryId::kQ14, QueryId::kQ17};
  for (EngineKind kind : workload::AllEngines()) {
    auto engine = workload::MakeEngine(kind);
    ASSERT_NE(engine, nullptr);
    const auto db = SmallDb(DbClass::kTcMd);
    ASSERT_TRUE(workload::BulkLoad(*engine, db).status.ok());
    const workload::QueryParams params =
        workload::DeriveParams(db.db_class, db.seeds);
    workload::RunOptions warm;
    warm.cold = false;
    // Serial baseline hashes on this thread; queries the engine cannot run
    // at all are dropped (they cannot run concurrently either).
    std::vector<QueryId> mix;
    std::vector<uint64_t> expected;
    workload::Session baseline(*engine, db.db_class, params, "serial");
    for (QueryId id : candidates) {
      workload::ExecutionResult result = baseline.Run(id, warm);
      if (result.status.code() == StatusCode::kUnsupported) continue;
      ASSERT_TRUE(result.status.ok())
          << engine->name() << " " << workload::QueryName(id) << ": "
          << result.status.ToString();
      mix.push_back(id);
      expected.push_back(workload::AnswerHash(
          workload::CanonicalizeAnswer(id, std::move(result.lines))));
    }
    ASSERT_FALSE(mix.empty()) << engine->name();
    // Concurrent sweep: every session re-runs the whole mix.
    constexpr int kSessions = 4;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        workload::Session session(*engine, db.db_class, params,
                                  "s" + std::to_string(s));
        for (size_t q = 0; q < mix.size(); ++q) {
          const size_t slot = (q + static_cast<size_t>(s)) % mix.size();
          workload::ExecutionResult result = session.Run(mix[slot], warm);
          if (!result.status.ok()) {
            failures.fetch_add(1);
            continue;
          }
          const uint64_t hash = workload::AnswerHash(
              workload::CanonicalizeAnswer(mix[slot],
                                           std::move(result.lines)));
          if (hash != expected[slot]) mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0) << engine->name();
    EXPECT_EQ(mismatches.load(), 0) << engine->name();
  }
}

TEST(ConcurrentSessions, RacingCompilersShareOnePlanCacheEntry) {
  engines::NativeEngine engine;
  const auto db = SmallDb(DbClass::kTcSd);
  ASSERT_TRUE(workload::BulkLoad(engine, db).status.ok());
  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);
  ASSERT_EQ(engine.plan_cache().size(), 0u);
  workload::RunOptions warm;
  warm.cold = false;
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // All threads compile the same statement at once; the cache must end up
  // with exactly one entry and every execution must succeed.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      workload::Session session(engine, db.db_class, params);
      workload::ExecutionResult result = session.Run(QueryId::kQ5, warm);
      if (!result.status.ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.plan_cache().size(), 1u);
}

TEST(ConcurrentSessions, MutationsSerializeAgainstInFlightStatements) {
  auto engine = workload::MakeEngine(EngineKind::kNative);
  const auto db = SmallDb(DbClass::kTcMd);
  ASSERT_TRUE(workload::BulkLoad(*engine, db).status.ok());
  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);
  workload::RunOptions warm;
  warm.cold = false;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    // Inserts + cold restarts race the reader statements below; the
    // collection lock must serialize them without deadlock or torn reads.
    for (int i = 0; i < 6; ++i) {
      engines::LoadDocument doc;
      doc.name = "hotplug" + std::to_string(i) + ".xml";
      doc.text = "<article><prolog><title>hotplug " + std::to_string(i) +
                 "</title></prolog><body><abstract>concurrent insert"
                 "</abstract></body></article>";
      if (!engine->InsertDocument(doc).ok()) failures.fetch_add(1);
      engine->ColdRestart();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      workload::Session session(*engine, db.db_class, params);
      // Each reader issues a minimum number of statements so the race is
      // exercised even when the writer finishes before the readers spin up.
      // Q17's `//` steps compile guided plans on a freshly validated
      // collection, so an insert that closes the guided-eval gate can land
      // between a statement's compile and its execute; the session must
      // fall back to an unguided plan instead of surfacing the rejection.
      int runs = 0;
      while (runs++ < 8 || !stop.load()) {
        workload::ExecutionResult result = session.Run(QueryId::kQ17, warm);
        if (!result.status.ok()) failures.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentSessions, IndexMaintenanceUnderMutationStaysConsistent) {
  auto engine = workload::MakeEngine(EngineKind::kNative);
  const auto db = SmallDb(DbClass::kTcMd);
  ASSERT_TRUE(workload::BulkLoad(*engine, db).status.ok());
  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);
  workload::Session ddl(*engine, db.db_class, params, "ddl");
  for (const engines::IndexSpec& spec :
       workload::Table3Indexes(db.db_class)) {
    ASSERT_TRUE(ddl.CreateIndex(spec).ok()) << spec.name;
  }
  engines::IndexSpec text;
  text.name = "words";
  text.kind = engines::IndexKind::kText;
  ASSERT_TRUE(ddl.CreateIndex(text).ok());

  workload::RunOptions probe;
  probe.cold = false;
  probe.compile.access_path.mode = xquery::plan::AccessPathMode::kForceIndex;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    // Inserts, deletes and cold restarts race index-probing statements;
    // every mutation must rebuild/extend the live indexes under the
    // collection lock, and the probes must never observe a half-updated
    // posting list (they would fail or return wrong answers below).
    for (int i = 0; i < 5; ++i) {
      engines::LoadDocument doc;
      doc.name = "mut" + std::to_string(i) + ".xml";
      doc.text = "<article id=\"AMUT" + std::to_string(i) +
                 "\"><prolog><title>mutation probe</title></prolog>"
                 "<body><abstract>xenu lives here</abstract></body>"
                 "</article>";
      if (!engine->InsertDocument(doc).ok()) failures.fetch_add(1);
      if (i % 2 == 0) {
        if (!engine->DeleteDocument(doc.name).ok()) failures.fetch_add(1);
      }
      engine->ColdRestart();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      workload::Session session(*engine, db.db_class, params);
      int runs = 0;
      while (runs++ < 8 || !stop.load()) {
        const QueryId id = runs % 2 == 0 ? QueryId::kQ5 : QueryId::kQ17;
        workload::ExecutionResult result = session.Run(id, probe);
        if (!result.status.ok()) failures.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Post-storm differential: forced index probes against the mutated
  // collection must be byte-identical to forced full scans, and survive
  // one more cold restart (indexes rebuild from the persisted documents).
  workload::RunOptions scan;
  scan.cold = false;
  scan.compile.access_path.mode = xquery::plan::AccessPathMode::kForceScan;
  workload::Session check(*engine, db.db_class, params, "check");
  for (int round = 0; round < 2; ++round) {
    if (round == 1) engine->ColdRestart();
    for (QueryId id : {QueryId::kQ5, QueryId::kQ17}) {
      workload::ExecutionResult scanned = check.Run(id, scan);
      workload::ExecutionResult probed = check.Run(id, probe);
      ASSERT_TRUE(scanned.status.ok());
      ASSERT_TRUE(probed.status.ok());
      EXPECT_NE(probed.access_path.find('('), std::string::npos)
          << workload::QueryName(id) << ": " << probed.access_path;
      EXPECT_EQ(scanned.lines, probed.lines) << workload::QueryName(id);
    }
  }
}

TEST(ConcurrentSessions, IndexDdlInvalidatesCachedPlansViaCatalogEpoch) {
  engines::NativeEngine engine;
  const auto db = SmallDb(DbClass::kTcSd);
  ASSERT_TRUE(workload::BulkLoad(engine, db).status.ok());
  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);
  workload::Session session(engine, db.db_class, params);
  engines::IndexSpec hw;
  hw.name = "hw";
  hw.path = "hw";
  ASSERT_TRUE(session.CreateIndex(hw).ok());

  workload::RunOptions autopath;
  autopath.cold = false;
  autopath.compile.access_path.mode = xquery::plan::AccessPathMode::kAuto;
  workload::ExecutionResult indexed = session.Run(QueryId::kQ5, autopath);
  ASSERT_TRUE(indexed.status.ok());
  EXPECT_NE(indexed.access_path.find("IndexScan(hw"), std::string::npos)
      << indexed.access_path;
  workload::ExecutionResult warm = session.Run(QueryId::kQ5, autopath);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.plan_cache_hit);

  // Dropping the index bumps the catalog epoch: the cached probing plan's
  // key no longer matches, so the next run re-plans against the new
  // catalog instead of executing a stale probe.
  ASSERT_TRUE(session.DropIndex("hw").ok());
  workload::ExecutionResult dropped = session.Run(QueryId::kQ5, autopath);
  ASSERT_TRUE(dropped.status.ok());
  EXPECT_FALSE(dropped.plan_cache_hit);
  EXPECT_EQ(dropped.access_path.find("IndexScan"), std::string::npos)
      << dropped.access_path;
  EXPECT_EQ(dropped.lines, indexed.lines);

  // Recreating it invalidates again, in the other direction.
  ASSERT_TRUE(session.CreateIndex(hw).ok());
  workload::ExecutionResult recreated = session.Run(QueryId::kQ5, autopath);
  ASSERT_TRUE(recreated.status.ok());
  EXPECT_FALSE(recreated.plan_cache_hit);
  EXPECT_NE(recreated.access_path.find("IndexScan(hw"), std::string::npos)
      << recreated.access_path;
  EXPECT_EQ(recreated.lines, indexed.lines);
}

TEST(EngineRegistry, ResolvesEveryKindAndRejectsUnknownNames) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Default();
  for (EngineKind kind : workload::AllEngines()) {
    const char* name = engines::EngineKindRegistryName(kind);
    EXPECT_TRUE(registry.Contains(name)) << name;
    auto engine = registry.Create(name);
    ASSERT_TRUE(engine.ok()) << name;
    EXPECT_EQ(engine.value()->kind(), kind);
  }
  auto missing = registry.Create("postgres");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The error lists the registered names so flag typos self-explain.
  EXPECT_NE(missing.status().ToString().find("native"), std::string::npos);
  Status duplicate = registry.Register("native", [] {
    return std::unique_ptr<engines::XmlDbms>();
  });
  EXPECT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
  // The rejected duplicate must not clobber the original factory.
  auto still_native = registry.Create("native");
  ASSERT_TRUE(still_native.ok());
  EXPECT_EQ(still_native.value()->kind(), EngineKind::kNative);
}

TEST(ConcurrentSessions, ColdRestartContractHoldsUnderRacingSessions) {
  // Runs the ColdRestart path (exclusive collection lock ->
  // ColdRestartLocked -> cache mutex + pool shard latches + disk mutex)
  // against racing reader sessions WITH runtime lock-rank enforcement
  // live. Any acquisition violating the DESIGN.md §9 order — including a
  // ColdRestartLocked override re-taking the collection lock — aborts the
  // process, so this test passing proves the REQUIRES contracts hold on
  // the whole restart path under contention.
  const bool was_enabled = lockrank::Enabled();
  lockrank::SetEnabled(true);
  obs::Counter& acquires =
      obs::MetricsRegistry::Default().GetCounter("xbench.lock.acquires");
  const uint64_t acquires_before = acquires.value();
  for (EngineKind kind : {EngineKind::kNative, EngineKind::kClob}) {
    auto engine = workload::MakeEngine(kind);
    const auto db = SmallDb(DbClass::kTcMd);
    ASSERT_TRUE(workload::BulkLoad(*engine, db).status.ok());
    const workload::QueryParams params =
        workload::DeriveParams(db.db_class, db.seeds);
    workload::RunOptions warm;
    warm.cold = false;
    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::thread restarter([&] {
      for (int i = 0; i < 8; ++i) engine->ColdRestart();
      stop.store(true);
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&] {
        workload::Session session(*engine, db.db_class, params);
        while (!stop.load()) {
          if (!session.Run(QueryId::kQ1, warm).status.ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    restarter.join();
    for (std::thread& t : readers) t.join();
    EXPECT_EQ(failures.load(), 0) << engines::EngineKindName(kind);
  }
  // Enforcement was actually live: the sessions' acquisitions were
  // tracked (and none violated, or we would not be here).
  EXPECT_GT(acquires.value(), acquires_before);
  EXPECT_EQ(obs::MetricsRegistry::Default()
                .GetCounter("xbench.lock.violations")
                .value(),
            0u);
  lockrank::SetEnabled(was_enabled);
}

TEST(ThroughputDriverTest, SweepScalesAndMatchesSerialHashes) {
  harness::ThroughputOptions options;
  options.engine = EngineKind::kNative;
  options.db_class = DbClass::kTcSd;
  options.mpls = {1, 4};
  options.ops_per_session = 4;
  auto run = harness::ThroughputDriver(options).Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const harness::ThroughputReport& report = run.value();
  ASSERT_EQ(report.mpls.size(), 2u);
  EXPECT_TRUE(report.AllAnswersMatchSerial());
  EXPECT_EQ(report.mpls[0].failures, 0u);
  EXPECT_EQ(report.mpls[1].failures, 0u);
  EXPECT_EQ(report.mpls[0].ops, 4u);
  EXPECT_EQ(report.mpls[1].ops, 16u);
  EXPECT_GT(report.mpls[0].qps, 0.0);
  // Modeled throughput: MPL 4 must beat MPL 1 (the latency model sums
  // thread-CPU + attributed-I/O per session, so added clients scale the
  // aggregate until contention bites).
  EXPECT_GT(report.SpeedupAt(4), 1.5);
  // Percentiles come from the recorded per-statement latency histogram,
  // so they are positive and ordered.
  for (const harness::MplResult& row : report.mpls) {
    EXPECT_GT(row.mean_millis, 0.0);
    EXPECT_GT(row.p50_millis, 0.0);
    EXPECT_LE(row.p50_millis, row.p90_millis);
    EXPECT_LE(row.p90_millis, row.p99_millis);
    EXPECT_LE(row.p99_millis, row.p999_millis);
    EXPECT_TRUE(row.slo_ok);  // no SLO configured
  }
  EXPECT_TRUE(report.SloSatisfied());
  const std::string json = harness::ToJson(report);
  EXPECT_NE(json.find("\"answers_match_serial\":true"), std::string::npos);
  EXPECT_NE(json.find("\"p90_millis\""), std::string::npos);
  EXPECT_NE(json.find("\"p999_millis\""), std::string::npos);
  EXPECT_NE(json.find("\"slo_satisfied\":true"), std::string::npos);
}

TEST(ThroughputDriverTest, SloGateTripsOnTightThresholdOnly) {
  harness::ThroughputOptions options;
  options.engine = EngineKind::kNative;
  options.db_class = DbClass::kTcSd;
  options.mpls = {1};
  options.ops_per_session = 2;
  // No real statement finishes in a nanosecond: the gate must trip.
  options.slo_p99_millis = 1e-6;
  auto tight = harness::ThroughputDriver(options).Run();
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  EXPECT_FALSE(tight->SloSatisfied());
  ASSERT_EQ(tight->mpls.size(), 1u);
  EXPECT_FALSE(tight->mpls[0].slo_ok);
  EXPECT_NE(harness::ToJson(*tight).find("\"slo_satisfied\":false"),
            std::string::npos);
  // A generous threshold passes on the same workload.
  options.slo_p99_millis = 600000;
  auto generous = harness::ThroughputDriver(options).Run();
  ASSERT_TRUE(generous.ok()) << generous.status().ToString();
  EXPECT_TRUE(generous->SloSatisfied());
  EXPECT_TRUE(generous->mpls[0].slo_ok);
}

TEST(SessionProfileTest, CollectsPhaseAndOperatorTimes) {
  engines::NativeEngine engine;
  const auto db = SmallDb(DbClass::kTcSd);
  ASSERT_TRUE(workload::BulkLoad(engine, db).status.ok());
  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);
  workload::Session session(engine, db.db_class, params);
  workload::RunOptions options;
  options.cold = false;
  options.profile = true;
  workload::ExecutionResult first = session.Run(QueryId::kQ5, options);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_TRUE(first.profile.collected);
  // First execution compiles: the parse/analyze/plan phases were timed
  // and the plan cache missed.
  EXPECT_FALSE(first.profile.compile_cache_hit);
  EXPECT_GE(first.profile.plan_millis, 0.0);
  EXPECT_GT(first.profile.engine_millis, 0.0);
  EXPECT_GT(first.profile.exec_millis, 0.0);
  // The per-operator self times partition the operator tree's run time:
  // they must sum to the profiled execution time within 5%.
  ASSERT_FALSE(first.plan_stats.operators.empty());
  double self_sum = 0;
  for (const xquery::exec::OperatorStats& op : first.plan_stats.operators) {
    EXPECT_GE(op.self_millis, 0.0);
    EXPECT_LE(op.self_millis, op.millis + 1e-9);
    self_sum += op.self_millis;
  }
  EXPECT_EQ(first.plan_stats.operators[0].depth, 0);
  EXPECT_NEAR(self_sum, first.profile.exec_millis,
              std::max(0.05 * first.profile.exec_millis, 0.5));
  // Second execution of the same statement hits the plan cache, so the
  // compile phases report zero.
  workload::ExecutionResult second = session.Run(QueryId::kQ5, options);
  ASSERT_TRUE(second.status.ok());
  ASSERT_TRUE(second.profile.collected);
  EXPECT_TRUE(second.profile.compile_cache_hit);
  EXPECT_EQ(second.profile.parse_millis, 0.0);
  EXPECT_EQ(second.profile.analyze_millis, 0.0);
  EXPECT_EQ(second.profile.plan_millis, 0.0);
  // Without --profile the phase breakdown is not collected.
  workload::ExecutionResult plain =
      session.Run(QueryId::kQ5, workload::RunOptions());
  ASSERT_TRUE(plain.status.ok());
  EXPECT_FALSE(plain.profile.collected);
}

}  // namespace
}  // namespace xbench
