#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/schema_summary.h"

namespace xbench::xml {
namespace {

constexpr const char* kSampleDtd = R"(
<!ELEMENT r (a+, b?)>
<!ATTLIST r id CDATA #REQUIRED>
<!ATTLIST r opt CDATA #IMPLIED>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b EMPTY>
)";

TEST(DtdParseTest, ParsesDeclarations) {
  auto dtd = Dtd::Parse(kSampleDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->element_count(), 3u);
  const Dtd::ElementDecl* r = dtd->FindElement("r");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->model, Dtd::Model::kSequence);
  ASSERT_EQ(r->sequence.size(), 2u);
  EXPECT_EQ(r->sequence[0].name, "a");
  EXPECT_EQ(r->sequence[0].occurrence, '+');
  EXPECT_EQ(r->sequence[1].occurrence, '?');
  EXPECT_TRUE(r->attributes.at("id"));
  EXPECT_FALSE(r->attributes.at("opt"));
  EXPECT_EQ(dtd->FindElement("a")->model, Dtd::Model::kPcdata);
  EXPECT_EQ(dtd->FindElement("b")->model, Dtd::Model::kEmpty);
}

TEST(DtdParseTest, ParsesMixedModel) {
  auto dtd = Dtd::Parse("<!ELEMENT q (#PCDATA | em | b)*>");
  ASSERT_TRUE(dtd.ok());
  const Dtd::ElementDecl* q = dtd->FindElement("q");
  EXPECT_EQ(q->model, Dtd::Model::kMixed);
  EXPECT_EQ(q->mixed.size(), 2u);
  EXPECT_TRUE(q->mixed.count("em"));
}

TEST(DtdParseTest, RejectsMalformed) {
  EXPECT_FALSE(Dtd::Parse("").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT r").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT r ANY-WEIRD>").ok());
  EXPECT_FALSE(Dtd::Parse("<!ATTLIST nope id CDATA #REQUIRED>").ok());
  EXPECT_FALSE(Dtd::Parse("<!ENTITY x 'y'>").ok());
}

TEST(DtdParseTest, RejectsTruncatedDeclarations) {
  // Truncation anywhere inside a declaration is a Status error (fuzz
  // regressions: the parser must not scan past the end of input).
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT item (name, price").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a EMPTY>\n<!ATTLIST a id CDATA").ok());
  EXPECT_FALSE(Dtd::Parse("<!").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (#PCDATA)>\n<!ELEM").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b | ").ok());
}

class DtdValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = Dtd::Parse(kSampleDtd);
    ASSERT_TRUE(dtd.ok());
    dtd_ = std::make_unique<Dtd>(std::move(dtd).value());
  }

  Status ValidateText(const char* text) {
    auto doc = Parse(text, "t.xml");
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    return dtd_->Validate(*doc->root());
  }

  std::unique_ptr<Dtd> dtd_;
};

TEST_F(DtdValidateTest, AcceptsConformingDocuments) {
  EXPECT_TRUE(ValidateText(R"(<r id="1"><a>x</a></r>)").ok());
  EXPECT_TRUE(ValidateText(R"(<r id="1" opt="o"><a>x</a><a>y</a><b/></r>)")
                  .ok());
}

TEST_F(DtdValidateTest, RejectsViolations) {
  // Missing required attribute.
  EXPECT_FALSE(ValidateText(R"(<r><a>x</a></r>)").ok());
  // Undeclared attribute.
  EXPECT_FALSE(ValidateText(R"(<r id="1" zzz="1"><a>x</a></r>)").ok());
  // Missing mandatory child a.
  EXPECT_FALSE(ValidateText(R"(<r id="1"><b/></r>)").ok());
  // b repeated beyond its ? bound.
  EXPECT_FALSE(ValidateText(R"(<r id="1"><a>x</a><b/><b/></r>)").ok());
  // Wrong order.
  EXPECT_FALSE(ValidateText(R"(<r id="1"><b/><a>x</a></r>)").ok());
  // Undeclared element.
  EXPECT_FALSE(ValidateText(R"(<r id="1"><a>x</a><zzz/></r>)").ok());
  // Element inside (#PCDATA).
  EXPECT_FALSE(ValidateText(R"(<r id="1"><a><b/></a></r>)").ok());
  // Content in EMPTY.
  EXPECT_FALSE(ValidateText(R"(<r id="1"><a>x</a><b>t</b></r>)").ok());
}

/// The full loop the paper's companion report implies: infer the class
/// DTD from generated data, then every generated document validates
/// against it.
class InferredDtdTest : public ::testing::TestWithParam<datagen::DbClass> {};

TEST_P(InferredDtdTest, GeneratedDataValidatesAgainstInferredDtd) {
  datagen::GenConfig config;
  config.target_bytes = 96 * 1024;
  config.seed = 42;
  datagen::GeneratedDatabase db = datagen::Generate(GetParam(), config);

  SchemaSummary summary;
  for (const datagen::GeneratedDocument& doc : db.documents) {
    summary.AddDocument(doc.dom);
  }
  auto dtd = Dtd::Parse(summary.ToDtd());
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString() << "\n" << summary.ToDtd();

  for (const datagen::GeneratedDocument& doc : db.documents) {
    Status status = dtd->Validate(*doc.dom.root());
    EXPECT_TRUE(status.ok()) << doc.name << ": " << status.ToString();
  }
}

TEST_P(InferredDtdTest, MutatedDocumentFailsValidation) {
  datagen::GenConfig config;
  config.target_bytes = 32 * 1024;
  config.seed = 42;
  datagen::GeneratedDatabase db = datagen::Generate(GetParam(), config);
  SchemaSummary summary;
  for (const datagen::GeneratedDocument& doc : db.documents) {
    summary.AddDocument(doc.dom);
  }
  auto dtd = Dtd::Parse(summary.ToDtd());
  ASSERT_TRUE(dtd.ok());

  // Injecting an alien element must be caught.
  xml::Document mutated = db.documents[0].dom.Clone();
  mutated.root()->AddElement("alien_element_xyz");
  EXPECT_FALSE(dtd->Validate(*mutated.root()).ok());
}

INSTANTIATE_TEST_SUITE_P(AllClasses, InferredDtdTest,
                         ::testing::Values(datagen::DbClass::kTcSd,
                                           datagen::DbClass::kTcMd,
                                           datagen::DbClass::kDcSd,
                                           datagen::DbClass::kDcMd),
                         [](const auto& info) {
                           std::string name =
                               datagen::DbClassName(info.param);
                           name.erase(name.find('/'), 1);
                           return name;
                         });

}  // namespace
}  // namespace xbench::xml
