#include <gtest/gtest.h>

#include "xml/node.h"
#include "xml/parser.h"
#include "xml/schema_summary.h"
#include "xml/serializer.h"

namespace xbench::xml {
namespace {

// --- Node model ------------------------------------------------------------

TEST(NodeTest, BuildTree) {
  auto root = Node::Element("a");
  Node* b = root->AddElement("b");
  b->AddText("hello");
  root->SetAttribute("id", "1");

  EXPECT_TRUE(root->is_element());
  EXPECT_EQ(root->name(), "a");
  ASSERT_NE(root->FindAttribute("id"), nullptr);
  EXPECT_EQ(*root->FindAttribute("id"), "1");
  EXPECT_EQ(root->FindAttribute("nope"), nullptr);
  EXPECT_EQ(root->FirstChild("b"), b);
  EXPECT_EQ(b->parent(), root.get());
  EXPECT_EQ(root->TextContent(), "hello");
}

TEST(NodeTest, AddSimpleAndChildren) {
  auto root = Node::Element("r");
  root->AddSimple("x", "1");
  root->AddSimple("y", "2");
  root->AddSimple("x", "3");
  EXPECT_EQ(root->Children("x").size(), 2u);
  EXPECT_EQ(root->ChildElements().size(), 3u);
  EXPECT_EQ(root->FirstChild("y")->TextContent(), "2");
}

TEST(NodeTest, SubtreeSizeCountsAllNodes) {
  auto root = Node::Element("r");
  root->AddSimple("a", "t");  // element + text
  root->AddElement("b");
  EXPECT_EQ(root->SubtreeSize(), 4u);
}

TEST(NodeTest, CloneIsDeepAndEqual) {
  auto root = Node::Element("r");
  root->SetAttribute("k", "v");
  root->AddSimple("c", "text");
  auto copy = root->Clone();
  EXPECT_TRUE(root->StructurallyEquals(*copy));
  copy->SetAttribute("k", "other");
  EXPECT_FALSE(root->StructurallyEquals(*copy));
}

TEST(NodeTest, SetAttributeOverwrites) {
  auto root = Node::Element("r");
  root->SetAttribute("a", "1");
  root->SetAttribute("a", "2");
  EXPECT_EQ(root->attributes().size(), 1u);
  EXPECT_EQ(*root->FindAttribute("a"), "2");
}

TEST(DocumentTest, AssignOrderIsPreorder) {
  auto root = Node::Element("r");
  Node* a = root->AddElement("a");
  Node* aa = a->AddElement("aa");
  Node* b = root->AddElement("b");
  Document doc("d.xml", std::move(root));
  EXPECT_EQ(doc.root()->order(), 1u);
  EXPECT_EQ(a->order(), 2u);
  EXPECT_EQ(aa->order(), 3u);
  EXPECT_EQ(b->order(), 4u);
}

// --- Parser -----------------------------------------------------------------

TEST(ParserTest, ParsesSimpleDocument) {
  auto doc = Parse("<a><b>hi</b></a>", "t.xml");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root()->name(), "a");
  EXPECT_EQ(doc->root()->FirstChild("b")->TextContent(), "hi");
}

TEST(ParserTest, ParsesAttributes) {
  auto doc = Parse(R"(<a x="1" y='two'/>)", "t.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root()->FindAttribute("x"), "1");
  EXPECT_EQ(*doc->root()->FindAttribute("y"), "two");
}

TEST(ParserTest, DecodesEntities) {
  auto doc = Parse("<a>&lt;&gt;&amp;&apos;&quot;&#65;</a>", "t.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->TextContent(), "<>&'\"A");
}

TEST(ParserTest, DecodesHexCharRef) {
  auto doc = Parse("<a>&#x41;&#x e9;</a>", "t.xml");
  // Malformed hex with space is an unknown entity -> error; test clean one.
  auto good = Parse("<a>&#x41;</a>", "t.xml");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->root()->TextContent(), "A");
  (void)doc;
}

TEST(ParserTest, SkipsPrologCommentsAndPis) {
  auto doc = Parse(
      "<?xml version=\"1.0\"?><!-- c --><!DOCTYPE a [<!ELEMENT a ANY>]>"
      "<a><?pi data?><!-- inner -->x</a>",
      "t.xml");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root()->TextContent(), "x");
}

TEST(ParserTest, CdataIsVerbatim) {
  auto doc = Parse("<a><![CDATA[<not><markup>&amp;]]></a>", "t.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->TextContent(), "<not><markup>&amp;");
}

TEST(ParserTest, StripsIndentationWhitespace) {
  auto doc = Parse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>", "t.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->children().size(), 2u);
}

TEST(ParserTest, PreservesMixedContent) {
  auto doc = Parse("<a>before <b>mid</b> after</a>", "t.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->TextContent(), "before mid after");
  EXPECT_EQ(doc->root()->children().size(), 3u);
}

TEST(ParserTest, RejectsMismatchedTags) {
  auto doc = Parse("<a><b></a></b>", "t.xml");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kCorruption);
}

TEST(ParserTest, RejectsUnterminatedElement) {
  EXPECT_FALSE(Parse("<a><b>", "t.xml").ok());
}

TEST(ParserTest, RejectsDuplicateAttributes) {
  EXPECT_FALSE(Parse(R"(<a x="1" x="2"/>)", "t.xml").ok());
}

TEST(ParserTest, RejectsContentAfterRoot) {
  EXPECT_FALSE(Parse("<a/><b/>", "t.xml").ok());
}

TEST(ParserTest, RejectsUnknownEntity) {
  EXPECT_FALSE(Parse("<a>&unknown;</a>", "t.xml").ok());
}

TEST(ParserTest, ErrorsIncludeLocation) {
  auto doc = Parse("<a>\n<b>\n</c>\n</a>", "t.xml");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status().ToString();
}

TEST(ParserTest, CheckWellFormedMatchesParse) {
  EXPECT_TRUE(CheckWellFormed("<a><b/>text</a>").ok());
  EXPECT_FALSE(CheckWellFormed("<a><b/>").ok());
}

// --- Serializer --------------------------------------------------------------

TEST(SerializerTest, EscapesSpecialCharacters) {
  auto root = Node::Element("a");
  root->SetAttribute("q", "x\"<y");
  root->AddText("1 < 2 & 3 > 2");
  std::string out = Serialize(*root);
  EXPECT_EQ(out, "<a q=\"x&quot;&lt;y\">1 &lt; 2 &amp; 3 &gt; 2</a>");
}

TEST(SerializerTest, EmptyElementUsesSelfClosing) {
  auto root = Node::Element("empty");
  EXPECT_EQ(Serialize(*root), "<empty/>");
}

TEST(SerializerTest, RoundTripCompact) {
  const std::string text =
      R"(<order id="O1"><total>9.50</total><lines><line no="1">a &amp; b</line><line no="2"/></lines></order>)";
  auto doc = Parse(text, "t.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Serialize(*doc), text);
}

TEST(SerializerTest, ParseSerializeParseIsStable) {
  auto doc = Parse("<a>mixed <b>content</b> here</a>", "t.xml");
  ASSERT_TRUE(doc.ok());
  std::string once = Serialize(*doc);
  auto doc2 = Parse(once, "t.xml");
  ASSERT_TRUE(doc2.ok());
  EXPECT_TRUE(doc->root()->StructurallyEquals(*doc2->root()));
  EXPECT_EQ(once, Serialize(*doc2));
}

TEST(SerializerTest, IndentedOutputReparsesEquivalently) {
  auto doc = Parse("<a><b><c>x</c></b><d/></a>", "t.xml");
  ASSERT_TRUE(doc.ok());
  SerializeOptions options;
  options.indent = true;
  auto doc2 = Parse(Serialize(*doc, options), "t.xml");
  ASSERT_TRUE(doc2.ok());
  EXPECT_TRUE(doc->root()->StructurallyEquals(*doc2->root()));
}

// --- SchemaSummary -----------------------------------------------------------

TEST(SchemaSummaryTest, ComputesOccurrenceBounds) {
  SchemaSummary summary;
  auto d1 = Parse("<r><a/><a/><b/></r>", "1.xml");
  auto d2 = Parse("<r><a/></r>", "2.xml");
  summary.AddDocument(*d1);
  summary.AddDocument(*d2);

  auto children = summary.ChildrenOf("r");
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0].name, "a");
  EXPECT_EQ(children[0].min_occurs, 1);
  EXPECT_EQ(children[0].max_occurs, 2);
  EXPECT_EQ(children[1].name, "b");
  EXPECT_EQ(children[1].min_occurs, 0);  // absent in d2
  EXPECT_EQ(children[1].max_occurs, 1);
}

TEST(SchemaSummaryTest, TracksAttributesAndDepth) {
  SchemaSummary summary;
  auto doc = Parse(R"(<r id="1"><a k="x"><deep/></a></r>)", "1.xml");
  summary.AddDocument(*doc);
  EXPECT_EQ(summary.max_depth(), 3);
  auto attrs = summary.AttributesOf("a");
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0], "k");
}

TEST(SchemaSummaryTest, RendersTreeWithMarkers) {
  SchemaSummary summary;
  auto d1 = Parse("<r><a/><a/></r>", "1.xml");
  auto d2 = Parse("<r/>", "2.xml");
  summary.AddDocument(*d1);
  summary.AddDocument(*d2);
  std::string tree = summary.ToTree();
  EXPECT_NE(tree.find("r"), std::string::npos);
  EXPECT_NE(tree.find("? * a"), std::string::npos) << tree;
}

TEST(SchemaSummaryTest, EmitsDtd) {
  SchemaSummary summary;
  auto d1 = Parse(R"(<r id="1"><a>text</a><a>more</a><b/></r>)", "1.xml");
  auto d2 = Parse(R"(<r><a>x</a></r>)", "2.xml");
  summary.AddDocument(*d1);
  summary.AddDocument(*d2);
  std::string dtd = summary.ToDtd();
  // r comes first (root), children ordered with occurrence markers:
  // a appears 1..2 times -> a+; b is optional -> b?.
  EXPECT_NE(dtd.find("<!ELEMENT r (a+, b?)>"), std::string::npos) << dtd;
  EXPECT_NE(dtd.find("<!ELEMENT a (#PCDATA)>"), std::string::npos) << dtd;
  EXPECT_NE(dtd.find("<!ELEMENT b EMPTY>"), std::string::npos) << dtd;
  // id appears on 1 of 2 r instances -> #IMPLIED.
  EXPECT_NE(dtd.find("<!ATTLIST r id CDATA #IMPLIED>"), std::string::npos)
      << dtd;
}

TEST(SchemaSummaryTest, DtdMixedContentAndRequiredAttrs) {
  SchemaSummary summary;
  auto doc = Parse(R"(<q k="1">text <em>word</em> tail</q>)", "1.xml");
  summary.AddDocument(*doc);
  std::string dtd = summary.ToDtd();
  EXPECT_NE(dtd.find("<!ELEMENT q (#PCDATA | em)*>"), std::string::npos)
      << dtd;
  EXPECT_NE(dtd.find("<!ATTLIST q k CDATA #REQUIRED>"), std::string::npos)
      << dtd;
}

TEST(SchemaSummaryTest, HandlesRecursiveTypes) {
  SchemaSummary summary;
  auto doc = Parse("<sec><sec><sec/></sec></sec>", "1.xml");
  summary.AddDocument(*doc);
  // Must terminate and include the type once.
  std::string tree = summary.ToTree();
  EXPECT_NE(tree.find("sec"), std::string::npos);
}

// --- Parser hardening (fuzz regressions) -----------------------------------

TEST(ParserHardeningTest, RejectsExcessiveElementDepth) {
  std::string open, close;
  for (int i = 0; i < 300; ++i) {
    open += "<a>";
    close += "</a>";
  }
  auto doc = Parse(open + "x" + close, "deep.xml");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("nesting"), std::string::npos)
      << doc.status().ToString();
}

TEST(ParserHardeningTest, AcceptsDepthUnderTheLimit) {
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<a>";
    close += "</a>";
  }
  EXPECT_TRUE(Parse(open + "x" + close, "ok.xml").ok());
}

TEST(ParserHardeningTest, RejectsMalformedCharacterReferences) {
  // Empty, junk-suffixed, overflowing, non-BMP, digitless-hex, and NUL
  // references must all be Status errors, never UB or silent truncation.
  EXPECT_FALSE(Parse("<a>&#;</a>", "t.xml").ok());
  EXPECT_FALSE(Parse("<a>&#12junk;</a>", "t.xml").ok());
  EXPECT_FALSE(Parse("<a>&#99999999999999999999;</a>", "t.xml").ok());
  EXPECT_FALSE(Parse("<a>&#x1F600;</a>", "t.xml").ok());
  EXPECT_FALSE(Parse("<a>&#x;</a>", "t.xml").ok());
  EXPECT_FALSE(Parse("<a>&#0;</a>", "t.xml").ok());
}

TEST(ParserHardeningTest, CheckWellFormedAgreesWithParseOnHardInputs) {
  const char* inputs[] = {
      "<a>&#;</a>", "<root><child attr=\"v", "<root/><!-- never closed",
      "<a>&#x41;</a>",
  };
  for (const char* input : inputs) {
    EXPECT_EQ(Parse(input, "t.xml").ok(), CheckWellFormed(input).ok())
        << input;
  }
}

}  // namespace
}  // namespace xbench::xml
