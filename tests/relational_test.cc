#include <gtest/gtest.h>

#include <algorithm>

#include "relational/btree.h"
#include "relational/exec.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"

namespace xbench::relational {
namespace {

// --- Value -------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);  // numeric widening
}

TEST(ValueTest, CompareOrdersNullNumericString) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::String("0"));
  EXPECT_LT(Value::Int(2), Value::Int(3));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));  // cross-numeric equality
}

TEST(ValueTest, SqlEqualsNullNeverMatches) {
  EXPECT_FALSE(Value::SqlEquals(Value::Null(), Value::Null()));
  EXPECT_FALSE(Value::SqlEquals(Value::Null(), Value::Int(1)));
  EXPECT_TRUE(Value::SqlEquals(Value::Int(1), Value::Int(1)));
}

TEST(ValueTest, ToText) {
  EXPECT_EQ(Value::Null().ToText(), "");
  EXPECT_EQ(Value::Int(42).ToText(), "42");
  EXPECT_EQ(Value::Double(2.5).ToText(), "2.5");
  EXPECT_EQ(Value::Double(3.0).ToText(), "3");
  EXPECT_EQ(Value::String("hi").ToText(), "hi");
}

// --- Schema / row codec -------------------------------------------------------

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"name", ValueType::kString},
                 {"price", ValueType::kDouble}});
}

TEST(SchemaTest, ValidateChecksArityAndTypes) {
  Schema schema = TestSchema();
  EXPECT_TRUE(schema
                  .Validate({Value::Int(1), Value::String("a"),
                             Value::Double(1.0)})
                  .ok());
  EXPECT_TRUE(schema.Validate({Value::Null(), Value::Null(), Value::Null()})
                  .ok());  // NULLs match any column
  EXPECT_TRUE(schema
                  .Validate({Value::Int(1), Value::String("a"), Value::Int(2)})
                  .ok());  // int accepted in double column
  EXPECT_FALSE(schema.Validate({Value::Int(1)}).ok());
  EXPECT_FALSE(schema
                   .Validate({Value::String("x"), Value::String("a"),
                              Value::Double(1.0)})
                   .ok());
}

TEST(SchemaTest, IndexOf) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.IndexOf("name"), 1);
  EXPECT_EQ(schema.IndexOf("missing"), -1);
}

TEST(RowCodecTest, RoundTripsAllTypes) {
  Row row{Value::Int(-5), Value::String("hello \xE2\x82\xAC"),
          Value::Double(3.25), Value::Null()};
  auto decoded = DecodeRow(EncodeRow(row));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), row.size());
  EXPECT_EQ((*decoded)[0], row[0]);
  EXPECT_EQ((*decoded)[1], row[1]);
  EXPECT_EQ((*decoded)[2], row[2]);
  EXPECT_TRUE((*decoded)[3].is_null());
}

TEST(RowCodecTest, RejectsTruncatedPayload) {
  Row row{Value::String("abcdef")};
  std::string payload = EncodeRow(row);
  payload.resize(payload.size() - 3);
  EXPECT_FALSE(DecodeRow(payload).ok());
}

// --- BTree ----------------------------------------------------------------------

TEST(BTreeTest, InsertAndLookup) {
  VirtualClock clock;
  BTreeIndex tree(clock);
  for (int i = 0; i < 500; ++i) {
    tree.Insert({Value::Int(i % 100)}, static_cast<storage::RecordId>(i));
  }
  EXPECT_EQ(tree.entry_count(), 500u);
  auto rids = tree.Lookup({Value::Int(37)});
  ASSERT_EQ(rids.size(), 5u);
  // Duplicates preserve insertion order.
  EXPECT_EQ(rids[0], 37u);
  EXPECT_EQ(rids[4], 437u);
  EXPECT_TRUE(tree.Lookup({Value::Int(1000)}).empty());
}

TEST(BTreeTest, SplitsGrowHeight) {
  VirtualClock clock;
  BTreeIndex tree(clock);
  for (int i = 0; i < 5000; ++i) {
    tree.Insert({Value::Int(i)}, static_cast<storage::RecordId>(i));
  }
  EXPECT_GE(tree.height(), 2);
  for (int i : {0, 1, 2500, 4999}) {
    auto rids = tree.Lookup({Value::Int(i)});
    ASSERT_EQ(rids.size(), 1u) << i;
    EXPECT_EQ(rids[0], static_cast<storage::RecordId>(i));
  }
}

TEST(BTreeTest, RangeScanInKeyOrder) {
  VirtualClock clock;
  BTreeIndex tree(clock);
  // Insert in reverse to exercise sorting.
  for (int i = 999; i >= 0; --i) {
    tree.Insert({Value::Int(i)}, static_cast<storage::RecordId>(i));
  }
  Key lo{Value::Int(100)};
  Key hi{Value::Int(110)};
  std::vector<int64_t> seen;
  tree.Range(&lo, &hi, [&](const Key& key, storage::RecordId) {
    seen.push_back(key[0].AsInt());
    return true;
  });
  ASSERT_EQ(seen.size(), 11u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), 100);
  EXPECT_EQ(seen.back(), 110);
}

TEST(BTreeTest, UnboundedRangeVisitsAll) {
  VirtualClock clock;
  BTreeIndex tree(clock);
  for (int i = 0; i < 300; ++i) {
    tree.Insert({Value::String("k" + std::to_string(i))}, i);
  }
  size_t count = 0;
  tree.Range(nullptr, nullptr, [&](const Key&, storage::RecordId) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 300u);
}

TEST(BTreeTest, LookupsChargeClock) {
  VirtualClock clock;
  BTreeIndex tree(clock);
  for (int i = 0; i < 2000; ++i) tree.Insert({Value::Int(i)}, i);
  const uint64_t before = clock.ElapsedMicros();
  tree.Lookup({Value::Int(1234)});
  EXPECT_GT(clock.ElapsedMicros(), before);
}

TEST(BTreeTest, CompositeKeys) {
  VirtualClock clock;
  BTreeIndex tree(clock);
  tree.Insert({Value::String("a"), Value::Int(1)}, 1);
  tree.Insert({Value::String("a"), Value::Int(2)}, 2);
  tree.Insert({Value::String("b"), Value::Int(1)}, 3);
  EXPECT_EQ(tree.Lookup({Value::String("a"), Value::Int(2)}).size(), 1u);
  EXPECT_EQ(tree.Lookup({Value::String("a"), Value::Int(3)}).size(), 0u);
}

// --- Table / Database -------------------------------------------------------------

struct TableFixture : public ::testing::Test {
  TableFixture() : pool(disk, 64), db(disk, pool) {}

  storage::SimulatedDisk disk;
  storage::BufferPool pool;
  Database db;
};

TEST_F(TableFixture, InsertFetchScan) {
  Table* table = *db.CreateTable("t", TestSchema());
  auto rid1 = table->Insert({Value::Int(1), Value::String("a"), Value::Double(1.5)});
  ASSERT_TRUE(rid1.ok());
  auto rid2 = table->Insert({Value::Int(2), Value::String("b"), Value::Double(2.5)});
  ASSERT_TRUE(rid2.ok());

  auto row = table->Fetch(*rid2);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "b");

  int count = 0;
  table->Scan([&](storage::RecordId, const Row&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(table->row_count(), 2u);
}

TEST_F(TableFixture, InsertValidates) {
  Table* table = *db.CreateTable("t", TestSchema());
  EXPECT_FALSE(table->Insert({Value::Int(1)}).ok());
}

TEST_F(TableFixture, IndexMaintainedOnInsert) {
  Table* table = *db.CreateTable("t", TestSchema());
  ASSERT_TRUE(table->CreateIndex("by_name", {"name"}).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(table
                    ->Insert({Value::Int(i),
                              Value::String("n" + std::to_string(i % 10)),
                              Value::Double(0)})
                    .ok());
  }
  RowSet rows = IndexLookup(*table, "by_name", {Value::String("n3")});
  EXPECT_EQ(rows.size(), 5u);
  for (const Row& row : rows) EXPECT_EQ(row[1].AsString(), "n3");
}

TEST_F(TableFixture, CreateIndexBackfillsExistingRows) {
  Table* table = *db.CreateTable("t", TestSchema());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        table->Insert({Value::Int(i), Value::String("x"), Value::Double(0)})
            .ok());
  }
  ASSERT_TRUE(table->CreateIndex("by_id", {"id"}).ok());
  EXPECT_EQ(IndexLookup(*table, "by_id", {Value::Int(7)}).size(), 1u);
}

TEST_F(TableFixture, DuplicateTableAndIndexRejected) {
  ASSERT_TRUE(db.CreateTable("t", TestSchema()).ok());
  EXPECT_FALSE(db.CreateTable("t", TestSchema()).ok());
  Table* table = db.FindTable("t");
  ASSERT_TRUE(table->CreateIndex("i", {"id"}).ok());
  EXPECT_FALSE(table->CreateIndex("i", {"id"}).ok());
  EXPECT_FALSE(table->CreateIndex("j", {"nope"}).ok());
}

// --- exec helpers ---------------------------------------------------------------

TEST_F(TableFixture, SeqScanWithPredicate) {
  Table* table = *db.CreateTable("t", TestSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    ->Insert({Value::Int(i), Value::String("r"),
                              Value::Double(i * 1.0)})
                    .ok());
  }
  RowSet rows = SeqScan(*table, [](const Row& row) {
    return row[0].AsInt() % 2 == 0;
  });
  EXPECT_EQ(rows.size(), 5u);
}

TEST(ExecTest, SortRowsMultiKey) {
  RowSet rows{{Value::String("b"), Value::Int(1)},
              {Value::String("a"), Value::Int(2)},
              {Value::String("a"), Value::Int(1)}};
  SortRows(rows, {{0, true, false}, {1, false, false}});
  EXPECT_EQ(rows[0][0].AsString(), "a");
  EXPECT_EQ(rows[0][1].AsInt(), 2);
  EXPECT_EQ(rows[1][1].AsInt(), 1);
  EXPECT_EQ(rows[2][0].AsString(), "b");
}

TEST(ExecTest, SortRowsNumericStrings) {
  RowSet rows{{Value::String("10")}, {Value::String("9")}, {Value::String("100")}};
  SortRows(rows, {{0, true, true}});
  EXPECT_EQ(rows[0][0].AsString(), "9");
  EXPECT_EQ(rows[2][0].AsString(), "100");
}

TEST(ExecTest, HashJoinMatchesAndSkipsNulls) {
  RowSet left{{Value::Int(1), Value::String("L1")},
              {Value::Int(2), Value::String("L2")},
              {Value::Null(), Value::String("LN")}};
  RowSet right{{Value::Int(2), Value::String("R2")},
               {Value::Int(2), Value::String("R2b")},
               {Value::Int(3), Value::String("R3")}};
  RowSet joined = HashJoin(left, 0, right, 0);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined[0][1].AsString(), "L2");
  EXPECT_EQ(joined[0][3].AsString(), "R2");
}

TEST(ExecTest, LeftOuterJoinPadsNulls) {
  RowSet left{{Value::Int(1)}, {Value::Int(2)}};
  RowSet right{{Value::Int(2), Value::String("match")}};
  RowSet joined = LeftOuterHashJoin(left, 0, right, 0, 2);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_TRUE(joined[0][1].is_null());
  EXPECT_EQ(joined[1][2].AsString(), "match");
}

TEST(ExecTest, GroupCountAndDistinct) {
  RowSet rows{{Value::String("x")}, {Value::String("y")}, {Value::String("x")}};
  RowSet groups = GroupCount(rows, 0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0][0].AsString(), "x");
  EXPECT_EQ(groups[0][1].AsInt(), 2);

  RowSet unique = Distinct(rows);
  EXPECT_EQ(unique.size(), 2u);
}

TEST(ExecTest, Project) {
  RowSet rows{{Value::Int(1), Value::String("a"), Value::Double(2.0)}};
  RowSet projected = Project(rows, {2, 0});
  ASSERT_EQ(projected.size(), 1u);
  ASSERT_EQ(projected[0].size(), 2u);
  EXPECT_DOUBLE_EQ(projected[0][0].AsDouble(), 2.0);
  EXPECT_EQ(projected[0][1].AsInt(), 1);
}

}  // namespace
}  // namespace xbench::relational
