#include <gtest/gtest.h>

#include <set>

#include "datagen/article_generator.h"
#include "datagen/dictionary_generator.h"
#include "datagen/generator.h"
#include "datagen/template_engine.h"
#include "datagen/word_pool.h"
#include "stats/corpus_analyzer.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xbench::datagen {
namespace {

constexpr uint64_t kTestBytes = 96 * 1024;

// --- WordPool ----------------------------------------------------------------

TEST(WordPoolTest, DeterministicWords) {
  WordPool a;
  WordPool b;
  EXPECT_EQ(a.WordAt(1), b.WordAt(1));
  EXPECT_EQ(a.WordAt(100), b.WordAt(100));
  EXPECT_NE(a.WordAt(1), a.WordAt(2));
}

TEST(WordPoolTest, ZipfFavorsLowRanks) {
  WordPool pool(1000, 1.0);
  Rng rng(1);
  int rank1 = 0;
  int rank500 = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::string& w = pool.RandomWord(rng);
    if (w == pool.WordAt(1)) ++rank1;
    if (w == pool.WordAt(500)) ++rank500;
  }
  EXPECT_GT(rank1, rank500 * 10);
}

TEST(WordPoolTest, SentenceShape) {
  WordPool pool;
  Rng rng(2);
  std::string s = pool.Sentence(rng, 3, 5);
  EXPECT_EQ(s.back(), '.');
  // 3..5 words -> 2..4 spaces.
  const auto spaces = std::count(s.begin(), s.end(), ' ');
  EXPECT_GE(spaces, 2);
  EXPECT_LE(spaces, 4);
}

TEST(WordPoolTest, DateFormat) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::string d = WordPool::RandomDate(rng, 1990, 2000);
    ASSERT_EQ(d.size(), 10u);
    EXPECT_EQ(d[4], '-');
    EXPECT_EQ(d[7], '-');
    EXPECT_GE(d.substr(0, 4), "1990");
    EXPECT_LE(d.substr(0, 4), "2000");
  }
}

// --- Template engine ------------------------------------------------------------

TEST(TemplateEngineTest, CountsAndPresence) {
  WordPool words;
  Rng rng(7);
  GenContext ctx(rng, words);
  TemplateNode root;
  root.name = "r";
  TemplateNode* child = root.AddChild("c", stats::MakeUniform(2, 4));
  child->text = [](GenContext&) { return std::string("x"); };
  root.AddChild("opt", nullptr, /*presence=*/0.0);

  auto node = Instantiate(root, ctx);
  const size_t n = node->Children("c").size();
  EXPECT_GE(n, 2u);
  EXPECT_LE(n, 4u);
  EXPECT_TRUE(node->Children("opt").empty());
}

TEST(TemplateEngineTest, AttributesAndCounters) {
  WordPool words;
  Rng rng(7);
  GenContext ctx(rng, words);
  TemplateNode root;
  root.name = "r";
  root.SetAttr("id", [](GenContext& c) {
    return "N" + std::to_string(c.NextCounter("n"));
  });
  auto first = Instantiate(root, ctx);
  auto second = Instantiate(root, ctx);
  EXPECT_EQ(*first->FindAttribute("id"), "N1");
  EXPECT_EQ(*second->FindAttribute("id"), "N2");
}

TEST(TemplateEngineTest, RecursionBounded) {
  WordPool words;
  Rng rng(7);
  GenContext ctx(rng, words);
  TemplateNode sec;
  sec.name = "sec";
  sec.AddRef(&sec, stats::MakeUniform(1, 1), 1.0, /*max_depth=*/3);
  auto node = Instantiate(sec, ctx);
  int depth = 1;
  const xml::Node* cur = node.get();
  while ((cur = cur->FirstChild("sec")) != nullptr) ++depth;
  // The root plus max_depth levels of self-reference.
  EXPECT_EQ(depth, 4);
}

// --- Dictionary (TC/SD) -----------------------------------------------------------

TEST(DictionaryTest, SizeAndStructure) {
  WordPool words;
  DictionaryResult result = GenerateDictionary(kTestBytes, 42, words);
  EXPECT_GT(result.entry_num, 10);
  EXPECT_EQ(result.doc.root()->name(), "dictionary");
  const auto entries = result.doc.root()->Children("entry");
  EXPECT_EQ(static_cast<int64_t>(entries.size()), result.entry_num);

  // Headwords and ids follow the deterministic naming scheme.
  EXPECT_EQ(entries[0]->FirstChild("hw")->TextContent(),
            DictionaryHeadword(1));
  EXPECT_EQ(*entries[0]->FindAttribute("id"), DictionaryEntryId(1));

  const std::string text = xml::Serialize(result.doc);
  EXPECT_GE(text.size(), kTestBytes);
  EXPECT_LT(text.size(), kTestBytes * 2);
  // Output is well-formed.
  EXPECT_TRUE(xml::CheckWellFormed(text).ok());
}

TEST(DictionaryTest, DeterministicForSeed) {
  WordPool words;
  auto a = GenerateDictionary(32 * 1024, 7, words);
  auto b = GenerateDictionary(32 * 1024, 7, words);
  EXPECT_EQ(xml::Serialize(a.doc), xml::Serialize(b.doc));
  auto c = GenerateDictionary(32 * 1024, 8, words);
  EXPECT_NE(xml::Serialize(a.doc), xml::Serialize(c.doc));
}

TEST(DictionaryTest, EntriesHaveSensesAndQuotes) {
  WordPool words;
  auto result = GenerateDictionary(kTestBytes, 42, words);
  int with_sense = 0;
  int with_quote = 0;
  int with_mixed_qt = 0;
  for (const xml::Node* entry : result.doc.root()->Children("entry")) {
    if (entry->FirstChild("sn") != nullptr) ++with_sense;
    bool quote = false;
    bool mixed = false;
    entry->Visit([&](const xml::Node& n) {
      if (n.is_element() && n.name() == "q") quote = true;
      if (n.is_element() && n.name() == "qt" &&
          n.FirstChild("em") != nullptr) {
        mixed = true;
      }
    });
    if (quote) ++with_quote;
    if (mixed) ++with_mixed_qt;
  }
  EXPECT_EQ(with_sense, result.entry_num);  // >=1 sense each
  EXPECT_GT(with_quote, result.entry_num / 3);
  EXPECT_GT(with_mixed_qt, 0);  // mixed content exists (paper problem 3)
}

TEST(DictionaryTest, CrossReferencesPointToExistingEntries) {
  WordPool words;
  auto result = GenerateDictionary(kTestBytes, 42, words);
  std::set<std::string> ids;
  for (const xml::Node* entry : result.doc.root()->Children("entry")) {
    ids.insert(*entry->FindAttribute("id"));
  }
  result.doc.root()->Visit([&](const xml::Node& n) {
    if (n.is_element() && n.name() == "ref") {
      const std::string* to = n.FindAttribute("to");
      ASSERT_NE(to, nullptr);
      EXPECT_TRUE(ids.count(*to)) << *to;
    }
  });
}

// --- Articles (TC/MD) ----------------------------------------------------------------

TEST(ArticlesTest, CollectionShape) {
  WordPool words;
  ArticlesResult result = GenerateArticles(kTestBytes, 42, words);
  EXPECT_GT(result.article_num, 5);
  EXPECT_EQ(static_cast<int64_t>(result.docs.size()), result.article_num);
  for (const xml::Document& doc : result.docs) {
    EXPECT_EQ(doc.root()->name(), "article");
    ASSERT_NE(doc.root()->FirstChild("prolog"), nullptr);
    ASSERT_NE(doc.root()->FirstChild("body"), nullptr);
  }
}

TEST(ArticlesTest, FirstSectionIsIntroduction) {
  WordPool words;
  auto result = GenerateArticles(kTestBytes, 42, words);
  for (const xml::Document& doc : result.docs) {
    const xml::Node* body = doc.root()->FirstChild("body");
    const auto secs = body->Children("sec");
    ASSERT_FALSE(secs.empty());
    EXPECT_EQ(secs[0]->FirstChild("heading")->TextContent(), "Introduction");
  }
}

TEST(ArticlesTest, WellKnownAuthorAppearsPeriodically) {
  WordPool words;
  auto result = GenerateArticles(kTestBytes, 42, words);
  int count = 0;
  for (const xml::Document& doc : result.docs) {
    doc.root()->Visit([&](const xml::Node& n) {
      if (n.is_element() && n.name() == "name" &&
          n.TextContent() == WellKnownAuthor()) {
        ++count;
      }
    });
  }
  EXPECT_GE(count, result.article_num / kWellKnownAuthorStride);
}

TEST(ArticlesTest, ContactIrregularityExists) {
  WordPool words;
  auto result = GenerateArticles(2 * kTestBytes, 42, words);
  int absent = 0;
  int empty = 0;
  int populated = 0;
  for (const xml::Document& doc : result.docs) {
    doc.root()->Visit([&](const xml::Node& n) {
      if (!n.is_element() || n.name() != "author") return;
      const xml::Node* contact = n.FirstChild("contact");
      if (contact == nullptr) {
        ++absent;
      } else if (contact->children().empty()) {
        ++empty;
      } else {
        ++populated;
      }
    });
  }
  EXPECT_GT(absent, 0);
  EXPECT_GT(empty, 0);      // Q15's target
  EXPECT_GT(populated, 0);
}

TEST(ArticlesTest, SectionsNestRecursively) {
  WordPool words;
  auto result = GenerateArticles(4 * kTestBytes, 42, words);
  bool nested = false;
  for (const xml::Document& doc : result.docs) {
    doc.root()->Visit([&](const xml::Node& n) {
      if (n.is_element() && n.name() == "sec" &&
          n.FirstChild("sec") != nullptr) {
        nested = true;
      }
    });
  }
  EXPECT_TRUE(nested);
}

// --- Facade -------------------------------------------------------------------------

class GenerateAllClassesTest
    : public ::testing::TestWithParam<DbClass> {};

TEST_P(GenerateAllClassesTest, ProducesWellFormedSizedDatabase) {
  GenConfig config;
  config.target_bytes = kTestBytes;
  config.seed = 42;
  GeneratedDatabase db = Generate(GetParam(), config);
  EXPECT_EQ(db.db_class, GetParam());
  ASSERT_FALSE(db.documents.empty());
  EXPECT_GE(db.total_bytes, kTestBytes / 2);
  EXPECT_LE(db.total_bytes, kTestBytes * 3);
  for (const GeneratedDocument& doc : db.documents) {
    EXPECT_FALSE(doc.name.empty());
    EXPECT_TRUE(xml::CheckWellFormed(doc.text).ok()) << doc.name;
  }
  const bool single_doc =
      GetParam() == DbClass::kTcSd || GetParam() == DbClass::kDcSd;
  if (single_doc) {
    EXPECT_EQ(db.documents.size(), 1u);
  } else {
    EXPECT_GT(db.documents.size(), 5u);
  }
}

TEST_P(GenerateAllClassesTest, DeterministicAcrossRuns) {
  GenConfig config;
  config.target_bytes = 32 * 1024;
  config.seed = 11;
  GeneratedDatabase a = Generate(GetParam(), config);
  GeneratedDatabase b = Generate(GetParam(), config);
  ASSERT_EQ(a.documents.size(), b.documents.size());
  for (size_t i = 0; i < a.documents.size(); ++i) {
    EXPECT_EQ(a.documents[i].text, b.documents[i].text);
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, GenerateAllClassesTest,
                         ::testing::Values(DbClass::kTcSd, DbClass::kTcMd,
                                           DbClass::kDcSd, DbClass::kDcMd),
                         [](const auto& info) {
                           std::string name = DbClassName(info.param);
                           name.erase(name.find('/'), 1);
                           return name;
                         });

TEST(GenerateTest, TextCentricityDistinguishesClasses) {
  GenConfig config;
  config.target_bytes = kTestBytes;

  auto text_ratio = [&](DbClass cls) {
    GeneratedDatabase db = Generate(cls, config);
    stats::CorpusAnalyzer analyzer(DbClassName(cls));
    for (const GeneratedDocument& doc : db.documents) {
      analyzer.AddDocument(doc.dom, doc.text.size());
    }
    return analyzer.stats().TextRatio();
  };

  // TC classes carry substantially more character data than DC classes —
  // the defining axis of the paper's classification.
  EXPECT_GT(text_ratio(DbClass::kTcSd), text_ratio(DbClass::kDcMd));
  EXPECT_GT(text_ratio(DbClass::kTcMd), text_ratio(DbClass::kDcMd));
}

}  // namespace
}  // namespace xbench::datagen
