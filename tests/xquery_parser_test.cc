#include <gtest/gtest.h>

#include "xquery/parser.h"

namespace xbench::xquery {
namespace {

ExprPtr MustParse(std::string_view query) {
  auto result = ParseQuery(query);
  EXPECT_TRUE(result.ok()) << query << " -> " << result.status().ToString();
  if (!result.ok()) return nullptr;
  return std::move(result).value();
}

TEST(ParserTest, Literals) {
  auto e = MustParse(R"("hello")");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, ExprKind::kStringLiteral);
  EXPECT_EQ(e->string_value, "hello");

  e = MustParse("3.5");
  EXPECT_EQ(e->kind, ExprKind::kNumberLiteral);
  EXPECT_DOUBLE_EQ(e->number_value, 3.5);
}

TEST(ParserTest, VariableAndPath) {
  auto e = MustParse("$doc/a//b/@id");
  ASSERT_EQ(e->kind, ExprKind::kPath);
  ASSERT_NE(e->path_root, nullptr);
  EXPECT_EQ(e->path_root->kind, ExprKind::kVariable);
  // a, descendant-or-self::*, b, @id
  ASSERT_EQ(e->steps.size(), 4u);
  EXPECT_EQ(e->steps[0].axis, Axis::kChild);
  EXPECT_EQ(e->steps[0].name_test, "a");
  EXPECT_EQ(e->steps[1].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(e->steps[2].name_test, "b");
  EXPECT_EQ(e->steps[3].axis, Axis::kAttribute);
  EXPECT_EQ(e->steps[3].name_test, "id");
}

TEST(ParserTest, PredicatesOnSteps) {
  auto e = MustParse(R"($d/item[@id = "I1"][2]/title)");
  ASSERT_EQ(e->kind, ExprKind::kPath);
  ASSERT_EQ(e->steps.size(), 2u);
  EXPECT_EQ(e->steps[0].predicates.size(), 2u);
  EXPECT_EQ(e->steps[0].predicates[1]->kind, ExprKind::kNumberLiteral);
}

TEST(ParserTest, FilterOnPrimary) {
  auto e = MustParse("($d//q)[1]");
  ASSERT_EQ(e->kind, ExprKind::kFilter);
  EXPECT_EQ(e->children.size(), 1u);
}

TEST(ParserTest, FilterThenSteps) {
  auto e = MustParse("($d/body/sec)[1]/heading");
  ASSERT_EQ(e->kind, ExprKind::kPath);
  ASSERT_NE(e->path_root, nullptr);
  EXPECT_EQ(e->path_root->kind, ExprKind::kFilter);
  ASSERT_EQ(e->steps.size(), 1u);
  EXPECT_EQ(e->steps[0].name_test, "heading");
}

TEST(ParserTest, FlworFull) {
  auto e = MustParse(
      R"(for $a in $input, $b in $a/x let $t := $b/title
where $t = "x" order by $t descending return $t)");
  ASSERT_EQ(e->kind, ExprKind::kFlwor);
  EXPECT_EQ(e->for_clauses.size(), 2u);
  EXPECT_EQ(e->let_clauses.size(), 1u);
  EXPECT_EQ(e->clause_order, "ffl");
  ASSERT_NE(e->where, nullptr);
  ASSERT_EQ(e->order_by.size(), 1u);
  EXPECT_FALSE(e->order_by[0].ascending);
  ASSERT_NE(e->return_expr, nullptr);
}

TEST(ParserTest, FlworAtVariable) {
  auto e = MustParse("for $x at $i in $input return $i");
  ASSERT_EQ(e->kind, ExprKind::kFlwor);
  EXPECT_EQ(e->for_clauses[0].position_variable, "i");
}

TEST(ParserTest, NumericOrderKeyDetected) {
  auto e = MustParse("for $x in $i order by number($x/size) return $x");
  ASSERT_EQ(e->order_by.size(), 1u);
  EXPECT_TRUE(e->order_by[0].numeric);
}

TEST(ParserTest, Quantified) {
  auto e = MustParse(R"(some $p in $a//p satisfies contains($p, "k"))");
  ASSERT_EQ(e->kind, ExprKind::kQuantified);
  EXPECT_FALSE(e->quantifier_every);
  auto e2 = MustParse(R"(every $c in $x satisfies $c = "z")");
  EXPECT_TRUE(e2->quantifier_every);
}

TEST(ParserTest, IfThenElse) {
  auto e = MustParse(R"(if ($x = 1) then "a" else "b")");
  ASSERT_EQ(e->kind, ExprKind::kIfThenElse);
}

TEST(ParserTest, OperatorsAndPrecedence) {
  auto e = MustParse("$a = 1 + 2 * 3");
  ASSERT_EQ(e->kind, ExprKind::kComparison);
  ASSERT_EQ(e->rhs->kind, ExprKind::kArithmetic);
  EXPECT_EQ(e->rhs->arith_op, ArithOp::kAdd);
  EXPECT_EQ(e->rhs->rhs->arith_op, ArithOp::kMul);
}

TEST(ParserTest, LogicalPrecedence) {
  auto e = MustParse("$a = 1 and $b = 2 or $c = 3");
  ASSERT_EQ(e->kind, ExprKind::kLogical);
  EXPECT_EQ(e->logical_op, LogicalOp::kOr);
  EXPECT_EQ(e->lhs->kind, ExprKind::kLogical);
  EXPECT_EQ(e->lhs->logical_op, LogicalOp::kAnd);
}

TEST(ParserTest, FunctionCalls) {
  auto e = MustParse(R"(count($x//item))");
  ASSERT_EQ(e->kind, ExprKind::kFunctionCall);
  EXPECT_EQ(e->function_name, "count");
  ASSERT_EQ(e->children.size(), 1u);
  auto e2 = MustParse(R"(concat("a", "b", "c"))");
  EXPECT_EQ(e2->children.size(), 3u);
}

TEST(ParserTest, EmptySequence) {
  auto e = MustParse("()");
  ASSERT_EQ(e->kind, ExprKind::kSequence);
  EXPECT_TRUE(e->children.empty());
}

TEST(ParserTest, CommaSequence) {
  auto e = MustParse("1, 2, 3");
  ASSERT_EQ(e->kind, ExprKind::kSequence);
  EXPECT_EQ(e->children.size(), 3u);
}

TEST(ParserTest, DirectConstructorSimple) {
  auto e = MustParse("<result/>");
  ASSERT_EQ(e->kind, ExprKind::kConstructor);
  EXPECT_EQ(e->element_name, "result");
}

TEST(ParserTest, ConstructorWithContent) {
  auto e = MustParse(R"(<r a="1" b="{$x}">text {$y/title} <nested>{1 + 2}</nested></r>)");
  ASSERT_EQ(e->kind, ExprKind::kConstructor);
  ASSERT_EQ(e->constructor_attrs.size(), 2u);
  EXPECT_EQ(e->constructor_attrs[0].name, "a");
  ASSERT_EQ(e->constructor_attrs[1].value_parts.size(), 1u);
  EXPECT_EQ(e->constructor_attrs[1].value_parts[0].kind,
            ConstructorContent::kExpr);
  ASSERT_GE(e->constructor_content.size(), 3u);
  EXPECT_EQ(e->constructor_content[0].kind, ConstructorContent::kText);
  EXPECT_EQ(e->constructor_content[1].kind, ConstructorContent::kExpr);
  EXPECT_EQ(e->constructor_content.back().kind, ConstructorContent::kChild);
}

TEST(ParserTest, ConstructorAfterReturn) {
  auto e = MustParse(R"(for $x in $i return <hit>{$x}</hit>)");
  ASSERT_EQ(e->kind, ExprKind::kFlwor);
  EXPECT_EQ(e->return_expr->kind, ExprKind::kConstructor);
}

TEST(ParserTest, AxesParse) {
  auto e = MustParse(
      R"($a/body/sec[heading = "Introduction"]/following-sibling::sec[1]/heading)");
  ASSERT_EQ(e->kind, ExprKind::kPath);
  ASSERT_EQ(e->steps.size(), 4u);
  EXPECT_EQ(e->steps[2].axis, Axis::kFollowingSibling);
}

TEST(ParserTest, ParentAxisViaDotDot) {
  auto e = MustParse("$a/b/../c");
  ASSERT_EQ(e->steps.size(), 3u);
  EXPECT_EQ(e->steps[1].axis, Axis::kParent);
}

TEST(ParserTest, TextNodeTest) {
  auto e = MustParse("$a/text()");
  ASSERT_EQ(e->steps.size(), 1u);
  EXPECT_EQ(e->steps[0].name_test, "text()");
}

TEST(ParserTest, WildcardStep) {
  auto e = MustParse("$a/*/b");
  ASSERT_EQ(e->steps.size(), 2u);
  EXPECT_EQ(e->steps[0].name_test, "*");
}

TEST(ParserTest, ValueComparisonKeywords) {
  auto e = MustParse(R"($a eq "x")");
  ASSERT_EQ(e->kind, ExprKind::kComparison);
  EXPECT_EQ(e->compare_op, CompareOp::kEq);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("for $x in").ok());
  EXPECT_FALSE(ParseQuery("for x in $y return $x").ok());
  EXPECT_FALSE(ParseQuery("(1, 2").ok());
  EXPECT_FALSE(ParseQuery("$x[1").ok());
  EXPECT_FALSE(ParseQuery("<a><b></a>").ok());
  EXPECT_FALSE(ParseQuery("1 2").ok());
  EXPECT_FALSE(ParseQuery("some $x in $y").ok());
  EXPECT_FALSE(ParseQuery("").ok());
}

TEST(ParserTest, DebugStringSmoke) {
  auto e = MustParse(
      R"(for $x in $i where $x/a = 1 order by $x/b return <r>{$x}</r>)");
  std::string debug = ToDebugString(*e);
  EXPECT_NE(debug.find("for $x"), std::string::npos);
  EXPECT_NE(debug.find("order by"), std::string::npos);
}

// --- Hardening (fuzz regressions) ------------------------------------------

TEST(ParserHardeningTest, DeepParenNestingIsAnError) {
  std::string query(500, '(');
  query += "1";
  query += std::string(500, ')');
  auto result = ParseQuery(query);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("nesting"), std::string::npos)
      << result.status().ToString();
}

TEST(ParserHardeningTest, DeepUnaryMinusIsAnError) {
  EXPECT_FALSE(ParseQuery(std::string(500, '-') + "1").ok());
}

TEST(ParserHardeningTest, DeepConstructorNestingIsAnError) {
  std::string query;
  for (int i = 0; i < 300; ++i) query += "<a>{";
  query += "1";
  for (int i = 0; i < 300; ++i) query += "}</a>";
  EXPECT_FALSE(ParseQuery(query).ok());
}

TEST(ParserHardeningTest, ModerateNestingStillParses) {
  std::string query(50, '(');
  query += "1";
  query += std::string(50, ')');
  EXPECT_TRUE(ParseQuery(query).ok());
}

// --- ToQueryString fixed point ---------------------------------------------

// Rendering a parsed query must produce text that reparses into a tree
// rendering to the same bytes (the differential oracle ships generated
// queries as text, so renderer/parser agreement is load-bearing).
void ExpectFixedPoint(std::string_view query) {
  auto parsed = ParseQuery(query);
  ASSERT_TRUE(parsed.ok()) << query;
  auto rendered = ToQueryString(**parsed);
  ASSERT_TRUE(rendered.ok()) << query << " -> "
                             << rendered.status().ToString();
  auto reparsed = ParseQuery(*rendered);
  ASSERT_TRUE(reparsed.ok()) << *rendered << " -> "
                             << reparsed.status().ToString();
  auto rendered_again = ToQueryString(**reparsed);
  ASSERT_TRUE(rendered_again.ok());
  EXPECT_EQ(*rendered, *rendered_again) << "source: " << query;
}

TEST(ToQueryStringTest, FixedPointAcrossExpressionKinds) {
  ExpectFixedPoint("$input//item/name");
  ExpectFixedPoint("$input//item[@id = \"I1\"]/name");
  ExpectFixedPoint("count($input//entry) + 1.5");
  ExpectFixedPoint("for $x in $input//item where $x/price > 10 "
                   "order by $x/name descending return $x/name");
  ExpectFixedPoint("some $x in $input//item satisfies $x/price > 100");
  ExpectFixedPoint("every $x in $input//a satisfies empty($x/b)");
  ExpectFixedPoint("if (count($input//a) > 0) then 1 else 2");
  ExpectFixedPoint("($input//a | $input//b)");
  ExpectFixedPoint("(1, 2, \"three\", $input//d)");
  ExpectFixedPoint("<wrap>{$input//item/name}</wrap>");
  ExpectFixedPoint("$input//item[3]");
  ExpectFixedPoint("1 to 5");
  ExpectFixedPoint("-3.25");
  ExpectFixedPoint("($input//a/text())[1]");
  ExpectFixedPoint("(for $x in $input//a return $x) = \"v\"");
  ExpectFixedPoint("(some $x in $input//a satisfies $x) and "
                   "(every $y in $input//b satisfies $y)");
}

TEST(ToQueryStringTest, QuantifiedAsOperandReparses) {
  // Regression found by corpus replay: a quantified expression as the rhs
  // of `and` must be parenthesized or the rendered text fails to parse.
  auto parsed = ParseQuery(
      "($input/a = 1) and (some $l in $input//b satisfies empty($l/c))");
  ASSERT_TRUE(parsed.ok());
  auto rendered = ToQueryString(**parsed);
  ASSERT_TRUE(rendered.ok());
  EXPECT_TRUE(ParseQuery(*rendered).ok()) << *rendered;
}

TEST(ToQueryStringTest, RefusesUnrenderableStrings) {
  // A string literal containing both quote characters has no spelling in
  // this grammar (no escapes); ToQueryString must refuse, not corrupt.
  Expr literal(ExprKind::kStringLiteral);
  literal.string_value = "both\"quotes'here";
  EXPECT_FALSE(ToQueryString(literal).ok());
}

}  // namespace
}  // namespace xbench::xquery
