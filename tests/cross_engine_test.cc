#include <gtest/gtest.h>

#include <map>

#include "datagen/generator.h"
#include "workload/classes.h"
#include "workload/queries.h"
#include "workload/runner.h"

namespace xbench::workload {
namespace {

using datagen::DbClass;
using engines::EngineKind;

/// Loads every engine once per class (shared across the test cases below).
class CrossEngineFixture {
 public:
  static CrossEngineFixture& Get() {
    static auto* instance = new CrossEngineFixture();
    return *instance;
  }

  struct ClassSetup {
    datagen::GeneratedDatabase db;
    QueryParams params;
    std::map<EngineKind, std::unique_ptr<engines::XmlDbms>> engines;
    std::map<EngineKind, Status> load_status;
  };

  ClassSetup& ForClass(DbClass cls) {
    auto it = setups_.find(cls);
    if (it != setups_.end()) return *it->second;
    auto setup = std::make_unique<ClassSetup>();
    datagen::GenConfig config;
    config.target_bytes = 160 * 1024;
    config.seed = 42;
    setup->db = datagen::Generate(cls, config);
    setup->params = DeriveParams(cls, setup->db.seeds);
    for (EngineKind kind : AllEngines()) {
      auto engine = MakeEngine(kind);
      Status status = engine->BulkLoad(cls, ToLoadDocuments(setup->db));
      if (status.ok()) {
        status = CreateTable3Indexes(*engine, cls);
      }
      setup->load_status[kind] = status;
      setup->engines[kind] = std::move(engine);
    }
    auto [inserted, ok] = setups_.emplace(cls, std::move(setup));
    return *inserted->second;
  }

 private:
  std::map<DbClass, std::unique_ptr<CrossEngineFixture::ClassSetup>> setups_;
};

std::vector<std::string> Answer(CrossEngineFixture::ClassSetup& setup,
                                EngineKind kind, QueryId id, DbClass cls) {
  ExecutionResult result =
      RunQuery(*setup.engines[kind], id, cls, setup.params);
  EXPECT_TRUE(result.status.ok())
      << engines::EngineKindName(kind) << " " << QueryName(id) << " "
      << datagen::DbClassName(cls) << ": " << result.status.ToString();
  return CanonicalizeAnswer(id, std::move(result.lines));
}

struct Cell {
  QueryId query;
  DbClass cls;
};

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = QueryName(info.param.query);
  name += "_";
  std::string cls = datagen::DbClassName(info.param.cls);
  cls.erase(cls.find('/'), 1);
  return name + cls;
}

class CrossEngineTest : public ::testing::TestWithParam<Cell> {};

/// The native engine is the reference implementation (full XQuery over
/// intact documents). Engines whose architecture answers the cell
/// correctly must agree with it.
TEST_P(CrossEngineTest, EnginesAgreeWithNativeReference) {
  const auto [id, cls] = GetParam();
  auto& setup = CrossEngineFixture::Get().ForClass(cls);
  ASSERT_TRUE(setup.load_status[EngineKind::kNative].ok());
  auto reference = Answer(setup, EngineKind::kNative, id, cls);

  // Xcolumn keeps documents intact: exact agreement on the MD classes.
  if (setup.load_status[EngineKind::kClob].ok()) {
    EXPECT_EQ(Answer(setup, EngineKind::kClob, id, cls), reference)
        << "Xcolumn divergence";
  }

  // DB2 Xcollection agrees on value-shaped answers; reconstruction
  // queries (Q5/Q12) lose structure (paper §3.2.2), so only the presence
  // of an answer is required there.
  if (setup.load_status[EngineKind::kShredDb2].ok()) {
    auto db2 = Answer(setup, EngineKind::kShredDb2, id, cls);
    if (AnswerShapeFor(id) != AnswerShape::kOrderedFragment) {
      EXPECT_EQ(db2, reference) << "Xcollection divergence";
    } else {
      EXPECT_EQ(db2.empty(), reference.empty());
    }
  }

  // SQL Server additionally loses mixed content (qt): its TC/SD text
  // answers are the documented incorrect results of §3.1.3.
  if (setup.load_status[EngineKind::kShredMsSql].ok()) {
    auto mssql = Answer(setup, EngineKind::kShredMsSql, id, cls);
    const bool qt_dependent =
        cls == DbClass::kTcSd &&
        (id == QueryId::kQ8 || id == QueryId::kQ17 || id == QueryId::kQ5 ||
         id == QueryId::kQ12);
    if (AnswerShapeFor(id) == AnswerShape::kOrderedFragment) {
      EXPECT_EQ(mssql.empty(), reference.empty());
    } else if (qt_dependent) {
      // Documented deviation: mixed-content text loaded as NULL.
      EXPECT_NE(mssql, reference)
          << "expected SQL Server to return the paper's incorrect result";
    } else {
      EXPECT_EQ(mssql, reference) << "SQL Server divergence";
    }
  }
}

std::vector<Cell> AllCells() {
  std::vector<Cell> cells;
  for (QueryId id : BenchmarkSubset()) {
    for (DbClass cls : AllClasses()) {
      cells.push_back({id, cls});
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(BenchmarkSubset, CrossEngineTest,
                         ::testing::ValuesIn(AllCells()), CellName);

// --- Extended workload: the queries the paper defines but does not report ----

struct ExtendedCell {
  QueryId query;
  DbClass cls;
  bool shred_exact;  // shredded answers must equal native exactly
  bool clob_exact;   // Xcolumn answers must equal native exactly
};

class ExtendedCrossEngineTest
    : public ::testing::TestWithParam<ExtendedCell> {};

TEST_P(ExtendedCrossEngineTest, ExtendedPlansAgreeWithNative) {
  const ExtendedCell& cell = GetParam();
  auto& setup = CrossEngineFixture::Get().ForClass(cell.cls);
  ASSERT_TRUE(setup.load_status[EngineKind::kNative].ok());
  auto reference = Answer(setup, EngineKind::kNative, cell.query, cell.cls);

  for (EngineKind kind : {EngineKind::kShredDb2, EngineKind::kShredMsSql}) {
    if (!setup.load_status[kind].ok()) continue;
    ExecutionResult result =
        RunQuery(*setup.engines[kind], cell.query, cell.cls, setup.params);
    // Architecturally impossible plans (Q4 needs document order) are
    // allowed to refuse; that refusal is asserted separately below.
    if (result.status.code() == StatusCode::kUnsupported) continue;
    ASSERT_TRUE(result.status.ok())
        << engines::EngineKindName(kind) << ": "
        << result.status.ToString();
    auto answer = CanonicalizeAnswer(cell.query, std::move(result.lines));
    if (cell.shred_exact) {
      EXPECT_EQ(answer, reference) << engines::EngineKindName(kind);
    } else {
      EXPECT_EQ(answer.empty(), reference.empty())
          << engines::EngineKindName(kind);
    }
  }

  if (setup.load_status[EngineKind::kClob].ok()) {
    ExecutionResult result = RunQuery(*setup.engines[EngineKind::kClob],
                                      cell.query, cell.cls, setup.params);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    auto answer = CanonicalizeAnswer(cell.query, std::move(result.lines));
    if (cell.clob_exact) {
      EXPECT_EQ(answer, reference) << "Xcolumn";
    } else {
      EXPECT_EQ(answer.empty(), reference.empty()) << "Xcolumn";
    }
  }
}

std::string ExtendedCellName(
    const ::testing::TestParamInfo<ExtendedCell>& info) {
  std::string name = QueryName(info.param.query);
  name += "_";
  std::string cls = datagen::DbClassName(info.param.cls);
  cls.erase(cls.find('/'), 1);
  return name + cls;
}

INSTANTIATE_TEST_SUITE_P(
    FullWorkload, ExtendedCrossEngineTest,
    ::testing::Values(
        ExtendedCell{QueryId::kQ1, DbClass::kDcSd, true, true},
        ExtendedCell{QueryId::kQ2, DbClass::kTcMd, true, true},
        ExtendedCell{QueryId::kQ3, DbClass::kTcSd, true, true},
        ExtendedCell{QueryId::kQ4, DbClass::kTcMd, /*shred unsupported*/ true,
                     true},
        ExtendedCell{QueryId::kQ6, DbClass::kTcMd, true, true},
        ExtendedCell{QueryId::kQ7, DbClass::kDcSd, true, true},
        ExtendedCell{QueryId::kQ9, DbClass::kDcMd, true, true},
        ExtendedCell{QueryId::kQ10, DbClass::kDcMd, true, true},
        ExtendedCell{QueryId::kQ11, DbClass::kTcSd, true, true},
        ExtendedCell{QueryId::kQ13, DbClass::kTcMd, false, true},
        ExtendedCell{QueryId::kQ15, DbClass::kTcMd, true, true},
        ExtendedCell{QueryId::kQ16, DbClass::kDcMd, false, true},
        ExtendedCell{QueryId::kQ18, DbClass::kTcMd, false, true},
        ExtendedCell{QueryId::kQ19, DbClass::kDcMd, true, true},
        ExtendedCell{QueryId::kQ20, DbClass::kDcSd, true, true}),
    ExtendedCellName);

TEST(ExtendedWorkloadTest, Q4UnsupportedOnShreddedEngines) {
  auto& setup = CrossEngineFixture::Get().ForClass(DbClass::kTcMd);
  ExecutionResult result =
      RunQuery(*setup.engines[EngineKind::kShredDb2], QueryId::kQ4,
               DbClass::kTcMd, setup.params);
  EXPECT_EQ(result.status.code(), StatusCode::kUnsupported);
}

// --- Engine-support matrix (the "-" cells of Tables 4-9) ---------------------

TEST(EngineSupportMatrixTest, MatchesPaper) {
  auto& fixture = CrossEngineFixture::Get();
  // Xcolumn refuses SD classes.
  EXPECT_FALSE(fixture.ForClass(DbClass::kTcSd)
                   .load_status[EngineKind::kClob]
                   .ok());
  EXPECT_FALSE(fixture.ForClass(DbClass::kDcSd)
                   .load_status[EngineKind::kClob]
                   .ok());
  EXPECT_TRUE(fixture.ForClass(DbClass::kTcMd)
                  .load_status[EngineKind::kClob]
                  .ok());
  EXPECT_TRUE(fixture.ForClass(DbClass::kDcMd)
                  .load_status[EngineKind::kClob]
                  .ok());
  // Everyone else loads the small scale.
  for (DbClass cls : AllClasses()) {
    for (EngineKind kind :
         {EngineKind::kNative, EngineKind::kShredDb2,
          EngineKind::kShredMsSql}) {
      EXPECT_TRUE(fixture.ForClass(cls).load_status[kind].ok())
          << engines::EngineKindName(kind) << " "
          << datagen::DbClassName(cls);
    }
  }
}

TEST(CrossEngineResultsTest, TextSearchFindsAnswersSomewhere) {
  // Guards against a degenerate parameterization where Q17 matches
  // nothing anywhere (the word rank is chosen to occur at small scale).
  auto& setup = CrossEngineFixture::Get().ForClass(DbClass::kTcSd);
  auto lines = Answer(setup, EngineKind::kNative, QueryId::kQ17,
                      DbClass::kTcSd);
  EXPECT_FALSE(lines.empty());
}

TEST(CrossEngineResultsTest, Q5FragmentsLookRight) {
  auto& setup = CrossEngineFixture::Get().ForClass(DbClass::kDcMd);
  auto lines =
      Answer(setup, EngineKind::kNative, QueryId::kQ5, DbClass::kDcMd);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("<order_line"), std::string::npos);
  auto db2 =
      Answer(setup, EngineKind::kShredDb2, QueryId::kQ5, DbClass::kDcMd);
  ASSERT_EQ(db2.size(), 1u);
  EXPECT_NE(db2[0].find("<order_line"), std::string::npos);
}

}  // namespace
}  // namespace xbench::workload
