#include <gtest/gtest.h>

#include <set>

#include "datagen/word_pool.h"
#include "tpcw/mapping.h"
#include "tpcw/populate.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xbench::tpcw {
namespace {

PopulateScale SmallScale() {
  PopulateScale scale;
  scale.items = 40;
  scale.customers = 30;
  scale.orders = 50;
  scale.authors = 15;
  scale.publishers = 8;
  scale.countries = 10;
  return scale;
}

class TpcwTest : public ::testing::Test {
 protected:
  TpcwTest() : words_(), data_(Populate(SmallScale(), 42, words_)) {}
  datagen::WordPool words_;
  TpcwData data_;
};

TEST_F(TpcwTest, CardinalitiesMatchScale) {
  EXPECT_EQ(data_.items.size(), 40u);
  EXPECT_EQ(data_.customers.size(), 30u);
  EXPECT_EQ(data_.orders.size(), 50u);
  EXPECT_EQ(data_.authors.size(), 15u);
  EXPECT_EQ(data_.authors2.size(), 15u);
  EXPECT_EQ(data_.publishers.size(), 8u);
  EXPECT_EQ(data_.countries.size(), 10u);
  EXPECT_EQ(data_.cc_xacts.size(), 50u);  // one per order
  EXPECT_GE(data_.order_lines.size(), 50u);
}

TEST_F(TpcwTest, ReferentialIntegrity) {
  for (const Address& a : data_.addresses) {
    EXPECT_GE(a.addr_co_id, 1);
    EXPECT_LE(a.addr_co_id, 10);
  }
  for (const Item& i : data_.items) {
    EXPECT_GE(i.i_pub_id, 1);
    EXPECT_LE(i.i_pub_id, 8);
  }
  for (const ItemAuthor& ia : data_.item_authors) {
    EXPECT_GE(ia.ia_a_id, 1);
    EXPECT_LE(ia.ia_a_id, 15);
    EXPECT_GE(ia.ia_i_id, 1);
    EXPECT_LE(ia.ia_i_id, 40);
  }
  for (const Order& o : data_.orders) {
    EXPECT_GE(o.o_c_id, 1);
    EXPECT_LE(o.o_c_id, 30);
  }
  for (const OrderLine& ol : data_.order_lines) {
    EXPECT_GE(ol.ol_i_id, 1);
    EXPECT_LE(ol.ol_i_id, 40);
    EXPECT_GE(ol.ol_o_id, 1);
    EXPECT_LE(ol.ol_o_id, 50);
  }
}

TEST_F(TpcwTest, EveryItemHasAtLeastOneAuthor) {
  std::set<int64_t> items_with_authors;
  for (const ItemAuthor& ia : data_.item_authors) {
    items_with_authors.insert(ia.ia_i_id);
  }
  EXPECT_EQ(items_with_authors.size(), data_.items.size());
}

TEST_F(TpcwTest, SomePublishersLackFax) {
  int missing = 0;
  for (const Publisher& p : data_.publishers) {
    if (p.pub_fax.empty()) ++missing;
  }
  EXPECT_GT(missing, 0);          // Q14 has answers
  EXPECT_LT(missing, 8);          // but not all
}

TEST_F(TpcwTest, OrderTotalsAreConsistent) {
  for (const Order& o : data_.orders) {
    EXPECT_NEAR(o.o_total, o.o_sub_total + o.o_tax, 0.02);
    EXPECT_GT(o.o_sub_total, 0);
  }
}

TEST_F(TpcwTest, DeterministicForSeed) {
  TpcwData again = Populate(SmallScale(), 42, words_);
  ASSERT_EQ(again.items.size(), data_.items.size());
  for (size_t i = 0; i < again.items.size(); ++i) {
    EXPECT_EQ(again.items[i].i_title, data_.items[i].i_title);
  }
}

// --- Mappings ----------------------------------------------------------------

TEST_F(TpcwTest, CatalogJoinNesting) {
  xml::Document catalog = BuildCatalog(data_);
  EXPECT_EQ(catalog.root()->name(), "catalog");
  const auto items = catalog.root()->Children("item");
  ASSERT_EQ(items.size(), data_.items.size());

  const xml::Node* item = items[0];
  EXPECT_NE(item->FindAttribute("id"), nullptr);
  ASSERT_NE(item->FirstChild("authors"), nullptr);
  EXPECT_FALSE(item->FirstChild("authors")->Children("author").empty());
  ASSERT_NE(item->FirstChild("publisher"), nullptr);
  // Join nesting adds depth: item/authors/author/mail_address/street.
  const xml::Node* author =
      item->FirstChild("authors")->Children("author")[0];
  ASSERT_NE(author->FirstChild("mail_address"), nullptr);
  EXPECT_NE(author->FirstChild("mail_address")->FirstChild("street"), nullptr);
  EXPECT_NE(author->FirstChild("mail_address")->FirstChild("country"),
            nullptr);
  EXPECT_TRUE(xml::CheckWellFormed(xml::Serialize(catalog)).ok());
}

TEST_F(TpcwTest, OrderDocumentsOnePerOrder) {
  auto docs = BuildOrderDocuments(data_);
  ASSERT_EQ(docs.size(), data_.orders.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    const xml::Node* root = docs[i].root();
    EXPECT_EQ(root->name(), "order");
    EXPECT_EQ(*root->FindAttribute("id"),
              OrderIdString(static_cast<int64_t>(i + 1)));
    ASSERT_NE(root->FirstChild("order_lines"), nullptr);
    EXPECT_FALSE(root->FirstChild("order_lines")->Children("order_line")
                     .empty());
    EXPECT_NE(root->FirstChild("status"), nullptr);
    EXPECT_NE(root->FirstChild("cc_xact"), nullptr);  // joined CC_XACTS
  }
}

TEST_F(TpcwTest, OrderLinesKeepDocumentOrder) {
  auto docs = BuildOrderDocuments(data_);
  const xml::Node* lines = docs[0].root()->FirstChild("order_lines");
  int expected = 1;
  for (const xml::Node* line : lines->Children("order_line")) {
    EXPECT_EQ(*line->FindAttribute("no"), std::to_string(expected));
    ++expected;
  }
}

TEST_F(TpcwTest, FlatTranslationIsFlat) {
  auto docs = BuildFlatDocuments(data_);
  ASSERT_EQ(docs.size(), 5u);
  std::set<std::string> names;
  for (const xml::Document& doc : docs) names.insert(doc.name());
  EXPECT_TRUE(names.count("Customer.xml"));
  EXPECT_TRUE(names.count("Item.xml"));
  EXPECT_TRUE(names.count("Author.xml"));
  EXPECT_TRUE(names.count("Address.xml"));
  EXPECT_TRUE(names.count("Country.xml"));

  for (const xml::Document& doc : docs) {
    // depth exactly 3: root / row / leaf.
    int max_depth = 0;
    struct {
      void Walk(const xml::Node& n, int d, int& max) {
        max = std::max(max, d);
        for (const auto& c : n.children()) {
          if (c->is_element()) Walk(*c, d + 1, max);
        }
      }
    } walker;
    walker.Walk(*doc.root(), 1, max_depth);
    EXPECT_EQ(max_depth, 3) << doc.name();
  }
}

TEST_F(TpcwTest, CustomerIdsJoinOrdersToCustomers) {
  auto orders = BuildOrderDocuments(data_);
  auto flat = BuildFlatDocuments(data_);
  const xml::Document* customers = nullptr;
  for (const auto& doc : flat) {
    if (doc.name() == "Customer.xml") customers = &doc;
  }
  ASSERT_NE(customers, nullptr);
  std::set<std::string> customer_ids;
  for (const xml::Node* c : customers->root()->Children("customer")) {
    customer_ids.insert(*c->FindAttribute("id"));
  }
  for (const xml::Document& order : orders) {
    const std::string cid =
        order.root()->FirstChild("customer_id")->TextContent();
    EXPECT_TRUE(customer_ids.count(cid)) << cid;  // Q19's join is total
  }
}

}  // namespace
}  // namespace xbench::tpcw
