#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"
#include "stats/corpus_analyzer.h"
#include "stats/distribution.h"
#include "datagen/dictionary_generator.h"
#include "stats/fitting.h"
#include "xml/parser.h"

namespace xbench::stats {
namespace {

TEST(DistributionTest, UniformBoundsAndMean) {
  Rng rng(1);
  auto dist = MakeUniform(3, 9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = dist->Sample(rng);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 20000.0, dist->Mean(), 0.1);
  EXPECT_DOUBLE_EQ(dist->Mean(), 6.0);
}

TEST(DistributionTest, NormalClampsToBounds) {
  Rng rng(2);
  auto dist = MakeNormal(5.0, 10.0, 0, 10);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = dist->Sample(rng);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 10);
  }
}

TEST(DistributionTest, NormalSampleMeanApproximatesMean) {
  Rng rng(3);
  auto dist = MakeNormal(50.0, 5.0, 0, 100);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += static_cast<double>(dist->Sample(rng));
  EXPECT_NEAR(sum / 20000.0, 50.0, 0.5);
}

TEST(DistributionTest, ExponentialIsSkewed) {
  Rng rng(4);
  auto dist = MakeExponential(2.0, 0, 50);
  std::map<int64_t, int> histogram;
  for (int i = 0; i < 20000; ++i) ++histogram[dist->Sample(rng)];
  // Mass decreases with value (long tail).
  EXPECT_GT(histogram[0] + histogram[1], histogram[4] + histogram[5]);
  EXPECT_GE(dist->min_value(), 0);
  EXPECT_LE(dist->max_value(), 50);
}

TEST(DistributionTest, ZipfRankOneMostFrequent) {
  Rng rng(5);
  auto dist = MakeZipf(100, 1.0);
  std::map<int64_t, int> histogram;
  for (int i = 0; i < 50000; ++i) ++histogram[dist->Sample(rng)];
  EXPECT_GT(histogram[1], histogram[2]);
  EXPECT_GT(histogram[2], histogram[10]);
  EXPECT_GT(histogram[1], histogram[50] * 5);
}

TEST(DistributionTest, ZipfZeroSkewIsUniformish) {
  Rng rng(6);
  auto dist = MakeZipf(10, 0.0);
  std::map<int64_t, int> histogram;
  for (int i = 0; i < 50000; ++i) ++histogram[dist->Sample(rng)];
  for (int64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(histogram[k] / 50000.0, 0.1, 0.02) << k;
  }
}

TEST(DistributionTest, ZipfMeanMatchesSamples) {
  Rng rng(7);
  auto dist = MakeZipf(50, 1.2);
  double sum = 0;
  for (int i = 0; i < 30000; ++i) sum += static_cast<double>(dist->Sample(rng));
  EXPECT_NEAR(sum / 30000.0, dist->Mean(), 0.2);
}

TEST(CorpusAnalyzerTest, AggregatesFileStats) {
  CorpusAnalyzer analyzer("test");
  auto d1 = xml::Parse("<r><a>xx</a></r>", "1.xml");
  auto d2 = xml::Parse("<r><a>y</a><a>z</a></r>", "2.xml");
  analyzer.AddDocument(*d1, 2048);
  analyzer.AddDocument(*d2, 4096);
  const CorpusStats& stats = analyzer.stats();
  EXPECT_EQ(stats.file_count, 2u);
  EXPECT_EQ(stats.min_file_bytes, 2048u);
  EXPECT_EQ(stats.max_file_bytes, 4096u);
  EXPECT_EQ(stats.total_bytes, 6144u);
  EXPECT_EQ(stats.element_count, 5u);  // 2 roots + 3 a's
  EXPECT_EQ(stats.element_type_counts.at("a"), 3u);
  EXPECT_EQ(stats.text_bytes, 4u);  // "xx"+"y"+"z"
  EXPECT_EQ(stats.max_depth, 2);
}

TEST(CorpusAnalyzerTest, RowRendersLikeTable2) {
  CorpusAnalyzer analyzer("GCIDE-like");
  auto doc = xml::Parse("<r/>", "1.xml");
  analyzer.AddDocument(*doc, 56 * 1024 * 1024);
  std::string row = analyzer.stats().ToRow();
  EXPECT_NE(row.find("GCIDE-like"), std::string::npos);
  EXPECT_NE(row.find("56.0 MB"), std::string::npos) << row;
}

// --- Distribution fitting (§2.1.1 pipeline) -----------------------------------

std::vector<int64_t> Draw(const Distribution& dist, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(dist.Sample(rng));
  return out;
}

TEST(FittingTest, RecognizesConstant) {
  Fit fit = FitDistribution({4, 4, 4, 4});
  EXPECT_EQ(fit.family, Family::kConstant);
  EXPECT_EQ(fit.min_value, 4);
  EXPECT_EQ(fit.ToString(), "constant(4)");
}

TEST(FittingTest, RecognizesUniform) {
  auto dist = MakeUniform(10, 50);
  Fit fit = FitDistribution(Draw(*dist, 5000, 1));
  EXPECT_EQ(fit.family, Family::kUniform) << fit.ToString();
  EXPECT_NEAR(static_cast<double>(fit.min_value), 10, 2);
  EXPECT_NEAR(static_cast<double>(fit.max_value), 50, 2);
}

TEST(FittingTest, RecognizesNormal) {
  auto dist = MakeNormal(30, 4, 0, 100);
  Fit fit = FitDistribution(Draw(*dist, 5000, 2));
  EXPECT_EQ(fit.family, Family::kNormal) << fit.ToString();
  EXPECT_NEAR(fit.mean, 30, 0.5);
  EXPECT_NEAR(fit.stddev, 4, 0.5);
}

TEST(FittingTest, RecognizesExponential) {
  auto dist = MakeExponential(6, 0, 200);
  Fit fit = FitDistribution(Draw(*dist, 5000, 3));
  EXPECT_EQ(fit.family, Family::kExponential) << fit.ToString();
}

TEST(FittingTest, RecognizesZipf) {
  auto dist = MakeZipf(200, 1.0);
  Fit fit = FitDistribution(Draw(*dist, 8000, 4));
  EXPECT_EQ(fit.family, Family::kZipf) << fit.ToString();
}

TEST(FittingTest, FittedDistributionResamples) {
  auto dist = MakeNormal(20, 3, 5, 40);
  Fit fit = FitDistribution(Draw(*dist, 5000, 5));
  auto refit = fit.MakeDistribution();
  // Moments of the refit match the original closely.
  std::vector<int64_t> resampled = Draw(*refit, 5000, 6);
  double sum = 0;
  for (int64_t v : resampled) sum += static_cast<double>(v);
  EXPECT_NEAR(sum / 5000.0, 20, 0.5);
}

TEST(FittingTest, OccurrenceSamplesFromTree) {
  auto doc = xml::Parse(
      "<r><e><q/><q/></e><e><q/></e><e/><x><e><q/><q/><q/></e></x></r>",
      "t.xml");
  ASSERT_TRUE(doc.ok());
  auto samples = stats::OccurrenceSamples(*doc->root(), "e", "q");
  ASSERT_EQ(samples.size(), 4u);
  int64_t total = 0;
  for (int64_t s : samples) total += s;
  EXPECT_EQ(total, 6);
}

TEST(FittingTest, GeneratorParametersRecoveredFromGeneratedData) {
  // Full loop: the dictionary generator draws sense counts from
  // Normal(2.2, 1.2) on [1,6]; the analysis pipeline must recover a
  // mean close to that from the generated corpus.
  datagen::WordPool words;
  auto result = datagen::GenerateDictionary(256 * 1024, 42, words);
  auto samples = stats::OccurrenceSamples(*result.doc.root(), "entry", "sn");
  ASSERT_GT(samples.size(), 50u);
  Fit fit = FitDistribution(samples);
  EXPECT_NEAR(fit.mean, 2.2, 0.4) << fit.ToString();
  EXPECT_GE(fit.min_value, 1);
  EXPECT_LE(fit.max_value, 6);
}

}  // namespace
}  // namespace xbench::stats
