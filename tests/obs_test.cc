#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xquery/exec/exec.h"
#include "xquery/parser.h"
#include "xquery/plan/cache.h"

namespace xbench::obs {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndEscapes) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("text")
      .String("a\"b\\c\n\t\x01")
      .Key("nums")
      .BeginArray()
      .Int(-3)
      .Uint(18446744073709551615ull)
      .Number(1.5)
      .EndArray()
      .Key("flags")
      .BeginObject()
      .Key("on")
      .Bool(true)
      .Key("off")
      .Bool(false)
      .Key("none")
      .Null()
      .EndObject()
      .EndObject();
  const std::string json = writer.TakeString();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\\\"b\\\\c\\n\\t\\u0001"), std::string::npos) << json;
  EXPECT_NE(json.find("18446744073709551615"), std::string::npos);
}

TEST(ValidateJsonTest, AcceptsWellFormedValues) {
  EXPECT_TRUE(ValidateJson("{}").ok());
  EXPECT_TRUE(ValidateJson("[]").ok());
  EXPECT_TRUE(ValidateJson("  [1, 2.5, -3e4, \"x\", null, true] ").ok());
  EXPECT_TRUE(ValidateJson("{\"a\": {\"b\": [false]}}").ok());
}

TEST(ValidateJsonTest, RejectsMalformedValues) {
  EXPECT_FALSE(ValidateJson("").ok());
  EXPECT_FALSE(ValidateJson("{").ok());
  EXPECT_FALSE(ValidateJson("[1,]").ok());
  EXPECT_FALSE(ValidateJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ValidateJson("{} extra").ok());
  EXPECT_FALSE(ValidateJson("\"unterminated").ok());
  EXPECT_FALSE(ValidateJson("nul").ok());
}

TEST(ParseJsonTest, BuildsValueTreeAndDecodesEscapes) {
  auto parsed = ParseJson(
      "{\"name\": \"a\\u0041\\u20ac\\n\", \"nums\": [1, -2.5e1], "
      "\"on\": true, \"none\": null}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  const JsonValue* name = parsed->Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string, "aA\xe2\x82\xac\n");  // € is the euro sign.
  const JsonValue* nums = parsed->Find("nums");
  ASSERT_NE(nums, nullptr);
  ASSERT_TRUE(nums->is_array());
  ASSERT_EQ(nums->items.size(), 2u);
  EXPECT_DOUBLE_EQ(nums->items[0].number, 1.0);
  EXPECT_DOUBLE_EQ(nums->items[1].number, -25.0);
  EXPECT_TRUE(parsed->Find("on")->boolean);
  EXPECT_EQ(parsed->Find("none")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(ParseJsonTest, RoundTripsWriterOutput) {
  JsonWriter writer;
  writer.BeginObject().Key("plan").BeginArray().BeginObject()
      .Key("op").String("GuidedWalk(item)")
      .Key("rows_out").Uint(42)
      .EndObject().EndArray().EndObject();
  auto parsed = ParseJson(writer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* plan = parsed->Find("plan");
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->items.size(), 1u);
  EXPECT_EQ(plan->items[0].Find("op")->string, "GuidedWalk(item)");
  EXPECT_DOUBLE_EQ(plan->items[0].Find("rows_out")->number, 42.0);
}

TEST(MetricsTest, CounterGaugeHistogramMath) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("xbench.test.counter");
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);

  Gauge& gauge = registry.GetGauge("xbench.test.gauge");
  gauge.Set(10);
  gauge.Add(-2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.5);

  Histogram& histogram = registry.GetHistogram("xbench.test.histogram");
  for (uint64_t sample : {1u, 2u, 3u, 100u}) histogram.Record(sample);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 106u);
  EXPECT_EQ(histogram.min(), 1u);
  EXPECT_EQ(histogram.max(), 100u);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 26.5);
  // Samples below 16 get one bucket each, so small percentiles are
  // exact; p100 is clamped to the observed max.
  EXPECT_EQ(histogram.ApproxPercentile(0.5), 2u);
  EXPECT_EQ(histogram.ApproxPercentile(1.0), 100u);
}

TEST(MetricsTest, HistogramPercentileErrorBoundAcrossDecades) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("xbench.test.decades");
  // ~12.5% geometric steps from 1 to beyond 10^9: every log-linear
  // bucket octave between the exact range and the top is exercised.
  std::vector<uint64_t> samples;
  for (uint64_t v = 1; v < 2'000'000'000ull; v += v / 8 + 1) {
    samples.push_back(v);
    histogram.Record(v);
  }
  const auto n = static_cast<uint64_t>(samples.size());
  ASSERT_EQ(histogram.count(), n);
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    // Same rank convention as ApproxPercentile: the ceil(q*n)-th
    // smallest sample.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n) +
                                          0.999999);
    if (rank == 0) rank = 1;
    const uint64_t exact = samples[rank - 1];
    const uint64_t approx = histogram.ApproxPercentile(q);
    // The approximation is the upper bound of the exact sample's bucket:
    // never below the true value, and within the documented 10% relative
    // error (actual bound: < 6.25%).
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx - exact, exact / 10) << "q=" << q;
  }
  EXPECT_EQ(histogram.ApproxPercentile(1.0), samples.back());
}

TEST(MetricsTest, HistogramBucketBoundsRoundTrip) {
  // Every sample lands in a bucket whose upper bound is >= the sample
  // and within 1/16 of it (exact below 16); bounds are monotone.
  for (uint64_t v = 1; v != 0 && v < (1ull << 62); v += v / 8 + 1) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kBuckets);
    const uint64_t bound = Histogram::BucketUpperBound(index);
    EXPECT_GE(bound, v);
    EXPECT_LE(bound - v, v / 16);
    if (index > 0) {
      EXPECT_LT(Histogram::BucketUpperBound(index - 1), v);
    }
  }
  // The topmost bucket's inclusive bound is the full uint64 range.
  EXPECT_EQ(Histogram::BucketUpperBound(
                Histogram::BucketIndex(std::numeric_limits<uint64_t>::max())),
            std::numeric_limits<uint64_t>::max());
}

TEST(MetricsTest, OpenMetricsExposition) {
  MetricsRegistry registry;
  registry.GetCounter("xbench.test.ops").Increment(3);
  registry.GetGauge("xbench.test.qps").Set(2.5);
  Histogram& histogram = registry.GetHistogram("xbench.test.latency");
  for (uint64_t sample : {1u, 2u, 3u, 100u}) histogram.Record(sample);

  const std::string text = ToOpenMetrics(registry);
  // Dotted registry names are sanitized to the OpenMetrics charset.
  EXPECT_NE(text.find("# TYPE xbench_test_ops counter\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("xbench_test_ops_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE xbench_test_qps gauge\n"), std::string::npos);
  EXPECT_NE(text.find("xbench_test_qps 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE xbench_test_latency histogram\n"),
            std::string::npos);
  // Bucket counts are cumulative; samples 1,2,3 are exact buckets, 100
  // falls in the [100,103] log-linear bucket.
  EXPECT_NE(text.find("xbench_test_latency_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("xbench_test_latency_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("xbench_test_latency_bucket{le=\"103\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("xbench_test_latency_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("xbench_test_latency_sum 106\n"), std::string::npos);
  EXPECT_NE(text.find("xbench_test_latency_count 4\n"), std::string::npos);
  // The exposition terminates with the OpenMetrics EOF marker.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  const std::string path = testing::TempDir() + "/xbench_openmetrics.txt";
  ASSERT_TRUE(WriteOpenMetrics(registry, path).ok());
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, text);
  std::remove(path.c_str());
}

TEST(MetricsTest, DisabledRegistryIsNoOp) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("xbench.test.counter");
  registry.set_enabled(false);
  counter.Increment(100);
  registry.GetGauge("xbench.test.gauge").Set(5);
  registry.GetHistogram("xbench.test.histogram").Record(5);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(registry.GetGauge("xbench.test.gauge").value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("xbench.test.histogram").count(), 0u);
  registry.set_enabled(true);
  counter.Increment();
  EXPECT_EQ(counter.value(), 1u);
}

TEST(MetricsTest, HandlesAreStableAndResettable) {
  MetricsRegistry registry;
  Counter& first = registry.GetCounter("xbench.test.a");
  first.Increment(7);
  // Creating more metrics must not invalidate existing handles.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("xbench.test.fill" + std::to_string(i));
  }
  EXPECT_EQ(&registry.GetCounter("xbench.test.a"), &first);
  EXPECT_EQ(first.value(), 7u);
  registry.ResetAll();
  EXPECT_EQ(first.value(), 0u);
  EXPECT_EQ(registry.metric_count(), 101u);
}

TEST(MetricsTest, SnapshotIsValidDeterministicJson) {
  MetricsRegistry registry;
  registry.GetCounter("xbench.test.b").Increment(2);
  registry.GetCounter("xbench.test.a").Increment(1);
  registry.GetGauge("xbench.test.g").Set(3.5);
  registry.GetHistogram("xbench.test.h").Record(9);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  // Name-ordered: a before b regardless of creation order.
  EXPECT_LT(json.find("xbench.test.a"), json.find("xbench.test.b"));
  EXPECT_EQ(json, registry.ToJson());
}

TEST(MetricsTest, PlanPipelineCountersTrack) {
  // The compile-then-execute pipeline reports into the default registry:
  // one compile per plan::Compile, one execution per exec::Execute.
  MetricsRegistry& registry = MetricsRegistry::Default();
  const uint64_t compiles0 =
      registry.GetCounter("xbench.plan.compiles").value();
  const uint64_t executions0 =
      registry.GetCounter("xbench.plan.executions").value();
  auto parsed = xquery::ParseQuery("count($input)");
  ASSERT_TRUE(parsed.ok());
  auto compiled = xquery::plan::Compile(std::move(*parsed), nullptr,
                                        xquery::plan::CompilationOptions{});
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(registry.GetCounter("xbench.plan.compiles").value(),
            compiles0 + 1);
  xquery::Bindings bindings;
  bindings["input"] = xquery::Sequence{};
  auto result = xquery::exec::Execute((*compiled)->physical, bindings, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(registry.GetCounter("xbench.plan.executions").value(),
            executions0 + 1);
  EXPECT_EQ(result->ToText(), "0\n");
}

TEST(TracerTest, NestingAndOrdering) {
  Tracer tracer;
  tracer.Enable();
  {
    ScopedSpan outer("outer", tracer);
    EXPECT_EQ(tracer.depth(), 1u);
    {
      ScopedSpan inner("inner", tracer);
      EXPECT_EQ(tracer.depth(), 2u);
    }
  }
  EXPECT_EQ(tracer.depth(), 0u);
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::kEnd);
  // Timestamps are strictly monotonic even without a clock source.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].ts, events[i - 1].ts);
  }
}

TEST(TracerTest, VirtualClockDrivesTimestamps) {
  Tracer tracer;
  tracer.Enable();
  VirtualClock clock;
  ScopedClockSource clock_scope(clock, tracer);
  tracer.BeginSpan("io");
  clock.AdvanceMicros(10);
  tracer.EndSpan();
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GE(events[1].ts, 10 * Tracer::kTicksPerMicro);
  EXPECT_GE(events[1].ts - events[0].ts, 9 * Tracer::kTicksPerMicro);
}

TEST(TracerTest, ChromeJsonIsValidAndDeterministic) {
  auto record = [](Tracer& tracer) {
    tracer.Enable();
    VirtualClock clock;
    ScopedClockSource clock_scope(clock, tracer);
    ScopedSpan outer("load", tracer);
    clock.AdvanceMicros(5);
    ScopedSpan inner("parse \"doc\"", tracer);
    clock.AdvanceMicros(3);
  };
  Tracer first, second;
  record(first);
  record(second);
  const std::string json = first.ToChromeJson();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_EQ(json, second.ToChromeJson());
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("parse \\\"doc\\\""), std::string::npos);
}

TEST(TracerTest, DisabledSpanIsNoOp) {
  Tracer tracer;
  {
    ScopedSpan span("ignored", tracer);
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.depth(), 0u);
  // Unbalanced EndSpan at depth 0 must not underflow.
  tracer.Enable();
  tracer.EndSpan();
  EXPECT_EQ(tracer.depth(), 0u);
}

TEST(TracerTest, PerThreadLanesWithNames) {
  Tracer tracer;
  tracer.Enable();
  tracer.SetCurrentThreadName("driver");
  {
    ScopedSpan main_span("main.work", tracer);
    EXPECT_EQ(tracer.depth(), 1u);
    std::thread worker([&tracer] {
      // A fresh thread starts at depth 0 on its own lane, regardless of
      // the spans open on the main lane.
      EXPECT_EQ(tracer.depth(), 0u);
      tracer.SetCurrentThreadName("session-1");
      ScopedSpan span("worker.work", tracer);
      EXPECT_EQ(tracer.depth(), 1u);
    });
    worker.join();
    EXPECT_EQ(tracer.depth(), 1u);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "main.work");
  EXPECT_EQ(events[0].lane, 1u);
  EXPECT_EQ(events[1].name, "worker.work");
  EXPECT_EQ(events[1].lane, 2u);
  EXPECT_EQ(events[2].lane, 2u);  // worker's end edge
  EXPECT_EQ(events[3].lane, 1u);  // main's end edge
  // Timestamps stay process-globally monotonic across lanes.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].ts, events[i - 1].ts);
  }
  const std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  // Both lanes appear as tids, and both names surface as thread_name
  // metadata events.
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("thread_name"), std::string::npos) << json;
  EXPECT_NE(json.find("driver"), std::string::npos) << json;
  EXPECT_NE(json.find("session-1"), std::string::npos) << json;
}

TEST(TracerTest, ClockSourceRestoredOnScopeExit) {
  Tracer tracer;
  VirtualClock outer_clock, inner_clock;
  tracer.SetClockSource(&outer_clock);
  {
    ScopedClockSource scope(inner_clock, tracer);
    EXPECT_EQ(tracer.clock_source(), &inner_clock);
  }
  EXPECT_EQ(tracer.clock_source(), &outer_clock);
  tracer.SetClockSource(nullptr);
}

TEST(EnvTraceSessionTest, WritesTraceFileOnExit) {
  const std::string path = testing::TempDir() + "/xbench_env_trace.json";
  ::unsetenv("XBENCH_TRACE");
  ::setenv("XBENCH_TRACE_OUT", path.c_str(), 1);
  Tracer tracer;
  {
    EnvTraceSession session(tracer);
    EXPECT_TRUE(session.active());
    EXPECT_TRUE(tracer.enabled());
    ScopedSpan span("env.span", tracer);
  }
  ::unsetenv("XBENCH_TRACE_OUT");
  EXPECT_FALSE(tracer.enabled());
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(ValidateJson(*contents).ok()) << *contents;
  EXPECT_NE(contents->find("env.span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EnvTraceSessionTest, LegacyEnvVarStillWorks) {
  const std::string path = testing::TempDir() + "/xbench_env_trace_legacy.json";
  ::unsetenv("XBENCH_TRACE_OUT");
  ::setenv("XBENCH_TRACE", path.c_str(), 1);
  Tracer tracer;
  {
    EnvTraceSession session(tracer);
    EXPECT_TRUE(session.active());
    EXPECT_EQ(session.path(), path);
  }
  ::unsetenv("XBENCH_TRACE");
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(ValidateJson(*contents).ok()) << *contents;
  std::remove(path.c_str());
}

TEST(EnvTraceSessionTest, PreferredEnvVarWinsOverLegacy) {
  const std::string preferred = testing::TempDir() + "/xbench_env_pref.json";
  ::setenv("XBENCH_TRACE_OUT", preferred.c_str(), 1);
  ::setenv("XBENCH_TRACE", "/nonexistent/ignored.json", 1);
  Tracer tracer;
  {
    EnvTraceSession session(tracer);
    EXPECT_EQ(session.path(), preferred);
  }
  ::unsetenv("XBENCH_TRACE_OUT");
  ::unsetenv("XBENCH_TRACE");
  EXPECT_TRUE(ReadFile(preferred).ok());
  std::remove(preferred.c_str());
}

TEST(EnvTraceSessionTest, InactiveWithoutEnvVar) {
  ::unsetenv("XBENCH_TRACE");
  ::unsetenv("XBENCH_TRACE_OUT");
  Tracer tracer;
  EnvTraceSession session(tracer);
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(tracer.enabled());
}

// --- JSON parser hardening (fuzz regressions) -------------------------------

TEST(JsonHardeningTest, DeepNestingIsAnErrorNotAStackOverflow) {
  std::string arrays(500, '[');
  arrays += std::string(500, ']');
  auto parsed = ParseJson(arrays);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("nesting"), std::string::npos)
      << parsed.status().ToString();

  std::string objects;
  for (int i = 0; i < 300; ++i) objects += "{\"a\":";
  objects += "1";
  objects += std::string(300, '}');
  EXPECT_FALSE(ParseJson(objects).ok());

  // 200 levels is under the limit and must still parse.
  std::string shallow(200, '[');
  shallow += std::string(200, ']');
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(JsonHardeningTest, NonFiniteNumberLiteralsAreRejected) {
  // 1e999 overflows double to infinity; the writer cannot re-emit it
  // (JSON has no Infinity), so the parser must reject it outright.
  EXPECT_FALSE(ParseJson("1e999").ok());
  EXPECT_FALSE(ParseJson("[-1.5e308, 1.0e309]").ok());
  EXPECT_FALSE(ParseJson("-1e999").ok());
  auto near_max = ParseJson("1.5e308");
  ASSERT_TRUE(near_max.ok());
  EXPECT_EQ(near_max->kind, JsonValue::Kind::kNumber);
}

TEST(JsonHardeningTest, UnterminatedStringsAreRejected) {
  EXPECT_FALSE(ParseJson("\"no closing quote").ok());
  EXPECT_FALSE(ParseJson("{\"key\": \"value").ok());
  EXPECT_FALSE(ParseJson("\"ends with backslash\\").ok());
  EXPECT_FALSE(ParseJson("\"bad escape \\q\"").ok());
}

TEST(JsonHardeningTest, ParseAndValidateAgree) {
  const char* inputs[] = {
      "1e999", "\"open", "[[[", "{\"a\":1}", "[1,2,3]", "nul", "truex",
  };
  for (const char* input : inputs) {
    EXPECT_EQ(ParseJson(input).ok(), ValidateJson(input).ok()) << input;
  }
}

}  // namespace
}  // namespace xbench::obs
