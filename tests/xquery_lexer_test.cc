#include <gtest/gtest.h>

#include "xquery/lexer.h"

namespace xbench::xquery {
namespace {

std::vector<Token> LexAll(std::string_view input) {
  Lexer lexer(input);
  std::vector<Token> tokens;
  while (lexer.Peek().kind != TokenKind::kEnd) {
    tokens.push_back(lexer.Next());
  }
  return tokens;
}

TEST(LexerTest, BasicTokens) {
  auto tokens = LexAll(R"(for $x in /a//b[@id = "v"] return count($x))");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kName);
  EXPECT_EQ(tokens[0].text, "for");
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].text, "in");
  EXPECT_EQ(tokens[3].kind, TokenKind::kSlash);
  EXPECT_EQ(tokens[4].text, "a");
  EXPECT_EQ(tokens[5].kind, TokenKind::kDoubleSlash);
}

TEST(LexerTest, StringsAndNumbers) {
  auto tokens = LexAll(R"("double" 'single' 42 3.14 .5)");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "double");
  EXPECT_EQ(tokens[1].text, "single");
  EXPECT_EQ(tokens[2].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[2].text, "42");
  EXPECT_EQ(tokens[3].text, "3.14");
  EXPECT_EQ(tokens[4].text, ".5");
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = LexAll("$a = 1 != 2 <= 3 >= 4 > 5");
  EXPECT_EQ(tokens[1].kind, TokenKind::kEq);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[5].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[7].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[9].kind, TokenKind::kGt);
}

TEST(LexerTest, LtAfterOperandIsComparison) {
  auto tokens = LexAll("$a < 5");
  EXPECT_EQ(tokens[1].kind, TokenKind::kLt);
}

TEST(LexerTest, LtAfterReturnIsConstructor) {
  auto tokens = LexAll("return <result");
  EXPECT_EQ(tokens[1].kind, TokenKind::kLtElem);
}

TEST(LexerTest, LtAfterPathStepNameIsComparison) {
  auto tokens = LexAll("size < 100");
  EXPECT_EQ(tokens[1].kind, TokenKind::kLt);
}

TEST(LexerTest, AxisTokens) {
  auto tokens = LexAll("following-sibling::sec self::order");
  EXPECT_EQ(tokens[0].kind, TokenKind::kAxis);
  EXPECT_EQ(tokens[0].text, "following-sibling");
  EXPECT_EQ(tokens[1].text, "sec");
  EXPECT_EQ(tokens[2].kind, TokenKind::kAxis);
  EXPECT_EQ(tokens[2].text, "self");
}

TEST(LexerTest, LetBinding) {
  auto tokens = LexAll("let $v := 1");
  EXPECT_EQ(tokens[2].kind, TokenKind::kColonEq);
}

TEST(LexerTest, SkipsComments) {
  auto tokens = LexAll("1 (: comment (: not nested for us :) 2");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "1");
  EXPECT_EQ(tokens[1].text, "2");
}

TEST(LexerTest, DotAndDotDot) {
  auto tokens = LexAll(". .. ./a");
  EXPECT_EQ(tokens[0].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDotDot);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[3].kind, TokenKind::kSlash);
}

TEST(LexerTest, QualifiedFunctionName) {
  auto tokens = LexAll("xs:double($x)");
  EXPECT_EQ(tokens[0].kind, TokenKind::kName);
  EXPECT_EQ(tokens[0].text, "xs:double");
}

TEST(LexerTest, ErrorOnBadVariable) {
  Lexer lexer("$ 1");
  EXPECT_FALSE(lexer.status().ok());
}

TEST(LexerTest, ErrorOnUnterminatedString) {
  Lexer lexer("\"abc");
  EXPECT_FALSE(lexer.status().ok());
}

TEST(LexerTest, SeekToRelexes) {
  Lexer lexer("a b c");
  lexer.Next();
  size_t pos = lexer.Peek().offset;
  lexer.Next();
  lexer.SeekTo(pos);
  EXPECT_EQ(lexer.Peek().text, "b");
}

}  // namespace
}  // namespace xbench::xquery
