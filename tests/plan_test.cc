// Tests for the compile-then-execute pipeline: logical planning, physical
// execution, the per-engine plan cache, and — most importantly — the
// differential guarantee that a compiled plan produces byte-identical
// output to the legacy AST interpreter for every canned query of every
// class, with guided descendant walks both on and off.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "datagen/generator.h"
#include "engines/clob_engine.h"
#include "engines/native_engine.h"
#include "obs/metrics.h"
#include "workload/classes.h"
#include "workload/queries.h"
#include "workload/runner.h"
#include "xquery/parser.h"
#include "xquery/plan/cache.h"

namespace xbench {
namespace {

using datagen::DbClass;
using workload::QueryId;
using workload::QueryName;

/// One natively loaded database per class, shared across the test cases
/// (loading through workload::BulkLoad so the guided-eval gate is set the
/// same way the benchmark runner sets it).
class PlanFixture {
 public:
  static PlanFixture& Get() {
    static auto* instance = new PlanFixture();
    return *instance;
  }

  struct ClassSetup {
    datagen::GeneratedDatabase db;
    workload::QueryParams params;
    std::unique_ptr<engines::XmlDbms> engine;

    engines::NativeEngine& native() {
      return static_cast<engines::NativeEngine&>(*engine);
    }
  };

  ClassSetup& ForClass(DbClass cls) {
    auto it = setups_.find(cls);
    if (it != setups_.end()) return *it->second;
    auto setup = std::make_unique<ClassSetup>();
    datagen::GenConfig config;
    config.target_bytes = 160 * 1024;
    config.seed = 42;
    setup->db = datagen::Generate(cls, config);
    setup->params = workload::DeriveParams(cls, setup->db.seeds);
    setup->engine = workload::MakeEngine(engines::EngineKind::kNative);
    EXPECT_TRUE(workload::BulkLoad(*setup->engine, setup->db).status.ok());
    EXPECT_TRUE(workload::CreateTable3Indexes(*setup->engine, cls).ok());
    // A text index on top of the Table 3 value indexes, so cost-based
    // compiles can choose text probes for the contains-word() queries.
    engines::IndexSpec text;
    text.name = "words";
    text.kind = engines::IndexKind::kText;
    EXPECT_TRUE(setup->engine->CreateIndex(text).ok());
    auto [inserted, ok] = setups_.emplace(cls, std::move(setup));
    return *inserted->second;
  }

 private:
  std::map<DbClass, std::unique_ptr<ClassSetup>> setups_;
};

/// Analyzes + compiles one canned query the way the runner's prepare phase
/// does, with explicit compilation options (and, optionally, an index
/// catalog for cost-based access-path selection).
Result<std::shared_ptr<const xquery::plan::CompiledQuery>> CompileWith(
    const std::string& text, DbClass cls,
    xquery::plan::CompilationOptions options,
    const xquery::plan::IndexCatalog* catalog = nullptr) {
  XBENCH_ASSIGN_OR_RETURN(workload::AnalyzedQuery analyzed,
                          workload::AnalyzeForClassFull(text, cls));
  // Every fixture compile runs the static plan verifier, whatever the
  // build type's default — a contract violation is a test failure here,
  // not just a debug-build crash.
  options.verify = true;
  return xquery::plan::Compile(std::move(analyzed.ast),
                               &analyzed.report.annotations, options,
                               catalog);
}

/// Convenience overload for the classic two-flavour sweep: guided walks
/// forced on or off, never probing.
Result<std::shared_ptr<const xquery::plan::CompiledQuery>> CompileFor(
    const std::string& text, DbClass cls, bool guided, int parallelism = 1) {
  xquery::plan::CompilationOptions options;
  options.access_path.mode = guided
                                 ? xquery::plan::AccessPathMode::kForceGuided
                                 : xquery::plan::AccessPathMode::kForceScan;
  options.parallelism.max_intra = parallelism;
  return CompileWith(text, cls, options);
}

// --- Differential equivalence: compiled plans vs the interpreter ------------

struct Cell {
  QueryId query;
  DbClass cls;
};

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = QueryName(info.param.query);
  name += "_";
  std::string cls = datagen::DbClassName(info.param.cls);
  cls.erase(cls.find('/'), 1);
  return name + cls;
}

class PlanDifferentialTest : public ::testing::TestWithParam<Cell> {};

/// The acceptance bar of the pipeline: for every defined (query, class)
/// cell, the compiled physical plan — full scans forced, guided walks
/// forced, and cost-based against the engine's index catalog (Table 3
/// value indexes plus a text index) — must produce byte-identical
/// QueryResult::ToText() output to the legacy AST interpreter over the
/// same collection, at every intra-query parallelism bound.
TEST_P(PlanDifferentialTest, CompiledPlanMatchesInterpreterByteForByte) {
  const auto [id, cls] = GetParam();
  auto& setup = PlanFixture::Get().ForClass(cls);
  const std::string text = workload::XQueryFor(id, cls, setup.params);
  if (text.empty()) GTEST_SKIP() << "query not defined for this class";
  engines::NativeEngine& engine = setup.native();
  // Generated databases validate against the canonical schema, so the
  // workload bulk-load enables guided evaluation; every plan flavour is
  // executable.
  ASSERT_TRUE(engine.guided_eval_enabled());

  auto ast = workload::AnalyzeForClass(text, cls);
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  auto reference = engine.Query(**ast);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  const xquery::plan::IndexCatalog catalog = engine.IndexCatalogSnapshot();
  struct Flavour {
    const char* label;
    xquery::plan::AccessPathMode mode;
    const xquery::plan::IndexCatalog* catalog;
  };
  const Flavour flavours[] = {
      {"full-scan", xquery::plan::AccessPathMode::kForceScan, nullptr},
      {"guided", xquery::plan::AccessPathMode::kForceGuided, nullptr},
      {"auto+indexes", xquery::plan::AccessPathMode::kAuto, &catalog},
  };
  // Parallelism bounds > 1 route eligible operators through the shared
  // worker pool's morsel machinery; the merged answer must remain
  // byte-identical to the scalar interpreter for every bound.
  for (const Flavour& flavour : flavours) {
    for (int parallelism : {1, 2, 4}) {
      xquery::plan::CompilationOptions options;
      options.access_path.mode = flavour.mode;
      options.parallelism.max_intra = parallelism;
      auto compiled = CompileWith(text, cls, options, flavour.catalog);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      auto result = engine.ExecutePlan(**compiled);
      ASSERT_TRUE(result.ok())
          << flavour.label << ": parallelism " << parallelism << ": "
          << result.status().ToString();
      EXPECT_EQ(result->ToText(), reference->ToText())
          << QueryName(id) << " on " << datagen::DbClassName(cls) << " ("
          << flavour.label << ", access path "
          << (*compiled)->logical.access_path_summary << ") at parallelism "
          << parallelism;
    }
  }
}

std::vector<Cell> AllCells() {
  std::vector<Cell> cells;
  for (int q = 0; q < 20; ++q) {
    for (DbClass cls : workload::AllClasses()) {
      cells.push_back({static_cast<QueryId>(q), cls});
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(AllQueriesAllClasses, PlanDifferentialTest,
                         ::testing::ValuesIn(AllCells()), CellName);

// --- Plan shapes ------------------------------------------------------------

TEST(PlanShapeTest, Q19CompilesToNestedLoopJoin) {
  auto& setup = PlanFixture::Get().ForClass(DbClass::kDcMd);
  const std::string text =
      workload::XQueryFor(QueryId::kQ19, DbClass::kDcMd, setup.params);
  ASSERT_FALSE(text.empty());
  auto compiled = CompileFor(text, DbClass::kDcMd, /*guided=*/false);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  // Q19's second for clause reads no variable of the first, so the planner
  // proves independence and evaluates the right side once.
  EXPECT_NE((*compiled)->logical.ToString().find("Join($"),
            std::string::npos);
  EXPECT_NE((*compiled)->physical.ToString().find("NestedLoopJoin($"),
            std::string::npos);
}

TEST(PlanShapeTest, GuidedFlagSelectsDescendantAccessPath) {
  auto& setup = PlanFixture::Get().ForClass(DbClass::kDcSd);
  const std::string text =
      workload::XQueryFor(QueryId::kQ8, DbClass::kDcSd, setup.params);
  ASSERT_FALSE(text.empty());
  auto guided = CompileFor(text, DbClass::kDcSd, /*guided=*/true);
  ASSERT_TRUE(guided.ok());
  EXPECT_NE((*guided)->physical.ToString().find("GuidedWalk("),
            std::string::npos);
  auto full = CompileFor(text, DbClass::kDcSd, /*guided=*/false);
  ASSERT_TRUE(full.ok());
  EXPECT_NE((*full)->physical.ToString().find("DescendantScan("),
            std::string::npos);
  EXPECT_EQ((*full)->physical.ToString().find("GuidedWalk("),
            std::string::npos);
}

TEST(PlanShapeTest, AutoModeChoosesIndexProbesOnTheCannedWorkload) {
  // With the Table 3 value indexes plus a text index on offer, cost-based
  // compilation must pick an index probe for at least one canned query of
  // each TC class (the workload was designed around those indexes). Probe
  // choices render with parens in the access-path summary
  // ("IndexScan(name)" / "TextProbe(name)").
  for (DbClass cls : {DbClass::kTcSd, DbClass::kTcMd}) {
    auto& setup = PlanFixture::Get().ForClass(cls);
    const xquery::plan::IndexCatalog catalog =
        setup.native().IndexCatalogSnapshot();
    ASSERT_FALSE(catalog.indexes.empty());
    int probed = 0;
    for (int q = 0; q < 20; ++q) {
      const auto id = static_cast<QueryId>(q);
      const std::string text = workload::XQueryFor(id, cls, setup.params);
      if (text.empty()) continue;
      xquery::plan::CompilationOptions options;
      auto compiled = CompileWith(text, cls, options, &catalog);
      ASSERT_TRUE(compiled.ok()) << QueryName(id);
      if ((*compiled)->logical.access_path_summary.find('(') !=
          std::string::npos) {
        ++probed;
      }
    }
    EXPECT_GT(probed, 0) << "no canned query of " << datagen::DbClassName(cls)
                         << " compiled to an index probe";
  }
}

TEST(PlanShapeTest, ForceIndexModeRestrictsToTheNamedIndex) {
  // kForceIndex with a name only probes through that index; naming an
  // index no query shape can use must fall back to scans, not probe.
  auto& setup = PlanFixture::Get().ForClass(DbClass::kTcSd);
  const xquery::plan::IndexCatalog catalog =
      setup.native().IndexCatalogSnapshot();
  const std::string text =
      workload::XQueryFor(QueryId::kQ5, DbClass::kTcSd, setup.params);
  ASSERT_FALSE(text.empty());
  xquery::plan::CompilationOptions options;
  options.access_path.mode = xquery::plan::AccessPathMode::kForceIndex;
  options.access_path.forced_index = "no_such_index";
  auto compiled = CompileWith(text, DbClass::kTcSd, options, &catalog);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ((*compiled)->logical.access_path_summary.find('('),
            std::string::npos)
      << (*compiled)->logical.access_path_summary;
}

TEST(PlanShapeTest, EmptyRewriteGatedOnTrustStatistics) {
  // The rewrite consumes analyzer cardinality via PlanAnnotations; feed a
  // synthetic kEmpty annotation and check the gate.
  for (bool trust : {true, false}) {
    auto parsed = xquery::ParseQuery("$input/absent_child");
    ASSERT_TRUE(parsed.ok());
    xquery::plan::PlanAnnotations notes;
    notes.path_cardinality[parsed->get()] = xquery::plan::Card::kEmpty;
    xquery::plan::CompilationOptions options;
    options.cost_model.trust_statistics = trust;
    auto logical =
        xquery::plan::BuildLogicalPlan(**parsed, &notes, options);
    ASSERT_TRUE(logical.ok());
    const bool rewritten = logical->ToString().find(
                               "Empty [statically empty]") !=
                           std::string::npos;
    EXPECT_EQ(rewritten, trust);
  }
}

// --- Plan cache -------------------------------------------------------------

TEST(PlanCacheTest, LookupInsertInvalidateWithMetrics) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  const uint64_t hits0 = metrics.GetCounter("xbench.plan.cache_hits").value();
  const uint64_t misses0 =
      metrics.GetCounter("xbench.plan.cache_misses").value();
  const uint64_t inval0 =
      metrics.GetCounter("xbench.plan.invalidations").value();

  xquery::plan::PlanCache cache;
  const xquery::plan::PlanCacheKey key{1, 2, 3, false, 1, 0, "", 0};
  EXPECT_EQ(cache.Lookup(key), nullptr);

  auto parsed = xquery::ParseQuery("count($input)");
  ASSERT_TRUE(parsed.ok());
  auto compiled = xquery::plan::Compile(std::move(*parsed), nullptr,
                                        xquery::plan::CompilationOptions{});
  ASSERT_TRUE(compiled.ok());
  cache.Insert(key, *compiled);
  EXPECT_NE(cache.Lookup(key), nullptr);
  // The guided flag is part of the key: a gate flip never reuses a plan
  // compiled for the other access paths.
  const xquery::plan::PlanCacheKey guided_key{1, 2, 3, true, 1, 0, "", 0};
  EXPECT_EQ(cache.Lookup(guided_key), nullptr);
  // So is the intra-query parallelism bound: parallel-eligible operators
  // are constructed differently per bound, so plans never cross over.
  const xquery::plan::PlanCacheKey parallel_key{1, 2, 3, false, 4, 0, "", 0};
  EXPECT_EQ(cache.Lookup(parallel_key), nullptr);
  // So are the access-path mode, the forced-index name, and the index
  // catalog epoch: plans costed against superseded index state (or under
  // a different policy) miss instead of being served.
  const xquery::plan::PlanCacheKey mode_key{1, 2, 3, false, 1, 3, "", 0};
  EXPECT_EQ(cache.Lookup(mode_key), nullptr);
  const xquery::plan::PlanCacheKey forced_key{1, 2, 3, false, 1, 3,
                                              "item_id", 0};
  EXPECT_EQ(cache.Lookup(forced_key), nullptr);
  const xquery::plan::PlanCacheKey epoch_key{1, 2, 3, false, 1, 0, "", 7};
  EXPECT_EQ(cache.Lookup(epoch_key), nullptr);

  EXPECT_EQ(metrics.GetCounter("xbench.plan.cache_hits").value(), hits0 + 1);
  EXPECT_EQ(metrics.GetCounter("xbench.plan.cache_misses").value(),
            misses0 + 6);

  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(metrics.GetCounter("xbench.plan.invalidations").value(),
            inval0 + 1);
  // Invalidating an empty cache is not an invalidation event.
  cache.Invalidate();
  EXPECT_EQ(metrics.GetCounter("xbench.plan.invalidations").value(),
            inval0 + 1);
}

TEST(PlanCacheTest, RunnerCachesAcrossColdRunsAndInvalidatesOnInsert) {
  datagen::GenConfig config;
  config.target_bytes = 96 * 1024;
  config.seed = 7;
  datagen::GeneratedDatabase db = datagen::Generate(DbClass::kTcMd, config);
  const workload::QueryParams params =
      workload::DeriveParams(DbClass::kTcMd, db.seeds);
  auto engine = workload::MakeEngine(engines::EngineKind::kNative);
  ASSERT_TRUE(workload::BulkLoad(*engine, db).status.ok());
  auto& native = static_cast<engines::NativeEngine&>(*engine);

  workload::ExecutionResult first =
      workload::RunQuery(*engine, QueryId::kQ8, DbClass::kTcMd, params);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_TRUE(first.compiled);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_EQ(native.plan_cache().size(), 1u);

  // RunQuery cold-restarts the engine; the statement cache must survive.
  workload::ExecutionResult second =
      workload::RunQuery(*engine, QueryId::kQ8, DbClass::kTcMd, params);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(second.lines, first.lines);

  // A document mutation drops every cached plan (it can flip the guided
  // gate), and the next run recompiles for the new gate state.
  ASSERT_TRUE(
      native.InsertDocument({"extra.xml", db.documents[0].text}).ok());
  EXPECT_EQ(native.plan_cache().size(), 0u);
  EXPECT_FALSE(native.guided_eval_enabled());
  workload::ExecutionResult third =
      workload::RunQuery(*engine, QueryId::kQ8, DbClass::kTcMd, params);
  ASSERT_TRUE(third.status.ok());
  EXPECT_TRUE(third.compiled);
  EXPECT_FALSE(third.plan_cache_hit);
}

TEST(PlanCacheTest, GuidedPlanRejectedOnUnvalidatedCollection) {
  auto& setup = PlanFixture::Get().ForClass(DbClass::kTcMd);
  const std::string text =
      workload::XQueryFor(QueryId::kQ8, DbClass::kTcMd, setup.params);
  auto compiled = CompileFor(text, DbClass::kTcMd, /*guided=*/true);
  ASSERT_TRUE(compiled.ok());
  engines::NativeEngine fresh;
  ASSERT_TRUE(
      fresh.BulkLoad(DbClass::kTcMd,
                     workload::ToLoadDocuments(setup.db)).ok());
  ASSERT_FALSE(fresh.guided_eval_enabled());  // no validation ran
  auto result = fresh.ExecutePlan(**compiled);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- Per-operator stats -----------------------------------------------------

TEST(PlanExecTest, OperatorStatsMirrorPlanLabels) {
  auto& setup = PlanFixture::Get().ForClass(DbClass::kTcMd);
  const std::string text =
      workload::XQueryFor(QueryId::kQ17, DbClass::kTcMd, setup.params);
  auto compiled = CompileFor(text, DbClass::kTcMd, /*guided=*/false);
  ASSERT_TRUE(compiled.ok());
  auto result = setup.native().ExecutePlan(**compiled);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const xquery::exec::ExecStats& stats = setup.native().last_plan_stats();
  ASSERT_EQ(stats.operators.size(), (*compiled)->physical.labels.size());
  ASSERT_FALSE(stats.operators.empty());
  ASSERT_EQ((*compiled)->physical.depths.size(),
            (*compiled)->physical.labels.size());
  for (size_t i = 0; i < stats.operators.size(); ++i) {
    EXPECT_EQ(stats.operators[i].label, (*compiled)->physical.labels[i]);
    EXPECT_EQ(stats.operators[i].depth, (*compiled)->physical.depths[i]);
  }
  // The root operator ran and produced the answer rows.
  EXPECT_GE(stats.operators[0].invocations, 1u);
  EXPECT_EQ(stats.operators[0].rows_out, result->items.size());
  // Pre-order slot 0 is the root; self times never exceed inclusive
  // times and sum to the tree's total run time.
  EXPECT_EQ(stats.operators[0].depth, 0);
  double self_sum = 0;
  for (const xquery::exec::OperatorStats& op : stats.operators) {
    EXPECT_GE(op.self_millis, 0.0);
    EXPECT_LE(op.self_millis, op.millis + 1e-9);
    self_sum += op.self_millis;
  }
  EXPECT_NEAR(self_sum, stats.total_millis,
              std::max(0.05 * stats.total_millis, 0.5));
}

TEST(PlanExecTest, SelfTimesTelescopeUnderProbeFallbacks) {
  // Regression for self-time attribution under index-probe fallbacks: a
  // probe that misses its index re-runs the compiled fallback subtree on
  // every invocation, booking each re-run into the same child stat
  // slots. With the old bottom-up clamp those re-runs could push a
  // child's booked time past its parent's window and distort Σ self;
  // the top-down capped attribution keeps Σ self == the root's
  // inclusive time structurally. Executing an index-chosen plan on an
  // engine with no indexes forces the fallback path on every tuple.
  auto& setup = PlanFixture::Get().ForClass(DbClass::kTcSd);
  const xquery::plan::IndexCatalog catalog =
      setup.native().IndexCatalogSnapshot();
  const std::string text =
      workload::XQueryFor(QueryId::kQ5, DbClass::kTcSd, setup.params);
  ASSERT_FALSE(text.empty());
  engines::NativeEngine fresh;  // no indexes, no guided validation
  ASSERT_TRUE(fresh.BulkLoad(DbClass::kTcSd,
                             workload::ToLoadDocuments(setup.db)).ok());
  for (int parallelism : {1, 4}) {
    xquery::plan::CompilationOptions options;
    options.access_path.mode = xquery::plan::AccessPathMode::kForceIndex;
    options.access_path.allow_guided = false;  // executable on `fresh`
    options.parallelism.max_intra = parallelism;
    auto compiled = CompileWith(text, DbClass::kTcSd, options, &catalog);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    ASSERT_NE((*compiled)->physical.ToString().find("IndexScan("),
              std::string::npos)
        << (*compiled)->physical.ToString();
    auto result = fresh.ExecutePlan(**compiled);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const xquery::exec::ExecStats& stats = fresh.last_plan_stats();
    ASSERT_FALSE(stats.operators.empty());
    double self_sum = 0;
    for (const xquery::exec::OperatorStats& op : stats.operators) {
      EXPECT_GE(op.self_millis, 0.0);
      EXPECT_LE(op.self_millis, op.millis + 1e-9);
      self_sum += op.self_millis;
    }
    // Exact telescoping: Σ self equals the root operator's inclusive
    // time (not just approximately the wall clock), fallback re-runs
    // and parallel overlap notwithstanding.
    EXPECT_NEAR(self_sum, stats.operators[0].millis, 1e-6)
        << "parallelism " << parallelism;
    EXPECT_LE(self_sum, stats.total_millis + 1e-6);
  }
}

TEST(PlanExecTest, ParallelPlansLabelOperatorsAndReportMorselStats) {
  auto& setup = PlanFixture::Get().ForClass(DbClass::kTcMd);
  const std::string text =
      workload::XQueryFor(QueryId::kQ8, DbClass::kTcMd, setup.params);
  auto scalar = CompileFor(text, DbClass::kTcMd, /*guided=*/false);
  ASSERT_TRUE(scalar.ok());
  auto parallel =
      CompileFor(text, DbClass::kTcMd, /*guided=*/false, /*parallelism=*/4);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ((*scalar)->parallelism, 1);
  EXPECT_EQ((*parallel)->parallelism, 4);
  EXPECT_EQ((*parallel)->physical.max_parallelism, 4);

  // Parallel-eligible operators advertise the bound in their labels; the
  // scalar rendering is untouched (golden snapshots stay stable).
  EXPECT_EQ((*scalar)->physical.ToString().find("[parallel x"),
            std::string::npos);
  bool labeled = false;
  for (const std::string& label : (*parallel)->physical.labels) {
    if (label.find("[parallel x4]") != std::string::npos) labeled = true;
  }
  EXPECT_TRUE(labeled) << (*parallel)->physical.ToString();

  auto reference = setup.native().ExecutePlan(**scalar);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  auto result = setup.native().ExecutePlan(**parallel);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToText(), reference->ToText());

  const xquery::exec::ExecStats& stats = setup.native().last_plan_stats();
  EXPECT_EQ(stats.max_parallelism, 4);
  uint64_t morsels = 0;
  for (const xquery::exec::OperatorStats& op : stats.operators) {
    EXPECT_GE(op.self_millis, 0.0);  // capped under concurrent children
    morsels += op.morsels;
  }
  EXPECT_GT(morsels, 0u) << "Q8's descendant step should have split into "
                            "morsels on this collection";
  // The modeled makespan replaces each region's measured all-lane CPU
  // with its list-scheduled makespan on 4 ideal lanes: never more than
  // the serial work, never less than a quarter of it.
  EXPECT_GT(stats.parallel_busy_millis, 0.0);
  EXPECT_LE(stats.parallel_modeled_millis,
            stats.parallel_busy_millis + 1e-9);
  EXPECT_GE(stats.parallel_modeled_millis,
            stats.parallel_busy_millis / 4.0 - 1e-9);
  EXPECT_GT(stats.modeled_total_millis, 0.0);
  // Thread-CPU vs wall-clock granularity: allow a little slack.
  EXPECT_LE(stats.modeled_total_millis, stats.total_millis * 1.05 + 0.5);
}

// --- Xcolumn AST cache ------------------------------------------------------

TEST(ClobAstCacheTest, QueryDocumentParsesEachQueryTextOnce) {
  auto& setup = PlanFixture::Get().ForClass(DbClass::kTcMd);
  engines::ClobEngine clob;
  ASSERT_TRUE(clob.BulkLoad(DbClass::kTcMd,
                            workload::ToLoadDocuments(setup.db)).ok());
  const std::vector<std::string> names = clob.DocumentNames();
  ASSERT_GE(names.size(), 2u);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  const uint64_t hits0 =
      metrics.GetCounter("xbench.plan.ast_cache_hits").value();
  const uint64_t misses0 =
      metrics.GetCounter("xbench.plan.ast_cache_misses").value();
  const std::string query = "count($input//title)";
  ASSERT_TRUE(clob.QueryDocument(names[0], query).ok());
  EXPECT_EQ(metrics.GetCounter("xbench.plan.ast_cache_misses").value(),
            misses0 + 1);
  ASSERT_TRUE(clob.QueryDocument(names[1], query).ok());
  EXPECT_EQ(metrics.GetCounter("xbench.plan.ast_cache_hits").value(),
            hits0 + 1);
  EXPECT_EQ(metrics.GetCounter("xbench.plan.ast_cache_misses").value(),
            misses0 + 1);
}

}  // namespace
}  // namespace xbench
