#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/heap_file.h"

namespace xbench::storage {
namespace {

TEST(DiskTest, AllocateAndRoundTrip) {
  SimulatedDisk disk;
  PageId id = disk.Allocate();
  Page page;
  page.bytes[0] = 42;
  disk.WritePage(id, page);
  Page read;
  disk.ReadPage(id, read);
  EXPECT_EQ(read.bytes[0], 42);
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_EQ(disk.writes(), 1u);
}

TEST(DiskTest, ChargesLatency) {
  DiskProfile profile;
  profile.random_read_micros = 100;
  profile.sequential_read_micros = 10;
  profile.write_micros = 20;
  SimulatedDisk disk(profile);
  PageId a = disk.Allocate();
  PageId b = disk.Allocate();
  Page page;
  disk.WritePage(a, page);   // 20
  disk.ReadPage(b, page);    // random (a+1==b -> sequential!) = 10
  EXPECT_EQ(disk.clock().ElapsedMicros(), 30u);
  disk.ReadPage(a, page);    // random = 100
  EXPECT_EQ(disk.clock().ElapsedMicros(), 130u);
  disk.ReadPage(b, page);    // sequential after a = 10
  EXPECT_EQ(disk.clock().ElapsedMicros(), 140u);
}

TEST(BufferPoolTest, HitsAvoidDiskReads) {
  SimulatedDisk disk;
  BufferPool pool(disk, 4);
  PageId id = disk.Allocate();
  pool.Fetch(id);
  pool.Fetch(id);
  pool.Fetch(id);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(disk.reads(), 1u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  SimulatedDisk disk;
  BufferPool pool(disk, 2);
  PageId a = disk.Allocate();
  PageId b = disk.Allocate();
  PageId c = disk.Allocate();

  Page& fa = pool.Fetch(a);
  fa.bytes[0] = 7;
  pool.MarkDirty(a);
  pool.Fetch(b);
  pool.Fetch(c);  // evicts a (LRU), writing it back

  EXPECT_EQ(disk.writes(), 1u);
  Page check;
  disk.ReadPage(a, check);
  EXPECT_EQ(check.bytes[0], 7);
}

TEST(BufferPoolTest, CountsEvictionsAndWritebacks) {
  SimulatedDisk disk;
  BufferPool pool(disk, 2);
  PageId a = disk.Allocate();
  PageId b = disk.Allocate();
  PageId c = disk.Allocate();

  pool.Fetch(a);
  pool.MarkDirty(a);
  pool.Fetch(b);
  pool.Fetch(c);  // evicts dirty a -> one eviction, one writeback
  pool.Fetch(a);  // evicts clean b -> eviction without writeback

  EXPECT_EQ(pool.evictions(), 2u);
  EXPECT_EQ(pool.writebacks(), 1u);
  const PoolCounters counters = pool.counters();
  EXPECT_EQ(counters.misses, 4u);
  EXPECT_EQ(counters.evictions, 2u);
  EXPECT_EQ(counters.writebacks, 1u);
}

TEST(BufferPoolTest, FlushCountsWritebacks) {
  SimulatedDisk disk;
  BufferPool pool(disk, 8);
  PageId a = disk.Allocate();
  pool.Fetch(a);
  pool.MarkDirty(a);
  pool.FlushAll();
  EXPECT_EQ(pool.writebacks(), 1u);
  pool.FlushAll();  // now clean: nothing to write back
  EXPECT_EQ(pool.writebacks(), 1u);
}

TEST(BufferPoolTest, ResetCountersZeroesStatsOnly) {
  SimulatedDisk disk;
  BufferPool pool(disk, 8);
  PageId a = disk.Allocate();
  pool.Fetch(a);
  pool.Fetch(a);
  pool.ResetCounters();
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 0u);
  // Frames survive the reset: the next fetch is still a hit.
  pool.Fetch(a);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPoolTest, ColdRestartDropsEverything) {
  SimulatedDisk disk;
  BufferPool pool(disk, 8);
  PageId a = disk.Allocate();
  pool.Fetch(a);
  pool.ColdRestart();
  pool.Fetch(a);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(HeapFileTest, AppendAndRead) {
  SimulatedDisk disk;
  BufferPool pool(disk, 16);
  HeapFile file(disk, pool);
  RecordId a = file.Append("hello");
  RecordId b = file.Append("world!");
  EXPECT_EQ(file.Read(a), "hello");
  EXPECT_EQ(file.Read(b), "world!");
  EXPECT_EQ(file.record_count(), 2u);
}

TEST(HeapFileTest, RecordsSpanPages) {
  SimulatedDisk disk;
  BufferPool pool(disk, 16);
  HeapFile file(disk, pool);
  std::string big(3 * kPageSize + 123, 'x');
  big[0] = 'A';
  big[big.size() - 1] = 'Z';
  RecordId id = file.Append(big);
  std::string read = file.Read(id);
  EXPECT_EQ(read.size(), big.size());
  EXPECT_EQ(read.front(), 'A');
  EXPECT_EQ(read.back(), 'Z');
  EXPECT_GE(disk.PageCount(), 4u);
}

TEST(HeapFileTest, ScanVisitsInAppendOrder) {
  SimulatedDisk disk;
  BufferPool pool(disk, 16);
  HeapFile file(disk, pool);
  std::vector<std::string> payloads{"a", "bb", "ccc", std::string(9000, 'd')};
  for (const auto& p : payloads) file.Append(p);

  std::vector<std::string> seen;
  file.Scan([&](RecordId, std::string_view payload) {
    seen.emplace_back(payload);
    return true;
  });
  EXPECT_EQ(seen, payloads);
}

TEST(HeapFileTest, ScanEarlyStop) {
  SimulatedDisk disk;
  BufferPool pool(disk, 16);
  HeapFile file(disk, pool);
  for (int i = 0; i < 10; ++i) file.Append("r" + std::to_string(i));
  int count = 0;
  file.Scan([&](RecordId, std::string_view) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST(HeapFileTest, EmptyRecordSupported) {
  SimulatedDisk disk;
  BufferPool pool(disk, 16);
  HeapFile file(disk, pool);
  RecordId id = file.Append("");
  EXPECT_EQ(file.Read(id), "");
}

TEST(HeapFileTest, LargeScanChargesIo) {
  SimulatedDisk disk;
  BufferPool pool(disk, 4);  // smaller than the file
  HeapFile file(disk, pool);
  for (int i = 0; i < 50; ++i) file.Append(std::string(4000, 'x'));
  pool.ColdRestart();
  const uint64_t before = disk.clock().ElapsedMicros();
  file.Scan([](RecordId, std::string_view) { return true; });
  EXPECT_GT(disk.clock().ElapsedMicros(), before);
}

}  // namespace
}  // namespace xbench::storage
