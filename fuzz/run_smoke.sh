#!/usr/bin/env bash
# fuzz_smoke ctest body: replay the checked-in seed corpus and regression
# inputs through all four harnesses, then run a short deterministic
# mutation loop in each (XBENCH_FUZZ_ITERS iterations, fixed seed, so two
# runs of the suite execute byte-identical inputs).
#
# usage: run_smoke.sh CORPUS_DIR REGRESSIONS_DIR XML_BIN DTD_BIN XQUERY_BIN JSON_BIN
set -euo pipefail

corpus="$1"
regressions="$2"
shift 2

iters="${XBENCH_FUZZ_ITERS:-200}"
kinds=(xml dtd xquery json)

i=0
for bin in "$@"; do
  kind="${kinds[$i]}"
  i=$((i + 1))
  args=()
  [ -d "$corpus/$kind" ] && args+=("$corpus/$kind")
  [ -d "$regressions/$kind" ] && args+=("$regressions/$kind")
  if [ "${#args[@]}" -eq 0 ]; then
    echo "fuzz_smoke: no corpus for $kind under $corpus or $regressions" >&2
    exit 1
  fi
  "$bin" "${args[@]}" --fuzz "$iters" --seed 42
done

echo "fuzz_smoke: all harnesses OK (iters=$iters)"
