for $a in $input
where some $p in $a//p satisfies (contains-word($p, "xebu") and contains-word($p, "xedo"))
return $a/prolog/title