for $a in $input
where some $p in $a//p satisfies contains-word($p, "xenu")
return data($a/prolog/title)