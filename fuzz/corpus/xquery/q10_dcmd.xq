for $o in $input[self::order]
where $o/order_date >= "2000-06-01" and $o/order_date <= "2001-09-30"
order by $o/shipping/ship_type
return <o><id>{$o/@id}</id><date>{data($o/order_date)}</date><ship>{data($o/shipping/ship_type)}</ship></o>