for $e in $input//entry
where some $t in $e//qt satisfies contains-word($t, "xenu")
return data($e/hw)