for $loc in distinct-values($input//qloc)
order by $loc
return <group><loc>{$loc}</loc><entries>{count($input//entry[.//qloc = $loc])}</entries></group>