for $a in $input
where $a/prolog/author/name = "Alan Turing"
return data($a/body/sec[heading = "Introduction"]/following-sibling::sec[1]/heading)