for $o in $input[self::order]
where some $l in $o/order_lines/order_line satisfies contains-word($l/comments, "xenu")
return $o/@id