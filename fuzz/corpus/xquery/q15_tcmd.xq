for $a in $input, $au in $a/prolog/author
where $a/prolog/date >= "1998-01-01" and $a/prolog/date <= "2000-12-31" and exists($au/contact) and string-length(($au/contact)[1]) = 0
return $au/name