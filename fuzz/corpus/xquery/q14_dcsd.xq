for $i in $input/item
where $i/date_of_release >= "2000-06-01" and $i/date_of_release <= "2001-09-30" and empty($i/publisher/fax_number)
return data($i/publisher/name)