for $o in $input[self::order]
where $o/order_date >= "2000-06-01" and $o/order_date <= "2001-09-30" and (some $l in $o/order_lines/order_line satisfies empty($l/comments))
return $o/@id