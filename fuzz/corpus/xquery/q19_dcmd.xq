for $o in $input[self::order][@id = "O000031"], $c in $input[self::customers]/customer
where $c/@id = $o/customer_id
return <r><name>{concat(data($c/first_name), " ", data($c/last_name))}</name><phone>{data($c/phone)}</phone><status>{data($o/status)}</status></r>