for $e in $input//entry
where exists($e//q) and empty($e/etym)
return data($e/hw)