for $i in $input/item
where every $c in $i/authors/author/mail_address/country satisfies $c = "Country01"
return $i/title