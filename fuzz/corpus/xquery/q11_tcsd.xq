for $q in $input//entry[hw = "word_70"]//q
order by $q/qd
return <quote><qau>{data($q/qau)}</qau><qd>{data($q/qd)}</qd></quote>