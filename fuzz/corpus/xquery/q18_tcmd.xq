for $a in $input
where some $p in $a//p satisfies contains($p, "xeba xebe")
return <hit><title>{data($a/prolog/title)}</title><abstract>{data(($a/prolog/abstract/p)[1])}</abstract></hit>