for $a in $input
where $a/prolog/date >= "1998-01-01" and $a/prolog/date <= "2000-12-31" and empty($a/prolog/keywords)
return data($a/prolog/title)