for $i in $input/item
where contains-word($i/description, "xenu")
return data($i/title)