// Standalone driver for the fuzz harnesses on toolchains without
// libFuzzer (the GCC-only CI image). Provides the two modes the
// fuzz_smoke gate needs:
//
//   harness FILE|DIR...              replay each corpus input once
//   harness --fuzz N [--seed S] ...  deterministic seeded mutation loop
//                                    over the corpus (N iterations)
//
// Under Clang the harnesses link real libFuzzer instead and this file is
// not compiled (see fuzz/CMakeLists.txt).
//
// The mutation loop writes each input to `<progname>.last_input` before
// executing it (override with --dump-last PATH, disable with
// --dump-last ""), so a crashing input survives the crash and can be
// checked into fuzz/regressions/.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

bool ReadWholeFile(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

/// Collects regular files under `arg` (recursively for directories),
/// sorted so replay order is deterministic.
void CollectInputs(const std::string& arg, std::vector<fs::path>& out) {
  fs::path path(arg);
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (entry.is_regular_file(ec)) out.push_back(entry.path());
    }
  } else if (fs::is_regular_file(path, ec)) {
    out.push_back(path);
  } else {
    std::fprintf(stderr, "fuzz driver: no such input '%s'\n", arg.c_str());
  }
}

/// One deterministic mutation: byte flip, insert, erase, chunk duplicate,
/// truncate, or splice with another corpus entry.
std::string Mutate(const std::vector<std::string>& corpus,
                   const std::string& base, xbench::Rng& rng) {
  std::string out = base;
  const int rounds = static_cast<int>(rng.NextBounded(4)) + 1;
  for (int i = 0; i < rounds; ++i) {
    switch (rng.NextBounded(6)) {
      case 0:  // flip a byte
        if (!out.empty()) {
          out[rng.NextIndex(out.size())] =
              static_cast<char>(rng.NextBounded(256));
        }
        break;
      case 1:  // insert a byte
        out.insert(out.begin() + static_cast<long>(rng.NextIndex(out.size() + 1)),
                   static_cast<char>(rng.NextBounded(256)));
        break;
      case 2:  // erase a byte
        if (!out.empty()) {
          out.erase(out.begin() + static_cast<long>(rng.NextIndex(out.size())));
        }
        break;
      case 3: {  // duplicate a chunk
        if (out.empty()) break;
        const size_t from = rng.NextIndex(out.size());
        const size_t len = std::min<size_t>(
            rng.NextBounded(64) + 1, out.size() - from);
        out.insert(rng.NextIndex(out.size() + 1),
                   out.substr(from, len));
        break;
      }
      case 4:  // truncate
        if (!out.empty()) out.resize(rng.NextIndex(out.size()));
        break;
      default: {  // splice head of this with tail of another entry
        const std::string& other = corpus[rng.NextIndex(corpus.size())];
        const size_t head = out.empty() ? 0 : rng.NextIndex(out.size());
        const size_t tail = other.empty() ? 0 : rng.NextIndex(other.size());
        out = out.substr(0, head) + other.substr(tail);
        break;
      }
    }
    if (out.size() > (1u << 16)) out.resize(1u << 16);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t fuzz_iters = 0;
  uint64_t seed = 1;
  std::string dump_path;
  bool dump_set = false;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fuzz") == 0 && i + 1 < argc) {
      fuzz_iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--dump-last") == 0 && i + 1 < argc) {
      dump_path = argv[++i];
      dump_set = true;
    } else {
      CollectInputs(argv[i], inputs);
    }
  }
  if (inputs.empty() && fuzz_iters == 0) {
    std::fprintf(stderr,
                 "usage: %s [--fuzz N] [--seed S] [--dump-last PATH] "
                 "FILE|DIR...\n",
                 argv[0]);
    return 2;
  }
  std::sort(inputs.begin(), inputs.end());

  std::vector<std::string> corpus;
  for (const fs::path& path : inputs) {
    std::string contents;
    if (!ReadWholeFile(path, contents)) {
      std::fprintf(stderr, "fuzz driver: cannot read '%s'\n",
                   path.string().c_str());
      return 2;
    }
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(contents.data()), contents.size());
    corpus.push_back(std::move(contents));
  }

  if (fuzz_iters > 0) {
    if (!dump_set) {
      dump_path = std::string(argv[0]) + ".last_input";
    }
    if (corpus.empty()) corpus.push_back("");
    xbench::Rng rng(seed);
    for (uint64_t i = 0; i < fuzz_iters; ++i) {
      const std::string input =
          Mutate(corpus, corpus[rng.NextIndex(corpus.size())], rng);
      if (!dump_path.empty()) {
        std::ofstream dump(dump_path, std::ios::binary | std::ios::trunc);
        dump.write(input.data(), static_cast<std::streamsize>(input.size()));
      }
      LLVMFuzzerTestOneInput(
          reinterpret_cast<const uint8_t*>(input.data()), input.size());
    }
    if (!dump_path.empty()) {
      std::error_code ec;
      fs::remove(dump_path, ec);  // clean exit: no crasher to keep
    }
  }

  std::printf("%s: %zu corpus inputs, %llu fuzz iterations: OK\n", argv[0],
              corpus.size(),
              static_cast<unsigned long long>(fuzz_iters));
  return 0;
}
