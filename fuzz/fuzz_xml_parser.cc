// Fuzz harness for the XML parser (src/xml/parser.cc).
//
// Property checked beyond "no crash / no sanitizer report": parsing is a
// fixed point under serialization — any input the parser accepts must
// serialize (compact mode) to text that reparses successfully and
// serializes to the same bytes. A violation means the parser and the
// serializer disagree about the document dialect, which would corrupt
// documents through a store/reload cycle.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "xml/parser.h"
#include "xml/serializer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto doc = xbench::xml::Parse(input, "fuzz");
  // CheckWellFormed must agree with Parse on every input.
  const bool well_formed = xbench::xml::CheckWellFormed(input).ok();
  if (doc.ok() != well_formed) {
    std::fprintf(stderr,
                 "xml fuzz: Parse ok=%d but CheckWellFormed ok=%d\n",
                 doc.ok() ? 1 : 0, well_formed ? 1 : 0);
    std::abort();
  }
  if (!doc.ok()) return 0;

  const std::string once = xbench::xml::Serialize(*doc);
  auto reparsed = xbench::xml::Parse(once, "fuzz-reparse");
  if (!reparsed.ok()) {
    std::fprintf(stderr, "xml fuzz: serialized form does not reparse: %s\n",
                 reparsed.status().ToString().c_str());
    std::abort();
  }
  const std::string twice = xbench::xml::Serialize(*reparsed);
  if (once != twice) {
    std::fprintf(stderr,
                 "xml fuzz: serialize/reparse is not a fixed point\n"
                 "  once:  %s\n  twice: %s\n",
                 once.c_str(), twice.c_str());
    std::abort();
  }
  return 0;
}
