// Fuzz harness for obs::ParseJson (src/obs/json.cc).
//
// Properties: ParseJson and ValidateJson must agree on every input (they
// share one parser — drift means a refactor split them), an accepted
// document's tree must be fully materialized without sanitizer reports,
// and accepted numbers are always finite (the writer cannot re-emit
// non-finite values).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "obs/json.h"

namespace {

size_t WalkJson(const xbench::obs::JsonValue& value) {
  using Kind = xbench::obs::JsonValue::Kind;
  size_t nodes = 1;
  switch (value.kind) {
    case Kind::kNumber:
      if (!std::isfinite(value.number)) {
        std::fprintf(stderr, "json fuzz: parser accepted non-finite number\n");
        std::abort();
      }
      break;
    case Kind::kObject:
      for (const auto& [key, member] : value.members) {
        nodes += key.size() ? 1 : 0;
        nodes += WalkJson(member);
      }
      break;
    case Kind::kArray:
      for (const auto& item : value.items) nodes += WalkJson(item);
      break;
    default:
      break;
  }
  return nodes;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto parsed = xbench::obs::ParseJson(input);
  const bool valid = xbench::obs::ValidateJson(input).ok();
  if (parsed.ok() != valid) {
    std::fprintf(stderr,
                 "json fuzz: ParseJson ok=%d but ValidateJson ok=%d\n",
                 parsed.ok() ? 1 : 0, valid ? 1 : 0);
    std::abort();
  }
  if (parsed.ok()) (void)WalkJson(*parsed);
  return 0;
}
