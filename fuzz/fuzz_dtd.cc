// Fuzz harness for the DTD parser (src/xml/dtd.cc).
//
// Any input must either parse into a Dtd or yield a Status error — never
// crash, loop, or trip a sanitizer. Accepted DTDs get their element list
// and per-element declarations walked so the parsed structure is fully
// materialized under ASan/UBSan.

#include <cstdint>
#include <string_view>

#include "xml/dtd.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto dtd = xbench::xml::Dtd::Parse(input);
  if (!dtd.ok()) return 0;
  // Touch every declaration the parse produced.
  size_t particles = 0;
  for (const std::string& name : dtd->ElementNames()) {
    const auto* decl = dtd->FindElement(name);
    particles += decl->sequence.size() + decl->mixed.size() +
                 decl->attributes.size();
  }
  (void)particles;
  return 0;
}
