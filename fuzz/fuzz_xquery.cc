// Fuzz harness for the XQuery lexer + parser (src/xquery/).
//
// Property checked beyond "no crash": rendering is a fixed point — any
// input that parses must render through ToQueryString to text that
// reparses into a tree rendering to the same bytes. A violation means the
// parser and the renderer disagree about the grammar, which would break
// the generator-driven differential oracle (it ships queries as text).
//
// ToQueryString may legitimately refuse a parsed tree (a string literal
// containing both quote characters has no spelling in this grammar);
// those inputs only assert the no-crash property.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "xquery/ast.h"
#include "xquery/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto parsed = xbench::xquery::ParseQuery(input);
  if (!parsed.ok()) return 0;

  auto rendered = xbench::xquery::ToQueryString(**parsed);
  if (!rendered.ok()) return 0;  // unrenderable literal; no-crash only

  auto reparsed = xbench::xquery::ParseQuery(*rendered);
  if (!reparsed.ok()) {
    std::fprintf(stderr,
                 "xquery fuzz: rendered query does not reparse\n"
                 "  rendered: %s\n  error: %s\n",
                 rendered->c_str(), reparsed.status().ToString().c_str());
    std::abort();
  }
  auto rendered_again = xbench::xquery::ToQueryString(**reparsed);
  if (!rendered_again.ok() || *rendered != *rendered_again) {
    std::fprintf(stderr,
                 "xquery fuzz: render/reparse is not a fixed point\n"
                 "  once:  %s\n  twice: %s\n",
                 rendered->c_str(),
                 rendered_again.ok() ? rendered_again->c_str()
                                     : rendered_again.status().ToString().c_str());
    std::abort();
  }
  return 0;
}
