// Generates the checked-in seed corpus under fuzz/corpus/ from the same
// deterministic sources the benchmark itself uses: datagen sample
// documents per class (xml/), the canonical class DTDs (dtd/), the 20
// canned queries instantiated per class (xquery/), and representative
// observability JSON documents (json/).
//
//   corpus_gen <corpus-root>
//
// Output is a pure function of the datagen seed, so re-running over a
// clean tree is a no-op diff; the corpus only changes when the generators
// or the canned queries change, which is exactly when it should.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/class_schemas.h"
#include "datagen/generator.h"
#include "workload/queries.h"

namespace {

namespace fs = std::filesystem;
using xbench::datagen::DbClass;
using xbench::workload::QueryId;

constexpr DbClass kClasses[] = {DbClass::kTcSd, DbClass::kTcMd,
                                DbClass::kDcSd, DbClass::kDcMd};

// Filename-safe class tags ("TC/SD" has a path separator).
const char* Tag(DbClass cls) {
  switch (cls) {
    case DbClass::kTcSd: return "tcsd";
    case DbClass::kTcMd: return "tcmd";
    case DbClass::kDcSd: return "dcsd";
    case DbClass::kDcMd: return "dcmd";
  }
  return "unknown";
}

bool WriteFile(const fs::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) {
    std::fprintf(stderr, "corpus_gen: cannot write %s\n",
                 path.string().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  std::error_code ec;
  for (const char* kind : {"xml", "dtd", "xquery", "json"}) {
    fs::create_directories(root / kind, ec);
    if (ec) {
      std::fprintf(stderr, "corpus_gen: cannot create %s/%s: %s\n",
                   root.string().c_str(), kind, ec.message().c_str());
      return 2;
    }
  }
  size_t files = 0;

  // xml/: a small deterministic sample database per class; keep only the
  // first two documents so the checked-in corpus stays compact (the
  // mutation loop explores from these seeds).
  xbench::datagen::GenConfig config;
  config.seed = 42;
  config.target_bytes = 16 << 10;
  for (DbClass cls : kClasses) {
    const auto db = xbench::datagen::Generate(cls, config);
    size_t kept = 0;
    for (const auto& doc : db.documents) {
      if (kept == 2) break;
      char name[64];
      std::snprintf(name, sizeof(name), "%s_%zu.xml", Tag(cls), kept);
      if (!WriteFile(root / "xml" / name, doc.text)) return 1;
      ++files;
      ++kept;
    }
  }

  // dtd/: the canonical inferred DTD of each class.
  for (DbClass cls : kClasses) {
    const auto& schema = xbench::analysis::CanonicalClassSchema(cls);
    if (!WriteFile(root / "dtd" / (std::string(Tag(cls)) + ".dtd"),
                   schema.dtd_text)) {
      return 1;
    }
    ++files;
  }

  // xquery/: every canned query defined for each class, with parameters
  // bound from the canonical sample's workload seeds.
  for (DbClass cls : kClasses) {
    const auto& schema = xbench::analysis::CanonicalClassSchema(cls);
    const auto params = xbench::workload::DeriveParams(cls, schema.seeds);
    for (int q = 0; q < 20; ++q) {
      const auto id = static_cast<QueryId>(q);
      const std::string text = xbench::workload::XQueryFor(id, cls, params);
      if (text.empty()) continue;  // query not defined for this class
      char name[64];
      std::snprintf(name, sizeof(name), "q%02d_%s.xq", q + 1, Tag(cls));
      if (!WriteFile(root / "xquery" / name, text)) return 1;
      ++files;
    }
  }

  // json/: documents shaped like the observability outputs (metrics
  // export, trace spans) plus literal-edge cases the parser must keep
  // rejecting consistently with ValidateJson.
  const std::vector<std::pair<const char*, const char*>> json_samples = {
      {"metrics.json",
       "{\"metrics\":[{\"name\":\"xbench_query_latency_seconds\","
       "\"labels\":{\"query\":\"Q5\",\"class\":\"DC/SD\"},"
       "\"quantiles\":[0.5,0.95,0.99],\"values\":[0.0012,0.0034,0.0051]}],"
       "\"dropped\":0}"},
      {"trace.json",
       "{\"spans\":[{\"id\":1,\"parent\":null,\"op\":\"parse\","
       "\"dur_us\":812},{\"id\":2,\"parent\":1,\"op\":\"plan\","
       "\"dur_us\":94,\"tags\":{\"guided\":true}}]}"},
      {"scalars.json", "[true,false,null,-0.5,1234567890,\"\\u0041\\n\"]"},
      {"nested.json", "{\"a\":[[[{\"b\":[{}]}]]],\"c\":\"\"}"},
  };
  for (const auto& [name, text] : json_samples) {
    if (!WriteFile(root / "json" / name, text)) return 1;
    ++files;
  }

  std::printf("corpus_gen: wrote %zu files under %s\n", files,
              root.string().c_str());
  return 0;
}
