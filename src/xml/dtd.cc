#include "xml/dtd.h"

#include "common/strings.h"

namespace xbench::xml {
namespace {

/// Splits "a+, b?, c" into particles.
Result<std::vector<Dtd::Particle>> ParseSequence(std::string_view body) {
  std::vector<Dtd::Particle> out;
  for (const std::string& raw : Split(body, ',')) {
    std::string token{Trim(raw)};
    if (token.empty()) {
      return Status::InvalidArgument("empty particle in content model");
    }
    Dtd::Particle particle;
    const char last = token.back();
    if (last == '?' || last == '+' || last == '*') {
      particle.occurrence = last;
      token.pop_back();
    }
    particle.name = std::string(Trim(token));
    if (particle.name.empty()) {
      return Status::InvalidArgument("missing element name in content model");
    }
    out.push_back(std::move(particle));
  }
  return out;
}

}  // namespace

Result<Dtd> Dtd::Parse(std::string_view text) {
  Dtd dtd;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t open = text.find("<!", pos);
    if (open == std::string_view::npos) break;
    const size_t close = text.find('>', open);
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("unterminated declaration");
    }
    std::string_view decl = text.substr(open + 2, close - open - 2);
    pos = close + 1;

    if (StartsWith(decl, "ELEMENT")) {
      decl.remove_prefix(7);
      decl = Trim(decl);
      const size_t space = decl.find_first_of(" \t");
      if (space == std::string_view::npos) {
        return Status::InvalidArgument("ELEMENT without content model");
      }
      const std::string name{decl.substr(0, space)};
      std::string_view model = Trim(decl.substr(space));
      ElementDecl element;
      if (model == "EMPTY") {
        element.model = Model::kEmpty;
      } else if (model == "(#PCDATA)") {
        element.model = Model::kPcdata;
      } else if (StartsWith(model, "(#PCDATA") && EndsWith(model, ")*")) {
        element.model = Model::kMixed;
        std::string_view names = model.substr(8, model.size() - 10);
        for (const std::string& part : Split(names, '|')) {
          const std::string trimmed{Trim(part)};
          if (!trimmed.empty()) element.mixed.insert(trimmed);
        }
      } else if (StartsWith(model, "(") && EndsWith(model, ")")) {
        element.model = Model::kSequence;
        XBENCH_ASSIGN_OR_RETURN(
            element.sequence,
            ParseSequence(model.substr(1, model.size() - 2)));
      } else {
        return Status::InvalidArgument("unsupported content model: " +
                                       std::string(model));
      }
      dtd.elements_[name] = std::move(element);
    } else if (StartsWith(decl, "ATTLIST")) {
      decl.remove_prefix(7);
      std::vector<std::string> parts;
      for (const std::string& part : Split(decl, ' ')) {
        if (!std::string_view(Trim(part)).empty()) {
          parts.emplace_back(Trim(part));
        }
      }
      if (parts.size() != 4 || parts[2] != "CDATA") {
        return Status::InvalidArgument("unsupported ATTLIST form");
      }
      auto it = dtd.elements_.find(parts[0]);
      if (it == dtd.elements_.end()) {
        return Status::InvalidArgument("ATTLIST for undeclared element '" +
                                       parts[0] + "'");
      }
      it->second.attributes[parts[1]] = parts[3] == "#REQUIRED";
    } else {
      return Status::InvalidArgument("unsupported declaration <!" +
                                     std::string(decl.substr(0, 10)) + "...");
    }
  }
  if (dtd.elements_.empty()) {
    return Status::InvalidArgument("DTD declares no elements");
  }
  return dtd;
}

const Dtd::ElementDecl* Dtd::FindElement(const std::string& name) const {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : &it->second;
}

std::vector<std::string> Dtd::ElementNames() const {
  std::vector<std::string> out;
  out.reserve(elements_.size());
  for (const auto& [name, decl] : elements_) out.push_back(name);
  return out;
}

namespace {

Status ValidateElement(const Dtd& dtd, const Node& node);

Status ValidateContent(const Dtd::ElementDecl& decl, const Node& node) {
  switch (decl.model) {
    case Dtd::Model::kEmpty:
      if (!node.children().empty()) {
        return Status::InvalidArgument("element '" + node.name() +
                                       "' declared EMPTY has content");
      }
      return Status::Ok();
    case Dtd::Model::kPcdata:
      for (const auto& child : node.children()) {
        if (child->is_element()) {
          return Status::InvalidArgument(
              "element '" + node.name() +
              "' declared (#PCDATA) contains element <" + child->name() +
              ">");
        }
      }
      return Status::Ok();
    case Dtd::Model::kMixed:
      for (const auto& child : node.children()) {
        if (child->is_element() &&
            decl.mixed.count(child->name()) == 0) {
          return Status::InvalidArgument("element <" + child->name() +
                                         "> not allowed in mixed content of '" +
                                         node.name() + "'");
        }
      }
      return Status::Ok();
    case Dtd::Model::kSequence: {
      // Text is not allowed in an element-content model (indentation
      // whitespace is stripped by our parser).
      std::vector<const Node*> children;
      for (const auto& child : node.children()) {
        if (child->is_text()) {
          if (!std::string_view(Trim(child->text())).empty()) {
            return Status::InvalidArgument(
                "unexpected character data in element content of '" +
                node.name() + "'");
          }
          continue;
        }
        children.push_back(child.get());
      }
      size_t i = 0;
      for (const Dtd::Particle& particle : decl.sequence) {
        size_t count = 0;
        while (i < children.size() && children[i]->name() == particle.name) {
          ++count;
          ++i;
        }
        const size_t min = particle.occurrence == '1' ? 1
                           : particle.occurrence == '+' ? 1
                                                        : 0;
        const size_t max =
            (particle.occurrence == '1' || particle.occurrence == '?')
                ? 1
                : static_cast<size_t>(-1);
        if (count < min || count > max) {
          return Status::InvalidArgument(
              "content of '" + node.name() + "' violates model at '" +
              particle.name + "' (saw " + std::to_string(count) + ")");
        }
      }
      if (i != children.size()) {
        return Status::InvalidArgument("unexpected element <" +
                                       children[i]->name() + "> in '" +
                                       node.name() + "'");
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled content model");
}

Status ValidateElement(const Dtd& dtd, const Node& node) {
  const Dtd::ElementDecl* decl = dtd.FindElement(node.name());
  if (decl == nullptr) {
    return Status::InvalidArgument("undeclared element <" + node.name() +
                                   ">");
  }
  // Attributes.
  for (const Attribute& attr : node.attributes()) {
    if (decl->attributes.count(attr.name) == 0) {
      return Status::InvalidArgument("undeclared attribute '" + attr.name +
                                     "' on <" + node.name() + ">");
    }
  }
  for (const auto& [name, required] : decl->attributes) {
    if (required && node.FindAttribute(name) == nullptr) {
      return Status::InvalidArgument("missing required attribute '" + name +
                                     "' on <" + node.name() + ">");
    }
  }
  XBENCH_RETURN_IF_ERROR(ValidateContent(*decl, node));
  for (const auto& child : node.children()) {
    if (child->is_element()) {
      XBENCH_RETURN_IF_ERROR(ValidateElement(dtd, *child));
    }
  }
  return Status::Ok();
}

}  // namespace

Status Dtd::Validate(const Node& root) const {
  return ValidateElement(*this, root);
}

}  // namespace xbench::xml
