#ifndef XBENCH_XML_SCHEMA_SUMMARY_H_
#define XBENCH_XML_SCHEMA_SUMMARY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "xml/node.h"

namespace xbench::xml {

/// Statistics about one parent→child element-type edge.
struct ChildStats {
  std::string name;
  /// Minimum/maximum number of occurrences of this child type across all
  /// instances of the parent type. min == 0 means optional (rendered as the
  /// dotted boxes of the paper's Figures 1–4).
  int min_occurs = 0;
  int max_occurs = 0;
};

/// Structural summary of a document collection: the element-type graph with
/// occurrence bounds, attribute inventory, and depth — the information the
/// paper visualizes as schema diagrams (Figures 1–4).
class SchemaSummary {
 public:
  /// Accumulates the structure of `doc` into the summary.
  void AddDocument(const Document& doc);

  /// Renders an ASCII tree rooted at the (single) root element type.
  /// Optional children are marked with '?', repeated children with '*'.
  std::string ToTree() const;

  /// Emits a DTD inferred from the instances — the paper's companion
  /// report ships DTD/XML Schema files for each class; this derives the
  /// equivalent from generated data. Content models use the observed
  /// child order with ?/+/* occurrence markers; elements with text get
  /// #PCDATA (mixed models when they also have element children);
  /// attributes are CDATA #REQUIRED/#IMPLIED by observed presence.
  std::string ToDtd() const;

  /// All element type names seen.
  std::vector<std::string> ElementTypes() const;

  /// Distinct document-root element types in first-seen order. Multi-root
  /// collections (DC/MD order documents plus flat tables) have several.
  const std::vector<std::string>& RootTypes() const { return root_types_; }

  /// Attribute names seen on `element_type`.
  std::vector<std::string> AttributesOf(const std::string& element_type) const;

  /// Children stats of `element_type` in first-seen order.
  std::vector<ChildStats> ChildrenOf(const std::string& element_type) const;

  int max_depth() const { return max_depth_; }
  size_t document_count() const { return document_count_; }

 private:
  struct TypeInfo {
    // first-seen order of child types (tie-break for the topo sort).
    std::vector<std::string> child_order;
    std::map<std::string, ChildStats> children;
    // Observed pairwise sibling precedences (a appeared before b) — the
    // DTD content model orders children by the topological order of this
    // relation, so optional children missing from early instances still
    // land in the right slot.
    std::set<std::pair<std::string, std::string>> order_edges;
    // attribute name -> number of instances carrying it.
    std::map<std::string, int> attributes;
    int instance_count = 0;
    bool has_text = false;
  };

  void Accumulate(const Node& node, int depth);

  std::map<std::string, TypeInfo> types_;
  std::string root_type_;
  std::vector<std::string> root_types_;
  int max_depth_ = 0;
  size_t document_count_ = 0;
};

}  // namespace xbench::xml

#endif  // XBENCH_XML_SCHEMA_SUMMARY_H_
