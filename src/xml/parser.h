#ifndef XBENCH_XML_PARSER_H_
#define XBENCH_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/node.h"

namespace xbench::xml {

struct ParseOptions {
  /// When true, text nodes consisting only of whitespace between elements
  /// are dropped (typical for data-centric documents serialized with
  /// indentation). Mixed-content whitespace adjacent to non-whitespace text
  /// is always preserved.
  bool strip_insignificant_whitespace = true;
};

/// Non-validating XML 1.0 parser covering the benchmark's document dialect:
/// prolog, elements, attributes, character data, CDATA sections, comments,
/// processing instructions (skipped), and the five predefined entities plus
/// numeric character references. DTDs are skipped, not processed.
///
/// Returns kCorruption with a line/column message on malformed input.
Result<Document> Parse(std::string_view input, std::string document_name,
                       const ParseOptions& options = {});

/// Well-formedness check without building a tree (used by bulk loaders that
/// only verify, mirroring XML Extender's load-time check).
Status CheckWellFormed(std::string_view input);

}  // namespace xbench::xml

#endif  // XBENCH_XML_PARSER_H_
