#include "xml/serializer.h"

namespace xbench::xml {
namespace {

void AppendEscaped(std::string_view text, bool attribute, std::string& out) {
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        if (attribute) {
          out += "&quot;";
        } else {
          out.push_back(c);
        }
        break;
      default:
        out.push_back(c);
    }
  }
}

void SerializeRec(const Node& node, const SerializeOptions& options, int depth,
                  std::string& out) {
  if (node.is_text()) {
    AppendEscaped(node.text(), /*attribute=*/false, out);
    return;
  }
  auto indent = [&](int d) {
    if (!options.indent) return;
    out.push_back('\n');
    out.append(static_cast<size_t>(d) * 2, ' ');
  };

  out.push_back('<');
  out += node.name();
  for (const Attribute& attr : node.attributes()) {
    out.push_back(' ');
    out += attr.name;
    out += "=\"";
    AppendEscaped(attr.value, /*attribute=*/true, out);
    out.push_back('"');
  }
  if (node.children().empty()) {
    out += "/>";
    return;
  }
  out.push_back('>');

  // Only indent children when none of them is a text node (mixed content
  // must be emitted verbatim to preserve significance of whitespace).
  bool has_text_child = false;
  for (const auto& child : node.children()) {
    if (child->is_text()) has_text_child = true;
  }
  const bool indent_children = options.indent && !has_text_child;
  for (const auto& child : node.children()) {
    if (indent_children) indent(depth + 1);
    SerializeRec(*child, options, depth + 1, out);
  }
  if (indent_children) indent(depth);
  out += "</";
  out += node.name();
  out.push_back('>');
}

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  AppendEscaped(text, /*attribute=*/false, out);
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  AppendEscaped(text, /*attribute=*/true, out);
  return out;
}

std::string Serialize(const Node& node, const SerializeOptions& options) {
  std::string out;
  if (options.declaration) out += "<?xml version=\"1.0\"?>\n";
  SerializeRec(node, options, 0, out);
  return out;
}

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  if (doc.root() == nullptr) return "";
  return Serialize(*doc.root(), options);
}

}  // namespace xbench::xml
