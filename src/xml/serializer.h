#ifndef XBENCH_XML_SERIALIZER_H_
#define XBENCH_XML_SERIALIZER_H_

#include <string>

#include "xml/node.h"

namespace xbench::xml {

struct SerializeOptions {
  /// Pretty-print with 2-space indentation. Indentation inserts whitespace
  /// text that the parser strips back out (when an element has element
  /// children), so compact mode is the round-trip-exact mode.
  bool indent = false;
  /// Emit an `<?xml version="1.0"?>` declaration.
  bool declaration = false;
};

/// Serializes a subtree to XML text. Escapes <, >, &, and quotes in
/// attribute values.
std::string Serialize(const Node& node, const SerializeOptions& options = {});

/// Serializes a whole document.
std::string Serialize(const Document& doc, const SerializeOptions& options = {});

/// Escapes character data (<, >, &).
std::string EscapeText(std::string_view text);

/// Escapes an attribute value (<, >, &, ").
std::string EscapeAttribute(std::string_view text);

}  // namespace xbench::xml

#endif  // XBENCH_XML_SERIALIZER_H_
