#ifndef XBENCH_XML_DTD_H_
#define XBENCH_XML_DTD_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/node.h"

namespace xbench::xml {

/// A parsed DTD covering the subset SchemaSummary::ToDtd emits (which is
/// also the subset the paper's class DTDs need): EMPTY, (#PCDATA),
/// mixed (#PCDATA | a | b)*, and sequence models with ?/+/* occurrence
/// markers; CDATA attributes that are #REQUIRED or #IMPLIED.
///
/// The paper notes XML Extender "does not make use of DTD or XML Schema
/// meta-data" and validation is disabled during the timed loads (§3.2.1);
/// this validator is the tool that *checks* generated data against the
/// class DTDs outside the timed path.
class Dtd {
 public:
  enum class Model { kEmpty, kPcdata, kMixed, kSequence };

  /// One child slot in a sequence model. occurrence: '1' (exactly one),
  /// '?', '+', or '*'.
  struct Particle {
    std::string name;
    char occurrence = '1';
  };

  struct ElementDecl {
    Model model = Model::kEmpty;
    std::vector<Particle> sequence;   // kSequence
    std::set<std::string> mixed;      // kMixed: allowed inline elements
    std::map<std::string, bool> attributes;  // name -> required
  };

  /// Parses DTD text. Unknown constructs are rejected.
  static Result<Dtd> Parse(std::string_view text);

  /// Validates a document tree: every element declared, content matches
  /// its model, required attributes present, no undeclared attributes.
  /// Returns the first violation found.
  Status Validate(const Node& root) const;

  const ElementDecl* FindElement(const std::string& name) const;
  size_t element_count() const { return elements_.size(); }

  /// All declared element names, sorted. The static analyzer walks the
  /// element graph through this.
  std::vector<std::string> ElementNames() const;

 private:
  std::map<std::string, ElementDecl> elements_;
};

}  // namespace xbench::xml

#endif  // XBENCH_XML_DTD_H_
