#include "xml/node.h"

namespace xbench::xml {

std::unique_ptr<Node> Node::Element(std::string name) {
  auto node = std::unique_ptr<Node>(new Node(NodeKind::kElement));
  node->name_ = std::move(name);
  return node;
}

std::unique_ptr<Node> Node::Text(std::string content) {
  auto node = std::unique_ptr<Node>(new Node(NodeKind::kText));
  node->text_ = std::move(content);
  return node;
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElement(std::string name) {
  return AddChild(Element(std::move(name)));
}

void Node::AddText(std::string content) {
  if (content.empty()) return;
  AddChild(Text(std::move(content)));
}

Node* Node::AddSimple(std::string name, std::string content) {
  Node* child = AddElement(std::move(name));
  child->AddText(std::move(content));
  return child;
}

void Node::SetAttribute(std::string name, std::string value) {
  for (Attribute& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::move(value);
      return;
    }
  }
  attributes_.push_back({std::move(name), std::move(value)});
}

const std::string* Node::FindAttribute(std::string_view name) const {
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

const Node* Node::FirstChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == name) return child.get();
  }
  return nullptr;
}

Node* Node::FirstChild(std::string_view name) {
  return const_cast<Node*>(
      static_cast<const Node*>(this)->FirstChild(name));
}

std::vector<const Node*> Node::Children(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == name) out.push_back(child.get());
  }
  return out;
}

std::vector<const Node*> Node::ChildElements() const {
  std::vector<const Node*> out;
  for (const auto& child : children_) {
    if (child->is_element()) out.push_back(child.get());
  }
  return out;
}

std::string Node::TextContent() const {
  std::string out;
  Visit([&out](const Node& node) {
    if (node.is_text()) out += node.text();
  });
  return out;
}

size_t Node::SubtreeSize() const {
  size_t count = 1;
  for (const auto& child : children_) count += child->SubtreeSize();
  return count;
}

std::unique_ptr<Node> Node::Clone() const {
  auto copy = std::unique_ptr<Node>(new Node(kind_));
  copy->name_ = name_;
  copy->text_ = text_;
  copy->attributes_ = attributes_;
  copy->children_.reserve(children_.size());
  for (const auto& child : children_) {
    copy->AddChild(child->Clone());
  }
  return copy;
}

bool Node::StructurallyEquals(const Node& other) const {
  if (kind_ != other.kind_ || name_ != other.name_ || text_ != other.text_ ||
      attributes_ != other.attributes_ ||
      children_.size() != other.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->StructurallyEquals(*other.children_[i])) return false;
  }
  return true;
}

void Node::Visit(const std::function<void(const Node&)>& fn) const {
  fn(*this);
  for (const auto& child : children_) child->Visit(fn);
}

namespace {
void AssignOrderRec(Node* node, uint32_t& next) {
  node->set_order(next++);
  // Iterating the owned children mutably requires a const_cast-free path;
  // Visit() is const, so recurse manually here.
  for (const auto& child : node->children()) {
    AssignOrderRec(const_cast<Node*>(child.get()), next);
  }
}
}  // namespace

void Document::AssignOrder() {
  if (!root_) return;
  uint32_t next = 1;
  AssignOrderRec(root_.get(), next);
}

Document Document::Clone() const {
  return Document(name_, root_ ? root_->Clone() : nullptr);
}

}  // namespace xbench::xml
