#ifndef XBENCH_XML_NODE_H_
#define XBENCH_XML_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xbench::xml {

/// Node kinds of the simplified XML data model. Attributes are stored on
/// elements (they are not children and do not take part in document order,
/// matching the XPath data model's treatment for our purposes).
enum class NodeKind : uint8_t {
  kElement,
  kText,
};

struct Attribute {
  std::string name;
  std::string value;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// A node in an XML document tree.
///
/// Ownership: a node owns its children (`unique_ptr`); `parent` is a
/// non-owning back pointer. Document order ids are assigned by
/// Document::AssignOrder() and are used by the query engine for sorting
/// node sequences into document order.
class Node {
 public:
  static std::unique_ptr<Node> Element(std::string name);
  static std::unique_ptr<Node> Text(std::string content);

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// Element tag name; empty for text nodes.
  const std::string& name() const { return name_; }
  /// Text content; empty for elements (use TextContent() for subtrees).
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  Node* parent() const { return parent_; }
  uint32_t order() const { return order_; }
  void set_order(uint32_t order) { order_ = order; }

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Appends a child, taking ownership; returns a borrowed pointer to it.
  Node* AddChild(std::unique_ptr<Node> child);
  /// Convenience: appends `<name>` and returns it.
  Node* AddElement(std::string name);
  /// Convenience: appends a text node (even if empty? no — skips empty).
  void AddText(std::string content);
  /// Convenience: appends `<name>text</name>`.
  Node* AddSimple(std::string name, std::string content);

  void SetAttribute(std::string name, std::string value);
  /// Returns nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const;

  /// First child element with the given tag, or nullptr.
  const Node* FirstChild(std::string_view name) const;
  Node* FirstChild(std::string_view name);
  /// All child elements with the given tag, in document order.
  std::vector<const Node*> Children(std::string_view name) const;
  /// All child elements regardless of tag.
  std::vector<const Node*> ChildElements() const;

  /// Concatenation of all descendant text, in document order (the XPath
  /// string value of an element).
  std::string TextContent() const;

  /// Number of nodes in this subtree (elements + text), including self.
  size_t SubtreeSize() const;

  /// Deep copy; the copy has no parent and order ids of 0.
  std::unique_ptr<Node> Clone() const;

  /// Structural equality: same kind, name/text, attributes (ordered) and
  /// recursively equal children. Order ids are ignored.
  bool StructurallyEquals(const Node& other) const;

  /// Pre-order traversal over the subtree including self.
  void Visit(const std::function<void(const Node&)>& fn) const;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

 private:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  uint32_t order_ = 0;
  std::string name_;
  std::string text_;
  Node* parent_ = nullptr;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// An XML document: a name (file name in the benchmark collections) plus a
/// single root element.
class Document {
 public:
  Document() = default;
  Document(std::string name, std::unique_ptr<Node> root)
      : name_(std::move(name)), root_(std::move(root)) {
    AssignOrder();
  }

  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const Node* root() const { return root_.get(); }
  Node* root() { return root_.get(); }
  void set_root(std::unique_ptr<Node> root) {
    root_ = std::move(root);
    AssignOrder();
  }

  /// (Re)assigns document-order ids: pre-order, starting at 1.
  void AssignOrder();

  /// Total node count (elements + text nodes).
  size_t NodeCount() const { return root_ ? root_->SubtreeSize() : 0; }

  Document Clone() const;

 private:
  std::string name_;
  std::unique_ptr<Node> root_;
};

}  // namespace xbench::xml

#endif  // XBENCH_XML_NODE_H_
