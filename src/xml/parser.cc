#include "xml/parser.h"

#include <cctype>
#include <cstdlib>

namespace xbench::xml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view text) {
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Maximum element nesting the parser accepts. Deeper documents (the fuzz
// corpus contains a 100k-deep `<a><a>...` chain) would otherwise exhaust
// the native stack — a crash, not a Status error.
constexpr int kMaxElementDepth = 256;

/// Recursive-descent XML parser over a string_view cursor.
class ParserImpl {
 public:
  ParserImpl(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<std::unique_ptr<Node>> ParseDocument() {
    SkipProlog();
    if (AtEnd()) return Error("document has no root element");
    XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseElement());
    SkipMisc();
    if (!AtEnd()) return Error("content after root element");
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  void Advance(size_t n = 1) {
    for (size_t i = 0; i < n && pos_ < input_.size(); ++i) {
      if (input_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
      ++pos_;
    }
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(std::string message) const {
    return Status::Corruption(message + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  /// Skips the XML declaration, DOCTYPE, comments and PIs before the root.
  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else if (LookingAt("<!DOCTYPE")) {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    size_t found = input_.find(terminator, pos_);
    if (found == std::string_view::npos) {
      Advance(input_.size() - pos_);
    } else {
      Advance(found + terminator.size() - pos_);
    }
  }

  void SkipDoctype() {
    // DOCTYPE may contain an internal subset in brackets.
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      Advance();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) return;
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Decodes entity and character references in `raw` into `out`.
  Status DecodeText(std::string_view raw, std::string& out) {
    out.reserve(out.size() + raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        ++i;
        continue;
      }
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (!entity.empty() && entity[0] == '#') {
        char* parse_end = nullptr;
        std::string digits(entity.substr(1));
        const bool hex =
            !digits.empty() && (digits[0] == 'x' || digits[0] == 'X');
        const char* num_begin = digits.c_str() + (hex ? 1 : 0);
        const long code = std::strtol(num_begin, &parse_end, hex ? 16 : 10);
        // At least one digit must be consumed; the encoder below emits at
        // most three UTF-8 bytes, so the accepted range is the BMP (and
        // NUL is excluded — XML forbids it in content).
        if (parse_end == num_begin || *parse_end != '\0' || code <= 0 ||
            code > 0xFFFF) {
          return Error("invalid character reference '&" + std::string(entity) +
                       ";'");
        }
        // Encode as UTF-8.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Error("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi + 1;
    }
    return Status::Ok();
  }

  Result<std::unique_ptr<Node>> ParseElement() {
    if (depth_ >= kMaxElementDepth) {
      return Error("element nesting exceeds " +
                   std::to_string(kMaxElementDepth) + " levels");
    }
    ++depth_;
    auto result = ParseElementInner();
    --depth_;
    return result;
  }

  Result<std::unique_ptr<Node>> ParseElementInner() {
    if (!LookingAt("<")) return Error("expected '<'");
    Advance();
    XBENCH_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto element = Node::Element(name);

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + name);
      if (Peek() == '>' || LookingAt("/>")) break;
      XBENCH_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute");
      Advance();
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) Advance();
      if (AtEnd()) return Error("unterminated attribute value");
      std::string value;
      XBENCH_RETURN_IF_ERROR(
          DecodeText(input_.substr(start, pos_ - start), value));
      Advance();  // closing quote
      if (element->FindAttribute(attr_name) != nullptr) {
        return Error("duplicate attribute '" + attr_name + "'");
      }
      element->SetAttribute(std::move(attr_name), std::move(value));
    }

    if (LookingAt("/>")) {
      Advance(2);
      return element;
    }
    Advance();  // '>'

    // Content.
    std::string pending_text;
    auto flush_text = [&](bool has_element_sibling_context) {
      if (pending_text.empty()) return;
      if (options_.strip_insignificant_whitespace &&
          has_element_sibling_context && IsAllWhitespace(pending_text)) {
        pending_text.clear();
        return;
      }
      element->AddText(std::move(pending_text));
      pending_text.clear();
    };

    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + name + ">");
      if (LookingAt("</")) {
        flush_text(!element->children().empty());
        Advance(2);
        XBENCH_ASSIGN_OR_RETURN(std::string close_name, ParseName());
        if (close_name != name) {
          return Error("mismatched end tag </" + close_name + "> for <" +
                       name + ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
        Advance();
        // Strip a trailing whitespace-only text child created before an
        // end tag when the element has element children (indentation).
        return element;
      }
      if (LookingAt("<!--")) {
        SkipUntil("-->");
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        Advance(9);
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        pending_text.append(input_.substr(pos_, end - pos_));
        Advance(end + 3 - pos_);
        continue;
      }
      if (LookingAt("<?")) {
        SkipUntil("?>");
        continue;
      }
      if (Peek() == '<') {
        flush_text(/*has_element_sibling_context=*/true);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<Node> child, ParseElement());
        element->AddChild(std::move(child));
        continue;
      }
      // Character data up to the next markup.
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') Advance();
      XBENCH_RETURN_IF_ERROR(
          DecodeText(input_.substr(start, pos_ - start), pending_text));
    }
  }

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int depth_ = 0;
};

}  // namespace

Result<Document> Parse(std::string_view input, std::string document_name,
                       const ParseOptions& options) {
  ParserImpl parser(input, options);
  auto root = parser.ParseDocument();
  if (!root.ok()) return root.status();
  return Document(std::move(document_name), std::move(root).value());
}

Status CheckWellFormed(std::string_view input) {
  ParserImpl parser(input, ParseOptions{});
  auto root = parser.ParseDocument();
  return root.status();
}

}  // namespace xbench::xml
