#include "xml/schema_summary.h"

#include <algorithm>

namespace xbench::xml {

void SchemaSummary::AddDocument(const Document& doc) {
  if (doc.root() == nullptr) return;
  ++document_count_;
  if (root_type_.empty()) root_type_ = doc.root()->name();
  if (std::find(root_types_.begin(), root_types_.end(),
                doc.root()->name()) == root_types_.end()) {
    root_types_.push_back(doc.root()->name());
  }
  Accumulate(*doc.root(), 1);
}

void SchemaSummary::Accumulate(const Node& node, int depth) {
  max_depth_ = std::max(max_depth_, depth);
  TypeInfo& info = types_[node.name()];
  ++info.instance_count;
  for (const Attribute& attr : node.attributes()) {
    ++info.attributes[attr.name];
  }

  // Count per-type occurrences among this instance's children, and record
  // the order in which distinct types appear.
  std::map<std::string, int> counts;
  std::vector<std::string> appearance;
  for (const auto& child : node.children()) {
    if (child->is_text()) {
      info.has_text = true;
      continue;
    }
    if (counts.find(child->name()) == counts.end()) {
      appearance.push_back(child->name());
    }
    if (++counts[child->name()] == 1 &&
        info.children.find(child->name()) == info.children.end()) {
      info.child_order.push_back(child->name());
      // A child type first seen on the Nth instance was absent on the
      // previous N-1 instances, so its min is 0.
      ChildStats stats;
      stats.name = child->name();
      stats.min_occurs = info.instance_count > 1 ? 0 : counts[child->name()];
      info.children[child->name()] = stats;
    }
  }
  for (auto& [name, stats] : info.children) {
    auto it = counts.find(name);
    const int n = it == counts.end() ? 0 : it->second;
    if (info.instance_count == 1) {
      stats.min_occurs = n;
      stats.max_occurs = n;
    } else {
      stats.min_occurs = std::min(stats.min_occurs, n);
      stats.max_occurs = std::max(stats.max_occurs, n);
    }
  }
  for (size_t i = 0; i < appearance.size(); ++i) {
    for (size_t j = i + 1; j < appearance.size(); ++j) {
      info.order_edges.emplace(appearance[i], appearance[j]);
    }
  }

  for (const auto& child : node.children()) {
    if (child->is_element()) Accumulate(*child, depth + 1);
  }
}

std::vector<std::string> SchemaSummary::ElementTypes() const {
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [name, info] : types_) out.push_back(name);
  return out;
}

std::vector<std::string> SchemaSummary::AttributesOf(
    const std::string& element_type) const {
  auto it = types_.find(element_type);
  if (it == types_.end()) return {};
  std::vector<std::string> out;
  for (const auto& [name, count] : it->second.attributes) {
    out.push_back(name);
  }
  return out;
}

std::vector<ChildStats> SchemaSummary::ChildrenOf(
    const std::string& element_type) const {
  auto it = types_.find(element_type);
  if (it == types_.end()) return {};
  const TypeInfo& info = it->second;

  // Topological order of the observed precedences (Kahn), tie-broken by
  // first-seen order. Falls back to first-seen order on a cycle (truly
  // interleaved children cannot be expressed as a sequence model anyway).
  std::map<std::string, int> in_degree;
  for (const std::string& name : info.child_order) in_degree[name] = 0;
  for (const auto& [a, b] : info.order_edges) {
    if (info.order_edges.count({b, a}) != 0) continue;  // contradiction
    ++in_degree[b];
  }
  std::vector<std::string> order;
  std::set<std::string> done;
  while (order.size() < info.child_order.size()) {
    bool advanced = false;
    for (const std::string& name : info.child_order) {
      if (done.count(name) != 0 || in_degree[name] != 0) continue;
      order.push_back(name);
      done.insert(name);
      for (const auto& [a, b] : info.order_edges) {
        if (a == name && info.order_edges.count({b, a}) == 0) {
          --in_degree[b];
        }
      }
      advanced = true;
      break;
    }
    if (!advanced) {  // cycle: fall back
      order = info.child_order;
      break;
    }
  }

  std::vector<ChildStats> out;
  for (const std::string& name : order) {
    out.push_back(info.children.at(name));
  }
  return out;
}

namespace {

void RenderRec(const SchemaSummary& summary, const std::string& type,
               const std::string& prefix, int depth,
               std::set<std::string>& on_path, std::string& out) {
  auto attrs = summary.AttributesOf(type);
  out += type;
  for (const std::string& attr : attrs) {
    out += " @" + attr;
  }
  out.push_back('\n');
  if (on_path.count(type) != 0) {
    // Recursive element type (TC/MD articles allow these); cut the cycle.
    return;
  }
  on_path.insert(type);
  auto children = summary.ChildrenOf(type);
  for (size_t i = 0; i < children.size(); ++i) {
    const ChildStats& child = children[i];
    const bool last = i + 1 == children.size();
    out += prefix;
    out += last ? "`-- " : "|-- ";
    if (child.min_occurs == 0) out += "? ";
    if (child.max_occurs > 1) out += "* ";
    RenderRec(summary, child.name, prefix + (last ? "    " : "|   "),
              depth + 1, on_path, out);
  }
  on_path.erase(type);
}

}  // namespace

std::string SchemaSummary::ToTree() const {
  if (root_type_.empty()) return "(empty)\n";
  std::string out;
  std::set<std::string> on_path;
  RenderRec(*this, root_type_, "", 0, on_path, out);
  return out;
}

std::string SchemaSummary::ToDtd() const {
  std::string out;
  // Root type first, then the rest alphabetically (types_ is ordered).
  std::vector<std::string> order;
  if (!root_type_.empty()) order.push_back(root_type_);
  for (const auto& [name, info] : types_) {
    if (name != root_type_) order.push_back(name);
  }
  for (const std::string& name : order) {
    const TypeInfo& info = types_.at(name);
    std::string model;
    if (info.has_text && !info.children.empty()) {
      // Mixed content model.
      model = "(#PCDATA";
      for (const std::string& child : info.child_order) {
        model += " | " + child;
      }
      model += ")*";
    } else if (info.has_text) {
      model = "(#PCDATA)";
    } else if (info.children.empty()) {
      model = "EMPTY";
    } else {
      model = "(";
      const std::vector<ChildStats> ordered = ChildrenOf(name);
      for (size_t i = 0; i < ordered.size(); ++i) {
        const ChildStats& stats = ordered[i];
        if (i != 0) model += ", ";
        model += stats.name;
        if (stats.min_occurs == 0 && stats.max_occurs <= 1) {
          model += "?";
        } else if (stats.min_occurs == 0) {
          model += "*";
        } else if (stats.max_occurs > 1) {
          model += "+";
        }
      }
      model += ")";
    }
    out += "<!ELEMENT " + name + " " + model + ">\n";
    for (const auto& [attr, count] : info.attributes) {
      const bool required = count == info.instance_count;
      out += "<!ATTLIST " + name + " " + attr + " CDATA " +
             (required ? "#REQUIRED" : "#IMPLIED") + ">\n";
    }
  }
  return out;
}

}  // namespace xbench::xml
