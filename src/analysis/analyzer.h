#ifndef XBENCH_ANALYSIS_ANALYZER_H_
#define XBENCH_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xml/dtd.h"
#include "xml/schema_summary.h"
#include "xquery/ast.h"
#include "xquery/plan/logical.h"

namespace xbench::analysis {

/// What a diagnostic says about a query, ordered from "the name is a typo"
/// to "the path is legal but provably selects nothing".
enum class DiagnosticKind {
  /// Name test matches no element or attribute declared in the DTD at all
  /// (a typo'd element, paper §2.2 validation concern).
  kUnknownName,
  /// The name is declared, but this axis can never select it from the
  /// possible context types (wrong axis, child under an EMPTY/#PCDATA
  /// model, attribute on the wrong element, ...).
  kImpossibleStep,
  /// A `//name` step whose target is declared but outside the descendant
  /// closure of every possible context type.
  kUnreachableDescendant,
  /// The DTD admits the path but the instance statistics bound its
  /// cardinality to zero — a Q14-style always-empty branch.
  kAlwaysEmptyPath,
};

/// "unknown-name", "impossible-step", ...
const char* DiagnosticKindName(DiagnosticKind kind);

enum class Severity { kError, kWarning };

struct Diagnostic {
  DiagnosticKind kind = DiagnosticKind::kUnknownName;
  Severity severity = Severity::kError;
  /// Rendered path prefix up to and including the offending step.
  std::string path;
  std::string message;

  std::string ToString() const;
};

/// Occurrence classification of a path relative to one context item,
/// propagated from SchemaSummary min/max bounds (paper Figures 1–4).
enum class Cardinality { kEmpty, kAtMostOne, kMany, kUnknown };
const char* CardinalityName(Cardinality cardinality);

/// Per-path explain record (one per path expression with steps).
struct PathInfo {
  std::string rendered;                   // "$input/item/@id"
  Cardinality cardinality = Cardinality::kUnknown;
  std::vector<std::string> result_types;  // possible result element types
  /// Rendered `//`-step expansions, e.g. "item -> authors/author/first_name".
  std::vector<std::string> expansions;
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<PathInfo> paths;
  /// Number of descendant (`//`) steps resolved to concrete child chains.
  int resolved_steps = 0;
  /// Planner-facing annotations keyed by AST node identity (valid only
  /// while the analyzed AST is alive). Same facts as the legacy
  /// Step::expansions mutations + kAlwaysEmptyPath diagnostics, but
  /// consumable off the AST by plan::BuildLogicalPlan.
  xquery::plan::PlanAnnotations annotations;

  bool HasErrors() const;
  /// Explain-style rendering: diagnostics first, then one line per path.
  std::string ToString() const;
};

/// The schema a query is checked against: the class DTD, optional instance
/// statistics (enables cardinality bounds), and the element types `$input`
/// may be bound to (the collection's document-root types).
struct SchemaContext {
  const xml::Dtd* dtd = nullptr;
  /// May be null: path typing still runs, cardinality stays kUnknown.
  const xml::SchemaSummary* summary = nullptr;
  std::vector<std::string> roots;
};

/// Type-checks `query` against `context`: walks every path expression
/// through the DTD's element graph, flags steps that can never match,
/// resolves `//` steps into the concrete label chains the DTD admits
/// (annotating the AST via Step::expansions), and classifies path
/// cardinality from the schema summary. Non-path expressions are traversed
/// so every embedded path (predicates, FLWOR clauses, constructors) is
/// covered.
AnalysisReport Analyze(xquery::Expr& query, const SchemaContext& context);

/// Status form threaded through the workload runner: Ok when no error
/// diagnostics, InvalidArgument listing them otherwise. `summary` may be
/// null. When `report_out` is non-null the full report is moved into it
/// (the planner consumes `report_out->annotations`).
Status AnalyzeQuery(xquery::Expr& query, const xml::Dtd& dtd,
                    const xml::SchemaSummary* summary,
                    const std::vector<std::string>& roots,
                    AnalysisReport* report_out = nullptr);

}  // namespace xbench::analysis

#endif  // XBENCH_ANALYSIS_ANALYZER_H_
