#include "analysis/class_schemas.h"

#include <array>
#include <memory>

namespace xbench::analysis {
namespace {

/// Sample size for schema inference. Large enough that every optional
/// element of every class (the dotted boxes of the paper's Figures 1–4)
/// occurs at least once; small enough to build in milliseconds.
constexpr uint64_t kSampleBytes = 96 * 1024;
constexpr uint64_t kSampleSeed = 42;

std::unique_ptr<ClassSchema> BuildSchema(datagen::DbClass cls) {
  datagen::GenConfig config;
  config.target_bytes = kSampleBytes;
  config.seed = kSampleSeed;
  const datagen::GeneratedDatabase db = datagen::Generate(cls, config);

  auto schema = std::make_unique<ClassSchema>();
  schema->seeds = db.seeds;
  for (const datagen::GeneratedDocument& doc : db.documents) {
    schema->summary.AddDocument(doc.dom);
  }
  schema->roots = schema->summary.RootTypes();
  schema->dtd_text = schema->summary.ToDtd();
  auto dtd = xml::Dtd::Parse(schema->dtd_text);
  // The inferred DTD always round-trips through our parser (dtd_test
  // asserts this for every class); a failure here is a programming error.
  if (dtd.ok()) schema->dtd = std::move(dtd).value();
  return schema;
}

}  // namespace

const ClassSchema& CanonicalClassSchema(datagen::DbClass cls) {
  static std::array<std::unique_ptr<ClassSchema>, 4>* cache =
      new std::array<std::unique_ptr<ClassSchema>, 4>{};
  auto& slot = (*cache)[static_cast<size_t>(cls)];
  if (slot == nullptr) slot = BuildSchema(cls);
  return *slot;
}

}  // namespace xbench::analysis
