#include "analysis/class_schemas.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace xbench::analysis {
namespace {

/// Sample size for schema inference. Large enough that every optional
/// element of every class (the dotted boxes of the paper's Figures 1–4)
/// occurs at least once; small enough to build in milliseconds.
constexpr uint64_t kSampleBytes = 96 * 1024;
constexpr uint64_t kSampleSeed = 42;

std::unique_ptr<ClassSchema> BuildSchema(datagen::DbClass cls) {
  datagen::GenConfig config;
  config.target_bytes = kSampleBytes;
  config.seed = kSampleSeed;
  const datagen::GeneratedDatabase db = datagen::Generate(cls, config);

  auto schema = std::make_unique<ClassSchema>();
  schema->seeds = db.seeds;
  for (const datagen::GeneratedDocument& doc : db.documents) {
    schema->summary.AddDocument(doc.dom);
  }
  schema->roots = schema->summary.RootTypes();
  schema->dtd_text = schema->summary.ToDtd();
  auto dtd = xml::Dtd::Parse(schema->dtd_text);
  if (!dtd.ok()) {
    // The inferred DTD always round-trips through our parser (dtd_test
    // asserts this for every class); a failure here is a programming
    // error, and continuing with an empty DTD would turn every later
    // analysis into misleading unknown-name errors.
    std::fprintf(stderr,
                 "xbench: canonical DTD for class %s failed to parse: %s\n",
                 datagen::DbClassName(cls), dtd.status().ToString().c_str());
    std::abort();
  }
  schema->dtd = std::move(dtd).value();
  return schema;
}

/// Does `decl`'s content model admit an element child named `child`?
bool AdmitsChild(const xml::Dtd::ElementDecl& decl, const std::string& child) {
  switch (decl.model) {
    case xml::Dtd::Model::kSequence:
      return std::any_of(decl.sequence.begin(), decl.sequence.end(),
                         [&](const xml::Dtd::Particle& particle) {
                           return particle.name == child;
                         });
    case xml::Dtd::Model::kMixed:
      return decl.mixed.count(child) != 0;
    case xml::Dtd::Model::kEmpty:
    case xml::Dtd::Model::kPcdata:
      return false;
  }
  return false;
}

Status ValidateElementEdges(const xml::Node& node, const xml::Dtd& dtd) {
  const xml::Dtd::ElementDecl* decl = dtd.FindElement(node.name());
  if (decl == nullptr) {
    return Status::InvalidArgument("element '" + node.name() +
                                   "' is not declared in the class schema");
  }
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    if (!AdmitsChild(*decl, child->name())) {
      return Status::InvalidArgument("edge '" + node.name() + "' -> '" +
                                     child->name() +
                                     "' is not admitted by the class schema");
    }
    XBENCH_RETURN_IF_ERROR(ValidateElementEdges(*child, dtd));
  }
  return Status::Ok();
}

}  // namespace

datagen::GenConfig CanonicalSampleConfig() {
  datagen::GenConfig config;
  config.target_bytes = kSampleBytes;
  config.seed = kSampleSeed;
  return config;
}

const ClassSchema& CanonicalClassSchema(datagen::DbClass cls) {
  static std::array<std::once_flag, 4> flags;
  static std::array<std::unique_ptr<ClassSchema>, 4>* cache =
      new std::array<std::unique_ptr<ClassSchema>, 4>{};
  const auto index = static_cast<size_t>(cls);
  std::call_once(flags[index], [&] { (*cache)[index] = BuildSchema(cls); });
  return *(*cache)[index];
}

Status ValidateForGuidedEval(const xml::Node& root,
                             const ClassSchema& schema) {
  if (std::find(schema.roots.begin(), schema.roots.end(), root.name()) ==
      schema.roots.end()) {
    return Status::InvalidArgument("document root '" + root.name() +
                                   "' is not a root type of the class schema");
  }
  return ValidateElementEdges(root, schema.dtd);
}

Status ValidateDatabaseForGuidedEval(const datagen::GeneratedDatabase& db) {
  const ClassSchema& schema = CanonicalClassSchema(db.db_class);
  for (const datagen::GeneratedDocument& doc : db.documents) {
    const xml::Node* root = doc.dom.root();
    if (root == nullptr) {
      return Status::InvalidArgument("document '" + doc.name +
                                     "' has no root element");
    }
    Status status = ValidateForGuidedEval(*root, schema);
    if (!status.ok()) {
      return Status::InvalidArgument("document '" + doc.name +
                                     "': " + status.message());
    }
  }
  return Status::Ok();
}

}  // namespace xbench::analysis
