#include "analysis/analyzer.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "obs/metrics.h"

namespace xbench::analysis {
namespace {

using xml::Dtd;
using xquery::Axis;
using xquery::Expr;
using xquery::ExprKind;
using xquery::Step;

/// Bounds on how far `//` resolution will enumerate before giving up and
/// leaving the step unannotated (a full subtree scan stays correct).
constexpr size_t kMaxChains = 64;
constexpr size_t kMaxChainDepth = 24;

/// Child element types a DTD content model admits.
std::vector<std::string> ChildTypes(const Dtd::ElementDecl& decl) {
  std::vector<std::string> out;
  switch (decl.model) {
    case Dtd::Model::kSequence:
      for (const Dtd::Particle& particle : decl.sequence) {
        if (std::find(out.begin(), out.end(), particle.name) == out.end()) {
          out.push_back(particle.name);
        }
      }
      break;
    case Dtd::Model::kMixed:
      out.assign(decl.mixed.begin(), decl.mixed.end());
      break;
    case Dtd::Model::kEmpty:
    case Dtd::Model::kPcdata:
      break;
  }
  return out;
}

/// The static type of an expression: a set of possible element types, an
/// attribute, an atomized value, or unknown (checking stops there).
struct StaticType {
  enum Kind { kUnknown, kAtomic, kElements, kAttribute };
  Kind kind = kUnknown;
  std::set<std::string> elements;

  static StaticType Unknown() { return {}; }
  static StaticType Atomic() { return {kAtomic, {}}; }
  static StaticType Attribute() { return {kAttribute, {}}; }
  static StaticType Elements(std::set<std::string> set) {
    return {kElements, std::move(set)};
  }
  bool is_elements() const { return kind == kElements; }
};

std::string JoinTypes(const std::set<std::string>& types) {
  std::string out;
  for (const std::string& t : types) {
    if (!out.empty()) out += ", ";
    out += t;
  }
  return out.empty() ? "(none)" : out;
}

/// Occurrence combinators over {0, 1, many, unknown}.
Cardinality CombineCard(Cardinality a, Cardinality b) {
  if (a == Cardinality::kEmpty || b == Cardinality::kEmpty) {
    return Cardinality::kEmpty;
  }
  if (a == Cardinality::kUnknown || b == Cardinality::kUnknown) {
    return Cardinality::kUnknown;
  }
  if (a == Cardinality::kMany || b == Cardinality::kMany) {
    return Cardinality::kMany;
  }
  return Cardinality::kAtMostOne;
}

Cardinality CardFromCount(uint64_t n) {
  if (n == 0) return Cardinality::kEmpty;
  return n == 1 ? Cardinality::kAtMostOne : Cardinality::kMany;
}

xquery::plan::Card ToPlanCard(Cardinality card) {
  switch (card) {
    case Cardinality::kEmpty:
      return xquery::plan::Card::kEmpty;
    case Cardinality::kAtMostOne:
      return xquery::plan::Card::kAtMostOne;
    case Cardinality::kMany:
      return xquery::plan::Card::kMany;
    case Cardinality::kUnknown:
      return xquery::plan::Card::kUnknown;
  }
  return xquery::plan::Card::kUnknown;
}

class Analyzer {
 public:
  explicit Analyzer(const SchemaContext& context) : ctx_(context) {}

  AnalysisReport Run(Expr& query) {
    scope_.emplace_back("input",
                        StaticType::Elements({ctx_.roots.begin(),
                                              ctx_.roots.end()}));
    AnalyzeExpr(query, StaticType::Unknown());
    return std::move(report_);
  }

 private:
  // --- schema graph helpers ----------------------------------------------

  /// Max occurrences of child type `child` under one instance of `parent`,
  /// from the instance statistics. 0 when the edge (or the parent type)
  /// was never observed; nullopt when no summary is available.
  std::optional<uint64_t> ObservedMax(const std::string& parent,
                                      const std::string& child) const {
    if (ctx_.summary == nullptr) return std::nullopt;
    for (const xml::ChildStats& stats : ctx_.summary->ChildrenOf(parent)) {
      if (stats.name == child) {
        return static_cast<uint64_t>(std::max(stats.max_occurs, 0));
      }
    }
    return 0;
  }

  /// Descendant closure of `from` in the DTD element graph (not including
  /// `from` itself unless reachable through a cycle).
  std::set<std::string> DescendantClosure(
      const std::set<std::string>& from) const {
    std::set<std::string> seen;
    std::vector<std::string> frontier(from.begin(), from.end());
    while (!frontier.empty()) {
      const std::string type = std::move(frontier.back());
      frontier.pop_back();
      const Dtd::ElementDecl* decl = ctx_.dtd->FindElement(type);
      if (decl == nullptr) continue;
      for (const std::string& child : ChildTypes(*decl)) {
        if (seen.insert(child).second) frontier.push_back(child);
      }
    }
    return seen;
  }

  /// Element types that admit `child` as a direct child.
  std::set<std::string> ParentTypes(const std::string& child) const {
    std::set<std::string> out;
    for (const std::string& name : ctx_.dtd->ElementNames()) {
      const Dtd::ElementDecl* decl = ctx_.dtd->FindElement(name);
      const std::vector<std::string> kids = ChildTypes(*decl);
      if (std::find(kids.begin(), kids.end(), child) != kids.end()) {
        out.insert(name);
      }
    }
    return out;
  }

  /// Enumerates every simple label chain from `from` down to `target`.
  /// Returns false (chains untouched) when the subgraph that reaches
  /// `target` is recursive or the enumeration exceeds the size bounds —
  /// the expansion would then under-approximate the real document paths.
  bool EnumerateChains(const std::string& from, const std::string& target,
                       std::vector<std::vector<std::string>>& chains) const {
    // Restrict the graph to nodes that can still reach the target.
    std::set<std::string> reaching = {target};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const std::string& name : ctx_.dtd->ElementNames()) {
        if (reaching.count(name) != 0) continue;
        for (const std::string& child :
             ChildTypes(*ctx_.dtd->FindElement(name))) {
          if (reaching.count(child) != 0) {
            reaching.insert(name);
            grew = true;
            break;
          }
        }
      }
    }
    if (reaching.count(from) == 0 && from != target) return true;  // no chains

    // Any cycle inside the reaching subgraph makes the set of document
    // paths unbounded: bail.
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::pair<std::string, size_t>> stack;
    for (const std::string& start : reaching) {
      if (color[start] != 0) continue;
      stack.emplace_back(start, 0);
      color[start] = 1;
      while (!stack.empty()) {
        auto& [node, next] = stack.back();
        const std::vector<std::string> kids =
            ctx_.dtd->FindElement(node) != nullptr
                ? ChildTypes(*ctx_.dtd->FindElement(node))
                : std::vector<std::string>{};
        bool descended = false;
        while (next < kids.size()) {
          const std::string& kid = kids[next++];
          if (reaching.count(kid) == 0) continue;
          if (color[kid] == 1) return false;  // cycle
          if (color[kid] == 0) {
            color[kid] = 1;
            stack.emplace_back(kid, 0);
            descended = true;
            break;
          }
        }
        if (!descended && next >= kids.size()) {
          color[node] = 2;
          stack.pop_back();
        }
      }
    }

    // Acyclic: depth-first chain enumeration terminates.
    std::vector<std::string> chain;
    return EnumerateFrom(from, target, reaching, chain, chains);
  }

  bool EnumerateFrom(const std::string& at, const std::string& target,
                     const std::set<std::string>& reaching,
                     std::vector<std::string>& chain,
                     std::vector<std::vector<std::string>>& chains) const {
    if (chain.size() > kMaxChainDepth) return false;
    const Dtd::ElementDecl* decl = ctx_.dtd->FindElement(at);
    if (decl == nullptr) return true;
    for (const std::string& child : ChildTypes(*decl)) {
      chain.push_back(child);
      if (child == target) {
        if (chains.size() >= kMaxChains) {
          chain.pop_back();
          return false;
        }
        chains.push_back(chain);
      } else if (reaching.count(child) != 0) {
        if (!EnumerateFrom(child, target, reaching, chain, chains)) {
          chain.pop_back();
          return false;
        }
      }
      chain.pop_back();
    }
    return true;
  }

  // --- diagnostics --------------------------------------------------------

  void Diagnose(DiagnosticKind kind, Severity severity,
                const std::string& path, std::string message) {
    report_.diagnostics.push_back(
        {kind, severity, path, std::move(message)});
    if (severity == Severity::kError) ++path_errors_;
  }

  bool NameDeclared(const std::string& name) const {
    if (ctx_.dtd->FindElement(name) != nullptr) return true;
    // Attribute names share the diagnostic: declared on any element?
    for (const std::string& element : ctx_.dtd->ElementNames()) {
      if (ctx_.dtd->FindElement(element)->attributes.count(name) != 0) {
        return true;
      }
    }
    return false;
  }

  // --- expression analysis ------------------------------------------------

  StaticType Lookup(const std::string& name) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return StaticType::Unknown();
  }

  template <typename Fn>
  void WithBinding(const std::string& name, StaticType type, Fn&& fn) {
    scope_.emplace_back(name, std::move(type));
    fn();
    scope_.pop_back();
  }

  /// Item type of a sequence-typed expression (for/quantifier binding).
  static StaticType ItemOf(const StaticType& type) { return type; }

  StaticType AnalyzeExpr(Expr& e, const StaticType& focus) {
    switch (e.kind) {
      case ExprKind::kStringLiteral:
      case ExprKind::kNumberLiteral:
        return StaticType::Atomic();
      case ExprKind::kVariable:
        return Lookup(e.variable);
      case ExprKind::kContextItem:
        return focus;
      case ExprKind::kSequence:
      case ExprKind::kUnion: {
        StaticType merged = StaticType::Elements({});
        bool all_elements = true;
        for (auto& child : e.children) {
          StaticType t = AnalyzeExpr(*child, focus);
          if (t.is_elements()) {
            merged.elements.insert(t.elements.begin(), t.elements.end());
          } else {
            all_elements = false;
          }
        }
        return all_elements ? merged : StaticType::Unknown();
      }
      case ExprKind::kPath:
        return AnalyzePath(e, focus);
      case ExprKind::kFilter: {
        StaticType base = AnalyzeExpr(*e.lhs, focus);
        return AnalyzePredicates(e.children, std::move(base));
      }
      case ExprKind::kComparison:
      case ExprKind::kArithmetic:
      case ExprKind::kLogical:
      case ExprKind::kRange:
        AnalyzeExpr(*e.lhs, focus);
        AnalyzeExpr(*e.rhs, focus);
        return StaticType::Atomic();
      case ExprKind::kFunctionCall:
        for (auto& child : e.children) AnalyzeExpr(*child, focus);
        return StaticType::Atomic();
      case ExprKind::kFlwor:
        return AnalyzeFlwor(e, focus);
      case ExprKind::kQuantified: {
        StaticType input = AnalyzeExpr(*e.quant_input, focus);
        WithBinding(e.quant_variable, ItemOf(input), [&] {
          AnalyzeExpr(*e.quant_satisfies, focus);
        });
        return StaticType::Atomic();
      }
      case ExprKind::kIfThenElse: {
        AnalyzeExpr(*e.lhs, focus);
        StaticType a = AnalyzeExpr(*e.then_branch, focus);
        StaticType b = AnalyzeExpr(*e.else_branch, focus);
        if (a.is_elements() && b.is_elements()) {
          a.elements.insert(b.elements.begin(), b.elements.end());
          return a;
        }
        return StaticType::Unknown();
      }
      case ExprKind::kConstructor: {
        for (auto& attr : e.constructor_attrs) {
          for (auto& part : attr.value_parts) {
            if (part.expr != nullptr) AnalyzeExpr(*part.expr, focus);
          }
        }
        for (auto& part : e.constructor_content) {
          if (part.expr != nullptr) AnalyzeExpr(*part.expr, focus);
          if (part.child != nullptr) AnalyzeExpr(*part.child, focus);
        }
        // Constructed trees are outside the class schema.
        return StaticType::Unknown();
      }
    }
    return StaticType::Unknown();
  }

  StaticType AnalyzeFlwor(Expr& e, const StaticType& focus) {
    size_t fi = 0;
    size_t li = 0;
    size_t bound = 0;
    for (char kind : e.clause_order) {
      if (kind == 'f') {
        xquery::ForClause& clause = e.for_clauses[fi++];
        StaticType input = AnalyzeExpr(*clause.input, focus);
        scope_.emplace_back(clause.variable, ItemOf(input));
        ++bound;
        if (!clause.position_variable.empty()) {
          scope_.emplace_back(clause.position_variable, StaticType::Atomic());
          ++bound;
        }
      } else {
        xquery::LetClause& clause = e.let_clauses[li++];
        StaticType value = AnalyzeExpr(*clause.value, focus);
        scope_.emplace_back(clause.variable, std::move(value));
        ++bound;
      }
    }
    if (e.where != nullptr) AnalyzeExpr(*e.where, focus);
    for (xquery::OrderSpec& spec : e.order_by) AnalyzeExpr(*spec.key, focus);
    StaticType result = AnalyzeExpr(*e.return_expr, focus);
    scope_.resize(scope_.size() - bound);
    return result;
  }

  /// Predicates: each is analyzed with the candidate type as focus. A
  /// single `self::name` step narrows the type (the `$input[self::order]`
  /// idiom); a literal-number predicate caps cardinality at one.
  StaticType AnalyzePredicates(std::vector<xquery::ExprPtr>& predicates,
                               StaticType base) {
    for (auto& pred : predicates) {
      if (pred->kind == ExprKind::kPath && pred->path_root == nullptr &&
          !pred->path_from_root && pred->steps.size() == 1 &&
          pred->steps[0].axis == Axis::kSelf &&
          pred->steps[0].predicates.empty() &&
          pred->steps[0].name_test != "*" && base.is_elements()) {
        std::set<std::string> narrowed;
        if (base.elements.count(pred->steps[0].name_test) != 0) {
          narrowed.insert(pred->steps[0].name_test);
        }
        base = StaticType::Elements(std::move(narrowed));
        continue;
      }
      AnalyzeExpr(*pred, base);
    }
    return base;
  }

  // --- path analysis ------------------------------------------------------

  struct PathState {
    StaticType type;
    Cardinality card = Cardinality::kAtMostOne;
    std::string rendered;
    std::vector<std::string> expansions;
  };

  StaticType AnalyzePath(Expr& e, const StaticType& focus) {
    PathState state;
    size_t first_step = 0;
    if (e.path_root != nullptr) {
      state.type = AnalyzeExpr(*e.path_root, focus);
      state.rendered = e.path_root->kind == ExprKind::kVariable
                           ? "$" + e.path_root->variable
                           : (e.path_root->kind == ExprKind::kFilter &&
                                      e.path_root->lhs->kind ==
                                          ExprKind::kVariable
                                  ? "$" + e.path_root->lhs->variable + "[...]"
                                  : "(...)");
    } else if (e.path_from_root) {
      // Absolute path: the context is the (virtual) document node, whose
      // leading child step matches the root element itself.
      state.type = StaticType::Elements(
          {ctx_.roots.begin(), ctx_.roots.end()});
      state.rendered = "";
      if (!e.steps.empty() && e.steps.front().axis == Axis::kChild) {
        AnalyzeAbsoluteRootStep(e.steps.front(), state);
        first_step = 1;
      } else {
        state.type = StaticType::Unknown();  // absolute `//`: stay lenient
        state.card = Cardinality::kUnknown;
      }
    } else {
      state.type = focus;
      state.rendered = ".";
    }

    const size_t errors_before = path_errors_;
    for (size_t i = first_step; i < e.steps.size(); ++i) {
      Step& step = e.steps[i];
      // `//name`: a descendant-or-self::* step followed by a child step.
      if (step.axis == Axis::kDescendantOrSelf && step.name_test == "*" &&
          step.predicates.empty() && i + 1 < e.steps.size() &&
          e.steps[i + 1].axis == Axis::kChild) {
        AnalyzeDescendantPair(e.steps[i + 1], state);
        ++i;
        continue;
      }
      AnalyzeStep(step, state);
    }

    if (state.card == Cardinality::kEmpty && path_errors_ == errors_before &&
        !e.steps.empty()) {
      Diagnose(DiagnosticKind::kAlwaysEmptyPath, Severity::kWarning,
               state.rendered,
               "the schema records zero occurrences along this path; it can "
               "never select anything");
    }

    if (!e.steps.empty()) {
      report_.annotations.path_cardinality[&e] = ToPlanCard(state.card);
      PathInfo info;
      info.rendered = state.rendered;
      info.cardinality = state.card;
      if (state.type.is_elements()) {
        info.result_types.assign(state.type.elements.begin(),
                                 state.type.elements.end());
      }
      info.expansions = state.expansions;
      report_.paths.push_back(std::move(info));
    }
    return state.type;
  }

  /// First child step of an absolute path: matches the root element.
  void AnalyzeAbsoluteRootStep(Step& step, PathState& state) {
    state.rendered += "/" + step.name_test;
    if (step.name_test != "*" && state.type.is_elements()) {
      std::set<std::string> kept;
      if (state.type.elements.count(step.name_test) != 0) {
        kept.insert(step.name_test);
      }
      if (kept.empty() && !state.type.elements.empty()) {
        DiagnoseMissing(step.name_test, state,
                        "is not a document-root element of this class");
      }
      state.type = StaticType::Elements(std::move(kept));
    }
    state.type = AnalyzePredicates(step.predicates, std::move(state.type));
  }

  void DiagnoseMissing(const std::string& name, const PathState& state,
                       const std::string& why) {
    if (!NameDeclared(name)) {
      Diagnose(DiagnosticKind::kUnknownName, Severity::kError, state.rendered,
               "name test '" + name +
                   "' matches nothing declared in the class DTD");
    } else {
      Diagnose(DiagnosticKind::kImpossibleStep, Severity::kError,
               state.rendered,
               "'" + name + "' " + why + " (context: " +
                   JoinTypes(state.type.elements) + ")");
    }
  }

  /// child/attribute/self/parent/sibling and explicit descendant axes.
  void AnalyzeStep(Step& step, PathState& state) {
    const std::string& name = step.name_test;
    switch (step.axis) {
      case Axis::kChild:
        state.rendered += "/" + name;
        break;
      case Axis::kAttribute:
        state.rendered += "/@" + name;
        break;
      case Axis::kSelf:
        state.rendered += "/self::" + name;
        break;
      case Axis::kParent:
        state.rendered += "/parent::" + name;
        break;
      case Axis::kFollowingSibling:
        state.rendered += "/following-sibling::" + name;
        break;
      case Axis::kPrecedingSibling:
        state.rendered += "/preceding-sibling::" + name;
        break;
      case Axis::kDescendant:
        state.rendered += "/descendant::" + name;
        break;
      case Axis::kDescendantOrSelf:
        state.rendered += "//" + (name == "*" ? std::string("*") : name);
        break;
    }

    if (!state.type.is_elements()) {
      // Unknown/atomic context: nothing to check, stay unknown.
      state.type = step.axis == Axis::kAttribute ? StaticType::Attribute()
                                                 : StaticType::Unknown();
      state.card = Cardinality::kUnknown;
      AnalyzePredicatesOnly(step, state);
      return;
    }
    if (name == "text()") {
      state.type = StaticType::Atomic();
      state.card = Cardinality::kUnknown;
      return;
    }
    const std::set<std::string>& context = state.type.elements;

    switch (step.axis) {
      case Axis::kChild: {
        std::set<std::string> result;
        bool bound_known = true;
        uint64_t bound = 0;
        for (const std::string& type : context) {
          const Dtd::ElementDecl* decl = ctx_.dtd->FindElement(type);
          if (decl == nullptr) continue;
          for (const std::string& child : ChildTypes(*decl)) {
            if (name != "*" && child != name) continue;
            result.insert(child);
            if (bound_known) {
              std::optional<uint64_t> m = ObservedMax(type, child);
              if (m.has_value()) {
                bound = std::max(bound, *m);
              } else {
                bound_known = false;
              }
            }
          }
        }
        if (result.empty() && !context.empty() && name != "*") {
          DiagnoseMissing(name, state, ImpossibleChildWhy(context));
        }
        state.card = CombineCard(state.card,
                                 bound_known ? CardFromCount(bound)
                                             : Cardinality::kUnknown);
        if (result.empty()) state.card = Cardinality::kEmpty;
        state.type = StaticType::Elements(std::move(result));
        break;
      }
      case Axis::kAttribute: {
        bool possible = false;
        for (const std::string& type : context) {
          const Dtd::ElementDecl* decl = ctx_.dtd->FindElement(type);
          if (decl == nullptr) continue;
          if (name == "*" ? !decl->attributes.empty()
                          : decl->attributes.count(name) != 0) {
            possible = true;
            break;
          }
        }
        if (!possible && !context.empty() && name != "*") {
          DiagnoseMissing(name, state, "is not an attribute of the context");
        }
        state.type = StaticType::Attribute();
        state.card =
            possible ? CombineCard(state.card, Cardinality::kAtMostOne)
                     : Cardinality::kEmpty;
        break;
      }
      case Axis::kSelf: {
        std::set<std::string> result;
        for (const std::string& type : context) {
          if (name == "*" || type == name) result.insert(type);
        }
        if (result.empty() && !context.empty()) {
          DiagnoseMissing(name, state, "can never be the context element");
        }
        if (result.empty()) state.card = Cardinality::kEmpty;
        state.type = StaticType::Elements(std::move(result));
        break;
      }
      case Axis::kParent: {
        std::set<std::string> result;
        for (const std::string& type : context) {
          for (const std::string& parent : ParentTypes(type)) {
            if (name == "*" || parent == name) result.insert(parent);
          }
        }
        if (result.empty() && !context.empty() && name != "*") {
          DiagnoseMissing(name, state,
                          "is not a possible parent of the context");
        }
        state.card = result.empty()
                         ? Cardinality::kEmpty
                         : CombineCard(state.card, Cardinality::kAtMostOne);
        state.type = StaticType::Elements(std::move(result));
        break;
      }
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling: {
        std::set<std::string> result;
        bool bound_known = true;
        uint64_t bound = 0;
        for (const std::string& type : context) {
          for (const std::string& parent : ParentTypes(type)) {
            const Dtd::ElementDecl* decl = ctx_.dtd->FindElement(parent);
            for (const std::string& sibling : ChildTypes(*decl)) {
              if (name != "*" && sibling != name) continue;
              result.insert(sibling);
              if (bound_known) {
                std::optional<uint64_t> m = ObservedMax(parent, sibling);
                if (m.has_value()) {
                  bound = std::max(bound, *m);
                } else {
                  bound_known = false;
                }
              }
            }
          }
        }
        if (result.empty() && !context.empty() && name != "*") {
          DiagnoseMissing(name, state,
                          "is not a possible sibling of the context");
        }
        state.card = CombineCard(state.card,
                                 bound_known ? CardFromCount(bound)
                                             : Cardinality::kUnknown);
        if (result.empty()) state.card = Cardinality::kEmpty;
        state.type = StaticType::Elements(std::move(result));
        break;
      }
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        AnalyzeDescendantTarget(name, /*include_self=*/step.axis ==
                                    Axis::kDescendantOrSelf,
                                /*annotate=*/nullptr, state);
        break;
      }
    }
    AnalyzePredicatesOnly(step, state);
  }

  std::string ImpossibleChildWhy(const std::set<std::string>& context) const {
    for (const std::string& type : context) {
      const Dtd::ElementDecl* decl = ctx_.dtd->FindElement(type);
      if (decl != nullptr && decl->model == Dtd::Model::kEmpty) {
        return "cannot be a child of '" + type + "' (declared EMPTY)";
      }
      if (decl != nullptr && decl->model == Dtd::Model::kPcdata) {
        return "cannot be a child of '" + type + "' (declared (#PCDATA))";
      }
    }
    return "is never a child of the context";
  }

  /// The `//name` pair: reachability check, `Step::expansions` annotation,
  /// cardinality from the enumerated chains.
  void AnalyzeDescendantPair(Step& child_step, PathState& state) {
    state.rendered += "//" + child_step.name_test;
    if (!state.type.is_elements() || child_step.name_test == "*") {
      state.type = StaticType::Unknown();
      state.card = Cardinality::kUnknown;
      AnalyzePredicatesOnly(child_step, state);
      return;
    }
    AnalyzeDescendantTarget(child_step.name_test, /*include_self=*/false,
                            &child_step, state);
    AnalyzePredicatesOnly(child_step, state);
  }

  void AnalyzeDescendantTarget(const std::string& name, bool include_self,
                               Step* annotate, PathState& state) {
    const std::set<std::string>& context = state.type.elements;
    std::set<std::string> closure = DescendantClosure(context);
    bool reachable = closure.count(name) != 0;
    if (include_self && context.count(name) != 0) reachable = true;
    if (!reachable && !context.empty()) {
      if (!NameDeclared(name)) {
        Diagnose(DiagnosticKind::kUnknownName, Severity::kError,
                 state.rendered,
                 "name test '" + name +
                     "' matches nothing declared in the class DTD");
      } else {
        Diagnose(DiagnosticKind::kUnreachableDescendant, Severity::kError,
                 state.rendered,
                 "'" + name + "' is not a descendant of " +
                     JoinTypes(context) + " in the DTD");
      }
      state.type = StaticType::Elements({});
      state.card = Cardinality::kEmpty;
      return;
    }

    // Chain enumeration: per context type, every simple label path the DTD
    // admits down to the target.
    bool exact = true;
    std::vector<xquery::StepExpansion> expansions;
    bool bound_known = true;
    uint64_t bound = 0;
    for (const std::string& type : context) {
      std::vector<std::vector<std::string>> chains;
      if (!EnumerateChains(type, name, chains)) {
        exact = false;
        break;
      }
      for (std::vector<std::string>& chain : chains) {
        if (bound_known) {
          uint64_t product = 1;
          std::string parent = type;
          for (const std::string& label : chain) {
            std::optional<uint64_t> m = ObservedMax(parent, label);
            if (!m.has_value()) {
              bound_known = false;
              break;
            }
            product = std::min<uint64_t>(product * *m, 2);
            parent = label;
          }
          if (bound_known) bound = std::min<uint64_t>(bound + product, 2);
        }
        expansions.push_back({type, std::move(chain)});
      }
    }
    if (exact) {
      if (annotate != nullptr && !expansions.empty()) {
        for (const xquery::StepExpansion& expansion : expansions) {
          std::string rendered = expansion.context_type + " -> ";
          for (size_t i = 0; i < expansion.labels.size(); ++i) {
            if (i != 0) rendered += "/";
            rendered += expansion.labels[i];
          }
          state.expansions.push_back(std::move(rendered));
        }
        annotate->expansions = std::move(expansions);
        report_.annotations.step_expansions[annotate] = annotate->expansions;
        ++report_.resolved_steps;
      }
      if (include_self && context.count(name) != 0 && bound_known) {
        bound = std::min<uint64_t>(bound + 1, 2);
      }
      state.card = CombineCard(state.card,
                               bound_known ? CardFromCount(bound)
                                           : Cardinality::kUnknown);
    } else {
      // Recursive schema (TC/MD nested sections): reachable but unbounded.
      state.card = Cardinality::kUnknown;
    }
    state.type = StaticType::Elements({name});
  }

  void AnalyzePredicatesOnly(Step& step, PathState& state) {
    StaticType narrowed =
        AnalyzePredicates(step.predicates, state.type);
    for (const auto& pred : step.predicates) {
      if (pred->kind == ExprKind::kNumberLiteral) {
        state.card = CombineCard(state.card, Cardinality::kAtMostOne);
      }
    }
    state.type = std::move(narrowed);
  }

  const SchemaContext& ctx_;
  AnalysisReport report_;
  std::vector<std::pair<std::string, StaticType>> scope_;
  size_t path_errors_ = 0;
};

}  // namespace

const char* DiagnosticKindName(DiagnosticKind kind) {
  switch (kind) {
    case DiagnosticKind::kUnknownName:
      return "unknown-name";
    case DiagnosticKind::kImpossibleStep:
      return "impossible-step";
    case DiagnosticKind::kUnreachableDescendant:
      return "unreachable-descendant";
    case DiagnosticKind::kAlwaysEmptyPath:
      return "always-empty-path";
  }
  return "?";
}

const char* CardinalityName(Cardinality cardinality) {
  switch (cardinality) {
    case Cardinality::kEmpty:
      return "empty";
    case Cardinality::kAtMostOne:
      return "at-most-one";
    case Cardinality::kMany:
      return "many";
    case Cardinality::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = severity == Severity::kError ? "error" : "warning";
  out += "[";
  out += DiagnosticKindName(kind);
  out += "] ";
  out += path;
  out += ": ";
  out += message;
  return out;
}

bool AnalysisReport::HasErrors() const {
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.severity == Severity::kError) return true;
  }
  return false;
}

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics) {
    out += "  " + diagnostic.ToString() + "\n";
  }
  for (const PathInfo& info : paths) {
    out += "  path " + info.rendered + "  [" +
           CardinalityName(info.cardinality) + "]";
    if (!info.result_types.empty()) {
      out += "  -> {";
      for (size_t i = 0; i < info.result_types.size(); ++i) {
        if (i != 0) out += ", ";
        out += info.result_types[i];
      }
      out += "}";
    }
    out += "\n";
    for (const std::string& expansion : info.expansions) {
      out += "    resolves " + expansion + "\n";
    }
  }
  return out;
}

AnalysisReport Analyze(xquery::Expr& query, const SchemaContext& context) {
  Analyzer analyzer(context);
  return analyzer.Run(query);
}

Status AnalyzeQuery(xquery::Expr& query, const xml::Dtd& dtd,
                    const xml::SchemaSummary* summary,
                    const std::vector<std::string>& roots,
                    AnalysisReport* report_out) {
  SchemaContext context;
  context.dtd = &dtd;
  context.summary = summary;
  context.roots = roots;
  AnalysisReport report = Analyze(query, context);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.GetCounter("xbench.analysis.queries").Increment();
  registry.GetCounter("xbench.analysis.steps_resolved")
      .Increment(static_cast<uint64_t>(report.resolved_steps));
  for (const Diagnostic& diagnostic : report.diagnostics) {
    registry
        .GetCounter(std::string("xbench.analysis.diag.") +
                    DiagnosticKindName(diagnostic.kind))
        .Increment();
    registry
        .GetCounter(diagnostic.severity == Severity::kError
                        ? "xbench.analysis.errors"
                        : "xbench.analysis.warnings")
        .Increment();
  }
  if (!report.HasErrors()) {
    if (report_out != nullptr) *report_out = std::move(report);
    return Status::Ok();
  }
  std::string message = "query fails schema analysis:";
  for (const Diagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.severity != Severity::kError) continue;
    message += " " + diagnostic.ToString() + ";";
  }
  if (!message.empty() && message.back() == ';') message.pop_back();
  return Status::InvalidArgument(std::move(message));
}

}  // namespace xbench::analysis
