#include "analysis/query_gen.h"

#include <set>

#include "analysis/analyzer.h"
#include "xquery/parser.h"

namespace xbench::analysis {
namespace {

/// Retries before falling back to a trivially clean query. Candidates are
/// schema-derived so failures should not happen; the bound keeps Next()
/// total even if a template drifts out of sync with the analyzer.
constexpr int kMaxCandidateTries = 10;

}  // namespace

QueryGenerator::QueryGenerator(const ClassSchema& schema, uint64_t seed)
    : schema_(schema), rng_(seed) {
  const xml::Dtd& dtd = schema_.dtd;
  for (const std::string& name : dtd.ElementNames()) {
    const xml::Dtd::ElementDecl* decl = dtd.FindElement(name);
    std::vector<std::string>& kids = children_[name];
    switch (decl->model) {
      case xml::Dtd::Model::kSequence:
        for (const auto& particle : decl->sequence) {
          kids.push_back(particle.name);
        }
        break;
      case xml::Dtd::Model::kMixed:
        kids.assign(decl->mixed.begin(), decl->mixed.end());
        break;
      default:
        break;
    }
    for (const auto& [attr, required] : decl->attributes) {
      attrs_[name].push_back(attr);
    }
    has_text_[name] = decl->model == xml::Dtd::Model::kPcdata ||
                      decl->model == xml::Dtd::Model::kMixed;
  }
  // Descendant closure of the document roots, in deterministic (sorted)
  // order: `$input//E` is only analyzer-clean for reachable E.
  std::set<std::string> seen;
  std::vector<std::string> frontier(schema_.roots.begin(),
                                    schema_.roots.end());
  while (!frontier.empty()) {
    std::string cur = std::move(frontier.back());
    frontier.pop_back();
    if (!seen.insert(cur).second) continue;
    auto it = children_.find(cur);
    if (it == children_.end()) continue;
    for (const std::string& child : it->second) frontier.push_back(child);
  }
  reachable_.assign(seen.begin(), seen.end());
}

QueryGenerator::PathResult QueryGenerator::GenPath(bool allow_leaf) {
  PathResult out;
  std::string cur = reachable_[rng_.NextIndex(reachable_.size())];
  out.text = "$input//" + cur;
  // Random descent through DTD-admitted child edges.
  const int extra = static_cast<int>(rng_.NextBounded(3));
  for (int i = 0; i < extra; ++i) {
    auto it = children_.find(cur);
    if (it == children_.end() || it->second.empty()) break;
    cur = it->second[rng_.NextIndex(it->second.size())];
    out.text += "/" + cur;
  }
  out.result_type = cur;
  if (allow_leaf) {
    auto at = attrs_.find(cur);
    if (at != attrs_.end() && !at->second.empty() && rng_.NextBool(0.25)) {
      out.text += "/@" + at->second[rng_.NextIndex(at->second.size())];
      out.result_type.clear();
    } else if (has_text_[cur] && rng_.NextBool(0.2)) {
      out.text += "/text()";
      out.result_type.clear();
    }
  }
  return out;
}

std::string QueryGenerator::GenLiteral() {
  switch (rng_.NextBounded(3)) {
    case 0:
      return std::to_string(rng_.NextInt(0, 1000));
    case 1:
      return std::to_string(rng_.NextInt(0, 99)) + "." +
             std::to_string(rng_.NextInt(0, 9));
    default:
      return "\"" + rng_.NextAlpha(static_cast<int>(rng_.NextInt(1, 6))) +
             "\"";
  }
}

std::string QueryGenerator::GenComparisonOp() {
  static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
  return kOps[rng_.NextIndex(6)];
}

std::string QueryGenerator::GenPredicate(const std::string& context_type) {
  const auto kids = children_.find(context_type);
  const auto ats = attrs_.find(context_type);
  const bool have_kids = kids != children_.end() && !kids->second.empty();
  const bool have_attrs = ats != attrs_.end() && !ats->second.empty();
  for (int tries = 0; tries < 3; ++tries) {
    switch (rng_.NextBounded(4)) {
      case 0:  // positional
        return "[" + std::to_string(rng_.NextInt(1, 3)) + "]";
      case 1:  // child existence
        if (!have_kids) break;
        return "[" + kids->second[rng_.NextIndex(kids->second.size())] + "]";
      case 2:  // child value comparison
        if (!have_kids) break;
        return "[" + kids->second[rng_.NextIndex(kids->second.size())] + " " +
               GenComparisonOp() + " " + GenLiteral() + "]";
      default:  // attribute value comparison
        if (!have_attrs) break;
        return "[@" + ats->second[rng_.NextIndex(ats->second.size())] + " " +
               GenComparisonOp() + " " + GenLiteral() + "]";
    }
  }
  return "[" + std::to_string(rng_.NextInt(1, 3)) + "]";
}

GeneratedQuery QueryGenerator::GenCandidate() {
  GeneratedQuery query;
  switch (rng_.NextBounded(10)) {
    case 0:
    case 1:
    case 2: {  // bare schema path, possibly with a leaf
      query.text = GenPath(/*allow_leaf=*/true).text;
      break;
    }
    case 3:
    case 4: {  // path with a predicate on the last element step
      PathResult path = GenPath(/*allow_leaf=*/false);
      query.text = path.text + GenPredicate(path.result_type);
      break;
    }
    case 5: {  // collection-level aggregate: NOT document-decomposable
      query.text = "count(" + GenPath(/*allow_leaf=*/true).text + ")";
      query.document_decomposable = false;
      break;
    }
    case 6: {  // FLWOR over a schema path
      PathResult path = GenPath(/*allow_leaf=*/false);
      query.text = "for $v in " + path.text;
      const auto kids = children_.find(path.result_type);
      const bool have_kids =
          kids != children_.end() && !kids->second.empty();
      if (have_kids && rng_.NextBool(0.5)) {
        query.text += " where $v/" +
                      kids->second[rng_.NextIndex(kids->second.size())] +
                      " " + GenComparisonOp() + " " + GenLiteral();
      }
      if (have_kids && rng_.NextBool(0.5)) {
        query.text +=
            " return $v/" + kids->second[rng_.NextIndex(kids->second.size())];
      } else {
        query.text += " return $v";
      }
      break;
    }
    case 7: {  // quantified: one boolean for the whole collection
      PathResult path = GenPath(/*allow_leaf=*/false);
      const auto kids = children_.find(path.result_type);
      std::string probe = "$v";
      if (kids != children_.end() && !kids->second.empty()) {
        probe += "/" + kids->second[rng_.NextIndex(kids->second.size())];
      }
      query.text = std::string(rng_.NextBool(0.5) ? "some" : "every") +
                   " $v in " + path.text + " satisfies " + probe + " " +
                   GenComparisonOp() + " " + GenLiteral();
      query.document_decomposable = false;
      break;
    }
    case 8: {  // union of two element paths
      query.text = GenPath(/*allow_leaf=*/false).text + " | " +
                   GenPath(/*allow_leaf=*/false).text;
      break;
    }
    default: {  // conditional on an aggregate
      query.text = "if (count(" + GenPath(/*allow_leaf=*/true).text + ") " +
                   GenComparisonOp() + " " + std::to_string(rng_.NextInt(0, 50)) +
                   ") then \"hit\" else \"miss\"";
      query.document_decomposable = false;
      break;
    }
  }
  return query;
}

GeneratedQuery QueryGenerator::Next() {
  for (int tries = 0; tries < kMaxCandidateTries; ++tries) {
    GeneratedQuery query = GenCandidate();
    auto parsed = xquery::ParseQuery(query.text);
    if (!parsed.ok()) continue;
    AnalysisReport report =
        Analyze(**parsed, schema_.Context());
    if (report.HasErrors()) continue;
    return query;
  }
  // Fallback: a bare reachable-element path is always clean.
  GeneratedQuery query;
  query.text = "$input//" + reachable_[rng_.NextIndex(reachable_.size())];
  return query;
}

}  // namespace xbench::analysis
