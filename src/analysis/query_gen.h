#ifndef XBENCH_ANALYSIS_QUERY_GEN_H_
#define XBENCH_ANALYSIS_QUERY_GEN_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/class_schemas.h"
#include "common/random.h"

namespace xbench::analysis {

/// One generated query plus the metadata the differential oracle needs to
/// decide which engines it can be compared across.
struct GeneratedQuery {
  /// XQuery text referencing the collection as `$input`.
  std::string text;
  /// True when evaluating the query per document and concatenating the
  /// results reproduces the collection-level answer as a value multiset
  /// (i.e. no collection-level aggregate). Gates the CLOB per-document
  /// comparison in the differential oracle.
  bool document_decomposable = true;
};

/// Grammar-driven, schema-aware XQuery generator. Every emitted query is
/// derived from the class DTD's element graph — paths only take edges the
/// DTD admits, attributes only appear on elements that declare them — so
/// the static analyzer accepts each query without error diagnostics and
/// the differential oracle exercises live evaluation paths instead of
/// drowning in provably-empty ones. Deterministic: the same (schema, seed)
/// pair yields the same query sequence.
class QueryGenerator {
 public:
  QueryGenerator(const ClassSchema& schema, uint64_t seed);

  /// Generates the next query. Guaranteed to parse and to analyze with no
  /// error-severity diagnostics against the schema context.
  GeneratedQuery Next();

 private:
  struct PathResult {
    std::string text;         // "$input//item/name"
    std::string result_type;  // final element type; empty for @attr/text()
  };

  /// Element path through the DTD graph: `$input//E(/child)*`, optionally
  /// ending in `/@attr` or `/text()` when `allow_leaf` is set.
  PathResult GenPath(bool allow_leaf);
  /// Predicate admitted by `context_type`: existence, value comparison,
  /// or positional.
  std::string GenPredicate(const std::string& context_type);
  std::string GenLiteral();
  std::string GenComparisonOp();

  /// One template expansion (may not analyze clean — Next() retries).
  GeneratedQuery GenCandidate();

  const ClassSchema& schema_;
  Rng rng_;
  std::vector<std::string> reachable_;  // descendant closure of the roots
  std::map<std::string, std::vector<std::string>> children_;
  std::map<std::string, std::vector<std::string>> attrs_;
  std::map<std::string, bool> has_text_;
};

}  // namespace xbench::analysis

#endif  // XBENCH_ANALYSIS_QUERY_GEN_H_
