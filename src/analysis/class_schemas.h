#ifndef XBENCH_ANALYSIS_CLASS_SCHEMAS_H_
#define XBENCH_ANALYSIS_CLASS_SCHEMAS_H_

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "datagen/generator.h"
#include "xml/dtd.h"
#include "xml/schema_summary.h"

namespace xbench::analysis {

/// The canonical schema of one database class: the DTD inferred from a
/// deterministically generated sample database (the paper's companion
/// report ships these per class), its instance statistics, the document
/// root types, and the workload seeds of the sample (so canned-query
/// parameters can be derived without regenerating).
struct ClassSchema {
  xml::Dtd dtd;
  xml::SchemaSummary summary;
  std::vector<std::string> roots;
  std::string dtd_text;
  datagen::WorkloadSeeds seeds;

  /// View usable by analysis::Analyze.
  SchemaContext Context() const { return {&dtd, &summary, roots}; }
};

/// The generator configuration of the canonical sample database the class
/// schemas are inferred from (seed 42, 96 KiB). Tools that want to run
/// queries over "the schema's database" (xqlint --explain --profile)
/// regenerate it with this.
datagen::GenConfig CanonicalSampleConfig();

/// Lazily built, cached canonical schema for `cls` (seed 42, 96 KiB sample
/// — the same configuration the DTD round-trip tests validate).
/// Thread-safe: concurrent first calls build each class's schema once.
const ClassSchema& CanonicalClassSchema(datagen::DbClass cls);

/// Checks one document tree against `schema`'s element graph: the root is
/// a known root type, every element is declared, and every parent→child
/// element edge is admitted by the parent's content model. Returns the
/// first violation. This is the (weaker-than-Dtd::Validate) conformance
/// guided descendant evaluation needs: an edge present in the data but
/// missing from the schema would make the guided walk drop matches, while
/// occurrence-count deviations cannot.
Status ValidateForGuidedEval(const xml::Node& root, const ClassSchema& schema);

/// Validates every document of `db` against the canonical schema of its
/// class (over the already-materialized DOMs — no re-parse). Benchmark
/// databases are generated with user-configured size/seed, so a database
/// may contain edges the fixed-sample schema never saw; callers must keep
/// guided evaluation disabled unless this passes.
Status ValidateDatabaseForGuidedEval(const datagen::GeneratedDatabase& db);

}  // namespace xbench::analysis

#endif  // XBENCH_ANALYSIS_CLASS_SCHEMAS_H_
