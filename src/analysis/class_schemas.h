#ifndef XBENCH_ANALYSIS_CLASS_SCHEMAS_H_
#define XBENCH_ANALYSIS_CLASS_SCHEMAS_H_

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "datagen/generator.h"
#include "xml/dtd.h"
#include "xml/schema_summary.h"

namespace xbench::analysis {

/// The canonical schema of one database class: the DTD inferred from a
/// deterministically generated sample database (the paper's companion
/// report ships these per class), its instance statistics, the document
/// root types, and the workload seeds of the sample (so canned-query
/// parameters can be derived without regenerating).
struct ClassSchema {
  xml::Dtd dtd;
  xml::SchemaSummary summary;
  std::vector<std::string> roots;
  std::string dtd_text;
  datagen::WorkloadSeeds seeds;

  /// View usable by analysis::Analyze.
  SchemaContext Context() const { return {&dtd, &summary, roots}; }
};

/// Lazily built, cached canonical schema for `cls` (seed 42, 96 KiB sample
/// — the same configuration the DTD round-trip tests validate).
const ClassSchema& CanonicalClassSchema(datagen::DbClass cls);

}  // namespace xbench::analysis

#endif  // XBENCH_ANALYSIS_CLASS_SCHEMAS_H_
