#include "datagen/template_engine.h"

namespace xbench::datagen {
namespace {

std::unique_ptr<xml::Node> InstantiateRec(
    const TemplateNode& tmpl, GenContext& ctx,
    std::map<const TemplateNode*, int>& depth) {
  auto element = xml::Node::Element(tmpl.name);
  for (const AttrTemplate& attr : tmpl.attrs) {
    if (attr.presence < 1.0 && !ctx.rng().NextBool(attr.presence)) continue;
    element->SetAttribute(attr.name, attr.value(ctx));
  }
  if (tmpl.text && tmpl.text_first) {
    element->AddText(tmpl.text(ctx));
  }
  for (const TemplateNode::Child& child : tmpl.children) {
    if (child.presence < 1.0 && !ctx.rng().NextBool(child.presence)) continue;
    const TemplateNode& child_tmpl = child.node();
    int& d = depth[&child_tmpl];
    if (d >= child.max_depth) continue;
    ++d;
    const int64_t n = child.count ? child.count->Sample(ctx.rng()) : 1;
    for (int64_t i = 0; i < n; ++i) {
      element->AddChild(InstantiateRec(child_tmpl, ctx, depth));
    }
    --d;
  }
  if (tmpl.text && !tmpl.text_first) {
    element->AddText(tmpl.text(ctx));
  }
  return element;
}

}  // namespace

TemplateNode* TemplateNode::AddChild(
    std::string child_name, std::unique_ptr<stats::Distribution> count,
    double presence) {
  Child child;
  child.owned = std::make_unique<TemplateNode>();
  child.owned->name = std::move(child_name);
  child.count = std::move(count);
  child.presence = presence;
  TemplateNode* raw = child.owned.get();
  children.push_back(std::move(child));
  return raw;
}

void TemplateNode::AddRef(const TemplateNode* target,
                          std::unique_ptr<stats::Distribution> count,
                          double presence, int max_depth) {
  Child child;
  child.ref = target;
  child.count = std::move(count);
  child.presence = presence;
  child.max_depth = max_depth;
  children.push_back(std::move(child));
}

void TemplateNode::SetAttr(std::string attr_name, ValueGen gen,
                           double presence) {
  attrs.push_back({std::move(attr_name), std::move(gen), presence});
}

std::unique_ptr<xml::Node> Instantiate(const TemplateNode& tmpl,
                                       GenContext& ctx) {
  std::map<const TemplateNode*, int> depth;
  return InstantiateRec(tmpl, ctx, depth);
}

}  // namespace xbench::datagen
