#ifndef XBENCH_DATAGEN_WORD_POOL_H_
#define XBENCH_DATAGEN_WORD_POOL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "stats/distribution.h"

namespace xbench::datagen {

/// Deterministic synthetic vocabulary with Zipf-distributed usage.
///
/// The paper's text-centric corpora (GCIDE/OED/Reuters/Springer) supply the
/// word-frequency distributions; we substitute a synthetic vocabulary whose
/// word identities are stable functions of rank, so workload parameter
/// selection can pick "a word that occurs ~N times" deterministically
/// (e.g. Q17's search word) without scanning the generated data.
class WordPool {
 public:
  /// `size` distinct words; `skew` is the Zipf exponent for RandomWord.
  explicit WordPool(int size = 5000, double skew = 1.0);

  /// The word with 1-based frequency rank `rank` (rank 1 is the most
  /// frequent). Deterministic, independent of any Rng.
  std::string WordAt(int rank) const;

  int size() const { return size_; }

  /// Zipf-sampled word.
  const std::string& RandomWord(Rng& rng) const;

  /// Space-separated words ending with a period.
  std::string Sentence(Rng& rng, int min_words, int max_words) const;

  /// `n_sentences` sentences joined with spaces.
  std::string Paragraph(Rng& rng, int n_sentences) const;

  /// Capitalized personal-name-like word (outside the Zipf text stream so
  /// names do not collide with search words).
  std::string PersonName(Rng& rng) const;

  /// ISO date "YYYY-MM-DD" uniform in [year_lo, year_hi].
  static std::string RandomDate(Rng& rng, int year_lo, int year_hi);

 private:
  int size_;
  std::vector<std::string> words_;
  std::unique_ptr<stats::Distribution> rank_dist_;
};

}  // namespace xbench::datagen

#endif  // XBENCH_DATAGEN_WORD_POOL_H_
