#ifndef XBENCH_DATAGEN_ARTICLE_GENERATOR_H_
#define XBENCH_DATAGEN_ARTICLE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "datagen/word_pool.h"
#include "xml/node.h"

namespace xbench::datagen {

/// TC/MD: a collection of articleXXX.xml documents (Reuters/Springer
/// generalization, Figure 2): loose schema, recursive sections, references
/// between documents.
///
/// Article layout:
///   article @id="A000001"
///     prolog
///       title        sentence
///       author*      1..4: name, contact? (email?/phone? — possibly EMPTY
///                    element, Q15's irregularity target)
///       date         ISO date (1995..2002)
///       keywords?    keyword* Zipf words
///       abstract     p*
///     body
///       sec*         recursive up to depth 3; first sec's heading is
///                    "Introduction" (Q4's anchor); sec = heading, p*, sec*
///     epilog?
///       references?  ref* @to other article ids
struct ArticlesResult {
  std::vector<xml::Document> docs;
  int64_t article_num = 0;
};

ArticlesResult GenerateArticles(uint64_t target_bytes, uint64_t seed,
                                const WordPool& words);

std::string ArticleId(int64_t n);
std::string ArticleFileName(int64_t n);

/// Deterministic author name for parameter selection: every K-th article
/// is authored by this fixed person (Q2/Q4's "Y").
std::string WellKnownAuthor();
inline constexpr int kWellKnownAuthorStride = 10;

}  // namespace xbench::datagen

#endif  // XBENCH_DATAGEN_ARTICLE_GENERATOR_H_
