#include "datagen/article_generator.h"

#include <algorithm>

#include "common/strings.h"
#include "xml/serializer.h"

namespace xbench::datagen {

std::string ArticleId(int64_t n) { return "A" + PadNumber(n, 6); }

std::string ArticleFileName(int64_t n) {
  return "article" + PadNumber(n, 6) + ".xml";
}

std::string WellKnownAuthor() { return "Alan Turing"; }

namespace {

void AddAuthors(xml::Node& prolog, int64_t article_index, Rng& rng,
                const WordPool& words) {
  const int n = static_cast<int>(rng.NextInt(1, 4));
  for (int i = 0; i < n; ++i) {
    xml::Node* author = prolog.AddElement("author");
    std::string name;
    if (i == 0 && article_index % kWellKnownAuthorStride == 0) {
      name = WellKnownAuthor();
    } else {
      name = words.PersonName(rng) + " " + words.PersonName(rng);
    }
    author->AddSimple("name", name);
    // Irregularity (Q15): contact may be absent, present-but-empty, or
    // populated.
    const double r = rng.NextDouble();
    if (r < 0.2) {
      // absent entirely
    } else if (r < 0.45) {
      author->AddElement("contact");  // empty element
    } else {
      xml::Node* contact = author->AddElement("contact");
      if (rng.NextBool(0.9)) {
        contact->AddSimple("email",
                           ToLower(name.substr(0, name.find(' '))) + "@" +
                               words.RandomWord(rng) + ".example");
      }
      if (rng.NextBool(0.6)) {
        contact->AddSimple("phone",
                           "+1-" + PadNumber(rng.NextInt(200, 999), 3) + "-" +
                               PadNumber(rng.NextInt(0, 9999999), 7));
      }
    }
  }
}

void AddSection(xml::Node& parent, int depth, bool force_intro, Rng& rng,
                const WordPool& words) {
  xml::Node* sec = parent.AddElement("sec");
  std::string heading = force_intro
                            ? "Introduction"
                            : words.Sentence(rng, 2, 5);
  if (!force_intro && !heading.empty()) heading.pop_back();  // drop '.'
  sec->AddSimple("heading", heading);
  const int paragraphs = static_cast<int>(rng.NextInt(1, 5));
  for (int i = 0; i < paragraphs; ++i) {
    sec->AddSimple("p", words.Paragraph(rng, static_cast<int>(rng.NextInt(2, 6))));
  }
  if (depth < 3) {
    const int nested = static_cast<int>(rng.NextInt(0, 2));
    for (int i = 0; i < nested; ++i) {
      AddSection(*sec, depth + 1, /*force_intro=*/false, rng, words);
    }
  }
}

xml::Document GenerateArticle(int64_t index, Rng& rng, const WordPool& words) {
  auto root = xml::Node::Element("article");
  root->SetAttribute("id", ArticleId(index));

  xml::Node* prolog = root->AddElement("prolog");
  std::string title = words.Sentence(rng, 3, 8);
  title.pop_back();
  prolog->AddSimple("title", title);
  AddAuthors(*prolog, index, rng, words);
  prolog->AddSimple("date", WordPool::RandomDate(rng, 1995, 2002));
  if (rng.NextBool(0.8)) {
    xml::Node* keywords = prolog->AddElement("keywords");
    const int n = static_cast<int>(rng.NextInt(2, 6));
    for (int i = 0; i < n; ++i) {
      keywords->AddSimple("keyword", words.RandomWord(rng));
    }
  }
  xml::Node* abstract = prolog->AddElement("abstract");
  const int abs_paras = static_cast<int>(rng.NextInt(1, 2));
  for (int i = 0; i < abs_paras; ++i) {
    abstract->AddSimple("p", words.Paragraph(rng, 3));
  }

  xml::Node* body = root->AddElement("body");
  const int sections = static_cast<int>(rng.NextInt(2, 6));
  for (int i = 0; i < sections; ++i) {
    AddSection(*body, 1, /*force_intro=*/i == 0, rng, words);
  }

  if (rng.NextBool(0.7)) {
    xml::Node* epilog = root->AddElement("epilog");
    xml::Node* references = epilog->AddElement("references");
    const int refs = static_cast<int>(rng.NextInt(1, 6));
    for (int i = 0; i < refs; ++i) {
      xml::Node* ref = references->AddElement("ref");
      ref->SetAttribute("to",
                        ArticleId(rng.NextInt(1, std::max<int64_t>(1, index))));
    }
    if (rng.NextBool(0.3)) {
      epilog->AddSimple("ack", words.Sentence(rng, 5, 12));
    }
  }

  return xml::Document(ArticleFileName(index), std::move(root));
}

}  // namespace

ArticlesResult GenerateArticles(uint64_t target_bytes, uint64_t seed,
                                const WordPool& words) {
  Rng master(seed ^ 0xA27Cull);
  ArticlesResult result;
  uint64_t bytes = 0;
  while (bytes < target_bytes) {
    ++result.article_num;
    Rng doc_rng = master.Fork();
    xml::Document doc = GenerateArticle(result.article_num, doc_rng, words);
    bytes += xml::Serialize(doc).size();
    result.docs.push_back(std::move(doc));
  }
  return result;
}

}  // namespace xbench::datagen
