#include "datagen/generator.h"

#include "datagen/article_generator.h"
#include "datagen/catalog_generator.h"
#include "datagen/dictionary_generator.h"
#include "datagen/order_generator.h"
#include "datagen/word_pool.h"
#include "xml/serializer.h"

namespace xbench::datagen {

const char* DbClassName(DbClass cls) {
  switch (cls) {
    case DbClass::kTcSd:
      return "TC/SD";
    case DbClass::kTcMd:
      return "TC/MD";
    case DbClass::kDcSd:
      return "DC/SD";
    case DbClass::kDcMd:
      return "DC/MD";
  }
  return "?";
}

namespace {

GeneratedDocument Pack(xml::Document doc) {
  GeneratedDocument out;
  out.name = doc.name();
  out.text = xml::Serialize(doc);
  out.dom = std::move(doc);
  return out;
}

}  // namespace

GeneratedDatabase Generate(DbClass cls, const GenConfig& config) {
  // One shared vocabulary per database keeps workload parameter selection
  // (word ranks) stable across classes.
  WordPool words;

  GeneratedDatabase db;
  db.db_class = cls;
  switch (cls) {
    case DbClass::kTcSd: {
      DictionaryResult r =
          GenerateDictionary(config.target_bytes, config.seed, words);
      db.seeds.entry_count = r.entry_num;
      db.documents.push_back(Pack(std::move(r.doc)));
      break;
    }
    case DbClass::kTcMd: {
      ArticlesResult r =
          GenerateArticles(config.target_bytes, config.seed, words);
      db.seeds.article_count = r.article_num;
      db.documents.reserve(r.docs.size());
      for (xml::Document& doc : r.docs) {
        db.documents.push_back(Pack(std::move(doc)));
      }
      break;
    }
    case DbClass::kDcSd: {
      CatalogResult r =
          GenerateCatalog(config.target_bytes, config.seed, words);
      db.seeds.item_count = r.item_num;
      db.seeds.author_count = static_cast<int64_t>(r.data.authors.size());
      db.seeds.country_count = static_cast<int64_t>(r.data.countries.size());
      db.documents.push_back(Pack(std::move(r.doc)));
      break;
    }
    case DbClass::kDcMd: {
      OrdersResult r = GenerateOrders(config.target_bytes, config.seed, words);
      db.seeds.order_count = r.order_num;
      db.seeds.customer_count = r.customer_num;
      db.seeds.item_count = r.item_num;
      db.seeds.country_count = static_cast<int64_t>(r.data.countries.size());
      db.documents.reserve(r.docs.size());
      for (xml::Document& doc : r.docs) {
        db.documents.push_back(Pack(std::move(doc)));
      }
      break;
    }
  }
  for (const GeneratedDocument& doc : db.documents) {
    db.total_bytes += doc.text.size();
  }
  return db;
}

}  // namespace xbench::datagen
