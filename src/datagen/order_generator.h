#ifndef XBENCH_DATAGEN_ORDER_GENERATOR_H_
#define XBENCH_DATAGEN_ORDER_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "datagen/word_pool.h"
#include "tpcw/rows.h"
#include "xml/node.h"

namespace xbench::datagen {

/// DC/MD: many small orderXXX.xml documents (flat-translation class) plus
/// the five flat table documents (Customer/Item/Author/Address/Country)
/// that Q19 joins against. Order count is solved against the target size
/// with a pilot batch.
struct OrdersResult {
  std::vector<xml::Document> docs;  // orders first, then the 5 flat docs
  tpcw::TpcwData data;
  int64_t order_num = 0;
  int64_t customer_num = 0;
  int64_t item_num = 0;
};

OrdersResult GenerateOrders(uint64_t target_bytes, uint64_t seed,
                            const WordPool& words);

}  // namespace xbench::datagen

#endif  // XBENCH_DATAGEN_ORDER_GENERATOR_H_
