#ifndef XBENCH_DATAGEN_GENERATOR_H_
#define XBENCH_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/node.h"

namespace xbench::datagen {

/// The four XBench database classes (paper Table 1).
enum class DbClass {
  kTcSd,  // text-centric, single document: dictionary.xml
  kTcMd,  // text-centric, multiple documents: articleXXX.xml
  kDcSd,  // data-centric, single document: catalog.xml
  kDcMd,  // data-centric, multiple documents: orderXXX.xml + flat tables
};

/// "TC/SD" etc.
const char* DbClassName(DbClass cls);

struct GenConfig {
  /// Approximate serialized database size. The paper's small/normal/large
  /// are 10 MB / 100 MB / 1 GB; the harness scales these down (DESIGN.md).
  uint64_t target_bytes = 1 << 20;
  uint64_t seed = 42;
};

/// One generated XML file (name + serialized text + parsed tree).
struct GeneratedDocument {
  std::string name;
  std::string text;
  xml::Document dom;
};

/// Knobs the workload uses to derive deterministic query parameters
/// without scanning the data (the id/value spaces are fixed functions of
/// the counters below).
struct WorkloadSeeds {
  int64_t entry_count = 0;    // TC/SD dictionary entries ("entry_num")
  int64_t article_count = 0;  // TC/MD articles ("article_num")
  int64_t item_count = 0;     // DC/SD catalog items
  int64_t order_count = 0;    // DC/MD orders
  int64_t customer_count = 0;
  int64_t author_count = 0;
  int64_t country_count = 0;
};

struct GeneratedDatabase {
  DbClass db_class = DbClass::kTcSd;
  std::vector<GeneratedDocument> documents;
  uint64_t total_bytes = 0;
  WorkloadSeeds seeds;
};

/// Generates a database of the given class at roughly `target_bytes`.
/// Deterministic in (cls, config.seed, config.target_bytes).
GeneratedDatabase Generate(DbClass cls, const GenConfig& config);

}  // namespace xbench::datagen

#endif  // XBENCH_DATAGEN_GENERATOR_H_
