#ifndef XBENCH_DATAGEN_CATALOG_GENERATOR_H_
#define XBENCH_DATAGEN_CATALOG_GENERATOR_H_

#include <cstdint>

#include "datagen/word_pool.h"
#include "tpcw/rows.h"
#include "xml/node.h"

namespace xbench::datagen {

/// DC/SD: one catalog.xml produced by populating the TPC-W-like tables and
/// applying the join-nesting mapping. The item count is solved against the
/// target size by generating a pilot batch, measuring bytes/item, then
/// re-populating at the solved cardinality.
struct CatalogResult {
  xml::Document doc;
  tpcw::TpcwData data;   // the relational source (kept for tests/benches)
  int64_t item_num = 0;
};

CatalogResult GenerateCatalog(uint64_t target_bytes, uint64_t seed,
                              const WordPool& words);

}  // namespace xbench::datagen

#endif  // XBENCH_DATAGEN_CATALOG_GENERATOR_H_
