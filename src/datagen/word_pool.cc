#include "datagen/word_pool.h"

#include <cstdio>

namespace xbench::datagen {
namespace {

constexpr const char* kSyllables[] = {
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "ka", "ke",
    "ki", "ko", "ku", "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo",
    "mu", "na", "ne", "ni", "no", "nu", "pa", "pe", "pi", "po", "pu", "ra",
    "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su", "ta", "te", "ti",
    "to", "tu", "va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
};
constexpr int kSyllableCount = static_cast<int>(std::size(kSyllables));

/// Word for a 0-based index: base-kSyllableCount digits, at least two
/// syllables so words look word-like and never collide with markup.
std::string SyllableWord(int index) {
  std::string out;
  int v = index;
  do {
    out = kSyllables[v % kSyllableCount] + out;
    v /= kSyllableCount;
  } while (v > 0);
  if (out.size() < 4) out = "xe" + out;
  return out;
}

}  // namespace

WordPool::WordPool(int size, double skew) : size_(size) {
  words_.reserve(static_cast<size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    words_.push_back(SyllableWord(i));
  }
  rank_dist_ = stats::MakeZipf(size_, skew);
}

std::string WordPool::WordAt(int rank) const {
  if (rank < 1) rank = 1;
  if (rank > size_) rank = size_;
  return words_[static_cast<size_t>(rank - 1)];
}

const std::string& WordPool::RandomWord(Rng& rng) const {
  const int64_t rank = rank_dist_->Sample(rng);
  return words_[static_cast<size_t>(rank - 1)];
}

std::string WordPool::Sentence(Rng& rng, int min_words, int max_words) const {
  const int n = static_cast<int>(rng.NextInt(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i != 0) out.push_back(' ');
    out += RandomWord(rng);
  }
  out.push_back('.');
  return out;
}

std::string WordPool::Paragraph(Rng& rng, int n_sentences) const {
  std::string out;
  for (int i = 0; i < n_sentences; ++i) {
    if (i != 0) out.push_back(' ');
    out += Sentence(rng, 5, 14);
  }
  return out;
}

std::string WordPool::PersonName(Rng& rng) const {
  // Names draw from a separate, capitalized sub-vocabulary.
  std::string word = SyllableWord(static_cast<int>(rng.NextBounded(4000)));
  word[0] = static_cast<char>(word[0] - 'a' + 'A');
  return word;
}

std::string WordPool::RandomDate(Rng& rng, int year_lo, int year_hi) {
  const int year = static_cast<int>(rng.NextInt(year_lo, year_hi));
  const int month = static_cast<int>(rng.NextInt(1, 12));
  const int day = static_cast<int>(rng.NextInt(1, 28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

}  // namespace xbench::datagen
