#include "datagen/order_generator.h"

#include <algorithm>

#include "tpcw/mapping.h"
#include "tpcw/populate.h"
#include "xml/serializer.h"

namespace xbench::datagen {
namespace {

tpcw::PopulateScale OrderScale(int64_t orders) {
  tpcw::PopulateScale scale;
  scale.orders = orders;
  scale.customers = std::max<int64_t>(10, orders / 4);
  scale.items = std::max<int64_t>(20, orders / 2);
  scale.authors = std::max<int64_t>(10, scale.items / 3);
  scale.publishers = 20;
  return scale;
}

uint64_t TotalBytes(const std::vector<xml::Document>& docs) {
  uint64_t bytes = 0;
  for (const xml::Document& doc : docs) {
    bytes += xml::Serialize(doc).size();
  }
  return bytes;
}

}  // namespace

OrdersResult GenerateOrders(uint64_t target_bytes, uint64_t seed,
                            const WordPool& words) {
  constexpr int64_t kPilotOrders = 64;
  tpcw::TpcwData pilot = tpcw::Populate(OrderScale(kPilotOrders), seed, words);
  std::vector<xml::Document> pilot_orders = tpcw::BuildOrderDocuments(pilot);
  std::vector<xml::Document> pilot_flat = tpcw::BuildFlatDocuments(pilot);
  const double bytes_per_order =
      static_cast<double>(TotalBytes(pilot_orders) + TotalBytes(pilot_flat)) /
      static_cast<double>(kPilotOrders);

  const int64_t orders = std::max<int64_t>(
      8, static_cast<int64_t>(static_cast<double>(target_bytes) /
                              bytes_per_order));

  OrdersResult result;
  result.order_num = orders;
  const tpcw::PopulateScale scale = OrderScale(orders);
  result.customer_num = scale.customers;
  result.item_num = scale.items;
  result.data = tpcw::Populate(scale, seed, words);
  result.docs = tpcw::BuildOrderDocuments(result.data);
  std::vector<xml::Document> flat = tpcw::BuildFlatDocuments(result.data);
  for (xml::Document& doc : flat) result.docs.push_back(std::move(doc));
  return result;
}

}  // namespace xbench::datagen
