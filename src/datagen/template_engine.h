#ifndef XBENCH_DATAGEN_TEMPLATE_ENGINE_H_
#define XBENCH_DATAGEN_TEMPLATE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/word_pool.h"
#include "stats/distribution.h"
#include "xml/node.h"

namespace xbench::datagen {

/// Shared state threaded through a generation run: the random stream, the
/// vocabulary, and named counters (ToXgene's "gene counters") used for
/// sequential identifiers and cross-references.
class GenContext {
 public:
  GenContext(Rng& rng, const WordPool& words) : rng_(rng), words_(words) {}

  Rng& rng() { return rng_; }
  const WordPool& words() const { return words_; }

  /// Post-incremented named counter (starts at 1).
  int64_t NextCounter(const std::string& name) { return ++counters_[name]; }
  int64_t CurrentCounter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

 private:
  Rng& rng_;
  const WordPool& words_;
  std::map<std::string, int64_t> counters_;
};

/// Produces an attribute value or text content.
using ValueGen = std::function<std::string(GenContext&)>;

struct AttrTemplate {
  std::string name;
  ValueGen value;
  /// Probability the attribute is present (irregularity knob).
  double presence = 1.0;
};

/// A ToXgene-style element template. Instantiation walks the template tree
/// sampling occurrence counts from the attached distributions — the same
/// template → document pipeline ToXgene implements, with C++ lambdas in
/// place of ToXgene's XQuery-annotated CDATA genes.
struct TemplateNode {
  std::string name;
  std::vector<AttrTemplate> attrs;
  /// Text content generator (applied after child elements when mixed).
  ValueGen text;
  /// When set, text is emitted *before* children (heading-like elements).
  bool text_first = true;

  struct Child {
    /// Either an owned child template or a (possibly recursive) reference.
    std::unique_ptr<TemplateNode> owned;
    const TemplateNode* ref = nullptr;
    /// Occurrences; nullptr means exactly one.
    std::unique_ptr<stats::Distribution> count;
    /// Probability this child slot is instantiated at all.
    double presence = 1.0;
    /// Recursion budget for self-referencing templates (article sections).
    int max_depth = 1;

    const TemplateNode& node() const { return ref != nullptr ? *ref : *owned; }
  };
  std::vector<Child> children;

  // -- builder helpers ---------------------------------------------------
  TemplateNode* AddChild(std::string child_name,
                         std::unique_ptr<stats::Distribution> count = nullptr,
                         double presence = 1.0);
  void AddRef(const TemplateNode* target,
              std::unique_ptr<stats::Distribution> count, double presence,
              int max_depth);
  void SetAttr(std::string attr_name, ValueGen gen, double presence = 1.0);
};

/// Instantiates one element from the template.
std::unique_ptr<xml::Node> Instantiate(const TemplateNode& tmpl,
                                       GenContext& ctx);

}  // namespace xbench::datagen

#endif  // XBENCH_DATAGEN_TEMPLATE_ENGINE_H_
