#include "datagen/catalog_generator.h"

#include <algorithm>

#include "tpcw/mapping.h"
#include "tpcw/populate.h"
#include "xml/serializer.h"

namespace xbench::datagen {
namespace {

tpcw::PopulateScale CatalogScale(int64_t items) {
  tpcw::PopulateScale scale;
  scale.items = items;
  scale.authors = std::max<int64_t>(10, items / 3);
  scale.publishers = std::max<int64_t>(10, items / 50);
  scale.customers = 10;  // unused by the catalog mapping
  scale.orders = 1;
  return scale;
}

}  // namespace

CatalogResult GenerateCatalog(uint64_t target_bytes, uint64_t seed,
                              const WordPool& words) {
  // Pilot run to measure bytes per item under this seed's distributions.
  constexpr int64_t kPilotItems = 64;
  tpcw::TpcwData pilot =
      tpcw::Populate(CatalogScale(kPilotItems), seed, words);
  const uint64_t pilot_bytes =
      xml::Serialize(tpcw::BuildCatalog(pilot)).size();
  const double bytes_per_item =
      static_cast<double>(pilot_bytes) / static_cast<double>(kPilotItems);

  const int64_t items = std::max<int64_t>(
      8, static_cast<int64_t>(static_cast<double>(target_bytes) /
                              bytes_per_item));

  CatalogResult result;
  result.item_num = items;
  result.data = tpcw::Populate(CatalogScale(items), seed, words);
  result.doc = tpcw::BuildCatalog(result.data);
  return result;
}

}  // namespace xbench::datagen
