#ifndef XBENCH_DATAGEN_DICTIONARY_GENERATOR_H_
#define XBENCH_DATAGEN_DICTIONARY_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "datagen/word_pool.h"
#include "xml/node.h"

namespace xbench::datagen {

/// TC/SD: one big dictionary.xml with repeated word entries, deep nesting
/// and references between entries (GCIDE/OED generalization, Figure 1).
///
/// Entry layout:
///   dictionary
///     entry @id="E000001"                (repeated; controls size)
///       hw        "word_1"               (unique headword, Q8/Q11/Q17)
///       pr?       pronunciation
///       pos?      part of speech
///       etym?     etymology sentence
///       sn*       sense: def text, then
///         qp*     quotation paragraph
///           q       quote
///             qt      quotation text (mixed-content-like text)
///             qau     quotation author
///             qd      quotation date       (Q11 sort key)
///             qloc?   quotation location   (Q3 group key)
///       ss?       synonyms: ref* @to="E......" cross-references
struct DictionaryResult {
  xml::Document doc;
  int64_t entry_num = 0;
};

DictionaryResult GenerateDictionary(uint64_t target_bytes, uint64_t seed,
                                    const WordPool& words);

/// Number of distinct qloc location strings (Q3's group-by domain).
inline constexpr int kQuoteLocationCount = 40;
/// The qloc value with the given index in [0, kQuoteLocationCount).
std::string QuoteLocation(int index);

/// The headword of the 1-based entry N ("word_N") and its id ("E......").
std::string DictionaryHeadword(int64_t n);
std::string DictionaryEntryId(int64_t n);

}  // namespace xbench::datagen

#endif  // XBENCH_DATAGEN_DICTIONARY_GENERATOR_H_
