#include "datagen/dictionary_generator.h"

#include "common/strings.h"
#include "datagen/template_engine.h"
#include "xml/serializer.h"

namespace xbench::datagen {

std::string QuoteLocation(int index) {
  // Location names are disjoint from the Zipf text stream so Q3's grouping
  // domain is exactly kQuoteLocationCount values.
  return "Loc" + PadNumber(index % kQuoteLocationCount, 2);
}

std::string DictionaryHeadword(int64_t n) {
  return "word_" + std::to_string(n);
}

std::string DictionaryEntryId(int64_t n) { return "E" + PadNumber(n, 6); }

namespace {

/// Builds the reusable entry template (everything below <entry>).
std::unique_ptr<TemplateNode> BuildEntryTemplate(const WordPool& words) {
  auto entry = std::make_unique<TemplateNode>();
  entry->name = "entry";
  entry->SetAttr("id", [](GenContext& ctx) {
    return DictionaryEntryId(ctx.NextCounter("entry"));
  });

  TemplateNode* hw = entry->AddChild("hw");
  hw->text = [](GenContext& ctx) {
    return DictionaryHeadword(ctx.CurrentCounter("entry"));
  };

  TemplateNode* pr = entry->AddChild("pr", nullptr, /*presence=*/0.7);
  pr->text = [&words](GenContext& ctx) {
    return "\\" + words.RandomWord(ctx.rng()) + "\\";
  };

  TemplateNode* pos = entry->AddChild("pos", nullptr, /*presence=*/0.9);
  pos->text = [](GenContext& ctx) {
    static const char* kPos[] = {"n.", "v.", "adj.", "adv.", "prep."};
    return std::string(kPos[ctx.rng().NextBounded(5)]);
  };

  TemplateNode* etym = entry->AddChild("etym", nullptr, /*presence=*/0.4);
  etym->text = [&words](GenContext& ctx) {
    return words.Sentence(ctx.rng(), 4, 10);
  };

  // Senses with nested quotation paragraphs: the deep, text-dominated part.
  TemplateNode* sn =
      entry->AddChild("sn", stats::MakeNormal(2.2, 1.2, 1, 6));
  sn->SetAttr("no", [](GenContext& ctx) {
    return std::to_string(ctx.NextCounter("sense_no"));
  });
  TemplateNode* def = sn->AddChild("def");
  def->text = [&words](GenContext& ctx) {
    return words.Sentence(ctx.rng(), 8, 20);
  };
  TemplateNode* qp =
      sn->AddChild("qp", stats::MakeExponential(1.0, 0, 4));
  TemplateNode* q = qp->AddChild("q");
  // qt is mixed content: leading text plus an occasional inline emphasis
  // element — the mapping problem the paper hits with SQL Server (§3.1.3
  // problem 3).
  TemplateNode* qt = q->AddChild("qt");
  qt->text = [&words](GenContext& ctx) {
    return words.Paragraph(ctx.rng(), 2);
  };
  TemplateNode* em = qt->AddChild("em", nullptr, /*presence=*/0.3);
  em->text = [&words](GenContext& ctx) { return words.RandomWord(ctx.rng()); };
  TemplateNode* qau = q->AddChild("qau");
  qau->text = [&words](GenContext& ctx) {
    return words.PersonName(ctx.rng()) + " " + words.PersonName(ctx.rng());
  };
  TemplateNode* qd = q->AddChild("qd");
  qd->text = [](GenContext& ctx) {
    return WordPool::RandomDate(ctx.rng(), 1500, 2000);
  };
  TemplateNode* qloc = q->AddChild("qloc", nullptr, /*presence=*/0.8);
  qloc->text = [](GenContext& ctx) {
    return QuoteLocation(
        static_cast<int>(ctx.rng().NextBounded(kQuoteLocationCount)));
  };

  // Synonym cross-references to already-generated entries.
  TemplateNode* ss = entry->AddChild("ss", nullptr, /*presence=*/0.3);
  TemplateNode* ref =
      ss->AddChild("ref", stats::MakeUniform(1, 3));
  ref->SetAttr("to", [](GenContext& ctx) {
    const int64_t current = ctx.CurrentCounter("entry");
    return DictionaryEntryId(ctx.rng().NextInt(1, std::max<int64_t>(1, current)));
  });

  return entry;
}

}  // namespace

DictionaryResult GenerateDictionary(uint64_t target_bytes, uint64_t seed,
                                    const WordPool& words) {
  Rng rng(seed ^ 0xD1C7ull);
  GenContext ctx(rng, words);
  auto entry_template = BuildEntryTemplate(words);

  auto root = xml::Node::Element("dictionary");
  uint64_t bytes = 2 * (sizeof("dictionary") + 4);
  int64_t entry_num = 0;
  while (bytes < target_bytes) {
    std::unique_ptr<xml::Node> entry = Instantiate(*entry_template, ctx);
    bytes += xml::Serialize(*entry).size();
    root->AddChild(std::move(entry));
    ++entry_num;
  }

  DictionaryResult result;
  result.doc = xml::Document("dictionary.xml", std::move(root));
  result.entry_num = entry_num;
  return result;
}

}  // namespace xbench::datagen
