#ifndef XBENCH_HARNESS_REPORT_H_
#define XBENCH_HARNESS_REPORT_H_

#include <string>
#include <vector>

namespace xbench::harness {

/// A paper-style results matrix: engines as rows; (class x scale) columns
/// grouped like Tables 4-9.
class ResultTable {
 public:
  explicit ResultTable(std::string title);

  /// Column labels come from the fixed class/scale grid; rows are added
  /// engine by engine with 12 cells (4 classes x 3 scales) in the paper's
  /// order DC/SD, DC/MD, TC/SD, TC/MD. Use "-" for unsupported cells.
  void AddRow(const std::string& engine, const std::vector<std::string>& cells);

  /// Renders the table with a group header line, as in the paper.
  std::string ToString() const;

 private:
  std::string title_;
  std::vector<std::pair<std::string, std::vector<std::string>>> rows_;
};

/// Formats a milliseconds measurement like the paper's cells (integers).
std::string FormatMillis(double millis);
/// Formats seconds for Table 4.
std::string FormatSeconds(double millis);

}  // namespace xbench::harness

#endif  // XBENCH_HARNESS_REPORT_H_
