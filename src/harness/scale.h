#ifndef XBENCH_HARNESS_SCALE_H_
#define XBENCH_HARNESS_SCALE_H_

#include <cstdint>

#include "workload/classes.h"

namespace xbench::harness {

/// Target database bytes per scale. The paper's 10 MB / 100 MB / 1 GB are
/// scaled down (DESIGN.md) so the whole matrix runs on one core in
/// minutes; the growth factor between scales is 4x. Overridable via the
/// XBENCH_SMALL_KB / XBENCH_NORMAL_KB / XBENCH_LARGE_KB environment
/// variables (values in KiB).
uint64_t TargetBytes(workload::Scale scale);

/// The generation seed (XBENCH_SEED env, default 42).
uint64_t BenchSeed();

}  // namespace xbench::harness

#endif  // XBENCH_HARNESS_SCALE_H_
