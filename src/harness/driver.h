#ifndef XBENCH_HARNESS_DRIVER_H_
#define XBENCH_HARNESS_DRIVER_H_

#include <map>
#include <memory>
#include <string>

#include "datagen/generator.h"
#include "engines/dbms.h"
#include "harness/report.h"
#include "harness/scale.h"
#include "workload/queries.h"
#include "workload/runner.h"

namespace xbench::harness {

/// Orchestrates the paper's experiment matrix: generates each (class,
/// scale) database once, loads it into each engine on demand, and renders
/// the Tables 4-9 grids. Loaded engines are cached so the per-table
/// benches share work within one process.
class Driver {
 public:
  Driver() = default;

  /// The generated database for (class, scale); cached.
  const datagen::GeneratedDatabase& Database(datagen::DbClass db_class,
                                             workload::Scale scale);

  struct LoadedEngine {
    std::unique_ptr<engines::XmlDbms> engine;
    Status load_status;
    double load_cpu_millis = 0;
    double load_io_millis = 0;
    /// Pool/disk traffic attributed to the bulk load + index build.
    workload::IoStats load_io;

    double LoadMillis() const { return load_cpu_millis + load_io_millis; }
  };

  /// Engine `kind` loaded with (class, scale) + Table 3 indexes; cached.
  LoadedEngine& Loaded(engines::EngineKind kind, datagen::DbClass db_class,
                       workload::Scale scale);

  /// Table 4: bulk-loading time in seconds.
  ResultTable BulkLoadTable();

  /// Tables 5-9: execution time of one benchmark query in milliseconds.
  ResultTable QueryTable(workload::QueryId id);

  /// Renders Table 3 (indexes per class).
  std::string IndexTable() const;

  /// Configuration for JsonReport(). Empty vectors select the defaults:
  /// the paper's Tables 5-9 query subset at the small scale.
  struct ReportOptions {
    std::vector<workload::QueryId> queries;
    std::vector<workload::Scale> scales;
    /// Run queries with RunOptions::profile and emit a per-query
    /// "profile" object (phase timings) plus per-operator depth/self
    /// times in the plan section.
    bool profile = false;
    /// Intra-query parallelism bound for every query run, threaded into
    /// RunOptions::compile.parallelism.max_intra (native compiled path);
    /// surfaced in the report's plan section.
    int max_intra_parallelism = 1;
    /// Access-path policy for every query run (native compiled path).
    /// The default kAuto lets the cost model choose among guided walks,
    /// full scans, and index probes; the chosen path lands in each
    /// query's plan section as "access_path".
    xquery::plan::AccessPathPolicy access_path;
  };

  /// Machine-readable run report (BENCH_RESULTS-style): one cell per
  /// (engine, class, scale) with load timings, per-query timings, answer
  /// hashes, and buffer-pool/disk counters, plus a snapshot of the global
  /// metrics registry. Valid JSON by construction (tests parse it).
  std::string JsonReport(const ReportOptions& options);
  std::string JsonReport() { return JsonReport(ReportOptions()); }

  /// Writes JsonReport() to `path`.
  Status WriteJsonReport(const std::string& path,
                         const ReportOptions& options);
  Status WriteJsonReport(const std::string& path) {
    return WriteJsonReport(path, ReportOptions());
  }

 private:
  std::map<std::pair<int, int>, datagen::GeneratedDatabase> databases_;
  std::map<std::tuple<int, int, int>, LoadedEngine> engines_;
};

}  // namespace xbench::harness

#endif  // XBENCH_HARNESS_DRIVER_H_
