#include "harness/throughput.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "harness/scale.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "workload/runner.h"
#include "workload/session.h"

namespace xbench::harness {

namespace {

using workload::QueryId;

std::vector<QueryId> DefaultMix() {
  return {QueryId::kQ5, QueryId::kQ8, QueryId::kQ12, QueryId::kQ14,
          QueryId::kQ17};
}

double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// What one session's worker thread hands back after joining.
struct SessionOutcome {
  std::vector<double> latencies_millis;
  double busy_millis = 0;
  uint64_t failures = 0;
  uint64_t hash_mismatches = 0;
};

}  // namespace

bool ThroughputReport::AllAnswersMatchSerial() const {
  for (const MplResult& result : mpls) {
    if (result.hash_mismatches != 0) return false;
  }
  return true;
}

double ThroughputReport::SpeedupAt(int mpl) const {
  double base_qps = 0;
  double at_qps = 0;
  for (const MplResult& result : mpls) {
    if (result.mpl == 1) base_qps = result.qps;
    if (result.mpl == mpl) at_qps = result.qps;
  }
  if (base_qps <= 0 || at_qps <= 0) return 0;
  return at_qps / base_qps;
}

std::string ToJson(const ThroughputReport& report) {
  obs::JsonWriter writer;
  WriteJson(report, writer);
  return writer.TakeString();
}

void WriteJson(const ThroughputReport& report, obs::JsonWriter& writer) {
  writer.BeginObject();
  writer.Key("engine").String(engines::EngineKindName(report.engine));
  writer.Key("class").String(datagen::DbClassName(report.db_class));
  writer.Key("scale").String(workload::ScaleName(report.scale));
  writer.Key("answers_match_serial").Bool(report.AllAnswersMatchSerial());
  writer.Key("baseline").BeginArray();
  for (const BaselineAnswer& answer : report.baseline) {
    writer.BeginObject()
        .Key("query")
        .String(workload::QueryName(answer.id))
        .Key("answer_hash")
        .Uint(answer.answer_hash)
        .Key("answer_lines")
        .Uint(answer.answer_lines)
        .EndObject();
  }
  writer.EndArray();
  writer.Key("mpls").BeginArray();
  for (const MplResult& result : report.mpls) {
    writer.BeginObject()
        .Key("mpl")
        .Uint(static_cast<uint64_t>(result.mpl))
        .Key("ops")
        .Uint(result.ops)
        .Key("failures")
        .Uint(result.failures)
        .Key("hash_mismatches")
        .Uint(result.hash_mismatches)
        .Key("makespan_millis")
        .Number(result.makespan_millis)
        .Key("qps")
        .Number(result.qps)
        .Key("mean_millis")
        .Number(result.mean_millis)
        .Key("p50_millis")
        .Number(result.p50_millis)
        .Key("p99_millis")
        .Number(result.p99_millis)
        .EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

ThroughputDriver::ThroughputDriver(ThroughputOptions options)
    : options_(std::move(options)) {}

Result<ThroughputReport> ThroughputDriver::Run() {
  ThroughputReport report;
  report.engine = options_.engine;
  report.db_class = options_.db_class;
  report.scale = options_.scale;

  datagen::GenConfig config;
  config.target_bytes = TargetBytes(options_.scale);
  config.seed = BenchSeed();
  const datagen::GeneratedDatabase db =
      datagen::Generate(options_.db_class, config);

  std::unique_ptr<engines::XmlDbms> engine =
      workload::MakeEngine(options_.engine);
  if (engine == nullptr) {
    return Status::InvalidArgument("unknown engine kind");
  }
  workload::TimedStatus load = workload::BulkLoad(*engine, db);
  XBENCH_RETURN_IF_ERROR(load.status);
  XBENCH_RETURN_IF_ERROR(
      workload::CreateTable3Indexes(*engine, options_.db_class));

  const workload::QueryParams params =
      workload::DeriveParams(options_.db_class, db.seeds);
  std::vector<QueryId> mix =
      options_.mix.empty() ? DefaultMix() : options_.mix;

  // Serial baseline: one warm run per query on this thread establishes the
  // canonical answer hash the concurrent sweep must reproduce exactly.
  // Unsupported queries are dropped from the mix (an engine that cannot
  // run a query at MPL 1 cannot run it at MPL 8 either); other failures
  // are real errors and abort the sweep.
  workload::RunOptions serial_options;
  serial_options.cold = false;
  serial_options.thread_time = true;
  workload::Session baseline_session(*engine, options_.db_class, params,
                                     "baseline");
  std::vector<QueryId> supported;
  for (QueryId id : mix) {
    workload::ExecutionResult result = baseline_session.Run(id, serial_options);
    if (result.status.code() == StatusCode::kUnsupported) continue;
    XBENCH_RETURN_IF_ERROR(result.status);
    const std::vector<std::string> canonical =
        workload::CanonicalizeAnswer(id, std::move(result.lines));
    BaselineAnswer answer;
    answer.id = id;
    answer.answer_hash = workload::AnswerHash(canonical);
    answer.answer_lines = canonical.size();
    report.baseline.push_back(answer);
    supported.push_back(id);
  }
  if (supported.empty()) {
    return Status::Unsupported("no query in the mix is supported by " +
                               engine->name());
  }
  mix = std::move(supported);

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  for (int mpl : options_.mpls) {
    if (mpl <= 0) {
      return Status::InvalidArgument("MPL values must be positive");
    }
    std::vector<workload::Session> sessions;
    sessions.reserve(static_cast<size_t>(mpl));
    for (int s = 0; s < mpl; ++s) {
      sessions.emplace_back(*engine, options_.db_class, params,
                            "mpl" + std::to_string(mpl) + ".s" +
                                std::to_string(s));
    }
    std::vector<SessionOutcome> outcomes(static_cast<size_t>(mpl));
    const int ops = std::max(1, options_.ops_per_session);
    auto worker = [&](int index) {
      workload::Session& session = sessions[static_cast<size_t>(index)];
      SessionOutcome& outcome = outcomes[static_cast<size_t>(index)];
      workload::RunOptions run_options;
      run_options.cold = false;
      run_options.thread_time = true;
      run_options.collect_plan_stats = false;
      for (int op = 0; op < ops; ++op) {
        // Offset by the session index so concurrent sessions interleave
        // different statements instead of marching in lockstep.
        const QueryId id = mix[static_cast<size_t>(index + op) % mix.size()];
        workload::ExecutionResult result = session.Run(id, run_options);
        const double latency = result.TotalMillis();
        outcome.latencies_millis.push_back(latency);
        outcome.busy_millis += latency;
        if (!result.status.ok()) {
          ++outcome.failures;
          continue;
        }
        const uint64_t hash = workload::AnswerHash(
            workload::CanonicalizeAnswer(id, std::move(result.lines)));
        uint64_t expected = 0;
        for (const BaselineAnswer& answer : report.baseline) {
          if (answer.id == id) expected = answer.answer_hash;
        }
        if (hash != expected) ++outcome.hash_mismatches;
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(mpl));
    for (int s = 0; s < mpl; ++s) threads.emplace_back(worker, s);
    for (std::thread& t : threads) t.join();

    MplResult result;
    result.mpl = mpl;
    std::vector<double> latencies;
    for (const SessionOutcome& outcome : outcomes) {
      result.ops += outcome.latencies_millis.size();
      result.failures += outcome.failures;
      result.hash_mismatches += outcome.hash_mismatches;
      result.makespan_millis =
          std::max(result.makespan_millis, outcome.busy_millis);
      latencies.insert(latencies.end(), outcome.latencies_millis.begin(),
                       outcome.latencies_millis.end());
    }
    std::sort(latencies.begin(), latencies.end());
    double sum = 0;
    for (double latency : latencies) sum += latency;
    result.mean_millis =
        latencies.empty() ? 0 : sum / static_cast<double>(latencies.size());
    result.p50_millis = PercentileSorted(latencies, 0.50);
    result.p99_millis = PercentileSorted(latencies, 0.99);
    result.qps = result.makespan_millis > 0
                     ? static_cast<double>(result.ops) /
                           (result.makespan_millis / 1000.0)
                     : 0;
    report.mpls.push_back(result);

    const std::string prefix =
        "xbench.concurrency.mpl" + std::to_string(mpl);
    metrics.GetGauge(prefix + ".qps").Set(result.qps);
    metrics.GetGauge(prefix + ".p50_millis").Set(result.p50_millis);
    metrics.GetGauge(prefix + ".p99_millis").Set(result.p99_millis);
    metrics.GetCounter("xbench.concurrency.ops").Increment(result.ops);
    metrics.GetCounter("xbench.concurrency.hash_mismatches")
        .Increment(result.hash_mismatches);
  }
  metrics.GetGauge("xbench.concurrency.max_speedup")
      .Set([&report] {
        double best = 0;
        for (const MplResult& result : report.mpls) {
          best = std::max(best, report.SpeedupAt(result.mpl));
        }
        return best;
      }());
  return report;
}

}  // namespace xbench::harness
