#include "harness/throughput.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "harness/scale.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/runner.h"
#include "workload/session.h"

namespace xbench::harness {

namespace {

using workload::QueryId;

std::vector<QueryId> DefaultMix() {
  return {QueryId::kQ5, QueryId::kQ8, QueryId::kQ12, QueryId::kQ14,
          QueryId::kQ17};
}

/// What one session's worker thread hands back after joining. Latency
/// samples go straight into the shared per-MPL histogram, so only the
/// scalar tallies ride through here.
struct SessionOutcome {
  uint64_t ops = 0;
  double busy_millis = 0;
  uint64_t failures = 0;
  uint64_t hash_mismatches = 0;
};

}  // namespace

bool ThroughputReport::AllAnswersMatchSerial() const {
  for (const MplResult& result : mpls) {
    if (result.hash_mismatches != 0) return false;
  }
  return true;
}

bool ThroughputReport::SloSatisfied() const {
  for (const MplResult& result : mpls) {
    if (!result.slo_ok) return false;
  }
  return true;
}

double ThroughputReport::SpeedupAt(int mpl) const {
  double base_qps = 0;
  double at_qps = 0;
  for (const MplResult& result : mpls) {
    if (result.intra != 1) continue;
    if (result.mpl == 1) base_qps = result.qps;
    if (result.mpl == mpl) at_qps = result.qps;
  }
  if (base_qps <= 0 || at_qps <= 0) return 0;
  return at_qps / base_qps;
}

std::string ToJson(const ThroughputReport& report) {
  obs::JsonWriter writer;
  WriteJson(report, writer);
  return writer.TakeString();
}

void WriteJson(const ThroughputReport& report, obs::JsonWriter& writer) {
  writer.BeginObject();
  writer.Key("engine").String(engines::EngineKindName(report.engine));
  writer.Key("class").String(datagen::DbClassName(report.db_class));
  writer.Key("scale").String(workload::ScaleName(report.scale));
  writer.Key("answers_match_serial").Bool(report.AllAnswersMatchSerial());
  writer.Key("slo_p99_millis").Number(report.slo_p99_millis);
  writer.Key("slo_satisfied").Bool(report.SloSatisfied());
  writer.Key("baseline").BeginArray();
  for (const BaselineAnswer& answer : report.baseline) {
    writer.BeginObject()
        .Key("query")
        .String(workload::QueryName(answer.id))
        .Key("answer_hash")
        .Uint(answer.answer_hash)
        .Key("answer_lines")
        .Uint(answer.answer_lines)
        .EndObject();
  }
  writer.EndArray();
  writer.Key("mpls").BeginArray();
  for (const MplResult& result : report.mpls) {
    writer.BeginObject()
        .Key("mpl")
        .Uint(static_cast<uint64_t>(result.mpl))
        .Key("intra")
        .Uint(static_cast<uint64_t>(result.intra))
        .Key("ops")
        .Uint(result.ops)
        .Key("failures")
        .Uint(result.failures)
        .Key("hash_mismatches")
        .Uint(result.hash_mismatches)
        .Key("makespan_millis")
        .Number(result.makespan_millis)
        .Key("qps")
        .Number(result.qps)
        .Key("mean_millis")
        .Number(result.mean_millis)
        .Key("p50_millis")
        .Number(result.p50_millis)
        .Key("p90_millis")
        .Number(result.p90_millis)
        .Key("p99_millis")
        .Number(result.p99_millis)
        .Key("p999_millis")
        .Number(result.p999_millis)
        .Key("slo_ok")
        .Bool(result.slo_ok)
        .EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

ThroughputDriver::ThroughputDriver(ThroughputOptions options)
    : options_(std::move(options)) {}

Result<ThroughputReport> ThroughputDriver::Run() {
  ThroughputReport report;
  report.engine = options_.engine;
  report.db_class = options_.db_class;
  report.scale = options_.scale;
  report.slo_p99_millis = options_.slo_p99_millis;

  datagen::GenConfig config;
  config.target_bytes = TargetBytes(options_.scale);
  config.seed = BenchSeed();
  const datagen::GeneratedDatabase db =
      datagen::Generate(options_.db_class, config);

  std::unique_ptr<engines::XmlDbms> engine =
      workload::MakeEngine(options_.engine);
  if (engine == nullptr) {
    return Status::InvalidArgument("unknown engine kind");
  }
  workload::TimedStatus load = workload::BulkLoad(*engine, db);
  XBENCH_RETURN_IF_ERROR(load.status);
  XBENCH_RETURN_IF_ERROR(
      workload::CreateTable3Indexes(*engine, options_.db_class));

  const workload::QueryParams params =
      workload::DeriveParams(options_.db_class, db.seeds);
  std::vector<QueryId> mix =
      options_.mix.empty() ? DefaultMix() : options_.mix;

  // Serial baseline: one warm run per query on this thread establishes the
  // canonical answer hash the concurrent sweep must reproduce exactly.
  // Unsupported queries are dropped from the mix (an engine that cannot
  // run a query at MPL 1 cannot run it at MPL 8 either); other failures
  // are real errors and abort the sweep.
  workload::RunOptions serial_options;
  serial_options.cold = false;
  serial_options.thread_time = true;
  workload::Session baseline_session(*engine, options_.db_class, params,
                                     "baseline");
  std::vector<QueryId> supported;
  for (QueryId id : mix) {
    workload::ExecutionResult result = baseline_session.Run(id, serial_options);
    if (result.status.code() == StatusCode::kUnsupported) continue;
    XBENCH_RETURN_IF_ERROR(result.status);
    const std::vector<std::string> canonical =
        workload::CanonicalizeAnswer(id, std::move(result.lines));
    BaselineAnswer answer;
    answer.id = id;
    answer.answer_hash = workload::AnswerHash(canonical);
    answer.answer_lines = canonical.size();
    report.baseline.push_back(answer);
    supported.push_back(id);
  }
  if (supported.empty()) {
    return Status::Unsupported("no query in the mix is supported by " +
                               engine->name());
  }
  mix = std::move(supported);

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  const std::vector<int> intras =
      options_.intra.empty() ? std::vector<int>{1} : options_.intra;
  for (int mpl : options_.mpls) {
    if (mpl <= 0) {
      return Status::InvalidArgument("MPL values must be positive");
    }
    for (int intra : intras) {
    if (intra <= 0) {
      return Status::InvalidArgument("intra values must be positive");
    }
    // Histogram / gauge tag: classic names for scalar rows, an .intraM
    // segment for morsel-parallel rows (so old dashboards keep working).
    const std::string tag =
        "mpl" + std::to_string(mpl) +
        (intra > 1 ? ".intra" + std::to_string(intra) : "");
    std::vector<workload::Session> sessions;
    sessions.reserve(static_cast<size_t>(mpl));
    for (int s = 0; s < mpl; ++s) {
      sessions.emplace_back(*engine, options_.db_class, params,
                            tag + ".s" + std::to_string(s));
    }
    std::vector<SessionOutcome> outcomes(static_cast<size_t>(mpl));
    const int ops = std::max(1, options_.ops_per_session);
    // Per-statement latency samples, shared by this MPL's workers. Reset
    // so a rerun (or a prior sweep in the same process) does not bleed in.
    obs::Histogram& latency_histogram =
        metrics.GetHistogram("xbench.concurrency." + tag + ".latency_micros");
    latency_histogram.Reset();
    auto worker = [&](int index) {
      workload::Session& session = sessions[static_cast<size_t>(index)];
      SessionOutcome& outcome = outcomes[static_cast<size_t>(index)];
      if (obs::Tracer::Default().enabled()) {
        obs::Tracer::Default().SetCurrentThreadName(session.name());
      }
      workload::RunOptions run_options;
      run_options.cold = false;
      run_options.thread_time = true;
      // The intra-parallel latency model below reads the run's parallel-
      // region stats, so plan stats collection stays on for those rows.
      run_options.collect_plan_stats = intra > 1;
      run_options.compile.parallelism.max_intra = intra;
      for (int op = 0; op < ops; ++op) {
        // Offset by the session index so concurrent sessions interleave
        // different statements instead of marching in lockstep.
        const QueryId id = mix[static_cast<size_t>(index + op) % mix.size()];
        workload::ExecutionResult result = session.Run(id, run_options);
        double latency = result.TotalMillis();
        if (intra > 1 && result.compiled) {
          // Modeled per-statement wall time with intra free cores: swap
          // the caller's measured share of the parallel regions for the
          // regions' modeled makespans (pool-lane CPU is not in the
          // caller's thread-CPU measurement to begin with).
          latency += result.plan_stats.parallel_modeled_millis -
                     result.plan_stats.parallel_caller_busy_millis;
          if (latency < 0) latency = 0;
        }
        latency_histogram.Record(
            static_cast<uint64_t>(std::llround(latency * 1000.0)));
        ++outcome.ops;
        outcome.busy_millis += latency;
        if (!result.status.ok()) {
          ++outcome.failures;
          continue;
        }
        const uint64_t hash = workload::AnswerHash(
            workload::CanonicalizeAnswer(id, std::move(result.lines)));
        uint64_t expected = 0;
        for (const BaselineAnswer& answer : report.baseline) {
          if (answer.id == id) expected = answer.answer_hash;
        }
        if (hash != expected) ++outcome.hash_mismatches;
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(mpl));
    for (int s = 0; s < mpl; ++s) threads.emplace_back(worker, s);
    for (std::thread& t : threads) t.join();

    MplResult result;
    result.mpl = mpl;
    result.intra = intra;
    for (const SessionOutcome& outcome : outcomes) {
      result.ops += outcome.ops;
      result.failures += outcome.failures;
      result.hash_mismatches += outcome.hash_mismatches;
      result.makespan_millis =
          std::max(result.makespan_millis, outcome.busy_millis);
    }
    // Percentiles straight from the recorded samples (micros -> millis);
    // the log-bucketed histogram bounds the relative error at <= 6.25%.
    result.mean_millis = latency_histogram.Mean() / 1000.0;
    result.p50_millis =
        static_cast<double>(latency_histogram.ApproxPercentile(0.50)) / 1000.0;
    result.p90_millis =
        static_cast<double>(latency_histogram.ApproxPercentile(0.90)) / 1000.0;
    result.p99_millis =
        static_cast<double>(latency_histogram.ApproxPercentile(0.99)) / 1000.0;
    result.p999_millis =
        static_cast<double>(latency_histogram.ApproxPercentile(0.999)) /
        1000.0;
    result.slo_ok = options_.slo_p99_millis <= 0 ||
                    result.p99_millis <= options_.slo_p99_millis;
    result.qps = result.makespan_millis > 0
                     ? static_cast<double>(result.ops) /
                           (result.makespan_millis / 1000.0)
                     : 0;
    report.mpls.push_back(result);

    const std::string prefix = "xbench.concurrency." + tag;
    metrics.GetGauge(prefix + ".qps").Set(result.qps);
    metrics.GetGauge(prefix + ".p50_millis").Set(result.p50_millis);
    metrics.GetGauge(prefix + ".p90_millis").Set(result.p90_millis);
    metrics.GetGauge(prefix + ".p99_millis").Set(result.p99_millis);
    metrics.GetGauge(prefix + ".p999_millis").Set(result.p999_millis);
    metrics.GetCounter("xbench.concurrency.ops").Increment(result.ops);
    metrics.GetCounter("xbench.concurrency.hash_mismatches")
        .Increment(result.hash_mismatches);
    }
  }
  metrics.GetGauge("xbench.concurrency.max_speedup")
      .Set([&report] {
        double best = 0;
        for (const MplResult& result : report.mpls) {
          best = std::max(best, report.SpeedupAt(result.mpl));
        }
        return best;
      }());
  return report;
}

}  // namespace xbench::harness
