#include "harness/scale.h"

#include <cstdlib>

#include "common/strings.h"

namespace xbench::harness {
namespace {

uint64_t EnvKb(const char* name, uint64_t default_bytes) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_bytes;
  const int64_t kb = ParseInt(value);
  if (kb <= 0) return default_bytes;
  return static_cast<uint64_t>(kb) * 1024;
}

}  // namespace

uint64_t TargetBytes(workload::Scale scale) {
  switch (scale) {
    case workload::Scale::kSmall:
      return EnvKb("XBENCH_SMALL_KB", 512ull * 1024);
    case workload::Scale::kNormal:
      return EnvKb("XBENCH_NORMAL_KB", 2ull * 1024 * 1024);
    case workload::Scale::kLarge:
      return EnvKb("XBENCH_LARGE_KB", 8ull * 1024 * 1024);
  }
  return 512 * 1024;
}

uint64_t BenchSeed() {
  const char* value = std::getenv("XBENCH_SEED");
  if (value == nullptr) return 42;
  const int64_t seed = ParseInt(value);
  return seed < 0 ? 42 : static_cast<uint64_t>(seed);
}

}  // namespace xbench::harness
