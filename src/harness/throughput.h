#ifndef XBENCH_HARNESS_THROUGHPUT_H_
#define XBENCH_HARNESS_THROUGHPUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/generator.h"
#include "engines/dbms.h"
#include "obs/json.h"
#include "workload/classes.h"
#include "workload/queries.h"

namespace xbench::harness {

/// Configuration for one multi-programming-level (MPL) throughput sweep.
struct ThroughputOptions {
  engines::EngineKind engine = engines::EngineKind::kNative;
  datagen::DbClass db_class = datagen::DbClass::kTcSd;
  workload::Scale scale = workload::Scale::kSmall;
  /// MPLs to sweep, each run against the same loaded engine.
  std::vector<int> mpls = {1, 2, 4, 8, 16};
  /// Query mix each session cycles through (offset by its session index so
  /// concurrent sessions interleave different statements). Queries the
  /// engine reports Unsupported for are dropped during the serial
  /// baseline. Empty means the default report mix.
  std::vector<workload::QueryId> mix;
  /// Statements each session executes per MPL run.
  int ops_per_session = 8;
  /// Intra-query parallelism bounds to sweep (cross product with `mpls`):
  /// each session runs its statements with
  /// RunOptions::compile.parallelism.max_intra set to the value, so the
  /// sweep contrasts inter-query concurrency (MPL) with intra-query morsel
  /// parallelism. {1} (the default) keeps the classic scalar sweep.
  std::vector<int> intra = {1};
  /// SLO gate: when positive, an MPL whose p99 latency exceeds this many
  /// milliseconds is flagged (MplResult::slo_ok = false) and
  /// ThroughputReport::SloSatisfied() turns false. 0 disables the gate.
  double slo_p99_millis = 0;
};

/// One (MPL, intra) data point. Latency percentiles come from a
/// log-bucketed `xbench.concurrency.mpl<N>.latency_micros` histogram
/// (`mpl<N>.intra<M>.latency_micros` when intra > 1) of per-statement
/// samples (see obs::Histogram for the relative-error bound), recorded in
/// microseconds and reported in milliseconds. For intra > 1 each
/// statement's latency is its modeled wall time on a host with that many
/// free cores: measured (thread-CPU + attributed-I/O) with the caller's
/// share of the parallel regions replaced by the regions' modeled
/// makespans — mirroring the makespan convention below.
struct MplResult {
  int mpl = 1;
  /// Intra-query parallelism bound the sessions ran with.
  int intra = 1;
  uint64_t ops = 0;
  uint64_t failures = 0;
  /// Statements whose canonical answer hash differed from the serial
  /// baseline — must be zero for a correct engine.
  uint64_t hash_mismatches = 0;
  /// Modeled elapsed time: max over sessions of that session's summed
  /// per-statement (thread-CPU + attributed-I/O) time. On a single-core
  /// host this is what a multi-core run's wall clock would be; wall time
  /// here would only measure timeslicing.
  double makespan_millis = 0;
  double qps = 0;
  double mean_millis = 0;
  double p50_millis = 0;
  double p90_millis = 0;
  double p99_millis = 0;
  double p999_millis = 0;
  /// False when the SLO gate was enabled and this MPL's p99 exceeded it.
  bool slo_ok = true;
};

/// Serial-baseline answer for one query in the mix.
struct BaselineAnswer {
  workload::QueryId id;
  uint64_t answer_hash = 0;
  uint64_t answer_lines = 0;
};

/// Full sweep outcome.
struct ThroughputReport {
  engines::EngineKind engine = engines::EngineKind::kNative;
  datagen::DbClass db_class = datagen::DbClass::kTcSd;
  workload::Scale scale = workload::Scale::kSmall;
  std::vector<BaselineAnswer> baseline;
  std::vector<MplResult> mpls;
  /// Copy of ThroughputOptions::slo_p99_millis (0 = gate disabled).
  double slo_p99_millis = 0;

  /// True when no concurrent statement's answer diverged from serial.
  bool AllAnswersMatchSerial() const;
  /// True when every MPL met the p99 SLO (vacuously true when disabled).
  bool SloSatisfied() const;
  /// qps at `mpl` divided by qps at MPL 1, over the scalar (intra == 1)
  /// rows (0 when either is missing).
  double SpeedupAt(int mpl) const;
};

/// JSON object for run reports / tooling (engine, mix, per-MPL rows).
std::string ToJson(const ThroughputReport& report);

/// Same object, written into an in-progress JsonWriter (for embedding the
/// sweep into a larger run report).
void WriteJson(const ThroughputReport& report, obs::JsonWriter& writer);

/// Runs N concurrent sessions over a query mix against one shared engine
/// and reports queries/sec and latency percentiles per MPL. Every
/// concurrent statement's canonical answer hash is checked against a
/// serial baseline taken on the same engine, so the sweep doubles as a
/// differential test of the thread-safe engine paths. Publishes
/// `xbench.concurrency.*` metrics into the default registry so JSON run
/// reports pick the sweep up.
class ThroughputDriver {
 public:
  explicit ThroughputDriver(ThroughputOptions options = {});

  /// Generates + loads the database, takes the serial baseline, then runs
  /// each MPL. Statuses: load/baseline failures abort; per-statement
  /// failures during the sweep are counted, not fatal.
  Result<ThroughputReport> Run();

 private:
  ThroughputOptions options_;
};

}  // namespace xbench::harness

#endif  // XBENCH_HARNESS_THROUGHPUT_H_
