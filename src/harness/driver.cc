#include "harness/driver.h"

#include <tuple>

#include "workload/classes.h"

namespace xbench::harness {

using datagen::DbClass;
using workload::Scale;

const datagen::GeneratedDatabase& Driver::Database(DbClass db_class,
                                                   Scale scale) {
  const auto key =
      std::make_pair(static_cast<int>(db_class), static_cast<int>(scale));
  auto it = databases_.find(key);
  if (it != databases_.end()) return it->second;
  datagen::GenConfig config;
  config.target_bytes = TargetBytes(scale);
  config.seed = BenchSeed();
  auto [inserted, ok] =
      databases_.emplace(key, datagen::Generate(db_class, config));
  return inserted->second;
}

Driver::LoadedEngine& Driver::Loaded(engines::EngineKind kind,
                                     DbClass db_class, Scale scale) {
  const auto key = std::make_tuple(static_cast<int>(kind),
                                   static_cast<int>(db_class),
                                   static_cast<int>(scale));
  auto it = engines_.find(key);
  if (it != engines_.end()) return it->second;

  LoadedEngine loaded;
  loaded.engine = workload::MakeEngine(kind);
  const datagen::GeneratedDatabase& db = Database(db_class, scale);
  workload::TimedStatus timed = workload::BulkLoad(*loaded.engine, db);
  loaded.load_status = timed.status;
  loaded.load_cpu_millis = timed.cpu_millis;
  loaded.load_io_millis = timed.io_millis;
  if (loaded.load_status.ok()) {
    Status index_status =
        workload::CreateTable3Indexes(*loaded.engine, db_class);
    if (!index_status.ok()) loaded.load_status = index_status;
  }
  auto [inserted, ok] = engines_.emplace(key, std::move(loaded));
  return inserted->second;
}

ResultTable Driver::BulkLoadTable() {
  ResultTable table("Table 4: Bulk Loading Time (seconds)");
  for (engines::EngineKind kind : workload::AllEngines()) {
    std::vector<std::string> cells;
    for (DbClass db_class : workload::AllClasses()) {
      for (Scale scale : workload::AllScales()) {
        LoadedEngine& loaded = Loaded(kind, db_class, scale);
        cells.push_back(loaded.load_status.ok()
                            ? FormatSeconds(loaded.LoadMillis())
                            : "-");
      }
    }
    table.AddRow(engines::EngineKindName(kind), cells);
  }
  return table;
}

ResultTable Driver::QueryTable(workload::QueryId id) {
  ResultTable table(std::string("Query ") + workload::QueryName(id) +
                    " Execution Time (milliseconds)");
  for (engines::EngineKind kind : workload::AllEngines()) {
    std::vector<std::string> cells;
    for (DbClass db_class : workload::AllClasses()) {
      const datagen::GeneratedDatabase& db =
          Database(db_class, Scale::kSmall);
      const workload::QueryParams params =
          workload::DeriveParams(db_class, db.seeds);
      for (Scale scale : workload::AllScales()) {
        LoadedEngine& loaded = Loaded(kind, db_class, scale);
        if (!loaded.load_status.ok()) {
          cells.push_back("-");
          continue;
        }
        const datagen::GeneratedDatabase& scale_db =
            Database(db_class, scale);
        const workload::QueryParams scale_params =
            workload::DeriveParams(db_class, scale_db.seeds);
        workload::ExecutionResult result =
            workload::RunQuery(*loaded.engine, id, db_class, scale_params);
        cells.push_back(result.status.ok()
                            ? FormatMillis(result.TotalMillis())
                            : "-");
      }
      (void)params;
    }
    table.AddRow(engines::EngineKindName(kind), cells);
  }
  return table;
}

std::string Driver::IndexTable() const {
  std::string out = "\n== Table 3: Indexes for Each Class ==\n";
  for (DbClass db_class : workload::AllClasses()) {
    out += std::string(datagen::DbClassName(db_class)) + ": ";
    bool first = true;
    for (const engines::IndexSpec& spec : workload::Table3Indexes(db_class)) {
      if (!first) out += ", ";
      out += spec.path;
      first = false;
    }
    out += "\n";
  }
  return out;
}

}  // namespace xbench::harness
