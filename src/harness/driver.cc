#include "harness/driver.h"

#include <cstdio>
#include <tuple>

#include "harness/scale.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "workload/classes.h"
#include "workload/session.h"

namespace xbench::harness {

using datagen::DbClass;
using workload::Scale;

const datagen::GeneratedDatabase& Driver::Database(DbClass db_class,
                                                   Scale scale) {
  const auto key =
      std::make_pair(static_cast<int>(db_class), static_cast<int>(scale));
  auto it = databases_.find(key);
  if (it != databases_.end()) return it->second;
  datagen::GenConfig config;
  config.target_bytes = TargetBytes(scale);
  config.seed = BenchSeed();
  auto [inserted, ok] =
      databases_.emplace(key, datagen::Generate(db_class, config));
  return inserted->second;
}

Driver::LoadedEngine& Driver::Loaded(engines::EngineKind kind,
                                     DbClass db_class, Scale scale) {
  const auto key = std::make_tuple(static_cast<int>(kind),
                                   static_cast<int>(db_class),
                                   static_cast<int>(scale));
  auto it = engines_.find(key);
  if (it != engines_.end()) return it->second;

  LoadedEngine loaded;
  loaded.engine = workload::MakeEngine(kind);
  const datagen::GeneratedDatabase& db = Database(db_class, scale);
  workload::TimedStatus timed = workload::BulkLoad(*loaded.engine, db);
  loaded.load_status = timed.status;
  loaded.load_cpu_millis = timed.cpu_millis;
  loaded.load_io_millis = timed.io_millis;
  loaded.load_io = timed.io;
  if (loaded.load_status.ok()) {
    Status index_status =
        workload::CreateTable3Indexes(*loaded.engine, db_class);
    if (!index_status.ok()) loaded.load_status = index_status;
  }
  auto [inserted, ok] = engines_.emplace(key, std::move(loaded));
  return inserted->second;
}

ResultTable Driver::BulkLoadTable() {
  ResultTable table("Table 4: Bulk Loading Time (seconds)");
  for (engines::EngineKind kind : workload::AllEngines()) {
    std::vector<std::string> cells;
    for (DbClass db_class : workload::AllClasses()) {
      for (Scale scale : workload::AllScales()) {
        LoadedEngine& loaded = Loaded(kind, db_class, scale);
        cells.push_back(loaded.load_status.ok()
                            ? FormatSeconds(loaded.LoadMillis())
                            : "-");
      }
    }
    table.AddRow(engines::EngineKindName(kind), cells);
  }
  return table;
}

ResultTable Driver::QueryTable(workload::QueryId id) {
  ResultTable table(std::string("Query ") + workload::QueryName(id) +
                    " Execution Time (milliseconds)");
  for (engines::EngineKind kind : workload::AllEngines()) {
    std::vector<std::string> cells;
    for (DbClass db_class : workload::AllClasses()) {
      for (Scale scale : workload::AllScales()) {
        LoadedEngine& loaded = Loaded(kind, db_class, scale);
        if (!loaded.load_status.ok()) {
          cells.push_back("-");
          continue;
        }
        const datagen::GeneratedDatabase& scale_db =
            Database(db_class, scale);
        workload::Session session(
            *loaded.engine, db_class,
            workload::DeriveParams(db_class, scale_db.seeds), "table");
        workload::ExecutionResult result = session.Run(id);
        cells.push_back(result.status.ok()
                            ? FormatMillis(result.TotalMillis())
                            : "-");
      }
    }
    table.AddRow(engines::EngineKindName(kind), cells);
  }
  return table;
}

namespace {

void WriteIoStats(obs::JsonWriter& writer, const workload::IoStats& io) {
  writer.Key("pool")
      .BeginObject()
      .Key("hits")
      .Uint(io.pool_hits)
      .Key("misses")
      .Uint(io.pool_misses)
      .Key("evictions")
      .Uint(io.pool_evictions)
      .Key("writebacks")
      .Uint(io.pool_writebacks)
      .EndObject();
  writer.Key("disk")
      .BeginObject()
      .Key("page_reads")
      .Uint(io.disk_page_reads)
      .Key("page_writes")
      .Uint(io.disk_page_writes)
      .Key("bytes_read")
      .Uint(io.disk_bytes_read)
      .Key("bytes_written")
      .Uint(io.disk_bytes_written)
      .EndObject();
}

std::string HexHash(uint64_t hash) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace

std::string Driver::JsonReport(const ReportOptions& options) {
  using workload::QueryId;
  const std::vector<QueryId> queries =
      options.queries.empty()
          ? std::vector<QueryId>{QueryId::kQ5, QueryId::kQ8, QueryId::kQ12,
                                 QueryId::kQ14, QueryId::kQ17}
          : options.queries;
  const std::vector<Scale> scales = options.scales.empty()
                                        ? std::vector<Scale>{Scale::kSmall}
                                        : options.scales;

  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("benchmark").String("xbench");
  writer.Key("seed").Uint(BenchSeed());
  writer.Key("scales").BeginArray();
  for (Scale scale : scales) {
    writer.BeginObject()
        .Key("name")
        .String(workload::ScaleName(scale))
        .Key("target_bytes")
        .Uint(TargetBytes(scale))
        .EndObject();
  }
  writer.EndArray();

  writer.Key("cells").BeginArray();
  for (engines::EngineKind kind : workload::AllEngines()) {
    for (DbClass db_class : workload::AllClasses()) {
      for (Scale scale : scales) {
        LoadedEngine& loaded = Loaded(kind, db_class, scale);
        writer.BeginObject();
        writer.Key("engine").String(engines::EngineKindName(kind));
        writer.Key("class").String(datagen::DbClassName(db_class));
        writer.Key("scale").String(workload::ScaleName(scale));
        writer.Key("instance").String(
            workload::InstanceName(db_class, scale));
        writer.Key("load").BeginObject();
        writer.Key("supported").Bool(loaded.load_status.ok());
        if (loaded.load_status.ok()) {
          writer.Key("cpu_millis").Number(loaded.load_cpu_millis);
          writer.Key("io_millis").Number(loaded.load_io_millis);
          WriteIoStats(writer, loaded.load_io);
        } else {
          writer.Key("error").String(loaded.load_status.ToString());
        }
        writer.EndObject();
        if (loaded.load_status.ok()) {
          const datagen::GeneratedDatabase& db = Database(db_class, scale);
          workload::Session session(
              *loaded.engine, db_class,
              workload::DeriveParams(db_class, db.seeds), "report");
          writer.Key("queries").BeginArray();
          for (QueryId id : queries) {
            workload::RunOptions run_options;
            run_options.profile = options.profile;
            run_options.compile.parallelism.max_intra =
                options.max_intra_parallelism;
            run_options.compile.access_path = options.access_path;
            workload::ExecutionResult result = session.Run(id, run_options);
            writer.BeginObject();
            writer.Key("query").String(workload::QueryName(id));
            writer.Key("supported").Bool(result.status.ok());
            if (result.status.ok()) {
              writer.Key("cpu_millis").Number(result.cpu_millis);
              writer.Key("io_millis").Number(result.io_millis);
              const std::vector<std::string> canonical =
                  workload::CanonicalizeAnswer(id, result.lines);
              writer.Key("answer_lines").Uint(canonical.size());
              writer.Key("answer_hash")
                  .String(HexHash(workload::AnswerHash(canonical)));
              WriteIoStats(writer, result.io);
              if (result.profile.collected) {
                const workload::QueryProfile& profile = result.profile;
                writer.Key("profile").BeginObject();
                writer.Key("parse_millis").Number(profile.parse_millis);
                writer.Key("analyze_millis").Number(profile.analyze_millis);
                writer.Key("plan_millis").Number(profile.plan_millis);
                writer.Key("compile_cache_hit")
                    .Bool(profile.compile_cache_hit);
                writer.Key("engine_millis").Number(profile.engine_millis);
                writer.Key("exec_millis").Number(profile.exec_millis);
                writer.Key("serialize_millis")
                    .Number(profile.serialize_millis);
                writer.EndObject();
              }
              if (result.compiled) {
                const xquery::exec::ExecStats& plan_stats = result.plan_stats;
                writer.Key("plan").BeginObject();
                writer.Key("compiled").Bool(true);
                writer.Key("cache_hit").Bool(result.plan_cache_hit);
                writer.Key("access_path").String(result.access_path);
                writer.Key("max_parallelism")
                    .Uint(static_cast<uint64_t>(
                        plan_stats.max_parallelism > 0
                            ? plan_stats.max_parallelism
                            : 1));
                if (plan_stats.max_parallelism > 1) {
                  uint64_t morsels = 0;
                  for (const xquery::exec::OperatorStats& op :
                       plan_stats.operators) {
                    morsels += op.morsels;
                  }
                  writer.Key("morsels").Uint(morsels);
                  writer.Key("parallel_busy_millis")
                      .Number(plan_stats.parallel_busy_millis);
                  writer.Key("parallel_modeled_millis")
                      .Number(plan_stats.parallel_modeled_millis);
                  writer.Key("modeled_total_millis")
                      .Number(plan_stats.modeled_total_millis);
                }
                writer.Key("operators").BeginArray();
                for (const xquery::exec::OperatorStats& op :
                     plan_stats.operators) {
                  writer.BeginObject()
                      .Key("op")
                      .String(op.label)
                      .Key("depth")
                      .Uint(static_cast<uint64_t>(op.depth))
                      .Key("rows_out")
                      .Uint(op.rows_out)
                      .Key("invocations")
                      .Uint(op.invocations)
                      .Key("millis")
                      .Number(op.millis)
                      .Key("self_millis")
                      .Number(op.self_millis);
                  // Cost-model estimate next to the measured rows, so the
                  // report shows estimated-vs-actual for chosen probes.
                  if (op.estimated_rows >= 0) {
                    writer.Key("estimated_rows").Number(op.estimated_rows);
                  }
                  writer.EndObject();
                }
                writer.EndArray();
                writer.EndObject();
              }
            } else {
              writer.Key("error").String(result.status.ToString());
            }
            writer.EndObject();
          }
          writer.EndArray();
        }
        writer.EndObject();
      }
    }
  }
  writer.EndArray();

  writer.Key("metrics");
  obs::MetricsRegistry::Default().WriteJson(writer);
  writer.EndObject();
  return writer.TakeString();
}

Status Driver::WriteJsonReport(const std::string& path,
                               const ReportOptions& options) {
  return obs::WriteFile(path, JsonReport(options));
}

std::string Driver::IndexTable() const {
  std::string out = "\n== Table 3: Indexes for Each Class ==\n";
  for (DbClass db_class : workload::AllClasses()) {
    out += std::string(datagen::DbClassName(db_class)) + ": ";
    bool first = true;
    for (const engines::IndexSpec& spec : workload::Table3Indexes(db_class)) {
      if (!first) out += ", ";
      out += spec.path;
      first = false;
    }
    out += "\n";
  }
  return out;
}

}  // namespace xbench::harness
