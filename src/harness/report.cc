#include "harness/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace xbench::harness {

ResultTable::ResultTable(std::string title) : title_(std::move(title)) {}

void ResultTable::AddRow(const std::string& engine,
                         const std::vector<std::string>& cells) {
  rows_.emplace_back(engine, cells);
}

std::string ResultTable::ToString() const {
  static const char* kClasses[] = {"DC/SD", "DC/MD", "TC/SD", "TC/MD"};
  static const char* kScales[] = {"Small", "Normal", "Large"};
  constexpr int kCellWidth = 9;
  constexpr int kNameWidth = 14;

  std::string out = "\n== " + title_ + " ==\n";
  // Class group header.
  out += std::string(kNameWidth, ' ');
  for (const char* cls : kClasses) {
    std::string group = cls;
    const size_t group_width = 3 * kCellWidth;
    const size_t pad = group_width > group.size()
                           ? (group_width - group.size()) / 2
                           : 0;
    out += "|" + std::string(pad, ' ') + group +
           std::string(group_width - pad - group.size(), ' ');
  }
  out += "\n" + std::string(kNameWidth, ' ');
  for (int g = 0; g < 4; ++g) {
    out += "|";
    for (const char* scale : kScales) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%*s", kCellWidth, scale);
      out += buf;
    }
  }
  out += "\n" + std::string(kNameWidth + 4 * (1 + 3 * kCellWidth), '-') + "\n";
  for (const auto& [engine, cells] : rows_) {
    char name[64];
    std::snprintf(name, sizeof(name), "%-*s", kNameWidth, engine.c_str());
    out += name;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i % 3 == 0) out += "|";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%*s", kCellWidth, cells[i].c_str());
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string FormatMillis(double millis) {
  char buf[32];
  if (millis < 10) {
    std::snprintf(buf, sizeof(buf), "%.1f", millis);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::llround(millis)));
  }
  return buf;
}

std::string FormatSeconds(double millis) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", millis / 1000.0);
  return buf;
}

}  // namespace xbench::harness
