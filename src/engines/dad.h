#ifndef XBENCH_ENGINES_DAD_H_
#define XBENCH_ENGINES_DAD_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "datagen/generator.h"
#include "relational/value.h"

namespace xbench::engines {

/// One column of a mapped table: a path relative to the triggering element.
/// Forms: "@attr", "child", "child/grandchild", "child/@attr", or "." for
/// the element's own text content.
struct ColumnMap {
  std::string column;
  std::string rel_path;
  relational::ValueType type = relational::ValueType::kString;
  /// True when the source element can have mixed content (e.g. qt).
  /// SQL Server's mapping cannot represent these and stores NULL
  /// (paper §3.1.3 problem 3).
  bool mixed_content = false;
};

/// Maps one element type to one relational table. Every mapped table also
/// receives the implicit columns:
///   doc          document name
///   row_id       synthetic unique id (the paper's added-id fix for chain
///                relationships, §3.1.3 problem 4)
///   parent_table / parent_row   nearest enclosing mapped element
///   seq          1-based sibling sequence under that parent (the
///                dxx_seqno equivalent; NULL for engines that do not
///                maintain document order)
struct TableMap {
  std::string table;
  std::string element;  // triggering element type name
  std::vector<ColumnMap> columns;
};

/// A Data Access Definition: the table maps for one database class.
struct Dad {
  std::vector<TableMap> tables;
};

/// Full shredding DAD (DB2 Xcollection / SQL Server bulk load).
Dad ShredDadFor(datagen::DbClass db_class);

/// Side-table DAD for DB2 Xcolumn: only the searchable elements the
/// workload filters on (§3.1.1). Only defined for the MD classes.
Dad ClobSideTablesFor(datagen::DbClass db_class);

/// Resolves a Table 3 index path ("elem/@attr", "elem/child", or a bare
/// element/column name) against a DAD, returning (table, column).
Result<std::pair<std::string, std::string>> ResolveIndexPath(
    const Dad& dad, const std::string& path);

}  // namespace xbench::engines

#endif  // XBENCH_ENGINES_DAD_H_
