#ifndef XBENCH_ENGINES_REGISTRY_H_
#define XBENCH_ENGINES_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "engines/dbms.h"

namespace xbench::engines {

/// Name -> factory registry for storage engines, so tools and benchmarks
/// resolve engines from a --engine=<name> flag without duplicating the
/// EngineKind switch. The default registry comes pre-registered with the
/// four paper engines under their stable short names:
///
///   "native"      X-Hive analogue (NativeEngine)
///   "clob"        DB2 XML Extender Xcolumn analogue (ClobEngine)
///   "shred-db2"   DB2 XML Extender Xcollection analogue (ShredEngine)
///   "shred-mssql" SQL Server + SQLXML analogue (ShredEngine)
///
/// Thread-safe: registration and creation serialize on an internal mutex.
class EngineRegistry {
 public:
  using Factory = std::function<std::unique_ptr<XmlDbms>()>;

  /// The process-wide registry with the built-in engines registered.
  static EngineRegistry& Default();

  /// Registers `factory` under `name`. AlreadyExists when taken.
  Status Register(const std::string& name, Factory factory);

  /// Instantiates the engine registered under `name`; NotFound lists the
  /// registered names to make flag typos self-explanatory.
  Result<std::unique_ptr<XmlDbms>> Create(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  mutable Mutex mu_{LockRank::kEngineRegistry, "engine.registry"};
  std::map<std::string, Factory> factories_ XBENCH_GUARDED_BY(mu_);
};

/// The registry short name for a built-in engine kind ("native", ...).
const char* EngineKindRegistryName(EngineKind kind);

}  // namespace xbench::engines

#endif  // XBENCH_ENGINES_REGISTRY_H_
