#include "engines/clob_engine.h"

#include "common/strings.h"
#include "engines/shredder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/parser.h"
#include "xquery/parser.h"

namespace xbench::engines {

ClobEngine::ClobEngine(uint64_t max_document_bytes)
    : max_document_bytes_(max_document_bytes) {
  clob_file_ = std::make_unique<storage::HeapFile>(*disk_, *pool_);
  database_ = std::make_unique<relational::Database>(*disk_, *pool_);
}

Status ClobEngine::BulkLoad(datagen::DbClass db_class,
                            const std::vector<LoadDocument>& docs) {
  WriterLock lock(collection_mu_);
  db_class_ = db_class;
  dad_ = ClobSideTablesFor(db_class);
  if (dad_.tables.empty()) {
    return Status::Unsupported(
        std::string(datagen::DbClassName(db_class)) +
        ": single-document class exceeds the XML column CLOB limit");
  }
  XBENCH_RETURN_IF_ERROR(CreateDadTables(dad_, *database_));

  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan load_span("clob.bulkload");
  obs::Counter& docs_loaded =
      obs::MetricsRegistry::Default().GetCounter("xbench.engine.docs_loaded");
  ShredOptions options;
  options.keep_seq = true;  // dxx_seqno
  for (const LoadDocument& doc : docs) {
    obs::ScopedSpan doc_span("load.doc");
    if (doc.text.size() > max_document_bytes_) {
      return Status::Unsupported("document '" + doc.name +
                                 "' exceeds the CLOB limit (" +
                                 std::to_string(doc.text.size()) + " bytes)");
    }
    auto parsed = [&] {
      obs::ScopedSpan parse_span("parse");
      return xml::Parse(doc.text, doc.name);
    }();
    if (!parsed.ok()) return parsed.status();
    {
      obs::ScopedSpan store_span("store");
      registry_[doc.name] = clob_file_->Append(doc.text);
    }
    {
      obs::ScopedSpan shred_span("shred");
      XBENCH_RETURN_IF_ERROR(ShredDocument(*parsed->root(), doc.name, dad_,
                                           options, *database_, next_row_id_,
                                           nullptr));
    }
    {
      obs::ScopedSpan commit_span("commit");
      disk_->clock().AdvanceMicros(kPerDocumentIngestMicros);
    }
    docs_loaded.Increment();
  }
  {
    obs::ScopedSpan flush_span("flush");
    pool_->FlushAll();
  }
  return Status::Ok();
}

Status ClobEngine::InsertDocument(const LoadDocument& doc) {
  WriterLock lock(collection_mu_);
  if (dad_.tables.empty()) {
    return Status::Unsupported("engine holds no loaded database");
  }
  disk_->clock().AdvanceMicros(kPerDocumentIngestMicros);
  if (doc.text.size() > max_document_bytes_) {
    return Status::Unsupported("document '" + doc.name +
                               "' exceeds the CLOB limit");
  }
  auto parsed = xml::Parse(doc.text, doc.name);
  if (!parsed.ok()) return parsed.status();
  registry_[doc.name] = clob_file_->Append(doc.text);
  ShredOptions options;
  options.keep_seq = true;
  return ShredDocument(*parsed->root(), doc.name, dad_, options, *database_,
                       next_row_id_, nullptr);
}

Status ClobEngine::DeleteDocument(const std::string& name) {
  WriterLock lock(collection_mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::NotFound("document '" + name + "'");
  }
  registry_.erase(it);
  {
    MutexLock cache_lock(cache_mu_);
    cache_.erase(name);
  }
  for (const TableMap& map : dad_.tables) {
    relational::Table* table = database_->FindTable(map.table);
    if (table == nullptr) continue;
    std::vector<storage::RecordId> victims;
    table->Scan([&](storage::RecordId rid, const relational::Row& row) {
      if (row[kColDoc].ToText() == name) victims.push_back(rid);
      return true;
    });
    for (storage::RecordId rid : victims) {
      XBENCH_RETURN_IF_ERROR(table->Delete(rid));
    }
  }
  return Status::Ok();
}

Status ClobEngine::CreateIndex(const IndexSpec& spec) {
  if (spec.kind != IndexKind::kValue) {
    return Status::Unsupported(std::string(IndexKindName(spec.kind)) +
                               " indexes are native-engine only");
  }
  WriterLock lock(collection_mu_);
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("clob.index_build");
  XBENCH_ASSIGN_OR_RETURN(auto target, ResolveIndex(spec.path));
  relational::Table* table = database_->FindTable(target.first);
  if (table == nullptr) {
    return Status::NotFound("side table '" + target.first + "'");
  }
  return table->CreateIndex(spec.name, {target.second});
}

Result<std::pair<std::string, std::string>> ClobEngine::ResolveIndex(
    const std::string& path) const {
  return ResolveIndexPath(dad_, path);
}

void ClobEngine::ColdRestartLocked() {
  XmlDbms::ColdRestartLocked();
  MutexLock cache_lock(cache_mu_);
  cache_.clear();
}

Result<const xml::Document*> ClobEngine::FetchDocument(
    const std::string& doc_name) {
  {
    MutexLock cache_lock(cache_mu_);
    auto cached = cache_.find(doc_name);
    if (cached != cache_.end()) {
      return const_cast<const xml::Document*>(cached->second.get());
    }
  }
  auto it = registry_.find(doc_name);
  if (it == registry_.end()) {
    return Status::NotFound("document '" + doc_name + "'");
  }
  const std::string text = clob_file_->Read(it->second);
  auto parsed = xml::Parse(text, doc_name);
  if (!parsed.ok()) return parsed.status();
  auto doc = std::make_unique<xml::Document>(std::move(parsed).value());
  // Racing fetches of one document both parse; the first insert wins.
  MutexLock cache_lock(cache_mu_);
  auto [slot, inserted] = cache_.emplace(doc_name, std::move(doc));
  return const_cast<const xml::Document*>(slot->second.get());
}

std::vector<std::string> ClobEngine::DocumentNames() const {
  std::vector<std::string> out;
  out.reserve(registry_.size());
  for (const auto& [name, rid] : registry_) out.push_back(name);
  return out;
}

Result<std::string> ClobEngine::FetchRaw(const std::string& doc_name) {
  auto it = registry_.find(doc_name);
  if (it == registry_.end()) {
    return Status::NotFound("document '" + doc_name + "'");
  }
  return clob_file_->Read(it->second);
}

Result<xquery::QueryResult> ClobEngine::QueryDocument(
    const std::string& doc_name, std::string_view xquery) {
  XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc, FetchDocument(doc_name));
  const xquery::Expr* ast = nullptr;
  {
    MutexLock ast_lock(ast_mu_);
    auto it = ast_cache_.find(xquery);
    if (it != ast_cache_.end()) {
      obs::MetricsRegistry::Default()
          .GetCounter("xbench.plan.ast_cache_hits")
          .Increment();
      ast = it->second.get();
    }
  }
  if (ast == nullptr) {
    obs::MetricsRegistry::Default()
        .GetCounter("xbench.plan.ast_cache_misses")
        .Increment();
    auto parsed = xquery::ParseQuery(xquery);
    if (!parsed.ok()) return parsed.status();
    MutexLock ast_lock(ast_mu_);
    auto [slot, inserted] =
        ast_cache_.emplace(std::string(xquery), std::move(parsed).value());
    ast = slot->second.get();
  }
  xquery::Bindings bindings;
  bindings["input"] = xquery::Sequence{xquery::Item::Node(doc->root())};
  return xquery::Evaluate(*ast, bindings);
}

}  // namespace xbench::engines
