#ifndef XBENCH_ENGINES_CLOB_ENGINE_H_
#define XBENCH_ENGINES_CLOB_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "engines/dad.h"
#include "engines/dbms.h"
#include "relational/table.h"
#include "storage/heap_file.h"
#include "xml/node.h"
#include "xquery/evaluator.h"

namespace xbench::engines {

/// DB2 XML Extender "Xcolumn" analogue: each document is stored intact as
/// a CLOB, with DAD-declared side tables over the searchable elements
/// (carrying a dxx_seqno ordering column). Plans filter via the side
/// tables, then fetch and reconstruct whole documents from the CLOB.
///
/// Limits (paper §3.1.1): a document larger than the CLOB cap cannot be
/// stored — so the SD classes (one huge file) are unsupported, exactly as
/// in the paper's runs.
///
/// Thread safety: mutations take the collection lock exclusively inside
/// the engine. The read-side methods (FetchDocument / QueryDocument /
/// FetchRaw / side_tables access in query plans) do NOT take it — CLOB
/// query plans span several engine calls per statement, so the *caller*
/// (workload::Session) holds the lock shared for the whole statement.
/// The document and AST caches have leaf mutexes, making the read side
/// safe for any number of shared-lock holders.
class ClobEngine : public XmlDbms {
 public:
  /// `max_document_bytes` is the scaled-down 2 GB CLOB cap; 256 KiB keeps
  /// the MD classes loadable and both SD classes refused at every scale.
  explicit ClobEngine(uint64_t max_document_bytes = 256 * 1024);

  EngineKind kind() const override { return EngineKind::kClob; }

  Status BulkLoad(datagen::DbClass db_class,
                  const std::vector<LoadDocument>& docs) override;

  Status CreateIndex(const IndexSpec& spec) override;

  /// Appends one CLOB + its side-table rows.
  Status InsertDocument(const LoadDocument& doc) override;

  /// Drops a document from the registry and deletes its side-table rows.
  Status DeleteDocument(const std::string& name) override;

  /// The side-table database (query plans read it directly). Caller holds
  /// the collection lock — shared for reads, exclusive inside mutations.
  relational::Database& side_tables() XBENCH_REQUIRES_SHARED(collection_mu_) {
    return *database_;
  }
  const Dad& side_dad() const XBENCH_REQUIRES_SHARED(collection_mu_) {
    return dad_;
  }

  /// Fetches + parses the CLOB of the named document.
  Result<const xml::Document*> FetchDocument(const std::string& doc_name)
      XBENCH_REQUIRES_SHARED(collection_mu_);

  /// Names of all stored documents (registry order).
  std::vector<std::string> DocumentNames() const
      XBENCH_REQUIRES_SHARED(collection_mu_);

  /// Raw serialized CLOB of the named document (whole-document retrieval).
  Result<std::string> FetchRaw(const std::string& doc_name)
      XBENCH_REQUIRES_SHARED(collection_mu_);

  /// Runs an XQuery over one fetched document ($input = its root). The
  /// parsed AST is cached by query text — XML Extender compiles the
  /// extraction statement once, not per document — so a Q-over-N-documents
  /// loop parses exactly once (metrics xbench.plan.ast_cache_hits/misses).
  /// Query text is data-independent, so this cache never needs mutation
  /// invalidation; it survives ColdRestart like a statement cache.
  Result<xquery::QueryResult> QueryDocument(const std::string& doc_name,
                                            std::string_view xquery)
      XBENCH_REQUIRES_SHARED(collection_mu_);

  /// Resolves a Table 3 index path against the side DAD.
  Result<std::pair<std::string, std::string>> ResolveIndex(
      const std::string& path) const XBENCH_REQUIRES_SHARED(collection_mu_);

 protected:
  void ColdRestartLocked() override XBENCH_REQUIRES(collection_mu_);

 private:
  uint64_t max_document_bytes_;
  // clob_file_ is set once in the constructor; record access goes through
  // the registry under the collection lock.
  std::unique_ptr<storage::HeapFile> clob_file_;
  std::unique_ptr<relational::Database> database_
      XBENCH_PT_GUARDED_BY(collection_mu_);
  Dad dad_ XBENCH_GUARDED_BY(collection_mu_);
  datagen::DbClass db_class_ XBENCH_GUARDED_BY(collection_mu_) =
      datagen::DbClass::kDcMd;
  std::map<std::string, storage::RecordId> registry_
      XBENCH_GUARDED_BY(collection_mu_);
  mutable Mutex cache_mu_{LockRank::kDocumentCache, "clob.doc.cache"};
  std::map<std::string, std::unique_ptr<xml::Document>> cache_
      XBENCH_GUARDED_BY(cache_mu_);
  mutable Mutex ast_mu_{LockRank::kAstCache, "clob.ast.cache"};
  std::map<std::string, xquery::ExprPtr, std::less<>> ast_cache_
      XBENCH_GUARDED_BY(ast_mu_);
  int64_t next_row_id_ XBENCH_GUARDED_BY(collection_mu_) = 0;
};

}  // namespace xbench::engines

#endif  // XBENCH_ENGINES_CLOB_ENGINE_H_
