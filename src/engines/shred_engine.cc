#include "engines/shred_engine.h"

#include <algorithm>
#include <mutex>

#include "engines/shredder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/parser.h"

namespace xbench::engines {

ShredEngine::ShredEngine(EngineKind kind) : kind_(kind) {
  database_ = std::make_unique<relational::Database>(*disk_, *pool_);
}

Status ShredEngine::BulkLoad(datagen::DbClass db_class,
                             const std::vector<LoadDocument>& docs) {
  WriterLock lock(collection_mu_);
  db_class_ = db_class;
  dad_ = ShredDadFor(db_class);
  XBENCH_RETURN_IF_ERROR(CreateDadTables(dad_, *database_));

  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan load_span("shred.bulkload");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  obs::Counter& docs_loaded = metrics.GetCounter("xbench.engine.docs_loaded");
  obs::Counter& rows_shredded =
      metrics.GetCounter("xbench.engine.rows_shredded");
  ShredOptions options;
  options.keep_seq = false;  // neither flavor maintains document order
  options.drop_mixed_content = kind_ == EngineKind::kShredMsSql;

  int64_t rows_loaded = 0;
  for (const LoadDocument& doc : docs) {
    obs::ScopedSpan doc_span("load.doc");
    {
      obs::ScopedSpan commit_span("commit");
      disk_->clock().AdvanceMicros(kPerDocumentIngestMicros);
    }
    auto parsed = [&] {
      obs::ScopedSpan parse_span("parse");
      return xml::Parse(doc.text, doc.name);
    }();
    if (!parsed.ok()) return parsed.status();
    std::map<std::string, int64_t> rows_per_table;
    {
      obs::ScopedSpan shred_span("shred");
      XBENCH_RETURN_IF_ERROR(ShredDocument(*parsed->root(), doc.name, dad_,
                                           options, *database_, next_row_id_,
                                           &rows_per_table));
    }
    docs_loaded.Increment();
    int64_t doc_rows = 0;
    if (kind_ == EngineKind::kShredDb2) {
      // XML Extender caps a decomposed document at kDb2RowLimit rows per
      // table; bigger documents must be pre-split into fragments, and
      // beyond kDb2MaxFragments fragments that workaround is impractical
      // (the paper stopped at the small scale for the SD classes).
      int64_t max_rows = 0;
      for (const auto& [table, rows] : rows_per_table) {
        max_rows = std::max(max_rows, rows);
        doc_rows += rows;
      }
      const int64_t fragments = (max_rows + kDb2RowLimit - 1) / kDb2RowLimit;
      if (fragments > kDb2MaxFragments) {
        return Status::Unsupported(
            "document '" + doc.name + "' decomposes into " +
            std::to_string(max_rows) + " rows; splitting into " +
            std::to_string(fragments) + " fragments is impractical");
      }
    } else {
      for (const auto& [table, rows] : rows_per_table) doc_rows += rows;
      // SQLXML middleware overhead per shredded row.
      disk_->clock().AdvanceMicros(
          static_cast<uint64_t>(doc_rows) * kMsSqlRowOverheadMicros);
    }
    rows_loaded += doc_rows;
    rows_shredded.Increment(static_cast<uint64_t>(doc_rows));
  }

  {
    // Relational systems build primary/foreign-key indexes during bulk load
    // (paper §3.2.1); row_id is the synthetic PK, parent_row the FK.
    obs::ScopedSpan index_span("shred.key_index_build");
    for (const TableMap& map : dad_.tables) {
      relational::Table* table = database_->FindTable(map.table);
      XBENCH_RETURN_IF_ERROR(table->CreateIndex(map.table + "_pk", {"row_id"}));
      XBENCH_RETURN_IF_ERROR(
          table->CreateIndex(map.table + "_fk", {"parent_row"}));
    }
  }
  {
    obs::ScopedSpan flush_span("flush");
    pool_->FlushAll();
  }
  return Status::Ok();
}

Status ShredEngine::InsertDocument(const LoadDocument& doc) {
  WriterLock lock(collection_mu_);
  disk_->clock().AdvanceMicros(kPerDocumentIngestMicros);
  auto parsed = xml::Parse(doc.text, doc.name);
  if (!parsed.ok()) return parsed.status();
  ShredOptions options;
  options.keep_seq = false;
  options.drop_mixed_content = kind_ == EngineKind::kShredMsSql;
  std::map<std::string, int64_t> rows_per_table;
  XBENCH_RETURN_IF_ERROR(ShredDocument(*parsed->root(), doc.name, dad_,
                                       options, *database_, next_row_id_,
                                       &rows_per_table));
  if (kind_ == EngineKind::kShredDb2) {
    for (const auto& [table, rows] : rows_per_table) {
      if (rows > kDb2RowLimit * kDb2MaxFragments) {
        return Status::Unsupported("document '" + doc.name +
                                   "' exceeds the decomposition row limit");
      }
    }
  }
  return Status::Ok();
}

Status ShredEngine::DeleteDocument(const std::string& name) {
  WriterLock lock(collection_mu_);
  bool found = false;
  for (const TableMap& map : dad_.tables) {
    relational::Table* table = database_->FindTable(map.table);
    if (table == nullptr) continue;
    std::vector<storage::RecordId> victims;
    table->Scan([&](storage::RecordId rid, const relational::Row& row) {
      if (row[kColDoc].ToText() == name) victims.push_back(rid);
      return true;
    });
    for (storage::RecordId rid : victims) {
      XBENCH_RETURN_IF_ERROR(table->Delete(rid));
      found = true;
    }
  }
  if (!found) return Status::NotFound("document '" + name + "'");
  return Status::Ok();
}

Status ShredEngine::CreateIndex(const IndexSpec& spec) {
  if (spec.kind != IndexKind::kValue) {
    return Status::Unsupported(std::string(IndexKindName(spec.kind)) +
                               " indexes are native-engine only");
  }
  WriterLock lock(collection_mu_);
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("shred.index_build");
  XBENCH_ASSIGN_OR_RETURN(auto target, ResolveIndexPath(dad_, spec.path));
  relational::Table* table = database_->FindTable(target.first);
  if (table == nullptr) {
    return Status::NotFound("table '" + target.first + "'");
  }
  return table->CreateIndex(spec.name, {target.second});
}

}  // namespace xbench::engines
