#include "engines/native_engine.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/parser.h"
#include "xquery/parser.h"

namespace xbench::engines {

std::vector<std::string> ExtractIndexValues(const xml::Node& root,
                                            const std::string& path) {
  std::vector<std::string> values;
  std::vector<std::string> parts = Split(path, '/');
  std::string element = parts[0];
  std::string attribute;
  if (parts.size() == 2 && !parts[1].empty() && parts[1][0] == '@') {
    attribute = parts[1].substr(1);
  }
  root.Visit([&](const xml::Node& node) {
    if (!node.is_element() || node.name() != element) return;
    if (attribute.empty()) {
      values.push_back(node.TextContent());
    } else if (const std::string* v = node.FindAttribute(attribute)) {
      values.push_back(*v);
    }
  });
  return values;
}

/// Adapter giving probe operators runtime access to this engine's
/// indexes. Constructed on the stack inside RunPlanOver, whose caller
/// holds the collection lock shared for the whole execution (the
/// IndexProvider threading contract), so every method simply requires
/// that lock and delegates to the annotated engine bodies.
class NativeEngine::PlanIndexProvider final
    : public xquery::exec::IndexProvider {
 public:
  explicit PlanIndexProvider(NativeEngine& engine) : engine_(engine) {}

  std::optional<std::vector<const xml::Node*>> ValueLookup(
      const std::string& index, const std::string& key) const override
      XBENCH_REQUIRES_SHARED(engine_.collection_mu_);
  std::optional<std::vector<const xml::Node*>> ValueRange(
      const std::string& index, const std::string& lo,
      const std::string& hi) const override
      XBENCH_REQUIRES_SHARED(engine_.collection_mu_);
  std::optional<std::vector<const xml::Node*>> TextLookup(
      const std::string& word) const override
      XBENCH_REQUIRES_SHARED(engine_.collection_mu_);

 private:
  NativeEngine& engine_;
};

std::optional<std::vector<const xml::Node*>>
NativeEngine::PlanIndexProvider::ValueLookup(const std::string& index,
                                             const std::string& key) const {
  return engine_.ProbeValueEquals(index, key);
}

std::optional<std::vector<const xml::Node*>>
NativeEngine::PlanIndexProvider::ValueRange(const std::string& index,
                                            const std::string& lo,
                                            const std::string& hi) const {
  return engine_.ProbeValueRange(index, lo, hi);
}

std::optional<std::vector<const xml::Node*>>
NativeEngine::PlanIndexProvider::TextLookup(const std::string& word) const {
  return engine_.ProbeTextWord(word);
}

NativeEngine::NativeEngine() {
  file_ = std::make_unique<storage::HeapFile>(*disk_, *pool_);
}

void NativeEngine::IndexDocument(size_t ordinal, const xml::Node& root) {
  path_index_.AddDocument(ordinal, root);
  if (text_index_ != nullptr) text_index_->AddDocument(ordinal, root);
  for (auto& [name, index] : value_indexes_) {
    for (auto& [value, order] :
         ExtractIndexPostings(root, index.path, &index.single_valued)) {
      index.tree->Insert({relational::Value::String(value)},
                         PackNodeRid(ordinal, order));
    }
  }
}

Status NativeEngine::BulkLoad(datagen::DbClass db_class,
                              const std::vector<LoadDocument>& docs) {
  WriterLock lock(collection_mu_);
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan load_span("native.bulkload");
  obs::Counter& docs_loaded =
      obs::MetricsRegistry::Default().GetCounter("xbench.engine.docs_loaded");
  db_class_ = db_class;
  // The collection is changing; any earlier conformance proof no longer
  // covers it. workload::BulkLoad re-enables after re-validating. Compiled
  // plans froze access paths under the old gate state, so they go too.
  set_guided_eval_enabled(false);
  plan_cache_.Invalidate();
  for (const LoadDocument& doc : docs) {
    obs::ScopedSpan doc_span("load.doc");
    const size_t ordinal = registry_.size();
    {
      // X-Hive parses into its persistent DOM on load; we parse (which
      // also verifies well-formedness), feed the tree through the index
      // structures, and persist the canonical serialized form,
      // re-materializing trees on demand.
      obs::ScopedSpan parse_span("parse");
      auto parsed = xml::Parse(doc.text, doc.name);
      if (!parsed.ok()) return parsed.status();
      obs::ScopedSpan index_span("index");
      IndexDocument(ordinal, *parsed->root());
    }
    {
      obs::ScopedSpan store_span("store");
      const storage::RecordId rid = file_->Append(doc.text);
      registry_.push_back({doc.name, rid, /*deleted=*/false});
    }
    {
      obs::ScopedSpan commit_span("commit");
      disk_->clock().AdvanceMicros(kPerDocumentIngestMicros);
    }
    live_count_.fetch_add(1, std::memory_order_relaxed);
    docs_loaded.Increment();
  }
  {
    obs::ScopedSpan flush_span("flush");
    pool_->FlushAll();
  }
  RefreshCatalogLocked();
  return Status::Ok();
}

Status NativeEngine::InsertDocument(const LoadDocument& doc) {
  WriterLock lock(collection_mu_);
  // The inserted document was not part of the validated bulk load, so the
  // collection may no longer conform to the schema the analyzer resolved
  // expansions from; fall back to (always-correct) full subtree scans and
  // drop plans compiled for the guided collection.
  set_guided_eval_enabled(false);
  plan_cache_.Invalidate();
  disk_->clock().AdvanceMicros(kPerDocumentIngestMicros);
  auto parsed = xml::Parse(doc.text, doc.name);
  if (!parsed.ok()) return parsed.status();
  const storage::RecordId rid = file_->Append(doc.text);
  const size_t ordinal = registry_.size();
  registry_.push_back({doc.name, rid, /*deleted=*/false});
  live_count_.fetch_add(1, std::memory_order_relaxed);
  IndexDocument(ordinal, *parsed->root());
  RefreshCatalogLocked();
  return Status::Ok();
}

Status NativeEngine::DeleteDocument(const std::string& name) {
  WriterLock lock(collection_mu_);
  for (size_t ordinal = 0; ordinal < registry_.size(); ++ordinal) {
    DocEntry& entry = registry_[ordinal];
    if (entry.deleted || entry.name != name) continue;
    // Erase index entries (including the always-on structural index)
    // before dropping the document.
    XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc, Materialize(ordinal));
    path_index_.RemoveDocument(ordinal, *doc->root());
    if (text_index_ != nullptr) text_index_->RemoveDocument(ordinal);
    for (auto& [index_name, index] : value_indexes_) {
      for (const auto& [value, order] :
           ExtractIndexPostings(*doc->root(), index.path)) {
        index.tree->Erase({relational::Value::String(value)},
                          PackNodeRid(ordinal, order));
      }
    }
    entry.deleted = true;
    live_count_.fetch_sub(1, std::memory_order_relaxed);
    {
      MutexLock cache_lock(cache_mu_);
      cache_.erase(ordinal);
    }
    plan_cache_.Invalidate();
    RefreshCatalogLocked();
    return Status::Ok();
  }
  return Status::NotFound("document '" + name + "'");
}

bool NativeEngine::IndexNameTaken(const std::string& name) const {
  return value_indexes_.count(name) != 0 ||
         (!text_index_name_.empty() && text_index_name_ == name) ||
         (!path_index_name_.empty() && path_index_name_ == name);
}

Status NativeEngine::CreateIndex(const IndexSpec& spec) {
  WriterLock lock(collection_mu_);
  if (IndexNameTaken(spec.name)) {
    return Status::AlreadyExists("index '" + spec.name + "'");
  }
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.index_build");
  switch (spec.kind) {
    case IndexKind::kValue: {
      ValueIndex index;
      index.path = spec.path;
      index.tree = std::make_unique<relational::BTreeIndex>(disk_->clock());
      for (size_t ordinal = 0; ordinal < registry_.size(); ++ordinal) {
        if (registry_[ordinal].deleted) continue;
        XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc,
                                Materialize(ordinal));
        for (auto& [value, order] : ExtractIndexPostings(
                 *doc->root(), spec.path, &index.single_valued)) {
          index.tree->Insert({relational::Value::String(value)},
                             PackNodeRid(ordinal, order));
        }
      }
      value_indexes_[spec.name] = std::move(index);
      break;
    }
    case IndexKind::kText: {
      if (text_index_ != nullptr) {
        return Status::AlreadyExists("text index '" + text_index_name_ +
                                     "' (one per collection)");
      }
      auto index = std::make_unique<TextIndex>(&disk_->clock());
      for (size_t ordinal = 0; ordinal < registry_.size(); ++ordinal) {
        if (registry_[ordinal].deleted) continue;
        XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc,
                                Materialize(ordinal));
        index->AddDocument(ordinal, *doc->root());
      }
      text_index_ = std::move(index);
      text_index_name_ = spec.name;
      break;
    }
    case IndexKind::kPath: {
      // The structural index is maintained unconditionally; DDL only
      // names it (making it visible to ListIndexes and forcible by name).
      if (!path_index_name_.empty()) {
        return Status::AlreadyExists("path index '" + path_index_name_ +
                                     "' (one per collection)");
      }
      path_index_name_ = spec.name;
      break;
    }
  }
  index_order_.push_back(spec.name);
  // The access-path choice space changed; cached plans were costed
  // without this index.
  plan_cache_.Invalidate();
  RefreshCatalogLocked();
  // Index building materialized every document; drop that warmth. The
  // collection lock is already held exclusively, so call the locked body
  // directly (ColdRestart() would self-deadlock).
  ColdRestartLocked();
  return Status::Ok();
}

Status NativeEngine::DropIndex(const std::string& name) {
  WriterLock lock(collection_mu_);
  if (auto it = value_indexes_.find(name); it != value_indexes_.end()) {
    value_indexes_.erase(it);
  } else if (!text_index_name_.empty() && text_index_name_ == name) {
    text_index_.reset();
    text_index_name_.clear();
  } else if (!path_index_name_.empty() && path_index_name_ == name) {
    // Unregister the name; the structural statistics keep running.
    path_index_name_.clear();
  } else {
    return Status::NotFound("index '" + name + "'");
  }
  index_order_.erase(
      std::remove(index_order_.begin(), index_order_.end(), name),
      index_order_.end());
  plan_cache_.Invalidate();
  RefreshCatalogLocked();
  return Status::Ok();
}

std::vector<IndexInfo> NativeEngine::ListIndexes() const {
  ReaderLock lock(collection_mu_);
  std::vector<IndexInfo> infos;
  infos.reserve(index_order_.size());
  for (const std::string& name : index_order_) {
    IndexInfo info;
    info.name = name;
    if (auto it = value_indexes_.find(name); it != value_indexes_.end()) {
      info.kind = IndexKind::kValue;
      info.path = it->second.path;
      info.entries = it->second.tree->entry_count();
    } else if (text_index_name_ == name && text_index_ != nullptr) {
      info.kind = IndexKind::kText;
      info.entries = text_index_->entries();
    } else if (path_index_name_ == name) {
      info.kind = IndexKind::kPath;
      info.entries = path_index_.entries();
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

void NativeEngine::RefreshCatalogLocked() {
  xquery::plan::IndexCatalog catalog;
  catalog.collection.documents = path_index_.documents();
  catalog.collection.total_elements = path_index_.total_elements();
  catalog.collection.elements_by_name = path_index_.elements_by_name();
  catalog.collection.root_names = path_index_.root_names();
  for (const auto& [name, index] : value_indexes_) {
    xquery::plan::IndexStats stats;
    stats.name = name;
    stats.kind = xquery::plan::IndexKind::kValue;
    stats.path = index.path;
    stats.entries = index.tree->entry_count();
    stats.height = index.tree->height();
    stats.single_valued = index.single_valued;
    // Distinct-key count via one in-order sweep. Charged to the virtual
    // clock like any other tree traversal, as part of the mutation/DDL
    // that triggered the refresh — statistics maintenance is bookkeeping
    // the modeled DBMS also pays on its write path.
    uint64_t distinct = 0;
    std::optional<relational::Key> prev;
    index.tree->Range(nullptr, nullptr,
                      [&](const relational::Key& key,
                          storage::RecordId) {
                        if (!prev.has_value() || !(*prev == key)) {
                          ++distinct;
                          prev = key;
                        }
                        return true;
                      });
    stats.distinct_keys = distinct;
    catalog.indexes.push_back(std::move(stats));
  }
  if (text_index_ != nullptr) {
    xquery::plan::IndexStats stats;
    stats.name = text_index_name_;
    stats.kind = xquery::plan::IndexKind::kText;
    stats.entries = text_index_->entries();
    stats.distinct_keys = text_index_->distinct_words();
    catalog.indexes.push_back(std::move(stats));
  }
  if (!path_index_name_.empty()) {
    xquery::plan::IndexStats stats;
    stats.name = path_index_name_;
    stats.kind = xquery::plan::IndexKind::kPath;
    stats.entries = path_index_.entries();
    stats.distinct_keys = path_index_.distinct_paths();
    catalog.indexes.push_back(std::move(stats));
  }
  MutexLock lock(index_mu_);
  catalog.epoch = catalog_.epoch + 1;
  catalog_ = std::move(catalog);
}

xquery::plan::IndexCatalog NativeEngine::IndexCatalogSnapshot() const {
  MutexLock lock(index_mu_);
  return catalog_;
}

void NativeEngine::ColdRestartLocked() {
  XmlDbms::ColdRestartLocked();
  MutexLock cache_lock(cache_mu_);
  cache_.clear();
}

Result<const xml::Document*> NativeEngine::Materialize(size_t ordinal) {
  {
    MutexLock cache_lock(cache_mu_);
    auto it = cache_.find(ordinal);
    if (it != cache_.end()) {
      return const_cast<const xml::Document*>(it->second.doc.get());
    }
  }
  obs::ScopedSpan span("native.materialize");
  static obs::Counter& materialized = obs::MetricsRegistry::Default().GetCounter(
      "xbench.native.docs_materialized");
  materialized.Increment();
  const DocEntry& entry = registry_[ordinal];
  const std::string text = file_->Read(entry.record);
  auto parsed = xml::Parse(text, entry.name);
  if (!parsed.ok()) return parsed.status();
  auto doc = std::make_unique<xml::Document>(std::move(parsed).value());
  // Racing materializations of the same ordinal both reach here; the
  // first insert wins and the loser's parse is discarded. Entries are
  // never replaced while readers hold the collection lock shared, so the
  // returned pointer stays valid for the statement.
  MutexLock cache_lock(cache_mu_);
  auto [it, inserted] = cache_.try_emplace(ordinal);
  if (inserted) it->second.doc = std::move(doc);
  return const_cast<const xml::Document*>(it->second.doc.get());
}

const xml::Node* NativeEngine::NodeByRid(uint64_t rid) {
  const size_t ordinal = RidOrdinal(rid);
  const uint32_t order = RidOrder(rid);
  if (ordinal >= registry_.size() || registry_[ordinal].deleted) {
    return nullptr;
  }
  auto doc_or = Materialize(ordinal);
  if (!doc_or.ok()) return nullptr;
  const xml::Document* doc = doc_or.value();
  MutexLock cache_lock(cache_mu_);
  auto it = cache_.find(ordinal);
  if (it == cache_.end()) return nullptr;
  CachedDoc& entry = it->second;
  if (entry.by_order.empty()) {
    // Pre-order ids are dense from 1, so a flat table resolves postings
    // in O(1); built once per materialization, shared by every probe.
    entry.by_order.assign(doc->NodeCount() + 1, nullptr);
    doc->root()->Visit([&](const xml::Node& node) {
      if (node.order() < entry.by_order.size()) {
        entry.by_order[node.order()] = &node;
      }
    });
  }
  return order < entry.by_order.size() ? entry.by_order[order] : nullptr;
}

std::optional<std::vector<const xml::Node*>> NativeEngine::ProbeValueEquals(
    const std::string& index, const std::string& key) {
  auto it = value_indexes_.find(index);
  if (it == value_indexes_.end()) return std::nullopt;
  std::vector<const xml::Node*> nodes;
  for (storage::RecordId rid :
       it->second.tree->Lookup({relational::Value::String(key)})) {
    if (RidOrdinal(rid) < registry_.size() &&
        registry_[RidOrdinal(rid)].deleted) {
      continue;
    }
    const xml::Node* node = NodeByRid(rid);
    if (node == nullptr) return std::nullopt;
    nodes.push_back(node);
  }
  return nodes;
}

std::optional<std::vector<const xml::Node*>> NativeEngine::ProbeValueRange(
    const std::string& index, const std::string& lo, const std::string& hi) {
  auto it = value_indexes_.find(index);
  if (it == value_indexes_.end()) return std::nullopt;
  // Range decomposition is only sound over single-valued paths; the
  // planner checks the same statistic, so this triggers only for plans
  // executed across a mutation that flipped it (defense in depth).
  if (!it->second.single_valued) return std::nullopt;
  std::vector<storage::RecordId> rids;
  const relational::Key key_lo{relational::Value::String(lo)};
  const relational::Key key_hi{relational::Value::String(hi)};
  it->second.tree->Range(&key_lo, &key_hi,
                         [&](const relational::Key&,
                             storage::RecordId rid) {
                           rids.push_back(rid);
                           return true;
                         });
  std::vector<const xml::Node*> nodes;
  for (storage::RecordId rid : rids) {
    if (RidOrdinal(rid) < registry_.size() &&
        registry_[RidOrdinal(rid)].deleted) {
      continue;
    }
    const xml::Node* node = NodeByRid(rid);
    if (node == nullptr) return std::nullopt;
    nodes.push_back(node);
  }
  return nodes;
}

std::optional<std::vector<const xml::Node*>> NativeEngine::ProbeTextWord(
    const std::string& word) {
  if (text_index_ == nullptr) return std::nullopt;
  std::vector<const xml::Node*> nodes;
  for (uint64_t rid : text_index_->Lookup(word)) {
    if (RidOrdinal(rid) < registry_.size() &&
        registry_[RidOrdinal(rid)].deleted) {
      continue;
    }
    const xml::Node* node = NodeByRid(rid);
    if (node == nullptr) return std::nullopt;
    nodes.push_back(node);
  }
  return nodes;
}

std::optional<std::vector<size_t>> NativeEngine::PrefilterOrdinals(
    const xquery::plan::IndexProbe& probe) {
  std::vector<uint64_t> rids;
  switch (probe.kind) {
    case xquery::plan::ProbeKind::kValueEquals: {
      auto it = value_indexes_.find(probe.index);
      if (it == value_indexes_.end()) return std::nullopt;
      for (storage::RecordId rid :
           it->second.tree->Lookup({relational::Value::String(probe.key)})) {
        rids.push_back(rid);
      }
      break;
    }
    case xquery::plan::ProbeKind::kValueRange: {
      auto it = value_indexes_.find(probe.index);
      if (it == value_indexes_.end() || !it->second.single_valued) {
        return std::nullopt;
      }
      const relational::Key key_lo{
          relational::Value::String(probe.lo)};
      const relational::Key key_hi{
          relational::Value::String(probe.hi)};
      it->second.tree->Range(&key_lo, &key_hi,
                             [&](const relational::Key&,
                                 storage::RecordId rid) {
                               rids.push_back(rid);
                               return true;
                             });
      break;
    }
    case xquery::plan::ProbeKind::kTextWord: {
      if (text_index_ == nullptr || text_index_name_ != probe.index) {
        return std::nullopt;
      }
      rids = text_index_->Lookup(probe.word);
      break;
    }
  }
  std::set<size_t> ordinals;
  for (uint64_t rid : rids) {
    const size_t ordinal = RidOrdinal(rid);
    if (ordinal < registry_.size() && !registry_[ordinal].deleted) {
      ordinals.insert(ordinal);
    }
  }
  return std::vector<size_t>(ordinals.begin(), ordinals.end());
}

Result<xquery::QueryResult> NativeEngine::RunOver(
    const std::vector<size_t>& ordinals, const xquery::Expr& query) {
  xquery::Sequence input;
  input.reserve(ordinals.size());
  for (size_t ordinal : ordinals) {
    XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc, Materialize(ordinal));
    input.push_back(xquery::Item::Node(doc->root()));
  }
  xquery::Bindings bindings;
  bindings["input"] = std::move(input);
  xquery::EvalOptions options;
  options.use_step_expansions = guided_eval_enabled();
  return xquery::Evaluate(query, bindings, options);
}

Result<xquery::QueryResult> NativeEngine::Query(std::string_view xquery) {
  auto parsed = xquery::ParseQuery(xquery);
  if (!parsed.ok()) return parsed.status();
  return Query(**parsed);
}

std::vector<size_t> NativeEngine::LiveOrdinals() const {
  std::vector<size_t> all;
  all.reserve(registry_.size());
  for (size_t i = 0; i < registry_.size(); ++i) {
    if (!registry_[i].deleted) all.push_back(i);
  }
  return all;
}

Result<xquery::QueryResult> NativeEngine::Query(const xquery::Expr& query) {
  ReaderLock lock(collection_mu_);
  return QueryImpl(query);
}

Result<xquery::QueryResult> NativeEngine::QueryImpl(
    const xquery::Expr& query) {
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.query");
  return RunOver(LiveOrdinals(), query);
}

Result<xquery::QueryResult> NativeEngine::RunPlanOver(
    const std::vector<size_t>& ordinals,
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  if (compiled.guided && !guided_eval_enabled()) {
    return Status::InvalidArgument(
        "guided plan on an unvalidated collection: the plan was compiled "
        "for a collection that passed the guided-eval gate");
  }
  xquery::Sequence input;
  input.reserve(ordinals.size());
  for (size_t ordinal : ordinals) {
    XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc, Materialize(ordinal));
    input.push_back(xquery::Item::Node(doc->root()));
  }
  xquery::Bindings bindings;
  bindings["input"] = std::move(input);
  xquery::EvalOptions options;
  options.use_step_expansions = guided_eval_enabled();
  PlanIndexProvider indexes(*this);
  return xquery::exec::Execute(compiled.physical, bindings, options,
                               stats != nullptr ? stats : &last_plan_stats_,
                               &indexes);
}

Result<xquery::QueryResult> NativeEngine::ExecutePlan(
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  ReaderLock lock(collection_mu_);
  return ExecutePlanImpl(compiled, stats);
}

Result<xquery::QueryResult> NativeEngine::ExecutePlanImpl(
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.exec_plan");
  // When the plan's only $input consumer is an index probe, documents
  // without postings cannot contribute — bind only the candidate set so
  // they are never materialized (the document-level index benefit the
  // paper measures on X-Hive).
  if (compiled.prefilter_probe != nullptr &&
      compiled.prefilter_probe->probe.has_value()) {
    std::optional<std::vector<size_t>> candidates =
        PrefilterOrdinals(*compiled.prefilter_probe->probe);
    if (candidates.has_value()) {
      return RunPlanOver(*candidates, compiled, stats);
    }
  }
  return RunPlanOver(LiveOrdinals(), compiled, stats);
}

Result<xquery::QueryResult> NativeEngine::ExecutePlanWithIndex(
    const std::string& index_name, const std::string& value,
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  ReaderLock lock(collection_mu_);
  return ExecutePlanWithIndexImpl(index_name, value, compiled, stats);
}

Result<xquery::QueryResult> NativeEngine::ExecutePlanWithIndexImpl(
    const std::string& index_name, const std::string& value,
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  auto it = value_indexes_.find(index_name);
  if (it == value_indexes_.end()) return ExecutePlanImpl(compiled, stats);
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.exec_plan_with_index");
  std::set<size_t> ordinals;
  for (storage::RecordId rid :
       it->second.tree->Lookup({relational::Value::String(value)})) {
    const size_t ordinal = RidOrdinal(rid);
    if (!registry_[ordinal].deleted) ordinals.insert(ordinal);
  }
  return RunPlanOver({ordinals.begin(), ordinals.end()}, compiled, stats);
}

Result<xquery::QueryResult> NativeEngine::QueryWithIndex(
    const std::string& index_name, const std::string& value,
    std::string_view xquery) {
  auto parsed = xquery::ParseQuery(xquery);
  if (!parsed.ok()) return parsed.status();
  return QueryWithIndex(index_name, value, **parsed);
}

Result<xquery::QueryResult> NativeEngine::QueryWithIndex(
    const std::string& index_name, const std::string& value,
    const xquery::Expr& query) {
  ReaderLock lock(collection_mu_);
  return QueryWithIndexImpl(index_name, value, query);
}

Result<xquery::QueryResult> NativeEngine::QueryWithIndexImpl(
    const std::string& index_name, const std::string& value,
    const xquery::Expr& query) {
  auto it = value_indexes_.find(index_name);
  if (it == value_indexes_.end()) return QueryImpl(query);
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.query_with_index");
  std::set<size_t> ordinals;
  for (storage::RecordId rid :
       it->second.tree->Lookup({relational::Value::String(value)})) {
    const size_t ordinal = RidOrdinal(rid);
    if (!registry_[ordinal].deleted) ordinals.insert(ordinal);
  }
  return RunOver({ordinals.begin(), ordinals.end()}, query);
}

}  // namespace xbench::engines
