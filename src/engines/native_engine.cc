#include "engines/native_engine.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/parser.h"
#include "xquery/parser.h"

namespace xbench::engines {

std::vector<std::string> ExtractIndexValues(const xml::Node& root,
                                            const std::string& path) {
  std::vector<std::string> values;
  std::vector<std::string> parts = Split(path, '/');
  std::string element = parts[0];
  std::string attribute;
  if (parts.size() == 2 && !parts[1].empty() && parts[1][0] == '@') {
    attribute = parts[1].substr(1);
  }
  root.Visit([&](const xml::Node& node) {
    if (!node.is_element() || node.name() != element) return;
    if (attribute.empty()) {
      values.push_back(node.TextContent());
    } else if (const std::string* v = node.FindAttribute(attribute)) {
      values.push_back(*v);
    }
  });
  return values;
}

NativeEngine::NativeEngine() {
  file_ = std::make_unique<storage::HeapFile>(*disk_, *pool_);
}

Status NativeEngine::BulkLoad(datagen::DbClass db_class,
                              const std::vector<LoadDocument>& docs) {
  WriterLock lock(collection_mu_);
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan load_span("native.bulkload");
  obs::Counter& docs_loaded =
      obs::MetricsRegistry::Default().GetCounter("xbench.engine.docs_loaded");
  db_class_ = db_class;
  // The collection is changing; any earlier conformance proof no longer
  // covers it. workload::BulkLoad re-enables after re-validating. Compiled
  // plans froze access paths under the old gate state, so they go too.
  set_guided_eval_enabled(false);
  plan_cache_.Invalidate();
  for (const LoadDocument& doc : docs) {
    obs::ScopedSpan doc_span("load.doc");
    {
      // X-Hive parses into its persistent DOM on load; we verify
      // well-formedness (the parse) and persist the canonical serialized
      // form, re-materializing trees on demand.
      obs::ScopedSpan parse_span("parse");
      XBENCH_RETURN_IF_ERROR(xml::CheckWellFormed(doc.text));
    }
    {
      obs::ScopedSpan store_span("store");
      const storage::RecordId rid = file_->Append(doc.text);
      registry_.push_back({doc.name, rid, /*deleted=*/false});
    }
    {
      obs::ScopedSpan commit_span("commit");
      disk_->clock().AdvanceMicros(kPerDocumentIngestMicros);
    }
    live_count_.fetch_add(1, std::memory_order_relaxed);
    docs_loaded.Increment();
  }
  {
    obs::ScopedSpan flush_span("flush");
    pool_->FlushAll();
  }
  return Status::Ok();
}

Status NativeEngine::InsertDocument(const LoadDocument& doc) {
  WriterLock lock(collection_mu_);
  // The inserted document was not part of the validated bulk load, so the
  // collection may no longer conform to the schema the analyzer resolved
  // expansions from; fall back to (always-correct) full subtree scans and
  // drop plans compiled for the guided collection.
  set_guided_eval_enabled(false);
  plan_cache_.Invalidate();
  disk_->clock().AdvanceMicros(kPerDocumentIngestMicros);
  auto parsed = xml::Parse(doc.text, doc.name);
  if (!parsed.ok()) return parsed.status();
  const storage::RecordId rid = file_->Append(doc.text);
  const size_t ordinal = registry_.size();
  registry_.push_back({doc.name, rid, /*deleted=*/false});
  live_count_.fetch_add(1, std::memory_order_relaxed);
  // Maintain every value index.
  for (auto& [index_name, tree] : indexes_) {
    for (std::string& value :
         ExtractIndexValues(*parsed->root(), index_paths_[index_name])) {
      tree->Insert({relational::Value::String(std::move(value))}, ordinal);
    }
  }
  return Status::Ok();
}

Status NativeEngine::DeleteDocument(const std::string& name) {
  WriterLock lock(collection_mu_);
  for (size_t ordinal = 0; ordinal < registry_.size(); ++ordinal) {
    DocEntry& entry = registry_[ordinal];
    if (entry.deleted || entry.name != name) continue;
    // Erase index entries before dropping the document.
    if (!indexes_.empty()) {
      XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc, Materialize(ordinal));
      for (auto& [index_name, tree] : indexes_) {
        for (const std::string& value :
             ExtractIndexValues(*doc->root(), index_paths_[index_name])) {
          tree->Erase({relational::Value::String(value)}, ordinal);
        }
      }
    }
    entry.deleted = true;
    live_count_.fetch_sub(1, std::memory_order_relaxed);
    {
      MutexLock cache_lock(cache_mu_);
      cache_.erase(ordinal);
    }
    plan_cache_.Invalidate();
    return Status::Ok();
  }
  return Status::NotFound("document '" + name + "'");
}

Status NativeEngine::CreateIndex(const IndexSpec& spec) {
  WriterLock lock(collection_mu_);
  if (indexes_.count(spec.name) != 0) {
    return Status::AlreadyExists("index '" + spec.name + "'");
  }
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.index_build");
  auto tree = std::make_unique<relational::BTreeIndex>(disk_->clock());
  for (size_t ordinal = 0; ordinal < registry_.size(); ++ordinal) {
    if (registry_[ordinal].deleted) continue;
    XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc, Materialize(ordinal));
    for (std::string& value : ExtractIndexValues(*doc->root(), spec.path)) {
      tree->Insert({relational::Value::String(std::move(value))}, ordinal);
    }
  }
  indexes_[spec.name] = std::move(tree);
  index_paths_[spec.name] = spec.path;
  // Index building materialized every document; drop that warmth. The
  // collection lock is already held exclusively, so call the locked body
  // directly (ColdRestart() would self-deadlock).
  ColdRestartLocked();
  return Status::Ok();
}

void NativeEngine::ColdRestartLocked() {
  XmlDbms::ColdRestartLocked();
  MutexLock cache_lock(cache_mu_);
  cache_.clear();
}

Result<const xml::Document*> NativeEngine::Materialize(size_t ordinal) {
  {
    MutexLock cache_lock(cache_mu_);
    auto it = cache_.find(ordinal);
    if (it != cache_.end()) {
      return const_cast<const xml::Document*>(it->second.get());
    }
  }
  obs::ScopedSpan span("native.materialize");
  static obs::Counter& materialized = obs::MetricsRegistry::Default().GetCounter(
      "xbench.native.docs_materialized");
  materialized.Increment();
  const DocEntry& entry = registry_[ordinal];
  const std::string text = file_->Read(entry.record);
  auto parsed = xml::Parse(text, entry.name);
  if (!parsed.ok()) return parsed.status();
  auto doc = std::make_unique<xml::Document>(std::move(parsed).value());
  // Racing materializations of the same ordinal both reach here; the
  // first insert wins and the loser's parse is discarded. Entries are
  // never replaced while readers hold the collection lock shared, so the
  // returned pointer stays valid for the statement.
  MutexLock cache_lock(cache_mu_);
  auto [it, inserted] = cache_.emplace(ordinal, std::move(doc));
  return const_cast<const xml::Document*>(it->second.get());
}

Result<xquery::QueryResult> NativeEngine::RunOver(
    const std::vector<size_t>& ordinals, const xquery::Expr& query) {
  xquery::Sequence input;
  input.reserve(ordinals.size());
  for (size_t ordinal : ordinals) {
    XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc, Materialize(ordinal));
    input.push_back(xquery::Item::Node(doc->root()));
  }
  xquery::Bindings bindings;
  bindings["input"] = std::move(input);
  xquery::EvalOptions options;
  options.use_step_expansions = guided_eval_enabled();
  return xquery::Evaluate(query, bindings, options);
}

Result<xquery::QueryResult> NativeEngine::Query(std::string_view xquery) {
  auto parsed = xquery::ParseQuery(xquery);
  if (!parsed.ok()) return parsed.status();
  return Query(**parsed);
}

std::vector<size_t> NativeEngine::LiveOrdinals() const {
  std::vector<size_t> all;
  all.reserve(registry_.size());
  for (size_t i = 0; i < registry_.size(); ++i) {
    if (!registry_[i].deleted) all.push_back(i);
  }
  return all;
}

Result<xquery::QueryResult> NativeEngine::Query(const xquery::Expr& query) {
  ReaderLock lock(collection_mu_);
  return QueryImpl(query);
}

Result<xquery::QueryResult> NativeEngine::QueryImpl(
    const xquery::Expr& query) {
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.query");
  return RunOver(LiveOrdinals(), query);
}

Result<xquery::QueryResult> NativeEngine::RunPlanOver(
    const std::vector<size_t>& ordinals,
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  if (compiled.guided && !guided_eval_enabled()) {
    return Status::InvalidArgument(
        "guided plan on an unvalidated collection: the plan was compiled "
        "for a collection that passed the guided-eval gate");
  }
  xquery::Sequence input;
  input.reserve(ordinals.size());
  for (size_t ordinal : ordinals) {
    XBENCH_ASSIGN_OR_RETURN(const xml::Document* doc, Materialize(ordinal));
    input.push_back(xquery::Item::Node(doc->root()));
  }
  xquery::Bindings bindings;
  bindings["input"] = std::move(input);
  xquery::EvalOptions options;
  options.use_step_expansions = guided_eval_enabled();
  return xquery::exec::Execute(compiled.physical, bindings, options,
                               stats != nullptr ? stats : &last_plan_stats_);
}

Result<xquery::QueryResult> NativeEngine::ExecutePlan(
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  ReaderLock lock(collection_mu_);
  return ExecutePlanImpl(compiled, stats);
}

Result<xquery::QueryResult> NativeEngine::ExecutePlanImpl(
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.exec_plan");
  return RunPlanOver(LiveOrdinals(), compiled, stats);
}

Result<xquery::QueryResult> NativeEngine::ExecutePlanWithIndex(
    const std::string& index_name, const std::string& value,
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  ReaderLock lock(collection_mu_);
  return ExecutePlanWithIndexImpl(index_name, value, compiled, stats);
}

Result<xquery::QueryResult> NativeEngine::ExecutePlanWithIndexImpl(
    const std::string& index_name, const std::string& value,
    const xquery::plan::CompiledQuery& compiled,
    xquery::exec::ExecStats* stats) {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) return ExecutePlanImpl(compiled, stats);
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.exec_plan_with_index");
  std::set<size_t> ordinals;
  for (storage::RecordId rid :
       it->second->Lookup({relational::Value::String(value)})) {
    const auto ordinal = static_cast<size_t>(rid);
    if (!registry_[ordinal].deleted) ordinals.insert(ordinal);
  }
  return RunPlanOver({ordinals.begin(), ordinals.end()}, compiled, stats);
}

Result<xquery::QueryResult> NativeEngine::QueryWithIndex(
    const std::string& index_name, const std::string& value,
    std::string_view xquery) {
  auto parsed = xquery::ParseQuery(xquery);
  if (!parsed.ok()) return parsed.status();
  return QueryWithIndex(index_name, value, **parsed);
}

Result<xquery::QueryResult> NativeEngine::QueryWithIndex(
    const std::string& index_name, const std::string& value,
    const xquery::Expr& query) {
  ReaderLock lock(collection_mu_);
  return QueryWithIndexImpl(index_name, value, query);
}

Result<xquery::QueryResult> NativeEngine::QueryWithIndexImpl(
    const std::string& index_name, const std::string& value,
    const xquery::Expr& query) {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) return QueryImpl(query);
  obs::ScopedClockSource clock_scope(disk_->clock());
  obs::ScopedSpan span("native.query_with_index");
  std::set<size_t> ordinals;
  for (storage::RecordId rid :
       it->second->Lookup({relational::Value::String(value)})) {
    const auto ordinal = static_cast<size_t>(rid);
    if (!registry_[ordinal].deleted) ordinals.insert(ordinal);
  }
  return RunOver({ordinals.begin(), ordinals.end()}, query);
}

}  // namespace xbench::engines
