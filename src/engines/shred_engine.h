#ifndef XBENCH_ENGINES_SHRED_ENGINE_H_
#define XBENCH_ENGINES_SHRED_ENGINE_H_

#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "engines/dad.h"
#include "engines/dbms.h"
#include "relational/table.h"

namespace xbench::engines {

/// Shredding relational engine with two flavors:
///
/// * DB2 "Xcollection": keeps no document order, maps mixed content by
///   concatenating text, and inherits XML Extender's 1024-row
///   decomposition limit — single huge documents must be pre-split into
///   fragments, which is only practical for the small scale (the paper's
///   §3.1.3 problem 5; the "-" cells for TC/SD / DC/SD normal+large).
/// * SQL Server + SQLXML: no row limit, but mixed-content elements load
///   as NULL (problem 3) and the bulk-load path pays a higher per-row
///   overhead (the consistently slower Table 4 column).
///
/// Both flavors auto-create primary/foreign-key indexes (row_id,
/// parent_row) at load time, as the paper notes relational systems do.
///
/// Thread safety: mutations take the collection lock exclusively inside
/// the engine. The query path is the free function RunShredQuery, which
/// only reads tables()/dad(); concurrent callers (workload::Session) hold
/// the collection lock shared around each statement.
class ShredEngine : public XmlDbms {
 public:
  explicit ShredEngine(EngineKind kind);

  EngineKind kind() const override { return kind_; }

  Status BulkLoad(datagen::DbClass db_class,
                  const std::vector<LoadDocument>& docs) override;

  Status CreateIndex(const IndexSpec& spec) override;

  /// Shreds one more document into the tables (indexes maintained).
  Status InsertDocument(const LoadDocument& doc) override;

  /// Deletes every row shredded from `name` — a scan per DAD table, the
  /// cost relational mappings pay for document-level deletion.
  Status DeleteDocument(const std::string& name) override;

  /// Caller holds the collection lock (shared suffices for reads).
  relational::Database& tables() XBENCH_REQUIRES_SHARED(collection_mu_) {
    return *database_;
  }
  const Dad& dad() const XBENCH_REQUIRES_SHARED(collection_mu_) {
    return dad_;
  }
  datagen::DbClass db_class() const XBENCH_REQUIRES_SHARED(collection_mu_) {
    return db_class_;
  }

  /// The flavor's document-order guarantee (false for both: the paper's
  /// problem 2 — plans relying on order are "not guaranteed correct").
  bool maintains_order() const { return false; }

 private:
  EngineKind kind_;
  std::unique_ptr<relational::Database> database_
      XBENCH_PT_GUARDED_BY(collection_mu_);
  Dad dad_ XBENCH_GUARDED_BY(collection_mu_);
  datagen::DbClass db_class_ XBENCH_GUARDED_BY(collection_mu_) =
      datagen::DbClass::kDcSd;
  int64_t next_row_id_ XBENCH_GUARDED_BY(collection_mu_) = 0;
};

/// DB2's per-document decomposition row cap and the largest number of
/// pre-split fragments the paper's methodology tolerated.
inline constexpr int64_t kDb2RowLimit = 1024;
inline constexpr int64_t kDb2MaxFragments = 2;

/// Extra virtual I/O charged per shredded row by the SQLXML bulk-load
/// path (middleware overhead).
inline constexpr uint64_t kMsSqlRowOverheadMicros = 25;

}  // namespace xbench::engines

#endif  // XBENCH_ENGINES_SHRED_ENGINE_H_
