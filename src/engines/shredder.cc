#include "engines/shredder.h"

#include <cmath>

#include "common/strings.h"

namespace xbench::engines {

using relational::Row;
using relational::Schema;
using relational::Value;
using relational::ValueType;

Status CreateDadTables(const Dad& dad, relational::Database& db) {
  for (const TableMap& map : dad.tables) {
    std::vector<relational::Column> columns = {
        {"doc", ValueType::kString},          {"row_id", ValueType::kInt},
        {"parent_table", ValueType::kString}, {"parent_row", ValueType::kInt},
        {"seq", ValueType::kInt},
    };
    for (const ColumnMap& col : map.columns) {
      columns.push_back({col.column, col.type});
    }
    auto table = db.CreateTable(map.table, Schema(std::move(columns)));
    if (!table.ok()) return table.status();
  }
  return Status::Ok();
}

std::pair<bool, std::string> ExtractRelPath(const xml::Node& element,
                                            const std::string& rel_path) {
  if (rel_path == ".") return {true, element.TextContent()};
  const xml::Node* current = &element;
  std::vector<std::string> segments = Split(rel_path, '/');
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string& seg = segments[i];
    if (!seg.empty() && seg[0] == '@') {
      const std::string* attr = current->FindAttribute(seg.substr(1));
      if (attr == nullptr) return {false, ""};
      return {true, *attr};
    }
    const xml::Node* child = current->FirstChild(seg);
    if (child == nullptr) return {false, ""};
    current = child;
  }
  return {true, current->TextContent()};
}

namespace {

Value TypedValue(const std::string& text, ValueType type) {
  switch (type) {
    case ValueType::kInt: {
      const int64_t v = ParseInt(text);
      if (v < 0) return Value::Null();
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      const double v = ParseDouble(text);
      if (std::isnan(v)) return Value::Null();
      return Value::Double(v);
    }
    default:
      return Value::String(text);
  }
}

struct ShredContext {
  const Dad& dad;
  const ShredOptions& options;
  relational::Database& db;
  const std::string& doc_name;
  int64_t& next_row_id;
  std::map<std::string, int64_t>* rows_per_table;
};

const TableMap* FindMap(const Dad& dad, const std::string& element) {
  for (const TableMap& map : dad.tables) {
    if (map.element == element) return &map;
  }
  return nullptr;
}

/// True when the element has both text and element children.
bool HasMixedContent(const xml::Node& element) {
  bool has_text = false;
  bool has_elem = false;
  for (const auto& child : element.children()) {
    if (child->is_text() && !Trim(child->text()).empty()) has_text = true;
    if (child->is_element()) has_elem = true;
  }
  return has_text && has_elem;
}

Status Walk(const xml::Node& node, const std::string& parent_table,
            int64_t parent_row, std::map<std::string, int64_t>& seq_counters,
            ShredContext& ctx) {
  if (!node.is_element()) return Status::Ok();
  const TableMap* map = FindMap(ctx.dad, node.name());
  std::string next_parent_table = parent_table;
  int64_t next_parent_row = parent_row;
  std::map<std::string, int64_t> child_counters;
  std::map<std::string, int64_t>* counters = &seq_counters;

  if (map != nullptr) {
    const int64_t row_id = ++ctx.next_row_id;
    const int64_t seq = ++seq_counters[map->table];
    Row row;
    row.reserve(static_cast<size_t>(kColFirstMapped) + map->columns.size());
    row.push_back(Value::String(ctx.doc_name));
    row.push_back(Value::Int(row_id));
    row.push_back(parent_table.empty() ? Value::Null()
                                       : Value::String(parent_table));
    row.push_back(parent_row < 0 ? Value::Null() : Value::Int(parent_row));
    row.push_back(ctx.options.keep_seq ? Value::Int(seq) : Value::Null());
    for (const ColumnMap& col : map->columns) {
      if (col.mixed_content && ctx.options.drop_mixed_content) {
        row.push_back(Value::Null());
        continue;
      }
      // Also detect mixedness dynamically for "." columns.
      if (ctx.options.drop_mixed_content && col.rel_path == "." &&
          HasMixedContent(node)) {
        row.push_back(Value::Null());
        continue;
      }
      auto [found, text] = ExtractRelPath(node, col.rel_path);
      row.push_back(found ? TypedValue(text, col.type) : Value::Null());
    }
    relational::Table* table = ctx.db.FindTable(map->table);
    if (table == nullptr) {
      return Status::Internal("DAD table '" + map->table + "' missing");
    }
    auto rid = table->Insert(row);
    if (!rid.ok()) return rid.status();
    if (ctx.rows_per_table != nullptr) ++(*ctx.rows_per_table)[map->table];

    next_parent_table = map->table;
    next_parent_row = row_id;
    counters = &child_counters;
  }

  for (const auto& child : node.children()) {
    XBENCH_RETURN_IF_ERROR(
        Walk(*child, next_parent_table, next_parent_row, *counters, ctx));
  }
  return Status::Ok();
}

}  // namespace

Status ShredDocument(const xml::Node& root, const std::string& doc_name,
                     const Dad& dad, const ShredOptions& options,
                     relational::Database& db, int64_t& next_row_id,
                     std::map<std::string, int64_t>* rows_per_table) {
  ShredContext ctx{dad, options, db, doc_name, next_row_id, rows_per_table};
  std::map<std::string, int64_t> counters;
  return Walk(root, /*parent_table=*/"", /*parent_row=*/-1, counters, ctx);
}

}  // namespace xbench::engines
