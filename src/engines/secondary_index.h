#ifndef XBENCH_ENGINES_SECONDARY_INDEX_H_
#define XBENCH_ENGINES_SECONDARY_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "xml/node.h"

namespace xbench::engines {

/// Node-granular posting: which document (registry ordinal) and which
/// node inside it (pre-order number from Document::AssignOrder). Packed
/// into the storage::RecordId space as (ordinal << 32) | order so the
/// B+-tree value indexes can carry the same coordinates.
inline uint64_t PackNodeRid(size_t ordinal, uint32_t order) {
  return (static_cast<uint64_t>(ordinal) << 32) | order;
}
inline size_t RidOrdinal(uint64_t rid) { return static_cast<size_t>(rid >> 32); }
inline uint32_t RidOrder(uint64_t rid) {
  return static_cast<uint32_t>(rid & 0xffffffffu);
}

/// Structural index: qualified element path ("catalog/item/name") ->
/// postings, plus the per-collection statistics the cost model reads
/// (document count, element counts by tag, root tags). The native engine
/// maintains one unconditionally — it doubles as the statistics store —
/// and registers it in ListIndexes only when DDL names it.
///
/// Thread safety: none; the owner serializes access (the native engine
/// mutates it under the exclusive collection lock and reads it while
/// refreshing the planner catalog mirror).
class PathIndex {
 public:
  struct Posting {
    size_t ordinal = 0;
    uint32_t order = 0;
    /// Nodes in the posted element's subtree (element + descendants of
    /// all kinds) — lets structural probes pre-size result buffers.
    uint32_t subtree = 0;
  };

  /// Indexes every element of `root` under its qualified path. `root`
  /// must already have pre-order numbers assigned.
  void AddDocument(size_t ordinal, const xml::Node& root);

  /// Removes every posting of `ordinal`; `root` re-walks the same tree to
  /// decrement the per-tag statistics.
  void RemoveDocument(size_t ordinal, const xml::Node& root);

  /// Postings for one qualified path, document order within each
  /// document; nullptr when no element has that path.
  const std::vector<Posting>* Lookup(const std::string& path) const;

  uint64_t documents() const { return documents_; }
  uint64_t total_elements() const { return total_elements_; }
  uint64_t distinct_paths() const { return postings_.size(); }
  uint64_t entries() const { return total_elements_; }
  const std::map<std::string, uint64_t>& elements_by_name() const {
    return element_counts_;
  }
  /// Distinct root-element tags currently loaded.
  std::vector<std::string> root_names() const;

 private:
  std::map<std::string, std::vector<Posting>> postings_;
  std::map<std::string, uint64_t> element_counts_;
  std::map<std::string, uint64_t> root_counts_;
  uint64_t documents_ = 0;
  uint64_t total_elements_ = 0;
};

/// Inverted text index over element text, serving contains-word() probes.
///
/// Posting rule: an element E posts a word w iff w is a *direct* token of
/// E — w tokenizes out of TextContent(E) but out of no single element
/// child's TextContent. Tokens are maximal [A-Za-z0-9_] runs,
/// case-sensitive, matching common/strings.h ContainsWord boundaries.
/// The set-difference makes postings sparse while keeping lookups a
/// superset: any element whose TextContent word-contains w has a
/// descendant-or-self posting w (tokens that merge across child
/// boundaries, e.g. "foo"+"word" -> "fooword", post at the merge point).
/// Probe consumers re-check the original predicate on each candidate, so
/// the superset is harmless.
///
/// Thread safety: none; owner serializes (see PathIndex).
class TextIndex {
 public:
  /// When non-null, Lookup charges the clock like a B+-tree probe: one
  /// page read for the dictionary plus one per 128 postings scanned.
  explicit TextIndex(VirtualClock* clock = nullptr,
                     uint64_t page_read_micros = 40)
      : clock_(clock), page_read_micros_(page_read_micros) {}

  void AddDocument(size_t ordinal, const xml::Node& root);
  void RemoveDocument(size_t ordinal);

  /// Packed node rids of elements directly posting `word`, ascending.
  std::vector<uint64_t> Lookup(const std::string& word) const;

  uint64_t entries() const { return entries_; }
  uint64_t distinct_words() const { return postings_.size(); }

 private:
  std::map<std::string, std::vector<uint64_t>> postings_;
  uint64_t entries_ = 0;
  VirtualClock* clock_;
  uint64_t page_read_micros_;
};

/// Value postings of one Table-3 style path over one document tree:
/// (value, pre-order number of the posted node's *anchor element*).
/// For "item/@id" the anchor is the `item` element carrying the
/// attribute; for a child-value path "hw" the anchor is the `hw` element
/// itself (probes map it to its parent). When `single_valued` is
/// non-null it is AND-ed with "no parent gained two postings from this
/// tree" — the precondition for decomposing range probes over the index.
std::vector<std::pair<std::string, uint32_t>> ExtractIndexPostings(
    const xml::Node& root, const std::string& path,
    bool* single_valued = nullptr);

}  // namespace xbench::engines

#endif  // XBENCH_ENGINES_SECONDARY_INDEX_H_
