#ifndef XBENCH_ENGINES_SHREDDER_H_
#define XBENCH_ENGINES_SHREDDER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "engines/dad.h"
#include "relational/table.h"
#include "xml/node.h"

namespace xbench::engines {

struct ShredOptions {
  /// Fill the seq column (dxx_seqno). DB2 Xcolumn side tables keep it;
  /// Xcollection and SQL Server do not maintain document order
  /// (paper §3.1.3 problem 2), so they leave it NULL.
  bool keep_seq = false;
  /// SQL Server cannot map mixed-content elements; their columns load as
  /// NULL (paper §3.1.3 problem 3).
  bool drop_mixed_content = false;
};

/// Creates the tables declared by `dad` (implicit columns + mapped
/// columns) in `db`.
Status CreateDadTables(const Dad& dad, relational::Database& db);

/// Column index bases within a DAD table row.
inline constexpr int kColDoc = 0;
inline constexpr int kColRowId = 1;
inline constexpr int kColParentTable = 2;
inline constexpr int kColParentRow = 3;
inline constexpr int kColSeq = 4;
inline constexpr int kColFirstMapped = 5;

/// Shreds one document into the DAD tables.
///
/// `next_row_id` is the database-wide synthetic id counter (the added-id
/// fix for chain relationships). `rows_per_table` receives the number of
/// rows this document produced in each table — DB2's 1024-row
/// decomposition limit is enforced by the caller against these counts.
Status ShredDocument(const xml::Node& root, const std::string& doc_name,
                     const Dad& dad, const ShredOptions& options,
                     relational::Database& db, int64_t& next_row_id,
                     std::map<std::string, int64_t>* rows_per_table);

/// Extracts a relative-path value from an element ("." / "@a" /
/// "b/c/@d" / "b/c"). Returns (found, text).
std::pair<bool, std::string> ExtractRelPath(const xml::Node& element,
                                            const std::string& rel_path);

}  // namespace xbench::engines

#endif  // XBENCH_ENGINES_SHREDDER_H_
