#ifndef XBENCH_ENGINES_NATIVE_ENGINE_H_
#define XBENCH_ENGINES_NATIVE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "engines/dbms.h"
#include "engines/secondary_index.h"
#include "relational/btree.h"
#include "storage/heap_file.h"
#include "xml/node.h"
#include "xquery/evaluator.h"
#include "xquery/exec/exec.h"
#include "xquery/plan/cache.h"
#include "xquery/plan/catalog.h"

namespace xbench::engines {

/// Native XML store modelling X-Hive/DB: documents are stored intact (one
/// heap record per document), queries are XQuery evaluated over the
/// materialized trees, and secondary indexes map values, paths and word
/// tokens to node-granular postings.
///
/// Cost model: answering a query materializes candidate documents from the
/// page store (virtual I/O proportional to document bytes, like X-Hive's
/// persistent-DOM page reads) and walks the tree (real CPU). A secondary
/// index narrows both the candidate document set and the in-document node
/// set, but each touched document must still be materialized — the
/// behaviour behind the paper's X-Hive numbers (fast on TC/MD, collapsing
/// on DC/MD-large whole-collection scans).
///
/// Index structures (DESIGN.md §13):
///  - a structural PathIndex is maintained unconditionally; it doubles as
///    the statistics store feeding the planner catalog mirror,
///  - kValue DDL builds a B+-tree over one Table-3 path with
///    (ordinal, pre-order) postings,
///  - kText DDL builds one inverted word index over element text.
/// All three live under the collection lock like the registry; the
/// planner-facing catalog mirror (statistics + epoch) has its own leaf
/// mutex so compilation can snapshot it without touching the collection
/// lock.
///
/// Thread safety: query entry points take the collection lock shared and
/// may run from any number of sessions concurrently; mutations take it
/// exclusive. The materialized-document cache has its own leaf mutex so
/// parallel readers can fault documents in without serializing whole
/// queries. Callers running concurrently must pass their own ExecStats to
/// ExecutePlan*/— the last_plan_stats() convenience slot is only
/// meaningful for single-threaded use.
class NativeEngine : public XmlDbms {
 public:
  NativeEngine();

  EngineKind kind() const override { return EngineKind::kNative; }

  Status BulkLoad(datagen::DbClass db_class,
                  const std::vector<LoadDocument>& docs) override;

  /// kValue: B+-tree over `spec.path` ("order/@id", "hw", ...) with
  /// node-granular postings. kText: inverted word index over element
  /// text. kPath: registers the always-on structural index under
  /// `spec.name` so it appears in ListIndexes and can be forced by name.
  Status CreateIndex(const IndexSpec& spec) override;

  Status DropIndex(const std::string& name) override;
  std::vector<IndexInfo> ListIndexes() const override;

  /// Inserts one document, maintaining every secondary index.
  Status InsertDocument(const LoadDocument& doc) override;

  /// Deletes a document by name. The heap record is tombstoned (space is
  /// reclaimed on the next rebuild, which this benchmark never needs) and
  /// its index entries are erased.
  Status DeleteDocument(const std::string& name) override;

  /// Evaluates `xquery` with $input bound to the roots of all documents
  /// (collection scan).
  Result<xquery::QueryResult> Query(std::string_view xquery);

  /// Pre-parsed form: evaluates an AST directly. The workload runner
  /// parses + schema-analyzes queries up front (annotating descendant
  /// steps), so the timed region covers evaluation only.
  Result<xquery::QueryResult> Query(const xquery::Expr& query);

  /// Evaluates `xquery` with $input bound to the roots of only the
  /// documents whose `index_name` entry equals `value` (index-assisted
  /// scan). Falls back to a full collection scan when the index is absent
  /// (the no-index baseline the paper also measures).
  Result<xquery::QueryResult> QueryWithIndex(const std::string& index_name,
                                             const std::string& value,
                                             std::string_view xquery);

  /// Pre-parsed form of QueryWithIndex.
  Result<xquery::QueryResult> QueryWithIndex(const std::string& index_name,
                                             const std::string& value,
                                             const xquery::Expr& query);

  /// Compiled form of Query(Expr): runs a physical plan over the whole
  /// collection, giving its probe operators runtime access to this
  /// engine's indexes. When the plan carries a document prefilter (its
  /// single $input consumer is an index probe), only documents with
  /// matching postings are materialized and bound. Guided plans are
  /// rejected while the collection has not passed the guided-eval gate
  /// (the plan cache key carries the guided flag, so a rejection here
  /// means the caller compiled for the wrong gate state). Per-operator
  /// counters land in `*stats` when given, otherwise in the shared
  /// last_plan_stats() slot (single-threaded callers only).
  Result<xquery::QueryResult> ExecutePlan(
      const xquery::plan::CompiledQuery& compiled,
      xquery::exec::ExecStats* stats = nullptr);

  /// Compiled form of QueryWithIndex (the session-level index *hint*
  /// path, distinct from planner-chosen probes).
  Result<xquery::QueryResult> ExecutePlanWithIndex(
      const std::string& index_name, const std::string& value,
      const xquery::plan::CompiledQuery& compiled,
      xquery::exec::ExecStats* stats = nullptr);

  /// Consistent copy of the planner-facing index catalog (statistics +
  /// epoch). Compilation snapshots this without the collection lock; the
  /// epoch in the snapshot keys the plan cache, so plans compiled against
  /// a superseded catalog are never served.
  xquery::plan::IndexCatalog IndexCatalogSnapshot() const;

  /// This engine's compiled-plan cache (the DBMS statement cache). Document
  /// mutations and index DDL invalidate it — the data change can flip the
  /// guided-eval gate or the access-path choice — but ColdRestart does
  /// not: compiled statements survive a buffer-pool flush.
  xquery::plan::PlanCache& plan_cache() { return plan_cache_; }

  /// Per-operator counters of the most recent ExecutePlan* call that did
  /// not supply its own ExecStats. Not meaningful under concurrency.
  const xquery::exec::ExecStats& last_plan_stats() const {
    return last_plan_stats_;
  }

  /// Live (non-deleted) documents.
  size_t document_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }
  uint64_t stored_bytes() const { return file_->size_bytes(); }

  /// Whether queries may follow analyzer-resolved `Step::expansions`
  /// (guided descendant evaluation). Off by default: the expansions are
  /// derived from the canonical class schema, and walking them is only
  /// sound over a collection validated against that schema. The workload
  /// bulk-load path enables this after
  /// analysis::ValidateDatabaseForGuidedEval passes; inserting a document
  /// turns it back off (the collection may no longer conform).
  bool guided_eval_enabled() const {
    return guided_eval_enabled_.load(std::memory_order_acquire);
  }
  void set_guided_eval_enabled(bool enabled) {
    guided_eval_enabled_.store(enabled, std::memory_order_release);
  }

 protected:
  void ColdRestartLocked() override XBENCH_REQUIRES(collection_mu_);

 private:
  class PlanIndexProvider;

  struct DocEntry {
    std::string name;
    storage::RecordId record;
    /// Tombstone: ordinals stay stable so index rids remain valid.
    bool deleted = false;
  };

  /// One DDL-created value index.
  struct ValueIndex {
    std::string path;
    std::unique_ptr<relational::BTreeIndex> tree;
    /// AND over every indexed document of "no parent posted twice";
    /// conservatively sticky across deletions. Gates range probes.
    bool single_valued = true;
  };

  /// A materialized document plus its lazily-built order -> node table
  /// (pre-order ids are dense from 1, so a flat vector resolves index
  /// postings in O(1)).
  struct CachedDoc {
    std::unique_ptr<xml::Document> doc;
    std::vector<const xml::Node*> by_order;
  };

  /// Parses document `ordinal` out of the page store (I/O + parse cost),
  /// caching it until the next cold restart. Thread-safe: racing
  /// materializations of the same ordinal both parse, first insert wins.
  Result<const xml::Document*> Materialize(size_t ordinal)
      XBENCH_REQUIRES_SHARED(collection_mu_);

  /// Resolves a packed (ordinal, pre-order) posting to its live node,
  /// materializing the document on demand. nullptr when the document is
  /// deleted or the order is out of range.
  const xml::Node* NodeByRid(uint64_t rid)
      XBENCH_REQUIRES_SHARED(collection_mu_);

  // Probe bodies behind the IndexProvider adapter. nullopt = index
  // unavailable or a posting failed to resolve; the probe operator then
  // runs its compiled fallback access path.
  std::optional<std::vector<const xml::Node*>> ProbeValueEquals(
      const std::string& index, const std::string& key)
      XBENCH_REQUIRES_SHARED(collection_mu_);
  std::optional<std::vector<const xml::Node*>> ProbeValueRange(
      const std::string& index, const std::string& lo, const std::string& hi)
      XBENCH_REQUIRES_SHARED(collection_mu_);
  std::optional<std::vector<const xml::Node*>> ProbeTextWord(
      const std::string& word) XBENCH_REQUIRES_SHARED(collection_mu_);

  /// Document ordinals with at least one posting for the plan's $input
  /// prefilter probe; nullopt when the referenced index is unavailable
  /// (the caller then scans every live document).
  std::optional<std::vector<size_t>> PrefilterOrdinals(
      const xquery::plan::IndexProbe& probe)
      XBENCH_REQUIRES_SHARED(collection_mu_);

  Result<xquery::QueryResult> RunOver(const std::vector<size_t>& ordinals,
                                      const xquery::Expr& query)
      XBENCH_REQUIRES_SHARED(collection_mu_);

  Result<xquery::QueryResult> RunPlanOver(
      const std::vector<size_t>& ordinals,
      const xquery::plan::CompiledQuery& compiled,
      xquery::exec::ExecStats* stats) XBENCH_REQUIRES_SHARED(collection_mu_);

  // Query bodies; the caller holds the collection lock shared. Public
  // entry points wrap these so fallback paths (index absent -> full scan)
  // never re-acquire the non-reentrant shared lock.
  Result<xquery::QueryResult> QueryImpl(const xquery::Expr& query)
      XBENCH_REQUIRES_SHARED(collection_mu_);
  Result<xquery::QueryResult> QueryWithIndexImpl(const std::string& index_name,
                                                 const std::string& value,
                                                 const xquery::Expr& query)
      XBENCH_REQUIRES_SHARED(collection_mu_);
  Result<xquery::QueryResult> ExecutePlanImpl(
      const xquery::plan::CompiledQuery& compiled,
      xquery::exec::ExecStats* stats) XBENCH_REQUIRES_SHARED(collection_mu_);
  Result<xquery::QueryResult> ExecutePlanWithIndexImpl(
      const std::string& index_name, const std::string& value,
      const xquery::plan::CompiledQuery& compiled,
      xquery::exec::ExecStats* stats) XBENCH_REQUIRES_SHARED(collection_mu_);

  /// Candidate ordinals for an index lookup (all live documents when the
  /// index is absent); shared by the interpreted and compiled paths.
  std::vector<size_t> LiveOrdinals() const
      XBENCH_REQUIRES_SHARED(collection_mu_);

  /// Whether any index (value, text, or the registered path name) already
  /// claims `name`.
  bool IndexNameTaken(const std::string& name) const
      XBENCH_REQUIRES_SHARED(collection_mu_);

  /// Feeds one parsed document into every maintained index structure.
  void IndexDocument(size_t ordinal, const xml::Node& root)
      XBENCH_REQUIRES(collection_mu_);

  /// Rebuilds the planner-facing catalog mirror from the live index
  /// structures and bumps its epoch. Call after any mutation or DDL,
  /// while still holding the collection lock exclusively.
  void RefreshCatalogLocked() XBENCH_REQUIRES(collection_mu_);

  // file_ itself is set once in the constructor; record-level access is
  // mediated by the collection lock like the registry entries below.
  std::unique_ptr<storage::HeapFile> file_;
  std::vector<DocEntry> registry_ XBENCH_GUARDED_BY(collection_mu_);
  std::atomic<size_t> live_count_{0};
  std::atomic<bool> guided_eval_enabled_{false};
  datagen::DbClass db_class_ XBENCH_GUARDED_BY(collection_mu_) =
      datagen::DbClass::kTcSd;

  // Secondary indexes (all maintained under the collection lock; the
  // B+-trees charge realistic page I/O on probe).
  std::map<std::string, ValueIndex> value_indexes_
      XBENCH_GUARDED_BY(collection_mu_);
  std::unique_ptr<TextIndex> text_index_ XBENCH_GUARDED_BY(collection_mu_);
  std::string text_index_name_ XBENCH_GUARDED_BY(collection_mu_);
  /// Always maintained (statistics source); `path_index_name_` is empty
  /// until kPath DDL registers it.
  PathIndex path_index_ XBENCH_GUARDED_BY(collection_mu_);
  std::string path_index_name_ XBENCH_GUARDED_BY(collection_mu_);
  /// DDL creation order, for ListIndexes.
  std::vector<std::string> index_order_ XBENCH_GUARDED_BY(collection_mu_);

  /// Planner-facing mirror of the index state. Leaf-ish rank just above
  /// the collection lock so RefreshCatalogLocked (collection held
  /// exclusive) can take it, while IndexCatalogSnapshot takes it
  /// standalone.
  mutable Mutex index_mu_{LockRank::kIndexCatalog, "index.catalog"};
  xquery::plan::IndexCatalog catalog_ XBENCH_GUARDED_BY(index_mu_);

  mutable Mutex cache_mu_{LockRank::kDocumentCache, "native.doc.cache"};
  std::map<size_t, CachedDoc> cache_ XBENCH_GUARDED_BY(cache_mu_);
  xquery::plan::PlanCache plan_cache_;
  // Convenience slot for single-threaded callers; unsynchronized by
  // documented contract (see last_plan_stats()).
  xquery::exec::ExecStats last_plan_stats_;
};

/// Extracts the indexed values for `path` from a document tree. Path forms
/// are the paper's Table 3 abbreviations: "elem/@attr" (attribute `attr`
/// of every element `elem`) or "elem" (text value of every element
/// `elem`). Exposed for tests; the engine itself indexes the node-granular
/// ExtractIndexPostings form (engines/secondary_index.h).
std::vector<std::string> ExtractIndexValues(const xml::Node& root,
                                            const std::string& path);

}  // namespace xbench::engines

#endif  // XBENCH_ENGINES_NATIVE_ENGINE_H_
