#include "engines/secondary_index.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/strings.h"

namespace xbench::engines {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Maximal [A-Za-z0-9_] runs of `text`, deduplicated. Matches the word
/// boundaries of common/strings.h ContainsWord (case-sensitive).
std::set<std::string> Tokenize(const std::string& text) {
  std::set<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    if (!IsWordChar(text[i])) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < text.size() && IsWordChar(text[j])) ++j;
    tokens.insert(text.substr(i, j - i));
    i = j;
  }
  return tokens;
}

}  // namespace

// --- PathIndex ------------------------------------------------------------

namespace {

template <typename Fn>
void WalkElements(const xml::Node& node, std::string& path, const Fn& fn) {
  if (!node.is_element()) return;
  const size_t saved = path.size();
  if (!path.empty()) path += '/';
  path += node.name();
  fn(node, path);
  for (const auto& child : node.children()) WalkElements(*child, path, fn);
  path.resize(saved);
}

}  // namespace

void PathIndex::AddDocument(size_t ordinal, const xml::Node& root) {
  std::string path;
  WalkElements(root, path, [&](const xml::Node& node, const std::string& p) {
    postings_[p].push_back(Posting{
        ordinal, node.order(), static_cast<uint32_t>(node.SubtreeSize())});
    ++element_counts_[std::string(node.name())];
    ++total_elements_;
  });
  if (root.is_element()) ++root_counts_[std::string(root.name())];
  ++documents_;
}

void PathIndex::RemoveDocument(size_t ordinal, const xml::Node& root) {
  std::set<std::string> touched;
  std::string path;
  WalkElements(root, path, [&](const xml::Node& node, const std::string& p) {
    touched.insert(p);
    auto it = element_counts_.find(std::string(node.name()));
    if (it != element_counts_.end() && --it->second == 0) {
      element_counts_.erase(it);
    }
    --total_elements_;
  });
  for (const std::string& p : touched) {
    auto it = postings_.find(p);
    if (it == postings_.end()) continue;
    auto& vec = it->second;
    vec.erase(std::remove_if(
                  vec.begin(), vec.end(),
                  [&](const Posting& post) { return post.ordinal == ordinal; }),
              vec.end());
    if (vec.empty()) postings_.erase(it);
  }
  if (root.is_element()) {
    auto it = root_counts_.find(std::string(root.name()));
    if (it != root_counts_.end() && --it->second == 0) root_counts_.erase(it);
  }
  if (documents_ > 0) --documents_;
}

const std::vector<PathIndex::Posting>* PathIndex::Lookup(
    const std::string& path) const {
  auto it = postings_.find(path);
  return it == postings_.end() ? nullptr : &it->second;
}

std::vector<std::string> PathIndex::root_names() const {
  std::vector<std::string> names;
  names.reserve(root_counts_.size());
  for (const auto& [name, count] : root_counts_) names.push_back(name);
  return names;
}

// --- TextIndex ------------------------------------------------------------

namespace {

/// Posts every direct token of `node`'s subtree into `postings`, returns
/// the full token set of TextContent(node). Children are processed first
/// so a token merged across a child boundary ("foo"+"word" -> "fooword")
/// posts at the merge point while the fragments post below it.
std::set<std::string> IndexElementText(
    const xml::Node& node, size_t ordinal,
    std::map<std::string, std::vector<uint64_t>>& postings,
    uint64_t& entries) {
  std::set<std::string> child_tokens;
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    std::set<std::string> sub =
        IndexElementText(*child, ordinal, postings, entries);
    child_tokens.insert(sub.begin(), sub.end());
  }
  std::set<std::string> tokens = Tokenize(node.TextContent());
  for (const std::string& token : tokens) {
    if (child_tokens.count(token)) continue;
    postings[token].push_back(PackNodeRid(ordinal, node.order()));
    ++entries;
  }
  return tokens;
}

}  // namespace

void TextIndex::AddDocument(size_t ordinal, const xml::Node& root) {
  if (!root.is_element()) return;
  IndexElementText(root, ordinal, postings_, entries_);
}

void TextIndex::RemoveDocument(size_t ordinal) {
  for (auto it = postings_.begin(); it != postings_.end();) {
    auto& vec = it->second;
    const size_t before = vec.size();
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [&](uint64_t rid) {
                               return RidOrdinal(rid) == ordinal;
                             }),
              vec.end());
    entries_ -= before - vec.size();
    it = vec.empty() ? postings_.erase(it) : std::next(it);
  }
}

std::vector<uint64_t> TextIndex::Lookup(const std::string& word) const {
  auto it = postings_.find(word);
  std::vector<uint64_t> rids;
  if (it != postings_.end()) rids = it->second;
  std::sort(rids.begin(), rids.end());
  if (clock_ != nullptr) {
    clock_->AdvanceMicros(page_read_micros_ * (1 + rids.size() / 128));
  }
  return rids;
}

// --- Value postings -------------------------------------------------------

std::vector<std::pair<std::string, uint32_t>> ExtractIndexPostings(
    const xml::Node& root, const std::string& path, bool* single_valued) {
  std::vector<std::pair<std::string, uint32_t>> out;
  std::vector<std::string> parts = Split(path, '/');
  if (parts.empty()) return out;
  const std::string& element = parts[0];
  std::string attribute;
  if (parts.size() == 2 && !parts[1].empty() && parts[1][0] == '@') {
    attribute = parts[1].substr(1);
  }
  std::set<const xml::Node*> posted_parents;
  root.Visit([&](const xml::Node& node) {
    if (!node.is_element() || node.name() != element) return;
    if (!attribute.empty()) {
      // Anchor = the element carrying the attribute; one value each, so
      // the per-parent multiplicity check is vacuous.
      if (const std::string* v = node.FindAttribute(attribute)) {
        out.emplace_back(*v, node.order());
      }
      return;
    }
    // Child-value path: anchor = the named element; probes resolve it to
    // its parent, so two posted siblings make that parent multi-valued.
    out.emplace_back(node.TextContent(), node.order());
    if (single_valued != nullptr && node.parent() != nullptr) {
      if (!posted_parents.insert(node.parent()).second) {
        *single_valued = false;
      }
    }
  });
  return out;
}

}  // namespace xbench::engines
