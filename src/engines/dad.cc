#include "engines/dad.h"

#include "common/strings.h"

namespace xbench::engines {

Result<std::pair<std::string, std::string>> ResolveIndexPath(
    const Dad& dad, const std::string& path) {
  std::vector<std::string> parts = Split(path, '/');
  if (parts.size() == 2) {
    // "elem/@attr" or "elem/child"
    for (const TableMap& map : dad.tables) {
      if (map.element != parts[0]) continue;
      for (const ColumnMap& col : map.columns) {
        if (col.rel_path == parts[1]) {
          return std::make_pair(map.table, col.column);
        }
      }
    }
    return Status::NotFound("no DAD mapping for index path '" + path + "'");
  }
  // Bare element name: the first table exposing it as a column path.
  for (const TableMap& map : dad.tables) {
    for (const ColumnMap& col : map.columns) {
      if (col.rel_path == path || col.column == path) {
        return std::make_pair(map.table, col.column);
      }
    }
  }
  return Status::NotFound("no DAD mapping for index path '" + path + "'");
}

namespace {

using relational::ValueType;

ColumnMap Col(std::string column, std::string rel_path,
              ValueType type = ValueType::kString, bool mixed = false) {
  return ColumnMap{std::move(column), std::move(rel_path), type, mixed};
}

Dad CatalogDad() {
  Dad dad;
  dad.tables.push_back(TableMap{
      "item_tab",
      "item",
      {Col("item_id", "@id"), Col("title", "title"),
       Col("date_of_release", "date_of_release"), Col("subject", "subject"),
       Col("description", "description"),
       Col("size", "size", ValueType::kInt),
       Col("pages", "pages", ValueType::kInt),
       Col("srp", "srp", ValueType::kDouble),
       Col("cost", "cost", ValueType::kDouble),
       Col("stock", "stock", ValueType::kInt), Col("isbn", "isbn"),
       Col("backing", "backing")}});
  dad.tables.push_back(TableMap{
      "author_tab",
      "author",
      {Col("author_id", "@id"), Col("first_name", "name/first_name"),
       Col("last_name", "name/last_name"),
       Col("date_of_birth", "date_of_birth"), Col("biography", "biography"),
       Col("street", "mail_address/street"), Col("city", "mail_address/city"),
       Col("zip", "mail_address/zip"), Col("country", "mail_address/country"),
       Col("phone", "phone"), Col("email", "email")}});
  dad.tables.push_back(TableMap{
      "publisher_tab",
      "publisher",
      {Col("name", "name"), Col("fax_number", "fax_number"),
       Col("phone", "phone"), Col("email", "email")}});
  return dad;
}

Dad OrdersDad() {
  Dad dad;
  dad.tables.push_back(TableMap{
      "order_tab",
      "order",
      {Col("order_id", "@id"), Col("customer_id", "customer_id"),
       Col("order_date", "order_date"),
       Col("sub_total", "sub_total", ValueType::kDouble),
       Col("tax", "tax", ValueType::kDouble),
       Col("total", "total", ValueType::kDouble),
       Col("ship_type", "shipping/ship_type"),
       Col("ship_date", "shipping/ship_date"),
       Col("ship_street", "shipping/ship_address/street"),
       Col("ship_city", "shipping/ship_address/city"),
       Col("ship_zip", "shipping/ship_address/zip"),
       Col("ship_country", "shipping/ship_address/country"),
       Col("status", "status")}});
  dad.tables.push_back(TableMap{
      "order_line_tab",
      "order_line",
      {Col("line_no", "@no", ValueType::kInt), Col("item_id", "item_id"),
       Col("quantity", "quantity", ValueType::kInt),
       Col("discount", "discount", ValueType::kDouble),
       Col("comments", "comments")}});
  dad.tables.push_back(TableMap{
      "cc_xact_tab",
      "cc_xact",
      {Col("cc_type", "cc_type"), Col("cc_number", "cc_number"),
       Col("cc_name", "cc_name"), Col("cc_expire", "cc_expire"),
       Col("auth_id", "auth_id"), Col("amount", "amount", ValueType::kDouble),
       Col("xact_date", "xact_date"), Col("country", "country")}});
  // Flat documents shred trivially (they are flat translations already).
  dad.tables.push_back(TableMap{
      "customer_tab",
      "customer",
      {Col("customer_id", "@id"), Col("uname", "uname"),
       Col("first_name", "first_name"), Col("last_name", "last_name"),
       Col("address_id", "address_id", ValueType::kInt),
       Col("phone", "phone"), Col("email", "email"), Col("since", "since"),
       Col("discount", "discount", ValueType::kDouble)}});
  dad.tables.push_back(TableMap{
      "flat_item_tab",
      "item",
      {Col("item_id", "@id"), Col("title", "title"),
       Col("publisher_id", "publisher_id", ValueType::kInt),
       Col("date_of_release", "date_of_release"), Col("subject", "subject"),
       Col("srp", "srp", ValueType::kDouble),
       Col("stock", "stock", ValueType::kInt), Col("isbn", "isbn")}});
  dad.tables.push_back(TableMap{
      "flat_author_tab",
      "author",
      {Col("author_id", "@id"), Col("first_name", "first_name"),
       Col("last_name", "last_name"), Col("date_of_birth", "date_of_birth")}});
  dad.tables.push_back(TableMap{
      "address_tab",
      "address",
      {Col("address_id", "@id", ValueType::kInt), Col("street1", "street1"),
       Col("street2", "street2"), Col("city", "city"), Col("state", "state"),
       Col("zip", "zip"),
       Col("country_id", "country_id", ValueType::kInt)}});
  dad.tables.push_back(TableMap{
      "country_tab",
      "country",
      {Col("country_id", "@id", ValueType::kInt), Col("name", "name"),
       Col("currency", "currency")}});
  return dad;
}

Dad DictionaryDad() {
  Dad dad;
  dad.tables.push_back(TableMap{
      "entry_tab",
      "entry",
      {Col("entry_id", "@id"), Col("hw", "hw"), Col("pos", "pos"),
       Col("pr", "pr"), Col("etym", "etym")}});
  dad.tables.push_back(TableMap{
      "sense_tab",
      "sn",
      {Col("sense_no", "@no", ValueType::kInt), Col("def", "def")}});
  dad.tables.push_back(TableMap{
      "quote_tab",
      "q",
      {Col("qt", "qt", ValueType::kString, /*mixed=*/true), Col("qau", "qau"),
       Col("qd", "qd"), Col("qloc", "qloc")}});
  dad.tables.push_back(TableMap{
      "xref_tab",
      "ref",
      {Col("to_id", "@to")}});
  return dad;
}

Dad ArticlesDad() {
  Dad dad;
  dad.tables.push_back(TableMap{
      "article_tab",
      "article",
      {Col("article_id", "@id"), Col("title", "prolog/title"),
       Col("date", "prolog/date")}});
  dad.tables.push_back(TableMap{
      "art_author_tab",
      "author",
      {Col("name", "name"), Col("email", "contact/email"),
       Col("phone", "contact/phone"), Col("contact", "contact")}});
  dad.tables.push_back(TableMap{
      "keyword_tab",
      "keyword",
      {Col("word", ".")}});
  dad.tables.push_back(TableMap{
      "abstract_tab",
      "abstract",
      {Col("text", ".")}});
  dad.tables.push_back(TableMap{
      "section_tab",
      "sec",
      {Col("heading", "heading")}});
  dad.tables.push_back(TableMap{
      "para_tab",
      "p",
      {Col("text", ".")}});
  dad.tables.push_back(TableMap{
      "art_ref_tab",
      "ref",
      {Col("to_id", "@to")}});
  return dad;
}

}  // namespace

Dad ShredDadFor(datagen::DbClass db_class) {
  switch (db_class) {
    case datagen::DbClass::kDcSd:
      return CatalogDad();
    case datagen::DbClass::kDcMd:
      return OrdersDad();
    case datagen::DbClass::kTcSd:
      return DictionaryDad();
    case datagen::DbClass::kTcMd:
      return ArticlesDad();
  }
  return {};
}

Dad ClobSideTablesFor(datagen::DbClass db_class) {
  Dad dad;
  switch (db_class) {
    case datagen::DbClass::kDcMd:
      dad.tables.push_back(TableMap{
          "side_order",
          "order",
          {Col("order_id", "@id"), Col("customer_id", "customer_id"),
           Col("order_date", "order_date"),
           Col("ship_type", "shipping/ship_type"), Col("status", "status")}});
      dad.tables.push_back(TableMap{
          "side_order_line",
          "order_line",
          {Col("item_id", "item_id"), Col("comments", "comments")}});
      dad.tables.push_back(TableMap{
          "side_customer",
          "customer",
          {Col("customer_id", "@id"), Col("first_name", "first_name"),
           Col("last_name", "last_name"), Col("phone", "phone")}});
      break;
    case datagen::DbClass::kTcMd:
      dad.tables.push_back(TableMap{
          "side_article",
          "article",
          {Col("article_id", "@id"), Col("title", "prolog/title"),
           Col("date", "prolog/date")}});
      dad.tables.push_back(TableMap{
          "side_author",
          "author",
          {Col("name", "name"), Col("contact", "contact")}});
      dad.tables.push_back(TableMap{
          "side_keyword",
          "keyword",
          {Col("word", ".")}});
      dad.tables.push_back(TableMap{
          "side_para",
          "p",
          {Col("text", ".")}});
      dad.tables.push_back(TableMap{
          "side_heading",
          "heading",
          {Col("text", ".")}});
      break;
    default:
      break;  // Xcolumn does not host SD classes
  }
  return dad;
}

}  // namespace xbench::engines
