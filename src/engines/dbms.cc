#include "engines/dbms.h"

namespace xbench::engines {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNative:
      return "X-Hive (native)";
    case EngineKind::kClob:
      return "Xcolumn";
    case EngineKind::kShredDb2:
      return "Xcollection";
    case EngineKind::kShredMsSql:
      return "SQL Server";
  }
  return "?";
}

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kValue:
      return "value";
    case IndexKind::kPath:
      return "path";
    case IndexKind::kText:
      return "text";
  }
  return "?";
}

Status XmlDbms::DropIndex(const std::string& name) {
  (void)name;
  return Status(StatusCode::kUnsupported,
                std::string(EngineKindName(kind())) +
                    " cannot drop indexes after load");
}

std::vector<IndexInfo> XmlDbms::ListIndexes() const { return {}; }

XmlDbms::XmlDbms()
    : disk_(std::make_unique<storage::SimulatedDisk>()),
      pool_(std::make_unique<storage::BufferPool>(*disk_, kDefaultPoolPages)) {
}

}  // namespace xbench::engines
