#include "engines/dbms.h"

namespace xbench::engines {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNative:
      return "X-Hive (native)";
    case EngineKind::kClob:
      return "Xcolumn";
    case EngineKind::kShredDb2:
      return "Xcollection";
    case EngineKind::kShredMsSql:
      return "SQL Server";
  }
  return "?";
}

XmlDbms::XmlDbms()
    : disk_(std::make_unique<storage::SimulatedDisk>()),
      pool_(std::make_unique<storage::BufferPool>(*disk_, kDefaultPoolPages)) {
}

}  // namespace xbench::engines
