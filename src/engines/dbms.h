#ifndef XBENCH_ENGINES_DBMS_H_
#define XBENCH_ENGINES_DBMS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "datagen/generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace xbench::engines {

/// One XML file to bulk-load (name + serialized text).
struct LoadDocument {
  std::string name;
  std::string text;
};

/// What a secondary index maps (the engine-API mirror of
/// xquery::plan::IndexKind — dbms.h stays below the query layers, so the
/// enum is repeated here rather than included).
enum class IndexKind {
  /// B+-tree over the typed value of one path ("item/@id", "hw").
  kValue,
  /// Structural index: qualified element path -> node postings. The
  /// native engine maintains the structure unconditionally; the DDL form
  /// only names it so it shows in ListIndexes.
  kPath,
  /// Inverted text index: word token -> element postings (serves
  /// contains-word probes on TC classes).
  kText,
};

const char* IndexKindName(IndexKind kind);

/// An index request. For kValue, `path` is an element/attribute path in
/// the abbreviated form the paper's Table 3 uses ("item/@id", "hw",
/// "date_of_release"); kPath/kText ignore it.
struct IndexSpec {
  std::string name;
  std::string path;
  IndexKind kind = IndexKind::kValue;
};

/// One row of ListIndexes().
struct IndexInfo {
  std::string name;
  IndexKind kind = IndexKind::kValue;
  std::string path;
  uint64_t entries = 0;
};

/// Identifies which commercial system an engine models.
enum class EngineKind {
  kNative,        // X-Hive: intact document trees, XQuery evaluation
  kClob,          // DB2 XML Extender, Xcolumn: CLOB + side tables
  kShredDb2,      // DB2 XML Extender, Xcollection: DAD shredding
  kShredMsSql,    // SQL Server + SQLXML bulk load: XSD shredding
};

const char* EngineKindName(EngineKind kind);

/// Base class for the four storage engines. Engines own a SimulatedDisk +
/// BufferPool; the harness reads the virtual clock to report I/O time and
/// calls ColdRestart() before each measured query (paper §3.1: cold runs).
///
/// Concurrency model: engines carry a collection-level reader/writer lock
/// (collection_mu()). Mutations (BulkLoad / InsertDocument /
/// DeleteDocument / CreateIndex / ColdRestart) acquire it exclusively
/// *inside* the engine; query entry points acquire it shared, so any
/// number of sessions can query one engine concurrently while loads are
/// serialized against them. Lock acquisition order across the system is
/// the common/lock_rank.h rank table (DESIGN.md §9), enforced at runtime
/// under XBENCH_LOCK_RANKS and statically by Clang -Wthread-safety.
class XmlDbms {
 public:
  XmlDbms();
  virtual ~XmlDbms() = default;

  XmlDbms(const XmlDbms&) = delete;
  XmlDbms& operator=(const XmlDbms&) = delete;

  virtual EngineKind kind() const = 0;
  std::string name() const { return EngineKindName(kind()); }

  /// Bulk-loads a database. Engines check well-formedness but (as in the
  /// paper's runs) do not validate against a schema. Returns kUnsupported
  /// when the engine cannot host this database (CLOB size limit, DB2
  /// decomposition row limit) — those are the "-" cells of Tables 4–9.
  virtual Status BulkLoad(datagen::DbClass db_class,
                          const std::vector<LoadDocument>& docs) = 0;

  /// Creates an index (after loading, as in §3.1). Engines return
  /// kUnsupported for kinds they cannot host (only the native engine
  /// serves kPath/kText).
  virtual Status CreateIndex(const IndexSpec& spec) = 0;

  /// Drops an index by name. Default: kUnsupported (relational engines
  /// keep their side-table indexes for the lifetime of the load).
  virtual Status DropIndex(const std::string& name);

  /// The engine's secondary indexes, DDL-created ones only, in creation
  /// order. Default: empty.
  virtual std::vector<IndexInfo> ListIndexes() const;

  /// Update workload — the paper's planned extension (§4, "update
  /// workloads will be included in subsequent versions"): document-level
  /// insertion and deletion with index maintenance.
  virtual Status InsertDocument(const LoadDocument& doc) = 0;
  virtual Status DeleteDocument(const std::string& name) = 0;

  /// Drops all cached state so the next query runs cold. Takes the
  /// collection lock exclusively, then delegates to ColdRestartLocked().
  /// Pool/disk counters are NOT reset: engine-lifetime totals stay
  /// monotonic, and per-operation attribution comes from per-thread
  /// deltas (ThisThreadIo) so a restart by one session can never
  /// misattribute I/O charged by another.
  void ColdRestart() {
    WriterLock lock(collection_mu_);
    ColdRestartLocked();
  }

  storage::SimulatedDisk& disk() { return *disk_; }
  const storage::SimulatedDisk& disk() const { return *disk_; }
  storage::BufferPool& pool() { return *pool_; }
  const storage::BufferPool& pool() const { return *pool_; }

  /// Collection-level reader/writer lock. Engines take it internally;
  /// exposed so session-layer code driving engine-external query paths
  /// (CLOB/shred relational plans) can hold it shared for the duration of
  /// a statement.
  SharedMutex& collection_mu() const XBENCH_RETURN_CAPABILITY(collection_mu_) {
    return collection_mu_;
  }

  /// Virtual I/O time accumulated so far (milliseconds).
  double IoMillis() const { return disk_->clock().ElapsedMillis(); }

 protected:
  /// Cache-dropping body; the caller already holds the collection lock
  /// exclusively. Overrides must call the base (or flush the pool
  /// themselves) and must NOT re-take the collection lock.
  virtual void ColdRestartLocked() XBENCH_REQUIRES(collection_mu_) {
    pool_->ColdRestart();
  }

  std::unique_ptr<storage::SimulatedDisk> disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  mutable SharedMutex collection_mu_{LockRank::kCollection, "collection"};
};

/// Buffer-pool capacity shared by every engine (frames). ~16 MiB: holds
/// the small databases entirely, thrashes on normal/large — the same
/// relationship the paper's 1 GB RAM had to its 10 MB/100 MB/1 GB scales.
inline constexpr size_t kDefaultPoolPages = 2048;

/// Fixed per-file ingest overhead charged by every engine during bulk
/// load (file open + per-document commit). This is what makes the
/// many-small-files DC/MD class the slowest to load per byte, the paper's
/// §3.2.1 observation ("the number of documents becomes very critical").
inline constexpr uint64_t kPerDocumentIngestMicros = 500;

}  // namespace xbench::engines

#endif  // XBENCH_ENGINES_DBMS_H_
