#include "engines/registry.h"

#include "engines/clob_engine.h"
#include "engines/native_engine.h"
#include "engines/shred_engine.h"

namespace xbench::engines {

const char* EngineKindRegistryName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNative:
      return "native";
    case EngineKind::kClob:
      return "clob";
    case EngineKind::kShredDb2:
      return "shred-db2";
    case EngineKind::kShredMsSql:
      return "shred-mssql";
  }
  return "?";
}

EngineRegistry& EngineRegistry::Default() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    (void)r->Register("native",
                      [] { return std::make_unique<NativeEngine>(); });
    (void)r->Register("clob", [] { return std::make_unique<ClobEngine>(); });
    (void)r->Register("shred-db2", [] {
      return std::make_unique<ShredEngine>(EngineKind::kShredDb2);
    });
    (void)r->Register("shred-mssql", [] {
      return std::make_unique<ShredEngine>(EngineKind::kShredMsSql);
    });
    return r;
  }();
  return *registry;
}

Status EngineRegistry::Register(const std::string& name, Factory factory) {
  MutexLock lock(mu_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    return Status::AlreadyExists("engine '" + name + "' is already registered");
  }
  return Status::Ok();
}

Result<std::unique_ptr<XmlDbms>> EngineRegistry::Create(
    const std::string& name) const {
  Factory factory;
  {
    MutexLock lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [known_name, f] : factories_) {
        if (!known.empty()) known += ", ";
        known += known_name;
      }
      return Status::NotFound("engine '" + name +
                              "' is not registered (known: " + known + ")");
    }
    factory = it->second;
  }
  // Construct outside the lock: factories may be arbitrarily expensive.
  return factory();
}

bool EngineRegistry::Contains(const std::string& name) const {
  MutexLock lock(mu_);
  return factories_.count(name) != 0;
}

std::vector<std::string> EngineRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

}  // namespace xbench::engines
