#include "stats/corpus_analyzer.h"

#include <algorithm>
#include <cstdio>

namespace xbench::stats {

std::string CorpusStats::ToRow() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-12s %8llu  [%llu, %llu] KB  %10.1f MB",
                source_name.c_str(),
                static_cast<unsigned long long>(file_count),
                static_cast<unsigned long long>(min_file_bytes / 1024),
                static_cast<unsigned long long>(
                    (max_file_bytes + 1023) / 1024),
                static_cast<double>(total_bytes) / (1024.0 * 1024.0));
  return buf;
}

CorpusAnalyzer::CorpusAnalyzer(std::string source_name) {
  stats_.source_name = std::move(source_name);
}

void CorpusAnalyzer::AddDocument(const xml::Document& doc,
                                 uint64_t serialized_bytes) {
  ++stats_.file_count;
  if (stats_.file_count == 1) {
    stats_.min_file_bytes = serialized_bytes;
    stats_.max_file_bytes = serialized_bytes;
  } else {
    stats_.min_file_bytes = std::min(stats_.min_file_bytes, serialized_bytes);
    stats_.max_file_bytes = std::max(stats_.max_file_bytes, serialized_bytes);
  }
  stats_.total_bytes += serialized_bytes;

  if (doc.root() == nullptr) return;
  struct Walker {
    CorpusStats& stats;
    void Walk(const xml::Node& node, int depth) {
      if (node.is_text()) {
        stats.text_bytes += node.text().size();
        return;
      }
      // Depth counts element nesting only.
      stats.max_depth = std::max(stats.max_depth, depth);
      ++stats.element_count;
      ++stats.element_type_counts[node.name()];
      stats.attribute_count += node.attributes().size();
      for (const auto& child : node.children()) Walk(*child, depth + 1);
    }
  };
  Walker{stats_}.Walk(*doc.root(), 1);
}

}  // namespace xbench::stats
