#include "stats/distribution.h"

#include <algorithm>
#include <cmath>

namespace xbench::stats {
namespace {

int64_t Clamp(int64_t v, int64_t lo, int64_t hi) {
  return std::max(lo, std::min(hi, v));
}

class UniformDist : public Distribution {
 public:
  UniformDist(int64_t lo, int64_t hi) : lo_(lo), hi_(std::max(lo, hi)) {}
  int64_t Sample(Rng& rng) const override { return rng.NextInt(lo_, hi_); }
  int64_t min_value() const override { return lo_; }
  int64_t max_value() const override { return hi_; }
  double Mean() const override {
    return (static_cast<double>(lo_) + static_cast<double>(hi_)) / 2.0;
  }

 private:
  int64_t lo_;
  int64_t hi_;
};

class NormalDist : public Distribution {
 public:
  NormalDist(double mean, double stddev, int64_t lo, int64_t hi)
      : mean_(mean), stddev_(stddev), lo_(lo), hi_(std::max(lo, hi)) {}
  int64_t Sample(Rng& rng) const override {
    const double v = mean_ + stddev_ * rng.NextGaussian();
    return Clamp(static_cast<int64_t>(std::llround(v)), lo_, hi_);
  }
  int64_t min_value() const override { return lo_; }
  int64_t max_value() const override { return hi_; }
  double Mean() const override {
    // Truncation bias is negligible for the parameters we use.
    return std::min(static_cast<double>(hi_),
                    std::max(static_cast<double>(lo_), mean_));
  }

 private:
  double mean_;
  double stddev_;
  int64_t lo_;
  int64_t hi_;
};

class ExponentialDist : public Distribution {
 public:
  ExponentialDist(double mean, int64_t lo, int64_t hi)
      : mean_(std::max(1e-9, mean)), lo_(lo), hi_(std::max(lo, hi)) {}
  int64_t Sample(Rng& rng) const override {
    double u = rng.NextDouble();
    while (u <= 1e-12) u = rng.NextDouble();
    const double v = -mean_ * std::log(u);
    return Clamp(lo_ + static_cast<int64_t>(std::llround(v)), lo_, hi_);
  }
  int64_t min_value() const override { return lo_; }
  int64_t max_value() const override { return hi_; }
  double Mean() const override {
    return std::min(static_cast<double>(hi_),
                    static_cast<double>(lo_) + mean_);
  }

 private:
  double mean_;
  int64_t lo_;
  int64_t hi_;
};

class ZipfDist : public Distribution {
 public:
  ZipfDist(int64_t n, double s) : n_(std::max<int64_t>(1, n)), s_(s) {
    cdf_.reserve(static_cast<size_t>(n_));
    double total = 0;
    for (int64_t k = 1; k <= n_; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), s_);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
    mean_ = 0;
    double prev = 0;
    for (int64_t k = 1; k <= n_; ++k) {
      mean_ += static_cast<double>(k) *
               (cdf_[static_cast<size_t>(k - 1)] - prev);
      prev = cdf_[static_cast<size_t>(k - 1)];
    }
  }
  int64_t Sample(Rng& rng) const override {
    const double u = rng.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int64_t>(it - cdf_.begin()) + 1;
  }
  int64_t min_value() const override { return 1; }
  int64_t max_value() const override { return n_; }
  double Mean() const override { return mean_; }

 private:
  int64_t n_;
  double s_;
  std::vector<double> cdf_;
  double mean_;
};

}  // namespace

std::unique_ptr<Distribution> MakeUniform(int64_t lo, int64_t hi) {
  return std::make_unique<UniformDist>(lo, hi);
}

std::unique_ptr<Distribution> MakeNormal(double mean, double stddev,
                                         int64_t lo, int64_t hi) {
  return std::make_unique<NormalDist>(mean, stddev, lo, hi);
}

std::unique_ptr<Distribution> MakeExponential(double mean, int64_t lo,
                                              int64_t hi) {
  return std::make_unique<ExponentialDist>(mean, lo, hi);
}

std::unique_ptr<Distribution> MakeZipf(int64_t n, double s) {
  return std::make_unique<ZipfDist>(n, s);
}

}  // namespace xbench::stats
