#ifndef XBENCH_STATS_FITTING_H_
#define XBENCH_STATS_FITTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stats/distribution.h"
#include "xml/node.h"

namespace xbench::stats {

/// Which standard family a sample best matches (§2.1.1: "frequency
/// distributions are computed and standard probability distributions are
/// fit to the data").
enum class Family {
  kConstant,     // zero variance
  kUniform,
  kNormal,
  kExponential,
  kZipf,
};

const char* FamilyName(Family family);

/// A fitted distribution: the winning family, its moment-matched
/// parameters, the observed [min, max] truncation bounds (the paper
/// stores these so generated documents stay finite), and the goodness
/// score of the winner (mean absolute CDF error; smaller is better).
struct Fit {
  Family family = Family::kConstant;
  double mean = 0;
  double stddev = 0;
  int64_t min_value = 0;
  int64_t max_value = 0;
  double score = 0;

  /// Renders like "normal(mean=2.3, sd=1.1) on [1, 6]".
  std::string ToString() const;

  /// Instantiates a generator-ready Distribution from the fit.
  std::unique_ptr<Distribution> MakeDistribution() const;
};

/// Fits the sample by moment matching each family and scoring with the
/// mean absolute difference between empirical and model CDFs over the
/// observed support. Requires a non-empty sample.
Fit FitDistribution(const std::vector<int64_t>& samples);

/// Convenience: per-parent child-occurrence samples of `child_name`
/// under `parent_name` across a document tree — the exact statistic the
/// paper's generator parameters come from.
std::vector<int64_t> OccurrenceSamples(const xml::Node& root,
                                       const std::string& parent_name,
                                       const std::string& child_name);

}  // namespace xbench::stats

#endif  // XBENCH_STATS_FITTING_H_
