#ifndef XBENCH_STATS_CORPUS_ANALYZER_H_
#define XBENCH_STATS_CORPUS_ANALYZER_H_

#include <cstdint>
#include <map>
#include <string>

#include "xml/node.h"

namespace xbench::stats {

/// Aggregate statistics over a collection of XML documents — the analysis
/// the paper runs over GCIDE/OED/Reuters/Springer to produce Table 2 and
/// the per-class distribution parameters (§2.1.1). We run it over the
/// generated corpora both to report Table 2-style rows and to verify in
/// tests that generated data matches its design parameters.
struct CorpusStats {
  std::string source_name;
  uint64_t file_count = 0;
  uint64_t min_file_bytes = 0;
  uint64_t max_file_bytes = 0;
  uint64_t total_bytes = 0;

  uint64_t element_count = 0;
  uint64_t attribute_count = 0;
  uint64_t text_bytes = 0;
  int max_depth = 0;
  std::map<std::string, uint64_t> element_type_counts;

  /// Fraction of serialized bytes that is character data (text-centricity
  /// measure separating TC from DC classes).
  double TextRatio() const {
    return total_bytes == 0
               ? 0.0
               : static_cast<double>(text_bytes) /
                     static_cast<double>(total_bytes);
  }

  /// One Table 2-style report row:
  /// "name  files  [min,max] KB  total MB".
  std::string ToRow() const;
};

/// Analyzes one collection; call AddDocument per document then Finish().
class CorpusAnalyzer {
 public:
  explicit CorpusAnalyzer(std::string source_name);

  /// `serialized_bytes` is the document's size as stored on disk.
  void AddDocument(const xml::Document& doc, uint64_t serialized_bytes);

  const CorpusStats& stats() const { return stats_; }

 private:
  CorpusStats stats_;
};

}  // namespace xbench::stats

#endif  // XBENCH_STATS_CORPUS_ANALYZER_H_
