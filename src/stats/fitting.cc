#include "stats/fitting.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace xbench::stats {
namespace {

double NormalCdf(double x, double mean, double stddev) {
  if (stddev <= 0) return x >= mean ? 1.0 : 0.0;
  return 0.5 * (1.0 + std::erf((x - mean) / (stddev * std::sqrt(2.0))));
}

double UniformCdf(double x, double lo, double hi) {
  if (x < lo) return 0;
  if (x >= hi) return 1;
  return hi > lo ? (x - lo) / (hi - lo) : 1.0;
}

double ExponentialCdf(double x, double lo, double mean) {
  if (x < lo) return 0;
  if (mean <= 0) return 1;
  return 1.0 - std::exp(-(x - lo) / mean);
}

/// Zipf CDF over ranks [1, n] with s = 1 (the skew our generator uses).
double ZipfCdf(double x, int64_t n) {
  if (x < 1) return 0;
  static thread_local std::map<int64_t, std::vector<double>> cache;
  std::vector<double>& cdf = cache[n];
  if (cdf.empty()) {
    double total = 0;
    cdf.reserve(static_cast<size_t>(n));
    for (int64_t k = 1; k <= n; ++k) {
      total += 1.0 / static_cast<double>(k);
      cdf.push_back(total);
    }
    for (double& c : cdf) c /= total;
  }
  const auto idx = static_cast<size_t>(
      std::min<int64_t>(n, static_cast<int64_t>(x)) - 1);
  return cdf[idx];
}

}  // namespace

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kConstant:
      return "constant";
    case Family::kUniform:
      return "uniform";
    case Family::kNormal:
      return "normal";
    case Family::kExponential:
      return "exponential";
    case Family::kZipf:
      return "zipf";
  }
  return "?";
}

std::string Fit::ToString() const {
  char buf[128];
  switch (family) {
    case Family::kConstant:
      std::snprintf(buf, sizeof(buf), "constant(%lld)",
                    static_cast<long long>(min_value));
      break;
    case Family::kUniform:
      std::snprintf(buf, sizeof(buf), "uniform on [%lld, %lld]",
                    static_cast<long long>(min_value),
                    static_cast<long long>(max_value));
      break;
    case Family::kNormal:
      std::snprintf(buf, sizeof(buf),
                    "normal(mean=%.2f, sd=%.2f) on [%lld, %lld]", mean,
                    stddev, static_cast<long long>(min_value),
                    static_cast<long long>(max_value));
      break;
    case Family::kExponential:
      std::snprintf(buf, sizeof(buf),
                    "exponential(mean=%.2f) on [%lld, %lld]",
                    mean - static_cast<double>(min_value),
                    static_cast<long long>(min_value),
                    static_cast<long long>(max_value));
      break;
    case Family::kZipf:
      std::snprintf(buf, sizeof(buf), "zipf(n=%lld, s=1) on [1, %lld]",
                    static_cast<long long>(max_value),
                    static_cast<long long>(max_value));
      break;
  }
  return buf;
}

std::unique_ptr<Distribution> Fit::MakeDistribution() const {
  switch (family) {
    case Family::kConstant:
      return MakeUniform(min_value, min_value);
    case Family::kUniform:
      return MakeUniform(min_value, max_value);
    case Family::kNormal:
      return MakeNormal(mean, stddev, min_value, max_value);
    case Family::kExponential:
      return MakeExponential(mean - static_cast<double>(min_value),
                             min_value, max_value);
    case Family::kZipf:
      return MakeZipf(max_value, 1.0);
  }
  return MakeUniform(min_value, max_value);
}

Fit FitDistribution(const std::vector<int64_t>& samples) {
  Fit fit;
  if (samples.empty()) return fit;

  std::vector<int64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  fit.min_value = sorted.front();
  fit.max_value = sorted.back();

  const double n = static_cast<double>(sorted.size());
  double sum = 0;
  for (int64_t v : sorted) sum += static_cast<double>(v);
  fit.mean = sum / n;
  double var = 0;
  for (int64_t v : sorted) {
    const double d = static_cast<double>(v) - fit.mean;
    var += d * d;
  }
  var /= n;
  fit.stddev = std::sqrt(var);

  if (fit.min_value == fit.max_value) {
    fit.family = Family::kConstant;
    fit.score = 0;
    return fit;
  }

  // Score each candidate family by mean |empirical CDF - model CDF| at
  // the sample points.
  auto score_model = [&](auto&& cdf) {
    double error = 0;
    for (size_t i = 0; i < sorted.size(); ++i) {
      const double empirical = (static_cast<double>(i) + 1.0) / n;
      error += std::fabs(empirical - cdf(static_cast<double>(sorted[i])));
    }
    return error / n;
  };

  const double lo = static_cast<double>(fit.min_value);
  const double hi = static_cast<double>(fit.max_value);
  struct Candidate {
    Family family;
    double score;
  };
  std::vector<Candidate> candidates;
  candidates.push_back(
      {Family::kUniform, score_model([&](double x) {
         // Continuity correction for integer support.
         return UniformCdf(x + 0.5, lo - 0.5, hi + 0.5);
       })});
  candidates.push_back(
      {Family::kNormal, score_model([&](double x) {
         return NormalCdf(x + 0.5, fit.mean, fit.stddev);
       })});
  candidates.push_back(
      {Family::kExponential, score_model([&](double x) {
         return ExponentialCdf(x + 0.5, lo, fit.mean - lo);
       })});
  if (fit.min_value >= 1) {
    candidates.push_back({Family::kZipf, score_model([&](double x) {
                            return ZipfCdf(x, fit.max_value);
                          })});
  }

  const Candidate* best = &candidates[0];
  for (const Candidate& c : candidates) {
    if (c.score < best->score) best = &c;
  }
  fit.family = best->family;
  fit.score = best->score;
  return fit;
}

std::vector<int64_t> OccurrenceSamples(const xml::Node& root,
                                       const std::string& parent_name,
                                       const std::string& child_name) {
  std::vector<int64_t> samples;
  root.Visit([&](const xml::Node& node) {
    if (!node.is_element() || node.name() != parent_name) return;
    samples.push_back(
        static_cast<int64_t>(node.Children(child_name).size()));
  });
  return samples;
}

}  // namespace xbench::stats
