#ifndef XBENCH_STATS_DISTRIBUTION_H_
#define XBENCH_STATS_DISTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"

namespace xbench::stats {

/// A bounded integer-valued probability distribution. XBench's generator
/// drives element/attribute occurrence counts and value choices from
/// distributions fitted to real corpora; each fitted distribution carries
/// explicit min/max truncation so generated documents stay finite
/// (paper §2.1).
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample (always within [min_value(), max_value()]).
  virtual int64_t Sample(Rng& rng) const = 0;

  virtual int64_t min_value() const = 0;
  virtual int64_t max_value() const = 0;

  /// Expected value of the distribution (used by scale solving: the
  /// generators size databases by solving entry counts against the mean
  /// bytes-per-entry).
  virtual double Mean() const = 0;
};

/// Uniform over [lo, hi].
std::unique_ptr<Distribution> MakeUniform(int64_t lo, int64_t hi);

/// Normal(mean, stddev) rounded and clamped to [lo, hi].
std::unique_ptr<Distribution> MakeNormal(double mean, double stddev,
                                         int64_t lo, int64_t hi);

/// Exponential with the given mean, shifted by `lo` and clamped to
/// [lo, hi]. Models the long-tailed entry sizes of the TC corpora.
std::unique_ptr<Distribution> MakeExponential(double mean, int64_t lo,
                                              int64_t hi);

/// Zipf over ranks [1, n] with skew `s` (s=0 is uniform). Models word
/// frequencies for text generation.
std::unique_ptr<Distribution> MakeZipf(int64_t n, double s);

}  // namespace xbench::stats

#endif  // XBENCH_STATS_DISTRIBUTION_H_
