#ifndef XBENCH_XQUERY_FUNCTIONS_H_
#define XBENCH_XQUERY_FUNCTIONS_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "xquery/sequence.h"

namespace xbench::xquery {

/// True for the functions whose value depends on the dynamic focus
/// (position(), last()); the evaluator computes those itself.
bool IsContextFunction(std::string_view name);

/// Dispatches a context-free built-in function call.
///
/// Supported: count, sum, avg, min, max, contains, contains-word,
/// starts-with, ends-with, string-length, substring, concat, string-join,
/// upper-case, lower-case, normalize-space, string, number, xs:double,
/// xs:integer, xs:date (identity-checked cast), boolean, not, true, false,
/// empty, exists, distinct-values, data, name, round, floor, ceiling.
Result<Sequence> CallFunction(std::string_view name,
                              std::vector<Sequence> args);

}  // namespace xbench::xquery

#endif  // XBENCH_XQUERY_FUNCTIONS_H_
