#ifndef XBENCH_XQUERY_PLAN_CACHE_H_
#define XBENCH_XQUERY_PLAN_CACHE_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "xquery/ast.h"
#include "xquery/exec/exec.h"
#include "xquery/plan/logical.h"

namespace xbench::xquery::plan {

/// A fully compiled query: the analyzed AST (the plans reference its
/// expressions, so it must stay alive exactly as long as they do), the
/// logical plan, and the executable physical plan. Shared immutably via
/// shared_ptr so a cache invalidation cannot pull a plan out from under an
/// in-flight execution.
struct CompiledQuery {
  ExprPtr ast;
  LogicalPlan logical;
  exec::PhysicalPlan physical;
  /// The options the plan was compiled under (access-path decisions in
  /// explain output report the mode alongside the per-node choices).
  CompilationOptions options;
  /// Whether descendant steps were allowed to compile to schema-guided
  /// walks. A guided plan is only executable on an engine whose collection
  /// passed the load-time validation gate; the cache key carries this flag
  /// so a gate flip compiles a fresh plan instead of reusing a stale one.
  bool guided = false;
  /// Intra-query parallelism bound compiled into the physical operators
  /// (mirrors CompilationOptions::parallelism; part of the cache key, so
  /// scalar and parallel compilations coexist).
  int parallelism = 1;
  /// When the whole plan is driven by exactly one index probe over the
  /// workload's `$input`, this points at that probe node (inside
  /// `logical`, so it lives as long as the compiled query). Engines use it
  /// to prefilter which documents they bind `$input` over — the index has
  /// already proven the others produce nothing. Null when no single
  /// driving probe exists.
  const LogicalNode* prefilter_probe = nullptr;
};

/// Compiles an analyzed AST into a logical + physical plan, taking
/// ownership of the AST. `catalog` (nullable) enables index probes under
/// kAuto/kForceIndex. Increments xbench.plan.compiles and records a
/// "xquery.plan.compile" span.
Result<std::shared_ptr<const CompiledQuery>> Compile(
    ExprPtr ast, const PlanAnnotations* notes,
    const CompilationOptions& options, const IndexCatalog* catalog = nullptr);

/// Cache key: (query id, database class, engine kind, guided flag,
/// parallelism bound, access-path mode + forced index, index-catalog
/// epoch). The ints mirror workload::QueryId / workload::DbClass /
/// engines::EngineKind / plan::AccessPathMode without depending on those
/// headers. The epoch ties a plan to the catalog snapshot it was costed
/// against: index DDL or a document mutation bumps the engine's epoch, so
/// stale index choices miss instead of being served.
struct PlanCacheKey {
  int query_id = 0;
  int db_class = 0;
  int engine = 0;
  bool guided = false;
  int parallelism = 1;
  int access_mode = 0;
  std::string forced_index;
  uint64_t index_epoch = 0;

  bool operator<(const PlanCacheKey& other) const {
    return std::tie(query_id, db_class, engine, guided, parallelism,
                    access_mode, forced_index, index_epoch) <
           std::tie(other.query_id, other.db_class, other.engine,
                    other.guided, other.parallelism, other.access_mode,
                    other.forced_index, other.index_epoch);
  }
};

/// Per-engine compiled-plan cache. Engines own one and invalidate it on
/// document mutations (BulkLoad / InsertDocument / DeleteDocument): the
/// data change can flip the validation gate or the statistics underlying
/// plan choices, so every compiled plan for that engine is dropped.
/// ColdRestart does NOT invalidate — compiled plans model the DBMS's
/// statement cache, which survives buffer-pool flushes.
///
/// Thread-safe: lookups/inserts from concurrent sessions serialize on an
/// internal mutex; the shared_ptr payloads are immutable, so a plan
/// fetched by one session stays valid even if another invalidates.
class PlanCache {
 public:
  /// Returns the cached plan or nullptr, counting
  /// xbench.plan.cache_hits / cache_misses.
  std::shared_ptr<const CompiledQuery> Lookup(const PlanCacheKey& key) const;

  void Insert(const PlanCacheKey& key,
              std::shared_ptr<const CompiledQuery> plan);

  /// Drops every cached plan; counts xbench.plan.invalidations when the
  /// cache was non-empty.
  void Invalidate();

  size_t size() const {
    MutexLock lock(mu_);
    return plans_.size();
  }

 private:
  mutable Mutex mu_{LockRank::kPlanCache, "plan.cache"};
  std::map<PlanCacheKey, std::shared_ptr<const CompiledQuery>> plans_
      XBENCH_GUARDED_BY(mu_);
};

}  // namespace xbench::xquery::plan

#endif  // XBENCH_XQUERY_PLAN_CACHE_H_
