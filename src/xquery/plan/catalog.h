#ifndef XBENCH_XQUERY_PLAN_CATALOG_H_
#define XBENCH_XQUERY_PLAN_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xbench::xquery::plan {

/// What a secondary index maps. The planner only consumes this catalog
/// view; the structures themselves live in the engine layer
/// (engines/secondary_index.h, relational/btree.h).
enum class IndexKind {
  /// B+-tree over the typed value of one path ("item/@id", "hw"):
  /// key -> element postings.
  kValue,
  /// Structural index: qualified element path -> node-range postings.
  kPath,
  /// Inverted text index: word token -> element postings.
  kText,
};

const char* IndexKindName(IndexKind kind);

/// Per-index statistics the cost model consumes. Snapshotted together
/// with the collection statistics; a snapshot is consistent for the
/// epoch it was taken at.
struct IndexStats {
  std::string name;
  IndexKind kind = IndexKind::kValue;
  /// kValue: the indexed path, either "element" (child text value) or
  /// "element/@attr". Empty for kPath/kText.
  std::string path;
  /// Total postings (value/text) or distinct qualified paths (kPath).
  uint64_t entries = 0;
  /// Distinct keys (value) or distinct word tokens (text).
  uint64_t distinct_keys = 0;
  /// B+-tree height in nodes (root -> leaf); 1 for flat structures.
  int height = 1;
  /// kValue only: every parent element carries at most one indexed
  /// child/attribute. Required for range probes to be sound (a range
  /// conjunction pair `p >= lo and p <= hi` decomposes into one interval
  /// probe only when p is single-valued per context element).
  bool single_valued = true;
};

/// Collection-wide statistics, maintained by the engine's structural
/// path index (so they describe the *actual* collection, unlike the
/// canonical-sample SchemaSummary cardinalities).
struct CollectionStats {
  uint64_t documents = 0;
  uint64_t total_elements = 0;
  /// Element count per tag name.
  std::map<std::string, uint64_t> elements_by_name;
  /// Distinct document-root tag names in the collection.
  std::vector<std::string> root_names;
};

/// The planner-facing view of an engine's secondary indexes. Engines
/// mirror their index state into one of these (bumping `epoch` on any
/// DDL or document mutation); the compilation pipeline treats it as an
/// immutable snapshot and the plan cache keys on the epoch, so a plan
/// compiled against a stale catalog is never served.
struct IndexCatalog {
  uint64_t epoch = 0;
  std::vector<IndexStats> indexes;
  CollectionStats collection;

  /// Index by name; nullptr when absent.
  const IndexStats* Find(const std::string& name) const;
  /// First kValue index whose `path` equals `path`; nullptr when absent.
  const IndexStats* FindValueIndexForPath(const std::string& path) const;
  /// First index of `kind`; nullptr when absent.
  const IndexStats* FindByKind(IndexKind kind) const;
};

}  // namespace xbench::xquery::plan

#endif  // XBENCH_XQUERY_PLAN_CATALOG_H_
