#include "xquery/plan/catalog.h"

namespace xbench::xquery::plan {

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kValue:
      return "value";
    case IndexKind::kPath:
      return "path";
    case IndexKind::kText:
      return "text";
  }
  return "?";
}

const IndexStats* IndexCatalog::Find(const std::string& name) const {
  for (const IndexStats& index : indexes) {
    if (index.name == name) return &index;
  }
  return nullptr;
}

const IndexStats* IndexCatalog::FindValueIndexForPath(
    const std::string& path) const {
  for (const IndexStats& index : indexes) {
    if (index.kind == IndexKind::kValue && index.path == path) return &index;
  }
  return nullptr;
}

const IndexStats* IndexCatalog::FindByKind(IndexKind kind) const {
  for (const IndexStats& index : indexes) {
    if (index.kind == kind) return &index;
  }
  return nullptr;
}

}  // namespace xbench::xquery::plan
