#include "xquery/plan/logical.h"

#include <algorithm>
#include <set>
#include <utility>

namespace xbench::xquery::plan {
namespace {

/// Sequence functions whose single argument compiles to an item sub-plan
/// (the argument is the operator input; the function body stays the
/// interpreter's CallFunction).
const std::set<std::string>& AggregateFunctions() {
  static const auto* kFns = new std::set<std::string>{
      "count", "sum",    "avg",   "min",           "max",
      "data",  "empty",  "exists", "distinct-values"};
  return *kFns;
}

void CollectFree(const Expr& e, std::set<std::string> bound,
                 std::set<std::string>& free);

void CollectFreePredicates(const std::vector<Step>& steps,
                           const std::set<std::string>& bound,
                           std::set<std::string>& free) {
  for (const Step& step : steps) {
    for (const auto& pred : step.predicates) {
      CollectFree(*pred, bound, free);
    }
  }
}

void CollectFree(const Expr& e, std::set<std::string> bound,
                 std::set<std::string>& free) {
  switch (e.kind) {
    case ExprKind::kVariable:
      if (bound.count(e.variable) == 0) free.insert(e.variable);
      return;
    case ExprKind::kFlwor: {
      size_t fi = 0;
      size_t li = 0;
      for (char kind : e.clause_order) {
        if (kind == 'f') {
          const ForClause& clause = e.for_clauses[fi++];
          CollectFree(*clause.input, bound, free);
          bound.insert(clause.variable);
          if (!clause.position_variable.empty()) {
            bound.insert(clause.position_variable);
          }
        } else {
          const LetClause& clause = e.let_clauses[li++];
          CollectFree(*clause.value, bound, free);
          bound.insert(clause.variable);
        }
      }
      if (e.where != nullptr) CollectFree(*e.where, bound, free);
      for (const OrderSpec& spec : e.order_by) {
        CollectFree(*spec.key, bound, free);
      }
      CollectFree(*e.return_expr, bound, free);
      return;
    }
    case ExprKind::kQuantified:
      CollectFree(*e.quant_input, bound, free);
      bound.insert(e.quant_variable);
      CollectFree(*e.quant_satisfies, bound, free);
      return;
    default:
      break;
  }
  if (e.path_root != nullptr) CollectFree(*e.path_root, bound, free);
  CollectFreePredicates(e.steps, bound, free);
  for (const auto& child : e.children) CollectFree(*child, bound, free);
  if (e.lhs != nullptr) CollectFree(*e.lhs, bound, free);
  if (e.rhs != nullptr) CollectFree(*e.rhs, bound, free);
  if (e.then_branch != nullptr) CollectFree(*e.then_branch, bound, free);
  if (e.else_branch != nullptr) CollectFree(*e.else_branch, bound, free);
  for (const ConstructorAttr& attr : e.constructor_attrs) {
    for (const ConstructorContent& part : attr.value_parts) {
      if (part.expr != nullptr) CollectFree(*part.expr, bound, free);
    }
  }
  for (const ConstructorContent& part : e.constructor_content) {
    if (part.expr != nullptr) CollectFree(*part.expr, bound, free);
    if (part.child != nullptr) CollectFree(*part.child, bound, free);
  }
}

std::string NodeLabel(const LogicalNode& n) {
  std::string label;
  switch (n.kind) {
    case LogicalKind::kScan:
      label = "Scan($" + n.name + ")";
      break;
    case LogicalKind::kEval:
      label = std::string("Eval(") + ExprKindLabel(n.expr) + ")";
      break;
    case LogicalKind::kChildStep:
      label = "ChildStep(" + n.name + ")";
      break;
    case LogicalKind::kAxisStep:
      label = std::string("AxisStep(") + AxisLabel(n.axis) + "::" + n.name +
              ")";
      break;
    case LogicalKind::kDescendantStep:
      label = "DescendantStep(" + n.name + ")";
      label += n.access == AccessPath::kGuidedWalk
                   ? " [guided, " + std::to_string(n.expansions.size()) +
                         (n.expansions.size() == 1 ? " chain]" : " chains]")
                   : " [full-scan]";
      break;
    case LogicalKind::kFilter:
      label = "Filter";
      break;
    case LogicalKind::kAggregate:
      label = "Aggregate(" + n.name + ")";
      break;
    case LogicalKind::kConstruct:
      label = "Construct(<" + n.name + ">)";
      break;
    case LogicalKind::kEmpty:
      label = "Empty [statically empty]";
      break;
    case LogicalKind::kReturn:
      label = "Return";
      break;
    case LogicalKind::kSingleton:
      label = "Singleton";
      break;
    case LogicalKind::kFor:
      label = "For($" + n.name +
              (n.position_variable.empty() ? ""
                                           : " at $" + n.position_variable) +
              ")";
      break;
    case LogicalKind::kJoin:
      label = "Join($" + n.name + ")";
      break;
    case LogicalKind::kLet:
      label = "Let($" + n.name + ")";
      break;
    case LogicalKind::kWhere:
      label = "Where";
      break;
    case LogicalKind::kSort: {
      const size_t keys =
          n.order_source == nullptr ? 0 : n.order_source->order_by.size();
      label = "Sort(" + std::to_string(keys) +
              (keys == 1 ? " key)" : " keys)");
      break;
    }
  }
  if (!n.predicates.empty()) {
    label += " [" + std::to_string(n.predicates.size()) +
             (n.predicates.size() == 1 ? " pred]" : " preds]");
  }
  if (n.cardinality != Card::kUnknown) {
    label += std::string(" {card=") + CardName(n.cardinality) + "}";
  }
  return label;
}

void Render(const LogicalNode& n, int depth, std::string& out) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += NodeLabel(n);
  out.push_back('\n');
  for (const LogicalNodePtr& input : n.inputs) {
    Render(*input, depth + 1, out);
  }
}

class Builder {
 public:
  Builder(const PlanAnnotations* notes, const PlannerOptions& options)
      : notes_(notes), options_(options) {}

  LogicalNodePtr BuildItem(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kVariable: {
        auto node = std::make_unique<LogicalNode>(LogicalKind::kScan);
        node->name = e.variable;
        return node;
      }
      case ExprKind::kPath:
        return BuildPath(e);
      case ExprKind::kFilter: {
        auto node = std::make_unique<LogicalNode>(LogicalKind::kFilter);
        for (const auto& pred : e.children) {
          node->predicates.push_back(pred.get());
        }
        node->inputs.push_back(BuildItem(*e.lhs));
        return node;
      }
      case ExprKind::kFlwor:
        return BuildFlwor(e);
      case ExprKind::kConstructor: {
        auto node = std::make_unique<LogicalNode>(LogicalKind::kConstruct);
        node->name = e.element_name;
        node->expr = &e;
        return node;
      }
      case ExprKind::kFunctionCall:
        if (e.children.size() == 1 &&
            AggregateFunctions().count(e.function_name) != 0) {
          LogicalNodePtr arg = BuildItem(*e.children.front());
          if (arg->kind != LogicalKind::kEval) {
            auto node =
                std::make_unique<LogicalNode>(LogicalKind::kAggregate);
            node->name = e.function_name;
            node->inputs.push_back(std::move(arg));
            return node;
          }
        }
        return Fallback(e);
      default:
        return Fallback(e);
    }
  }

 private:
  LogicalNodePtr Fallback(const Expr& e) {
    auto node = std::make_unique<LogicalNode>(LogicalKind::kEval);
    node->expr = &e;
    return node;
  }

  std::vector<StepExpansion> ExpansionsFor(const Step& step) const {
    if (notes_ != nullptr) {
      auto it = notes_->step_expansions.find(&step);
      if (it != notes_->step_expansions.end()) return it->second;
    }
    return step.expansions;
  }

  Card CardinalityFor(const Expr& e) const {
    if (notes_ == nullptr) return Card::kUnknown;
    auto it = notes_->path_cardinality.find(&e);
    return it == notes_->path_cardinality.end() ? Card::kUnknown : it->second;
  }

  LogicalNodePtr BuildPath(const Expr& e) {
    if (e.path_from_root || e.path_root == nullptr) {
      // Absolute and context-relative paths need the interpreter's
      // document-node / dynamic-focus handling; no canned query takes
      // this shape at the top level.
      return Fallback(e);
    }
    LogicalNodePtr current = BuildItem(*e.path_root);
    for (size_t i = 0; i < e.steps.size(); ++i) {
      const Step& step = e.steps[i];
      // `//name` fusion, mirroring the interpreter's condition — except
      // that the plan fuses even without analyzer chains (the full-scan
      // descendant operator selects the same nodes the unfused step pair
      // does, per-parent groups preserving predicate positions).
      if (step.axis == Axis::kDescendantOrSelf && step.name_test == "*" &&
          step.predicates.empty() && i + 1 < e.steps.size() &&
          e.steps[i + 1].axis == Axis::kChild) {
        const Step& target = e.steps[i + 1];
        auto node =
            std::make_unique<LogicalNode>(LogicalKind::kDescendantStep);
        node->name = target.name_test;
        for (const auto& pred : target.predicates) {
          node->predicates.push_back(pred.get());
        }
        node->expansions = ExpansionsFor(target);
        node->access = options_.guided && !node->expansions.empty()
                           ? AccessPath::kGuidedWalk
                           : AccessPath::kFullScan;
        node->inputs.push_back(std::move(current));
        current = std::move(node);
        ++i;
        continue;
      }
      auto node = std::make_unique<LogicalNode>(
          step.axis == Axis::kChild ? LogicalKind::kChildStep
                                    : LogicalKind::kAxisStep);
      node->name = step.name_test;
      node->axis = step.axis;
      for (const auto& pred : step.predicates) {
        node->predicates.push_back(pred.get());
      }
      node->inputs.push_back(std::move(current));
      current = std::move(node);
    }
    current->cardinality = CardinalityFor(e);
    if (options_.trust_statistics &&
        current->cardinality == Card::kEmpty) {
      // Cardinality rewrite: the instance statistics bound this path to
      // zero matches. The pruned subtree stays attached for explain
      // output; execution never opens it.
      auto empty = std::make_unique<LogicalNode>(LogicalKind::kEmpty);
      empty->cardinality = Card::kEmpty;
      empty->inputs.push_back(std::move(current));
      return empty;
    }
    return current;
  }

  LogicalNodePtr BuildFlwor(const Expr& e) {
    auto pipe = std::make_unique<LogicalNode>(LogicalKind::kSingleton);
    LogicalNodePtr pipeline = std::move(pipe);
    const size_t scope_mark = scope_vars_.size();
    size_t fi = 0;
    size_t li = 0;
    bool first_for = true;
    for (char kind : e.clause_order) {
      if (kind == 'f') {
        const ForClause& clause = e.for_clauses[fi++];
        // An input with no free variable bound anywhere in the enclosing
        // pipeline is tuple-invariant: evaluate it once (nested-loop join
        // with a materialized right side) instead of once per tuple.
        bool independent = !first_for && !scope_vars_.empty();
        if (independent) {
          for (const std::string& name : FreeVariables(*clause.input)) {
            if (InScope(name)) {
              independent = false;
              break;
            }
          }
        }
        auto node = std::make_unique<LogicalNode>(
            independent ? LogicalKind::kJoin : LogicalKind::kFor);
        node->name = clause.variable;
        node->position_variable = clause.position_variable;
        node->inputs.push_back(std::move(pipeline));
        node->inputs.push_back(BuildItem(*clause.input));
        pipeline = std::move(node);
        scope_vars_.push_back(clause.variable);
        if (!clause.position_variable.empty()) {
          scope_vars_.push_back(clause.position_variable);
        }
        first_for = false;
      } else {
        const LetClause& clause = e.let_clauses[li++];
        auto node = std::make_unique<LogicalNode>(LogicalKind::kLet);
        node->name = clause.variable;
        node->inputs.push_back(std::move(pipeline));
        node->inputs.push_back(BuildItem(*clause.value));
        pipeline = std::move(node);
        scope_vars_.push_back(clause.variable);
      }
    }
    if (e.where != nullptr) {
      auto node = std::make_unique<LogicalNode>(LogicalKind::kWhere);
      node->expr = e.where.get();
      node->inputs.push_back(std::move(pipeline));
      pipeline = std::move(node);
    }
    if (!e.order_by.empty()) {
      auto node = std::make_unique<LogicalNode>(LogicalKind::kSort);
      node->order_source = &e;
      node->inputs.push_back(std::move(pipeline));
      pipeline = std::move(node);
    }
    auto ret = std::make_unique<LogicalNode>(LogicalKind::kReturn);
    ret->inputs.push_back(std::move(pipeline));
    ret->inputs.push_back(BuildItem(*e.return_expr));
    scope_vars_.resize(scope_mark);
    return ret;
  }

  bool InScope(const std::string& name) const {
    for (const std::string& var : scope_vars_) {
      if (var == name) return true;
    }
    return false;
  }

  const PlanAnnotations* notes_;
  const PlannerOptions& options_;
  /// FLWOR variables visible at the point being compiled (outer pipelines
  /// included) — the set a kJoin input must be disjoint from.
  std::vector<std::string> scope_vars_;
};

}  // namespace

const char* ExprKindLabel(const Expr* e) {
  if (e == nullptr) return "expr";
  switch (e->kind) {
    case ExprKind::kStringLiteral:
      return "string-literal";
    case ExprKind::kNumberLiteral:
      return "number-literal";
    case ExprKind::kVariable:
      return "variable";
    case ExprKind::kContextItem:
      return "context-item";
    case ExprKind::kSequence:
      return "sequence";
    case ExprKind::kPath:
      return "path";
    case ExprKind::kComparison:
      return "comparison";
    case ExprKind::kArithmetic:
      return "arithmetic";
    case ExprKind::kLogical:
      return "logical";
    case ExprKind::kFunctionCall:
      return "function-call";
    case ExprKind::kFlwor:
      return "flwor";
    case ExprKind::kQuantified:
      return "quantified";
    case ExprKind::kIfThenElse:
      return "if-then-else";
    case ExprKind::kConstructor:
      return "constructor";
    case ExprKind::kFilter:
      return "filter";
    case ExprKind::kRange:
      return "range";
    case ExprKind::kUnion:
      return "union";
  }
  return "expr";
}

const char* AxisLabel(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kSelf:
      return "self";
    case Axis::kParent:
      return "parent";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
  }
  return "?";
}

const char* CardName(Card card) {
  switch (card) {
    case Card::kUnknown:
      return "unknown";
    case Card::kEmpty:
      return "empty";
    case Card::kAtMostOne:
      return "at-most-one";
    case Card::kMany:
      return "many";
  }
  return "?";
}

std::vector<std::string> FreeVariables(const Expr& expr) {
  std::set<std::string> free;
  CollectFree(expr, {}, free);
  return {free.begin(), free.end()};
}

std::string LogicalPlan::ToString() const {
  std::string out;
  if (root != nullptr) Render(*root, 0, out);
  return out;
}

Result<LogicalPlan> BuildLogicalPlan(const Expr& query,
                                     const PlanAnnotations* notes,
                                     const PlannerOptions& options) {
  Builder builder(notes, options);
  LogicalPlan plan;
  plan.max_intra_parallelism = std::max(options.max_intra_parallelism, 1);
  plan.root = builder.BuildItem(query);
  if (plan.root == nullptr) {
    return Status::Internal("logical planning produced no root");
  }
  return plan;
}

}  // namespace xbench::xquery::plan
