#include "xquery/plan/logical.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "common/strings.h"

namespace xbench::xquery::plan {
namespace {

/// Sequence functions whose single argument compiles to an item sub-plan
/// (the argument is the operator input; the function body stays the
/// interpreter's CallFunction).
const std::set<std::string>& AggregateFunctions() {
  static const auto* kFns = new std::set<std::string>{
      "count", "sum",    "avg",   "min",           "max",
      "data",  "empty",  "exists", "distinct-values"};
  return *kFns;
}

void CollectFree(const Expr& e, std::set<std::string> bound,
                 std::set<std::string>& free);

void CollectFreePredicates(const std::vector<Step>& steps,
                           const std::set<std::string>& bound,
                           std::set<std::string>& free) {
  for (const Step& step : steps) {
    for (const auto& pred : step.predicates) {
      CollectFree(*pred, bound, free);
    }
  }
}

void CollectFree(const Expr& e, std::set<std::string> bound,
                 std::set<std::string>& free) {
  switch (e.kind) {
    case ExprKind::kVariable:
      if (bound.count(e.variable) == 0) free.insert(e.variable);
      return;
    case ExprKind::kFlwor: {
      size_t fi = 0;
      size_t li = 0;
      for (char kind : e.clause_order) {
        if (kind == 'f') {
          const ForClause& clause = e.for_clauses[fi++];
          CollectFree(*clause.input, bound, free);
          bound.insert(clause.variable);
          if (!clause.position_variable.empty()) {
            bound.insert(clause.position_variable);
          }
        } else {
          const LetClause& clause = e.let_clauses[li++];
          CollectFree(*clause.value, bound, free);
          bound.insert(clause.variable);
        }
      }
      if (e.where != nullptr) CollectFree(*e.where, bound, free);
      for (const OrderSpec& spec : e.order_by) {
        CollectFree(*spec.key, bound, free);
      }
      CollectFree(*e.return_expr, bound, free);
      return;
    }
    case ExprKind::kQuantified:
      CollectFree(*e.quant_input, bound, free);
      bound.insert(e.quant_variable);
      CollectFree(*e.quant_satisfies, bound, free);
      return;
    default:
      break;
  }
  if (e.path_root != nullptr) CollectFree(*e.path_root, bound, free);
  CollectFreePredicates(e.steps, bound, free);
  for (const auto& child : e.children) CollectFree(*child, bound, free);
  if (e.lhs != nullptr) CollectFree(*e.lhs, bound, free);
  if (e.rhs != nullptr) CollectFree(*e.rhs, bound, free);
  if (e.then_branch != nullptr) CollectFree(*e.then_branch, bound, free);
  if (e.else_branch != nullptr) CollectFree(*e.else_branch, bound, free);
  for (const ConstructorAttr& attr : e.constructor_attrs) {
    for (const ConstructorContent& part : attr.value_parts) {
      if (part.expr != nullptr) CollectFree(*part.expr, bound, free);
    }
  }
  for (const ConstructorContent& part : e.constructor_content) {
    if (part.expr != nullptr) CollectFree(*part.expr, bound, free);
    if (part.child != nullptr) CollectFree(*part.child, bound, free);
  }
}

std::string FormatEstimate(double rows) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", rows);
  return buf;
}

std::string NodeLabel(const LogicalNode& n) {
  std::string label;
  switch (n.kind) {
    case LogicalKind::kScan:
      label = "Scan($" + n.name + ")";
      break;
    case LogicalKind::kEval:
      label = std::string("Eval(") + ExprKindLabel(n.expr) + ")";
      break;
    case LogicalKind::kChildStep:
      label = "ChildStep(" + n.name + ")";
      break;
    case LogicalKind::kAxisStep:
      label = std::string("AxisStep(") + AxisLabel(n.axis) + "::" + n.name +
              ")";
      break;
    case LogicalKind::kDescendantStep:
      label = "DescendantStep(" + n.name + ")";
      label += n.access == AccessPath::kGuidedWalk
                   ? " [guided, " + std::to_string(n.expansions.size()) +
                         (n.expansions.size() == 1 ? " chain]" : " chains]")
                   : " [full-scan]";
      break;
    case LogicalKind::kFilter:
      label = "Filter";
      break;
    case LogicalKind::kAggregate:
      label = "Aggregate(" + n.name + ")";
      break;
    case LogicalKind::kConstruct:
      label = "Construct(<" + n.name + ">)";
      break;
    case LogicalKind::kEmpty:
      label = "Empty [statically empty]";
      break;
    case LogicalKind::kIndexScan:
      label = "IndexScan(" + n.probe->index + " = \"" + n.probe->key + "\")";
      break;
    case LogicalKind::kIndexRangeScan:
      label = "IndexRangeScan(" + n.probe->index + " in [\"" + n.probe->lo +
              "\" .. \"" + n.probe->hi + "\"])";
      break;
    case LogicalKind::kTextProbe:
      label = "TextIndexProbe(" + n.probe->index + " ~ \"" + n.probe->word +
              "\")";
      break;
    case LogicalKind::kReturn:
      label = "Return";
      break;
    case LogicalKind::kSingleton:
      label = "Singleton";
      break;
    case LogicalKind::kFor:
      label = "For($" + n.name +
              (n.position_variable.empty() ? ""
                                           : " at $" + n.position_variable) +
              ")";
      break;
    case LogicalKind::kJoin:
      label = "Join($" + n.name + ")";
      break;
    case LogicalKind::kLet:
      label = "Let($" + n.name + ")";
      break;
    case LogicalKind::kWhere:
      label = "Where";
      break;
    case LogicalKind::kSort: {
      const size_t keys =
          n.order_source == nullptr ? 0 : n.order_source->order_by.size();
      label = "Sort(" + std::to_string(keys) +
              (keys == 1 ? " key)" : " keys)");
      break;
    }
  }
  if (!n.predicates.empty()) {
    label += " [" + std::to_string(n.predicates.size()) +
             (n.predicates.size() == 1 ? " pred]" : " preds]");
  }
  if (n.cardinality != Card::kUnknown) {
    label += std::string(" {card=") + CardName(n.cardinality) + "}";
  }
  if (n.estimated_rows >= 0) {
    label += " {est=" + FormatEstimate(n.estimated_rows) + "}";
  }
  return label;
}

void Render(const LogicalNode& n, int depth, std::string& out) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += NodeLabel(n);
  out.push_back('\n');
  for (const LogicalNodePtr& input : n.inputs) {
    Render(*input, depth + 1, out);
  }
}

class Builder {
 public:
  Builder(const PlanAnnotations* notes, const CompilationOptions& options,
          bool guided_allowed)
      : notes_(notes), options_(options), guided_allowed_(guided_allowed) {}

  LogicalNodePtr BuildItem(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kVariable: {
        auto node = std::make_unique<LogicalNode>(LogicalKind::kScan);
        node->name = e.variable;
        return node;
      }
      case ExprKind::kPath:
        return BuildPath(e);
      case ExprKind::kFilter: {
        auto node = std::make_unique<LogicalNode>(LogicalKind::kFilter);
        for (const auto& pred : e.children) {
          node->predicates.push_back(pred.get());
        }
        node->inputs.push_back(BuildItem(*e.lhs));
        return node;
      }
      case ExprKind::kFlwor:
        return BuildFlwor(e);
      case ExprKind::kConstructor: {
        auto node = std::make_unique<LogicalNode>(LogicalKind::kConstruct);
        node->name = e.element_name;
        node->expr = &e;
        return node;
      }
      case ExprKind::kFunctionCall:
        if (e.children.size() == 1 &&
            AggregateFunctions().count(e.function_name) != 0) {
          LogicalNodePtr arg = BuildItem(*e.children.front());
          if (arg->kind != LogicalKind::kEval) {
            auto node =
                std::make_unique<LogicalNode>(LogicalKind::kAggregate);
            node->name = e.function_name;
            node->inputs.push_back(std::move(arg));
            return node;
          }
        }
        return Fallback(e);
      default:
        return Fallback(e);
    }
  }

 private:
  LogicalNodePtr Fallback(const Expr& e) {
    auto node = std::make_unique<LogicalNode>(LogicalKind::kEval);
    node->expr = &e;
    return node;
  }

  std::vector<StepExpansion> ExpansionsFor(const Step& step) const {
    if (notes_ != nullptr) {
      auto it = notes_->step_expansions.find(&step);
      if (it != notes_->step_expansions.end()) return it->second;
    }
    return step.expansions;
  }

  Card CardinalityFor(const Expr& e) const {
    if (notes_ == nullptr) return Card::kUnknown;
    auto it = notes_->path_cardinality.find(&e);
    return it == notes_->path_cardinality.end() ? Card::kUnknown : it->second;
  }

  LogicalNodePtr BuildPath(const Expr& e) {
    if (e.path_from_root || e.path_root == nullptr) {
      // Absolute and context-relative paths need the interpreter's
      // document-node / dynamic-focus handling; no canned query takes
      // this shape at the top level.
      return Fallback(e);
    }
    LogicalNodePtr current = BuildItem(*e.path_root);
    for (size_t i = 0; i < e.steps.size(); ++i) {
      const Step& step = e.steps[i];
      // `//name` fusion, mirroring the interpreter's condition — except
      // that the plan fuses even without analyzer chains (the full-scan
      // descendant operator selects the same nodes the unfused step pair
      // does, per-parent groups preserving predicate positions).
      if (step.axis == Axis::kDescendantOrSelf && step.name_test == "*" &&
          step.predicates.empty() && i + 1 < e.steps.size() &&
          e.steps[i + 1].axis == Axis::kChild) {
        const Step& target = e.steps[i + 1];
        auto node =
            std::make_unique<LogicalNode>(LogicalKind::kDescendantStep);
        node->name = target.name_test;
        for (const auto& pred : target.predicates) {
          node->predicates.push_back(pred.get());
        }
        node->expansions = ExpansionsFor(target);
        node->access = guided_allowed_ && !node->expansions.empty()
                           ? AccessPath::kGuidedWalk
                           : AccessPath::kFullScan;
        node->inputs.push_back(std::move(current));
        current = std::move(node);
        ++i;
        continue;
      }
      auto node = std::make_unique<LogicalNode>(
          step.axis == Axis::kChild ? LogicalKind::kChildStep
                                    : LogicalKind::kAxisStep);
      node->name = step.name_test;
      node->axis = step.axis;
      for (const auto& pred : step.predicates) {
        node->predicates.push_back(pred.get());
      }
      node->inputs.push_back(std::move(current));
      current = std::move(node);
    }
    current->cardinality = CardinalityFor(e);
    if (options_.cost_model.trust_statistics &&
        current->cardinality == Card::kEmpty) {
      // Cardinality rewrite: the instance statistics bound this path to
      // zero matches. The pruned subtree stays attached for explain
      // output; execution never opens it.
      auto empty = std::make_unique<LogicalNode>(LogicalKind::kEmpty);
      empty->cardinality = Card::kEmpty;
      empty->inputs.push_back(std::move(current));
      return empty;
    }
    return current;
  }

  LogicalNodePtr BuildFlwor(const Expr& e) {
    auto pipe = std::make_unique<LogicalNode>(LogicalKind::kSingleton);
    LogicalNodePtr pipeline = std::move(pipe);
    const size_t scope_mark = scope_vars_.size();
    size_t fi = 0;
    size_t li = 0;
    bool first_for = true;
    for (char kind : e.clause_order) {
      if (kind == 'f') {
        const ForClause& clause = e.for_clauses[fi++];
        // An input with no free variable bound anywhere in the enclosing
        // pipeline is tuple-invariant: evaluate it once (nested-loop join
        // with a materialized right side) instead of once per tuple.
        bool independent = !first_for && !scope_vars_.empty();
        if (independent) {
          for (const std::string& name : FreeVariables(*clause.input)) {
            if (InScope(name)) {
              independent = false;
              break;
            }
          }
        }
        auto node = std::make_unique<LogicalNode>(
            independent ? LogicalKind::kJoin : LogicalKind::kFor);
        node->name = clause.variable;
        node->position_variable = clause.position_variable;
        node->inputs.push_back(std::move(pipeline));
        node->inputs.push_back(BuildItem(*clause.input));
        pipeline = std::move(node);
        scope_vars_.push_back(clause.variable);
        if (!clause.position_variable.empty()) {
          scope_vars_.push_back(clause.position_variable);
        }
        first_for = false;
      } else {
        const LetClause& clause = e.let_clauses[li++];
        auto node = std::make_unique<LogicalNode>(LogicalKind::kLet);
        node->name = clause.variable;
        node->inputs.push_back(std::move(pipeline));
        node->inputs.push_back(BuildItem(*clause.value));
        pipeline = std::move(node);
        scope_vars_.push_back(clause.variable);
      }
    }
    if (e.where != nullptr) {
      auto node = std::make_unique<LogicalNode>(LogicalKind::kWhere);
      node->expr = e.where.get();
      node->inputs.push_back(std::move(pipeline));
      pipeline = std::move(node);
    }
    if (!e.order_by.empty()) {
      auto node = std::make_unique<LogicalNode>(LogicalKind::kSort);
      node->order_source = &e;
      node->inputs.push_back(std::move(pipeline));
      pipeline = std::move(node);
    }
    auto ret = std::make_unique<LogicalNode>(LogicalKind::kReturn);
    ret->inputs.push_back(std::move(pipeline));
    ret->inputs.push_back(BuildItem(*e.return_expr));
    scope_vars_.resize(scope_mark);
    return ret;
  }

  bool InScope(const std::string& name) const {
    for (const std::string& var : scope_vars_) {
      if (var == name) return true;
    }
    return false;
  }

  const PlanAnnotations* notes_;
  const CompilationOptions& options_;
  const bool guided_allowed_;
  /// FLWOR variables visible at the point being compiled (outer pipelines
  /// included) — the set a kJoin input must be disjoint from.
  std::vector<std::string> scope_vars_;
};

// ---------------------------------------------------------------------------
// Access-path selection: pattern matching + costing of index probes.
// ---------------------------------------------------------------------------

/// True when `text` parses as a number. Probes are restricted to
/// non-numeric literals: the evaluator's general comparison switches to
/// numeric semantics when both operands atomize to numbers, which a
/// string-keyed B+-tree cannot answer ("42" vs "042").
bool IsNumericText(const std::string& text) {
  return !std::isnan(ParseDouble(text));
}

bool IsWordChar(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z') || c == '_';
}

/// True when `word` tokenizes to itself — the only literals a word probe
/// against the inverted index can answer (ContainsWord's boundaries and
/// the index tokenizer agree on [A-Za-z0-9_] runs).
bool IsWordToken(const std::string& word) {
  if (word.empty()) return false;
  for (char c : word) {
    if (!IsWordChar(c)) return false;
  }
  return true;
}

/// Predicates whose static form can never yield a numeric singleton, so
/// the evaluator's positional-predicate rule ((double)(pos) == value)
/// cannot trigger. Index probes re-apply predicates against a candidate
/// set with different positions than the original enumeration, which is
/// only sound when every predicate on the step is value-based.
bool PredicateStaticallyNonPositional(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kComparison:
    case ExprKind::kLogical:
    case ExprKind::kQuantified:
      return true;
    case ExprKind::kPath:
    case ExprKind::kFilter:
      // Node-sequence existence tests.
      return true;
    case ExprKind::kFunctionCall:
      return e.function_name == "empty" || e.function_name == "exists" ||
             e.function_name == "not" || e.function_name == "contains" ||
             e.function_name == "contains-word" ||
             e.function_name == "starts-with";
    default:
      return false;
  }
}

bool AllPredicatesNonPositional(const LogicalNode& node) {
  for (const Expr* pred : node.predicates) {
    if (pred == nullptr || !PredicateStaticallyNonPositional(*pred)) {
      return false;
    }
  }
  return true;
}

/// A context-relative single step ("hw", "@id"): returns the step, else
/// null.
const Step* SingleRelativeStep(const Expr& e) {
  if (e.kind != ExprKind::kPath || e.path_from_root ||
      e.path_root != nullptr || e.steps.size() != 1) {
    return nullptr;
  }
  const Step& step = e.steps.front();
  if (!step.predicates.empty() || step.name_test == "*") return nullptr;
  return &step;
}

/// `[self::N]` predicate: returns N, else "".
std::string SelfTestName(const Expr& pred) {
  const Step* step = SingleRelativeStep(pred);
  if (step != nullptr && step->axis == Axis::kSelf) return step->name_test;
  return "";
}

/// Matched `rel-path = "literal"` equality (either operand order).
struct ValueEqMatch {
  const Step* step = nullptr;  // child:: or attribute:: single step
  std::string literal;
};

std::optional<ValueEqMatch> MatchValueEq(const Expr& pred) {
  if (pred.kind != ExprKind::kComparison ||
      pred.compare_op != CompareOp::kEq || pred.lhs == nullptr ||
      pred.rhs == nullptr) {
    return std::nullopt;
  }
  const Expr* path = pred.lhs.get();
  const Expr* lit = pred.rhs.get();
  if (path->kind == ExprKind::kStringLiteral) std::swap(path, lit);
  if (lit->kind != ExprKind::kStringLiteral ||
      IsNumericText(lit->string_value)) {
    return std::nullopt;
  }
  const Step* step = SingleRelativeStep(*path);
  if (step == nullptr ||
      (step->axis != Axis::kChild && step->axis != Axis::kAttribute)) {
    return std::nullopt;
  }
  return ValueEqMatch{step, lit->string_value};
}

/// Matched `$v/child >= "lo"` / `$v/child <= "hi"` bound (either operand
/// order; `"lo" <= $v/child` normalizes to a lower bound).
struct RangeBoundMatch {
  std::string variable;
  std::string child;
  std::string literal;
  bool lower = false;
};

std::optional<RangeBoundMatch> MatchRangeBound(const Expr& e) {
  if (e.kind != ExprKind::kComparison || e.lhs == nullptr ||
      e.rhs == nullptr) {
    return std::nullopt;
  }
  if (e.compare_op != CompareOp::kGe && e.compare_op != CompareOp::kLe) {
    return std::nullopt;
  }
  const Expr* path = e.lhs.get();
  const Expr* lit = e.rhs.get();
  bool lower = e.compare_op == CompareOp::kGe;  // path >= lit
  if (path->kind == ExprKind::kStringLiteral) {
    std::swap(path, lit);
    lower = !lower;  // lit <= path  ==  path >= lit
  }
  if (lit->kind != ExprKind::kStringLiteral ||
      IsNumericText(lit->string_value)) {
    return std::nullopt;
  }
  if (path->kind != ExprKind::kPath || path->path_from_root ||
      path->path_root == nullptr ||
      path->path_root->kind != ExprKind::kVariable ||
      path->steps.size() != 1) {
    return std::nullopt;
  }
  const Step& step = path->steps.front();
  if (step.axis != Axis::kChild || !step.predicates.empty() ||
      step.name_test == "*") {
    return std::nullopt;
  }
  return RangeBoundMatch{path->path_root->variable, step.name_test,
                         lit->string_value, lower};
}

/// True when `e` is a downward path (child/descendant/self/attribute axes
/// only) rooted at one of `vars` — or a bare variable reference. Probing
/// text from such expressions is complete: every word they can see lives
/// in the subtree of the bound element.
bool IsDownwardFromVars(const Expr& e, const std::set<std::string>& vars) {
  if (e.kind == ExprKind::kVariable) return vars.count(e.variable) != 0;
  if (e.kind != ExprKind::kPath || e.path_from_root ||
      e.path_root == nullptr || e.path_root->kind != ExprKind::kVariable ||
      vars.count(e.path_root->variable) == 0) {
    return false;
  }
  for (const Step& step : e.steps) {
    if (step.axis != Axis::kChild && step.axis != Axis::kDescendant &&
        step.axis != Axis::kDescendantOrSelf && step.axis != Axis::kSelf &&
        step.axis != Axis::kAttribute) {
      return false;
    }
  }
  return true;
}

/// Finds a `contains-word(<downward path from vars>, "word")` call in `e`,
/// descending through and-conjunctions and some-quantifiers whose input is
/// itself downward from `vars` (the quantified variable joins the set).
std::string FindContainsWord(const Expr& e, std::set<std::string> vars) {
  switch (e.kind) {
    case ExprKind::kFunctionCall:
      if (e.function_name == "contains-word" && e.children.size() == 2 &&
          IsDownwardFromVars(*e.children[0], vars) &&
          e.children[1]->kind == ExprKind::kStringLiteral &&
          IsWordToken(e.children[1]->string_value)) {
        return e.children[1]->string_value;
      }
      return "";
    case ExprKind::kLogical: {
      if (e.logical_op != LogicalOp::kAnd) return "";
      if (e.lhs != nullptr) {
        std::string word = FindContainsWord(*e.lhs, vars);
        if (!word.empty()) return word;
      }
      return e.rhs != nullptr ? FindContainsWord(*e.rhs, vars) : "";
    }
    case ExprKind::kQuantified: {
      if (e.quantifier_every || e.quant_input == nullptr ||
          e.quant_satisfies == nullptr ||
          !IsDownwardFromVars(*e.quant_input, vars)) {
        return "";
      }
      vars.insert(e.quant_variable);
      return FindContainsWord(*e.quant_satisfies, vars);
    }
    default:
      return "";
  }
}

/// Flattens a where expression's top-level and-conjunction.
void FlattenConjuncts(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind == ExprKind::kLogical && e.logical_op == LogicalOp::kAnd) {
    if (e.lhs != nullptr) FlattenConjuncts(*e.lhs, out);
    if (e.rhs != nullptr) FlattenConjuncts(*e.rhs, out);
    return;
  }
  out.push_back(&e);
}

/// The shapes an index probe can replace: a step or filter directly over
/// a variable scan. The probe validates every index candidate against the
/// scanned root set plus this structural context, so its output is always
/// the subset of index postings the replaced subtree would have produced.
struct DrivingShape {
  bool ok = false;
  ProbeContext context = ProbeContext::kRoots;
  std::string target;  // step name test; "" for kRoots
  std::string source;  // scanned variable name
};

DrivingShape MatchDrivingShape(const LogicalNode& node) {
  DrivingShape shape;
  if (node.kind == LogicalKind::kScan) {
    shape.ok = node.predicates.empty();
    shape.context = ProbeContext::kRoots;
    shape.source = node.name;
    return shape;
  }
  if (node.inputs.size() != 1 ||
      node.inputs[0]->kind != LogicalKind::kScan ||
      !AllPredicatesNonPositional(node)) {
    return shape;
  }
  shape.source = node.inputs[0]->name;
  switch (node.kind) {
    case LogicalKind::kFilter:
      shape.ok = true;
      shape.context = ProbeContext::kRoots;
      return shape;
    case LogicalKind::kChildStep:
      shape.ok = node.name != "*";
      shape.context = ProbeContext::kRootChildren;
      shape.target = node.name;
      return shape;
    case LogicalKind::kDescendantStep:
      shape.ok = node.name != "*";
      shape.context = ProbeContext::kRootDescendants;
      shape.target = node.name;
      return shape;
    default:
      return shape;
  }
}

/// Cost-based probe selection over a built logical plan. Runs only for
/// AccessPathMode::kAuto (probe when estimated cheaper than the best
/// walk) and kForceIndex (probe wherever eligible).
class AccessPathSelector {
 public:
  AccessPathSelector(const CompilationOptions& options,
                     const IndexCatalog& catalog)
      : options_(options), catalog_(catalog) {}

  void Run(LogicalPlan& plan) {
    if (plan.root != nullptr) Visit(plan.root);
    plan.access_path_summary = Summary(plan);
  }

  const std::vector<std::string>& chosen() const { return chosen_; }

 private:
  bool ForceIndex() const {
    return options_.access_path.mode == AccessPathMode::kForceIndex;
  }

  bool IndexAllowed(const std::string& name) const {
    const std::string& forced = options_.access_path.forced_index;
    return forced.empty() || forced == name;
  }

  uint64_t CountOf(const std::string& name) const {
    auto it = catalog_.collection.elements_by_name.find(name);
    return it == catalog_.collection.elements_by_name.end() ? 0 : it->second;
  }

  /// Estimated cost of running the replaced subtree once (node visits).
  double WalkCost(const LogicalNode& node) const {
    const CostModelOptions& cm = options_.cost_model;
    const double docs =
        static_cast<double>(catalog_.collection.documents);
    switch (node.kind) {
      case LogicalKind::kScan:
      case LogicalKind::kFilter:
        return docs * cm.node_visit_cost;
      case LogicalKind::kChildStep:
        return (docs + static_cast<double>(CountOf(node.name))) *
               cm.node_visit_cost;
      case LogicalKind::kDescendantStep: {
        if (node.access == AccessPath::kGuidedWalk) {
          double visits = docs;
          for (const StepExpansion& chain : node.expansions) {
            for (const std::string& label : chain.labels) {
              visits += static_cast<double>(CountOf(label));
            }
          }
          return visits * cm.node_visit_cost;
        }
        return static_cast<double>(catalog_.collection.total_elements) *
               cm.node_visit_cost;
      }
      default:
        return static_cast<double>(catalog_.collection.total_elements) *
               cm.node_visit_cost;
    }
  }

  double ProbeCost(const IndexStats& stats, double estimated_rows) const {
    const CostModelOptions& cm = options_.cost_model;
    return static_cast<double>(stats.height) * cm.page_read_cost +
           estimated_rows * cm.posting_resolve_cost;
  }

  bool Beats(double probe_cost, double walk_cost) const {
    if (ForceIndex()) return true;
    return probe_cost <
           options_.cost_model.index_advantage_margin * walk_cost;
  }

  /// Wraps `node` (moving it under the wrapper as runtime fallback) with
  /// a probe of `kind`; the wrapper inherits the original's predicates as
  /// residual re-checks and gets a fresh scan of the source variable to
  /// validate candidates against.
  void Wrap(LogicalNodePtr& node, LogicalKind kind, IndexProbe probe,
            double estimated_rows, const std::string& source) {
    auto wrapper = std::make_unique<LogicalNode>(kind);
    probe.catalog_epoch = catalog_.epoch;
    wrapper->probe = std::move(probe);
    wrapper->estimated_rows = estimated_rows;
    wrapper->predicates = node->predicates;
    wrapper->cardinality = node->cardinality;
    auto roots = std::make_unique<LogicalNode>(LogicalKind::kScan);
    roots->name = source;
    wrapper->inputs.push_back(std::move(node));
    wrapper->inputs.push_back(std::move(roots));
    node = std::move(wrapper);
    chosen_.push_back(NodeLabel(*node));
  }

  /// Equality probe on a step/filter whose input is a variable scan
  /// (Q5/Q8/Q12-style `item[@id = "…"]`, `//entry[hw = "…"]`,
  /// `$input[self::order][@id = "…"]`).
  bool TryValueProbe(LogicalNodePtr& node) {
    const DrivingShape shape = MatchDrivingShape(*node);
    if (!shape.ok || node->predicates.empty()) return false;
    for (const Expr* pred : node->predicates) {
      auto eq = MatchValueEq(*pred);
      if (!eq.has_value()) continue;
      std::string path;
      bool is_attribute = eq->step->axis == Axis::kAttribute;
      if (is_attribute) {
        // Attribute postings are keyed by owning element name; resolve it
        // from the step target, a [self::N] predicate, or — for a bare
        // root filter — the collection's single root tag.
        std::string owner = shape.target;
        if (owner.empty()) {
          for (const Expr* p : node->predicates) {
            std::string self_name = SelfTestName(*p);
            if (!self_name.empty()) {
              owner = self_name;
              break;
            }
          }
        }
        if (owner.empty() &&
            catalog_.collection.root_names.size() == 1) {
          owner = catalog_.collection.root_names.front();
        }
        if (owner.empty()) continue;
        path = owner + "/@" + eq->step->name_test;
      } else {
        path = eq->step->name_test;
      }
      const IndexStats* stats = catalog_.FindValueIndexForPath(path);
      if (stats == nullptr || !IndexAllowed(stats->name)) continue;
      const double est =
          static_cast<double>(stats->entries) /
          static_cast<double>(std::max<uint64_t>(stats->distinct_keys, 1));
      if (!Beats(ProbeCost(*stats, est), WalkCost(*node))) continue;
      IndexProbe probe;
      probe.kind = ProbeKind::kValueEquals;
      probe.context = shape.context;
      probe.index = stats->name;
      probe.key = eq->literal;
      probe.key_is_attribute = is_attribute;
      probe.target_name = shape.target;
      Wrap(node, LogicalKind::kIndexScan, std::move(probe), est,
           shape.source);
      return true;
    }
    return false;
  }

  /// Walks a tuple pipeline (inputs[0] chain) looking for the kFor that
  /// binds `variable` with an index-eligible driving input.
  LogicalNode* FindFor(LogicalNode& pipeline, const std::string& variable) {
    for (LogicalNode* node = &pipeline; node != nullptr;
         node = node->inputs.empty() ? nullptr : node->inputs[0].get()) {
      if (node->kind == LogicalKind::kFor && node->name == variable) {
        // Probing filters the for's item sequence early, which is only
        // sound when tuple positions cannot be observed.
        if (!node->position_variable.empty()) return nullptr;
        return node;
      }
      switch (node->kind) {
        case LogicalKind::kFor:
        case LogicalKind::kJoin:
        case LogicalKind::kLet:
        case LogicalKind::kWhere:
        case LogicalKind::kSort:
          continue;
        default:
          return nullptr;
      }
    }
    return nullptr;
  }

  /// Range + text probes driven from a where clause. The where stays in
  /// the pipeline and re-checks every conjunct exactly, so the probe only
  /// needs to produce a superset of the items that can pass — which lets
  /// it drop whole documents/subtrees the index proves word- or key-free.
  void TryWhereProbes(LogicalNode& where) {
    if (where.expr == nullptr || where.inputs.empty()) return;
    std::vector<const Expr*> conjuncts;
    FlattenConjuncts(*where.expr, conjuncts);
    TryRangeProbe(where, conjuncts);
    TryTextProbe(where, conjuncts);
  }

  void TryRangeProbe(LogicalNode& where,
                     const std::vector<const Expr*>& conjuncts) {
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      auto lo = MatchRangeBound(*conjuncts[i]);
      if (!lo.has_value() || !lo->lower) continue;
      for (size_t j = 0; j < conjuncts.size(); ++j) {
        auto hi = MatchRangeBound(*conjuncts[j]);
        if (!hi.has_value() || hi->lower || hi->variable != lo->variable ||
            hi->child != lo->child || hi->literal < lo->literal) {
          continue;
        }
        LogicalNode* for_node = FindFor(*where.inputs[0], lo->variable);
        if (for_node == nullptr || for_node->inputs.size() != 2) continue;
        LogicalNodePtr& driving = for_node->inputs[1];
        const DrivingShape shape = MatchDrivingShape(*driving);
        if (!shape.ok) continue;
        const IndexStats* stats = catalog_.FindValueIndexForPath(lo->child);
        // A conjunction pair only decomposes into one interval probe when
        // the path is single-valued per element (`d >= lo and d <= hi`
        // with two different d's has no witness in [lo, hi]).
        if (stats == nullptr || !stats->single_valued ||
            !IndexAllowed(stats->name)) {
          continue;
        }
        const double est = static_cast<double>(stats->entries) / 3.0;
        if (!Beats(ProbeCost(*stats, est), WalkCost(*driving))) continue;
        IndexProbe probe;
        probe.kind = ProbeKind::kValueRange;
        probe.context = shape.context;
        probe.index = stats->name;
        probe.lo = lo->literal;
        probe.hi = hi->literal;
        probe.key_is_attribute = false;
        probe.target_name = shape.target;
        Wrap(driving, LogicalKind::kIndexRangeScan, std::move(probe), est,
             shape.source);
        return;
      }
    }
  }

  void TryTextProbe(LogicalNode& where,
                    const std::vector<const Expr*>& conjuncts) {
    const IndexStats* stats = catalog_.FindByKind(IndexKind::kText);
    if (stats == nullptr || !IndexAllowed(stats->name)) return;
    for (const Expr* conjunct : conjuncts) {
      // The conjunct must pin the word to $v's subtree; which variable it
      // is rooted at falls out of the quantifier scan.
      for (LogicalNode* node = where.inputs[0].get(); node != nullptr;
           node = node->inputs.empty() ? nullptr : node->inputs[0].get()) {
        if (node->kind != LogicalKind::kFor &&
            node->kind != LogicalKind::kJoin &&
            node->kind != LogicalKind::kLet &&
            node->kind != LogicalKind::kWhere &&
            node->kind != LogicalKind::kSort) {
          break;
        }
        if (node->kind != LogicalKind::kFor ||
            !node->position_variable.empty() || node->inputs.size() != 2 ||
            node->inputs[1]->kind == LogicalKind::kTextProbe) {
          continue;
        }
        const std::string word =
            FindContainsWord(*conjunct, {node->name});
        if (word.empty()) continue;
        LogicalNodePtr& driving = node->inputs[1];
        const DrivingShape shape = MatchDrivingShape(*driving);
        if (!shape.ok) continue;
        const double est =
            static_cast<double>(stats->entries) /
            static_cast<double>(std::max<uint64_t>(stats->distinct_keys, 1));
        // Without the probe, the where clause has to tokenize every text
        // node under each driven element to test the word — across all
        // candidates that is roughly the whole collection, regardless of
        // how cheap producing the driven elements themselves is (a bare
        // `for $x in $input` driver costs only `documents` visits but
        // still forces the full-subtree word search).
        const double word_search_cost =
            static_cast<double>(catalog_.collection.total_elements) *
            options_.cost_model.node_visit_cost;
        if (!Beats(ProbeCost(*stats, est),
                   WalkCost(*driving) + word_search_cost)) {
          continue;
        }
        IndexProbe probe;
        probe.kind = ProbeKind::kTextWord;
        probe.context = shape.context;
        probe.index = stats->name;
        probe.word = word;
        probe.target_name = shape.target;
        Wrap(driving, LogicalKind::kTextProbe, std::move(probe), est,
             shape.source);
        return;
      }
    }
  }

  void Visit(LogicalNodePtr& node) {
    switch (node->kind) {
      case LogicalKind::kIndexScan:
      case LogicalKind::kIndexRangeScan:
      case LogicalKind::kTextProbe:
        // Already probed; the fallback subtree stays as compiled.
        return;
      case LogicalKind::kWhere:
        TryWhereProbes(*node);
        break;
      case LogicalKind::kChildStep:
      case LogicalKind::kDescendantStep:
      case LogicalKind::kFilter:
        if (TryValueProbe(node)) return;
        break;
      default:
        break;
    }
    for (LogicalNodePtr& input : node->inputs) {
      Visit(input);
    }
  }

  std::string Summary(const LogicalPlan& plan) const {
    if (!chosen_.empty()) {
      std::string out;
      for (const std::string& choice : chosen_) {
        if (!out.empty()) out += ", ";
        out += choice;
      }
      return out;
    }
    return PlanUsesGuidedWalk(plan) ? "guided-walk" : "full-scan";
  }

  static bool NodeUsesGuidedWalk(const LogicalNode& node) {
    if (node.kind == LogicalKind::kDescendantStep &&
        node.access == AccessPath::kGuidedWalk) {
      return true;
    }
    for (const LogicalNodePtr& input : node.inputs) {
      if (NodeUsesGuidedWalk(*input)) return true;
    }
    return false;
  }

  static bool PlanUsesGuidedWalk(const LogicalPlan& plan) {
    return plan.root != nullptr && NodeUsesGuidedWalk(*plan.root);
  }

  const CompilationOptions& options_;
  const IndexCatalog& catalog_;
  std::vector<std::string> chosen_;
};

bool NodeUsesGuided(const LogicalNode& node) {
  if (node.kind == LogicalKind::kDescendantStep &&
      node.access == AccessPath::kGuidedWalk) {
    return true;
  }
  for (const LogicalNodePtr& input : node.inputs) {
    if (NodeUsesGuided(*input)) return true;
  }
  return false;
}

void CountProbes(const LogicalNode& node, const LogicalNode*& single,
                 int& count) {
  if (node.probe.has_value()) {
    ++count;
    single = &node;
  }
  for (const LogicalNodePtr& input : node.inputs) {
    CountProbes(*input, single, count);
  }
}

void CountUses(const Expr& e, const std::string& name, int& count) {
  if (e.kind == ExprKind::kVariable && e.variable == name) ++count;
  if (e.path_root != nullptr) CountUses(*e.path_root, name, count);
  for (const Step& step : e.steps) {
    for (const auto& pred : step.predicates) CountUses(*pred, name, count);
  }
  for (const auto& child : e.children) CountUses(*child, name, count);
  if (e.lhs != nullptr) CountUses(*e.lhs, name, count);
  if (e.rhs != nullptr) CountUses(*e.rhs, name, count);
  if (e.then_branch != nullptr) CountUses(*e.then_branch, name, count);
  if (e.else_branch != nullptr) CountUses(*e.else_branch, name, count);
  for (const ForClause& clause : e.for_clauses) {
    if (clause.input != nullptr) CountUses(*clause.input, name, count);
  }
  for (const LetClause& clause : e.let_clauses) {
    if (clause.value != nullptr) CountUses(*clause.value, name, count);
  }
  if (e.where != nullptr) CountUses(*e.where, name, count);
  for (const OrderSpec& spec : e.order_by) {
    if (spec.key != nullptr) CountUses(*spec.key, name, count);
  }
  if (e.return_expr != nullptr) CountUses(*e.return_expr, name, count);
  if (e.quant_input != nullptr) CountUses(*e.quant_input, name, count);
  if (e.quant_satisfies != nullptr) {
    CountUses(*e.quant_satisfies, name, count);
  }
  for (const ConstructorAttr& attr : e.constructor_attrs) {
    for (const ConstructorContent& part : attr.value_parts) {
      if (part.expr != nullptr) CountUses(*part.expr, name, count);
    }
  }
  for (const ConstructorContent& part : e.constructor_content) {
    if (part.expr != nullptr) CountUses(*part.expr, name, count);
    if (part.child != nullptr) CountUses(*part.child, name, count);
  }
}

}  // namespace

const char* ExprKindLabel(const Expr* e) {
  if (e == nullptr) return "expr";
  switch (e->kind) {
    case ExprKind::kStringLiteral:
      return "string-literal";
    case ExprKind::kNumberLiteral:
      return "number-literal";
    case ExprKind::kVariable:
      return "variable";
    case ExprKind::kContextItem:
      return "context-item";
    case ExprKind::kSequence:
      return "sequence";
    case ExprKind::kPath:
      return "path";
    case ExprKind::kComparison:
      return "comparison";
    case ExprKind::kArithmetic:
      return "arithmetic";
    case ExprKind::kLogical:
      return "logical";
    case ExprKind::kFunctionCall:
      return "function-call";
    case ExprKind::kFlwor:
      return "flwor";
    case ExprKind::kQuantified:
      return "quantified";
    case ExprKind::kIfThenElse:
      return "if-then-else";
    case ExprKind::kConstructor:
      return "constructor";
    case ExprKind::kFilter:
      return "filter";
    case ExprKind::kRange:
      return "range";
    case ExprKind::kUnion:
      return "union";
  }
  return "expr";
}

const char* AxisLabel(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kSelf:
      return "self";
    case Axis::kParent:
      return "parent";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
  }
  return "?";
}

const char* CardName(Card card) {
  switch (card) {
    case Card::kUnknown:
      return "unknown";
    case Card::kEmpty:
      return "empty";
    case Card::kAtMostOne:
      return "at-most-one";
    case Card::kMany:
      return "many";
  }
  return "?";
}

const char* AccessPathModeName(AccessPathMode mode) {
  switch (mode) {
    case AccessPathMode::kAuto:
      return "auto";
    case AccessPathMode::kForceGuided:
      return "force-guided";
    case AccessPathMode::kForceScan:
      return "force-scan";
    case AccessPathMode::kForceIndex:
      return "force-index";
  }
  return "?";
}

std::vector<std::string> FreeVariables(const Expr& expr) {
  std::set<std::string> free;
  CollectFree(expr, {}, free);
  return {free.begin(), free.end()};
}

int CountVariableUses(const Expr& expr, const std::string& name) {
  int count = 0;
  CountUses(expr, name, count);
  return count;
}

const LogicalNode* SingleInputProbe(const LogicalPlan& plan) {
  if (plan.root == nullptr) return nullptr;
  const LogicalNode* single = nullptr;
  int count = 0;
  CountProbes(*plan.root, single, count);
  if (count != 1 || single == nullptr || single->inputs.size() != 2 ||
      single->inputs[1]->name != "input") {
    return nullptr;
  }
  return single;
}

std::string LogicalPlan::ToString() const {
  std::string out;
  if (root != nullptr) Render(*root, 0, out);
  return out;
}

Result<LogicalPlan> BuildLogicalPlan(const Expr& query,
                                     const PlanAnnotations* notes,
                                     const CompilationOptions& options,
                                     const IndexCatalog* catalog) {
  const AccessPathMode mode = options.access_path.mode;
  const bool guided_allowed =
      mode == AccessPathMode::kForceGuided ||
      (mode != AccessPathMode::kForceScan && options.access_path.allow_guided);
  Builder builder(notes, options, guided_allowed);
  LogicalPlan plan;
  plan.max_intra_parallelism = std::max(options.parallelism.max_intra, 1);
  plan.root = builder.BuildItem(query);
  if (plan.root == nullptr) {
    return Status::Internal("logical planning produced no root");
  }
  if (catalog != nullptr && (mode == AccessPathMode::kAuto ||
                             mode == AccessPathMode::kForceIndex)) {
    AccessPathSelector selector(options, *catalog);
    selector.Run(plan);
  } else {
    plan.access_path_summary =
        NodeUsesGuided(*plan.root) ? "guided-walk" : "full-scan";
  }
  return plan;
}

}  // namespace xbench::xquery::plan
