#include "xquery/plan/cache.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "xquery/verify/verifier.h"

namespace xbench::xquery::plan {

Result<std::shared_ptr<const CompiledQuery>> Compile(
    ExprPtr ast, const PlanAnnotations* notes,
    const CompilationOptions& options, const IndexCatalog* catalog) {
  if (ast == nullptr) {
    return Status::InvalidArgument("cannot compile a null query");
  }
  obs::ScopedSpan span("xquery.plan.compile");
  auto compiled = std::make_shared<CompiledQuery>();
  compiled->ast = std::move(ast);
  compiled->options = options;
  const AccessPathMode mode = options.access_path.mode;
  compiled->guided =
      mode == AccessPathMode::kForceGuided ||
      (mode != AccessPathMode::kForceScan && options.access_path.allow_guided);
  compiled->parallelism = options.parallelism.max_intra > 1
                              ? options.parallelism.max_intra
                              : 1;
  XBENCH_ASSIGN_OR_RETURN(
      compiled->logical,
      BuildLogicalPlan(*compiled->ast, notes, options, catalog));
  // The prefilter is only sound when the probed scan is the query's sole
  // read of $input: any other use must still see the full collection.
  if (CountVariableUses(*compiled->ast, "input") == 1) {
    compiled->prefilter_probe = SingleInputProbe(compiled->logical);
  }
  XBENCH_ASSIGN_OR_RETURN(compiled->physical,
                          exec::BuildPhysicalPlan(compiled->logical));
  // Static plan verification (DESIGN.md §14): contract-check the frozen
  // plan before it can reach the cache or an executor. A violation here
  // is a compiler bug, not a user error.
  if (options.verify) {
    verify::VerifyResult verified = verify::VerifyPlan(
        compiled->logical, compiled->physical, options, catalog);
    if (!verified.ok()) {
      return Status::Internal("plan verification failed: " +
                              verified.diagnostics.front().ToString());
    }
  }
  obs::MetricsRegistry::Default()
      .GetCounter("xbench.plan.compiles")
      .Increment();
  return {std::shared_ptr<const CompiledQuery>(std::move(compiled))};
}

std::shared_ptr<const CompiledQuery> PlanCache::Lookup(
    const PlanCacheKey& key) const {
  MutexLock lock(mu_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    obs::MetricsRegistry::Default()
        .GetCounter("xbench.plan.cache_misses")
        .Increment();
    return nullptr;
  }
  obs::MetricsRegistry::Default()
      .GetCounter("xbench.plan.cache_hits")
      .Increment();
  return it->second;
}

void PlanCache::Insert(const PlanCacheKey& key,
                       std::shared_ptr<const CompiledQuery> plan) {
  MutexLock lock(mu_);
  plans_[key] = std::move(plan);
}

void PlanCache::Invalidate() {
  MutexLock lock(mu_);
  if (plans_.empty()) return;
  plans_.clear();
  obs::MetricsRegistry::Default()
      .GetCounter("xbench.plan.invalidations")
      .Increment();
}

}  // namespace xbench::xquery::plan
