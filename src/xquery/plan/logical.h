#ifndef XBENCH_XQUERY_PLAN_LOGICAL_H_
#define XBENCH_XQUERY_PLAN_LOGICAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xquery/ast.h"

namespace xbench::xquery::plan {

/// Result-size class of a plan node, mirrored from analysis::Cardinality
/// so the planner does not depend on the analyzer headers.
enum class Card { kUnknown, kEmpty, kAtMostOne, kMany };

const char* CardName(Card card);

/// Display label for an expression kind ("path", "flwor", ...); null expr
/// renders as "expr". Shared by the logical and physical plan renderings.
const char* ExprKindLabel(const Expr* e);

/// Display label for an axis ("child", "descendant-or-self", ...).
const char* AxisLabel(Axis axis);

/// Analyzer output the planner consumes, keyed by AST node identity (the
/// maps are valid only while the analyzed AST is alive). This is how the
/// `//`-expansion and cardinality rewrites ride on plans instead of AST
/// field mutations: analysis::Analyze fills these alongside the legacy
/// `Step::expansions` annotations, and BuildLogicalPlan copies what it
/// needs into the plan nodes.
struct PlanAnnotations {
  std::map<const Step*, std::vector<StepExpansion>> step_expansions;
  std::map<const Expr*, Card> path_cardinality;
};

/// The logical algebra. Item operators produce an item sequence; tuple
/// operators (kSingleton through kSort) produce a stream of variable
/// environments threaded through a FLWOR pipeline.
enum class LogicalKind {
  // Item operators.
  kScan,        // variable lookup ($input, FLWOR-bound vars)
  kEval,        // interpreter-core fallback for any expression leaf
  kChildStep,   // child::name over the input sequence
  kAxisStep,    // any other single axis step
  kDescendantStep,  // fused descendant-or-self::* / child::name pair
  kFilter,      // predicate list over the input sequence
  kAggregate,   // single-argument sequence function (count, sum, ...)
  kConstruct,   // direct element constructor
  kEmpty,       // statically provably empty (cardinality rewrite)
  kReturn,      // tuple input × item plan -> concatenated item sequence
  // Tuple operators.
  kSingleton,   // one empty environment (FLWOR pipeline source)
  kFor,         // dependent for clause: one tuple per input item
  kJoin,        // independent for clause: right side evaluated once
  kLet,         // binds one value per tuple
  kWhere,       // filters tuples by effective boolean value
  kSort,        // materializes + stable-sorts tuples by order keys
};

/// How a descendant step reaches its matches at execution time. Chosen at
/// plan time: the guided walk needs analyzer chains *and* an engine whose
/// collection passed the load-time validation gate (the planner is told
/// via PlannerOptions::guided).
enum class AccessPath { kFullScan, kGuidedWalk };

struct LogicalNode;
using LogicalNodePtr = std::unique_ptr<LogicalNode>;

struct LogicalNode {
  explicit LogicalNode(LogicalKind k) : kind(k) {}

  LogicalKind kind;
  /// Step name test, variable name, function name, or element name —
  /// whichever the kind uses for display and execution.
  std::string name;
  /// kFor/kJoin position variable (`at $i`), empty when absent.
  std::string position_variable;
  Axis axis = Axis::kChild;
  AccessPath access = AccessPath::kFullScan;
  /// kDescendantStep: analyzer chains copied off the AST at plan time.
  std::vector<StepExpansion> expansions;
  /// Predicates / where / order-by / fallback expressions stay AST
  /// references; CompiledQuery keeps the analyzed AST alive for them.
  std::vector<const Expr*> predicates;
  const Expr* expr = nullptr;
  /// kSort: the FLWOR whose order_by this node applies.
  const Expr* order_source = nullptr;
  Card cardinality = Card::kUnknown;
  std::vector<LogicalNodePtr> inputs;
};

struct LogicalPlan {
  LogicalNodePtr root;

  /// Upper bound on intra-query parallelism the physical lowering may
  /// compile into parallelizable operators (copied from PlannerOptions;
  /// 1 = scalar execution, the default).
  int max_intra_parallelism = 1;

  /// Indented tree rendering (root first), used by `xqlint --explain` and
  /// the golden-plan snapshots.
  std::string ToString() const;
};

struct PlannerOptions {
  /// Compile descendant steps with analyzer chains to guided walks. Only
  /// set when the target engine's collection passed the validation gate;
  /// the compiled plan is keyed by this flag in the plan cache.
  bool guided = false;
  /// Apply the provably-empty-path rewrite (Card::kEmpty -> kEmpty node).
  /// The cardinality classes come from *instance* statistics of the
  /// canonical sample database, so this is only sound when the data the
  /// plan will run over matches those statistics; the workload runner
  /// leaves it off, `xqlint --explain` and schema-bound tests turn it on.
  bool trust_statistics = false;
  /// Morsel-driven intra-query parallelism bound: descendant/axis steps,
  /// predicate filtering, where clauses and sort-key extraction split
  /// their input into morsels executed on the shared worker pool
  /// (common/worker_pool.h), merging results in a fixed order so answers
  /// stay byte-identical to scalar execution. 1 (the default) compiles
  /// fully scalar plans; the plan cache keys on this value.
  int max_intra_parallelism = 1;
};

/// Free variables of `expr` (names read but not bound within it).
std::vector<std::string> FreeVariables(const Expr& expr);

/// Lowers an analyzed AST to the logical algebra. `notes` may be null
/// (the planner then reads legacy `Step::expansions` annotations off the
/// AST). Never fails on canned queries: any unsupported shape lowers to a
/// kEval interpreter-core leaf.
Result<LogicalPlan> BuildLogicalPlan(const Expr& query,
                                     const PlanAnnotations* notes,
                                     const PlannerOptions& options);

}  // namespace xbench::xquery::plan

#endif  // XBENCH_XQUERY_PLAN_LOGICAL_H_
