#ifndef XBENCH_XQUERY_PLAN_LOGICAL_H_
#define XBENCH_XQUERY_PLAN_LOGICAL_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "xquery/ast.h"
#include "xquery/plan/catalog.h"

namespace xbench::xquery::plan {

/// Result-size class of a plan node, mirrored from analysis::Cardinality
/// so the planner does not depend on the analyzer headers.
enum class Card { kUnknown, kEmpty, kAtMostOne, kMany };

const char* CardName(Card card);

/// Display label for an expression kind ("path", "flwor", ...); null expr
/// renders as "expr". Shared by the logical and physical plan renderings.
const char* ExprKindLabel(const Expr* e);

/// Display label for an axis ("child", "descendant-or-self", ...).
const char* AxisLabel(Axis axis);

/// Analyzer output the planner consumes, keyed by AST node identity (the
/// maps are valid only while the analyzed AST is alive). This is how the
/// `//`-expansion and cardinality rewrites ride on plans instead of AST
/// field mutations: analysis::Analyze fills these alongside the legacy
/// `Step::expansions` annotations, and BuildLogicalPlan copies what it
/// needs into the plan nodes.
struct PlanAnnotations {
  std::map<const Step*, std::vector<StepExpansion>> step_expansions;
  std::map<const Expr*, Card> path_cardinality;
};

/// The logical algebra. Item operators produce an item sequence; tuple
/// operators (kSingleton through kSort) produce a stream of variable
/// environments threaded through a FLWOR pipeline.
enum class LogicalKind {
  // Item operators.
  kScan,        // variable lookup ($input, FLWOR-bound vars)
  kEval,        // interpreter-core fallback for any expression leaf
  kChildStep,   // child::name over the input sequence
  kAxisStep,    // any other single axis step
  kDescendantStep,  // fused descendant-or-self::* / child::name pair
  kFilter,      // predicate list over the input sequence
  kAggregate,   // single-argument sequence function (count, sum, ...)
  kConstruct,   // direct element constructor
  kEmpty,       // statically provably empty (cardinality rewrite)
  kReturn,      // tuple input × item plan -> concatenated item sequence
  // Index probes (wrap the item subtree they replace; inputs[0] is the
  // original access path kept as runtime fallback, inputs[1] the root
  // source the probe validates its candidates against).
  kIndexScan,       // value-index equality probe
  kIndexRangeScan,  // value-index interval probe
  kTextProbe,       // inverted-text-index word probe
  // Tuple operators.
  kSingleton,   // one empty environment (FLWOR pipeline source)
  kFor,         // dependent for clause: one tuple per input item
  kJoin,        // independent for clause: right side evaluated once
  kLet,         // binds one value per tuple
  kWhere,       // filters tuples by effective boolean value
  kSort,        // materializes + stable-sorts tuples by order keys
};

/// How a descendant step reaches its matches at execution time. Chosen at
/// plan time: the guided walk needs analyzer chains *and* an engine whose
/// collection passed the load-time validation gate (the planner is told
/// via CompilationOptions::access_path).
enum class AccessPath { kFullScan, kGuidedWalk };

/// What an index probe looks up.
enum class ProbeKind { kValueEquals, kValueRange, kTextWord };

/// Which elements, relative to the probed root set, the original access
/// path would have produced; the probe operator re-applies this as a
/// structural check on every index candidate so probe output is always a
/// subset of what the replaced subtree would enumerate.
enum class ProbeContext {
  kRoots,            // the roots themselves (Scan / Filter-over-Scan)
  kRootChildren,     // child::name over the roots
  kRootDescendants,  // fused //name over the roots
};

/// One index probe decision, attached to a kIndexScan / kIndexRangeScan /
/// kTextProbe wrapper node.
struct IndexProbe {
  ProbeKind kind = ProbeKind::kValueEquals;
  ProbeContext context = ProbeContext::kRootDescendants;
  /// Index name in the engine catalog.
  std::string index;
  /// kValueEquals key (string comparison; the planner only probes
  /// non-numeric literals so B+-tree order matches comparison semantics).
  std::string key;
  /// kValueRange inclusive bounds.
  std::string lo;
  std::string hi;
  /// kTextWord token.
  std::string word;
  /// Whether the value index covers an attribute ("N/@a", posting node is
  /// the candidate itself) or a child element value (posting node's
  /// parent is the candidate).
  bool key_is_attribute = false;
  /// Element name candidates must carry; empty = the root itself.
  std::string target_name;
  /// Epoch of the IndexCatalog snapshot this probe was costed against
  /// (the same value PlanCacheKey::index_epoch carries). The plan
  /// verifier rejects a frozen plan whose probes disagree with the
  /// snapshot they claim to have been compiled under.
  uint64_t catalog_epoch = 0;
};

struct LogicalNode;
using LogicalNodePtr = std::unique_ptr<LogicalNode>;

struct LogicalNode {
  explicit LogicalNode(LogicalKind k) : kind(k) {}

  LogicalKind kind;
  /// Step name test, variable name, function name, or element name —
  /// whichever the kind uses for display and execution.
  std::string name;
  /// kFor/kJoin position variable (`at $i`), empty when absent.
  std::string position_variable;
  Axis axis = Axis::kChild;
  AccessPath access = AccessPath::kFullScan;
  /// kDescendantStep: analyzer chains copied off the AST at plan time.
  std::vector<StepExpansion> expansions;
  /// Predicates / where / order-by / fallback expressions stay AST
  /// references; CompiledQuery keeps the analyzed AST alive for them.
  std::vector<const Expr*> predicates;
  const Expr* expr = nullptr;
  /// kSort: the FLWOR whose order_by this node applies.
  const Expr* order_source = nullptr;
  Card cardinality = Card::kUnknown;
  /// kIndexScan/kIndexRangeScan/kTextProbe: the probe decision.
  std::optional<IndexProbe> probe;
  /// Cost-model cardinality estimate (rows out); -1 = no estimate.
  double estimated_rows = -1;
  std::vector<LogicalNodePtr> inputs;
};

struct LogicalPlan {
  LogicalNodePtr root;

  /// Upper bound on intra-query parallelism the physical lowering may
  /// compile into parallelizable operators (copied from
  /// CompilationOptions::parallelism; 1 = scalar execution, the default).
  int max_intra_parallelism = 1;

  /// One-line access-path decision summary for reports and explain
  /// output: comma-joined probe choices ("IndexScan(item_id)"), or
  /// "guided-walk"/"full-scan" when no probe was chosen.
  std::string access_path_summary;

  /// Indented tree rendering (root first), used by `xqlint --explain` and
  /// the golden-plan snapshots.
  std::string ToString() const;
};

/// How the planner may resolve access paths.
enum class AccessPathMode {
  /// Cost-based: probe where a catalog index beats the estimated scan or
  /// guided-walk cost, guided walks where chains exist and guidance is
  /// allowed, full scans otherwise.
  kAuto,
  /// Guided walks wherever chains exist; never probes. Matches the
  /// pre-index guided plans byte for byte.
  kForceGuided,
  /// Full scans only; never guided, never probes. Matches the
  /// pre-index unguided plans byte for byte.
  kForceScan,
  /// Probe wherever any eligible catalog index exists, regardless of
  /// cost (ablation / testing mode).
  kForceIndex,
};

const char* AccessPathModeName(AccessPathMode mode);

/// Access-path half of the compilation options.
struct AccessPathPolicy {
  AccessPathMode mode = AccessPathMode::kAuto;
  /// kForceIndex: restrict probes to this index name; empty = any index.
  std::string forced_index;
  /// Whether guided walks may be chosen at all. The workload layer clears
  /// this when the engine's collection failed the load-time validation
  /// gate; kForceScan ignores it, kForceGuided implies it.
  bool allow_guided = true;
};

/// Cost-model knobs. Unit is "one node visit"; the defaults model the
/// simulated storage (a B+-tree node fetch costs a page read, resolving
/// one posting to a DOM node costs about two visits).
struct CostModelOptions {
  /// Apply the provably-empty-path rewrite (Card::kEmpty -> kEmpty node).
  /// The cardinality classes come from *instance* statistics of the
  /// canonical sample database, so this is only sound when the data the
  /// plan will run over matches those statistics; the workload runner
  /// leaves it off, `xqlint --explain` and schema-bound tests turn it on.
  bool trust_statistics = false;
  double node_visit_cost = 1.0;
  double page_read_cost = 16.0;
  double posting_resolve_cost = 2.0;
  /// An index probe must beat the best non-index path by this factor
  /// (estimated probe cost < margin × best walk cost) before kAuto picks
  /// it, so near-ties keep the simpler plan.
  double index_advantage_margin = 0.9;
};

/// Intra-query parallelism half of the compilation options.
struct ParallelismOptions {
  /// Morsel-driven intra-query parallelism bound: descendant/axis steps,
  /// predicate filtering (including index-probe residual predicates),
  /// where clauses and sort-key extraction split their input into morsels
  /// executed on the shared worker pool (common/worker_pool.h), merging
  /// results in a fixed order so answers stay byte-identical to scalar
  /// execution. 1 (the default) compiles fully scalar plans; the plan
  /// cache keys on this value.
  int max_intra = 1;
};

/// Everything the compile-then-execute pipeline needs to lower one query:
/// the access-path policy, the cost model it consults under kAuto, and
/// the parallelism bound. The plan cache keys on (mode, forced index,
/// guidance, parallelism) plus the catalog epoch the plan was costed
/// against.
struct CompilationOptions {
  AccessPathPolicy access_path;
  CostModelOptions cost_model;
  ParallelismOptions parallelism;
  /// Run the static plan verifier (xquery/verify) on every compiled
  /// plan, failing compilation on any contract violation. Defaults on in
  /// debug and sanitizer builds; release builds leave it off so the hot
  /// compile path stays lean, and test fixtures/tools enable it
  /// explicitly.
#if !defined(NDEBUG) || defined(XBENCH_SANITIZE)
  bool verify = true;
#else
  bool verify = false;
#endif
};

/// Free variables of `expr` (names read but not bound within it).
std::vector<std::string> FreeVariables(const Expr& expr);

/// Number of occurrences of variable `name` anywhere in `expr`
/// (rebindings included — callers use this as a conservative "is $input
/// read anywhere else" test).
int CountVariableUses(const Expr& expr, const std::string& name);

/// The plan's single probe node when exactly one probe was chosen and its
/// root source is the workload's `$input` scan; nullptr otherwise. The
/// engine derives its document prefilter (bind `$input` over only the
/// documents holding probe candidates) from this.
const LogicalNode* SingleInputProbe(const LogicalPlan& plan);

/// Lowers an analyzed AST to the logical algebra. `notes` may be null
/// (the planner then reads legacy `Step::expansions` annotations off the
/// AST). `catalog` may be null (no probes are considered). Never fails on
/// canned queries: any unsupported shape lowers to a kEval
/// interpreter-core leaf.
Result<LogicalPlan> BuildLogicalPlan(const Expr& query,
                                     const PlanAnnotations* notes,
                                     const CompilationOptions& options,
                                     const IndexCatalog* catalog = nullptr);

}  // namespace xbench::xquery::plan

#endif  // XBENCH_XQUERY_PLAN_LOGICAL_H_
