#ifndef XBENCH_XQUERY_LEXER_H_
#define XBENCH_XQUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xbench::xquery {

enum class TokenKind {
  kEnd,
  kName,        // NCName (also keywords; the parser decides contextually)
  kVariable,    // $name
  kString,      // '...' or "..."
  kNumber,      // 123 or 1.5
  kSlash,       // /
  kDoubleSlash, // //
  kAt,          // @
  kStar,        // *
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kEq,          // =
  kNe,          // !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kPlus,
  kMinus,
  kColonEq,     // := (let bindings)
  kAxis,        // axis name followed by '::' (value = axis name)
  kPipe,        // | (union)
  kDotDot,      // ..
  kDot,         // .
  kLtElem,      // '<' that starts a direct element constructor
  kEndElem,     // '</'
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // name / string value / number text / axis name
  size_t offset = 0;  // byte offset in the query (for error messages)
};

/// Tokenizes an XQuery-lite query. Direct element constructors are NOT
/// fully tokenized here: the lexer emits kLtElem when a '<' is followed by
/// a name character and the previous meaningful token makes an expression
/// (not a comparison) — the parser then switches to constructor scanning
/// over the raw text via the `RawScanner` interface below.
class Lexer {
 public:
  explicit Lexer(std::string_view input);

  /// Current token.
  const Token& Peek() const { return current_; }
  /// Advances and returns the previous token.
  Token Next();

  /// True if the current token is a name with the given text.
  bool PeekName(std::string_view name) const {
    return current_.kind == TokenKind::kName && current_.text == name;
  }

  /// Raw access for the constructor sub-parser: current byte position is
  /// the offset *after* the current token. The parser can re-seek.
  size_t RawPos() const { return pos_; }
  std::string_view RawInput() const { return input_; }
  char RawCharAt(size_t p) const { return input_[p]; }
  /// Re-positions the lexer at byte `p` and re-lexes the current token.
  void SeekTo(size_t p);

  const Status& status() const { return status_; }

 private:
  void Lex();
  void SetError(std::string message, size_t at);

  std::string_view input_;
  size_t pos_ = 0;
  Token current_;
  TokenKind previous_kind_ = TokenKind::kEnd;
  std::string previous_text_;
  Status status_;
};

}  // namespace xbench::xquery

#endif  // XBENCH_XQUERY_LEXER_H_
