#ifndef XBENCH_XQUERY_STEP_EVAL_H_
#define XBENCH_XQUERY_STEP_EVAL_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "xml/node.h"
#include "xquery/ast.h"
#include "xquery/sequence.h"

namespace xbench::xquery {

/// Candidate collection for path steps, shared between the tree-walking
/// interpreter (xquery/evaluator.cc) and the compiled physical operators
/// (xquery/exec/). Keeping a single implementation is what makes the
/// compiled path's byte-identical-output guarantee cheap to maintain:
/// both executors select exactly the same candidate nodes.

/// Whether `node` matches a step name test ("*", "text()", or a name).
bool ElementMatches(const xml::Node& node, const std::string& name_test);

/// Appends every descendant of `node` matching `name_test` in document
/// order; with `include_self`, `node` itself may match too. Each visited
/// node increments `visited`.
void CollectDescendants(const xml::Node& node, const std::string& name_test,
                        bool include_self, Sequence& out,
                        obs::Counter& visited);

/// Schema-guided descendant collection: descends only along the label
/// chains the analyzer proved possible, emitting matches in document order
/// (pre-order). `chains` are the expansions applicable to the context
/// element; `depth` indexes into their labels.
void GuidedCollect(const xml::Node& node, size_t depth,
                   const std::vector<const StepExpansion*>& chains,
                   Sequence& out, obs::Counter& visited);

/// Per-parent variant of GuidedCollect for fused steps that carry
/// predicates: each group holds every chain-final match under one parent
/// element, so positional predicates ([1], position(), last()) see the
/// same candidate list the unfused child step would build for that parent.
void GuidedCollectGroups(const xml::Node& node, size_t depth,
                         const std::vector<const StepExpansion*>& chains,
                         std::vector<Sequence>& groups, obs::Counter& visited);

/// Full-scan counterpart of GuidedCollectGroups: for `node` and every
/// descendant element, the children matching `name_test` form one group —
/// exactly the candidate lists of an unfused descendant-or-self::* /
/// child::name pair.
void CollectChildGroups(const xml::Node& node, const std::string& name_test,
                        std::vector<Sequence>& groups, obs::Counter& visited);

/// The candidate nodes one axis step selects from a single context
/// element, before predicates (the per-context body of the interpreter's
/// step evaluation).
Sequence AxisCandidates(const xml::Node& node, Axis axis,
                        const std::string& name_test, obs::Counter& visited);

}  // namespace xbench::xquery

#endif  // XBENCH_XQUERY_STEP_EVAL_H_
