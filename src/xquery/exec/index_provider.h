#ifndef XBENCH_XQUERY_EXEC_INDEX_PROVIDER_H_
#define XBENCH_XQUERY_EXEC_INDEX_PROVIDER_H_

#include <optional>
#include <string>
#include <vector>

namespace xbench::xml {
class Node;
}  // namespace xbench::xml

namespace xbench::xquery::exec {

/// Runtime index access for probe operators. The engine executing a plan
/// passes an adapter over its secondary indexes into Execute(); probe
/// operators resolve postings through it and fall back to their wrapped
/// access path whenever a lookup returns nullopt (index dropped since
/// compile, engine without indexes, interpreter-only runs).
///
/// Threading contract: implementations are called only from the thread
/// that called Execute() — probe operators resolve postings before any
/// morsel fan-out — and that caller holds the engine's collection lock
/// for the duration, so adapters may touch engine state guarded by it.
/// Implementations must return postings as pointers into the same live
/// DOM the plan's bindings reference.
class IndexProvider {
 public:
  virtual ~IndexProvider() = default;

  /// Elements posted under `key` in value index `index` (the element
  /// carrying the indexed attribute, or the indexed child element whose
  /// text equals the key). nullopt = index unavailable.
  virtual std::optional<std::vector<const xml::Node*>> ValueLookup(
      const std::string& index, const std::string& key) const = 0;

  /// Elements posted in the inclusive key interval [lo, hi].
  virtual std::optional<std::vector<const xml::Node*>> ValueRange(
      const std::string& index, const std::string& lo,
      const std::string& hi) const = 0;

  /// Elements directly containing word token `word` (an element is posted
  /// for the tokens of its own text content that no single element child's
  /// content already covers, so ancestors are reachable by walking up).
  virtual std::optional<std::vector<const xml::Node*>> TextLookup(
      const std::string& word) const = 0;
};

}  // namespace xbench::xquery::exec

#endif  // XBENCH_XQUERY_EXEC_INDEX_PROVIDER_H_
