#include "xquery/exec/exec.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>
#include <utility>

#include "common/stopwatch.h"
#include "common/worker_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xquery/functions.h"
#include "xquery/step_eval.h"

namespace xbench::xquery::exec {
namespace {

using plan::AccessPath;
using plan::IndexProbe;
using plan::LogicalKind;
using plan::LogicalNode;
using plan::ProbeContext;
using plan::ProbeKind;

/// A tuple of the FLWOR pipeline: the variable bindings accumulated by the
/// for/let operators upstream of the current position.
using Env = std::vector<ScopeBinding>;

/// Owner of constructor-built nodes (QueryResult::constructed and the
/// per-morsel scratch arenas share this shape).
using Arena = std::vector<std::unique_ptr<xml::Node>>;

/// Tuples pulled per NextBatch() call. Large enough to amortize the
/// per-pull virtual dispatch and to give a parallel where clause a full
/// morsel's worth of conditions, small enough that a selective pipeline
/// never materializes far past what the consumer needs.
constexpr size_t kTupleBatch = 64;

/// Run-wide accumulator for the parallel-region timing model (summed
/// into ExecStats after the root returns).
struct ParallelAgg {
  double busy_millis = 0;
  double caller_busy_millis = 0;
  double modeled_millis = 0;
};

/// Everything one Execute() call threads through the operator tree. The
/// scope holds the bindings of enclosing tuples while a sub-plan runs, so
/// expression leaves see exactly the variables the interpreter would.
///
/// Thread-safety contract for morsel tasks (DESIGN.md §12): while a
/// parallel region runs, tasks may read bindings/options/scope (no
/// operator mutates them mid-region) and increment the atomic
/// nodes_visited counter, but must not touch arena, stats, or the scope
/// stack — each task writes only its own index's output slot and a
/// task-private arena that the owning operator splices back in a fixed
/// order after the region joins.
struct ExecContext {
  const Bindings* bindings = nullptr;
  const EvalOptions* options = nullptr;
  Arena* arena = nullptr;
  Env scope;
  std::vector<OperatorStats>* stats = nullptr;
  ParallelAgg* parallel = nullptr;
  obs::Counter* nodes_visited = nullptr;
  /// Engine index access for probe operators; null = probes run their
  /// fallback access path. Only read on the calling thread (postings are
  /// resolved before any morsel fan-out).
  const IndexProvider* indexes = nullptr;
  bool trace = false;
};

/// Moves per-morsel scratch arenas into the run arena in morsel order, so
/// node ownership (and destruction order) is identical no matter which
/// lane built which node.
void SpliceArenas(ExecContext& ctx, std::vector<Arena>& arenas) {
  for (Arena& arena : arenas) {
    for (auto& node : arena) ctx.arena->push_back(std::move(node));
    arena.clear();
  }
}

/// Runs fn(0..total-1) on the shared worker pool and books the region's
/// timing model against the operator's stats slot and the run totals.
/// Returns the lowest-index error (matching the scalar loop's
/// first-error semantics regardless of lane interleaving).
Status RunParallel(ExecContext& ctx, size_t slot, int parallelism,
                   size_t total, const std::function<Status(size_t)>& fn) {
  ParallelRunStats stats;
  const Status status =
      WorkerPool::Default().ParallelFor(total, parallelism, fn, &stats);
  OperatorStats& op = (*ctx.stats)[slot];
  op.morsels += stats.morsels;
  op.parallel_busy_millis += stats.busy_millis;
  op.parallel_modeled_millis += stats.modeled_millis;
  if (ctx.parallel != nullptr) {
    ctx.parallel->busy_millis += stats.busy_millis;
    ctx.parallel->caller_busy_millis += stats.caller_busy_millis;
    ctx.parallel->modeled_millis += stats.modeled_millis;
  }
  return status;
}

/// Pushes a tuple's bindings onto the evaluation scope for the duration of
/// one sub-plan run.
class ScopedTuple {
 public:
  ScopedTuple(ExecContext& ctx, const Env& tuple)
      : scope_(ctx.scope), mark_(ctx.scope.size()) {
    scope_.insert(scope_.end(), tuple.begin(), tuple.end());
  }
  ~ScopedTuple() { scope_.resize(mark_); }

  ScopedTuple(const ScopedTuple&) = delete;
  ScopedTuple& operator=(const ScopedTuple&) = delete;

 private:
  Env& scope_;
  size_t mark_;
};

/// Interpreter-core evaluation of an expression leaf under an explicit
/// scope and arena — the form morsel tasks use (each task passes its own
/// scratch arena; the shared scope is read-only while a region runs).
Result<Sequence> EvalLeafIn(const ExecContext& ctx, const Env& scope,
                            Arena& arena, const Expr& expr,
                            const Item* context_item = nullptr,
                            size_t position = 0, size_t size = 0) {
  return EvalWithEnv(expr, *ctx.bindings, scope, context_item, position, size,
                     *ctx.options, arena);
}

/// Interpreter-core evaluation of an expression leaf under the current
/// scope (and an optional focus for predicates).
Result<Sequence> EvalLeaf(ExecContext& ctx, const Expr& expr,
                          const Item* context_item = nullptr,
                          size_t position = 0, size_t size = 0) {
  return EvalLeafIn(ctx, ctx.scope, *ctx.arena, expr, context_item, position,
                    size);
}

/// One predicate decision for candidate i of n, byte-compatible with the
/// interpreter's ApplyPredicates (a numeric singleton selects by
/// position, anything else filters by effective boolean value).
Result<bool> PredicateKeeps(const ExecContext& ctx, const Env& scope,
                            Arena& arena, const Expr& pred,
                            const Sequence& candidates, size_t i, size_t n) {
  XBENCH_ASSIGN_OR_RETURN(
      Sequence value, EvalLeafIn(ctx, scope, arena, pred, &candidates[i],
                                 i + 1, n));
  if (value.size() == 1 && value.front().kind == Item::Kind::kNumber) {
    return static_cast<double>(i + 1) == value.front().num;
  }
  return EffectiveBooleanValue(value);
}

/// Predicate application under an explicit scope and arena (the scalar
/// loop; also the per-morsel body when groups parallelize whole-group).
Result<Sequence> RunPredicatesIn(const ExecContext& ctx, const Env& scope,
                                 Arena& arena,
                                 const std::vector<const Expr*>& predicates,
                                 Sequence candidates) {
  for (const Expr* pred : predicates) {
    Sequence kept;
    const size_t n = candidates.size();
    for (size_t i = 0; i < n; ++i) {
      XBENCH_ASSIGN_OR_RETURN(
          bool keep, PredicateKeeps(ctx, scope, arena, *pred, candidates, i, n));
      if (keep) kept.push_back(candidates[i]);
    }
    candidates = std::move(kept);
  }
  return candidates;
}

/// Predicate application with positional semantics over the current
/// scope/arena.
Result<Sequence> RunPredicates(ExecContext& ctx,
                               const std::vector<const Expr*>& predicates,
                               Sequence candidates) {
  return RunPredicatesIn(ctx, ctx.scope, *ctx.arena, predicates,
                         std::move(candidates));
}

/// Morsel-parallel predicate application: each predicate pass fans the
/// candidate decisions out across the pool with the focus (i+1, n)
/// frozen before the fan-out, then keeps survivors in candidate order —
/// answers and error selection are byte-identical to the scalar loop.
Result<Sequence> RunPredicatesParallel(
    ExecContext& ctx, size_t slot, int parallelism,
    const std::vector<const Expr*>& predicates, Sequence candidates) {
  for (const Expr* pred : predicates) {
    const size_t n = candidates.size();
    if (n == 0) continue;
    if (n == 1) {
      XBENCH_ASSIGN_OR_RETURN(
          bool keep,
          PredicateKeeps(ctx, ctx.scope, *ctx.arena, *pred, candidates, 0, 1));
      if (!keep) candidates.clear();
      continue;
    }
    std::vector<signed char> keep(n, 0);
    std::vector<Arena> arenas(n);
    const Status status = RunParallel(
        ctx, slot, parallelism, n, [&](size_t i) -> Status {
          auto decision =
              PredicateKeeps(ctx, ctx.scope, arenas[i], *pred, candidates, i, n);
          if (!decision.ok()) return decision.status();
          keep[i] = decision.value() ? 1 : 0;
          return Status::Ok();
        });
    SpliceArenas(ctx, arenas);
    if (!status.ok()) return status;
    Sequence kept;
    for (size_t i = 0; i < n; ++i) {
      if (keep[i]) kept.push_back(candidates[i]);
    }
    candidates = std::move(kept);
  }
  return candidates;
}

/// Dispatches between the scalar and morsel-parallel predicate paths.
Result<Sequence> RunPredicatesMaybeParallel(
    ExecContext& ctx, size_t slot, int parallelism,
    const std::vector<const Expr*>& predicates, Sequence candidates) {
  if (parallelism > 1 && candidates.size() > 1) {
    return RunPredicatesParallel(ctx, slot, parallelism, predicates,
                                 std::move(candidates));
  }
  return RunPredicates(ctx, predicates, std::move(candidates));
}

}  // namespace

/// Item operator: pulls its inputs and produces an item sequence. Run()
/// wraps the subclass body with per-slot counters and an optional span.
class ItemOp {
 public:
  ItemOp(std::string label, size_t slot)
      : label_(std::move(label)), slot_(slot) {}
  virtual ~ItemOp() = default;

  Result<Sequence> Run(ExecContext& ctx) const {
    OperatorStats& stats = (*ctx.stats)[slot_];
    ++stats.invocations;
    Stopwatch watch;
    Result<Sequence> result = RunTraced(ctx);
    stats.millis += watch.ElapsedMillis();
    if (result.ok()) stats.rows_out += result.value().size();
    return result;
  }

 protected:
  virtual Result<Sequence> DoRun(ExecContext& ctx) const = 0;
  size_t slot() const { return slot_; }

 private:
  Result<Sequence> RunTraced(ExecContext& ctx) const {
    if (ctx.trace) {
      obs::ScopedSpan span("plan.op." + label_);
      return DoRun(ctx);
    }
    return DoRun(ctx);
  }

  std::string label_;
  size_t slot_;
};

namespace {

class ScanOp final : public ItemOp {
 public:
  ScanOp(std::string label, size_t slot, std::string name)
      : ItemOp(std::move(label), slot), name_(std::move(name)) {}

 protected:
  Result<Sequence> DoRun(ExecContext& ctx) const override {
    // Innermost tuple binding wins; globals ($input) come from Bindings.
    for (auto it = ctx.scope.rbegin(); it != ctx.scope.rend(); ++it) {
      if (it->first == name_) return it->second;
    }
    auto it = ctx.bindings->find(name_);
    if (it != ctx.bindings->end()) return it->second;
    return Status::NotFound("unbound variable $" + name_);
  }

 private:
  std::string name_;
};

/// Interpreter-core leaf: any expression the planner did not decompose
/// (literals, comparisons, constructors, fallback shapes).
class EvalExprOp final : public ItemOp {
 public:
  EvalExprOp(std::string label, size_t slot, const Expr* expr)
      : ItemOp(std::move(label), slot), expr_(expr) {}

 protected:
  Result<Sequence> DoRun(ExecContext& ctx) const override {
    return EvalLeaf(ctx, *expr_);
  }

 private:
  const Expr* expr_;
};

class AxisStepOp final : public ItemOp {
 public:
  AxisStepOp(std::string label, size_t slot, std::unique_ptr<ItemOp> input,
             Axis axis, std::string name_test,
             std::vector<const Expr*> predicates, int parallelism)
      : ItemOp(std::move(label), slot),
        input_(std::move(input)),
        axis_(axis),
        name_test_(std::move(name_test)),
        predicates_(std::move(predicates)),
        parallelism_(parallelism) {}

 protected:
  Result<Sequence> DoRun(ExecContext& ctx) const override {
    XBENCH_ASSIGN_OR_RETURN(Sequence input, input_->Run(ctx));
    Sequence result;
    for (const Item& context : input) {
      if (!context.is_node_kind()) {
        return Status::InvalidArgument("path step applied to an atomic value");
      }
      if (context.kind == Item::Kind::kAttribute) {
        // Only self::* is meaningful on attributes.
        if (axis_ == Axis::kSelf) result.push_back(context);
        continue;
      }
      Sequence candidates = AxisCandidates(*context.node, axis_, name_test_,
                                           *ctx.nodes_visited);
      XBENCH_ASSIGN_OR_RETURN(
          candidates, RunPredicatesMaybeParallel(ctx, slot(), parallelism_,
                                                 predicates_,
                                                 std::move(candidates)));
      result.insert(result.end(), candidates.begin(), candidates.end());
    }
    SortDocumentOrderUnique(result);
    return result;
  }

 private:
  std::unique_ptr<ItemOp> input_;
  Axis axis_;
  std::string name_test_;
  std::vector<const Expr*> predicates_;
  int parallelism_;
};

/// The fused `//name` operator. The access path is frozen at plan time:
/// kGuidedWalk descends only along analyzer chains (falling back to the
/// full scan for context element types the chains do not cover, so it can
/// never drop results); kFullScan always scans the subtree. Predicates
/// evaluate per parent element — the candidate lists the unfused child
/// step would build — so positional predicates keep their meaning.
class DescendantStepOp final : public ItemOp {
 public:
  DescendantStepOp(std::string label, size_t slot,
                   std::unique_ptr<ItemOp> input, std::string name_test,
                   std::vector<const Expr*> predicates,
                   std::vector<StepExpansion> expansions, bool guided,
                   int parallelism)
      : ItemOp(std::move(label), slot),
        input_(std::move(input)),
        name_test_(std::move(name_test)),
        predicates_(std::move(predicates)),
        expansions_(std::move(expansions)),
        guided_(guided),
        parallelism_(parallelism) {}

 protected:
  Result<Sequence> DoRun(ExecContext& ctx) const override {
    XBENCH_ASSIGN_OR_RETURN(Sequence input, input_->Run(ctx));
    if (parallelism_ > 1) return RunMorsels(ctx, input);
    Sequence result;
    for (const Item& context : input) {
      if (!context.is_node_kind()) {
        return Status::InvalidArgument("path step applied to an atomic value");
      }
      if (context.kind == Item::Kind::kAttribute) continue;
      const xml::Node& node = *context.node;
      bool covered = false;
      std::vector<const StepExpansion*> chains = ChainsFor(node, covered);
      if (predicates_.empty()) {
        Sequence candidates;
        if (covered) {
          GuidedCollect(node, 0, chains, candidates, *ctx.nodes_visited);
        } else {
          CollectDescendants(node, name_test_, /*include_self=*/false,
                             candidates, *ctx.nodes_visited);
        }
        result.insert(result.end(), candidates.begin(), candidates.end());
        continue;
      }
      std::vector<Sequence> groups;
      if (covered) {
        GuidedCollectGroups(node, 0, chains, groups, *ctx.nodes_visited);
      } else {
        CollectChildGroups(node, name_test_, groups, *ctx.nodes_visited);
      }
      for (Sequence& group : groups) {
        XBENCH_ASSIGN_OR_RETURN(
            group, RunPredicates(ctx, predicates_, std::move(group)));
        result.insert(result.end(), group.begin(), group.end());
      }
    }
    SortDocumentOrderUnique(result);
    return result;
  }

 private:
  /// The analyzer chains applicable to one context element; `covered` is
  /// set when the guided walk may be used for it.
  std::vector<const StepExpansion*> ChainsFor(const xml::Node& node,
                                              bool& covered) const {
    std::vector<const StepExpansion*> chains;
    covered = false;
    if (guided_) {
      for (const StepExpansion& expansion : expansions_) {
        if (expansion.context_type == node.name()) {
          covered = true;
          chains.push_back(&expansion);
        }
      }
    }
    return chains;
  }

  /// Morsel-parallel path. The final SortDocumentOrderUnique (shared
  /// with the scalar path) makes the merge order-preserving: work units
  /// select disjoint candidate sets, so sorting the concatenation yields
  /// exactly the scalar result.
  Result<Sequence> RunMorsels(ExecContext& ctx, const Sequence& input) const {
    // Context validation up front, in context order, so the surfaced
    // error matches the scalar loop's first error.
    for (const Item& context : input) {
      if (!context.is_node_kind()) {
        return Status::InvalidArgument("path step applied to an atomic value");
      }
    }
    Sequence result;
    if (!predicates_.empty()) {
      // Candidate-group collection is a cheap tree walk; do it
      // sequentially and fan the predicate evaluation out per group.
      std::vector<Sequence> groups;
      for (const Item& context : input) {
        if (context.kind == Item::Kind::kAttribute) continue;
        const xml::Node& node = *context.node;
        bool covered = false;
        std::vector<const StepExpansion*> chains = ChainsFor(node, covered);
        if (covered) {
          GuidedCollectGroups(node, 0, chains, groups, *ctx.nodes_visited);
        } else {
          CollectChildGroups(node, name_test_, groups, *ctx.nodes_visited);
        }
      }
      if (groups.size() == 1) {
        // One parent group: parallelize across its candidates instead.
        XBENCH_ASSIGN_OR_RETURN(
            Sequence kept,
            RunPredicatesParallel(ctx, slot(), parallelism_, predicates_,
                                  std::move(groups.front())));
        result = std::move(kept);
      } else if (!groups.empty()) {
        std::vector<Sequence> outputs(groups.size());
        std::vector<Arena> arenas(groups.size());
        const Status status = RunParallel(
            ctx, slot(), parallelism_, groups.size(), [&](size_t g) -> Status {
              auto kept = RunPredicatesIn(ctx, ctx.scope, arenas[g],
                                          predicates_, std::move(groups[g]));
              if (!kept.ok()) return kept.status();
              outputs[g] = std::move(kept).value();
              return Status::Ok();
            });
        SpliceArenas(ctx, arenas);
        if (!status.ok()) return status;
        for (const Sequence& out : outputs) {
          result.insert(result.end(), out.begin(), out.end());
        }
      }
      SortDocumentOrderUnique(result);
      return result;
    }
    // No predicates: pure candidate collection. Work units are whole
    // contexts when they are plentiful; otherwise each context's child
    // subtrees (frontier split), so even a single-document query yields
    // enough morsels to spread.
    size_t element_contexts = 0;
    for (const Item& context : input) {
      if (context.kind != Item::Kind::kAttribute) ++element_contexts;
    }
    if (element_contexts >= 2 * static_cast<size_t>(parallelism_)) {
      std::vector<Sequence> outputs(input.size());
      const Status status = RunParallel(
          ctx, slot(), parallelism_, input.size(), [&](size_t i) -> Status {
            const Item& context = input[i];
            if (context.kind == Item::Kind::kAttribute) return Status::Ok();
            const xml::Node& node = *context.node;
            bool covered = false;
            std::vector<const StepExpansion*> chains =
                ChainsFor(node, covered);
            if (covered) {
              GuidedCollect(node, 0, chains, outputs[i], *ctx.nodes_visited);
            } else {
              CollectDescendants(node, name_test_, /*include_self=*/false,
                                 outputs[i], *ctx.nodes_visited);
            }
            return Status::Ok();
          });
      if (!status.ok()) return status;
      for (const Sequence& out : outputs) {
        result.insert(result.end(), out.begin(), out.end());
      }
      SortDocumentOrderUnique(result);
      return result;
    }
    // Frontier split: one unit per context child subtree. `chains`
    // points into per-context storage that outlives the region.
    struct FrontierUnit {
      const xml::Node* node = nullptr;
      /// Chains applicable at this unit's parent context (null = full
      /// scan of the unit subtree).
      const std::vector<const StepExpansion*>* chains = nullptr;
    };
    std::vector<std::vector<const StepExpansion*>> context_chains;
    context_chains.reserve(input.size());
    std::vector<FrontierUnit> units;
    for (const Item& context : input) {
      if (context.kind == Item::Kind::kAttribute) continue;
      const xml::Node& node = *context.node;
      bool covered = false;
      std::vector<const StepExpansion*> chains = ChainsFor(node, covered);
      if (covered) {
        context_chains.push_back(std::move(chains));
        for (const auto& child : node.children()) {
          if (!child->is_element()) continue;
          units.push_back({child.get(), &context_chains.back()});
        }
      } else {
        // The scalar walk visits the context root itself (and would
        // emit it under include_self, which descendant steps never set).
        ctx.nodes_visited->Increment();
        for (const auto& child : node.children()) {
          units.push_back({child.get(), nullptr});
        }
      }
    }
    std::vector<Sequence> outputs(units.size());
    const Status status = RunParallel(
        ctx, slot(), parallelism_, units.size(), [&](size_t i) -> Status {
          const FrontierUnit& unit = units[i];
          if (unit.chains == nullptr) {
            CollectDescendants(*unit.node, name_test_, /*include_self=*/true,
                               outputs[i], *ctx.nodes_visited);
            return Status::Ok();
          }
          // Per-child body of GuidedCollect at depth 0.
          ctx.nodes_visited->Increment();
          bool emit = false;
          std::vector<const StepExpansion*> deeper;
          for (const StepExpansion* chain : *unit.chains) {
            if (chain->labels.empty() ||
                chain->labels[0] != unit.node->name()) {
              continue;
            }
            if (chain->labels.size() == 1) {
              emit = true;
            } else {
              deeper.push_back(chain);
            }
          }
          if (emit) outputs[i].push_back(Item::Node(unit.node));
          if (!deeper.empty()) {
            GuidedCollect(*unit.node, 1, deeper, outputs[i],
                          *ctx.nodes_visited);
          }
          return Status::Ok();
        });
    if (!status.ok()) return status;
    for (const Sequence& out : outputs) {
      result.insert(result.end(), out.begin(), out.end());
    }
    SortDocumentOrderUnique(result);
    return result;
  }

  std::unique_ptr<ItemOp> input_;
  std::string name_test_;
  std::vector<const Expr*> predicates_;
  std::vector<StepExpansion> expansions_;
  bool guided_;
  int parallelism_;
};

class FilterOp final : public ItemOp {
 public:
  FilterOp(std::string label, size_t slot, std::unique_ptr<ItemOp> input,
           std::vector<const Expr*> predicates, int parallelism)
      : ItemOp(std::move(label), slot),
        input_(std::move(input)),
        predicates_(std::move(predicates)),
        parallelism_(parallelism) {}

 protected:
  Result<Sequence> DoRun(ExecContext& ctx) const override {
    XBENCH_ASSIGN_OR_RETURN(Sequence input, input_->Run(ctx));
    return RunPredicatesMaybeParallel(ctx, slot(), parallelism_, predicates_,
                                      std::move(input));
  }

 private:
  std::unique_ptr<ItemOp> input_;
  std::vector<const Expr*> predicates_;
  int parallelism_;
};

class AggregateOp final : public ItemOp {
 public:
  AggregateOp(std::string label, size_t slot, std::unique_ptr<ItemOp> input,
              std::string function)
      : ItemOp(std::move(label), slot),
        input_(std::move(input)),
        function_(std::move(function)) {}

 protected:
  Result<Sequence> DoRun(ExecContext& ctx) const override {
    XBENCH_ASSIGN_OR_RETURN(Sequence input, input_->Run(ctx));
    std::vector<Sequence> args;
    args.push_back(std::move(input));
    return CallFunction(function_, std::move(args));
  }

 private:
  std::unique_ptr<ItemOp> input_;
  std::string function_;
};

class EmptyOp final : public ItemOp {
 public:
  EmptyOp(std::string label, size_t slot) : ItemOp(std::move(label), slot) {}

 protected:
  Result<Sequence> DoRun(ExecContext&) const override { return Sequence{}; }
};

const xml::Node* TreeRoot(const xml::Node* node) {
  while (node->parent() != nullptr) node = node->parent();
  return node;
}

/// Index probe: resolves postings through the execution's IndexProvider,
/// maps them to the elements the replaced access path would have
/// enumerated, validates each against the probed root set and structural
/// context, then re-applies the original step's predicates. Falls back to
/// the wrapped access path (inputs[0] of the logical probe node) whenever
/// the index is unavailable or the root set is not a plain set of
/// parentless element nodes — so probe plans answer exactly like their
/// unprobed form on any binding.
class IndexProbeOp final : public ItemOp {
 public:
  IndexProbeOp(std::string label, size_t slot,
               std::unique_ptr<ItemOp> fallback, std::unique_ptr<ItemOp> roots,
               IndexProbe probe, std::vector<const Expr*> predicates,
               int parallelism)
      : ItemOp(std::move(label), slot),
        fallback_(std::move(fallback)),
        roots_(std::move(roots)),
        probe_(std::move(probe)),
        predicates_(std::move(predicates)),
        parallelism_(parallelism) {}

 protected:
  Result<Sequence> DoRun(ExecContext& ctx) const override {
    if (ctx.indexes == nullptr) return fallback_->Run(ctx);
    XBENCH_ASSIGN_OR_RETURN(Sequence roots, roots_->Run(ctx));
    // The probe's completeness argument assumes the bound sequence is
    // document roots (the indexed collection). Anything else — attributes,
    // mid-tree elements a test harness bound — goes through the fallback.
    for (const Item& item : roots) {
      if (item.kind != Item::Kind::kNode || item.node == nullptr ||
          item.node->parent() != nullptr) {
        return fallback_->Run(ctx);
      }
    }
    std::optional<std::vector<const xml::Node*>> postings;
    switch (probe_.kind) {
      case ProbeKind::kValueEquals:
        postings = ctx.indexes->ValueLookup(probe_.index, probe_.key);
        break;
      case ProbeKind::kValueRange:
        postings = ctx.indexes->ValueRange(probe_.index, probe_.lo, probe_.hi);
        break;
      case ProbeKind::kTextWord:
        postings = ctx.indexes->TextLookup(probe_.word);
        break;
    }
    if (!postings.has_value()) return fallback_->Run(ctx);
    std::set<const xml::Node*> root_set;
    for (const Item& item : roots) root_set.insert(item.node);
    Sequence candidates;
    for (const xml::Node* posting : *postings) {
      if (posting == nullptr) continue;
      ctx.nodes_visited->Increment();
      if (probe_.kind == ProbeKind::kTextWord) {
        CollectTextCandidates(posting, root_set, candidates);
        continue;
      }
      const xml::Node* candidate =
          probe_.key_is_attribute ? posting : posting->parent();
      if (Accepts(candidate, root_set)) {
        candidates.push_back(Item::Node(candidate));
      }
    }
    if (probe_.context == ProbeContext::kRoots) {
      // The replaced expression is a filter over the bound variable, which
      // preserves the variable's binding order without a document-order
      // sort — so the probe must too. Re-rank the hit roots by their
      // position in the roots sequence (this also dedups: each root
      // appears once there). A cross-document pointer sort here would
      // reorder collections whose load order differs from heap order.
      std::set<const xml::Node*> hits;
      for (const Item& item : candidates) hits.insert(item.node);
      Sequence ordered;
      for (const Item& item : roots) {
        if (hits.count(item.node) != 0) ordered.push_back(item);
      }
      candidates = std::move(ordered);
    } else {
      // Child/descendant contexts: the replaced step ends in the same
      // document-order sort, so the probe's candidate order matches it.
      SortDocumentOrderUnique(candidates);
    }
    return RunPredicatesMaybeParallel(ctx, slot(), parallelism_, predicates_,
                                      std::move(candidates));
  }

 private:
  /// Structural-context check: would the replaced access path have
  /// enumerated `candidate` from this root set?
  bool Accepts(const xml::Node* candidate,
               const std::set<const xml::Node*>& root_set) const {
    if (candidate == nullptr) return false;
    switch (probe_.context) {
      case ProbeContext::kRoots:
        return root_set.count(candidate) != 0;
      case ProbeContext::kRootChildren:
        return candidate->name() == probe_.target_name &&
               candidate->parent() != nullptr &&
               root_set.count(candidate->parent()) != 0;
      case ProbeContext::kRootDescendants:
        return candidate->name() == probe_.target_name &&
               candidate->parent() != nullptr &&
               root_set.count(TreeRoot(candidate)) != 0;
    }
    return false;
  }

  /// Text postings name the element directly containing the word; every
  /// ancestor-or-self matching the probe's structural context also
  /// contains it and is a candidate (a superset — the kept predicates and
  /// where clause re-check the containment exactly).
  void CollectTextCandidates(const xml::Node* posting,
                             const std::set<const xml::Node*>& root_set,
                             Sequence& out) const {
    if (probe_.context == ProbeContext::kRoots) {
      const xml::Node* root = TreeRoot(posting);
      if (root_set.count(root) != 0) out.push_back(Item::Node(root));
      return;
    }
    for (const xml::Node* node = posting; node != nullptr;
         node = node->parent()) {
      if (Accepts(node, root_set)) out.push_back(Item::Node(node));
    }
  }

  std::unique_ptr<ItemOp> fallback_;
  std::unique_ptr<ItemOp> roots_;
  IndexProbe probe_;
  std::vector<const Expr*> predicates_;
  int parallelism_;
};

// --- tuple operators ------------------------------------------------------

/// Streaming cursor over a tuple operator's output. Next()/NextBatch()
/// wrap the subclass body with the owning operator's counters.
class TupleCursor {
 public:
  virtual ~TupleCursor() = default;

  /// Emits the next tuple into `out`; false at end of stream.
  Result<bool> Next(ExecContext& ctx, Env* out) {
    Stopwatch watch;
    Result<bool> result = DoNext(ctx, out);
    OperatorStats& stats = (*ctx.stats)[slot_];
    stats.millis += watch.ElapsedMillis();
    if (result.ok() && result.value()) ++stats.rows_out;
    return result;
  }

  /// Emits up to `max` tuples into `out` (cleared first); an empty batch
  /// means end of stream. Batch-aware cursors override DoNextBatch to
  /// amortize per-tuple dispatch and to evaluate whole batches in
  /// parallel; the default loops the scalar DoNext.
  Status NextBatch(ExecContext& ctx, std::vector<Env>* out, size_t max) {
    Stopwatch watch;
    out->clear();
    const Status status = DoNextBatch(ctx, out, max);
    OperatorStats& stats = (*ctx.stats)[slot_];
    stats.millis += watch.ElapsedMillis();
    stats.rows_out += out->size();
    return status;
  }

 protected:
  explicit TupleCursor(size_t slot) : slot_(slot) {}
  virtual Result<bool> DoNext(ExecContext& ctx, Env* out) = 0;

  /// Calls DoNext directly (not Next) so the batch does not double-count
  /// time or rows into the operator's stats slot.
  virtual Status DoNextBatch(ExecContext& ctx, std::vector<Env>* out,
                             size_t max) {
    Env tuple;
    while (out->size() < max) {
      auto more = DoNext(ctx, &tuple);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      out->push_back(std::move(tuple));
    }
    return Status::Ok();
  }

  size_t slot() const { return slot_; }

 private:
  size_t slot_;
};

class TupleOp {
 public:
  TupleOp(std::string label, size_t slot)
      : label_(std::move(label)), slot_(slot) {}
  virtual ~TupleOp() = default;

  std::unique_ptr<TupleCursor> Open(ExecContext& ctx) const {
    ++(*ctx.stats)[slot_].invocations;
    return MakeCursor(ctx);
  }

  const std::string& label() const { return label_; }

 protected:
  virtual std::unique_ptr<TupleCursor> MakeCursor(ExecContext& ctx) const = 0;
  size_t slot() const { return slot_; }

 private:
  std::string label_;
  size_t slot_;
};

class SingletonCursor final : public TupleCursor {
 public:
  explicit SingletonCursor(size_t slot) : TupleCursor(slot) {}

 protected:
  Result<bool> DoNext(ExecContext&, Env* out) override {
    if (done_) return false;
    done_ = true;
    out->clear();
    return true;
  }

 private:
  bool done_ = false;
};

class SingletonOp final : public TupleOp {
 public:
  SingletonOp(std::string label, size_t slot)
      : TupleOp(std::move(label), slot) {}

 protected:
  std::unique_ptr<TupleCursor> MakeCursor(ExecContext&) const override {
    return std::make_unique<SingletonCursor>(slot());
  }
};

/// Dependent for clause: evaluates the input plan once per upstream tuple
/// and fans each item out as a new tuple. Depth-first pulling produces the
/// same lexicographic tuple order as the interpreter's breadth-first env
/// construction.
class ForOp final : public TupleOp {
 public:
  ForOp(std::string label, size_t slot, std::unique_ptr<TupleOp> input,
        std::unique_ptr<ItemOp> items, std::string variable,
        std::string position_variable)
      : TupleOp(std::move(label), slot),
        input_(std::move(input)),
        items_(std::move(items)),
        variable_(std::move(variable)),
        position_variable_(std::move(position_variable)) {}

 protected:
  std::unique_ptr<TupleCursor> MakeCursor(ExecContext& ctx) const override;

 private:
  friend class ForCursor;
  std::unique_ptr<TupleOp> input_;
  std::unique_ptr<ItemOp> items_;
  std::string variable_;
  std::string position_variable_;
};

class ForCursor final : public TupleCursor {
 public:
  ForCursor(size_t slot, const ForOp& op, std::unique_ptr<TupleCursor> input)
      : TupleCursor(slot), op_(op), input_(std::move(input)) {}

 protected:
  Result<bool> DoNext(ExecContext& ctx, Env* out) override {
    while (true) {
      if (have_items_ && index_ < items_.size()) {
        *out = base_;
        out->emplace_back(op_.variable_, Sequence{items_[index_]});
        if (!op_.position_variable_.empty()) {
          out->emplace_back(
              op_.position_variable_,
              Sequence{Item::Number(static_cast<double>(index_ + 1))});
        }
        ++index_;
        return true;
      }
      have_items_ = false;
      XBENCH_ASSIGN_OR_RETURN(bool more, input_->Next(ctx, &base_));
      if (!more) return false;
      Sequence items;
      {
        ScopedTuple tuple(ctx, base_);
        XBENCH_ASSIGN_OR_RETURN(items, op_.items_->Run(ctx));
      }
      items_ = std::move(items);
      index_ = 0;
      have_items_ = true;
    }
  }

 private:
  const ForOp& op_;
  std::unique_ptr<TupleCursor> input_;
  Env base_;
  Sequence items_;
  size_t index_ = 0;
  bool have_items_ = false;
};

std::unique_ptr<TupleCursor> ForOp::MakeCursor(ExecContext& ctx) const {
  return std::make_unique<ForCursor>(slot(), *this, input_->Open(ctx));
}

/// Independent for clause: the right side has no free variable bound by
/// any enclosing pipeline (the planner proved it), so it is materialized
/// once — lazily, on the first upstream tuple — instead of once per tuple.
class JoinOp final : public TupleOp {
 public:
  JoinOp(std::string label, size_t slot, std::unique_ptr<TupleOp> input,
         std::unique_ptr<ItemOp> items, std::string variable,
         std::string position_variable)
      : TupleOp(std::move(label), slot),
        input_(std::move(input)),
        items_(std::move(items)),
        variable_(std::move(variable)),
        position_variable_(std::move(position_variable)) {}

 protected:
  std::unique_ptr<TupleCursor> MakeCursor(ExecContext& ctx) const override;

 private:
  friend class JoinCursor;
  std::unique_ptr<TupleOp> input_;
  std::unique_ptr<ItemOp> items_;
  std::string variable_;
  std::string position_variable_;
};

class JoinCursor final : public TupleCursor {
 public:
  JoinCursor(size_t slot, const JoinOp& op, std::unique_ptr<TupleCursor> input)
      : TupleCursor(slot), op_(op), input_(std::move(input)) {}

 protected:
  Result<bool> DoNext(ExecContext& ctx, Env* out) override {
    while (true) {
      if (have_base_ && index_ < items_.size()) {
        *out = base_;
        out->emplace_back(op_.variable_, Sequence{items_[index_]});
        if (!op_.position_variable_.empty()) {
          out->emplace_back(
              op_.position_variable_,
              Sequence{Item::Number(static_cast<double>(index_ + 1))});
        }
        ++index_;
        return true;
      }
      have_base_ = false;
      XBENCH_ASSIGN_OR_RETURN(bool more, input_->Next(ctx, &base_));
      if (!more) return false;
      if (!materialized_) {
        XBENCH_ASSIGN_OR_RETURN(items_, op_.items_->Run(ctx));
        materialized_ = true;
      }
      index_ = 0;
      have_base_ = true;
    }
  }

 private:
  const JoinOp& op_;
  std::unique_ptr<TupleCursor> input_;
  Env base_;
  Sequence items_;
  size_t index_ = 0;
  bool have_base_ = false;
  bool materialized_ = false;
};

std::unique_ptr<TupleCursor> JoinOp::MakeCursor(ExecContext& ctx) const {
  return std::make_unique<JoinCursor>(slot(), *this, input_->Open(ctx));
}

class LetOp final : public TupleOp {
 public:
  LetOp(std::string label, size_t slot, std::unique_ptr<TupleOp> input,
        std::unique_ptr<ItemOp> value, std::string variable)
      : TupleOp(std::move(label), slot),
        input_(std::move(input)),
        value_(std::move(value)),
        variable_(std::move(variable)) {}

 protected:
  std::unique_ptr<TupleCursor> MakeCursor(ExecContext& ctx) const override;

 private:
  friend class LetCursor;
  std::unique_ptr<TupleOp> input_;
  std::unique_ptr<ItemOp> value_;
  std::string variable_;
};

class LetCursor final : public TupleCursor {
 public:
  LetCursor(size_t slot, const LetOp& op, std::unique_ptr<TupleCursor> input)
      : TupleCursor(slot), op_(op), input_(std::move(input)) {}

 protected:
  Result<bool> DoNext(ExecContext& ctx, Env* out) override {
    Env base;
    XBENCH_ASSIGN_OR_RETURN(bool more, input_->Next(ctx, &base));
    if (!more) return false;
    Sequence value;
    {
      ScopedTuple tuple(ctx, base);
      XBENCH_ASSIGN_OR_RETURN(value, op_.value_->Run(ctx));
    }
    *out = std::move(base);
    out->emplace_back(op_.variable_, std::move(value));
    return true;
  }

 private:
  const LetOp& op_;
  std::unique_ptr<TupleCursor> input_;
};

std::unique_ptr<TupleCursor> LetOp::MakeCursor(ExecContext& ctx) const {
  return std::make_unique<LetCursor>(slot(), *this, input_->Open(ctx));
}

class WhereOp final : public TupleOp {
 public:
  WhereOp(std::string label, size_t slot, std::unique_ptr<TupleOp> input,
          const Expr* condition, int parallelism)
      : TupleOp(std::move(label), slot),
        input_(std::move(input)),
        condition_(condition),
        parallelism_(parallelism) {}

 protected:
  std::unique_ptr<TupleCursor> MakeCursor(ExecContext& ctx) const override;

 private:
  friend class WhereCursor;
  std::unique_ptr<TupleOp> input_;
  const Expr* condition_;
  int parallelism_;
};

class WhereCursor final : public TupleCursor {
 public:
  WhereCursor(size_t slot, const WhereOp& op,
              std::unique_ptr<TupleCursor> input)
      : TupleCursor(slot), op_(op), input_(std::move(input)) {}

 protected:
  Result<bool> DoNext(ExecContext& ctx, Env* out) override {
    while (true) {
      Env base;
      XBENCH_ASSIGN_OR_RETURN(bool more, input_->Next(ctx, &base));
      if (!more) return false;
      XBENCH_ASSIGN_OR_RETURN(bool keep, Keep(ctx, base));
      if (keep) {
        *out = std::move(base);
        return true;
      }
    }
  }

  /// Batch pull: evaluates the condition over a whole upstream batch,
  /// fanning the per-tuple decisions across the pool when the plan was
  /// compiled parallel. Survivors keep upstream order.
  Status DoNextBatch(ExecContext& ctx, std::vector<Env>* out,
                     size_t max) override {
    std::vector<Env> batch;
    while (out->empty()) {
      XBENCH_RETURN_IF_ERROR(input_->NextBatch(ctx, &batch, max));
      if (batch.empty()) return Status::Ok();  // end of stream
      const size_t n = batch.size();
      if (op_.parallelism_ > 1 && n > 1) {
        std::vector<signed char> keep(n, 0);
        std::vector<Arena> arenas(n);
        const Status status = RunParallel(
            ctx, slot(), op_.parallelism_, n, [&](size_t i) -> Status {
              // The tuple scope the scalar path builds via ScopedTuple,
              // assembled task-privately (ctx.scope is shared read-only).
              Env combined = ctx.scope;
              combined.insert(combined.end(), batch[i].begin(),
                              batch[i].end());
              auto condition =
                  EvalLeafIn(ctx, combined, arenas[i], *op_.condition_);
              if (!condition.ok()) return condition.status();
              auto decision = EffectiveBooleanValue(condition.value());
              if (!decision.ok()) return decision.status();
              keep[i] = decision.value() ? 1 : 0;
              return Status::Ok();
            });
        SpliceArenas(ctx, arenas);
        XBENCH_RETURN_IF_ERROR(status);
        for (size_t i = 0; i < n; ++i) {
          if (keep[i]) out->push_back(std::move(batch[i]));
        }
        continue;
      }
      for (Env& base : batch) {
        auto keep = Keep(ctx, base);
        if (!keep.ok()) return keep.status();
        if (keep.value()) out->push_back(std::move(base));
      }
    }
    return Status::Ok();
  }

 private:
  Result<bool> Keep(ExecContext& ctx, const Env& base) {
    Sequence condition;
    {
      ScopedTuple tuple(ctx, base);
      XBENCH_ASSIGN_OR_RETURN(condition, EvalLeaf(ctx, *op_.condition_));
    }
    return EffectiveBooleanValue(condition);
  }

  const WhereOp& op_;
  std::unique_ptr<TupleCursor> input_;
};

std::unique_ptr<TupleCursor> WhereOp::MakeCursor(ExecContext& ctx) const {
  return std::make_unique<WhereCursor>(slot(), *this, input_->Open(ctx));
}

/// Blocking sort: drains the upstream on first Next(), computes order keys
/// per tuple and stable-sorts with exactly the interpreter's comparator
/// (numeric keys sort empty-first; ties keep arrival order).
class SortOp final : public TupleOp {
 public:
  SortOp(std::string label, size_t slot, std::unique_ptr<TupleOp> input,
         const Expr* order_source, int parallelism)
      : TupleOp(std::move(label), slot),
        input_(std::move(input)),
        order_source_(order_source),
        parallelism_(parallelism) {}

 protected:
  std::unique_ptr<TupleCursor> MakeCursor(ExecContext& ctx) const override;

 private:
  friend class SortCursor;
  std::unique_ptr<TupleOp> input_;
  const Expr* order_source_;
  int parallelism_;
};

class SortCursor final : public TupleCursor {
 public:
  SortCursor(size_t slot, const SortOp& op, std::unique_ptr<TupleCursor> input)
      : TupleCursor(slot), op_(op), input_(std::move(input)) {}

 protected:
  Result<bool> DoNext(ExecContext& ctx, Env* out) override {
    if (!loaded_) {
      XBENCH_RETURN_IF_ERROR(Load(ctx));
      loaded_ = true;
    }
    if (position_ >= tuples_.size()) return false;
    *out = std::move(tuples_[position_++]);
    return true;
  }

  /// The sort is blocking, so batches just serve slices of the
  /// materialized output.
  Status DoNextBatch(ExecContext& ctx, std::vector<Env>* out,
                     size_t max) override {
    if (!loaded_) {
      XBENCH_RETURN_IF_ERROR(Load(ctx));
      loaded_ = true;
    }
    while (out->size() < max && position_ < tuples_.size()) {
      out->push_back(std::move(tuples_[position_++]));
    }
    return Status::Ok();
  }

 private:
  struct Keyed {
    size_t index;
    std::vector<std::pair<bool, double>> numeric_keys;  // (has, value)
    std::vector<std::string> string_keys;
  };

  static void AppendKey(const OrderSpec& spec, Sequence key, Keyed& keyed) {
    if (spec.numeric) {
      std::optional<double> v;
      if (!key.empty()) v = AtomizeToNumber(key.front());
      keyed.numeric_keys.emplace_back(v.has_value(), v.value_or(0.0));
      keyed.string_keys.emplace_back();
    } else {
      keyed.numeric_keys.emplace_back(false, 0.0);
      keyed.string_keys.push_back(key.empty() ? ""
                                              : AtomizeToString(key.front()));
    }
  }

  Status Load(ExecContext& ctx) {
    std::vector<Env> tuples;
    while (true) {
      Env base;
      auto more = input_->Next(ctx, &base);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      tuples.push_back(std::move(base));
    }
    const Expr& e = *op_.order_source_;
    std::vector<Keyed> keyed(tuples.size());
    if (op_.parallelism_ > 1 && tuples.size() > 1) {
      // Key extraction is per-tuple independent; only the stable sort
      // itself stays sequential (it defines the output order).
      std::vector<Arena> arenas(tuples.size());
      const Status status = RunParallel(
          ctx, slot(), op_.parallelism_, tuples.size(),
          [&](size_t i) -> Status {
            keyed[i].index = i;
            Env combined = ctx.scope;
            combined.insert(combined.end(), tuples[i].begin(),
                            tuples[i].end());
            for (const OrderSpec& spec : e.order_by) {
              auto value = EvalLeafIn(ctx, combined, arenas[i], *spec.key);
              if (!value.ok()) return value.status();
              AppendKey(spec, std::move(value).value(), keyed[i]);
            }
            return Status::Ok();
          });
      SpliceArenas(ctx, arenas);
      if (!status.ok()) return status;
    } else {
      for (size_t i = 0; i < tuples.size(); ++i) {
        keyed[i].index = i;
        for (const OrderSpec& spec : e.order_by) {
          Sequence key;
          {
            ScopedTuple tuple(ctx, tuples[i]);
            auto value = EvalLeaf(ctx, *spec.key);
            if (!value.ok()) return value.status();
            key = std::move(value).value();
          }
          AppendKey(spec, std::move(key), keyed[i]);
        }
      }
    }
    std::stable_sort(
        keyed.begin(), keyed.end(), [&](const Keyed& a, const Keyed& b) {
          for (size_t k = 0; k < e.order_by.size(); ++k) {
            const OrderSpec& spec = e.order_by[k];
            int cmp = 0;
            if (spec.numeric) {
              const auto& [ha, va] = a.numeric_keys[k];
              const auto& [hb, vb] = b.numeric_keys[k];
              if (ha != hb) {
                cmp = ha ? 1 : -1;  // empty sorts first
              } else {
                cmp = va < vb ? -1 : (va > vb ? 1 : 0);
              }
            } else {
              cmp = a.string_keys[k].compare(b.string_keys[k]);
              cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
            }
            if (cmp == 0) continue;
            return spec.ascending ? cmp < 0 : cmp > 0;
          }
          return false;
        });
    tuples_.reserve(tuples.size());
    for (const Keyed& k : keyed) tuples_.push_back(std::move(tuples[k.index]));
    return Status::Ok();
  }

  const SortOp& op_;
  std::unique_ptr<TupleCursor> input_;
  std::vector<Env> tuples_;
  size_t position_ = 0;
  bool loaded_ = false;
};

std::unique_ptr<TupleCursor> SortOp::MakeCursor(ExecContext& ctx) const {
  return std::make_unique<SortCursor>(slot(), *this, input_->Open(ctx));
}

/// Drives the tuple pipeline and concatenates the return plan's output per
/// tuple — the boundary between the tuple and item worlds.
class ReturnOp final : public ItemOp {
 public:
  ReturnOp(std::string label, size_t slot, std::unique_ptr<TupleOp> pipeline,
           std::unique_ptr<ItemOp> item)
      : ItemOp(std::move(label), slot),
        pipeline_(std::move(pipeline)),
        item_(std::move(item)) {}

 protected:
  Result<Sequence> DoRun(ExecContext& ctx) const override {
    std::unique_ptr<TupleCursor> cursor = pipeline_->Open(ctx);
    Sequence out;
    std::vector<Env> batch;
    while (true) {
      XBENCH_RETURN_IF_ERROR(cursor->NextBatch(ctx, &batch, kTupleBatch));
      if (batch.empty()) break;
      // The return expression stays a per-tuple scalar evaluation (its
      // sub-plan writes shared stats slots); batching amortizes the
      // cursor pulls and lets the pipeline filter whole batches at once.
      for (const Env& tuple : batch) {
        ScopedTuple scoped(ctx, tuple);
        XBENCH_ASSIGN_OR_RETURN(Sequence part, item_->Run(ctx));
        out.insert(out.end(), part.begin(), part.end());
      }
    }
    return out;
  }

 private:
  std::unique_ptr<TupleOp> pipeline_;
  std::unique_ptr<ItemOp> item_;
};

// --- lowering -------------------------------------------------------------

std::string PredicateSuffix(const LogicalNode& n) {
  if (n.predicates.empty()) return "";
  return " [" + std::to_string(n.predicates.size()) +
         (n.predicates.size() == 1 ? " pred]" : " preds]");
}

class PhysicalBuilder {
 public:
  PhysicalBuilder(PhysicalPlan& plan, int parallelism)
      : plan_(plan), parallelism_(parallelism) {}

  Result<std::unique_ptr<ItemOp>> BuildItem(const LogicalNode& n, int depth) {
    switch (n.kind) {
      case LogicalKind::kScan: {
        const std::string label = "Scan($" + n.name + ")";
        const size_t slot = AddSlot(label, depth);
        return {std::make_unique<ScanOp>(label, slot, n.name)};
      }
      case LogicalKind::kEval:
      case LogicalKind::kConstruct: {
        if (n.expr == nullptr) {
          return Status::Internal("plan leaf without an expression");
        }
        const std::string label =
            n.kind == LogicalKind::kConstruct
                ? "Construct(<" + n.name + ">)"
                : std::string("Eval(") + plan::ExprKindLabel(n.expr) + ")";
        const size_t slot = AddSlot(label, depth);
        return {std::make_unique<EvalExprOp>(label, slot, n.expr)};
      }
      case LogicalKind::kChildStep:
      case LogicalKind::kAxisStep: {
        const std::string label =
            (n.kind == LogicalKind::kChildStep
                 ? "ChildStep(" + n.name + ")" + PredicateSuffix(n)
                 : std::string("AxisStep(") + plan::AxisLabel(n.axis) + "::" +
                       n.name + ")" + PredicateSuffix(n)) +
            ParallelSuffix();
        const size_t slot = AddSlot(label, depth);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ItemOp> input,
                                BuildInput(n, depth));
        return {std::make_unique<AxisStepOp>(label, slot, std::move(input),
                                             n.axis, n.name, n.predicates,
                                             parallelism_)};
      }
      case LogicalKind::kDescendantStep: {
        const bool guided = n.access == AccessPath::kGuidedWalk;
        std::string label =
            guided ? "GuidedWalk(" + n.name + ") [" +
                         std::to_string(n.expansions.size()) +
                         (n.expansions.size() == 1 ? " chain]" : " chains]")
                   : "DescendantScan(" + n.name + ")";
        label += PredicateSuffix(n);
        label += ParallelSuffix();
        const size_t slot = AddSlot(label, depth);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ItemOp> input,
                                BuildInput(n, depth));
        return {std::make_unique<DescendantStepOp>(
            label, slot, std::move(input), n.name, n.predicates, n.expansions,
            guided, parallelism_)};
      }
      case LogicalKind::kFilter: {
        const std::string label =
            "Filter" + PredicateSuffix(n) + ParallelSuffix();
        const size_t slot = AddSlot(label, depth);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ItemOp> input,
                                BuildInput(n, depth));
        return {std::make_unique<FilterOp>(label, slot, std::move(input),
                                           n.predicates, parallelism_)};
      }
      case LogicalKind::kAggregate: {
        const std::string label = "Aggregate(" + n.name + ")";
        const size_t slot = AddSlot(label, depth);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ItemOp> input,
                                BuildInput(n, depth));
        return {std::make_unique<AggregateOp>(label, slot, std::move(input),
                                              n.name)};
      }
      case LogicalKind::kEmpty: {
        // The pruned subtree stays in the logical plan for explain output;
        // the physical operator is a constant.
        const std::string label = "Empty [statically empty]";
        const size_t slot = AddSlot(label, depth);
        return {std::make_unique<EmptyOp>(label, slot)};
      }
      case LogicalKind::kIndexScan:
      case LogicalKind::kIndexRangeScan:
      case LogicalKind::kTextProbe: {
        if (n.inputs.size() != 2 || !n.probe.has_value()) {
          return Status::Internal(
              "index probe expects a fallback and a root source");
        }
        const plan::IndexProbe& probe = *n.probe;
        std::string label;
        switch (n.kind) {
          case LogicalKind::kIndexScan:
            label = "IndexScan(" + probe.index + " = \"" + probe.key + "\")";
            break;
          case LogicalKind::kIndexRangeScan:
            label = "IndexRangeScan(" + probe.index + " in [\"" + probe.lo +
                    "\" .. \"" + probe.hi + "\"])";
            break;
          default:
            label = "TextIndexProbe(" + probe.index + " ~ \"" + probe.word +
                    "\")";
            break;
        }
        label += PredicateSuffix(n);
        label += ParallelSuffix();
        const size_t slot = AddSlot(label, depth, n.estimated_rows);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ItemOp> fallback,
                                BuildItem(*n.inputs[0], depth + 1));
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ItemOp> roots,
                                BuildItem(*n.inputs[1], depth + 1));
        return {std::make_unique<IndexProbeOp>(
            label, slot, std::move(fallback), std::move(roots), probe,
            n.predicates, parallelism_)};
      }
      case LogicalKind::kReturn: {
        if (n.inputs.size() != 2) {
          return Status::Internal("Return expects a pipeline and an item plan");
        }
        const std::string label = "Return";
        const size_t slot = AddSlot(label, depth);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<TupleOp> pipeline,
                                BuildTuple(*n.inputs[0], depth + 1));
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ItemOp> item,
                                BuildItem(*n.inputs[1], depth + 1));
        return {std::make_unique<ReturnOp>(label, slot, std::move(pipeline),
                                           std::move(item))};
      }
      default:
        return Status::Internal("tuple operator outside a FLWOR pipeline");
    }
  }

 private:
  Result<std::unique_ptr<ItemOp>> BuildInput(const LogicalNode& n, int depth) {
    if (n.inputs.size() != 1) {
      return Status::Internal("item operator expects exactly one input");
    }
    return BuildItem(*n.inputs[0], depth + 1);
  }

  Result<std::unique_ptr<TupleOp>> BuildTuple(const LogicalNode& n,
                                              int depth) {
    switch (n.kind) {
      case LogicalKind::kSingleton: {
        const std::string label = "Singleton";
        const size_t slot = AddSlot(label, depth);
        return {std::make_unique<SingletonOp>(label, slot)};
      }
      case LogicalKind::kFor:
      case LogicalKind::kJoin: {
        if (n.inputs.size() != 2) {
          return Status::Internal("for clause expects a pipeline and an input");
        }
        const bool join = n.kind == LogicalKind::kJoin;
        std::string label = join ? "NestedLoopJoin($" + n.name + ")"
                                 : "ForLoop($" + n.name +
                                       (n.position_variable.empty()
                                            ? ""
                                            : " at $" + n.position_variable) +
                                       ")";
        const size_t slot = AddSlot(label, depth);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<TupleOp> input,
                                BuildTuple(*n.inputs[0], depth + 1));
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ItemOp> items,
                                BuildItem(*n.inputs[1], depth + 1));
        if (join) {
          return {std::make_unique<JoinOp>(label, slot, std::move(input),
                                           std::move(items), n.name,
                                           n.position_variable)};
        }
        return {std::make_unique<ForOp>(label, slot, std::move(input),
                                        std::move(items), n.name,
                                        n.position_variable)};
      }
      case LogicalKind::kLet: {
        if (n.inputs.size() != 2) {
          return Status::Internal("let clause expects a pipeline and a value");
        }
        const std::string label = "Let($" + n.name + ")";
        const size_t slot = AddSlot(label, depth);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<TupleOp> input,
                                BuildTuple(*n.inputs[0], depth + 1));
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ItemOp> value,
                                BuildItem(*n.inputs[1], depth + 1));
        return {std::make_unique<LetOp>(label, slot, std::move(input),
                                        std::move(value), n.name)};
      }
      case LogicalKind::kWhere: {
        if (n.inputs.size() != 1 || n.expr == nullptr) {
          return Status::Internal("where clause expects an input and an expr");
        }
        const std::string label = "Where" + ParallelSuffix();
        const size_t slot = AddSlot(label, depth);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<TupleOp> input,
                                BuildTuple(*n.inputs[0], depth + 1));
        return {std::make_unique<WhereOp>(label, slot, std::move(input),
                                          n.expr, parallelism_)};
      }
      case LogicalKind::kSort: {
        if (n.inputs.size() != 1 || n.order_source == nullptr) {
          return Status::Internal("sort expects an input and order keys");
        }
        const size_t keys = n.order_source->order_by.size();
        const std::string label = "SortMaterialize(" + std::to_string(keys) +
                                  (keys == 1 ? " key)" : " keys)") +
                                  ParallelSuffix();
        const size_t slot = AddSlot(label, depth);
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<TupleOp> input,
                                BuildTuple(*n.inputs[0], depth + 1));
        return {std::make_unique<SortOp>(label, slot, std::move(input),
                                         n.order_source, parallelism_)};
      }
      default:
        return Status::Internal("item operator inside the tuple pipeline");
    }
  }

  /// Explain-output marker on parallel-capable operators. Empty for
  /// scalar plans, so the golden snapshots (compiled at the default
  /// max_intra_parallelism = 1) are unchanged.
  std::string ParallelSuffix() const {
    if (parallelism_ <= 1) return "";
    return " [parallel x" + std::to_string(parallelism_) + "]";
  }

  size_t AddSlot(const std::string& label, int depth,
                 double estimated_rows = -1) {
    plan_.rendered.append(static_cast<size_t>(depth) * 2, ' ');
    plan_.rendered += label;
    plan_.rendered.push_back('\n');
    plan_.labels.push_back(label);
    plan_.depths.push_back(depth);
    plan_.estimated_rows.push_back(estimated_rows);
    return plan_.labels.size() - 1;
  }

  PhysicalPlan& plan_;
  int parallelism_;
};

}  // namespace

namespace {

/// Index one past the pre-order subtree rooted at `i`.
size_t SkipSubtree(const std::vector<OperatorStats>& ops, size_t i) {
  size_t j = i + 1;
  while (j < ops.size() && ops[j].depth > ops[i].depth) ++j;
  return j;
}

/// Top-down capped self-time attribution over the pre-order stats
/// vector. `budget` is the subtree's effective inclusive time — the
/// slice of the parent's window this subtree may account for. When the
/// direct children's measured inclusive times sum past the budget (an
/// index probe re-running its fallback per tuple books every re-run into
/// the same child slots; parallel regions overlap the parent's clock),
/// the children are scaled proportionally instead of the parent's self
/// time being clamped at zero, so Σ self over the whole tree telescopes
/// to exactly the root's inclusive time. Returns the index one past the
/// subtree.
size_t AttributeSelfTime(std::vector<OperatorStats>& ops, size_t i,
                         double budget) {
  double children = 0;
  for (size_t j = i + 1; j < ops.size() && ops[j].depth > ops[i].depth;
       j = SkipSubtree(ops, j)) {
    children += ops[j].millis;
  }
  const double scale = children > budget && children > 0
                           ? budget / children
                           : 1.0;
  ops[i].self_millis = budget - children * scale;
  size_t j = i + 1;
  while (j < ops.size() && ops[j].depth > ops[i].depth) {
    j = AttributeSelfTime(ops, j, ops[j].millis * scale);
  }
  return j;
}

}  // namespace

PhysicalPlan::PhysicalPlan() = default;
PhysicalPlan::~PhysicalPlan() = default;
PhysicalPlan::PhysicalPlan(PhysicalPlan&&) noexcept = default;
PhysicalPlan& PhysicalPlan::operator=(PhysicalPlan&&) noexcept = default;

Result<PhysicalPlan> BuildPhysicalPlan(const plan::LogicalPlan& logical) {
  if (logical.root == nullptr) {
    return Status::Internal("logical plan has no root");
  }
  PhysicalPlan physical;
  physical.max_parallelism = std::max(logical.max_intra_parallelism, 1);
  PhysicalBuilder builder(physical, physical.max_parallelism);
  XBENCH_ASSIGN_OR_RETURN(physical.root, builder.BuildItem(*logical.root, 0));
  return physical;
}

Result<QueryResult> Execute(const PhysicalPlan& plan, const Bindings& bindings,
                            const EvalOptions& options, ExecStats* stats,
                            const IndexProvider* indexes) {
  if (plan.root == nullptr) {
    return Status::Internal("physical plan has no root");
  }
  static obs::Counter& executions = obs::MetricsRegistry::Default().GetCounter(
      "xbench.plan.executions");
  static obs::Counter& rows_out = obs::MetricsRegistry::Default().GetCounter(
      "xbench.plan.rows_out");
  QueryResult result;
  std::vector<OperatorStats> op_stats(plan.labels.size());
  for (size_t i = 0; i < plan.labels.size(); ++i) {
    op_stats[i].label = plan.labels[i];
    op_stats[i].depth = i < plan.depths.size() ? plan.depths[i] : 0;
    op_stats[i].estimated_rows =
        i < plan.estimated_rows.size() ? plan.estimated_rows[i] : -1;
  }
  ParallelAgg parallel_agg;
  ExecContext ctx;
  ctx.bindings = &bindings;
  ctx.options = &options;
  ctx.arena = &result.constructed;
  ctx.stats = &op_stats;
  ctx.parallel = &parallel_agg;
  ctx.indexes = indexes;
  ctx.nodes_visited = &obs::MetricsRegistry::Default().GetCounter(
      "xbench.xquery.nodes_visited");
  ctx.trace = obs::Tracer::Default().enabled();
  obs::ScopedSpan span("xquery.plan.exec");
  Stopwatch total_watch;
  XBENCH_ASSIGN_OR_RETURN(result.items, plan.root->Run(ctx));
  const double total_millis = total_watch.ElapsedMillis();
  executions.Increment();
  rows_out.Increment(result.items.size());
  if (stats != nullptr) {
    // Self time = inclusive time minus the direct children's inclusive
    // time, attributed top-down with each subtree capped at its parent's
    // effective window (see AttributeSelfTime): Σ self telescopes to
    // exactly the root's inclusive time even when probe fallback re-runs
    // or parallel overlap book more child time than the parent measured.
    if (!op_stats.empty()) {
      AttributeSelfTime(op_stats, 0, op_stats[0].millis);
    }
    stats->operators = std::move(op_stats);
    stats->total_millis = total_millis;
    stats->max_parallelism = plan.max_parallelism;
    stats->parallel_busy_millis = parallel_agg.busy_millis;
    stats->parallel_caller_busy_millis = parallel_agg.caller_busy_millis;
    stats->parallel_modeled_millis = parallel_agg.modeled_millis;
    // Modeled wall time on a machine with max_parallelism free cores:
    // take each region's all-lane CPU out of the measured wall clock and
    // put its modeled makespan back in. On this (possibly smaller) host
    // the region's lanes serialize onto the caller's timeline, so the
    // measured wall clock contains ~busy_millis of region time.
    const double modeled = total_millis - parallel_agg.busy_millis +
                           parallel_agg.modeled_millis;
    stats->modeled_total_millis =
        modeled > parallel_agg.modeled_millis ? modeled
                                              : parallel_agg.modeled_millis;
  }
  return result;
}

}  // namespace xbench::xquery::exec
