#ifndef XBENCH_XQUERY_EXEC_EXEC_H_
#define XBENCH_XQUERY_EXEC_EXEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xquery/evaluator.h"
#include "xquery/exec/index_provider.h"
#include "xquery/plan/logical.h"

namespace xbench::xquery::exec {

/// Per-operator execution counters for one Execute() call. `millis` is
/// inclusive (a pipeline operator's time contains its inputs');
/// `self_millis` subtracts the direct children's inclusive time.
///
/// Attribution is top-down with each subtree capped at its parent's
/// effective window: when the direct children's measured inclusive times
/// sum past the parent's (an index probe re-running its fallback books
/// every re-run into the same child slots; under DESIGN.md §12 morsel
/// parallelism pool lanes run child-attributed work while the parent's
/// stopwatch is live), the children are scaled down proportionally
/// rather than the parent's self time clamping at 0 — so Σ self_millis
/// telescopes to exactly the root's inclusive time for every plan.
/// Validators still relax the Σself-vs-exec tolerance when a plan
/// reports max_parallelism > 1 (the root's wall clock itself is noisier
/// there).
struct OperatorStats {
  std::string label;
  /// Nesting depth in the plan tree (root = 0).
  int depth = 0;
  uint64_t rows_out = 0;
  /// Item operators: evaluations (once per driving tuple). Tuple
  /// operators: cursor opens.
  uint64_t invocations = 0;
  double millis = 0;
  double self_millis = 0;
  /// Morsels this operator's parallel regions executed (0 = scalar).
  uint64_t morsels = 0;
  /// Σ thread-CPU of those morsels across all pool lanes.
  double parallel_busy_millis = 0;
  /// Modeled makespan of those morsels list-scheduled onto
  /// `ExecStats::max_parallelism` ideal lanes.
  double parallel_modeled_millis = 0;
  /// Cost-model row estimate frozen into the plan for this operator
  /// (index probes only); -1 = no estimate. Reported next to the
  /// measured rows_out so explain output can show estimated vs. actual.
  double estimated_rows = -1;
};

/// Snapshot of every operator's counters, in plan pre-order (root first).
struct ExecStats {
  std::vector<OperatorStats> operators;
  /// Wall time of the whole operator-tree run; the per-operator self
  /// times sum to the root operator's inclusive share of it (within
  /// measurement noise).
  double total_millis = 0;
  /// Intra-query parallelism bound the plan was compiled with (1 =
  /// scalar; mirrors CompilationOptions::parallelism.max_intra).
  int max_parallelism = 1;
  /// Σ morsel thread-CPU over every parallel region of the run.
  double parallel_busy_millis = 0;
  /// The part of parallel_busy_millis the calling thread itself ran
  /// (already contained in any caller-side CPU measurement of the run).
  double parallel_caller_busy_millis = 0;
  /// Σ modeled region makespans (greedy list-scheduling of measured
  /// morsel CPU onto max_parallelism lanes).
  double parallel_modeled_millis = 0;
  /// total_millis with each parallel region's measured all-lane CPU
  /// replaced by its modeled makespan: the modeled wall time of this
  /// execution on a machine with max_parallelism free cores. Equals
  /// total_millis for scalar plans. This is the number bench_query
  /// --parallelism reports, mirroring the throughput driver's
  /// thread-CPU makespan convention for hosts with fewer cores than
  /// lanes.
  double modeled_total_millis = 0;
};

class ItemOp;

/// A compiled physical plan: a tree of pull-based operators mirroring the
/// logical plan 1:1, with descendant access paths (full scan vs. guided
/// walk) frozen in. Immutable after construction — one plan may be
/// executed many times (and is shared through the plan cache).
struct PhysicalPlan {
  PhysicalPlan();
  ~PhysicalPlan();
  PhysicalPlan(PhysicalPlan&&) noexcept;
  PhysicalPlan& operator=(PhysicalPlan&&) noexcept;

  std::unique_ptr<ItemOp> root;
  /// Intra-query parallelism bound compiled into the plan's operators
  /// (from LogicalPlan::max_intra_parallelism). Parallel-capable
  /// operators carry a " [parallel xN]" label suffix when > 1.
  int max_parallelism = 1;
  /// Stats slot index -> operator label, plan pre-order.
  std::vector<std::string> labels;
  /// Stats slot index -> tree depth (parallel to `labels`); pre-order plus
  /// depth reconstructs the tree shape for self-time attribution.
  std::vector<int> depths;
  /// Stats slot index -> cost-model row estimate (-1 = none); parallel to
  /// `labels`, copied into OperatorStats::estimated_rows per execution.
  std::vector<double> estimated_rows;

  /// Indented operator-tree rendering (for `xqlint --explain`).
  std::string ToString() const { return rendered; }

  std::string rendered;
};

/// Lowers a logical plan to physical operators.
Result<PhysicalPlan> BuildPhysicalPlan(const plan::LogicalPlan& logical);

/// Runs a compiled plan. `options` is forwarded to interpreter-core leaf
/// evaluation (so nested `//` steps inside predicates honor the same
/// guided/full-scan mode the plan was compiled for). When `stats` is
/// non-null, this execution's per-operator counters are copied into it.
/// `indexes` (nullable) gives probe operators runtime index access; with
/// it null every probe runs its compiled fallback access path.
/// The result's ToText() is byte-identical to the interpreter's for the
/// same query, bindings and options — differential tests enforce this.
Result<QueryResult> Execute(const PhysicalPlan& plan, const Bindings& bindings,
                            const EvalOptions& options,
                            ExecStats* stats = nullptr,
                            const IndexProvider* indexes = nullptr);

}  // namespace xbench::xquery::exec

#endif  // XBENCH_XQUERY_EXEC_EXEC_H_
