#ifndef XBENCH_XQUERY_EXEC_EXEC_H_
#define XBENCH_XQUERY_EXEC_EXEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xquery/evaluator.h"
#include "xquery/plan/logical.h"

namespace xbench::xquery::exec {

/// Per-operator execution counters for one Execute() call. `millis` is
/// inclusive (a pipeline operator's time contains its inputs');
/// `self_millis` subtracts the direct children's inclusive time, so self
/// times across the plan sum to the root's inclusive time.
struct OperatorStats {
  std::string label;
  /// Nesting depth in the plan tree (root = 0).
  int depth = 0;
  uint64_t rows_out = 0;
  /// Item operators: evaluations (once per driving tuple). Tuple
  /// operators: cursor opens.
  uint64_t invocations = 0;
  double millis = 0;
  double self_millis = 0;
};

/// Snapshot of every operator's counters, in plan pre-order (root first).
struct ExecStats {
  std::vector<OperatorStats> operators;
  /// Wall time of the whole operator-tree run; per-operator self times
  /// sum to this (within measurement noise).
  double total_millis = 0;
};

class ItemOp;

/// A compiled physical plan: a tree of pull-based operators mirroring the
/// logical plan 1:1, with descendant access paths (full scan vs. guided
/// walk) frozen in. Immutable after construction — one plan may be
/// executed many times (and is shared through the plan cache).
struct PhysicalPlan {
  PhysicalPlan();
  ~PhysicalPlan();
  PhysicalPlan(PhysicalPlan&&) noexcept;
  PhysicalPlan& operator=(PhysicalPlan&&) noexcept;

  std::unique_ptr<ItemOp> root;
  /// Stats slot index -> operator label, plan pre-order.
  std::vector<std::string> labels;
  /// Stats slot index -> tree depth (parallel to `labels`); pre-order plus
  /// depth reconstructs the tree shape for self-time attribution.
  std::vector<int> depths;

  /// Indented operator-tree rendering (for `xqlint --explain`).
  std::string ToString() const { return rendered; }

  std::string rendered;
};

/// Lowers a logical plan to physical operators.
Result<PhysicalPlan> BuildPhysicalPlan(const plan::LogicalPlan& logical);

/// Runs a compiled plan. `options` is forwarded to interpreter-core leaf
/// evaluation (so nested `//` steps inside predicates honor the same
/// guided/full-scan mode the plan was compiled for). When `stats` is
/// non-null, this execution's per-operator counters are copied into it.
/// The result's ToText() is byte-identical to the interpreter's for the
/// same query, bindings and options — differential tests enforce this.
Result<QueryResult> Execute(const PhysicalPlan& plan, const Bindings& bindings,
                            const EvalOptions& options,
                            ExecStats* stats = nullptr);

}  // namespace xbench::xquery::exec

#endif  // XBENCH_XQUERY_EXEC_EXEC_H_
