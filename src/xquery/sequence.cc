#include "xquery/sequence.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace xbench::xquery {

std::string FormatNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "INF" : "-INF";
  // The double→int64 conversion is undefined outside int64's range, so
  // only integral values inside [-2^63, 2^63) take the integer format.
  if (value >= -9223372036854775808.0 && value < 9223372036854775808.0 &&
      value == static_cast<double>(static_cast<int64_t>(value))) {
    return std::to_string(static_cast<int64_t>(value));
  }
  std::string s = std::to_string(value);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string AtomizeToString(const Item& item) {
  switch (item.kind) {
    case Item::Kind::kNode:
      return item.node->is_text() ? item.node->text()
                                  : item.node->TextContent();
    case Item::Kind::kAttribute:
      return item.node->attributes()[static_cast<size_t>(item.attr_index)]
          .value;
    case Item::Kind::kString:
      return item.str;
    case Item::Kind::kNumber:
      return FormatNumber(item.num);
    case Item::Kind::kBool:
      return item.boolean ? "true" : "false";
  }
  return "";
}

std::optional<double> AtomizeToNumber(const Item& item) {
  if (item.kind == Item::Kind::kNumber) return item.num;
  if (item.kind == Item::Kind::kBool) return item.boolean ? 1.0 : 0.0;
  const double value = ParseDouble(AtomizeToString(item));
  if (std::isnan(value)) return std::nullopt;
  return value;
}

Result<bool> EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  const Item& first = seq.front();
  if (first.is_node_kind()) return true;
  if (seq.size() > 1) {
    return Status::InvalidArgument(
        "effective boolean value of a multi-item atomic sequence");
  }
  switch (first.kind) {
    case Item::Kind::kBool:
      return first.boolean;
    case Item::Kind::kNumber:
      return first.num != 0.0 && !std::isnan(first.num);
    case Item::Kind::kString:
      return !first.str.empty();
    default:
      return true;
  }
}

namespace {

/// Root of the tree containing `node` (identifies the document).
const xml::Node* TreeRoot(const xml::Node* node) {
  while (node->parent() != nullptr) node = node->parent();
  return node;
}

struct DocOrderKey {
  const xml::Node* root;
  uint32_t order;
  int attr_index;
};

DocOrderKey KeyOf(const Item& item) {
  return {TreeRoot(item.node), item.node->order(),
          item.kind == Item::Kind::kAttribute ? item.attr_index : -1};
}

bool KeyLess(const DocOrderKey& a, const DocOrderKey& b) {
  if (a.root != b.root) return a.root < b.root;
  if (a.order != b.order) return a.order < b.order;
  return a.attr_index < b.attr_index;
}

}  // namespace

bool SameItem(const Item& a, const Item& b) {
  if (a.kind != b.kind) return false;
  if (!a.is_node_kind()) return false;
  return a.node == b.node && a.attr_index == b.attr_index;
}

void SortDocumentOrderUnique(Sequence& seq) {
  for (const Item& item : seq) {
    if (!item.is_node_kind()) return;  // mixed: leave untouched
  }
  std::stable_sort(seq.begin(), seq.end(), [](const Item& a, const Item& b) {
    return KeyLess(KeyOf(a), KeyOf(b));
  });
  seq.erase(std::unique(seq.begin(), seq.end(),
                        [](const Item& a, const Item& b) {
                          return SameItem(a, b);
                        }),
            seq.end());
}

}  // namespace xbench::xquery
