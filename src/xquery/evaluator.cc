#include "xquery/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/serializer.h"
#include "xquery/functions.h"
#include "xquery/parser.h"
#include "xquery/step_eval.h"

namespace xbench::xquery {
namespace {

/// The dynamic focus: context item, position and size.
struct Focus {
  Item item;
  size_t position = 0;
  size_t size = 0;
  bool valid = false;
};

/// General comparison on two atomized values: numeric when both parse as
/// numbers, string otherwise.
bool CompareAtomic(const Item& a, const Item& b, CompareOp op) {
  const auto na = AtomizeToNumber(a);
  const auto nb = AtomizeToNumber(b);
  int cmp;
  if (na.has_value() && nb.has_value()) {
    cmp = *na < *nb ? -1 : (*na > *nb ? 1 : 0);
  } else {
    const std::string sa = AtomizeToString(a);
    const std::string sb = AtomizeToString(b);
    cmp = sa < sb ? -1 : (sa > sb ? 1 : 0);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// Span name for the operator kinds worth tracing individually (the ones
/// that dominate query time); others return nullptr and get no span.
const char* OperatorSpanName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kPath:
      return "xquery.op.path";
    case ExprKind::kFlwor:
      return "xquery.op.flwor";
    case ExprKind::kQuantified:
      return "xquery.op.quantified";
    case ExprKind::kFunctionCall:
      return "xquery.op.function";
    case ExprKind::kConstructor:
      return "xquery.op.constructor";
    default:
      return nullptr;
  }
}

class Evaluator {
 public:
  Evaluator(const Bindings& bindings, const EvalOptions& options,
            std::vector<std::unique_ptr<xml::Node>>& arena,
            const std::vector<ScopeBinding>* seed_scope = nullptr)
      : bindings_(bindings),
        options_(options),
        arena_(arena),
        operator_evals_(obs::MetricsRegistry::Default().GetCounter(
            "xbench.xquery.operator_evals")),
        nodes_visited_(obs::MetricsRegistry::Default().GetCounter(
            "xbench.xquery.nodes_visited")),
        trace_operators_(obs::Tracer::Default().enabled()) {
    if (seed_scope != nullptr) scope_ = *seed_scope;
  }

  Result<Sequence> Eval(const Expr& e, const Focus& focus) {
    operator_evals_.Increment();
    if (trace_operators_) {
      if (const char* span_name = OperatorSpanName(e.kind)) {
        obs::ScopedSpan span(span_name);
        return EvalDispatch(e, focus);
      }
    }
    return EvalDispatch(e, focus);
  }

  Result<Sequence> EvalDispatch(const Expr& e, const Focus& focus) {
    switch (e.kind) {
      case ExprKind::kStringLiteral:
        return Sequence{Item::String(e.string_value)};
      case ExprKind::kNumberLiteral:
        return Sequence{Item::Number(e.number_value)};
      case ExprKind::kVariable:
        return LookupVariable(e.variable);
      case ExprKind::kContextItem:
        if (!focus.valid) {
          return Status::InvalidArgument("context item is undefined");
        }
        return Sequence{focus.item};
      case ExprKind::kSequence: {
        Sequence out;
        for (const auto& child : e.children) {
          XBENCH_ASSIGN_OR_RETURN(Sequence part, Eval(*child, focus));
          out.insert(out.end(), part.begin(), part.end());
        }
        return out;
      }
      case ExprKind::kPath:
        return EvalPath(e, focus);
      case ExprKind::kFilter:
        return EvalFilter(e, focus);
      case ExprKind::kComparison: {
        XBENCH_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.lhs, focus));
        XBENCH_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.rhs, focus));
        for (const Item& a : lhs) {
          for (const Item& b : rhs) {
            if (CompareAtomic(a, b, e.compare_op)) {
              return Sequence{Item::Bool(true)};
            }
          }
        }
        return Sequence{Item::Bool(false)};
      }
      case ExprKind::kArithmetic: {
        XBENCH_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.lhs, focus));
        XBENCH_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.rhs, focus));
        if (lhs.empty() || rhs.empty()) return Sequence{};
        const auto a = AtomizeToNumber(lhs.front());
        const auto b = AtomizeToNumber(rhs.front());
        if (!a.has_value() || !b.has_value()) {
          return Status::InvalidArgument("arithmetic on non-numeric values");
        }
        double r = 0;
        switch (e.arith_op) {
          case ArithOp::kAdd:
            r = *a + *b;
            break;
          case ArithOp::kSub:
            r = *a - *b;
            break;
          case ArithOp::kMul:
            r = *a * *b;
            break;
          case ArithOp::kDiv:
            r = *a / *b;
            break;
          case ArithOp::kMod:
            r = std::fmod(*a, *b);
            break;
        }
        return Sequence{Item::Number(r)};
      }
      case ExprKind::kLogical: {
        XBENCH_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.lhs, focus));
        XBENCH_ASSIGN_OR_RETURN(bool lv, EffectiveBooleanValue(lhs));
        if (e.logical_op == LogicalOp::kAnd && !lv) {
          return Sequence{Item::Bool(false)};
        }
        if (e.logical_op == LogicalOp::kOr && lv) {
          return Sequence{Item::Bool(true)};
        }
        XBENCH_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.rhs, focus));
        XBENCH_ASSIGN_OR_RETURN(bool rv, EffectiveBooleanValue(rhs));
        return Sequence{Item::Bool(rv)};
      }
      case ExprKind::kFunctionCall: {
        if (IsContextFunction(e.function_name)) {
          if (!focus.valid) {
            return Status::InvalidArgument(e.function_name +
                                           "(): no dynamic focus");
          }
          const double v = e.function_name == "position"
                               ? static_cast<double>(focus.position)
                               : static_cast<double>(focus.size);
          return Sequence{Item::Number(v)};
        }
        std::vector<Sequence> args;
        args.reserve(e.children.size());
        for (const auto& child : e.children) {
          XBENCH_ASSIGN_OR_RETURN(Sequence arg, Eval(*child, focus));
          args.push_back(std::move(arg));
        }
        return CallFunction(e.function_name, std::move(args));
      }
      case ExprKind::kFlwor:
        return EvalFlwor(e, focus);
      case ExprKind::kQuantified:
        return EvalQuantified(e, focus);
      case ExprKind::kIfThenElse: {
        XBENCH_ASSIGN_OR_RETURN(Sequence cond, Eval(*e.lhs, focus));
        XBENCH_ASSIGN_OR_RETURN(bool cv, EffectiveBooleanValue(cond));
        return Eval(cv ? *e.then_branch : *e.else_branch, focus);
      }
      case ExprKind::kRange: {
        XBENCH_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.lhs, focus));
        XBENCH_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.rhs, focus));
        if (lhs.empty() || rhs.empty()) return Sequence{};
        const auto lo = AtomizeToNumber(lhs.front());
        const auto hi = AtomizeToNumber(rhs.front());
        if (!lo.has_value() || !hi.has_value()) {
          return Status::InvalidArgument("'to' requires numeric operands");
        }
        // Bound the operands before converting: double→int64 is undefined
        // outside int64's range, and an unbounded range would OOM.
        constexpr double kInt64Lo = -9223372036854775808.0;
        constexpr double kInt64Hi = 9223372036854775808.0;
        if (!std::isfinite(*lo) || !std::isfinite(*hi) || *lo < kInt64Lo ||
            *lo >= kInt64Hi || *hi < kInt64Lo || *hi >= kInt64Hi) {
          return Status::InvalidArgument("'to' operands out of integer range");
        }
        const int64_t first = static_cast<int64_t>(*lo);
        const int64_t last = static_cast<int64_t>(*hi);
        if (first > last) return Sequence{};
        constexpr uint64_t kMaxRangeItems = 1u << 24;
        if (static_cast<uint64_t>(last) - static_cast<uint64_t>(first) >=
            kMaxRangeItems) {
          return Status::InvalidArgument("'to' range too large");
        }
        Sequence out;
        for (int64_t v = first;; ++v) {
          out.push_back(Item::Number(static_cast<double>(v)));
          if (v == last) break;
        }
        return out;
      }
      case ExprKind::kUnion: {
        Sequence out;
        for (const auto& child : e.children) {
          XBENCH_ASSIGN_OR_RETURN(Sequence part, Eval(*child, focus));
          for (const Item& item : part) {
            if (!item.is_node_kind()) {
              return Status::InvalidArgument(
                  "'|' operands must be node sequences");
            }
            out.push_back(item);
          }
        }
        SortDocumentOrderUnique(out);
        return out;
      }
      case ExprKind::kConstructor: {
        XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> node,
                                BuildConstructed(e, focus));
        // Constructed trees get order ids so document-order operations on
        // them behave.
        uint32_t next = 1;
        AssignOrder(*node, next);
        arena_.push_back(std::move(node));
        return Sequence{Item::Node(arena_.back().get())};
      }
    }
    return Status::Internal("unhandled expression kind");
  }

 private:
  static void AssignOrder(xml::Node& node, uint32_t& next) {
    node.set_order(next++);
    for (const auto& child : node.children()) {
      AssignOrder(const_cast<xml::Node&>(*child), next);
    }
  }

  Result<Sequence> LookupVariable(const std::string& name) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    auto it = bindings_.find(name);
    if (it != bindings_.end()) return it->second;
    return Status::NotFound("unbound variable $" + name);
  }

  // --- paths ------------------------------------------------------------

  Result<Sequence> EvalPath(const Expr& e, const Focus& focus) {
    Sequence current;
    if (e.path_root != nullptr) {
      XBENCH_ASSIGN_OR_RETURN(current, Eval(*e.path_root, focus));
    } else if (e.path_from_root) {
      if (!focus.valid || !focus.item.is_node_kind()) {
        return Status::InvalidArgument("'/' with no context node");
      }
      const xml::Node* root = focus.item.node;
      while (root->parent() != nullptr) root = root->parent();
      current.push_back(Item::Node(root));
      // An absolute path selects from the (virtual) document node, so the
      // first child step must be able to match the root element itself.
      // We model this by evaluating the first step against a synthetic
      // self-or-child union below.
      return EvalStepsFromDocumentNode(e, current);
    } else {
      if (!focus.valid) {
        return Status::InvalidArgument("relative path with no context item");
      }
      current.push_back(focus.item);
    }
    for (size_t i = 0; i < e.steps.size(); ++i) {
      const Step& step = e.steps[i];
      // `//name` fusion: when the analyzer resolved the descendant step
      // into concrete child chains, walk those instead of scanning every
      // subtree node (the paper's Q8/Q9 "unknown step" substitution).
      if (options_.use_step_expansions &&
          step.axis == Axis::kDescendantOrSelf && step.name_test == "*" &&
          step.predicates.empty() && i + 1 < e.steps.size() &&
          e.steps[i + 1].axis == Axis::kChild &&
          !e.steps[i + 1].expansions.empty()) {
        XBENCH_ASSIGN_OR_RETURN(
            current, EvalExpandedDescendant(e.steps[i + 1], current));
        ++i;
        continue;
      }
      XBENCH_ASSIGN_OR_RETURN(current, EvalStep(step, current, focus));
    }
    return current;
  }

  /// Evaluates the fused `//name` pair through `step.expansions`. Context
  /// elements whose type the analyzer did not cover fall back to a full
  /// subtree scan, so the fast path can never drop results. Predicates
  /// evaluate per parent element — the same candidate lists the unfused
  /// child step builds — so positional predicates keep their meaning.
  Result<Sequence> EvalExpandedDescendant(const Step& step,
                                          const Sequence& input) {
    Sequence result;
    for (const Item& context : input) {
      if (!context.is_node_kind()) {
        return Status::InvalidArgument("path step applied to an atomic value");
      }
      if (context.kind == Item::Kind::kAttribute) continue;
      const xml::Node& node = *context.node;
      std::vector<const StepExpansion*> chains;
      bool covered = false;
      for (const StepExpansion& expansion : step.expansions) {
        if (expansion.context_type == node.name()) {
          covered = true;
          chains.push_back(&expansion);
        }
      }
      if (step.predicates.empty()) {
        Sequence candidates;
        if (covered) {
          GuidedCollect(node, 0, chains, candidates, nodes_visited_);
        } else {
          CollectDescendants(node, step.name_test, /*include_self=*/false,
                             candidates, nodes_visited_);
        }
        result.insert(result.end(), candidates.begin(), candidates.end());
        continue;
      }
      std::vector<Sequence> groups;
      if (covered) {
        GuidedCollectGroups(node, 0, chains, groups, nodes_visited_);
      } else {
        CollectChildGroups(node, step.name_test, groups, nodes_visited_);
      }
      for (Sequence& group : groups) {
        XBENCH_ASSIGN_OR_RETURN(
            group, ApplyPredicates(step.predicates, std::move(group)));
        result.insert(result.end(), group.begin(), group.end());
      }
    }
    SortDocumentOrderUnique(result);
    return result;
  }

  /// Handles absolute paths: the context is the document node (the parent
  /// of the root element), which our tree model does not materialize. The
  /// first child step therefore matches against the root element.
  Result<Sequence> EvalStepsFromDocumentNode(const Expr& e,
                                             Sequence roots) {
    Sequence current = std::move(roots);
    bool first = true;
    for (const Step& step : e.steps) {
      if (first && step.axis == Axis::kChild) {
        // Match the root element itself instead of its children.
        Step self_step;
        self_step.axis = Axis::kSelf;
        self_step.name_test = step.name_test;
        Sequence matched;
        for (const Item& item : current) {
          if (item.kind == Item::Kind::kNode &&
              ElementMatches(*item.node, step.name_test)) {
            matched.push_back(item);
          }
        }
        XBENCH_ASSIGN_OR_RETURN(
            current, ApplyPredicates(step.predicates, std::move(matched)));
        first = false;
        continue;
      }
      first = false;
      XBENCH_ASSIGN_OR_RETURN(current, EvalStep(step, current, Focus{}));
    }
    return current;
  }

  Result<Sequence> EvalStep(const Step& step, const Sequence& input,
                            const Focus&) {
    Sequence result;
    for (const Item& context : input) {
      if (!context.is_node_kind()) {
        return Status::InvalidArgument("path step applied to an atomic value");
      }
      if (context.kind == Item::Kind::kAttribute) {
        // Only self::* is meaningful on attributes.
        if (step.axis == Axis::kSelf) result.push_back(context);
        continue;
      }
      Sequence candidates =
          AxisCandidates(*context.node, step.axis, step.name_test,
                         nodes_visited_);
      XBENCH_ASSIGN_OR_RETURN(
          candidates, ApplyPredicates(step.predicates, std::move(candidates)));
      result.insert(result.end(), candidates.begin(), candidates.end());
    }
    SortDocumentOrderUnique(result);
    return result;
  }

  /// Applies a predicate list to a candidate sequence, with positional
  /// semantics (a numeric predicate value selects by position).
  Result<Sequence> ApplyPredicates(const std::vector<ExprPtr>& predicates,
                                   Sequence candidates) {
    for (const auto& pred : predicates) {
      Sequence kept;
      const size_t n = candidates.size();
      for (size_t i = 0; i < n; ++i) {
        Focus pf;
        pf.item = candidates[i];
        pf.position = i + 1;
        pf.size = n;
        pf.valid = true;
        XBENCH_ASSIGN_OR_RETURN(Sequence value, Eval(*pred, pf));
        bool keep;
        if (value.size() == 1 && value.front().kind == Item::Kind::kNumber) {
          keep = static_cast<double>(i + 1) == value.front().num;
        } else {
          XBENCH_ASSIGN_OR_RETURN(keep, EffectiveBooleanValue(value));
        }
        if (keep) kept.push_back(candidates[i]);
      }
      candidates = std::move(kept);
    }
    return candidates;
  }

  Result<Sequence> EvalFilter(const Expr& e, const Focus& focus) {
    XBENCH_ASSIGN_OR_RETURN(Sequence base, Eval(*e.lhs, focus));
    return ApplyPredicates(e.children, std::move(base));
  }

  // --- FLWOR --------------------------------------------------------------

  struct Binding {
    std::string name;
    Sequence value;
  };
  using Env = std::vector<Binding>;

  template <typename Fn>
  Result<Sequence> WithEnv(const Env& env, Fn&& fn) {
    const size_t mark = scope_.size();
    for (const Binding& b : env) scope_.emplace_back(b.name, b.value);
    auto result = fn();
    scope_.resize(mark);
    return result;
  }

  Result<Sequence> EvalFlwor(const Expr& e, const Focus& focus) {
    std::vector<Env> envs;
    envs.emplace_back();
    size_t fi = 0;
    size_t li = 0;
    for (char kind : e.clause_order) {
      std::vector<Env> next;
      if (kind == 'f') {
        const ForClause& clause = e.for_clauses[fi++];
        for (Env& env : envs) {
          XBENCH_ASSIGN_OR_RETURN(
              Sequence input,
              WithEnv(env, [&] { return Eval(*clause.input, focus); }));
          for (size_t i = 0; i < input.size(); ++i) {
            Env extended = env;
            extended.push_back({clause.variable, Sequence{input[i]}});
            if (!clause.position_variable.empty()) {
              extended.push_back(
                  {clause.position_variable,
                   Sequence{Item::Number(static_cast<double>(i + 1))}});
            }
            next.push_back(std::move(extended));
          }
        }
        envs = std::move(next);
      } else {
        const LetClause& clause = e.let_clauses[li++];
        for (Env& env : envs) {
          XBENCH_ASSIGN_OR_RETURN(
              Sequence value,
              WithEnv(env, [&] { return Eval(*clause.value, focus); }));
          env.push_back({clause.variable, std::move(value)});
        }
      }
    }

    if (e.where != nullptr) {
      std::vector<Env> kept;
      for (Env& env : envs) {
        XBENCH_ASSIGN_OR_RETURN(
            Sequence cond,
            WithEnv(env, [&] { return Eval(*e.where, focus); }));
        XBENCH_ASSIGN_OR_RETURN(bool keep, EffectiveBooleanValue(cond));
        if (keep) kept.push_back(std::move(env));
      }
      envs = std::move(kept);
    }

    if (!e.order_by.empty()) {
      struct Keyed {
        size_t index;
        std::vector<std::pair<bool, double>> numeric_keys;  // (has, value)
        std::vector<std::string> string_keys;
      };
      std::vector<Keyed> keyed(envs.size());
      for (size_t i = 0; i < envs.size(); ++i) {
        keyed[i].index = i;
        for (const OrderSpec& spec : e.order_by) {
          XBENCH_ASSIGN_OR_RETURN(
              Sequence key,
              WithEnv(envs[i], [&] { return Eval(*spec.key, focus); }));
          if (spec.numeric) {
            std::optional<double> v;
            if (!key.empty()) v = AtomizeToNumber(key.front());
            keyed[i].numeric_keys.emplace_back(v.has_value(),
                                               v.value_or(0.0));
            keyed[i].string_keys.emplace_back();
          } else {
            keyed[i].numeric_keys.emplace_back(false, 0.0);
            keyed[i].string_keys.push_back(
                key.empty() ? "" : AtomizeToString(key.front()));
          }
        }
      }
      std::stable_sort(
          keyed.begin(), keyed.end(), [&](const Keyed& a, const Keyed& b) {
            for (size_t k = 0; k < e.order_by.size(); ++k) {
              const OrderSpec& spec = e.order_by[k];
              int cmp = 0;
              if (spec.numeric) {
                const auto& [ha, va] = a.numeric_keys[k];
                const auto& [hb, vb] = b.numeric_keys[k];
                if (ha != hb) {
                  cmp = ha ? 1 : -1;  // empty sorts first
                } else {
                  cmp = va < vb ? -1 : (va > vb ? 1 : 0);
                }
              } else {
                cmp = a.string_keys[k].compare(b.string_keys[k]);
                cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
              }
              if (cmp == 0) continue;
              return spec.ascending ? cmp < 0 : cmp > 0;
            }
            return false;
          });
      std::vector<Env> ordered;
      ordered.reserve(envs.size());
      for (const Keyed& k : keyed) ordered.push_back(std::move(envs[k.index]));
      envs = std::move(ordered);
    }

    Sequence out;
    for (Env& env : envs) {
      XBENCH_ASSIGN_OR_RETURN(
          Sequence part,
          WithEnv(env, [&] { return Eval(*e.return_expr, focus); }));
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  Result<Sequence> EvalQuantified(const Expr& e, const Focus& focus) {
    XBENCH_ASSIGN_OR_RETURN(Sequence input, Eval(*e.quant_input, focus));
    for (const Item& item : input) {
      Env env;
      env.push_back({e.quant_variable, Sequence{item}});
      XBENCH_ASSIGN_OR_RETURN(
          Sequence value,
          WithEnv(env, [&] { return Eval(*e.quant_satisfies, focus); }));
      XBENCH_ASSIGN_OR_RETURN(bool v, EffectiveBooleanValue(value));
      if (e.quantifier_every && !v) return Sequence{Item::Bool(false)};
      if (!e.quantifier_every && v) return Sequence{Item::Bool(true)};
    }
    return Sequence{Item::Bool(e.quantifier_every)};
  }

  // --- constructors -------------------------------------------------------

  Result<std::string> EvalContentParts(
      const std::vector<ConstructorContent>& parts, const Focus& focus) {
    std::string out;
    for (const ConstructorContent& part : parts) {
      switch (part.kind) {
        case ConstructorContent::kText:
          out += part.text;
          break;
        case ConstructorContent::kExpr: {
          XBENCH_ASSIGN_OR_RETURN(Sequence value, Eval(*part.expr, focus));
          for (size_t i = 0; i < value.size(); ++i) {
            if (i != 0) out += " ";
            out += AtomizeToString(value[i]);
          }
          break;
        }
        case ConstructorContent::kChild:
          return Status::InvalidArgument(
              "element constructor in attribute value");
      }
    }
    return out;
  }

  Result<std::unique_ptr<xml::Node>> BuildConstructed(const Expr& e,
                                                      const Focus& focus) {
    auto element = xml::Node::Element(e.element_name);
    for (const ConstructorAttr& attr : e.constructor_attrs) {
      XBENCH_ASSIGN_OR_RETURN(std::string value,
                              EvalContentParts(attr.value_parts, focus));
      element->SetAttribute(attr.name, std::move(value));
    }
    std::vector<std::string> atomics;
    auto flush_atomics = [&]() {
      if (atomics.empty()) return;
      element->AddText(Join(atomics, " "));
      atomics.clear();
    };
    for (const ConstructorContent& part : e.constructor_content) {
      switch (part.kind) {
        case ConstructorContent::kText:
          flush_atomics();
          element->AddText(part.text);
          break;
        case ConstructorContent::kChild: {
          flush_atomics();
          XBENCH_ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> child,
                                  BuildConstructed(*part.child, focus));
          element->AddChild(std::move(child));
          break;
        }
        case ConstructorContent::kExpr: {
          XBENCH_ASSIGN_OR_RETURN(Sequence value, Eval(*part.expr, focus));
          for (const Item& item : value) {
            if (item.kind == Item::Kind::kNode) {
              flush_atomics();
              element->AddChild(item.node->Clone());
            } else if (item.kind == Item::Kind::kAttribute) {
              // Attribute items in content contribute their value as text.
              atomics.push_back(AtomizeToString(item));
            } else {
              atomics.push_back(AtomizeToString(item));
            }
          }
          flush_atomics();
          break;
        }
      }
    }
    flush_atomics();
    return element;
  }

  const Bindings& bindings_;
  const EvalOptions& options_;
  std::vector<std::unique_ptr<xml::Node>>& arena_;
  std::vector<std::pair<std::string, Sequence>> scope_;
  obs::Counter& operator_evals_;
  obs::Counter& nodes_visited_;
  // Sampled once per query: per-operator spans are only recorded when the
  // tracer was enabled at evaluator construction.
  const bool trace_operators_;
};

}  // namespace

std::string QueryResult::ToText() const {
  std::string out;
  for (const Item& item : items) {
    if (item.kind == Item::Kind::kNode && item.node->is_element()) {
      out += xml::Serialize(*item.node);
    } else {
      out += AtomizeToString(item);
    }
    out.push_back('\n');
  }
  return out;
}

Result<QueryResult> Evaluate(const Expr& query, const Bindings& bindings,
                             const EvalOptions& options) {
  obs::ScopedSpan span("xquery.eval");
  QueryResult result;
  Evaluator evaluator(bindings, options, result.constructed);
  Focus focus;  // no initial context item; queries start from variables
  auto items = evaluator.Eval(query, focus);
  if (!items.ok()) return items.status();
  result.items = std::move(items).value();
  return result;
}

Result<Sequence> EvalWithEnv(const Expr& expr, const Bindings& bindings,
                             const std::vector<ScopeBinding>& scope,
                             const Item* context_item, size_t position,
                             size_t size, const EvalOptions& options,
                             std::vector<std::unique_ptr<xml::Node>>& arena) {
  Evaluator evaluator(bindings, options, arena, &scope);
  Focus focus;
  if (context_item != nullptr) {
    focus.item = *context_item;
    focus.position = position;
    focus.size = size;
    focus.valid = true;
  }
  return evaluator.Eval(expr, focus);
}

Result<QueryResult> EvaluateQuery(std::string_view query,
                                  const Bindings& bindings) {
  auto parsed = [&] {
    obs::ScopedSpan span("xquery.parse");
    return ParseQuery(query);
  }();
  if (!parsed.ok()) return parsed.status();
  return Evaluate(**parsed, bindings);
}

}  // namespace xbench::xquery
