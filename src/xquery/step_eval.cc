#include "xquery/step_eval.h"

namespace xbench::xquery {

bool ElementMatches(const xml::Node& node, const std::string& name_test) {
  if (node.is_text()) return name_test == "text()";
  if (name_test == "text()") return false;
  return name_test == "*" || node.name() == name_test;
}

void CollectDescendants(const xml::Node& node, const std::string& name_test,
                        bool include_self, Sequence& out,
                        obs::Counter& visited) {
  visited.Increment();
  if (include_self && ElementMatches(node, name_test)) {
    out.push_back(Item::Node(&node));
  }
  for (const auto& child : node.children()) {
    CollectDescendants(*child, name_test, /*include_self=*/true, out, visited);
  }
}

void GuidedCollect(const xml::Node& node, size_t depth,
                   const std::vector<const StepExpansion*>& chains,
                   Sequence& out, obs::Counter& visited) {
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    visited.Increment();
    bool emit = false;
    std::vector<const StepExpansion*> deeper;
    for (const StepExpansion* chain : chains) {
      if (chain->labels.size() <= depth ||
          chain->labels[depth] != child->name()) {
        continue;
      }
      if (chain->labels.size() == depth + 1) {
        emit = true;
      } else {
        deeper.push_back(chain);
      }
    }
    if (emit) out.push_back(Item::Node(child.get()));
    if (!deeper.empty()) {
      GuidedCollect(*child, depth + 1, deeper, out, visited);
    }
  }
}

void GuidedCollectGroups(const xml::Node& node, size_t depth,
                         const std::vector<const StepExpansion*>& chains,
                         std::vector<Sequence>& groups,
                         obs::Counter& visited) {
  Sequence here;
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    visited.Increment();
    bool emit = false;
    std::vector<const StepExpansion*> deeper;
    for (const StepExpansion* chain : chains) {
      if (chain->labels.size() <= depth ||
          chain->labels[depth] != child->name()) {
        continue;
      }
      if (chain->labels.size() == depth + 1) {
        emit = true;
      } else {
        deeper.push_back(chain);
      }
    }
    if (emit) here.push_back(Item::Node(child.get()));
    if (!deeper.empty()) {
      GuidedCollectGroups(*child, depth + 1, deeper, groups, visited);
    }
  }
  if (!here.empty()) groups.push_back(std::move(here));
}

void CollectChildGroups(const xml::Node& node, const std::string& name_test,
                        std::vector<Sequence>& groups,
                        obs::Counter& visited) {
  visited.Increment();
  Sequence here;
  for (const auto& child : node.children()) {
    if (ElementMatches(*child, name_test)) {
      here.push_back(Item::Node(child.get()));
    }
  }
  if (!here.empty()) groups.push_back(std::move(here));
  for (const auto& child : node.children()) {
    if (child->is_element()) {
      CollectChildGroups(*child, name_test, groups, visited);
    }
  }
}

Sequence AxisCandidates(const xml::Node& node, Axis axis,
                        const std::string& name_test, obs::Counter& visited) {
  Sequence out;
  switch (axis) {
    case Axis::kChild:
      visited.Increment(node.children().size());
      for (const auto& child : node.children()) {
        if (ElementMatches(*child, name_test)) {
          out.push_back(Item::Node(child.get()));
        }
      }
      break;
    case Axis::kDescendant:
      CollectDescendants(node, name_test, /*include_self=*/false, out,
                         visited);
      break;
    case Axis::kDescendantOrSelf:
      if (ElementMatches(node, name_test)) {
        out.push_back(Item::Node(&node));
      }
      CollectDescendants(node, name_test, /*include_self=*/false, out,
                         visited);
      break;
    case Axis::kAttribute: {
      const auto& attrs = node.attributes();
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (name_test == "*" || attrs[i].name == name_test) {
          out.push_back(Item::Attr(&node, static_cast<int>(i)));
        }
      }
      break;
    }
    case Axis::kSelf:
      if (ElementMatches(node, name_test)) {
        out.push_back(Item::Node(&node));
      }
      break;
    case Axis::kParent:
      if (node.parent() != nullptr &&
          ElementMatches(*node.parent(), name_test)) {
        out.push_back(Item::Node(node.parent()));
      }
      break;
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      const xml::Node* parent = node.parent();
      if (parent == nullptr) break;
      const auto& siblings = parent->children();
      size_t self_index = siblings.size();
      for (size_t i = 0; i < siblings.size(); ++i) {
        if (siblings[i].get() == &node) {
          self_index = i;
          break;
        }
      }
      if (axis == Axis::kFollowingSibling) {
        for (size_t i = self_index + 1; i < siblings.size(); ++i) {
          if (ElementMatches(*siblings[i], name_test)) {
            out.push_back(Item::Node(siblings[i].get()));
          }
        }
      } else {
        for (size_t i = self_index; i-- > 0;) {
          if (ElementMatches(*siblings[i], name_test)) {
            out.push_back(Item::Node(siblings[i].get()));
          }
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace xbench::xquery
