#ifndef XBENCH_XQUERY_AST_H_
#define XBENCH_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace xbench::xquery {

enum class ExprKind {
  kStringLiteral,
  kNumberLiteral,
  kVariable,
  kContextItem,   // .
  kSequence,      // e1, e2, ...
  kPath,          // root expr + steps
  kComparison,    // = != < <= > >=
  kArithmetic,    // + - * div mod
  kLogical,       // and / or
  kFunctionCall,
  kFlwor,
  kQuantified,    // some/every $v in e satisfies e
  kIfThenElse,
  kConstructor,   // direct element constructor
  kFilter,        // primary-expression predicates: $x[...]  (FilterExpr)
  kRange,         // e1 to e2 (integer range)
  kUnion,         // e1 | e2 (node-sequence union in document order)
};

enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kAttribute,
  kSelf,
  kParent,
  kFollowingSibling,
  kPrecedingSibling,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
enum class LogicalOp { kAnd, kOr };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Schema-derived expansion of a descendant step. `//name` parses into a
/// descendant-or-self::* step followed by a child step; when a DTD bounds
/// the label paths that can lead from a context element of `context_type`
/// to the step's name test, the analyzer records each concrete chain here
/// (child element names, target last). Evaluators may then walk these
/// child chains instead of scanning the whole subtree.
struct StepExpansion {
  std::string context_type;
  std::vector<std::string> labels;
};

/// One step of a path expression: axis + name test + predicates.
struct Step {
  Axis axis = Axis::kChild;
  /// Element/attribute name, or "*" for a wildcard.
  std::string name_test;
  std::vector<ExprPtr> predicates;
  /// Filled by analysis::Analyze for child steps that follow a
  /// descendant-or-self::* step (the `//` idiom). Empty = no expansion
  /// known; evaluation falls back to a full subtree scan.
  std::vector<StepExpansion> expansions;
};

struct ForClause {
  std::string variable;
  std::string position_variable;  // `at $i`, empty when absent
  ExprPtr input;
};

struct LetClause {
  std::string variable;
  ExprPtr value;
};

struct OrderSpec {
  ExprPtr key;
  bool ascending = true;
  bool numeric = false;  // key wrapped in number()/xs:double cast
};

/// Content piece of a direct element constructor.
struct ConstructorContent {
  enum Kind { kText, kExpr, kChild } kind = kText;
  std::string text;          // kText
  ExprPtr expr;              // kExpr (enclosed { ... })
  ExprPtr child;             // kChild (nested constructor)
};

struct ConstructorAttr {
  std::string name;
  /// Literal + embedded expressions, concatenated at evaluation time.
  std::vector<ConstructorContent> value_parts;
};

/// A node of the expression tree. One struct with per-kind fields keeps
/// the evaluator a simple switch (the guide discourages RTTI/dynamic_cast
/// trees for closed shapes like this).
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}

  ExprKind kind;

  // kStringLiteral / kNumberLiteral
  std::string string_value;
  double number_value = 0;

  // kVariable
  std::string variable;

  // kSequence: items in `children`
  std::vector<ExprPtr> children;

  // kPath
  ExprPtr path_root;  // nullptr = start from context item / document root
  bool path_from_root = false;  // query began with '/' or '//'
  std::vector<Step> steps;

  // kComparison / kArithmetic / kLogical
  CompareOp compare_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;
  LogicalOp logical_op = LogicalOp::kAnd;
  ExprPtr lhs;
  ExprPtr rhs;

  // kFunctionCall: name + `children` as arguments
  std::string function_name;

  // kFlwor
  std::vector<ForClause> for_clauses;   // interleaved via clause_order
  std::vector<LetClause> let_clauses;
  /// Order in which for/let clauses appear: 'f' or 'l' per clause.
  std::string clause_order;
  ExprPtr where;
  std::vector<OrderSpec> order_by;
  ExprPtr return_expr;

  // kQuantified
  bool quantifier_every = false;
  std::string quant_variable;
  ExprPtr quant_input;
  ExprPtr quant_satisfies;

  // kIfThenElse: lhs = condition, then/else:
  ExprPtr then_branch;
  ExprPtr else_branch;

  // kFilter: lhs = base expression, `children` = predicates in order.

  // kConstructor
  std::string element_name;
  std::vector<ConstructorAttr> constructor_attrs;
  std::vector<ConstructorContent> constructor_content;
};

/// Renders the AST for debugging/tests.
std::string ToDebugString(const Expr& expr);

/// Renders the AST back to XQuery text that ParseQuery accepts, such that
/// rendering is a fixed point: for any `e` obtained from ParseQuery,
/// ParseQuery(ToQueryString(e)) succeeds and renders to the same text.
/// Binary operators and sequences are always parenthesized (the parser
/// collapses redundant parens, so reparse reproduces the same tree), and
/// constructors are wrapped in parens so `<` lexes as a constructor at any
/// expression position. Fails for literals the lexer cannot spell: a
/// string containing both quote characters, a NaN number literal, or
/// constructor text containing markup characters.
Result<std::string> ToQueryString(const Expr& expr);

}  // namespace xbench::xquery

#endif  // XBENCH_XQUERY_AST_H_
