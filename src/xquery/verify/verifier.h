#ifndef XBENCH_XQUERY_VERIFY_VERIFIER_H_
#define XBENCH_XQUERY_VERIFY_VERIFIER_H_

#include <string>
#include <vector>

#include "xquery/exec/exec.h"
#include "xquery/plan/catalog.h"
#include "xquery/plan/logical.h"

namespace xbench::xquery::verify {

/// Document-order property of an operator's output, the lattice the
/// verifier propagates bottom-up (kOrdered ⊑ kOrderedPerMorsel ⊑
/// kUnordered; merges take the weaker side). kOrderedPerMorsel is the
/// state inside a parallel region before the in-order morsel splice;
/// every well-formed operator either restores kOrdered at its merge or
/// never degrades in the first place, so a surviving kOrderedPerMorsel /
/// kUnordered in a frozen plan is evidence of a corrupt or unsound
/// compilation.
enum class Ordering { kOrdered, kOrderedPerMorsel, kUnordered };

const char* OrderingName(Ordering ordering);

/// Derived properties of one operator's output.
struct Properties {
  Ordering ordering = Ordering::kOrdered;
  /// No node appears twice in the output (steps and probes dedupe via
  /// the document-order-unique sort; Eval/Return sequences may repeat).
  bool unique = false;
  /// Analysis cardinality class the output provably satisfies.
  plan::Card card = plan::Card::kUnknown;
};

/// Everything a contract violation needs to be actionable: where in the
/// plan, which operator, and the expected-vs-derived property pair.
enum class DiagnosticKind {
  /// Operator has the wrong number of inputs for its kind.
  kArityMismatch,
  /// An order-requiring operator consumes an input whose derived
  /// ordering is weaker than kOrdered.
  kUnorderedInput,
  /// estimated_rows contradicts the analysis cardinality bound (only
  /// checked when the plan was compiled with trust_statistics).
  kCardinalityBound,
  /// An index probe's frozen catalog epoch differs from the catalog
  /// snapshot the plan claims to be compiled against.
  kEpochMismatch,
  /// An index probe dropped a residual predicate of the subtree it
  /// replaced (probe ∧ residual would no longer imply the original).
  kMissingResidualPredicate,
  /// A parallel-region marker sits on an operator that is neither
  /// order-insensitive nor followed by the in-order morsel splice, or
  /// disagrees with the plan's compiled parallelism bound.
  kParallelUnsafe,
  /// The frozen physical operator (label / depth / estimate slot) does
  /// not mirror its logical node.
  kLabelMismatch,
};

const char* DiagnosticKindName(DiagnosticKind kind);

struct Diagnostic {
  DiagnosticKind kind = DiagnosticKind::kLabelMismatch;
  /// Pre-order slot index of the offending operator in the physical
  /// plan (-1 when the plans disagree about shape).
  int slot = -1;
  /// Label path from the root to the operator ("Return / ForLoop($o) /
  /// Filter").
  std::string path;
  /// The offending operator's label.
  std::string op;
  std::string expected;
  std::string derived;

  /// "kind @ path: op — expected …, derived …" (one line).
  std::string ToString() const;
};

struct VerifyResult {
  std::vector<Diagnostic> diagnostics;
  /// One line per operator in plan pre-order: depth-indented label plus
  /// the derived property triple. Pinned as the xqlint --verify golden.
  std::vector<std::string> derived;

  bool ok() const { return diagnostics.empty(); }
};

/// Statically verifies a frozen physical plan against its logical plan:
/// per-kind operator contracts (arity, required child properties,
/// provided properties), the ordering/uniqueness/cardinality lattice,
/// index-epoch validity and residual-predicate coverage of every probe
/// (against `catalog`, skipped when null), parallel-region safety, and
/// the 1:1 logical↔physical mirror. Counts xbench.verify.plans per call
/// and xbench.verify.violations per diagnostic. Never mutates the plan.
VerifyResult VerifyPlan(const plan::LogicalPlan& logical,
                        const exec::PhysicalPlan& physical,
                        const plan::CompilationOptions& options,
                        const plan::IndexCatalog* catalog = nullptr);

}  // namespace xbench::xquery::verify

#endif  // XBENCH_XQUERY_VERIFY_VERIFIER_H_
