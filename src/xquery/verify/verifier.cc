#include "xquery/verify/verifier.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace xbench::xquery::verify {
namespace {

using plan::LogicalKind;
using plan::LogicalNode;

/// Operators whose morsel-parallel form ends in an in-order splice (or
/// candidate-order keep), so a " [parallel xN]" marker on them is sound.
/// Mirrors the ParallelSuffix() sites in exec.cc's PhysicalBuilder.
bool ParallelCapable(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kChildStep:
    case LogicalKind::kAxisStep:
    case LogicalKind::kDescendantStep:
    case LogicalKind::kFilter:
    case LogicalKind::kIndexScan:
    case LogicalKind::kIndexRangeScan:
    case LogicalKind::kTextProbe:
    case LogicalKind::kWhere:
    case LogicalKind::kSort:
      return true;
    default:
      return false;
  }
}

bool IsProbe(LogicalKind kind) {
  return kind == LogicalKind::kIndexScan ||
         kind == LogicalKind::kIndexRangeScan ||
         kind == LogicalKind::kTextProbe;
}

/// Expected input count per operator kind — the arity half of the
/// contract table (DESIGN.md §14).
size_t ExpectedArity(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kScan:
    case LogicalKind::kEval:
    case LogicalKind::kConstruct:
    case LogicalKind::kEmpty:
    case LogicalKind::kSingleton:
      return 0;
    case LogicalKind::kChildStep:
    case LogicalKind::kAxisStep:
    case LogicalKind::kDescendantStep:
    case LogicalKind::kFilter:
    case LogicalKind::kAggregate:
    case LogicalKind::kWhere:
    case LogicalKind::kSort:
      return 1;
    case LogicalKind::kIndexScan:
    case LogicalKind::kIndexRangeScan:
    case LogicalKind::kTextProbe:
    case LogicalKind::kReturn:
    case LogicalKind::kFor:
    case LogicalKind::kJoin:
    case LogicalKind::kLet:
      return 2;
  }
  return 0;
}

/// Whether the operator's output carries the unique-node-bindings
/// property. Steps and probes dedupe through the document-order-unique
/// sort; scans enumerate distinct bindings; filters preserve whatever
/// their input had (handled by the caller).
bool ProvidesUnique(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kScan:
    case LogicalKind::kChildStep:
    case LogicalKind::kAxisStep:
    case LogicalKind::kDescendantStep:
    case LogicalKind::kEmpty:
    case LogicalKind::kIndexScan:
    case LogicalKind::kIndexRangeScan:
    case LogicalKind::kTextProbe:
      return true;
    default:
      return false;
  }
}

std::string PredicateSuffix(const LogicalNode& n) {
  if (n.predicates.empty()) return "";
  return " [" + std::to_string(n.predicates.size()) +
         (n.predicates.size() == 1 ? " pred]" : " preds]");
}

std::string FormatEstimate(double rows) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", rows);
  return buf;
}

/// Recomputes the label PhysicalBuilder freezes for `n` — the mirror
/// check compares this against the physical plan's stored label.
std::string ExpectedLabel(const LogicalNode& n, int parallelism) {
  const std::string parallel =
      parallelism > 1 && ParallelCapable(n.kind)
          ? " [parallel x" + std::to_string(parallelism) + "]"
          : "";
  switch (n.kind) {
    case LogicalKind::kScan:
      return "Scan($" + n.name + ")";
    case LogicalKind::kEval:
      return std::string("Eval(") + plan::ExprKindLabel(n.expr) + ")";
    case LogicalKind::kConstruct:
      return "Construct(<" + n.name + ">)";
    case LogicalKind::kChildStep:
      return "ChildStep(" + n.name + ")" + PredicateSuffix(n) + parallel;
    case LogicalKind::kAxisStep:
      return std::string("AxisStep(") + plan::AxisLabel(n.axis) + "::" +
             n.name + ")" + PredicateSuffix(n) + parallel;
    case LogicalKind::kDescendantStep: {
      std::string label =
          n.access == plan::AccessPath::kGuidedWalk
              ? "GuidedWalk(" + n.name + ") [" +
                    std::to_string(n.expansions.size()) +
                    (n.expansions.size() == 1 ? " chain]" : " chains]")
              : "DescendantScan(" + n.name + ")";
      return label + PredicateSuffix(n) + parallel;
    }
    case LogicalKind::kFilter:
      return "Filter" + PredicateSuffix(n) + parallel;
    case LogicalKind::kAggregate:
      return "Aggregate(" + n.name + ")";
    case LogicalKind::kEmpty:
      return "Empty [statically empty]";
    case LogicalKind::kIndexScan:
    case LogicalKind::kIndexRangeScan:
    case LogicalKind::kTextProbe: {
      if (!n.probe.has_value()) return "IndexProbe(?)";
      const plan::IndexProbe& probe = *n.probe;
      std::string label;
      if (n.kind == LogicalKind::kIndexScan) {
        label = "IndexScan(" + probe.index + " = \"" + probe.key + "\")";
      } else if (n.kind == LogicalKind::kIndexRangeScan) {
        label = "IndexRangeScan(" + probe.index + " in [\"" + probe.lo +
                "\" .. \"" + probe.hi + "\"])";
      } else {
        label = "TextIndexProbe(" + probe.index + " ~ \"" + probe.word +
                "\")";
      }
      return label + PredicateSuffix(n) + parallel;
    }
    case LogicalKind::kReturn:
      return "Return";
    case LogicalKind::kSingleton:
      return "Singleton";
    case LogicalKind::kFor:
      return "ForLoop($" + n.name +
             (n.position_variable.empty() ? ""
                                          : " at $" + n.position_variable) +
             ")";
    case LogicalKind::kJoin:
      return "NestedLoopJoin($" + n.name + ")";
    case LogicalKind::kLet:
      return "Let($" + n.name + ")";
    case LogicalKind::kWhere:
      return "Where" + parallel;
    case LogicalKind::kSort: {
      const size_t keys =
          n.order_source != nullptr ? n.order_source->order_by.size() : 0;
      return "SortMaterialize(" + std::to_string(keys) +
             (keys == 1 ? " key)" : " keys)") + parallel;
    }
  }
  return "?";
}

class Verifier {
 public:
  Verifier(const exec::PhysicalPlan& physical,
           const plan::CompilationOptions& options,
           const plan::IndexCatalog* catalog, VerifyResult& result)
      : physical_(physical),
        options_(options),
        catalog_(catalog),
        result_(result) {}

  Properties Visit(const LogicalNode& n, int depth, const std::string& path) {
    const std::string expected_label =
        ExpectedLabel(n, physical_.max_parallelism);
    const std::string here =
        path.empty() ? expected_label : path + " / " + expected_label;
    const size_t slot = next_slot_++;
    const bool slot_ok = slot < physical_.labels.size();
    const std::string& actual_label =
        slot_ok ? physical_.labels[slot] : expected_label;

    // 1:1 logical↔physical mirror: label, depth and frozen estimate.
    if (!slot_ok) {
      Report(DiagnosticKind::kLabelMismatch, slot, here, expected_label,
             "one physical operator per logical node",
             "physical plan ran out of operator slots");
    } else {
      if (actual_label != expected_label) {
        Report(DiagnosticKind::kLabelMismatch, slot, here, actual_label,
               "label \"" + expected_label + "\"",
               "label \"" + actual_label + "\"");
      }
      if (slot < physical_.depths.size() &&
          physical_.depths[slot] != depth) {
        Report(DiagnosticKind::kLabelMismatch, slot, here, actual_label,
               "depth " + std::to_string(depth),
               "depth " + std::to_string(physical_.depths[slot]));
      }
      const double expected_rows =
          IsProbe(n.kind) ? n.estimated_rows : -1;
      if (slot < physical_.estimated_rows.size() &&
          std::abs(physical_.estimated_rows[slot] - expected_rows) > 1e-9) {
        Report(DiagnosticKind::kLabelMismatch, slot, here, actual_label,
               "frozen estimate " + FormatEstimate(expected_rows),
               "frozen estimate " +
                   FormatEstimate(physical_.estimated_rows[slot]));
      }
    }

    // Parallel-region safety: a marker is only sound on an operator
    // whose parallel form ends in the in-order morsel splice, and must
    // agree with the plan's compiled parallelism bound.
    Ordering ordering = Ordering::kOrdered;
    const size_t marker = actual_label.find(" [parallel x");
    if (marker != std::string::npos) {
      const std::string expected_marker =
          " [parallel x" + std::to_string(physical_.max_parallelism) + "]";
      if (!ParallelCapable(n.kind)) {
        Report(DiagnosticKind::kParallelUnsafe, slot, here, actual_label,
               "order-insensitive operator or in-order morsel splice",
               "parallel region on a non-spliced operator");
        ordering = Ordering::kOrderedPerMorsel;
      } else if (physical_.max_parallelism <= 1 ||
                 actual_label.find(expected_marker) == std::string::npos) {
        Report(DiagnosticKind::kParallelUnsafe, slot, here, actual_label,
               "parallelism x" + std::to_string(physical_.max_parallelism),
               actual_label.substr(marker + 2));
      }
    }

    // Arity.
    const size_t arity = ExpectedArity(n.kind);
    if (n.inputs.size() != arity) {
      Report(DiagnosticKind::kArityMismatch, slot, here, actual_label,
             std::to_string(arity) + " input(s)",
             std::to_string(n.inputs.size()) + " input(s)");
    }

    // Reserve this operator's derived-property line (pre-order position),
    // filled in once the children's properties are known.
    const size_t line = result_.derived.size();
    result_.derived.emplace_back();

    std::vector<Properties> children;
    children.reserve(n.inputs.size());
    for (const plan::LogicalNodePtr& input : n.inputs) {
      children.push_back(Visit(*input, depth + 1, here));
    }

    // Required child properties: every operator in this algebra iterates
    // its inputs in document/binding order (positional predicates, tuple
    // enumeration, stable sorts), so each input must derive kOrdered.
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i].ordering != Ordering::kOrdered) {
        Report(DiagnosticKind::kUnorderedInput, slot, here, actual_label,
               "ordered input " + std::to_string(i),
               std::string(OrderingName(children[i].ordering)) + " input " +
                   std::to_string(i));
      }
    }

    if (IsProbe(n.kind)) {
      // The probe validates index candidates against its root source;
      // a duplicated root would double-count candidates.
      if (children.size() == 2 && !children[1].unique) {
        Report(DiagnosticKind::kUnorderedInput, slot, here, actual_label,
               "unique root-source bindings",
               "non-unique root-source bindings");
      }
      if (n.probe.has_value() && catalog_ != nullptr &&
          n.probe->catalog_epoch != catalog_->epoch) {
        Report(DiagnosticKind::kEpochMismatch, slot, here, actual_label,
               "catalog epoch " + std::to_string(catalog_->epoch),
               "catalog epoch " + std::to_string(n.probe->catalog_epoch));
      }
      // Residual coverage: the wrapper must re-check every predicate of
      // the subtree it replaced, so probe ∧ residual ⇒ original.
      if (!n.inputs.empty()) {
        for (const Expr* pred : n.inputs[0]->predicates) {
          bool covered = false;
          for (const Expr* residual : n.predicates) {
            if (residual == pred) {
              covered = true;
              break;
            }
          }
          if (!covered) {
            Report(DiagnosticKind::kMissingResidualPredicate, slot, here,
                   actual_label,
                   std::to_string(n.inputs[0]->predicates.size()) +
                       " residual predicate(s)",
                   "fallback predicate missing from the probe's residual "
                   "re-checks");
          }
        }
      }
    }

    // Cardinality bounds: a trusted analysis class is a hard bound on
    // the frozen cost estimate.
    if (options_.cost_model.trust_statistics && n.estimated_rows >= 0) {
      const char* expected = nullptr;
      if (n.cardinality == plan::Card::kEmpty && n.estimated_rows > 0) {
        expected = "estimated_rows == 0 (analysis: empty)";
      } else if (n.cardinality == plan::Card::kAtMostOne &&
                 n.estimated_rows > 1.0 + 1e-9) {
        expected = "estimated_rows <= 1 (analysis: at-most-one)";
      }
      if (expected != nullptr) {
        Report(DiagnosticKind::kCardinalityBound, slot, here, actual_label,
               expected, "estimated_rows " + FormatEstimate(n.estimated_rows));
      }
    }

    // Provided properties.
    Properties props;
    props.card = n.cardinality;
    props.unique = ProvidesUnique(n.kind) ||
                   (n.kind == LogicalKind::kFilter && !children.empty() &&
                    children[0].unique);
    props.ordering = ordering;
    if (ordering == Ordering::kOrdered) {
      // Propagating operators surface their inputs' degradation; sorts,
      // steps and probes restore document order at their merge.
      for (const Properties& child : children) {
        if (child.ordering > props.ordering &&
            n.kind != LogicalKind::kSort && !IsProbe(n.kind) &&
            n.kind != LogicalKind::kChildStep &&
            n.kind != LogicalKind::kAxisStep &&
            n.kind != LogicalKind::kDescendantStep) {
          props.ordering = child.ordering;
        }
      }
    }

    std::string rendered(static_cast<size_t>(depth) * 2, ' ');
    rendered += actual_label;
    rendered += " :: ordering=";
    rendered += OrderingName(props.ordering);
    rendered += props.unique ? " unique=yes" : " unique=no";
    rendered += " card=";
    rendered += plan::CardName(props.card);
    if (IsProbe(n.kind) && n.probe.has_value()) {
      rendered += " epoch=" + std::to_string(n.probe->catalog_epoch);
      rendered += " est=" + FormatEstimate(n.estimated_rows);
    }
    result_.derived[line] = std::move(rendered);
    return props;
  }

  size_t slots_visited() const { return next_slot_; }

 private:
  void Report(DiagnosticKind kind, size_t slot, const std::string& path,
              const std::string& op, std::string expected,
              std::string derived) {
    Diagnostic diag;
    diag.kind = kind;
    diag.slot = slot < physical_.labels.size() ? static_cast<int>(slot) : -1;
    diag.path = path;
    diag.op = op;
    diag.expected = std::move(expected);
    diag.derived = std::move(derived);
    result_.diagnostics.push_back(std::move(diag));
  }

  const exec::PhysicalPlan& physical_;
  const plan::CompilationOptions& options_;
  const plan::IndexCatalog* catalog_;
  VerifyResult& result_;
  size_t next_slot_ = 0;
};

}  // namespace

const char* OrderingName(Ordering ordering) {
  switch (ordering) {
    case Ordering::kOrdered:
      return "ordered";
    case Ordering::kOrderedPerMorsel:
      return "ordered-per-morsel";
    case Ordering::kUnordered:
      return "unordered";
  }
  return "?";
}

const char* DiagnosticKindName(DiagnosticKind kind) {
  switch (kind) {
    case DiagnosticKind::kArityMismatch:
      return "arity-mismatch";
    case DiagnosticKind::kUnorderedInput:
      return "unordered-input";
    case DiagnosticKind::kCardinalityBound:
      return "cardinality-bound";
    case DiagnosticKind::kEpochMismatch:
      return "epoch-mismatch";
    case DiagnosticKind::kMissingResidualPredicate:
      return "missing-residual-predicate";
    case DiagnosticKind::kParallelUnsafe:
      return "parallel-unsafe";
    case DiagnosticKind::kLabelMismatch:
      return "label-mismatch";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = DiagnosticKindName(kind);
  out += " @ ";
  out += path;
  out += ": ";
  out += op;
  out += " — expected ";
  out += expected;
  out += ", derived ";
  out += derived;
  return out;
}

VerifyResult VerifyPlan(const plan::LogicalPlan& logical,
                        const exec::PhysicalPlan& physical,
                        const plan::CompilationOptions& options,
                        const plan::IndexCatalog* catalog) {
  VerifyResult result;
  obs::MetricsRegistry::Default()
      .GetCounter(obs::metric_names::kVerifyPlans)
      .Increment();
  if (logical.root == nullptr) {
    Diagnostic diag;
    diag.kind = DiagnosticKind::kArityMismatch;
    diag.path = "(root)";
    diag.op = "(none)";
    diag.expected = "a plan root";
    diag.derived = "empty logical plan";
    result.diagnostics.push_back(std::move(diag));
  } else {
    Verifier verifier(physical, options, catalog, result);
    verifier.Visit(*logical.root, 0, "");
    if (verifier.slots_visited() != physical.labels.size()) {
      Diagnostic diag;
      diag.kind = DiagnosticKind::kLabelMismatch;
      diag.path = "(root)";
      diag.op = physical.labels.empty() ? "(none)" : physical.labels[0];
      diag.expected =
          std::to_string(verifier.slots_visited()) + " operator slot(s)";
      diag.derived = std::to_string(physical.labels.size()) + " slot(s)";
      result.diagnostics.push_back(std::move(diag));
    }
  }
  if (!result.diagnostics.empty()) {
    obs::Counter& violations = obs::MetricsRegistry::Default().GetCounter(
        obs::metric_names::kVerifyViolations);
    for (const Diagnostic& diag : result.diagnostics) {
      violations.Increment();
      obs::MetricsRegistry::Default()
          .GetCounter(std::string(obs::metric_names::kVerifyViolationsPrefix) +
                      DiagnosticKindName(diag.kind))
          .Increment();
    }
  }
  return result;
}

}  // namespace xbench::xquery::verify
