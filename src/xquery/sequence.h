#ifndef XBENCH_XQUERY_SEQUENCE_H_
#define XBENCH_XQUERY_SEQUENCE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/node.h"

namespace xbench::xquery {

/// One item of the XQuery data model: a node, an attribute, or an atomic
/// value (string / number / boolean).
struct Item {
  enum class Kind : uint8_t { kNode, kAttribute, kString, kNumber, kBool };

  Kind kind = Kind::kString;
  const xml::Node* node = nullptr;  // kNode; kAttribute = owning element
  int attr_index = -1;              // kAttribute
  std::string str;                  // kString
  double num = 0;                   // kNumber
  bool boolean = false;             // kBool

  static Item Node(const xml::Node* n) {
    Item item;
    item.kind = Kind::kNode;
    item.node = n;
    return item;
  }
  static Item Attr(const xml::Node* owner, int index) {
    Item item;
    item.kind = Kind::kAttribute;
    item.node = owner;
    item.attr_index = index;
    return item;
  }
  static Item String(std::string s) {
    Item item;
    item.kind = Kind::kString;
    item.str = std::move(s);
    return item;
  }
  static Item Number(double d) {
    Item item;
    item.kind = Kind::kNumber;
    item.num = d;
    return item;
  }
  static Item Bool(bool b) {
    Item item;
    item.kind = Kind::kBool;
    item.boolean = b;
    return item;
  }

  bool is_node_kind() const {
    return kind == Kind::kNode || kind == Kind::kAttribute;
  }
};

using Sequence = std::vector<Item>;

/// The typed (string) value of an item: node string-value, attribute value,
/// or the lexical form of an atomic.
std::string AtomizeToString(const Item& item);

/// Formats a double the XPath way: "3" not "3.0" for whole numbers.
std::string FormatNumber(double value);

/// Numeric value when the item's string form is a number.
std::optional<double> AtomizeToNumber(const Item& item);

/// XQuery effective boolean value. Errors on multi-item atomic sequences.
Result<bool> EffectiveBooleanValue(const Sequence& seq);

/// Sorts node/attribute items into document order (grouped by tree root,
/// then order id, attributes after their element) and removes duplicates.
/// Atomic items are left where they are only if the sequence is all-nodes;
/// mixed sequences are returned unchanged.
void SortDocumentOrderUnique(Sequence& seq);

/// Identity comparison for node/attribute items.
bool SameItem(const Item& a, const Item& b);

}  // namespace xbench::xquery

#endif  // XBENCH_XQUERY_SEQUENCE_H_
