#include "xquery/lexer.h"

#include <cctype>

namespace xbench::xquery {
namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
         c == '-' || c == '.' || c == ':';
}

/// Keywords after which a '<' begins a direct element constructor rather
/// than a comparison.
bool IsExprLeadKeyword(const std::string& name) {
  return name == "return" || name == "satisfies" || name == "then" ||
         name == "else" || name == "in" || name == "where" || name == "and" ||
         name == "or";
}

}  // namespace

Lexer::Lexer(std::string_view input) : input_(input) { Lex(); }

Token Lexer::Next() {
  Token prev = current_;
  previous_kind_ = prev.kind;
  previous_text_ = prev.text;
  Lex();
  return prev;
}

void Lexer::SeekTo(size_t p) {
  pos_ = p;
  previous_kind_ = TokenKind::kEnd;
  previous_text_.clear();
  Lex();
}

void Lexer::SetError(std::string message, size_t at) {
  if (status_.ok()) {
    status_ = Status::InvalidArgument(message + " at offset " +
                                      std::to_string(at));
  }
  current_ = Token{TokenKind::kEnd, "", at};
}

void Lexer::Lex() {
  // Skip whitespace and XQuery comments (: ... :).
  for (;;) {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ + 1 < input_.size() && input_[pos_] == '(' &&
        input_[pos_ + 1] == ':') {
      size_t end = input_.find(":)", pos_ + 2);
      if (end == std::string_view::npos) {
        SetError("unterminated comment", pos_);
        return;
      }
      pos_ = end + 2;
      continue;
    }
    break;
  }

  const size_t start = pos_;
  if (pos_ >= input_.size()) {
    current_ = Token{TokenKind::kEnd, "", start};
    return;
  }

  const char c = input_[pos_];
  auto make = [&](TokenKind kind, std::string text, size_t advance) {
    pos_ += advance;
    current_ = Token{kind, std::move(text), start};
  };

  switch (c) {
    case '/':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
        make(TokenKind::kDoubleSlash, "//", 2);
      } else {
        make(TokenKind::kSlash, "/", 1);
      }
      return;
    case '@':
      make(TokenKind::kAt, "@", 1);
      return;
    case '*':
      make(TokenKind::kStar, "*", 1);
      return;
    case '(':
      make(TokenKind::kLParen, "(", 1);
      return;
    case ')':
      make(TokenKind::kRParen, ")", 1);
      return;
    case '[':
      make(TokenKind::kLBracket, "[", 1);
      return;
    case ']':
      make(TokenKind::kRBracket, "]", 1);
      return;
    case '{':
      make(TokenKind::kLBrace, "{", 1);
      return;
    case '}':
      make(TokenKind::kRBrace, "}", 1);
      return;
    case ',':
      make(TokenKind::kComma, ",", 1);
      return;
    case '|':
      make(TokenKind::kPipe, "|", 1);
      return;
    case '+':
      make(TokenKind::kPlus, "+", 1);
      return;
    case '-':
      make(TokenKind::kMinus, "-", 1);
      return;
    case '=':
      make(TokenKind::kEq, "=", 1);
      return;
    case '!':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        make(TokenKind::kNe, "!=", 2);
        return;
      }
      SetError("unexpected '!'", start);
      return;
    case ':':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        make(TokenKind::kColonEq, ":=", 2);
        return;
      }
      SetError("unexpected ':'", start);
      return;
    case '<': {
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        make(TokenKind::kLe, "<=", 2);
        return;
      }
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
        make(TokenKind::kEndElem, "</", 2);
        return;
      }
      const bool name_follows =
          pos_ + 1 < input_.size() && IsNameStart(input_[pos_ + 1]);
      const bool expr_position =
          previous_kind_ == TokenKind::kEnd ||
          previous_kind_ == TokenKind::kLParen ||
          previous_kind_ == TokenKind::kLBrace ||
          previous_kind_ == TokenKind::kComma ||
          previous_kind_ == TokenKind::kColonEq ||
          (previous_kind_ == TokenKind::kName &&
           IsExprLeadKeyword(previous_text_));
      if (name_follows && expr_position) {
        make(TokenKind::kLtElem, "<", 1);
      } else {
        make(TokenKind::kLt, "<", 1);
      }
      return;
    }
    case '>':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        make(TokenKind::kGe, ">=", 2);
      } else {
        make(TokenKind::kGt, ">", 1);
      }
      return;
    case '.':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '.') {
        make(TokenKind::kDotDot, "..", 2);
        return;
      }
      if (pos_ + 1 < input_.size() &&
          std::isdigit(static_cast<unsigned char>(input_[pos_ + 1]))) {
        break;  // numeric literal like .5 — fall through to number lexing
      }
      make(TokenKind::kDot, ".", 1);
      return;
    case '$': {
      ++pos_;
      if (pos_ >= input_.size() || !IsNameStart(input_[pos_])) {
        SetError("expected variable name after '$'", start);
        return;
      }
      size_t name_start = pos_;
      while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
      current_ = Token{TokenKind::kVariable,
                       std::string(input_.substr(name_start, pos_ - name_start)),
                       start};
      return;
    }
    case '"':
    case '\'': {
      const char quote = c;
      ++pos_;
      std::string value;
      while (pos_ < input_.size() && input_[pos_] != quote) {
        value.push_back(input_[pos_]);
        ++pos_;
      }
      if (pos_ >= input_.size()) {
        SetError("unterminated string literal", start);
        return;
      }
      ++pos_;
      current_ = Token{TokenKind::kString, std::move(value), start};
      return;
    }
    default:
      break;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
    size_t end = pos_;
    bool seen_dot = false;
    while (end < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[end])) ||
            (!seen_dot && input_[end] == '.'))) {
      if (input_[end] == '.') seen_dot = true;
      ++end;
    }
    current_ = Token{TokenKind::kNumber,
                     std::string(input_.substr(pos_, end - pos_)), start};
    pos_ = end;
    return;
  }

  if (IsNameStart(c)) {
    // Scan a name segment without ':', then decide: "seg::" is an axis,
    // "seg:more" is a qualified name (xs:double), bare "seg" a name.
    size_t end = pos_;
    auto scan_segment = [&] {
      while (end < input_.size() && IsNameChar(input_[end]) &&
             input_[end] != ':') {
        ++end;
      }
    };
    scan_segment();
    if (end + 1 < input_.size() && input_[end] == ':' &&
        input_[end + 1] == ':') {
      current_ = Token{TokenKind::kAxis,
                       std::string(input_.substr(pos_, end - pos_)), start};
      pos_ = end + 2;
      return;
    }
    if (end + 1 < input_.size() && input_[end] == ':' &&
        IsNameStart(input_[end + 1])) {
      ++end;  // the ':' of a qualified name
      scan_segment();
    }
    current_ = Token{TokenKind::kName,
                     std::string(input_.substr(pos_, end - pos_)), start};
    pos_ = end;
    return;
  }

  SetError(std::string("unexpected character '") + c + "'", start);
}

}  // namespace xbench::xquery
