#include "xquery/parser.h"

#include <cctype>

#include "common/strings.h"
#include "xquery/lexer.h"

namespace xbench::xquery {
namespace {

ExprPtr MakeExpr(ExprKind kind) { return std::make_unique<Expr>(kind); }

// Maximum expression nesting depth. Fuzz inputs like `((((...))))` or
// `----...-1` would otherwise recurse until the native stack overflows;
// past this bound the parser returns InvalidArgument instead.
constexpr int kMaxParseDepth = 200;

class Parser {
 public:
  explicit Parser(std::string_view input) : Parser(input, 0) {}
  Parser(std::string_view input, int depth)
      : input_(input), lexer_(input), depth_(depth) {}

  Result<ExprPtr> Parse() {
    XBENCH_ASSIGN_OR_RETURN(ExprPtr expr, ParseExprSequence());
    XBENCH_RETURN_IF_ERROR(lexer_.status());
    if (lexer_.Peek().kind != TokenKind::kEnd) {
      return Err("trailing input after query");
    }
    return expr;
  }

 private:
  Status Err(std::string message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(lexer_.Peek().offset));
  }

  bool ConsumeName(std::string_view name) {
    if (lexer_.PeekName(name)) {
      lexer_.Next();
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind, const char* what) {
    if (lexer_.Peek().kind != kind) {
      return Err(std::string("expected ") + what);
    }
    lexer_.Next();
    return Status::Ok();
  }

  /// Top-level / parenthesized comma sequence.
  Result<ExprPtr> ParseExprSequence() {
    XBENCH_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (lexer_.Peek().kind != TokenKind::kComma) return first;
    auto seq = MakeExpr(ExprKind::kSequence);
    seq->children.push_back(std::move(first));
    while (lexer_.Peek().kind == TokenKind::kComma) {
      lexer_.Next();
      XBENCH_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  Result<ExprPtr> ParseExprSingle() {
    if (depth_ >= kMaxParseDepth) {
      return Err("expression nesting exceeds " +
                 std::to_string(kMaxParseDepth) + " levels");
    }
    ++depth_;
    auto result = ParseExprSingleInner();
    --depth_;
    return result;
  }

  Result<ExprPtr> ParseExprSingleInner() {
    const Token& tok = lexer_.Peek();
    if (tok.kind == TokenKind::kName) {
      if (tok.text == "for" || tok.text == "let") return ParseFlwor();
      if (tok.text == "some" || tok.text == "every") return ParseQuantified();
      if (tok.text == "if") return ParseIf();
    }
    return ParseOr();
  }

  Result<ExprPtr> ParseFlwor() {
    auto flwor = MakeExpr(ExprKind::kFlwor);
    for (;;) {
      if (ConsumeName("for")) {
        do {
          ForClause clause;
          if (lexer_.Peek().kind != TokenKind::kVariable) {
            return Err("expected $variable in for clause");
          }
          clause.variable = lexer_.Next().text;
          if (ConsumeName("at")) {
            if (lexer_.Peek().kind != TokenKind::kVariable) {
              return Err("expected $variable after 'at'");
            }
            clause.position_variable = lexer_.Next().text;
          }
          if (!ConsumeName("in")) return Err("expected 'in' in for clause");
          XBENCH_ASSIGN_OR_RETURN(clause.input, ParseExprSingle());
          flwor->for_clauses.push_back(std::move(clause));
          flwor->clause_order.push_back('f');
        } while (lexer_.Peek().kind == TokenKind::kComma &&
                 (lexer_.Next(), true));
        continue;
      }
      if (ConsumeName("let")) {
        do {
          LetClause clause;
          if (lexer_.Peek().kind != TokenKind::kVariable) {
            return Err("expected $variable in let clause");
          }
          clause.variable = lexer_.Next().text;
          XBENCH_RETURN_IF_ERROR(Expect(TokenKind::kColonEq, "':='"));
          XBENCH_ASSIGN_OR_RETURN(clause.value, ParseExprSingle());
          flwor->let_clauses.push_back(std::move(clause));
          flwor->clause_order.push_back('l');
        } while (lexer_.Peek().kind == TokenKind::kComma &&
                 (lexer_.Next(), true));
        continue;
      }
      break;
    }
    if (flwor->clause_order.empty()) {
      return Err("FLWOR expression without for/let clause");
    }
    if (ConsumeName("where")) {
      XBENCH_ASSIGN_OR_RETURN(flwor->where, ParseExprSingle());
    }
    if (lexer_.PeekName("stable")) lexer_.Next();
    if (ConsumeName("order")) {
      if (!ConsumeName("by")) return Err("expected 'by' after 'order'");
      do {
        OrderSpec spec;
        XBENCH_ASSIGN_OR_RETURN(spec.key, ParseExprSingle());
        if (ConsumeName("descending")) {
          spec.ascending = false;
        } else if (ConsumeName("ascending")) {
          spec.ascending = true;
        }
        // "empty least/greatest" accepted and ignored (nulls-first is our
        // fixed behaviour).
        if (ConsumeName("empty")) {
          if (!ConsumeName("least") && !ConsumeName("greatest")) {
            return Err("expected 'least' or 'greatest' after 'empty'");
          }
        }
        // Mark numeric sort keys: number(...) or xs:double(...) wrappers.
        if (spec.key->kind == ExprKind::kFunctionCall &&
            (spec.key->function_name == "number" ||
             spec.key->function_name == "xs:double" ||
             spec.key->function_name == "xs:integer")) {
          spec.numeric = true;
        }
        flwor->order_by.push_back(std::move(spec));
      } while (lexer_.Peek().kind == TokenKind::kComma &&
               (lexer_.Next(), true));
    }
    if (!ConsumeName("return")) return Err("expected 'return' in FLWOR");
    XBENCH_ASSIGN_OR_RETURN(flwor->return_expr, ParseExprSingle());
    return flwor;
  }

  Result<ExprPtr> ParseQuantified() {
    auto quant = MakeExpr(ExprKind::kQuantified);
    quant->quantifier_every = lexer_.Next().text == "every";
    if (lexer_.Peek().kind != TokenKind::kVariable) {
      return Err("expected $variable after some/every");
    }
    quant->quant_variable = lexer_.Next().text;
    if (!ConsumeName("in")) return Err("expected 'in' in quantified expr");
    XBENCH_ASSIGN_OR_RETURN(quant->quant_input, ParseExprSingle());
    if (!ConsumeName("satisfies")) return Err("expected 'satisfies'");
    XBENCH_ASSIGN_OR_RETURN(quant->quant_satisfies, ParseExprSingle());
    return quant;
  }

  Result<ExprPtr> ParseIf() {
    lexer_.Next();  // 'if'
    XBENCH_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    auto expr = MakeExpr(ExprKind::kIfThenElse);
    XBENCH_ASSIGN_OR_RETURN(expr->lhs, ParseExprSequence());
    XBENCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    if (!ConsumeName("then")) return Err("expected 'then'");
    XBENCH_ASSIGN_OR_RETURN(expr->then_branch, ParseExprSingle());
    if (!ConsumeName("else")) return Err("expected 'else'");
    XBENCH_ASSIGN_OR_RETURN(expr->else_branch, ParseExprSingle());
    return expr;
  }

  Result<ExprPtr> ParseOr() {
    XBENCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (lexer_.PeekName("or")) {
      lexer_.Next();
      XBENCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      auto expr = MakeExpr(ExprKind::kLogical);
      expr->logical_op = LogicalOp::kOr;
      expr->lhs = std::move(lhs);
      expr->rhs = std::move(rhs);
      lhs = std::move(expr);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    XBENCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (lexer_.PeekName("and")) {
      lexer_.Next();
      XBENCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      auto expr = MakeExpr(ExprKind::kLogical);
      expr->logical_op = LogicalOp::kAnd;
      expr->lhs = std::move(lhs);
      expr->rhs = std::move(rhs);
      lhs = std::move(expr);
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    XBENCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRange());
    CompareOp op;
    switch (lexer_.Peek().kind) {
      case TokenKind::kEq:
        op = CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = CompareOp::kGe;
        break;
      default:
        // Value comparison keywords.
        if (lexer_.PeekName("eq")) {
          op = CompareOp::kEq;
        } else if (lexer_.PeekName("ne")) {
          op = CompareOp::kNe;
        } else if (lexer_.PeekName("lt")) {
          op = CompareOp::kLt;
        } else if (lexer_.PeekName("le")) {
          op = CompareOp::kLe;
        } else if (lexer_.PeekName("gt")) {
          op = CompareOp::kGt;
        } else if (lexer_.PeekName("ge")) {
          op = CompareOp::kGe;
        } else {
          return lhs;
        }
        break;
    }
    lexer_.Next();
    XBENCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRange());
    auto expr = MakeExpr(ExprKind::kComparison);
    expr->compare_op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
  }

  Result<ExprPtr> ParseRange() {
    XBENCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (!lexer_.PeekName("to")) return lhs;
    lexer_.Next();
    XBENCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    auto expr = MakeExpr(ExprKind::kRange);
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
  }

  Result<ExprPtr> ParseAdditive() {
    XBENCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      ArithOp op;
      if (lexer_.Peek().kind == TokenKind::kPlus) {
        op = ArithOp::kAdd;
      } else if (lexer_.Peek().kind == TokenKind::kMinus) {
        op = ArithOp::kSub;
      } else {
        return lhs;
      }
      lexer_.Next();
      XBENCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      auto expr = MakeExpr(ExprKind::kArithmetic);
      expr->arith_op = op;
      expr->lhs = std::move(lhs);
      expr->rhs = std::move(rhs);
      lhs = std::move(expr);
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    XBENCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      ArithOp op;
      if (lexer_.Peek().kind == TokenKind::kStar) {
        op = ArithOp::kMul;
      } else if (lexer_.PeekName("div")) {
        op = ArithOp::kDiv;
      } else if (lexer_.PeekName("mod")) {
        op = ArithOp::kMod;
      } else {
        return lhs;
      }
      lexer_.Next();
      XBENCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      auto expr = MakeExpr(ExprKind::kArithmetic);
      expr->arith_op = op;
      expr->lhs = std::move(lhs);
      expr->rhs = std::move(rhs);
      lhs = std::move(expr);
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (lexer_.Peek().kind == TokenKind::kMinus) {
      // Unary chains recurse without passing through ParseExprSingle, so
      // they charge the same depth budget here.
      if (depth_ >= kMaxParseDepth) {
        return Err("expression nesting exceeds " +
                   std::to_string(kMaxParseDepth) + " levels");
      }
      ++depth_;
      lexer_.Next();
      auto operand_result = ParseUnary();
      --depth_;
      XBENCH_ASSIGN_OR_RETURN(ExprPtr operand, std::move(operand_result));
      auto zero = MakeExpr(ExprKind::kNumberLiteral);
      zero->number_value = 0;
      auto expr = MakeExpr(ExprKind::kArithmetic);
      expr->arith_op = ArithOp::kSub;
      expr->lhs = std::move(zero);
      expr->rhs = std::move(operand);
      return expr;
    }
    return ParseUnion();
  }

  /// Node-sequence union: path ('|' path)*.
  Result<ExprPtr> ParseUnion() {
    XBENCH_ASSIGN_OR_RETURN(ExprPtr first, ParsePath());
    if (lexer_.Peek().kind != TokenKind::kPipe) return first;
    auto expr = MakeExpr(ExprKind::kUnion);
    expr->children.push_back(std::move(first));
    while (lexer_.Peek().kind == TokenKind::kPipe) {
      lexer_.Next();
      XBENCH_ASSIGN_OR_RETURN(ExprPtr next, ParsePath());
      expr->children.push_back(std::move(next));
    }
    return expr;
  }

  static bool StartsStep(const Token& tok) {
    switch (tok.kind) {
      case TokenKind::kName:
      case TokenKind::kStar:
      case TokenKind::kAt:
      case TokenKind::kAxis:
      case TokenKind::kDotDot:
        return true;
      default:
        return false;
    }
  }

  Result<ExprPtr> ParsePath() {
    auto path = MakeExpr(ExprKind::kPath);
    bool have_root = false;

    if (lexer_.Peek().kind == TokenKind::kSlash ||
        lexer_.Peek().kind == TokenKind::kDoubleSlash) {
      path->path_from_root = true;
      if (lexer_.Peek().kind == TokenKind::kDoubleSlash) {
        lexer_.Next();
        Step step;
        step.axis = Axis::kDescendantOrSelf;
        step.name_test = "*";
        path->steps.push_back(std::move(step));
      } else {
        lexer_.Next();
      }
      XBENCH_ASSIGN_OR_RETURN(Step step, ParseStep());
      path->steps.push_back(std::move(step));
    } else if (StartsStep(lexer_.Peek()) &&
               !IsFunctionCallAhead()) {
      // Relative path beginning with a step (e.g. `title` inside a
      // predicate).
      XBENCH_ASSIGN_OR_RETURN(Step step, ParseStep());
      path->steps.push_back(std::move(step));
    } else {
      XBENCH_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimary());
      // Predicates directly on a primary expression filter the whole
      // sequence (FilterExpr), unlike step predicates which are applied
      // per context node.
      if (lexer_.Peek().kind == TokenKind::kLBracket) {
        auto filter = MakeExpr(ExprKind::kFilter);
        filter->lhs = std::move(primary);
        while (lexer_.Peek().kind == TokenKind::kLBracket) {
          lexer_.Next();
          XBENCH_ASSIGN_OR_RETURN(ExprPtr pred, ParseExprSequence());
          filter->children.push_back(std::move(pred));
          XBENCH_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
        }
        primary = std::move(filter);
      }
      path->path_root = std::move(primary);
      have_root = true;
    }

    while (lexer_.Peek().kind == TokenKind::kSlash ||
           lexer_.Peek().kind == TokenKind::kDoubleSlash) {
      if (lexer_.Next().kind == TokenKind::kDoubleSlash) {
        Step step;
        step.axis = Axis::kDescendantOrSelf;
        step.name_test = "*";
        path->steps.push_back(std::move(step));
      }
      XBENCH_ASSIGN_OR_RETURN(Step step, ParseStep());
      path->steps.push_back(std::move(step));
    }

    // Collapse the trivial wrapper when there are no steps.
    if (path->steps.empty() && have_root) {
      return std::move(path->path_root);
    }
    return path;
  }

  /// Distinguishes `name(...)` function calls from a path step `name`.
  bool IsFunctionCallAhead() const {
    const Token& tok = lexer_.Peek();
    if (tok.kind != TokenKind::kName) return false;
    // Reserved node-test-like names are never our functions.
    size_t p = lexer_.RawPos();
    std::string_view raw = lexer_.RawInput();
    while (p < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[p]))) {
      ++p;
    }
    return p < raw.size() && raw[p] == '(';
  }

  Result<Step> ParseStep() {
    Step step;
    const Token& tok = lexer_.Peek();
    switch (tok.kind) {
      case TokenKind::kAt: {
        lexer_.Next();
        step.axis = Axis::kAttribute;
        XBENCH_ASSIGN_OR_RETURN(step.name_test, ParseNameTest());
        break;
      }
      case TokenKind::kAxis: {
        std::string axis_name = lexer_.Next().text;
        if (axis_name == "child") {
          step.axis = Axis::kChild;
        } else if (axis_name == "descendant") {
          step.axis = Axis::kDescendant;
        } else if (axis_name == "descendant-or-self") {
          step.axis = Axis::kDescendantOrSelf;
        } else if (axis_name == "attribute") {
          step.axis = Axis::kAttribute;
        } else if (axis_name == "self") {
          step.axis = Axis::kSelf;
        } else if (axis_name == "parent") {
          step.axis = Axis::kParent;
        } else if (axis_name == "following-sibling") {
          step.axis = Axis::kFollowingSibling;
        } else if (axis_name == "preceding-sibling") {
          step.axis = Axis::kPrecedingSibling;
        } else {
          return Err("unsupported axis '" + axis_name + "'");
        }
        XBENCH_ASSIGN_OR_RETURN(step.name_test, ParseNameTest());
        break;
      }
      case TokenKind::kDotDot:
        lexer_.Next();
        step.axis = Axis::kParent;
        step.name_test = "*";
        break;
      case TokenKind::kName:
      case TokenKind::kStar: {
        step.axis = Axis::kChild;
        XBENCH_ASSIGN_OR_RETURN(step.name_test, ParseNameTest());
        break;
      }
      default:
        return Err("expected a path step");
    }
    while (lexer_.Peek().kind == TokenKind::kLBracket) {
      lexer_.Next();
      XBENCH_ASSIGN_OR_RETURN(ExprPtr pred, ParseExprSequence());
      step.predicates.push_back(std::move(pred));
      XBENCH_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    }
    return step;
  }

  Result<std::string> ParseNameTest() {
    const Token& tok = lexer_.Peek();
    if (tok.kind == TokenKind::kStar) {
      lexer_.Next();
      return std::string("*");
    }
    if (tok.kind == TokenKind::kName) {
      // Keep the whole token alive (copying the string member out of the
      // temporary trips a GCC 12 spurious -Wmaybe-uninitialized).
      Token name_tok = lexer_.Next();
      // `text()` node test.
      if (name_tok.text == "text" &&
          lexer_.Peek().kind == TokenKind::kLParen) {
        lexer_.Next();
        XBENCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return std::string("text()");
      }
      return std::move(name_tok.text);
    }
    return Err("expected a name test");
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = lexer_.Peek();
    switch (tok.kind) {
      case TokenKind::kString: {
        auto expr = MakeExpr(ExprKind::kStringLiteral);
        expr->string_value = lexer_.Next().text;
        return expr;
      }
      case TokenKind::kNumber: {
        auto expr = MakeExpr(ExprKind::kNumberLiteral);
        expr->number_value = ParseDouble(lexer_.Next().text);
        return expr;
      }
      case TokenKind::kVariable: {
        auto expr = MakeExpr(ExprKind::kVariable);
        expr->variable = lexer_.Next().text;
        return expr;
      }
      case TokenKind::kDot: {
        lexer_.Next();
        return MakeExpr(ExprKind::kContextItem);
      }
      case TokenKind::kLParen: {
        lexer_.Next();
        if (lexer_.Peek().kind == TokenKind::kRParen) {
          lexer_.Next();
          return MakeExpr(ExprKind::kSequence);  // empty sequence ()
        }
        XBENCH_ASSIGN_OR_RETURN(ExprPtr inner, ParseExprSequence());
        XBENCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kLtElem:
        return ParseConstructor();
      case TokenKind::kName: {
        // Function call.
        std::string name = lexer_.Next().text;
        XBENCH_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        auto expr = MakeExpr(ExprKind::kFunctionCall);
        expr->function_name = std::move(name);
        if (lexer_.Peek().kind != TokenKind::kRParen) {
          for (;;) {
            XBENCH_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
            expr->children.push_back(std::move(arg));
            if (lexer_.Peek().kind != TokenKind::kComma) break;
            lexer_.Next();
          }
        }
        XBENCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return expr;
      }
      default:
        return Err("expected an expression");
    }
  }

  // --- Direct element constructor (raw scan) ---------------------------

  Result<ExprPtr> ParseConstructor() {
    // The kLtElem token's offset points at '<'.
    size_t pos = lexer_.Peek().offset;
    XBENCH_ASSIGN_OR_RETURN(ExprPtr ctor, ScanConstructor(pos));
    lexer_.SeekTo(pos);
    return ctor;
  }

  /// Scans a direct constructor starting at input_[pos] == '<'; advances
  /// `pos` past the constructor.
  Result<ExprPtr> ScanConstructor(size_t& pos) {
    auto fail = [&](std::string msg) {
      return Status::InvalidArgument(msg + " at offset " +
                                     std::to_string(pos));
    };
    if (depth_ >= kMaxParseDepth) {
      return fail("constructor nesting exceeds " +
                  std::to_string(kMaxParseDepth) + " levels");
    }
    ++depth_;
    auto result = ScanConstructorInner(pos);
    --depth_;
    return result;
  }

  Result<ExprPtr> ScanConstructorInner(size_t& pos) {
    auto fail = [&](std::string msg) {
      return Status::InvalidArgument(msg + " at offset " +
                                     std::to_string(pos));
    };
    if (pos >= input_.size() || input_[pos] != '<') {
      return fail("expected '<'");
    }
    ++pos;
    std::string name = ScanCtorName(pos);
    if (name.empty()) return fail("expected element name");
    auto ctor = MakeExpr(ExprKind::kConstructor);
    ctor->element_name = name;

    // Attributes.
    for (;;) {
      SkipRawSpace(pos);
      if (pos >= input_.size()) return fail("unterminated constructor");
      if (input_[pos] == '/' || input_[pos] == '>') break;
      ConstructorAttr attr;
      attr.name = ScanCtorName(pos);
      if (attr.name.empty()) return fail("expected attribute name");
      SkipRawSpace(pos);
      if (pos >= input_.size() || input_[pos] != '=') {
        return fail("expected '=' in constructor attribute");
      }
      ++pos;
      SkipRawSpace(pos);
      if (pos >= input_.size() || (input_[pos] != '"' && input_[pos] != '\'')) {
        return fail("expected quoted attribute value");
      }
      const char quote = input_[pos];
      ++pos;
      std::string text;
      while (pos < input_.size() && input_[pos] != quote) {
        if (input_[pos] == '{') {
          if (!text.empty()) {
            ConstructorContent part;
            part.kind = ConstructorContent::kText;
            part.text = std::move(text);
            attr.value_parts.push_back(std::move(part));
            text.clear();
          }
          XBENCH_ASSIGN_OR_RETURN(ExprPtr inner, ScanEnclosedExpr(pos));
          ConstructorContent part;
          part.kind = ConstructorContent::kExpr;
          part.expr = std::move(inner);
          attr.value_parts.push_back(std::move(part));
        } else {
          text.push_back(input_[pos]);
          ++pos;
        }
      }
      if (pos >= input_.size()) return fail("unterminated attribute value");
      ++pos;  // closing quote
      if (!text.empty()) {
        ConstructorContent part;
        part.kind = ConstructorContent::kText;
        part.text = std::move(text);
        attr.value_parts.push_back(std::move(part));
      }
      ctor->constructor_attrs.push_back(std::move(attr));
    }

    if (input_[pos] == '/') {
      ++pos;
      if (pos >= input_.size() || input_[pos] != '>') {
        return fail("expected '/>'");
      }
      ++pos;
      return ctor;
    }
    ++pos;  // '>'

    // Content until matching end tag.
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      // Boundary whitespace between constructs is dropped (XQuery default).
      if (Trim(text).empty()) {
        text.clear();
        return;
      }
      ConstructorContent part;
      part.kind = ConstructorContent::kText;
      part.text = std::move(text);
      ctor->constructor_content.push_back(std::move(part));
      text.clear();
    };

    for (;;) {
      if (pos >= input_.size()) return fail("unterminated constructor body");
      const char c = input_[pos];
      if (c == '<') {
        if (pos + 1 < input_.size() && input_[pos + 1] == '/') {
          flush_text();
          pos += 2;
          std::string close = ScanCtorName(pos);
          if (close != name) {
            return fail("mismatched constructor end tag </" + close + ">");
          }
          SkipRawSpace(pos);
          if (pos >= input_.size() || input_[pos] != '>') {
            return fail("expected '>' in end tag");
          }
          ++pos;
          return ctor;
        }
        flush_text();
        XBENCH_ASSIGN_OR_RETURN(ExprPtr child, ScanConstructor(pos));
        ConstructorContent part;
        part.kind = ConstructorContent::kChild;
        part.child = std::move(child);
        ctor->constructor_content.push_back(std::move(part));
        continue;
      }
      if (c == '{') {
        flush_text();
        XBENCH_ASSIGN_OR_RETURN(ExprPtr inner, ScanEnclosedExpr(pos));
        ConstructorContent part;
        part.kind = ConstructorContent::kExpr;
        part.expr = std::move(inner);
        ctor->constructor_content.push_back(std::move(part));
        continue;
      }
      text.push_back(c);
      ++pos;
    }
  }

  std::string ScanCtorName(size_t& pos) {
    size_t start = pos;
    while (pos < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos])) != 0 ||
            input_[pos] == '_' || input_[pos] == '-' || input_[pos] == '.' ||
            input_[pos] == ':')) {
      ++pos;
    }
    return std::string(input_.substr(start, pos - start));
  }

  void SkipRawSpace(size_t& pos) {
    while (pos < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos]))) {
      ++pos;
    }
  }

  /// Scans `{ Expr }` starting at input_[pos] == '{'; parses the enclosed
  /// text with a fresh sub-parser. Tracks strings and nested braces to find
  /// the matching '}'.
  Result<ExprPtr> ScanEnclosedExpr(size_t& pos) {
    ++pos;  // '{'
    const size_t start = pos;
    int depth = 1;
    while (pos < input_.size()) {
      const char c = input_[pos];
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++pos;
        while (pos < input_.size() && input_[pos] != quote) ++pos;
        if (pos < input_.size()) ++pos;
        continue;
      }
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (depth == 0) {
          // The sub-parser inherits our nesting depth so `<a>{<a>{...` can't
          // reset the budget each level.
          Parser sub(input_.substr(start, pos - start), depth_);
          ++pos;  // '}'
          return sub.Parse();
        }
      }
      ++pos;
    }
    return Status::InvalidArgument("unterminated enclosed expression");
  }

  std::string_view input_;
  Lexer lexer_;
  int depth_ = 0;
};

}  // namespace

Result<ExprPtr> ParseQuery(std::string_view query) {
  Parser parser(query);
  return parser.Parse();
}

}  // namespace xbench::xquery
