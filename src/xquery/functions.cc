#include "xquery/functions.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <optional>
#include <set>

#include "common/strings.h"

namespace xbench::xquery {
namespace {

Status Arity(std::string_view name, const std::vector<Sequence>& args,
             size_t min_args, size_t max_args) {
  if (args.size() < min_args || args.size() > max_args) {
    return Status::InvalidArgument(std::string(name) + "(): expected " +
                                   std::to_string(min_args) + ".." +
                                   std::to_string(max_args) + " arguments");
  }
  return Status::Ok();
}

/// Single-item string argument (empty sequence -> "").
std::string StringArg(const Sequence& seq) {
  if (seq.empty()) return "";
  return AtomizeToString(seq.front());
}

Result<Sequence> Numeric(std::string_view name,
                         const std::vector<Sequence>& args,
                         double (*fold)(const std::vector<double>&)) {
  XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
  std::vector<double> values;
  values.reserve(args[0].size());
  for (const Item& item : args[0]) {
    auto v = AtomizeToNumber(item);
    if (!v.has_value()) {
      return Status::InvalidArgument(std::string(name) +
                                     "(): non-numeric item '" +
                                     AtomizeToString(item) + "'");
    }
    values.push_back(*v);
  }
  if (values.empty()) return Sequence{};  // empty input -> empty result
  return Sequence{Item::Number(fold(values))};
}

}  // namespace

bool IsContextFunction(std::string_view name) {
  return name == "position" || name == "last";
}

Result<Sequence> CallFunction(std::string_view name,
                              std::vector<Sequence> args) {
  // --- aggregates -------------------------------------------------------
  if (name == "count") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Sequence{Item::Number(static_cast<double>(args[0].size()))};
  }
  if (name == "sum") {
    return Numeric(name, args, +[](const std::vector<double>& v) {
      double total = 0;
      for (double x : v) total += x;
      return total;
    });
  }
  if (name == "avg") {
    return Numeric(name, args, +[](const std::vector<double>& v) {
      double total = 0;
      for (double x : v) total += x;
      return total / static_cast<double>(v.size());
    });
  }
  if (name == "min" || name == "max") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    if (args[0].empty()) return Sequence{};
    // Numeric when every item is numeric, else string comparison.
    bool all_numeric = true;
    for (const Item& item : args[0]) {
      if (!AtomizeToNumber(item).has_value()) {
        all_numeric = false;
        break;
      }
    }
    const bool want_max = name == "max";
    if (all_numeric) {
      double best = *AtomizeToNumber(args[0].front());
      for (const Item& item : args[0]) {
        const double v = *AtomizeToNumber(item);
        if (want_max ? v > best : v < best) best = v;
      }
      return Sequence{Item::Number(best)};
    }
    std::string best = AtomizeToString(args[0].front());
    for (const Item& item : args[0]) {
      std::string v = AtomizeToString(item);
      if (want_max ? v > best : v < best) best = std::move(v);
    }
    return Sequence{Item::String(std::move(best))};
  }

  // --- strings ----------------------------------------------------------
  if (name == "contains") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return Sequence{
        Item::Bool(ContainsPhrase(StringArg(args[0]), StringArg(args[1])))};
  }
  if (name == "contains-word") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return Sequence{
        Item::Bool(ContainsWord(StringArg(args[0]), StringArg(args[1])))};
  }
  if (name == "starts-with") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return Sequence{
        Item::Bool(StartsWith(StringArg(args[0]), StringArg(args[1])))};
  }
  if (name == "ends-with") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return Sequence{
        Item::Bool(EndsWith(StringArg(args[0]), StringArg(args[1])))};
  }
  if (name == "string-length") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Sequence{
        Item::Number(static_cast<double>(StringArg(args[0]).size()))};
  }
  if (name == "substring") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 2, 3));
    const std::string s = StringArg(args[0]);
    std::optional<double> start_opt;
    if (!args[1].empty()) start_opt = AtomizeToNumber(args[1].front());
    if (!start_opt.has_value()) {
      return Status::InvalidArgument("substring(): bad start");
    }
    // Clamp to the string's size before converting: double→size_t is
    // undefined for NaN and for values beyond size_t's range.
    const double start_d = std::max(0.0, std::round(*start_opt) - 1);
    const size_t start =
        (std::isnan(start_d) || start_d >= static_cast<double>(s.size()))
            ? s.size()
            : static_cast<size_t>(start_d);
    size_t len = std::string::npos;
    if (args.size() == 3 && !args[2].empty()) {
      auto len_opt = AtomizeToNumber(args[2].front());
      if (!len_opt.has_value()) {
        return Status::InvalidArgument("substring(): bad length");
      }
      const double len_d = std::max(0.0, std::round(*len_opt));
      if (std::isnan(len_d) || len_d >= static_cast<double>(s.size())) {
        len = std::string::npos;
      } else {
        len = static_cast<size_t>(len_d);
      }
    }
    if (start >= s.size()) return Sequence{Item::String("")};
    return Sequence{Item::String(s.substr(start, len))};
  }
  if (name == "concat") {
    std::string out;
    for (const Sequence& arg : args) out += StringArg(arg);
    return Sequence{Item::String(std::move(out))};
  }
  if (name == "string-join") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 2));
    const std::string sep = args.size() == 2 ? StringArg(args[1]) : "";
    std::string out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (i != 0) out += sep;
      out += AtomizeToString(args[0][i]);
    }
    return Sequence{Item::String(std::move(out))};
  }
  if (name == "upper-case" || name == "lower-case") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    std::string s = StringArg(args[0]);
    const bool upper = name == "upper-case";
    for (char& c : s) {
      c = static_cast<char>(upper ? std::toupper(static_cast<unsigned char>(c))
                                  : std::tolower(static_cast<unsigned char>(c)));
    }
    return Sequence{Item::String(std::move(s))};
  }
  if (name == "normalize-space") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    const std::string s = StringArg(args[0]);
    std::string out;
    bool in_space = true;
    for (char c : s) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) out.push_back(' ');
        in_space = true;
      } else {
        out.push_back(c);
        in_space = false;
      }
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return Sequence{Item::String(std::move(out))};
  }

  // --- casts / constructors ---------------------------------------------
  if (name == "string" || name == "xs:string") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    if (args[0].empty()) return Sequence{Item::String("")};
    return Sequence{Item::String(AtomizeToString(args[0].front()))};
  }
  if (name == "number" || name == "xs:double" || name == "xs:decimal" ||
      name == "xs:integer") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    if (args[0].empty()) return Sequence{};
    auto v = AtomizeToNumber(args[0].front());
    if (!v.has_value()) {
      if (name == "number") return Sequence{Item::Number(std::nan(""))};
      return Status::InvalidArgument(
          std::string(name) + "(): cannot cast '" +
          AtomizeToString(args[0].front()) + "'");
    }
    if (name == "xs:integer") return Sequence{Item::Number(std::trunc(*v))};
    return Sequence{Item::Number(*v)};
  }
  if (name == "xs:date") {
    // Dates stay strings (ISO form compares correctly); validate shape.
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    if (args[0].empty()) return Sequence{};
    std::string s = StringArg(args[0]);
    if (s.size() < 10 || s[4] != '-' || s[7] != '-') {
      return Status::InvalidArgument("xs:date(): bad lexical form '" + s +
                                     "'");
    }
    return Sequence{Item::String(std::move(s))};
  }
  if (name == "boolean") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    XBENCH_ASSIGN_OR_RETURN(bool value, EffectiveBooleanValue(args[0]));
    return Sequence{Item::Bool(value)};
  }
  if (name == "not") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    XBENCH_ASSIGN_OR_RETURN(bool value, EffectiveBooleanValue(args[0]));
    return Sequence{Item::Bool(!value)};
  }
  if (name == "true") return Sequence{Item::Bool(true)};
  if (name == "false") return Sequence{Item::Bool(false)};

  // --- sequences ----------------------------------------------------------
  if (name == "empty") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Sequence{Item::Bool(args[0].empty())};
  }
  if (name == "exists") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Sequence{Item::Bool(!args[0].empty())};
  }
  if (name == "distinct-values") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    std::set<std::string> seen;
    Sequence out;
    for (const Item& item : args[0]) {
      std::string v = AtomizeToString(item);
      if (seen.insert(v).second) out.push_back(Item::String(std::move(v)));
    }
    return out;
  }
  if (name == "data") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    Sequence out;
    out.reserve(args[0].size());
    for (const Item& item : args[0]) {
      out.push_back(Item::String(AtomizeToString(item)));
    }
    return out;
  }
  if (name == "name") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    if (args[0].empty()) return Sequence{Item::String("")};
    const Item& item = args[0].front();
    if (item.kind == Item::Kind::kNode) {
      return Sequence{Item::String(item.node->name())};
    }
    if (item.kind == Item::Kind::kAttribute) {
      return Sequence{Item::String(
          item.node->attributes()[static_cast<size_t>(item.attr_index)].name)};
    }
    return Sequence{Item::String("")};
  }

  // --- numeric ------------------------------------------------------------
  if (name == "round" || name == "floor" || name == "ceiling") {
    XBENCH_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    if (args[0].empty()) return Sequence{};
    auto v = AtomizeToNumber(args[0].front());
    if (!v.has_value()) {
      return Status::InvalidArgument(std::string(name) + "(): non-numeric");
    }
    double r = name == "round" ? std::round(*v)
               : name == "floor" ? std::floor(*v)
                                 : std::ceil(*v);
    return Sequence{Item::Number(r)};
  }

  return Status::NotFound("unknown function '" + std::string(name) + "'");
}

}  // namespace xbench::xquery
