#include "xquery/ast.h"

namespace xbench::xquery {
namespace {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kSelf:
      return "self";
    case Axis::kParent:
      return "parent";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
  }
  return "?";
}

void Render(const Expr& e, std::string& out) {
  switch (e.kind) {
    case ExprKind::kStringLiteral:
      out += "\"" + e.string_value + "\"";
      return;
    case ExprKind::kNumberLiteral:
      out += std::to_string(e.number_value);
      return;
    case ExprKind::kVariable:
      out += "$" + e.variable;
      return;
    case ExprKind::kContextItem:
      out += ".";
      return;
    case ExprKind::kSequence:
      out += "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += ", ";
        Render(*e.children[i], out);
      }
      out += ")";
      return;
    case ExprKind::kPath: {
      if (e.path_root != nullptr) {
        Render(*e.path_root, out);
      } else if (e.path_from_root) {
        out += "(root)";
      } else {
        out += ".";
      }
      for (const Step& step : e.steps) {
        out += "/";
        out += AxisName(step.axis);
        out += "::";
        out += step.name_test;
        for (const auto& pred : step.predicates) {
          out += "[";
          Render(*pred, out);
          out += "]";
        }
      }
      return;
    }
    case ExprKind::kComparison: {
      static const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
      out += "(";
      Render(*e.lhs, out);
      out += " ";
      out += ops[static_cast<int>(e.compare_op)];
      out += " ";
      Render(*e.rhs, out);
      out += ")";
      return;
    }
    case ExprKind::kArithmetic: {
      static const char* ops[] = {"+", "-", "*", "div", "mod"};
      out += "(";
      Render(*e.lhs, out);
      out += " ";
      out += ops[static_cast<int>(e.arith_op)];
      out += " ";
      Render(*e.rhs, out);
      out += ")";
      return;
    }
    case ExprKind::kLogical:
      out += "(";
      Render(*e.lhs, out);
      out += e.logical_op == LogicalOp::kAnd ? " and " : " or ";
      Render(*e.rhs, out);
      out += ")";
      return;
    case ExprKind::kFunctionCall:
      out += e.function_name + "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += ", ";
        Render(*e.children[i], out);
      }
      out += ")";
      return;
    case ExprKind::kFlwor: {
      size_t fi = 0;
      size_t li = 0;
      for (char c : e.clause_order) {
        if (c == 'f') {
          const ForClause& clause = e.for_clauses[fi++];
          out += "for $" + clause.variable;
          if (!clause.position_variable.empty()) {
            out += " at $" + clause.position_variable;
          }
          out += " in ";
          Render(*clause.input, out);
          out += " ";
        } else {
          const LetClause& clause = e.let_clauses[li++];
          out += "let $" + clause.variable + " := ";
          Render(*clause.value, out);
          out += " ";
        }
      }
      if (e.where != nullptr) {
        out += "where ";
        Render(*e.where, out);
        out += " ";
      }
      if (!e.order_by.empty()) {
        out += "order by ";
        for (size_t i = 0; i < e.order_by.size(); ++i) {
          if (i != 0) out += ", ";
          Render(*e.order_by[i].key, out);
          if (!e.order_by[i].ascending) out += " descending";
        }
        out += " ";
      }
      out += "return ";
      Render(*e.return_expr, out);
      return;
    }
    case ExprKind::kQuantified:
      out += e.quantifier_every ? "every" : "some";
      out += " $" + e.quant_variable + " in ";
      Render(*e.quant_input, out);
      out += " satisfies ";
      Render(*e.quant_satisfies, out);
      return;
    case ExprKind::kIfThenElse:
      out += "if (";
      Render(*e.lhs, out);
      out += ") then ";
      Render(*e.then_branch, out);
      out += " else ";
      Render(*e.else_branch, out);
      return;
    case ExprKind::kConstructor:
      out += "<" + e.element_name + ">...</" + e.element_name + ">";
      return;
    case ExprKind::kFilter:
      Render(*e.lhs, out);
      for (const auto& pred : e.children) {
        out += "[";
        Render(*pred, out);
        out += "]";
      }
      return;
    case ExprKind::kRange:
      out += "(";
      Render(*e.lhs, out);
      out += " to ";
      Render(*e.rhs, out);
      out += ")";
      return;
    case ExprKind::kUnion:
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += " | ";
        Render(*e.children[i], out);
      }
      return;
  }
}

}  // namespace

std::string ToDebugString(const Expr& expr) {
  std::string out;
  Render(expr, out);
  return out;
}

}  // namespace xbench::xquery
