#include "xquery/ast.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xbench::xquery {
namespace {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kSelf:
      return "self";
    case Axis::kParent:
      return "parent";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
  }
  return "?";
}

void Render(const Expr& e, std::string& out) {
  switch (e.kind) {
    case ExprKind::kStringLiteral:
      out += "\"" + e.string_value + "\"";
      return;
    case ExprKind::kNumberLiteral:
      out += std::to_string(e.number_value);
      return;
    case ExprKind::kVariable:
      out += "$" + e.variable;
      return;
    case ExprKind::kContextItem:
      out += ".";
      return;
    case ExprKind::kSequence:
      out += "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += ", ";
        Render(*e.children[i], out);
      }
      out += ")";
      return;
    case ExprKind::kPath: {
      if (e.path_root != nullptr) {
        Render(*e.path_root, out);
      } else if (e.path_from_root) {
        out += "(root)";
      } else {
        out += ".";
      }
      for (const Step& step : e.steps) {
        out += "/";
        out += AxisName(step.axis);
        out += "::";
        out += step.name_test;
        for (const auto& pred : step.predicates) {
          out += "[";
          Render(*pred, out);
          out += "]";
        }
      }
      return;
    }
    case ExprKind::kComparison: {
      static const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
      out += "(";
      Render(*e.lhs, out);
      out += " ";
      out += ops[static_cast<int>(e.compare_op)];
      out += " ";
      Render(*e.rhs, out);
      out += ")";
      return;
    }
    case ExprKind::kArithmetic: {
      static const char* ops[] = {"+", "-", "*", "div", "mod"};
      out += "(";
      Render(*e.lhs, out);
      out += " ";
      out += ops[static_cast<int>(e.arith_op)];
      out += " ";
      Render(*e.rhs, out);
      out += ")";
      return;
    }
    case ExprKind::kLogical:
      out += "(";
      Render(*e.lhs, out);
      out += e.logical_op == LogicalOp::kAnd ? " and " : " or ";
      Render(*e.rhs, out);
      out += ")";
      return;
    case ExprKind::kFunctionCall:
      out += e.function_name + "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += ", ";
        Render(*e.children[i], out);
      }
      out += ")";
      return;
    case ExprKind::kFlwor: {
      size_t fi = 0;
      size_t li = 0;
      for (char c : e.clause_order) {
        if (c == 'f') {
          const ForClause& clause = e.for_clauses[fi++];
          out += "for $" + clause.variable;
          if (!clause.position_variable.empty()) {
            out += " at $" + clause.position_variable;
          }
          out += " in ";
          Render(*clause.input, out);
          out += " ";
        } else {
          const LetClause& clause = e.let_clauses[li++];
          out += "let $" + clause.variable + " := ";
          Render(*clause.value, out);
          out += " ";
        }
      }
      if (e.where != nullptr) {
        out += "where ";
        Render(*e.where, out);
        out += " ";
      }
      if (!e.order_by.empty()) {
        out += "order by ";
        for (size_t i = 0; i < e.order_by.size(); ++i) {
          if (i != 0) out += ", ";
          Render(*e.order_by[i].key, out);
          if (!e.order_by[i].ascending) out += " descending";
        }
        out += " ";
      }
      out += "return ";
      Render(*e.return_expr, out);
      return;
    }
    case ExprKind::kQuantified:
      out += e.quantifier_every ? "every" : "some";
      out += " $" + e.quant_variable + " in ";
      Render(*e.quant_input, out);
      out += " satisfies ";
      Render(*e.quant_satisfies, out);
      return;
    case ExprKind::kIfThenElse:
      out += "if (";
      Render(*e.lhs, out);
      out += ") then ";
      Render(*e.then_branch, out);
      out += " else ";
      Render(*e.else_branch, out);
      return;
    case ExprKind::kConstructor:
      out += "<" + e.element_name + ">...</" + e.element_name + ">";
      return;
    case ExprKind::kFilter:
      Render(*e.lhs, out);
      for (const auto& pred : e.children) {
        out += "[";
        Render(*pred, out);
        out += "]";
      }
      return;
    case ExprKind::kRange:
      out += "(";
      Render(*e.lhs, out);
      out += " to ";
      Render(*e.rhs, out);
      out += ")";
      return;
    case ExprKind::kUnion:
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += " | ";
        Render(*e.children[i], out);
      }
      return;
  }
}

// --- Re-parseable rendering (ToQueryString) ----------------------------

/// Renders a finite non-negative double as a literal the lexer accepts:
/// digits with an optional fraction, no sign, no exponent. Finds the
/// shortest %.*f form that strtod maps back to the same double; every
/// double has one (1074 fractional digits spell the smallest subnormal
/// exactly).
std::string RenderNumberLiteral(double value) {
  char buf[1500];
  for (int prec = 0; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*f", prec, value);
    if (std::strtod(buf, nullptr) == value) break;
    if (prec == 17) std::snprintf(buf, sizeof(buf), "%.1074f", value);
  }
  std::string text(buf);
  if (text.find('.') != std::string::npos) {
    while (text.size() > 1 && text.back() == '0') text.pop_back();
    if (text.back() == '.') text.pop_back();
  }
  return text;
}

class QueryRenderer {
 public:
  Result<std::string> Render(const Expr& expr) {
    std::string out;
    XBENCH_RETURN_IF_ERROR(Expr_(expr, out));
    return out;
  }

 private:
  static Status Unrenderable(const std::string& what) {
    return Status::InvalidArgument("ToQueryString: " + what);
  }

  Status Number(double value, std::string& out) {
    if (std::isnan(value)) {
      // The grammar has no NaN literal (and parsing can never produce
      // one: number tokens are digit strings).
      return Unrenderable("NaN number literal");
    }
    if (value < 0) {
      // Negative literals do not exist in parsed trees either (unary
      // minus desugars to `0 - x`); spell the same desugaring.
      out += "(0 - ";
      XBENCH_RETURN_IF_ERROR(Number(-value, out));
      out += ")";
      return Status::Ok();
    }
    if (std::isinf(value)) {
      // Any decimal literal above DBL_MAX overflows strtod to infinity,
      // which is exactly how a parsed tree can hold one.
      out += "1";
      out.append(309, '0');
      return Status::Ok();
    }
    out += RenderNumberLiteral(value);
    return Status::Ok();
  }

  Status StringLit(const std::string& value, std::string& out) {
    // The lexer has no escape mechanism: a literal is the raw characters
    // between matching quotes. Pick whichever quote the value lacks.
    char quote = '"';
    if (value.find('"') != std::string::npos) {
      if (value.find('\'') != std::string::npos) {
        return Unrenderable("string literal contains both quote characters");
      }
      quote = '\'';
    }
    out.push_back(quote);
    out += value;
    out.push_back(quote);
    return Status::Ok();
  }

  Status StepText(const Step& step, std::string& out) {
    // `//` is only sugar for a descendant-or-self::* step when another
    // step follows; the caller handles that fusion. Here a step renders
    // standalone.
    switch (step.axis) {
      case Axis::kChild:
        out += step.name_test;
        break;
      case Axis::kAttribute:
        out += "@" + step.name_test;
        break;
      case Axis::kParent:
        if (step.name_test == "*") {
          out += "..";
        } else {
          out += "parent::" + step.name_test;
        }
        break;
      default:
        out += std::string(AxisName(step.axis)) + "::" + step.name_test;
        break;
    }
    for (const auto& pred : step.predicates) {
      out += "[";
      XBENCH_RETURN_IF_ERROR(Expr_(*pred, out));
      out += "]";
    }
    return Status::Ok();
  }

  Status Path(const Expr& e, std::string& out) {
    size_t i = 0;
    bool need_slash = false;
    if (e.path_root != nullptr) {
      XBENCH_RETURN_IF_ERROR(Expr_(*e.path_root, out));
      need_slash = true;
    } else if (e.path_from_root) {
      out += "/";
    }
    // A relative path must start with a step the parser recognizes as
    // one; `..`, names, wildcards and axis tests all qualify.
    for (; i < e.steps.size(); ++i) {
      const Step& step = e.steps[i];
      const bool is_dos_wildcard = step.axis == Axis::kDescendantOrSelf &&
                                   step.name_test == "*" &&
                                   step.predicates.empty();
      const bool fusable =
          is_dos_wildcard && i + 1 < e.steps.size() &&
          (need_slash || (i == 0 && e.path_from_root && e.path_root == nullptr));
      if (fusable) {
        // Render the pair as `//next` — the parser desugars it back to
        // exactly this step sequence.
        if (need_slash) {
          out += "//";
        } else {
          out += "/";  // after the leading '/': total '//'
        }
        ++i;
        XBENCH_RETURN_IF_ERROR(StepText(e.steps[i], out));
        need_slash = true;
        continue;
      }
      if (need_slash) out += "/";
      XBENCH_RETURN_IF_ERROR(StepText(step, out));
      need_slash = true;
    }
    return Status::Ok();
  }

  Status ConstructorText(const std::string& text, bool in_attr, char quote,
                         std::string& out) {
    for (char c : text) {
      if (c == '{' || c == '}' || (!in_attr && c == '<') ||
          (in_attr && c == quote)) {
        return Unrenderable("constructor text contains markup character");
      }
    }
    if (!in_attr) {
      // The parser drops whitespace-only boundary text, so rendering it
      // would not round-trip (parsed trees never contain it anyway).
      bool all_space = true;
      for (char c : text) {
        if (std::isspace(static_cast<unsigned char>(c)) == 0) {
          all_space = false;
          break;
        }
      }
      if (all_space && !text.empty()) {
        return Unrenderable("whitespace-only constructor text");
      }
    }
    out += text;
    return Status::Ok();
  }

  Status Constructor(const Expr& e, std::string& out) {
    out += "<" + e.element_name;
    for (const ConstructorAttr& attr : e.constructor_attrs) {
      // Pick the quote character no literal part contains.
      char quote = '"';
      for (const ConstructorContent& part : attr.value_parts) {
        if (part.kind == ConstructorContent::kText &&
            part.text.find('"') != std::string::npos) {
          quote = '\'';
        }
      }
      out += " " + attr.name + "=";
      out.push_back(quote);
      for (const ConstructorContent& part : attr.value_parts) {
        if (part.kind == ConstructorContent::kText) {
          XBENCH_RETURN_IF_ERROR(
              ConstructorText(part.text, /*in_attr=*/true, quote, out));
        } else {
          out += "{";
          XBENCH_RETURN_IF_ERROR(Expr_(*part.expr, out));
          out += "}";
        }
      }
      out.push_back(quote);
    }
    if (e.constructor_content.empty()) {
      out += "/>";
      return Status::Ok();
    }
    out += ">";
    for (const ConstructorContent& part : e.constructor_content) {
      switch (part.kind) {
        case ConstructorContent::kText:
          XBENCH_RETURN_IF_ERROR(
              ConstructorText(part.text, /*in_attr=*/false, '"', out));
          break;
        case ConstructorContent::kExpr:
          out += "{";
          XBENCH_RETURN_IF_ERROR(Expr_(*part.expr, out));
          out += "}";
          break;
        case ConstructorContent::kChild:
          XBENCH_RETURN_IF_ERROR(Constructor(*part.child, out));
          break;
      }
    }
    out += "</" + e.element_name + ">";
    return Status::Ok();
  }

  Status Expr_(const Expr& e, std::string& out) {
    switch (e.kind) {
      case ExprKind::kStringLiteral:
        return StringLit(e.string_value, out);
      case ExprKind::kNumberLiteral:
        return Number(e.number_value, out);
      case ExprKind::kVariable:
        out += "$" + e.variable;
        return Status::Ok();
      case ExprKind::kContextItem:
        out += ".";
        return Status::Ok();
      case ExprKind::kSequence:
        out += "(";
        for (size_t i = 0; i < e.children.size(); ++i) {
          if (i != 0) out += ", ";
          XBENCH_RETURN_IF_ERROR(Expr_(*e.children[i], out));
        }
        out += ")";
        return Status::Ok();
      case ExprKind::kPath:
        return Path(e, out);
      case ExprKind::kComparison: {
        static const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
        out += "(";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.lhs, out));
        out += std::string(" ") + ops[static_cast<int>(e.compare_op)] + " ";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.rhs, out));
        out += ")";
        return Status::Ok();
      }
      case ExprKind::kArithmetic: {
        static const char* ops[] = {"+", "-", "*", "div", "mod"};
        out += "(";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.lhs, out));
        out += std::string(" ") + ops[static_cast<int>(e.arith_op)] + " ";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.rhs, out));
        out += ")";
        return Status::Ok();
      }
      case ExprKind::kLogical:
        out += "(";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.lhs, out));
        out += e.logical_op == LogicalOp::kAnd ? " and " : " or ";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.rhs, out));
        out += ")";
        return Status::Ok();
      case ExprKind::kFunctionCall:
        out += e.function_name + "(";
        for (size_t i = 0; i < e.children.size(); ++i) {
          if (i != 0) out += ", ";
          XBENCH_RETURN_IF_ERROR(Expr_(*e.children[i], out));
        }
        out += ")";
        return Status::Ok();
      case ExprKind::kFlwor: {
        // Parenthesized (like kQuantified/kIfThenElse below): these forms
        // swallow the rest of the expression as their trailing body, so
        // only the parens keep them reparseable as operands of binary
        // operators. The parser collapses the parens.
        out += "(";
        size_t fi = 0;
        size_t li = 0;
        for (char c : e.clause_order) {
          if (c == 'f') {
            const ForClause& clause = e.for_clauses[fi++];
            out += "for $" + clause.variable;
            if (!clause.position_variable.empty()) {
              out += " at $" + clause.position_variable;
            }
            out += " in ";
            XBENCH_RETURN_IF_ERROR(Expr_(*clause.input, out));
            out += " ";
          } else {
            const LetClause& clause = e.let_clauses[li++];
            out += "let $" + clause.variable + " := ";
            XBENCH_RETURN_IF_ERROR(Expr_(*clause.value, out));
            out += " ";
          }
        }
        if (e.where != nullptr) {
          out += "where ";
          XBENCH_RETURN_IF_ERROR(Expr_(*e.where, out));
          out += " ";
        }
        if (!e.order_by.empty()) {
          out += "order by ";
          for (size_t i = 0; i < e.order_by.size(); ++i) {
            if (i != 0) out += ", ";
            XBENCH_RETURN_IF_ERROR(Expr_(*e.order_by[i].key, out));
            if (!e.order_by[i].ascending) out += " descending";
          }
          out += " ";
        }
        out += "return ";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.return_expr, out));
        out += ")";
        return Status::Ok();
      }
      case ExprKind::kQuantified:
        out += "(";
        out += e.quantifier_every ? "every" : "some";
        out += " $" + e.quant_variable + " in ";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.quant_input, out));
        out += " satisfies ";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.quant_satisfies, out));
        out += ")";
        return Status::Ok();
      case ExprKind::kIfThenElse:
        out += "(if (";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.lhs, out));
        out += ") then ";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.then_branch, out));
        out += " else ";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.else_branch, out));
        out += ")";
        return Status::Ok();
      case ExprKind::kConstructor: {
        // Parenthesized so `<` sits at an expression position, where the
        // lexer produces kLtElem; the parser collapses the parens.
        out += "(";
        XBENCH_RETURN_IF_ERROR(Constructor(e, out));
        out += ")";
        return Status::Ok();
      }
      case ExprKind::kFilter:
        XBENCH_RETURN_IF_ERROR(Expr_(*e.lhs, out));
        for (const auto& pred : e.children) {
          out += "[";
          XBENCH_RETURN_IF_ERROR(Expr_(*pred, out));
          out += "]";
        }
        return Status::Ok();
      case ExprKind::kRange:
        out += "(";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.lhs, out));
        out += " to ";
        XBENCH_RETURN_IF_ERROR(Expr_(*e.rhs, out));
        out += ")";
        return Status::Ok();
      case ExprKind::kUnion:
        out += "(";
        for (size_t i = 0; i < e.children.size(); ++i) {
          if (i != 0) out += " | ";
          XBENCH_RETURN_IF_ERROR(Expr_(*e.children[i], out));
        }
        out += ")";
        return Status::Ok();
    }
    return Status::Internal("unhandled expression kind");
  }
};

}  // namespace

std::string ToDebugString(const Expr& expr) {
  std::string out;
  Render(expr, out);
  return out;
}

Result<std::string> ToQueryString(const Expr& expr) {
  return QueryRenderer().Render(expr);
}

}  // namespace xbench::xquery
