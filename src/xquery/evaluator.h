#ifndef XBENCH_XQUERY_EVALUATOR_H_
#define XBENCH_XQUERY_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "xml/node.h"
#include "xquery/ast.h"
#include "xquery/sequence.h"

namespace xbench::xquery {

/// The result of a query: the item sequence plus the arena that owns any
/// nodes built by element constructors (result items may point into it, so
/// it must outlive the items).
struct QueryResult {
  Sequence items;
  std::vector<std::unique_ptr<xml::Node>> constructed;

  /// Serializes every item: elements as XML, atomics/attributes as their
  /// string value — one line per item. Used for answer comparison.
  std::string ToText() const;
};

/// External variable bindings (e.g. $input = collection roots).
using Bindings = std::map<std::string, Sequence>;

/// Evaluation switches.
struct EvalOptions {
  /// When false, analyzer-provided `Step::expansions` annotations are
  /// ignored and descendant steps always run the full subtree scan.
  /// Engines must disable expansions unless the collection they evaluate
  /// over has been validated against the schema the expansions were
  /// resolved from — a parent→child edge present in the data but missing
  /// from that schema would make the guided walk silently drop matches.
  bool use_step_expansions = true;
};

/// One lexical-scope binding (FLWOR/quantifier variable → value). The
/// innermost binding of a name is the last matching entry.
using ScopeBinding = std::pair<std::string, Sequence>;

/// Evaluates a parsed query with the tree-walking interpreter. This is
/// the semantic reference: the compiled pipeline (xquery/plan/ +
/// xquery/exec/) must produce byte-identical ToText() output, and
/// differential tests hold it to that. The documents referenced by
/// `bindings` must outlive the result.
Result<QueryResult> Evaluate(const Expr& query, const Bindings& bindings,
                             const EvalOptions& options = {});

/// Interpreter-core hook for the compiled physical operators: evaluates
/// one expression exactly as the tree-walking interpreter would, under
/// `bindings` plus an explicit variable scope and an optional dynamic
/// focus (`context_item` null = no focus; `position`/`size` are 1-based
/// when a focus exists). Constructed nodes are appended to `arena`, which
/// must outlive the returned items. Physical operators delegate every
/// scalar leaf (predicates, where clauses, order keys, constructor
/// content) here, so compiled plans cannot diverge from the interpreter
/// on expression semantics.
Result<Sequence> EvalWithEnv(const Expr& expr, const Bindings& bindings,
                             const std::vector<ScopeBinding>& scope,
                             const Item* context_item, size_t position,
                             size_t size, const EvalOptions& options,
                             std::vector<std::unique_ptr<xml::Node>>& arena);

/// Parse + evaluate convenience (one-shot callers only; the workload
/// runner and engines hold parsed ASTs / compiled plans instead of
/// re-parsing query text per execution).
Result<QueryResult> EvaluateQuery(std::string_view query,
                                  const Bindings& bindings);

}  // namespace xbench::xquery

#endif  // XBENCH_XQUERY_EVALUATOR_H_
