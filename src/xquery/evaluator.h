#ifndef XBENCH_XQUERY_EVALUATOR_H_
#define XBENCH_XQUERY_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/node.h"
#include "xquery/ast.h"
#include "xquery/sequence.h"

namespace xbench::xquery {

/// The result of a query: the item sequence plus the arena that owns any
/// nodes built by element constructors (result items may point into it, so
/// it must outlive the items).
struct QueryResult {
  Sequence items;
  std::vector<std::unique_ptr<xml::Node>> constructed;

  /// Serializes every item: elements as XML, atomics/attributes as their
  /// string value — one line per item. Used for answer comparison.
  std::string ToText() const;
};

/// External variable bindings (e.g. $input = collection roots).
using Bindings = std::map<std::string, Sequence>;

/// Evaluation switches.
struct EvalOptions {
  /// When false, analyzer-provided `Step::expansions` annotations are
  /// ignored and descendant steps always run the full subtree scan.
  /// Engines must disable expansions unless the collection they evaluate
  /// over has been validated against the schema the expansions were
  /// resolved from — a parent→child edge present in the data but missing
  /// from that schema would make the guided walk silently drop matches.
  bool use_step_expansions = true;
};

/// Evaluates a parsed query. The documents referenced by `bindings` must
/// outlive the result.
Result<QueryResult> Evaluate(const Expr& query, const Bindings& bindings,
                             const EvalOptions& options = {});

/// Parse + evaluate convenience.
Result<QueryResult> EvaluateQuery(std::string_view query,
                                  const Bindings& bindings);

}  // namespace xbench::xquery

#endif  // XBENCH_XQUERY_EVALUATOR_H_
