#ifndef XBENCH_XQUERY_PARSER_H_
#define XBENCH_XQUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xquery/ast.h"

namespace xbench::xquery {

/// Parses an XQuery-lite query into an expression tree.
///
/// Supported grammar (the subset exercised by the XBench workload):
/// FLWOR with interleaved for/let, `at` position variables, where,
/// (stable) order by with ascending/descending, quantified expressions,
/// if/then/else, full path expressions with the child, descendant,
/// attribute, self, parent, following-sibling and preceding-sibling axes,
/// positional and boolean predicates, general comparisons, arithmetic,
/// and direct element constructors with enclosed expressions.
Result<ExprPtr> ParseQuery(std::string_view query);

}  // namespace xbench::xquery

#endif  // XBENCH_XQUERY_PARSER_H_
