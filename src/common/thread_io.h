#ifndef XBENCH_COMMON_THREAD_IO_H_
#define XBENCH_COMMON_THREAD_IO_H_

#include <cstdint>

namespace xbench {

/// Per-thread I/O attribution counters. Every simulated-disk access,
/// buffer-pool event and virtual-clock charge also adds to the calling
/// thread's instance, so a session that captures a before/after delta
/// around an operation observes exactly the I/O its own thread performed.
/// Concurrent sessions on the same engine never perturb each other's
/// deltas, and a ColdRestart on a shared engine cannot misattribute
/// another session's in-flight traffic (the counters are per-thread and
/// monotonic; nothing ever resets them).
struct ThreadIoCounters {
  uint64_t io_micros = 0;  // virtual-clock charges (disk, index, ingest)
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_writebacks = 0;
  uint64_t disk_page_reads = 0;
  uint64_t disk_page_writes = 0;
  uint64_t disk_bytes_read = 0;
  uint64_t disk_bytes_written = 0;
};

/// The calling thread's attribution counters. Monotonically increasing:
/// capture deltas, never reset.
ThreadIoCounters& ThisThreadIo();

}  // namespace xbench

#endif  // XBENCH_COMMON_THREAD_IO_H_
