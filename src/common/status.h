#ifndef XBENCH_COMMON_STATUS_H_
#define XBENCH_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace xbench {

/// Error categories used across the library. The numeric values are stable
/// so they can be logged and asserted on in tests.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnsupported = 5,   // engine refuses the configuration (e.g. CLOB limit)
  kCorruption = 6,    // malformed XML / storage inconsistency
  kResourceExhausted = 7,
  kInternal = 8,
};

/// Returns a short human-readable name for `code` ("Ok", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error result. The library does not use
/// exceptions; every fallible operation returns Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value
/// of an errored Result is a programming error (checked in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  /// `return 42;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xbench

/// Propagates a non-OK Status from an expression, RocksDB/Arrow style.
#define XBENCH_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::xbench::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors, else binds `lhs`.
#define XBENCH_ASSIGN_OR_RETURN(lhs, expr)       \
  auto XBENCH_CONCAT_(_res_, __LINE__) = (expr); \
  if (!XBENCH_CONCAT_(_res_, __LINE__).ok())     \
    return XBENCH_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(XBENCH_CONCAT_(_res_, __LINE__)).value()

#define XBENCH_CONCAT_INNER_(a, b) a##b
#define XBENCH_CONCAT_(a, b) XBENCH_CONCAT_INNER_(a, b)

#endif  // XBENCH_COMMON_STATUS_H_
