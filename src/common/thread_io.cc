#include "common/thread_io.h"

namespace xbench {

ThreadIoCounters& ThisThreadIo() {
  thread_local ThreadIoCounters counters;
  return counters;
}

}  // namespace xbench
