#ifndef XBENCH_COMMON_WORKER_POOL_H_
#define XBENCH_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace xbench {

/// Accounting for one ParallelFor region, used by the exec layer to model
/// what intra-query parallelism buys on hardware with fewer cores than
/// lanes (the same convention as the throughput driver's thread-CPU
/// makespan model: measure real per-morsel CPU, schedule it onto ideal
/// lanes).
struct ParallelRunStats {
  /// Lanes the region was scheduled onto (caller + workers actually
  /// eligible; <= the requested parallelism).
  int parallelism = 1;
  /// Morsels (index chunks) executed.
  size_t morsels = 0;
  /// Σ thread-CPU over every morsel, all lanes.
  double busy_millis = 0;
  /// Thread-CPU of the morsels the calling thread itself ran (subset of
  /// busy_millis; already contained in any caller-side CPU measurement).
  double caller_busy_millis = 0;
  /// Makespan of greedy list-scheduling the measured morsel CPU times
  /// onto `parallelism` ideal lanes — the modeled wall time of the region
  /// on a machine with that many free cores.
  double modeled_millis = 0;
};

/// Fixed-size shared worker pool for morsel-driven intra-query
/// parallelism (DESIGN.md §12). One process-wide pool (Default()) is
/// shared by every concurrently executing query: ParallelFor callers
/// publish a region of index-addressed work, workers and the caller pull
/// morsels (index chunks) from a shared cursor until the region drains —
/// pulling from a shared cursor is what makes the morsels self-balancing
/// (a stalled lane simply takes fewer).
///
/// Concurrency contract for the work function: it runs on pool threads
/// and the caller concurrently, must only write state owned by its index,
/// and must not take engine-level locks. The second rule is enforced: the
/// pool marks every morsel with the `exec.morsel` pseudo-lock rank, so a
/// task body acquiring the collection/cache/plan locks aborts under the
/// lock-rank enforcer instead of deadlocking against the query's own
/// caller-held collection lock.
///
/// I/O attribution: simulated-disk and buffer-pool traffic performed by
/// pool workers inside a region is credited to the calling thread's
/// ThisThreadIo() before ParallelFor returns, so a session's before/after
/// I/O delta stays exact no matter which lane did the I/O.
class WorkerPool {
 public:
  /// The process-wide pool. Thread count is hardware_concurrency clamped
  /// to [2, 16], overridable with the XBENCH_EXEC_WORKERS environment
  /// variable; the instance leaks by design (workers live for the
  /// process, same pattern as MetricsRegistry).
  static WorkerPool& Default();

  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(0) .. fn(total - 1) across up to `parallelism` lanes (the
  /// calling thread is one of them) and returns when every index has
  /// finished. Indexes are grabbed in ascending chunks, so low indexes
  /// always start no later than high ones. On errors the non-OK Status
  /// of the lowest failing index is returned (deterministic regardless
  /// of interleaving) and remaining morsels are cancelled. `stats`, when
  /// non-null, receives the region's timing model.
  Status ParallelFor(size_t total, int parallelism,
                     const std::function<Status(size_t)>& fn,
                     ParallelRunStats* stats = nullptr);

 private:
  struct Region;

  void WorkerMain();
  /// Runs morsels of `region` until its cursor is exhausted (or an error
  /// cancelled it). `caller` marks the region-owning thread (its CPU is
  /// tracked separately for the timing model).
  static void DrainRegion(Region& region, bool caller);

  Mutex mu_{LockRank::kWorkerPool, "worker.pool"};
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  std::vector<Region*> regions_ XBENCH_GUARDED_BY(mu_);
  bool stop_ XBENCH_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace xbench

#endif  // XBENCH_COMMON_WORKER_POOL_H_
