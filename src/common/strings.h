#ifndef XBENCH_COMMON_STRINGS_H_
#define XBENCH_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace xbench {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// ASCII lower-casing (the benchmark data is ASCII by construction).
std::string ToLower(std::string_view text);

/// Case-sensitive whole-word containment: true when `word` occurs in `text`
/// delimited by non-alphanumeric characters (or string boundaries). This is
/// the uni-gram "text search" primitive used by Q17.
bool ContainsWord(std::string_view text, std::string_view word);

/// Substring containment; the n-gram/phrase primitive used by Q18.
bool ContainsPhrase(std::string_view text, std::string_view phrase);

/// Lexicographic numeric-string formatting: value padded to `width` with
/// leading zeros ("00042"). Used for generated identifiers so string sort
/// order matches numeric order.
std::string PadNumber(int64_t value, int width);

/// Parses a nonnegative decimal; returns -1 on malformed input.
int64_t ParseInt(std::string_view text);

/// Parses a decimal floating-point number; returns NaN on malformed input.
double ParseDouble(std::string_view text);

}  // namespace xbench

#endif  // XBENCH_COMMON_STRINGS_H_
