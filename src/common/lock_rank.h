#ifndef XBENCH_COMMON_LOCK_RANK_H_
#define XBENCH_COMMON_LOCK_RANK_H_

#include <cstddef>
#include <string>

namespace xbench {

/// Global lock-acquisition order, outermost first. A thread may only
/// acquire a lock whose rank is strictly greater than every lock it
/// already holds, which makes the latch graph acyclic and the system
/// deadlock-free by construction. This table is the machine-checked form
/// of the DESIGN.md §9 lock order; keep the two in sync 1:1.
///
/// Gaps between values leave room for future locks without renumbering.
enum class LockRank : int {
  /// engines::EngineRegistry::mu_ — name→factory map. Outermost: never
  /// held while an engine lock is taken (Create() copies the factory out
  /// and constructs outside the lock).
  kEngineRegistry = 10,
  /// engines::XmlDbms::collection_mu_ — the per-engine collection
  /// reader/writer lock. Mutations hold it exclusive, statements shared.
  kCollection = 20,
  /// NativeEngine::index_mu_ — the planner-facing index-catalog mirror
  /// (statistics + epoch). Taken by mutation/DDL paths while holding the
  /// collection lock exclusive (refresh) and standalone by compilation
  /// snapshots; guards only the mirror copy, never the index structures
  /// themselves (those sit under the collection lock).
  kIndexCatalog = 25,
  /// Native/CLOB engines' materialized-document cache mutex (cache_mu_).
  kDocumentCache = 30,
  /// CLOB engine's parsed-AST statement cache mutex (ast_mu_).
  kAstCache = 31,
  /// xquery::plan::PlanCache::mu_ — the compiled-plan statement cache.
  kPlanCache = 40,
  /// common::WorkerPool::mu_ — the shared intra-query worker pool's task
  /// queue. Above the engine/plan locks because ParallelFor is entered
  /// from exec while the caller holds the collection lock shared; below
  /// the morsel-task scope so the queue lock is never held while a task
  /// body runs.
  kWorkerPool = 42,
  /// Pseudo-lock marking "executing inside a morsel task". Not a real
  /// mutex: WorkerPool notes it held around every task body (on workers
  /// and on the participating caller) so the rank enforcer proves that
  /// task bodies never take engine-level locks — collection (20), the
  /// document/AST caches (30/31) or the plan cache (40) — while storage
  /// latches (50/60) and the obs locks (70/80) stay legal inside tasks.
  kMorselTask = 46,
  /// storage::BufferPool per-shard latch (Shard::mu).
  kPoolShard = 50,
  /// storage::SimulatedDisk::mu_ — the single disk arm.
  kDisk = 60,
  /// obs::MetricsRegistry::mu_ — metric handle maps (handles themselves
  /// are lock-free). Above the storage locks: GetCounter may be called
  /// while any engine or storage lock is held.
  kMetrics = 70,
  /// obs::Tracer::mu_ — span event log. Innermost: spans open inside any
  /// critical section, and the tracer calls nothing else while locked.
  kTracer = 80,
};

/// Stable name of a rank ("collection", "pool.shard", ...) for messages
/// and the DESIGN.md §9 table.
const char* LockRankName(LockRank rank);

namespace lockrank {

/// Whether acquisitions are being checked. Defaults to on when the tree
/// was configured with -DXBENCH_LOCK_RANKS=ON (the tsan/asan smoke
/// builds), or when the XBENCH_LOCK_RANKS environment variable is set to
/// anything but "0"/"off"; otherwise off. Checking costs one relaxed
/// atomic load per acquisition when disabled.
bool Enabled();
void SetEnabled(bool enabled);

/// Called by xbench::Mutex / xbench::SharedMutex immediately before
/// blocking on the underlying lock. When enforcement is on and the
/// acquisition is out of rank (rank <= some held lock's rank) or a
/// re-acquisition of a lock this thread already holds, it increments
/// xbench.lock.violations, prints every thread's held-lock list to
/// stderr, and aborts — before the would-be deadlock can happen.
void NoteAcquire(const void* lock, LockRank rank, const char* name);

/// Called after releasing the underlying lock.
void NoteRelease(const void* lock);

/// Number of tracked locks the calling thread currently holds.
size_t HeldCount();

/// Human-readable held-lock list of the calling thread, outermost first
/// ("collection(20) -> pool.shard(50)"); "<none>" when empty.
std::string DescribeHeld();

}  // namespace lockrank
}  // namespace xbench

#endif  // XBENCH_COMMON_LOCK_RANK_H_
