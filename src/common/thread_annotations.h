#ifndef XBENCH_COMMON_THREAD_ANNOTATIONS_H_
#define XBENCH_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (-Wthread-safety).
///
/// These macros attach lock-capability contracts to types, fields and
/// functions so a Clang build statically proves the locking discipline
/// documented in DESIGN.md §9: which mutex guards which field, which
/// functions require which locks held, and which scoped types acquire and
/// release them. Under any other compiler they expand to nothing, so GCC
/// builds are unaffected.
///
/// Usage convention in this tree:
///  * lockable wrapper types (xbench::Mutex / xbench::SharedMutex in
///    common/sync.h) are declared XBENCH_CAPABILITY("mutex");
///  * fields protected by a lock get XBENCH_GUARDED_BY(mu_);
///  * `FooLocked()`-style internals get XBENCH_REQUIRES(mu_) (or
///    XBENCH_REQUIRES_SHARED for read-side contracts);
///  * scoped holders are XBENCH_SCOPED_CAPABILITY with
///    XBENCH_ACQUIRE/XBENCH_RELEASE on constructor/destructor.
///
/// XBENCH_NO_THREAD_SAFETY_ANALYSIS exists for completeness but must not
/// appear outside this header: every analysis finding is fixed with a real
/// contract, never silenced (enforced by tools/static_gate.sh).
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define XBENCH_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define XBENCH_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a lock capability ("mutex", "shared_mutex", ...).
#define XBENCH_CAPABILITY(x) XBENCH_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define XBENCH_SCOPED_CAPABILITY XBENCH_THREAD_ANNOTATION__(scoped_lockable)

/// Field/variable may only be accessed while holding the given capability
/// (exclusively for writes, at least shared for reads).
#define XBENCH_GUARDED_BY(x) XBENCH_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define XBENCH_PT_GUARDED_BY(x) XBENCH_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Caller must hold the capability exclusively for the whole call.
#define XBENCH_REQUIRES(...) \
  XBENCH_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared for the whole call.
#define XBENCH_REQUIRES_SHARED(...) \
  XBENCH_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and holds it on return.
#define XBENCH_ACQUIRE(...) \
  XBENCH_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared and holds it on return.
#define XBENCH_ACQUIRE_SHARED(...) \
  XBENCH_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases an exclusively held capability.
#define XBENCH_RELEASE(...) \
  XBENCH_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function releases a shared-held capability.
#define XBENCH_RELEASE_SHARED(...) \
  XBENCH_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function releases a capability held in either mode.
#define XBENCH_RELEASE_GENERIC(...) \
  XBENCH_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define XBENCH_TRY_ACQUIRE(...) \
  XBENCH_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (documents deadlock hazards of
/// non-reentrant locks).
#define XBENCH_EXCLUDES(...) \
  XBENCH_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability (annotates
/// accessors so callers' lock expressions resolve to the same capability).
#define XBENCH_RETURN_CAPABILITY(x) \
  XBENCH_THREAD_ANNOTATION__(lock_returned(x))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow). Unused in this tree; prefer real contracts.
#define XBENCH_ASSERT_CAPABILITY(x) \
  XBENCH_THREAD_ANNOTATION__(assert_capability(x))

/// Escape hatch disabling analysis for one function. Must not be used
/// outside this header — see the header comment.
#define XBENCH_NO_THREAD_SAFETY_ANALYSIS \
  XBENCH_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // XBENCH_COMMON_THREAD_ANNOTATIONS_H_
