#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace xbench {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

namespace {
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
}  // namespace

bool ContainsWord(std::string_view text, std::string_view word) {
  if (word.empty()) return false;
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(text[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end == text.size() || !IsWordChar(text[end]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

bool ContainsPhrase(std::string_view text, std::string_view phrase) {
  if (phrase.empty()) return false;
  return text.find(phrase) != std::string_view::npos;
}

std::string PadNumber(int64_t value, int width) {
  std::string digits = std::to_string(value);
  if (static_cast<int>(digits.size()) >= width) return digits;
  return std::string(static_cast<size_t>(width) - digits.size(), '0') + digits;
}

int64_t ParseInt(std::string_view text) {
  text = Trim(text);
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return -1;
  return value;
}

double ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nan("");
  std::string buf(text);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nan("");
  return value;
}

}  // namespace xbench
