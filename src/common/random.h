#ifndef XBENCH_COMMON_RANDOM_H_
#define XBENCH_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xbench {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// All data generation in the benchmark flows through this class so that a
/// given (seed, scale) pair always produces byte-identical databases —
/// required for cross-engine answer checking in tests.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over the full 64-bit range.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Random lowercase ASCII string of exactly `length` characters.
  std::string NextAlpha(int length);

  /// Picks a uniformly random element index for a container of size n (> 0).
  size_t NextIndex(size_t n) { return static_cast<size_t>(NextBounded(n)); }

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextIndex(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each document its
  /// own stream so generation order does not perturb sibling documents.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace xbench

#endif  // XBENCH_COMMON_RANDOM_H_
