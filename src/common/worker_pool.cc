#include "common/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "common/lock_rank.h"
#include "common/stopwatch.h"
#include "common/thread_io.h"
#include "obs/metrics.h"

namespace xbench {

namespace {

/// Address identity of the `exec.morsel` pseudo-lock. Every task body on
/// every lane notes the same pseudo-lock, so the enforcer flags any
/// engine-level (lower-ranked) acquisition inside a task.
const int kMorselLockTag = 0;

/// Rank-marks "inside a morsel task" for the duration of one morsel.
class MorselScope {
 public:
  MorselScope() {
    lockrank::NoteAcquire(&kMorselLockTag, LockRank::kMorselTask,
                          "exec.morsel");
  }
  ~MorselScope() { lockrank::NoteRelease(&kMorselLockTag); }
  MorselScope(const MorselScope&) = delete;
  MorselScope& operator=(const MorselScope&) = delete;
};

void AddIoDelta(ThreadIoCounters& out, const ThreadIoCounters& before,
                const ThreadIoCounters& after) {
  out.io_micros += after.io_micros - before.io_micros;
  out.pool_hits += after.pool_hits - before.pool_hits;
  out.pool_misses += after.pool_misses - before.pool_misses;
  out.pool_evictions += after.pool_evictions - before.pool_evictions;
  out.pool_writebacks += after.pool_writebacks - before.pool_writebacks;
  out.disk_page_reads += after.disk_page_reads - before.disk_page_reads;
  out.disk_page_writes += after.disk_page_writes - before.disk_page_writes;
  out.disk_bytes_read += after.disk_bytes_read - before.disk_bytes_read;
  out.disk_bytes_written += after.disk_bytes_written - before.disk_bytes_written;
}

/// Greedy in-order list scheduling of the measured morsel CPU times onto
/// `lanes` ideal lanes; the resulting makespan is the modeled wall time
/// of the region on a machine with that many free cores. In-order
/// assignment mirrors how lanes actually pull morsels from the shared
/// cursor, so the model never beats a real P-core run of the same chunks.
double ListScheduleMakespan(const std::vector<double>& chunk_millis,
                            int lanes) {
  std::vector<double> load(static_cast<size_t>(std::max(lanes, 1)), 0.0);
  for (double millis : chunk_millis) {
    *std::min_element(load.begin(), load.end()) += millis;
  }
  return *std::max_element(load.begin(), load.end());
}

int DefaultThreadCount() {
  if (const char* env = std::getenv("XBENCH_EXEC_WORKERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return std::min(parsed, 64);
  }
  // At least 3 workers so a parallelism-4 region is genuinely 4-lane
  // concurrent (caller + 3) even on small hosts — that concurrency is
  // what the TSAN smoke exercises; the timing model is what makes the
  // numbers meaningful when cores < lanes.
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 3u, 16u));
}

}  // namespace

/// One published ParallelFor call. Lives on the caller's stack; workers
/// hold a pointer only while registered in `attached`, and the caller
/// waits for attached == 0 before returning, so the pointer can never
/// dangle.
struct WorkerPool::Region {
  size_t total = 0;
  size_t chunk_size = 1;
  size_t num_chunks = 0;
  const std::function<Status(size_t)>* fn = nullptr;
  /// Next chunk index to grab; ascending, so low indexes always start
  /// no later than high ones (this is what makes lowest-error-wins
  /// deterministic).
  std::atomic<size_t> next_chunk{0};
  /// Set on the first error; lanes stop grabbing new chunks.
  std::atomic<bool> cancelled{false};
  /// Per-chunk slots, each written by exactly the lane that ran the
  /// chunk (no synchronization needed; the detach handshake under the
  /// pool mutex publishes them to the caller).
  std::vector<double> chunk_cpu_millis;
  std::vector<signed char> chunk_on_caller;
  std::vector<signed char> chunk_ran;
  std::vector<Status> chunk_status;
  /// Workers currently draining this region (pool mutex).
  int attached = 0;
  /// Worker-side I/O performed inside this region (pool mutex);
  /// credited to the caller before ParallelFor returns.
  ThreadIoCounters worker_io;
};

WorkerPool& WorkerPool::Default() {
  static WorkerPool* pool = new WorkerPool(DefaultThreadCount());
  return *pool;
}

WorkerPool::WorkerPool(int threads) {
  obs::MetricsRegistry::Default()
      .GetGauge("xbench.exec.workers")
      .Set(static_cast<double>(std::max(threads, 0)));
  threads_.reserve(static_cast<size_t>(std::max(threads, 0)));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  mu_.lock();
  stop_ = true;
  mu_.unlock();
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::DrainRegion(Region& region, bool caller) {
  while (!region.cancelled.load(std::memory_order_relaxed)) {
    const size_t chunk =
        region.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= region.num_chunks) break;
    const size_t begin = chunk * region.chunk_size;
    const size_t end = std::min(region.total, begin + region.chunk_size);
    ThreadCpuStopwatch cpu;
    Status status;
    {
      MorselScope morsel;
      for (size_t i = begin; i < end && status.ok(); ++i) {
        status = (*region.fn)(i);
      }
    }
    region.chunk_cpu_millis[chunk] = cpu.ElapsedMillis();
    region.chunk_on_caller[chunk] = caller ? 1 : 0;
    region.chunk_ran[chunk] = 1;
    if (!status.ok()) {
      region.chunk_status[chunk] = std::move(status);
      region.cancelled.store(true, std::memory_order_relaxed);
    }
  }
}

void WorkerPool::WorkerMain() {
  mu_.lock();
  while (!stop_) {
    Region* region = nullptr;
    for (Region* candidate : regions_) {
      if (!candidate->cancelled.load(std::memory_order_relaxed) &&
          candidate->next_chunk.load(std::memory_order_relaxed) <
              candidate->num_chunks) {
        region = candidate;
        break;
      }
    }
    if (region == nullptr) {
      work_cv_.wait(mu_);
      continue;
    }
    ++region->attached;
    mu_.unlock();
    const ThreadIoCounters before = ThisThreadIo();
    DrainRegion(*region, /*caller=*/false);
    const ThreadIoCounters after = ThisThreadIo();
    mu_.lock();
    AddIoDelta(region->worker_io, before, after);
    --region->attached;
    done_cv_.notify_all();
  }
  mu_.unlock();
}

Status WorkerPool::ParallelFor(size_t total, int parallelism,
                               const std::function<Status(size_t)>& fn,
                               ParallelRunStats* stats) {
  if (stats != nullptr) *stats = ParallelRunStats{};
  if (total == 0) return Status::Ok();
  static obs::Counter& morsel_counter =
      obs::MetricsRegistry::Default().GetCounter("xbench.exec.morsels");
  static obs::Counter& region_counter =
      obs::MetricsRegistry::Default().GetCounter(
          "xbench.exec.parallel_regions");
  const int model_lanes = std::max(parallelism, 1);

  Region region;
  region.total = total;
  region.chunk_size =
      std::max<size_t>(1, total / (8 * static_cast<size_t>(model_lanes)));
  region.num_chunks =
      (total + region.chunk_size - 1) / region.chunk_size;
  region.fn = &fn;
  region.chunk_cpu_millis.assign(region.num_chunks, 0.0);
  region.chunk_on_caller.assign(region.num_chunks, 0);
  region.chunk_ran.assign(region.num_chunks, 0);
  region.chunk_status.assign(region.num_chunks, Status::Ok());

  const bool use_workers = model_lanes > 1 && !threads_.empty() && total > 1;
  if (use_workers) {
    {
      MutexLock lock(mu_);
      regions_.push_back(&region);
    }
    work_cv_.notify_all();
  }

  DrainRegion(region, /*caller=*/true);

  if (use_workers) {
    mu_.lock();
    while (region.attached != 0) done_cv_.wait(mu_);
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
      if (*it == &region) {
        regions_.erase(it);
        break;
      }
    }
    mu_.unlock();
    // Credit worker-side I/O to the calling thread so a session's
    // before/after attribution delta stays exact under intra-query
    // parallelism (caller-side I/O was attributed normally).
    ThreadIoCounters& mine = ThisThreadIo();
    const ThreadIoCounters zero;
    AddIoDelta(mine, zero, region.worker_io);
  }

  size_t ran = 0;
  std::vector<double> ran_millis;
  ran_millis.reserve(region.num_chunks);
  double busy = 0, caller_busy = 0;
  for (size_t i = 0; i < region.num_chunks; ++i) {
    if (!region.chunk_ran[i]) continue;
    ++ran;
    ran_millis.push_back(region.chunk_cpu_millis[i]);
    busy += region.chunk_cpu_millis[i];
    if (region.chunk_on_caller[i]) caller_busy += region.chunk_cpu_millis[i];
  }
  morsel_counter.Increment(ran);
  region_counter.Increment();
  if (stats != nullptr) {
    stats->parallelism = model_lanes;
    stats->morsels = ran;
    stats->busy_millis = busy;
    stats->caller_busy_millis = caller_busy;
    stats->modeled_millis = ListScheduleMakespan(ran_millis, model_lanes);
  }
  for (size_t i = 0; i < region.num_chunks; ++i) {
    if (!region.chunk_status[i].ok()) return region.chunk_status[i];
  }
  return Status::Ok();
}

}  // namespace xbench
