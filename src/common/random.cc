#include "common/random.h"

#include <cmath>

namespace xbench {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-12) u1 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

std::string Rng::NextAlpha(int length) {
  std::string out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + NextBounded(26)));
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace xbench
