#ifndef XBENCH_COMMON_SYNC_H_
#define XBENCH_COMMON_SYNC_H_

#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace xbench {

/// Annotated std::mutex wrapper. Carries a LockRank and a stable name so
/// the runtime lock-rank enforcer (common/lock_rank.h) can check every
/// acquisition against the DESIGN.md §9 order, and is declared a Clang
/// thread-safety capability so fields can be XBENCH_GUARDED_BY it.
class XBENCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XBENCH_ACQUIRE() {
    lockrank::NoteAcquire(this, rank_, name_);
    mu_.lock();
  }
  void unlock() XBENCH_RELEASE() {
    mu_.unlock();
    lockrank::NoteRelease(this);
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Annotated std::shared_mutex wrapper; see Mutex. Shared (reader)
/// acquisitions are rank-checked exactly like exclusive ones — a reader
/// still deadlocks a writer if taken out of order.
class XBENCH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() XBENCH_ACQUIRE() {
    lockrank::NoteAcquire(this, rank_, name_);
    mu_.lock();
  }
  void unlock() XBENCH_RELEASE() {
    mu_.unlock();
    lockrank::NoteRelease(this);
  }
  void lock_shared() XBENCH_ACQUIRE_SHARED() {
    lockrank::NoteAcquire(this, rank_, name_);
    mu_.lock_shared();
  }
  void unlock_shared() XBENCH_RELEASE_SHARED() {
    mu_.unlock_shared();
    lockrank::NoteRelease(this);
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Scoped exclusive holder for xbench::Mutex.
class XBENCH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XBENCH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() XBENCH_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive (writer) holder for xbench::SharedMutex.
class XBENCH_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) XBENCH_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() XBENCH_RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) holder for xbench::SharedMutex.
class XBENCH_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) XBENCH_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() XBENCH_RELEASE_SHARED() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace xbench

#endif  // XBENCH_COMMON_SYNC_H_
