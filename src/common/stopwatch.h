#ifndef XBENCH_COMMON_STOPWATCH_H_
#define XBENCH_COMMON_STOPWATCH_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/thread_io.h"

namespace xbench {

/// Wall-clock stopwatch used by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Thread-CPU stopwatch (CLOCK_THREAD_CPUTIME_ID): measures CPU actually
/// consumed by the calling thread, so a session timed on a timesliced core
/// is not billed for other sessions' work. The multi-client throughput
/// driver uses this to model each client as owning a core, keeping MPL
/// sweeps meaningful on machines with fewer cores than sessions.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() { Restart(); }

  void Restart() { start_nanos_ = NowNanos(); }

  /// Thread CPU time since construction/Restart, in milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(NowNanos() - start_nanos_) / 1e6;
  }

 private:
  static uint64_t NowNanos();

  uint64_t start_nanos_ = 0;
};

/// Deterministic virtual clock advanced by the simulated-disk layer.
///
/// The paper measures cold-run times on a 2 GHz disk-backed machine; our
/// storage substrate is in-memory, so the I/O component of each measurement
/// is modelled explicitly: every simulated page read/write charges this
/// clock. Benchmarks report CPU wall time + virtual I/O time.
///
/// Thread safety: AdvanceMicros is an atomic add, so concurrent sessions
/// can charge one engine's clock without tearing; each charge is also
/// attributed to the calling thread (ThisThreadIo), which is how
/// per-session I/O time stays exact under concurrency while this clock
/// keeps the engine-lifetime total.
class VirtualClock {
 public:
  void AdvanceMicros(uint64_t micros) {
    micros_.fetch_add(micros, std::memory_order_relaxed);
    ThisThreadIo().io_micros += micros;
  }
  uint64_t ElapsedMicros() const {
    return micros_.load(std::memory_order_relaxed);
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }
  void Reset() { micros_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> micros_{0};
};

}  // namespace xbench

#endif  // XBENCH_COMMON_STOPWATCH_H_
