#ifndef XBENCH_COMMON_STOPWATCH_H_
#define XBENCH_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace xbench {

/// Wall-clock stopwatch used by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Deterministic virtual clock advanced by the simulated-disk layer.
///
/// The paper measures cold-run times on a 2 GHz disk-backed machine; our
/// storage substrate is in-memory, so the I/O component of each measurement
/// is modelled explicitly: every simulated page read/write charges this
/// clock. Benchmarks report CPU wall time + virtual I/O time.
class VirtualClock {
 public:
  void AdvanceMicros(uint64_t micros) { micros_ += micros; }
  uint64_t ElapsedMicros() const { return micros_; }
  double ElapsedMillis() const { return static_cast<double>(micros_) / 1000.0; }
  void Reset() { micros_ = 0; }

 private:
  uint64_t micros_ = 0;
};

}  // namespace xbench

#endif  // XBENCH_COMMON_STOPWATCH_H_
