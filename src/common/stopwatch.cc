#include "common/stopwatch.h"

#include <ctime>

namespace xbench {

uint64_t ThreadCpuStopwatch::NowNanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace xbench
