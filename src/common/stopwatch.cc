#include "common/stopwatch.h"

// Header-only for now; this translation unit anchors the header in the
// library so include errors surface at library build time.
