#include "common/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace xbench {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kEngineRegistry:
      return "engine.registry";
    case LockRank::kCollection:
      return "collection";
    case LockRank::kIndexCatalog:
      return "index.catalog";
    case LockRank::kDocumentCache:
      return "doc.cache";
    case LockRank::kAstCache:
      return "ast.cache";
    case LockRank::kPlanCache:
      return "plan.cache";
    case LockRank::kWorkerPool:
      return "worker.pool";
    case LockRank::kMorselTask:
      return "exec.morsel";
    case LockRank::kPoolShard:
      return "pool.shard";
    case LockRank::kDisk:
      return "disk";
    case LockRank::kMetrics:
      return "metrics";
    case LockRank::kTracer:
      return "tracer";
  }
  return "?";
}

namespace lockrank {

namespace {

/// One tracked acquisition.
struct HeldLock {
  const void* lock = nullptr;
  LockRank rank = LockRank::kEngineRegistry;
  const char* name = nullptr;
};

/// More simultaneously held locks than any sane path needs; overflowing
/// this is itself reported as a discipline violation.
constexpr size_t kMaxHeld = 16;

/// Per-thread held-lock stack. Only the owning thread writes it; the
/// violation dump reads other threads' states immediately before abort,
/// which is a deliberately tolerated diagnostic-only race.
struct ThreadLockState {
  HeldLock held[kMaxHeld];
  size_t count = 0;
  unsigned long long thread_label = 0;
};

/// Leaky singletons so thread_local destructors running at process exit
/// never touch a destroyed mutex (same pattern as MetricsRegistry).
std::mutex& StatesMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<ThreadLockState*>& States() {
  static auto* states = new std::vector<ThreadLockState*>();
  return *states;
}

/// Re-entrancy guard: the enforcer's own metric updates acquire the
/// metrics-registry mutex, which must not be rank-checked recursively.
thread_local int suppress_depth = 0;

struct ScopedSuppress {
  ScopedSuppress() { ++suppress_depth; }
  ~ScopedSuppress() { --suppress_depth; }
};

struct Registrar {
  explicit Registrar(ThreadLockState* state) : state_(state) {
    static std::atomic<unsigned long long> next_label{1};
    state->thread_label = next_label.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(StatesMu());
    States().push_back(state);
  }
  ~Registrar() {
    std::lock_guard<std::mutex> lock(StatesMu());
    auto& states = States();
    for (auto it = states.begin(); it != states.end(); ++it) {
      if (*it == state_) {
        states.erase(it);
        break;
      }
    }
  }
  ThreadLockState* state_;
};

ThreadLockState& State() {
  thread_local ThreadLockState state;
  thread_local Registrar registrar(&state);
  return state;
}

bool DefaultEnabled() {
#ifdef XBENCH_LOCK_RANKS
  return true;
#else
  const char* env = std::getenv("XBENCH_LOCK_RANKS");
  if (env == nullptr || *env == '\0') return false;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "OFF") != 0;
#endif
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{DefaultEnabled()};
  return enabled;
}

void AppendHeld(std::string& out, const ThreadLockState& state) {
  if (state.count == 0) {
    out += "<none>";
    return;
  }
  for (size_t i = 0; i < state.count; ++i) {
    if (i > 0) out += " -> ";
    out += state.held[i].name;
    out += "(";
    out += std::to_string(static_cast<int>(state.held[i].rank));
    out += ")";
  }
}

/// Counts the violation in xbench.lock.* (so a report collected by an
/// outer harness still shows it), prints every thread's held-lock list,
/// and aborts. Never returns.
[[noreturn]] void Violation(const char* what, const HeldLock& incoming,
                            const ThreadLockState& state) {
  {
    ScopedSuppress suppress;
    obs::MetricsRegistry::Default()
        .GetCounter("xbench.lock.violations")
        .Increment();
  }
  std::string held;
  AppendHeld(held, state);
  std::fprintf(stderr,
               "xbench lock-rank violation: %s\n"
               "  acquiring: %s(%d)\n"
               "  thread %llu holds: %s\n",
               what, incoming.name, static_cast<int>(incoming.rank),
               state.thread_label, held.c_str());
  {
    std::lock_guard<std::mutex> lock(StatesMu());
    for (const ThreadLockState* other : States()) {
      if (other == &state) continue;
      std::string other_held;
      AppendHeld(other_held, *other);
      std::fprintf(stderr, "  thread %llu holds: %s\n", other->thread_label,
                   other_held.c_str());
    }
  }
  std::fprintf(stderr,
               "  lock order (outer -> inner) is defined in "
               "common/lock_rank.h and DESIGN.md §9\n");
  std::abort();
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

void NoteAcquire(const void* lock, LockRank rank, const char* name) {
  if (!Enabled() || suppress_depth > 0) return;
  ThreadLockState& state = State();
  const HeldLock incoming{lock, rank, name};
  for (size_t i = 0; i < state.count; ++i) {
    if (state.held[i].lock == lock) {
      Violation("lock already held by this thread (self-deadlock)", incoming,
                state);
    }
    if (static_cast<int>(rank) <= static_cast<int>(state.held[i].rank)) {
      Violation("acquisition out of rank order", incoming, state);
    }
  }
  if (state.count >= kMaxHeld) {
    Violation("too many locks held at once", incoming, state);
  }
  state.held[state.count++] = incoming;
  {
    ScopedSuppress suppress;
    static obs::Counter& acquires =
        obs::MetricsRegistry::Default().GetCounter("xbench.lock.acquires");
    acquires.Increment();
  }
}

void NoteRelease(const void* lock) {
  if (!Enabled() || suppress_depth > 0) return;
  ThreadLockState& state = State();
  // Scoped holders release LIFO, so scan from the top.
  for (size_t i = state.count; i > 0; --i) {
    if (state.held[i - 1].lock == lock) {
      for (size_t j = i - 1; j + 1 < state.count; ++j) {
        state.held[j] = state.held[j + 1];
      }
      --state.count;
      return;
    }
  }
  // Releasing an untracked lock: acquisition predated enabling, or
  // enforcement was toggled mid-hold. Not an error.
}

size_t HeldCount() { return State().count; }

std::string DescribeHeld() {
  std::string out;
  AppendHeld(out, State());
  return out;
}

}  // namespace lockrank
}  // namespace xbench
