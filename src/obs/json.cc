#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace xbench::obs {

void JsonEscape(std::string_view text, std::string& out) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Separate();
  out_.push_back('"');
  JsonEscape(key, out_);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Separate();
  out_.push_back('"');
  JsonEscape(value, out_);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Separate();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  Separate();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  return *this;
}

namespace {

/// Appends `codepoint` to `out` as UTF-8 (1-3 bytes; \u escapes cannot
/// encode codepoints above U+FFFF without surrogate pairs, which we pass
/// through individually like most lenient decoders).
void AppendUtf8(unsigned codepoint, std::string& out) {
  if (codepoint < 0x80) {
    out.push_back(static_cast<char>(codepoint));
  } else if (codepoint < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
    out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
    out.push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  }
}

// Maximum container nesting. A fuzz input of 100k '[' characters would
// otherwise recurse through Value/Array until the native stack overflows.
constexpr int kMaxJsonDepth = 256;

/// Recursive-descent JSON parser over a string_view cursor. Builds a
/// JsonValue tree; ValidateJson discards the tree, so validation and
/// parsing cannot drift apart.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    XBENCH_RETURN_IF_ERROR(Value(out));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::Corruption("trailing characters after JSON value at " +
                                std::to_string(pos_));
    }
    return Status::Ok();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Fail(const std::string& what) {
    return Status::Corruption(what + " at offset " + std::to_string(pos_));
  }

  Status Expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::Ok();
  }

  Status Value(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': {
        if (depth_ >= kMaxJsonDepth) {
          return Fail("nesting exceeds " + std::to_string(kMaxJsonDepth) +
                      " levels");
        }
        ++depth_;
        Status status = Object(out);
        --depth_;
        return status;
      }
      case '[': {
        if (depth_ >= kMaxJsonDepth) {
          return Fail("nesting exceeds " + std::to_string(kMaxJsonDepth) +
                      " levels");
        }
        ++depth_;
        Status status = Array(out);
        --depth_;
        return status;
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return QuotedString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return NumberToken(out);
    }
  }

  Status Object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    XBENCH_RETURN_IF_ERROR(Expect('{'));
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      std::string key;
      XBENCH_RETURN_IF_ERROR(QuotedString(&key));
      SkipSpace();
      XBENCH_RETURN_IF_ERROR(Expect(':'));
      JsonValue member;
      XBENCH_RETURN_IF_ERROR(Value(&member));
      out->members.emplace_back(std::move(key), std::move(member));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  Status Array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    XBENCH_RETURN_IF_ERROR(Expect('['));
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      JsonValue item;
      XBENCH_RETURN_IF_ERROR(Value(&item));
      out->items.push_back(std::move(item));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  Status QuotedString(std::string* out) {
    XBENCH_RETURN_IF_ERROR(Expect('"'));
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_];
        if (esc == 'u') {
          unsigned codepoint = 0;
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(
                                            text_[pos_]))) {
              return Fail("bad \\u escape");
            }
            const char hex = text_[pos_];
            codepoint = codepoint * 16 +
                        static_cast<unsigned>(
                            hex <= '9' ? hex - '0'
                                       : (hex | 0x20) - 'a' + 10);
          }
          AppendUtf8(codepoint, *out);
        } else {
          switch (esc) {
            case '"':
            case '\\':
            case '/':
              out->push_back(esc);
              break;
            case 'b':
              out->push_back('\b');
              break;
            case 'f':
              out->push_back('\f');
              break;
            case 'n':
              out->push_back('\n');
              break;
            case 'r':
              out->push_back('\r');
              break;
            case 't':
              out->push_back('\t');
              break;
            default:
              return Fail("bad escape character");
          }
        }
      } else {
        out->push_back(c);
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  Status NumberToken(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) return Fail("malformed number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) return Fail("malformed number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) return Fail("malformed number exponent");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                              nullptr);
    // A syntactically valid literal like 1e999 overflows strtod to
    // infinity; JSON has no non-finite numbers, so reject rather than
    // propagate a value the writer can't round-trip.
    if (!std::isfinite(out->number)) {
      return Fail("number literal out of finite double range");
    }
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Status ValidateJson(std::string_view text) {
  JsonValue discard;
  return JsonParser(text).Parse(&discard);
}

Result<JsonValue> ParseJson(std::string_view text) {
  JsonValue value;
  XBENCH_RETURN_IF_ERROR(JsonParser(text).Parse(&value));
  return value;
}

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open '" + path + "' for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("read from '" + path + "' failed");
  return std::move(buffer).str();
}

}  // namespace xbench::obs
